// mbusim runs the MiBench-analog workloads fault-free on the simulated
// machine, printing each run's outcome and the Table III cycle counts.
//
//	mbusim -all          # golden-run every workload
//	mbusim CRC32         # run one workload, echo its stdout
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"mbusim/internal/clog"
	"mbusim/internal/report"
	"mbusim/internal/workloads"
)

func main() {
	all := flag.Bool("all", false, "run every workload and print Table III")
	occupancy := flag.Bool("occupancy", false, "sample structure occupancies at the half-way point of each workload")
	verbose := flag.Bool("v", false, "log debug detail to stderr")
	flag.Parse()
	log := clog.New(os.Stderr, *verbose)

	if *occupancy {
		if err := printOccupancies(log); err != nil {
			log.Error(err.Error())
			os.Exit(1)
		}
		return
	}

	if *all {
		t3, err := report.Table3()
		if err != nil {
			log.Error(err.Error())
			os.Exit(1)
		}
		fmt.Print(t3)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintf(os.Stderr, "usage: mbusim -all | mbusim <workload>\navailable: %v\n", workloads.Names())
		os.Exit(2)
	}
	w, err := workloads.ByName(flag.Arg(0))
	if err != nil {
		log.Error(err.Error())
		os.Exit(1)
	}
	m, err := w.NewMachine()
	if err != nil {
		log.Error(err.Error())
		os.Exit(1)
	}
	log.Debug("machine built", "workload", w.Name)
	out := m.Run(500_000_000, 0, nil)
	os.Stdout.Write(out.Stdout)
	log.Info("run complete",
		"workload", w.Name, "stop", out.Stop, "exit", out.ExitCode,
		"cycles", out.Cycles, "committed", out.Committed,
		"ipc", fmt.Sprintf("%.2f", float64(out.Committed)/float64(out.Cycles)))
}

// printOccupancies reports the valid-entry fraction of every injectable
// structure at each workload's half-way point — the first-order predictor
// of its AVF (see EXPERIMENTS.md).
func printOccupancies(log *slog.Logger) error {
	fmt.Printf("%-13s %6s %6s %7s %6s %7s %6s %6s\n",
		"workload", "L1I", "L1D", "L1Ddrt", "L2", "L2drt", "ITLB", "DTLB")
	for _, w := range workloads.All() {
		g, err := w.Reference()
		if err != nil {
			return err
		}
		m, err := w.NewMachine()
		if err != nil {
			return err
		}
		log.Debug("sampling occupancy", "workload", w.Name, "at_cycle", g.Cycles/2)
		for m.Core.Cycles() < g.Cycles/2 && m.Core.Stopped() == 0 {
			m.Core.Cycle()
		}
		occ := m.Occupancy()
		fmt.Printf("%-13s %5.1f%% %5.1f%% %6.1f%% %5.1f%% %6.1f%% %5.1f%% %5.1f%%\n",
			w.Name, 100*occ["L1I"], 100*occ["L1D"], 100*occ["L1D.dirty"],
			100*occ["L2"], 100*occ["L2.dirty"], 100*occ["ITLB"], 100*occ["DTLB"])
	}
	return nil
}
