package main

import (
	"fmt"
	"io"
	"os"

	"mbusim/internal/liveness"
)

// shadeRamp maps a 0..1 fraction to a display character, dark to bright.
const shadeRamp = " .:-=+*#%@"

func shade(f float64) byte {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return shadeRamp[int(f*float64(len(shadeRamp)-1)+0.5)]
}

// Heatmap display bounds: row bands keep a structure's map at terminal
// height, window columns keep it at terminal width; both downsample by
// averaging, so a dense L2 renders as faithfully as a 32-entry TLB.
const (
	maxHeatRows = 16
	maxHeatCols = 64
)

// analyzeProfile renders one liveness profile artifact: per component, a
// time x row occupancy heatmap over the golden run (each cell is the valid
// fraction of a row band during a window) and the per-bit-class lifetime
// percentiles with their ACE/never-touched split.
func analyzeProfile(path string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	p, err := liveness.DecodeProfile(data)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", path, err)
		return 1
	}
	fmt.Fprintf(stdout, "liveness profile: %s, %d cycles, %d windows (image %x)\n",
		p.Workload, p.Cycles, p.Windows, p.ImageHash[:4])
	for i := range p.Components {
		c := &p.Components[i]
		fmt.Fprintf(stdout, "\n%s (%d rows x %d bits): ACE AVF %.2f%%, never-touched %.2f%%\n",
			c.Name, c.Rows, c.Cols, 100*p.AVF(c.Name), 100*p.NeverTouched(c.Name))
		heatmap(stdout, c, p.Windows)
		classTable(stdout, c, p.Cycles)
	}
	return 0
}

// heatmap prints the time x row valid-occupancy map plus the whole-
// structure occupancy (and dirty, for caches) series along the bottom.
func heatmap(w io.Writer, c *liveness.ComponentProfile, windows int) {
	bands := c.Rows
	if bands > maxHeatRows {
		bands = maxHeatRows
	}
	cols := windows
	if cols > maxHeatCols {
		cols = maxHeatCols
	}
	line := make([]byte, cols)
	for b := 0; b < bands; b++ {
		r0, r1 := b*c.Rows/bands, (b+1)*c.Rows/bands
		for j := 0; j < cols; j++ {
			w0, w1 := j*windows/cols, (j+1)*windows/cols
			valid, total := 0, 0
			for win := w0; win < w1; win++ {
				for row := r0; row < r1; row++ {
					if c.RowValidAt(win, row) {
						valid++
					}
					total++
				}
			}
			line[j] = shade(float64(valid) / float64(total))
		}
		fmt.Fprintf(w, "  rows %4d-%4d |%s|\n", r0, r1-1, line)
	}
	series := func(label string, bp []uint32) {
		for j := 0; j < cols; j++ {
			w0, w1 := j*windows/cols, (j+1)*windows/cols
			sum := 0.0
			for win := w0; win < w1; win++ {
				sum += float64(bp[win])
			}
			line[j] = shade(sum / float64(w1-w0) / 1e4)
		}
		fmt.Fprintf(w, "  %-14s|%s| (time: left=start, right=exit)\n", label, line)
	}
	series("occupancy", c.OccBP)
	if len(c.DirtyBP) > 0 {
		series("dirty", c.DirtyBP)
	}
}

// classTable prints per-bit-class liveness: how often bits were defined
// and read, the write->first-read lifetime percentiles (bucketed powers of
// two, so values are upper bounds), and each class's ACE share.
func classTable(w io.Writer, c *liveness.ComponentProfile, cycles uint64) {
	fmt.Fprintf(w, "  %-8s %10s %10s %10s %9s %9s %9s %8s %8s\n",
		"class", "bits", "defs", "reads", "life-p50", "life-p90", "life-p99", "ACE", "never")
	for i := range c.Classes {
		cl := &c.Classes[i]
		denom := float64(cl.Bits) * float64(cycles)
		fmt.Fprintf(w, "  %-8s %10d %10d %10d %9d %9d %9d %7.2f%% %7.2f%%\n",
			cl.Name, cl.Bits, cl.Defs, cl.Reads,
			cl.LifePercentile(50), cl.LifePercentile(90), cl.LifePercentile(99),
			100*float64(cl.AceBitCycles)/denom, 100*float64(cl.NeverBitCycles)/denom)
	}
}
