package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mbusim/internal/workloads"
)

func writeTestProfile(t *testing.T) string {
	t.Helper()
	w, err := workloads.ByName("stringSearch")
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Profile(8)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "stringSearch.mbup")
	if err := os.WriteFile(path, p.Encode(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestProfileModeRendersHeatmaps(t *testing.T) {
	path := writeTestProfile(t)
	code, stdout, stderr := runLogparse(t, "", "-profile", path)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, stderr)
	}
	for _, want := range []string{
		"liveness profile: stringSearch",
		"L1D (128 rows x 526 bits)",
		"ITLB (32 rows x 32 bits)",
		"rows    0-",
		"occupancy",
		"dirty",
		"life-p50",
		"never",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// All six structures render a section.
	for _, comp := range []string{"L1D", "L1I", "L2", "RegFile", "DTLB", "ITLB"} {
		if !strings.Contains(stdout, "\n"+comp+" (") {
			t.Errorf("no section for %s", comp)
		}
	}
}

func TestProfileModeRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.mbup")
	if err := os.WriteFile(path, []byte("MBUPgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runLogparse(t, "", "-profile", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if strings.Contains(stderr, "panic") || !strings.Contains(stderr, path) {
		t.Errorf("want a one-line error naming the file, got: %s", stderr)
	}
}

func TestProfileModeIsExclusive(t *testing.T) {
	if code, _, _ := runLogparse(t, "", "-profile", "x", "-trace", "y"); code != 2 {
		t.Error("-profile with -trace should exit 2")
	}
	if code, _, _ := runLogparse(t, "", "-profile", "x", "-events", "y"); code != 2 {
		t.Error("-profile with -events should exit 2")
	}
}
