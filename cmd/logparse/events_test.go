package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/telemetry"
)

// writeEventLog marshals events to a JSONL file.
func writeEventLog(t *testing.T, dir string, evs []telemetry.Event) string {
	t.Helper()
	var b strings.Builder
	for _, ev := range evs {
		line, err := json.Marshal(&ev)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	path := filepath.Join(dir, "events.jsonl")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// chaosEvents is a two-worker campaign where w2 dies holding cell 1: lease,
// expiry, retry, reassignment to w1, completion.
func chaosEvents() []telemetry.Event {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	sec := int64(time.Second)
	return []telemetry.Event{
		{Seq: 1, TimeNS: base, Type: telemetry.EventCampaignStart, Cell: -1, Cells: 2},
		{Seq: 2, TimeNS: base, Type: telemetry.EventWorkerJoin, Worker: "w1", Cell: -1},
		{Seq: 3, TimeNS: base, Type: telemetry.EventCellLeased, Worker: "w1", Cell: 0,
			Comp: "L1D", Workload: "CRC32", Faults: 1, Lease: 1},
		{Seq: 4, TimeNS: base + 1*sec, Type: telemetry.EventWorkerJoin, Worker: "w2", Cell: -1},
		{Seq: 5, TimeNS: base + 1*sec, Type: telemetry.EventCellLeased, Worker: "w2", Cell: 1,
			Comp: "L1D", Workload: "CRC32", Faults: 2, Lease: 2},
		{Seq: 6, TimeNS: base + 3*sec, Type: telemetry.EventCellDone, Worker: "w1", Cell: 0,
			Comp: "L1D", Workload: "CRC32", Faults: 1, Samples: 4,
			Counts: map[string]int{"masked": 4}},
		{Seq: 7, TimeNS: base + 6*sec, Type: telemetry.EventLeaseExpired, Worker: "w2", Cell: 1,
			Comp: "L1D", Workload: "CRC32", Faults: 2, Lease: 2},
		{Seq: 8, TimeNS: base + 6*sec, Type: telemetry.EventCellRetried, Cell: 1,
			Comp: "L1D", Workload: "CRC32", Faults: 2, Retries: 1},
		{Seq: 9, TimeNS: base + 7*sec, Type: telemetry.EventCellLeased, Worker: "w1", Cell: 1,
			Comp: "L1D", Workload: "CRC32", Faults: 2, Lease: 3},
		{Seq: 10, TimeNS: base + 9*sec, Type: telemetry.EventCellDone, Worker: "w1", Cell: 1,
			Comp: "L1D", Workload: "CRC32", Faults: 2, Samples: 4,
			Counts: map[string]int{"masked": 3, "sdc": 1}},
		{Seq: 11, TimeNS: base + 9*sec, Type: telemetry.EventCampaignDone, Cell: -1, Cells: 2},
	}
}

// chaosResults builds the results file matching chaosEvents.
func chaosResults(t *testing.T, dir string) string {
	t.Helper()
	rs := core.NewResultSet()
	r1 := &core.Result{Spec: core.Spec{Workload: "CRC32", Component: "L1D", Faults: 1, Samples: 4}}
	r1.Counts[core.EffectMasked] = 4
	r2 := &core.Result{Spec: core.Spec{Workload: "CRC32", Component: "L1D", Faults: 2, Samples: 4}}
	r2.Counts[core.EffectMasked] = 3
	r2.Counts[core.EffectSDC] = 1
	rs.Add(r1)
	rs.Add(r2)
	path := filepath.Join(dir, "results.json")
	if err := rs.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAnalyzeEventsTimelineAndCrossCheck(t *testing.T) {
	dir := t.TempDir()
	evPath := writeEventLog(t, dir, chaosEvents())
	resPath := chaosResults(t, dir)

	code, stdout, stderr := runLogparse(t, "", "-events", evPath, "-results", resPath)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, stderr)
	}
	for _, want := range []string{
		"2 cells completed, campaign complete",
		"cross-check: event log and " + resPath + " agree (2 cells)",
		"workers (2):",
	} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("output missing %q:\n%s", want, stdout)
		}
	}
	// Cell 1's chaos story: two leases, one expiry, one retry, finished by w1.
	var cell1 string
	for _, line := range strings.Split(stdout, "\n") {
		if strings.HasPrefix(line, "1 ") {
			cell1 = line
		}
	}
	if cell1 == "" {
		t.Fatalf("no timeline row for cell 1:\n%s", stdout)
	}
	fields := strings.Fields(cell1)
	// cell comp workload k leases expired retried lifetime worker
	if fields[4] != "2" || fields[5] != "1" || fields[6] != "1" || fields[8] != "w1" {
		t.Fatalf("cell 1 timeline = %q", cell1)
	}
	// Lifetime: first lease at +1s, done at +9s.
	if fields[7] != "8s" {
		t.Fatalf("cell 1 lifetime = %q, want 8s", fields[7])
	}
	// w2 never completed anything.
	if !strings.Contains(stdout, "w2") {
		t.Fatalf("worker table missing w2:\n%s", stdout)
	}
}

func TestAnalyzeEventsDetectsMismatches(t *testing.T) {
	dir := t.TempDir()

	// Results file missing a cell the log says completed.
	evPath := writeEventLog(t, dir, chaosEvents())
	rs := core.NewResultSet()
	r := &core.Result{Spec: core.Spec{Workload: "CRC32", Component: "L1D", Faults: 1, Samples: 4}}
	r.Counts[core.EffectMasked] = 4
	rs.Add(r)
	partial := filepath.Join(dir, "partial.json")
	if err := rs.Save(partial); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runLogparse(t, "", "-events", evPath, "-results", partial)
	if code != 1 || !strings.Contains(stderr, "results file has no such cell") {
		t.Fatalf("missing-cell mismatch: exit=%d stderr=%s", code, stderr)
	}

	// Non-monotonic sequence numbers are corruption.
	evs := chaosEvents()
	evs[3].Seq = 2
	badPath := filepath.Join(dir, "bad")
	if err := os.Mkdir(badPath, 0o755); err != nil {
		t.Fatal(err)
	}
	evPath = writeEventLog(t, badPath, evs)
	code, _, stderr = runLogparse(t, "", "-events", evPath)
	if code != 1 || !strings.Contains(stderr, "strictly monotonic") {
		t.Fatalf("seq regression: exit=%d stderr=%s", code, stderr)
	}

	// A cell completed twice is an accounting bug.
	evs = chaosEvents()
	dup := evs[9]
	evs = append(evs, telemetry.Event{Seq: 12, TimeNS: dup.TimeNS, Type: dup.Type,
		Worker: dup.Worker, Cell: dup.Cell, Comp: dup.Comp, Workload: dup.Workload,
		Faults: dup.Faults, Samples: dup.Samples})
	dupPath := filepath.Join(dir, "dup")
	if err := os.Mkdir(dupPath, 0o755); err != nil {
		t.Fatal(err)
	}
	evPath = writeEventLog(t, dupPath, evs)
	code, _, stderr = runLogparse(t, "", "-events", evPath)
	if code != 1 || !strings.Contains(stderr, "completed 2 times") {
		t.Fatalf("double completion: exit=%d stderr=%s", code, stderr)
	}
}

func TestAnalyzeEventsToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	evPath := writeEventLog(t, dir, chaosEvents())
	f, err := os.OpenFile(evPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":12,"t_ns":99,"ty`)
	f.Close()

	code, stdout, stderr := runLogparse(t, "", "-events", evPath)
	if code != 0 {
		t.Fatalf("torn tail must not fail analysis: exit=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stderr, "skipped 1 truncated final line") {
		t.Fatalf("truncation note missing: %s", stderr)
	}
	if !strings.Contains(stdout, "2 cells completed") {
		t.Fatalf("analysis output:\n%s", stdout)
	}
}

// serviceEvents interleaves two campaigns over one shared fleet, the way a
// campaign service's log looks: both campaigns use cell index 0, which must
// NOT read as one cell completing twice.
func serviceEvents() []telemetry.Event {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	sec := int64(time.Second)
	return []telemetry.Event{
		{Seq: 1, TimeNS: base, Type: telemetry.EventCampaignQueued, Campaign: "c000000", Tenant: "alpha", Cell: -1, Cells: 1},
		{Seq: 2, TimeNS: base, Type: telemetry.EventCampaignState, Campaign: "c000000", Tenant: "alpha", Cell: -1, Detail: "running"},
		{Seq: 3, TimeNS: base, Type: telemetry.EventCampaignStart, Campaign: "c000000", Cell: -1, Cells: 1},
		{Seq: 4, TimeNS: base + 1*sec, Type: telemetry.EventCampaignQueued, Campaign: "c000001", Tenant: "beta", Cell: -1, Cells: 1},
		{Seq: 5, TimeNS: base + 1*sec, Type: telemetry.EventCampaignState, Campaign: "c000001", Tenant: "beta", Cell: -1, Detail: "running"},
		{Seq: 6, TimeNS: base + 1*sec, Type: telemetry.EventCampaignStart, Campaign: "c000001", Cell: -1, Cells: 1},
		{Seq: 7, TimeNS: base + 1*sec, Type: telemetry.EventCellLeased, Campaign: "c000000", Worker: "w1", Cell: 0,
			Comp: "L1D", Workload: "CRC32", Faults: 1, Lease: 1},
		{Seq: 8, TimeNS: base + 2*sec, Type: telemetry.EventCellLeased, Campaign: "c000001", Worker: "w1", Cell: 0,
			Comp: "DTLB", Workload: "CRC32", Faults: 2, Lease: 2},
		{Seq: 9, TimeNS: base + 3*sec, Type: telemetry.EventCellDone, Campaign: "c000000", Worker: "w1", Cell: 0,
			Comp: "L1D", Workload: "CRC32", Faults: 1, Samples: 4, Counts: map[string]int{"masked": 4}},
		{Seq: 10, TimeNS: base + 3*sec, Type: telemetry.EventCampaignDone, Campaign: "c000000", Cell: -1, Cells: 1},
		{Seq: 11, TimeNS: base + 3*sec, Type: telemetry.EventCampaignState, Campaign: "c000000", Tenant: "alpha", Cell: -1, Detail: "done"},
		{Seq: 12, TimeNS: base + 4*sec, Type: telemetry.EventCellDone, Campaign: "c000001", Worker: "w1", Cell: 0,
			Comp: "DTLB", Workload: "CRC32", Faults: 2, Samples: 4, Counts: map[string]int{"masked": 3, "sdc": 1}},
		{Seq: 13, TimeNS: base + 4*sec, Type: telemetry.EventCampaignDone, Campaign: "c000001", Cell: -1, Cells: 1},
		{Seq: 14, TimeNS: base + 4*sec, Type: telemetry.EventCampaignState, Campaign: "c000001", Tenant: "beta", Cell: -1, Detail: "done"},
	}
}

// TestAnalyzeEventsMultiCampaign: a shared service log is keyed per
// campaign — colliding cell indexes across campaigns are distinct cells,
// the summary counts campaigns by final state, and the timeline grows a
// campaign column.
func TestAnalyzeEventsMultiCampaign(t *testing.T) {
	dir := t.TempDir()
	evPath := writeEventLog(t, dir, serviceEvents())

	code, stdout, stderr := runLogparse(t, "", "-events", evPath)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s stdout=%s", code, stderr, stdout)
	}
	if strings.Contains(stderr, "completed 2 times") {
		t.Fatalf("colliding cell indexes across campaigns misread as a double completion:\n%s", stderr)
	}
	if !strings.Contains(stdout, "2 cells completed across 2 campaigns: 2 done") {
		t.Fatalf("multi-campaign summary missing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "campaign") || !strings.Contains(stdout, "c000001") {
		t.Fatalf("timeline lacks the campaign column:\n%s", stdout)
	}
}

// TestAnalyzeEventsCampaignFilter: -campaign narrows analysis to one
// campaign's slice, which is also how -results cross-checks a per-campaign
// results file out of a shared log.
func TestAnalyzeEventsCampaignFilter(t *testing.T) {
	dir := t.TempDir()
	evPath := writeEventLog(t, dir, serviceEvents())

	rs := core.NewResultSet()
	r := &core.Result{Spec: core.Spec{Workload: "CRC32", Component: "L1D", Faults: 1, Samples: 4}}
	r.Counts[core.EffectMasked] = 4
	rs.Add(r)
	resPath := filepath.Join(dir, "c000000.json")
	if err := rs.Save(resPath); err != nil {
		t.Fatal(err)
	}

	// Without -campaign the cross-check is ambiguous and refuses.
	code, _, stderr := runLogparse(t, "", "-events", evPath, "-results", resPath)
	if code != 2 || !strings.Contains(stderr, "add -campaign") {
		t.Fatalf("multi-campaign -results: exit=%d stderr=%s", code, stderr)
	}

	code, stdout, stderr := runLogparse(t, "", "-events", evPath, "-campaign", "c000000", "-results", resPath)
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stdout, "1 cells completed, campaign complete") {
		t.Fatalf("filtered slice should read as a single campaign:\n%s", stdout)
	}
	if !strings.Contains(stdout, "agree (1 cells)") {
		t.Fatalf("cross-check missing:\n%s", stdout)
	}
	if strings.Contains(stdout, "DTLB") {
		t.Fatalf("filter leaked the other campaign's cells:\n%s", stdout)
	}

	code, _, stderr = runLogparse(t, "", "-events", evPath, "-campaign", "c999999")
	if code != 1 || !strings.Contains(stderr, "no events for campaign") {
		t.Fatalf("unknown campaign filter: exit=%d stderr=%s", code, stderr)
	}

	code, _, stderr = runLogparse(t, "", "-campaign", "c000000")
	if code != 2 || !strings.Contains(stderr, "needs -events") {
		t.Fatalf("-campaign without -events: exit=%d stderr=%s", code, stderr)
	}
}
