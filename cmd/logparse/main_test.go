package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mbusim/internal/core"
	"mbusim/internal/telemetry"
)

func runLogparse(t *testing.T, stdin string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errB bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errB)
	return code, out.String(), errB.String()
}

func TestParseLogReconstructsResults(t *testing.T) {
	log := "noise line\n" +
		"[  1/  3] L1D      CRC32         2-bit: AVF= 12.50% masked= 75.0% sdc= 12.5% crash= 10.0% timeout=  2.5% assert=  0.0% ±1.00% (1s elapsed, eta 2s)\n"
	code, stdout, stderr := runLogparse(t, log, "-samples", "40")
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, stderr)
	}
	var rs core.ResultSet
	if err := json.Unmarshal([]byte(stdout), &rs); err != nil {
		t.Fatal(err)
	}
	res, err := rs.Get("L1D", "CRC32", 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[core.EffectMasked] != 30 || res.Counts[core.EffectSDC] != 5 ||
		res.Counts[core.EffectCrash] != 4 || res.Counts[core.EffectTimeout] != 1 {
		t.Fatalf("reconstructed counts = %v", res.Counts)
	}
	if !strings.Contains(stderr, "parsed 1 cells") {
		t.Fatalf("stderr = %s", stderr)
	}
}

// traceFixture writes two cells of synthetic records through the real
// Tracer, so the analyzer is tested against the wire format gefin emits.
func traceFixture(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	tr := telemetry.NewTracer(&buf)
	var cell1, cell2 []telemetry.SampleRecord
	for i := 0; i < 4; i++ {
		cell1 = append(cell1, telemetry.SampleRecord{
			Component: "L1D", Workload: "CRC32", Faults: 1, Sample: i,
			Checkpoint: i % 2, CyclesSkipped: uint64(i % 2 * 500),
			Outcome: "masked", DurationNS: int64(1000 * (i + 1)),
		})
		cell2 = append(cell2, telemetry.SampleRecord{
			Component: "L2", Workload: "CRC32", Faults: 2, Sample: i,
			Checkpoint: -1, CyclesSkipped: 0,
			Outcome: "sdc", DurationNS: 2000,
		})
	}
	tr.WriteCell(cell1, nil)
	tr.WriteCell(cell2, nil)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestAnalyzeTraceFromStdin(t *testing.T) {
	code, stdout, stderr := runLogparse(t, traceFixture(t), "-trace", "-")
	if code != 0 {
		t.Fatalf("exit=%d stderr=%s", code, stderr)
	}
	for _, want := range []string{
		"L1D", "L2", "50.0%", // cell 1 hit rate: 2 of 4 restores skipped cycles
		"8 samples, 25.0% hit rate, 1000 golden cycles skipped",
		"none (replayed from cycle 0)",
		"ckpt 0", "ckpt 1",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("trace report missing %q:\n%s", want, stdout)
		}
	}
}

func TestAnalyzeTraceFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, []byte(traceFixture(t)), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runLogparse(t, "", "-trace", path)
	if code != 0 || !strings.Contains(stdout, "checkpoint restores") {
		t.Fatalf("exit=%d stdout=%s", code, stdout)
	}
}

func TestAnalyzeTraceEmptyAndMissing(t *testing.T) {
	if code, _, stderr := runLogparse(t, "", "-trace", "-"); code != 1 ||
		!strings.Contains(stderr, "no records") {
		t.Fatalf("empty trace: exit=%d stderr=%s", code, stderr)
	}
	if code, _, _ := runLogparse(t, "", "-trace", "/nonexistent/trace.jsonl"); code != 1 {
		t.Fatalf("missing trace file: exit=%d", code)
	}
}
