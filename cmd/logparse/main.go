// logparse reconstructs a gefin results JSON from a campaign log, allowing
// analysis of partially completed campaigns (each completed cell's class
// fractions and sample count are recoverable from its log line).
//
//	logparse -samples 120 < campaign.log > results.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"

	"mbusim/internal/core"
	"mbusim/internal/workloads"
)

var lineRE = regexp.MustCompile(
	`^\[\s*\d+/\s*\d+\] (\S+)\s+(\S+)\s+(\d)-bit: AVF=\s*[\d.]+% ` +
		`masked=\s*([\d.]+)% sdc=\s*([\d.]+)% crash=\s*([\d.]+)% ` +
		`timeout=\s*([\d.]+)% assert=\s*([\d.]+)%`)

func main() {
	samples := flag.Int("samples", 120, "per-cell sample count used by the campaign")
	flag.Parse()

	rs := core.NewResultSet()
	sc := bufio.NewScanner(os.Stdin)
	cells := 0
	for sc.Scan() {
		m := lineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		comp, wl := m[1], m[2]
		faults, _ := strconv.Atoi(m[3])
		res := &core.Result{
			Spec: core.Spec{Workload: wl, Component: comp, Faults: faults, Samples: *samples},
		}
		if w, err := workloads.ByName(wl); err == nil {
			if g, err := w.Reference(); err == nil {
				res.GoldenCycles = g.Cycles
			}
		}
		total := 0
		for i, e := range core.Effects() {
			pct, _ := strconv.ParseFloat(m[4+i], 64)
			n := int(math.Round(pct * float64(*samples) / 100))
			res.Counts[e] = n
			total += n
		}
		if total != *samples {
			// Rounding slack lands in the dominant class.
			res.Counts[core.EffectMasked] += *samples - total
		}
		rs.Add(res)
		cells++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(rs, "", " ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.Write(data)
	fmt.Fprintf(os.Stderr, "parsed %d cells\n", cells)
}
