// logparse reconstructs a gefin results JSON from a campaign log, allowing
// analysis of partially completed campaigns (each completed cell's class
// fractions and sample count are recoverable from its log line).
//
//	logparse -samples 120 < campaign.log > results.json
//
// With -trace it instead analyzes a gefin JSONL injection trace (written by
// gefin -trace): per-cell sample latency percentiles and checkpoint hit
// rates, plus a per-checkpoint-index restore profile across the campaign.
//
//	logparse -trace trace.jsonl
//
// With -events it analyzes a campaign event log (written by gefin -events):
// per-cell lifecycle timelines (lease through submit, including expiries and
// retries), per-worker utilization, the straggler cells, and — with -results
// pointing at the campaign's results file — a cross-check that the event log
// and the ResultSet tell the same story. Inconsistencies exit nonzero.
//
//	logparse -events events.jsonl -results results.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/report"
	"mbusim/internal/telemetry"
	"mbusim/internal/workloads"
)

var lineRE = regexp.MustCompile(
	`^\[\s*\d+/\s*\d+\] (\S+)\s+(\S+)\s+(\d)-bit: AVF=\s*[\d.]+% ` +
		`masked=\s*([\d.]+)% sdc=\s*([\d.]+)% crash=\s*([\d.]+)% ` +
		`timeout=\s*([\d.]+)% assert=\s*([\d.]+)%`)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("logparse", flag.ContinueOnError)
	fs.SetOutput(stderr)
	samples := fs.Int("samples", 120, "per-cell sample count used by the campaign")
	tracePath := fs.String("trace", "", "analyze a gefin JSONL injection trace instead of parsing a log (- reads stdin)")
	eventsPath := fs.String("events", "", "analyze a gefin campaign event log instead of parsing a log (- reads stdin)")
	resultsPath := fs.String("results", "", "with -events: cross-check the event log against this results JSON")
	campaignID := fs.String("campaign", "", "with -events: restrict analysis to one campaign's slice of a shared service log")
	profilePath := fs.String("profile", "", "render a liveness profile artifact (.mbup, from gefin -profile): time x row occupancy heatmaps and per-bit-class lifetime percentiles")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	modes := 0
	for _, m := range []string{*tracePath, *eventsPath, *profilePath} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(stderr, "-trace, -events and -profile are separate modes: pick one")
		return 2
	}
	if *profilePath != "" {
		return analyzeProfile(*profilePath, stdout, stderr)
	}
	if *campaignID != "" && *eventsPath == "" {
		fmt.Fprintln(stderr, "-campaign filters an event log: it needs -events")
		return 2
	}
	if *eventsPath != "" {
		return analyzeEvents(*eventsPath, *resultsPath, *campaignID, stdin, stdout, stderr)
	}
	if *tracePath != "" {
		return analyzeTrace(*tracePath, stdin, stdout, stderr)
	}
	return parseLog(*samples, stdin, stdout, stderr)
}

func parseLog(samples int, stdin io.Reader, stdout, stderr io.Writer) int {
	rs := core.NewResultSet()
	sc := bufio.NewScanner(stdin)
	cells := 0
	for sc.Scan() {
		m := lineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		comp, wl := m[1], m[2]
		faults, _ := strconv.Atoi(m[3])
		res := &core.Result{
			Spec: core.Spec{Workload: wl, Component: comp, Faults: faults, Samples: samples},
		}
		if w, err := workloads.ByName(wl); err == nil {
			if g, err := w.Reference(); err == nil {
				res.GoldenCycles = g.Cycles
			}
		}
		total := 0
		for i, e := range core.Effects() {
			pct, _ := strconv.ParseFloat(m[4+i], 64)
			n := int(math.Round(pct * float64(samples) / 100))
			res.Counts[e] = n
			total += n
		}
		if total != samples {
			// Rounding slack lands in the dominant class.
			res.Counts[core.EffectMasked] += samples - total
		}
		rs.Add(res)
		cells++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	data, err := json.MarshalIndent(rs, "", " ")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	stdout.Write(data)
	fmt.Fprintf(stderr, "parsed %d cells\n", cells)
	return 0
}

// cellKey identifies one campaign cell inside a trace.
type cellKey struct {
	Component string
	Workload  string
	Faults    int
}

// analyzeTrace digests a gefin JSONL trace: per-cell latency percentiles
// and checkpoint hit rate, then the campaign-wide restore count per
// checkpoint index (-1 = runs replayed from cycle 0).
func analyzeTrace(path string, stdin io.Reader, stdout, stderr io.Writer) int {
	r := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		r = f
	}
	trace, err := telemetry.ReadTraceTyped(r)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	recs := trace.Samples
	if len(recs) == 0 {
		fmt.Fprintln(stderr, "trace holds no records")
		return 1
	}
	if trace.Unknown > 0 {
		fmt.Fprintf(stderr, "note: skipped %d records of unknown type\n", trace.Unknown)
	}

	var (
		order   []cellKey
		byCell  = make(map[cellKey][]telemetry.SampleRecord)
		byIndex = make(map[int]int)
		skipped uint64
	)
	for _, rec := range recs {
		k := cellKey{rec.Component, rec.Workload, rec.Faults}
		if _, ok := byCell[k]; !ok {
			order = append(order, k)
		}
		byCell[k] = append(byCell[k], rec)
		byIndex[rec.Checkpoint]++
		skipped += rec.CyclesSkipped
	}

	fmt.Fprintf(stdout, "%-8s %-13s %s %7s %9s %9s %9s %8s\n",
		"comp", "workload", "k", "samples", "p50", "p90", "p99", "ckpt-hit")
	totalHits := 0
	for _, k := range order {
		cell := byCell[k]
		durs := make([]int64, len(cell))
		hits := 0
		for i, rec := range cell {
			durs[i] = rec.DurationNS
			if rec.CyclesSkipped > 0 {
				hits++
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		totalHits += hits
		fmt.Fprintf(stdout, "%-8s %-13s %d %7d %9s %9s %9s %7.1f%%\n",
			k.Component, k.Workload, k.Faults, len(cell),
			fmtNS(percentile(durs, 50)), fmtNS(percentile(durs, 90)), fmtNS(percentile(durs, 99)),
			100*float64(hits)/float64(len(cell)))
	}

	fmt.Fprintf(stdout, "\ncheckpoint restores (%d samples, %.1f%% hit rate, %d golden cycles skipped):\n",
		len(recs), 100*float64(totalHits)/float64(len(recs)), skipped)
	indexes := make([]int, 0, len(byIndex))
	for idx := range byIndex {
		indexes = append(indexes, idx)
	}
	sort.Ints(indexes)
	for _, idx := range indexes {
		label := fmt.Sprintf("ckpt %d", idx)
		if idx == -1 {
			label = "none (replayed from cycle 0)"
		}
		fmt.Fprintf(stdout, "  %-28s %6d (%5.1f%%)\n",
			label, byIndex[idx], 100*float64(byIndex[idx])/float64(len(recs)))
	}
	if len(trace.Fates) > 0 {
		fmt.Fprintf(stdout, "\nmasking mechanisms (%d forensics records):\n", len(trace.Fates))
		fmt.Fprint(stdout, report.ForensicsTable(trace.Fates))
	}
	return 0
}

// cellStory accumulates one cell's lifecycle from the event stream.
type cellStory struct {
	campaign string // "" for a single-campaign (one-shot coordinator) log
	cell     int
	comp     string
	workload string
	faults   int
	leases   int
	expiries int
	retries  int
	firstNS  int64  // first lease timestamp (0: never leased)
	doneNS   int64  // cell_done timestamp (0: never completed)
	dones    int    // cell_done count (must be exactly 1 for a finished cell)
	worker   string // worker that completed it
	samples  int
}

// cellID names one cell in one campaign. A campaign service multiplexes
// many campaigns into one shared event log, so a bare cell index is
// ambiguous: campaign A's cell 0 and campaign B's cell 0 are different
// cells. Single-campaign logs have Campaign == "" throughout and collapse
// to the old keying.
type cellID struct {
	campaign string
	cell     int
}

// analyzeEvents digests a campaign event log: validates ordering, rebuilds
// each cell's lease→run→submit timeline, reports per-worker utilization and
// straggler cells, and (with resultsPath) cross-checks the log against the
// campaign's results file. Any inconsistency — non-monotonic sequence
// numbers, a cell completed twice, a results/log mismatch — exits 1.
// Multi-campaign service logs are keyed per campaign; pass campaign to
// restrict analysis (and the -results cross-check) to one campaign's slice.
func analyzeEvents(path, resultsPath, campaign string, stdin io.Reader, stdout, stderr io.Writer) int {
	r := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		r = f
	}
	el, err := telemetry.ReadEvents(r)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	evs := el.Events
	if len(evs) == 0 {
		fmt.Fprintln(stderr, "event log holds no events")
		return 1
	}
	if el.Truncated > 0 {
		fmt.Fprintf(stderr, "note: skipped %d truncated final line(s)\n", el.Truncated)
	}
	if campaign != "" {
		var kept []telemetry.Event
		for _, ev := range evs {
			if ev.Campaign == campaign {
				kept = append(kept, ev)
			}
		}
		if len(kept) == 0 {
			fmt.Fprintf(stderr, "event log holds no events for campaign %s\n", campaign)
			return 1
		}
		evs = kept
	}

	bad := 0
	complain := func(format string, args ...any) {
		bad++
		fmt.Fprintf(stderr, "inconsistent: "+format+"\n", args...)
	}
	var lastSeq uint64
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			complain("event seq %d after %d (must be strictly monotonic)", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}

	// Fold the stream into per-cell stories and per-worker tallies. Cells
	// are keyed per campaign: a service log interleaves many campaigns and
	// their cell indexes collide.
	type workerStat struct {
		cells  int
		busyNS int64
		leased map[cellID]int64 // cell -> lease timestamp currently open
	}
	var (
		cells     = make(map[cellID]*cellStory)
		workers   = make(map[string]*workerStat)
		starts    = make(map[string]int)
		doneEvent = make(map[string]*telemetry.Event)
		lastState = make(map[string]string)
		campaigns = make(map[string]bool)
	)
	story := func(ev telemetry.Event) *cellStory {
		k := cellID{ev.Campaign, ev.Cell}
		s, ok := cells[k]
		if !ok {
			s = &cellStory{campaign: ev.Campaign, cell: ev.Cell, comp: ev.Comp, workload: ev.Workload, faults: ev.Faults}
			cells[k] = s
		}
		return s
	}
	wstat := func(id string) *workerStat {
		w, ok := workers[id]
		if !ok {
			w = &workerStat{leased: make(map[cellID]int64)}
			workers[id] = w
		}
		return w
	}
	for i := range evs {
		ev := evs[i]
		if ev.Campaign != "" {
			campaigns[ev.Campaign] = true
		}
		switch ev.Type {
		case telemetry.EventCampaignStart:
			starts[ev.Campaign]++
		case telemetry.EventCampaignQueued:
			lastState[ev.Campaign] = "queued"
		case telemetry.EventCampaignState:
			lastState[ev.Campaign] = ev.Detail
		case telemetry.EventCellLeased:
			s := story(ev)
			s.leases++
			if s.firstNS == 0 {
				s.firstNS = ev.TimeNS
			}
			wstat(ev.Worker).leased[cellID{ev.Campaign, ev.Cell}] = ev.TimeNS
		case telemetry.EventLeaseExpired:
			story(ev).expiries++
			w := wstat(ev.Worker)
			delete(w.leased, cellID{ev.Campaign, ev.Cell}) // expiry: silent worker, not busy time
		case telemetry.EventCellRetried:
			story(ev).retries++
		case telemetry.EventCellDone:
			s := story(ev)
			s.dones++
			s.doneNS = ev.TimeNS
			s.worker = ev.Worker
			s.samples = ev.Samples
			if ev.Worker != "" {
				w := wstat(ev.Worker)
				w.cells++
				if t, ok := w.leased[cellID{ev.Campaign, ev.Cell}]; ok {
					w.busyNS += ev.TimeNS - t
					delete(w.leased, cellID{ev.Campaign, ev.Cell})
				}
			}
		case telemetry.EventCampaignDone:
			doneEvent[ev.Campaign] = &evs[i]
		}
	}
	multi := len(campaigns) > 1
	for _, id := range sortedKeys(starts) {
		if n := starts[id]; n > 1 {
			if id == "" {
				fmt.Fprintf(stderr, "note: %d campaign_start events (restarted/resumed campaign)\n", n)
			} else {
				fmt.Fprintf(stderr, "note: campaign %s started %d times (restarted/resumed)\n", id, n)
			}
		}
	}

	doneCells := 0
	doneBy := make(map[string]int)
	for _, s := range cells {
		if s.dones > 1 {
			complain("cell %s%d (%s/%s/%d-bit) completed %d times", cellPrefix(s.campaign), s.cell, s.comp, s.workload, s.faults, s.dones)
		}
		if s.dones > 0 {
			doneCells++
			doneBy[s.campaign]++
		}
	}
	for _, id := range sortedKeys(doneEvent) {
		de := doneEvent[id]
		// A resumed campaign legitimately reports more completed cells than
		// this log saw finish; fewer means lost events.
		if de.Detail == "" && de.Cells < doneBy[id] {
			complain("campaign %sdone event reports %d cells but the log records %d completions",
				cellPrefix(id), de.Cells, doneBy[id])
		}
	}

	span := time.Duration(evs[len(evs)-1].TimeNS - evs[0].TimeNS)
	fmt.Fprintf(stdout, "%d events over %v: %d cells completed", len(evs), span.Round(time.Millisecond), doneCells)
	if multi {
		// A shared service log: summarize each campaign's final state —
		// campaign_state transitions when the service journaled them, else
		// presence/absence of the coordinator's campaign_done.
		byState := make(map[string]int)
		for id := range campaigns {
			st := lastState[id]
			if st == "" {
				switch de := doneEvent[id]; {
				case de == nil:
					st = "running"
				case de.Detail != "":
					st = "failed"
				default:
					st = "done"
				}
			}
			byState[st]++
		}
		fmt.Fprintf(stdout, " across %d campaigns:", len(campaigns))
		for _, st := range sortedKeys(byState) {
			fmt.Fprintf(stdout, " %d %s", byState[st], st)
		}
	} else {
		var de *telemetry.Event
		for _, d := range doneEvent {
			de = d
		}
		switch {
		case de == nil:
			fmt.Fprint(stdout, ", campaign still running (no campaign_done)")
		case de.Detail != "":
			fmt.Fprintf(stdout, ", campaign FAILED: %s", de.Detail)
		default:
			fmt.Fprint(stdout, ", campaign complete")
		}
	}
	fmt.Fprintln(stdout)

	// Per-cell timelines, campaign-major then cell order.
	order := make([]cellID, 0, len(cells))
	for k := range cells {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].campaign != order[j].campaign {
			return order[i].campaign < order[j].campaign
		}
		return order[i].cell < order[j].cell
	})
	if len(order) > 0 {
		if multi {
			fmt.Fprintf(stdout, "\n%-9s ", "campaign")
		} else {
			fmt.Fprint(stdout, "\n")
		}
		fmt.Fprintf(stdout, "%-5s %-8s %-13s %s %8s %8s %8s %9s  %s\n",
			"cell", "comp", "workload", "k", "leases", "expired", "retried", "lifetime", "completed by")
	}
	for _, k := range order {
		s := cells[k]
		life, by := "--", "--"
		if s.dones > 0 {
			if s.firstNS > 0 {
				life = time.Duration(s.doneNS - s.firstNS).Round(time.Millisecond).String()
			}
			by = s.worker
			if by == "" {
				by = "local"
			}
		}
		if multi {
			fmt.Fprintf(stdout, "%-9s ", s.campaign)
		}
		fmt.Fprintf(stdout, "%-5d %-8s %-13s %d %8d %8d %8d %9s  %s\n",
			s.cell, s.comp, s.workload, s.faults, s.leases, s.expiries, s.retries, life, by)
	}

	// Per-worker utilization: share of the campaign span spent holding a
	// lease that ended in a completed cell.
	ids := make([]string, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	if len(ids) > 0 {
		fmt.Fprintf(stdout, "\nworkers (%d):\n", len(ids))
		for _, id := range ids {
			w := workers[id]
			util := 0.0
			if span > 0 {
				util = 100 * float64(w.busyNS) / float64(span)
			}
			fmt.Fprintf(stdout, "  %-20s %3d cells, %5.1f%% busy\n", id, w.cells, util)
		}
	}

	// Stragglers: the slowest completed cells by first-lease→done lifetime.
	type straggler struct {
		s    *cellStory
		life int64
	}
	var slow []straggler
	for _, s := range cells {
		if s.dones > 0 && s.firstNS > 0 {
			slow = append(slow, straggler{s, s.doneNS - s.firstNS})
		}
	}
	sort.Slice(slow, func(i, j int) bool { return slow[i].life > slow[j].life })
	if len(slow) > 3 {
		slow = slow[:3]
	}
	if len(slow) > 0 {
		fmt.Fprintln(stdout, "\nstragglers:")
		for _, st := range slow {
			fmt.Fprintf(stdout, "  cell %s%d %s/%s/%d-bit: %v (%d leases)\n",
				cellPrefix(st.s.campaign), st.s.cell, st.s.comp, st.s.workload, st.s.faults,
				time.Duration(st.life).Round(time.Millisecond), st.s.leases)
		}
	}

	// Cross-check against the results file: every completion in the log must
	// be in the results, and vice versa (a resumed campaign's earlier session
	// is in the same continued log, so both directions must agree).
	if resultsPath != "" {
		if multi {
			fmt.Fprintln(stderr, "-results cross-checks one campaign's results file: add -campaign to pick which slice of this multi-campaign log")
			return 2
		}
		rs, err := core.LoadResultSet(resultsPath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		for _, s := range cells {
			if s.dones == 0 {
				continue
			}
			key := core.CellKey{Component: s.comp, Workload: s.workload, Faults: s.faults}
			res, ok := rs.Cells[key]
			switch {
			case !ok:
				complain("log says cell %d (%s/%s/%d-bit) completed, results file has no such cell",
					s.cell, s.comp, s.workload, s.faults)
			case s.samples > 0 && res.Samples() != s.samples:
				complain("cell %d (%s/%s/%d-bit): log recorded %d samples, results file has %d",
					s.cell, s.comp, s.workload, s.faults, s.samples, res.Samples())
			}
		}
		for key := range rs.Cells {
			found := false
			for _, s := range cells {
				if s.dones > 0 && s.comp == key.Component && s.workload == key.Workload && s.faults == key.Faults {
					found = true
					break
				}
			}
			if !found {
				complain("results file has %s/%s/%d-bit, log never recorded it completing",
					key.Component, key.Workload, key.Faults)
			}
		}
		if bad == 0 {
			fmt.Fprintf(stdout, "\ncross-check: event log and %s agree (%d cells)\n", resultsPath, len(rs.Cells))
		}
	}

	if bad > 0 {
		fmt.Fprintf(stderr, "%d inconsistencies\n", bad)
		return 1
	}
	return 0
}

// cellPrefix renders a campaign id as a cell-label prefix; "" (a
// single-campaign log) stays unadorned.
func cellPrefix(campaign string) string {
	if campaign == "" {
		return ""
	}
	return campaign + "/"
}

// sortedKeys returns a map's string keys in order, for deterministic output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// percentile returns the p-th percentile (nearest-rank) of sorted values.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func fmtNS(ns int64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}
