// logparse reconstructs a gefin results JSON from a campaign log, allowing
// analysis of partially completed campaigns (each completed cell's class
// fractions and sample count are recoverable from its log line).
//
//	logparse -samples 120 < campaign.log > results.json
//
// With -trace it instead analyzes a gefin JSONL injection trace (written by
// gefin -trace): per-cell sample latency percentiles and checkpoint hit
// rates, plus a per-checkpoint-index restore profile across the campaign.
//
//	logparse -trace trace.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/report"
	"mbusim/internal/telemetry"
	"mbusim/internal/workloads"
)

var lineRE = regexp.MustCompile(
	`^\[\s*\d+/\s*\d+\] (\S+)\s+(\S+)\s+(\d)-bit: AVF=\s*[\d.]+% ` +
		`masked=\s*([\d.]+)% sdc=\s*([\d.]+)% crash=\s*([\d.]+)% ` +
		`timeout=\s*([\d.]+)% assert=\s*([\d.]+)%`)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("logparse", flag.ContinueOnError)
	fs.SetOutput(stderr)
	samples := fs.Int("samples", 120, "per-cell sample count used by the campaign")
	tracePath := fs.String("trace", "", "analyze a gefin JSONL injection trace instead of parsing a log (- reads stdin)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *tracePath != "" {
		return analyzeTrace(*tracePath, stdin, stdout, stderr)
	}
	return parseLog(*samples, stdin, stdout, stderr)
}

func parseLog(samples int, stdin io.Reader, stdout, stderr io.Writer) int {
	rs := core.NewResultSet()
	sc := bufio.NewScanner(stdin)
	cells := 0
	for sc.Scan() {
		m := lineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		comp, wl := m[1], m[2]
		faults, _ := strconv.Atoi(m[3])
		res := &core.Result{
			Spec: core.Spec{Workload: wl, Component: comp, Faults: faults, Samples: samples},
		}
		if w, err := workloads.ByName(wl); err == nil {
			if g, err := w.Reference(); err == nil {
				res.GoldenCycles = g.Cycles
			}
		}
		total := 0
		for i, e := range core.Effects() {
			pct, _ := strconv.ParseFloat(m[4+i], 64)
			n := int(math.Round(pct * float64(samples) / 100))
			res.Counts[e] = n
			total += n
		}
		if total != samples {
			// Rounding slack lands in the dominant class.
			res.Counts[core.EffectMasked] += samples - total
		}
		rs.Add(res)
		cells++
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	data, err := json.MarshalIndent(rs, "", " ")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	stdout.Write(data)
	fmt.Fprintf(stderr, "parsed %d cells\n", cells)
	return 0
}

// cellKey identifies one campaign cell inside a trace.
type cellKey struct {
	Component string
	Workload  string
	Faults    int
}

// analyzeTrace digests a gefin JSONL trace: per-cell latency percentiles
// and checkpoint hit rate, then the campaign-wide restore count per
// checkpoint index (-1 = runs replayed from cycle 0).
func analyzeTrace(path string, stdin io.Reader, stdout, stderr io.Writer) int {
	r := stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer f.Close()
		r = f
	}
	trace, err := telemetry.ReadTraceTyped(r)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	recs := trace.Samples
	if len(recs) == 0 {
		fmt.Fprintln(stderr, "trace holds no records")
		return 1
	}
	if trace.Unknown > 0 {
		fmt.Fprintf(stderr, "note: skipped %d records of unknown type\n", trace.Unknown)
	}

	var (
		order   []cellKey
		byCell  = make(map[cellKey][]telemetry.SampleRecord)
		byIndex = make(map[int]int)
		skipped uint64
	)
	for _, rec := range recs {
		k := cellKey{rec.Component, rec.Workload, rec.Faults}
		if _, ok := byCell[k]; !ok {
			order = append(order, k)
		}
		byCell[k] = append(byCell[k], rec)
		byIndex[rec.Checkpoint]++
		skipped += rec.CyclesSkipped
	}

	fmt.Fprintf(stdout, "%-8s %-13s %s %7s %9s %9s %9s %8s\n",
		"comp", "workload", "k", "samples", "p50", "p90", "p99", "ckpt-hit")
	totalHits := 0
	for _, k := range order {
		cell := byCell[k]
		durs := make([]int64, len(cell))
		hits := 0
		for i, rec := range cell {
			durs[i] = rec.DurationNS
			if rec.CyclesSkipped > 0 {
				hits++
			}
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		totalHits += hits
		fmt.Fprintf(stdout, "%-8s %-13s %d %7d %9s %9s %9s %7.1f%%\n",
			k.Component, k.Workload, k.Faults, len(cell),
			fmtNS(percentile(durs, 50)), fmtNS(percentile(durs, 90)), fmtNS(percentile(durs, 99)),
			100*float64(hits)/float64(len(cell)))
	}

	fmt.Fprintf(stdout, "\ncheckpoint restores (%d samples, %.1f%% hit rate, %d golden cycles skipped):\n",
		len(recs), 100*float64(totalHits)/float64(len(recs)), skipped)
	indexes := make([]int, 0, len(byIndex))
	for idx := range byIndex {
		indexes = append(indexes, idx)
	}
	sort.Ints(indexes)
	for _, idx := range indexes {
		label := fmt.Sprintf("ckpt %d", idx)
		if idx == -1 {
			label = "none (replayed from cycle 0)"
		}
		fmt.Fprintf(stdout, "  %-28s %6d (%5.1f%%)\n",
			label, byIndex[idx], 100*float64(byIndex[idx])/float64(len(recs)))
	}
	if len(trace.Fates) > 0 {
		fmt.Fprintf(stdout, "\nmasking mechanisms (%d forensics records):\n", len(trace.Fates))
		fmt.Fprint(stdout, report.ForensicsTable(trace.Fates))
	}
	return 0
}

// percentile returns the p-th percentile (nearest-rank) of sorted values.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func fmtNS(ns int64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}
