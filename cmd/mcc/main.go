// mcc is the MiniC compiler driver: it compiles a source file and either
// prints the generated assembly or runs it on the simulated machine.
package main

import (
	"flag"
	"fmt"
	"os"

	"mbusim/internal/asm"
	"mbusim/internal/isa"
	"mbusim/internal/minic"
	"mbusim/internal/sim"
)

func main() {
	emitAsm := flag.Bool("S", false, "print generated assembly instead of running")
	trace := flag.Bool("trace", false, "print every committed instruction (disassembled)")
	maxCycles := flag.Uint64("max-cycles", 100_000_000, "cycle limit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mcc [-S] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	text, err := minic.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *emitAsm {
		fmt.Print(text)
		return
	}
	prog, err := asm.Assemble(text)
	if err != nil {
		fmt.Fprintln(os.Stderr, "assemble:", err)
		os.Exit(1)
	}
	m := sim.New(sim.DefaultConfig())
	if err := m.Load(prog); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *trace {
		m.Core.TraceCommit = func(pc, raw uint32) {
			fmt.Fprintf(os.Stderr, "%08x  %s\n", pc, isa.Disassemble(pc, raw))
		}
	}
	out := m.Run(*maxCycles, 0, nil)
	os.Stdout.Write(out.Stdout)
	fmt.Fprintf(os.Stderr, "[stop=%v pc=%#x addr=%#x exit=%d cycles=%d committed=%d kill=%q panic=%q timeout=%v]\n",
		out.Stop, m.Core.StopPC(), m.Core.StopAddr(), out.ExitCode, out.Cycles, out.Committed, out.KillMsg, out.PanicMsg, out.TimedOut)
}
