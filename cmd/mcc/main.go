// mcc is the MiniC compiler driver: it compiles a source file and either
// prints the generated assembly or runs it on the simulated machine.
package main

import (
	"flag"
	"fmt"
	"os"

	"mbusim/internal/asm"
	"mbusim/internal/clog"
	"mbusim/internal/isa"
	"mbusim/internal/minic"
	"mbusim/internal/sim"
)

func main() {
	emitAsm := flag.Bool("S", false, "print generated assembly instead of running")
	trace := flag.Bool("trace", false, "print every committed instruction (disassembled)")
	maxCycles := flag.Uint64("max-cycles", 100_000_000, "cycle limit")
	verbose := flag.Bool("v", false, "log debug detail to stderr")
	flag.Parse()
	log := clog.New(os.Stderr, *verbose)
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mcc [-S] file.mc")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		log.Error(err.Error())
		os.Exit(1)
	}
	text, err := minic.Compile(string(src))
	if err != nil {
		log.Error(err.Error())
		os.Exit(1)
	}
	log.Debug("compiled", "source_bytes", len(src), "asm_bytes", len(text))
	if *emitAsm {
		fmt.Print(text)
		return
	}
	prog, err := asm.Assemble(text)
	if err != nil {
		log.Error("assemble failed", "err", err)
		os.Exit(1)
	}
	m := sim.New(sim.DefaultConfig())
	if err := m.Load(prog); err != nil {
		log.Error(err.Error())
		os.Exit(1)
	}
	if *trace {
		m.Core.TraceCommit = func(pc, raw uint32) {
			fmt.Fprintf(os.Stderr, "%08x  %s\n", pc, isa.Disassemble(pc, raw))
		}
	}
	out := m.Run(*maxCycles, 0, nil)
	os.Stdout.Write(out.Stdout)
	log.Info("run complete",
		"stop", out.Stop, "pc", fmt.Sprintf("%#x", m.Core.StopPC()),
		"addr", fmt.Sprintf("%#x", m.Core.StopAddr()), "exit", out.ExitCode,
		"cycles", out.Cycles, "committed", out.Committed,
		"kill", out.KillMsg, "panic", out.PanicMsg, "timeout", out.TimedOut)
}
