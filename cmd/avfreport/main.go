// avfreport turns campaign results into the paper's tables and figures:
// Table I/III (setup), Figures 1-6 (per-component class breakdowns),
// Tables IV/V (vulnerability increases and weighted AVFs), Tables VI-VIII
// (technology inputs), Figure 7 (per-node aggregate AVF) and Figure 8
// (whole-CPU FIT with the multi-bit share).
//
//	gefin -all -samples 100 -out results.json
//	avfreport -in results.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	"mbusim/internal/avf"
	"mbusim/internal/clog"
	"mbusim/internal/core"
	"mbusim/internal/fit"
	"mbusim/internal/liveness"
	"mbusim/internal/report"
	"mbusim/internal/telemetry"
	"mbusim/internal/workloads"
)

// log is the shared CLI logger; fatalIf routes through it, so it lives at
// package scope and is rebound once flags are parsed.
var log *slog.Logger = clog.New(os.Stderr, false)

func main() {
	var (
		inPath    = flag.String("in", "", "campaign results JSON from gefin -all")
		tracePath = flag.String("trace", "", "gefin JSONL trace with forensics records (gefin -forensics -trace); adds the masking-mechanism section")
		profPath  = flag.String("profile", "", "liveness profile artifact (.mbup) or a directory of them (gefin -profile); adds the analytical AVF section, cross-checked against -in when both are given")
		only      = flag.String("only", "", "print one section: table1,table3,table4,table5,table6,table7,table8,fig1..fig6,fig7,fig8,forensics,analytical")
		verbose   = flag.Bool("v", false, "log debug detail to stderr")
	)
	flag.Parse()
	log = clog.New(os.Stderr, *verbose)

	sectionWanted := func(name string) bool { return *only == "" || *only == name }
	printSection := func(title, body string) {
		fmt.Printf("=== %s ===\n%s\n", title, body)
	}

	if *tracePath != "" && sectionWanted("forensics") {
		f, err := os.Open(*tracePath)
		fatalIf(err)
		trace, err := telemetry.ReadTraceTyped(f)
		f.Close()
		fatalIf(err)
		log.Debug("loaded trace", "path", *tracePath,
			"samples", len(trace.Samples), "fates", len(trace.Fates), "unknown", trace.Unknown)
		if len(trace.Fates) == 0 {
			log.Warn("trace holds no forensics records; run gefin with -forensics -trace")
		} else {
			printSection("Masking mechanisms: fate of every injected bit (forensics)",
				report.ForensicsTable(trace.Fates))
		}
	}

	var profiles []*liveness.Profile
	if *profPath != "" {
		var err error
		profiles, err = loadProfiles(*profPath)
		fatalIf(err)
		log.Debug("loaded profiles", "path", *profPath, "workloads", len(profiles))
	}
	analytical := func(rs *core.ResultSet) {
		if len(profiles) > 0 && sectionWanted("analytical") {
			printSection("Analytical AVF from liveness profiles (ACE bit-cycles over golden run)",
				report.AnalyticalTable(profiles, rs))
		}
	}

	if sectionWanted("table1") {
		printSection("Table I: setup (paper values; caches modeled at scaled geometry)", report.Table1())
	}
	if sectionWanted("table3") {
		t3, err := report.Table3()
		fatalIf(err)
		printSection("Table III: benchmark execution time", t3)
	}
	if sectionWanted("table6") {
		printSection("Table VI: multi-bit rates per node", report.Table6())
	}
	if sectionWanted("table7") {
		printSection("Table VII: raw FIT per bit", report.Table7())
	}
	if sectionWanted("table8") {
		printSection("Table VIII: component sizes", report.Table8())
	}

	if *inPath == "" {
		analytical(nil)
		if *only == "" {
			log.Info("no -in results file; campaign-derived sections skipped")
		}
		return
	}
	data, err := os.ReadFile(*inPath)
	fatalIf(err)
	rs := core.NewResultSet()
	fatalIf(json.Unmarshal(data, rs))
	log.Debug("loaded results", "path", *inPath, "cells", len(rs.Cells))
	analytical(rs)

	figNames := map[string]string{
		"L1D": "fig1", "L1I": "fig2", "L2": "fig3",
		"RegFile": "fig4", "DTLB": "fig5", "ITLB": "fig6",
	}
	for _, comp := range core.Components() {
		if !sectionWanted(figNames[comp]) {
			continue
		}
		body, err := report.Figure(rs, comp)
		if err != nil {
			log.Warn("skipping figure", "comp", comp, "err", err)
			continue
		}
		printSection(fmt.Sprintf("Fig. %s: AVF classes for %s", figNames[comp][3:], comp), body)
	}

	cas, err := avf.WeightedFromResults(rs, core.Components(), workloads.Names())
	if err != nil {
		log.Warn("aggregate sections unavailable", "err", err)
		return
	}
	if sectionWanted("table4") {
		printSection("Table IV: vulnerability increase per component", report.Table4(cas))
	}
	if sectionWanted("table5") {
		printSection("Table V: weighted AVF per component", report.Table5(cas))
	}
	if sectionWanted("fig7") {
		printSection("Fig. 7: aggregate multi-bit AVF per node", report.Fig7(cas))
	}
	if sectionWanted("fig8") {
		entries, err := fit.CPU(cas)
		fatalIf(err)
		printSection("Fig. 8: whole-CPU FIT per node", report.Fig8(entries))
	}
	if sectionWanted("verdicts") {
		vs, err := report.Verdicts(rs)
		if err != nil {
			log.Warn("verdicts unavailable", "err", err)
			return
		}
		printSection("Shape verdicts (DESIGN.md reproduction targets)", report.RenderVerdicts(vs))
	}
}

// loadProfiles reads liveness profiles from one .mbup artifact or a
// directory of them (as written by gefin -profile). A file that fails to
// decode fails the whole load with one error naming it.
func loadProfiles(path string) ([]*liveness.Profile, error) {
	files := []string{path}
	if entries, err := os.ReadDir(path); err == nil {
		files = files[:0]
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".mbup") {
				files = append(files, filepath.Join(path, e.Name()))
			}
		}
		if len(files) == 0 {
			return nil, fmt.Errorf("%s: no .mbup profile artifacts", path)
		}
	}
	var profiles []*liveness.Profile
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return nil, err
		}
		p, err := liveness.DecodeProfile(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		profiles = append(profiles, p)
	}
	return profiles, nil
}

func fatalIf(err error) {
	if err != nil {
		log.Error(err.Error())
		os.Exit(1)
	}
}
