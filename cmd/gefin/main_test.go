package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/telemetry"
)

// gefin runs in-process through run(), so tests exercise the real flag
// parsing, validation, resume and flush paths without exec'ing a binary.
func runGefin(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errB bytes.Buffer
	code = run(args, &out, &errB)
	return code, out.String(), errB.String()
}

// tinyGrid is the arg list for a fast 3-cell grid (one component, one
// workload, cardinalities 1..3).
func tinyGrid(extra ...string) []string {
	return append([]string{"-all", "-comp", "L1D", "-workload", "stringSearch", "-samples", "3", "-q"}, extra...)
}

func TestBadCardinalityExitsCleanly(t *testing.T) {
	// Regression: -faults 0 used to panic in GenerateMask inside a worker
	// goroutine with a raw stack trace.
	code, _, stderr := runGefin(t, "-workload", "CRC32", "-comp", "L1D", "-faults", "0", "-samples", "1")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "cardinality") || strings.Contains(stderr, "goroutine") {
		t.Fatalf("want a one-line cardinality error, got: %s", stderr)
	}
}

func TestTypoInAllListsExitsUpFront(t *testing.T) {
	code, _, stderr := runGefin(t, "-all", "-comp", "L1d", "-samples", "1")
	if code != 2 || !strings.Contains(stderr, "unknown component") {
		t.Fatalf("component typo: exit=%d stderr=%s", code, stderr)
	}
	code, _, stderr = runGefin(t, "-all", "-comp", "L1D", "-workload", "CRC32,bogus", "-samples", "1")
	if code != 2 || !strings.Contains(stderr, "unknown workload") {
		t.Fatalf("workload typo: exit=%d stderr=%s", code, stderr)
	}
}

func TestMissingCellFlags(t *testing.T) {
	code, _, stderr := runGefin(t, "-samples", "1")
	if code != 2 || !strings.Contains(stderr, "-workload and -comp") {
		t.Fatalf("exit=%d stderr=%s", code, stderr)
	}
}

func TestResumeRequiresOut(t *testing.T) {
	code, _, stderr := runGefin(t, append(tinyGrid(), "-resume")...)
	if code != 2 || !strings.Contains(stderr, "-resume needs -out") {
		t.Fatalf("exit=%d stderr=%s", code, stderr)
	}
}

func TestGridRunsAndResumeIsNoOp(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	code, _, stderr := runGefin(t, tinyGrid("-out", path)...)
	if code != 0 {
		t.Fatalf("grid run failed: %d (%s)", code, stderr)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := core.LoadResultSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Cells) != 3 {
		t.Fatalf("grid wrote %d cells, want 3", len(rs.Cells))
	}

	// Re-running with -resume must take the no-op fast path: every cell is
	// covered, nothing runs, the file is untouched.
	code, _, stderr = runGefin(t, tinyGrid("-out", path, "-resume")...)
	if code != 0 {
		t.Fatalf("resume no-op failed: %d (%s)", code, stderr)
	}
	if !strings.Contains(stderr, "3 of 3 cells already complete") || !strings.Contains(stderr, "nothing to do") {
		t.Fatalf("no-op fast path not reported: %s", stderr)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("no-op resume rewrote the results file")
	}
}

// TestResumeCompletesPartialFile: a results file holding a strict subset of
// the grid (as an interrupted campaign leaves behind) is completed by
// -resume into exactly what an uninterrupted gefin run produces.
func TestResumeCompletesPartialFile(t *testing.T) {
	dir := t.TempDir()
	fullPath := filepath.Join(dir, "full.json")
	partPath := filepath.Join(dir, "partial.json")

	code, _, stderr := runGefin(t, tinyGrid("-out", fullPath)...)
	if code != 0 {
		t.Fatalf("reference run failed: %d (%s)", code, stderr)
	}
	full, err := core.LoadResultSet(fullPath)
	if err != nil {
		t.Fatal(err)
	}

	// Fabricate the interrupted state: only the 1-bit cell is on disk.
	partial := core.NewResultSet()
	r, err := full.Get("L1D", "stringSearch", 1)
	if err != nil {
		t.Fatal(err)
	}
	partial.Add(r)
	if err := partial.Save(partPath); err != nil {
		t.Fatal(err)
	}

	code, _, stderr = runGefin(t, tinyGrid("-out", partPath, "-resume")...)
	if code != 0 {
		t.Fatalf("resume failed: %d (%s)", code, stderr)
	}
	if !strings.Contains(stderr, "1 of 3 cells already complete") {
		t.Fatalf("skip accounting wrong: %s", stderr)
	}
	want, _ := os.ReadFile(fullPath)
	got, _ := os.ReadFile(partPath)
	if !bytes.Equal(got, want) {
		t.Fatal("resumed results file not byte-identical to uninterrupted run")
	}
}

func TestResumeMissingFileStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	code, _, stderr := runGefin(t, tinyGrid("-out", path, "-resume")...)
	if code != 0 {
		t.Fatalf("resume-from-nothing failed: %d (%s)", code, stderr)
	}
	if !strings.Contains(stderr, "starting fresh") {
		t.Fatalf("missing-file path not reported: %s", stderr)
	}
	if _, err := core.LoadResultSet(path); err != nil {
		t.Fatal(err)
	}
}

// TestTraceRoundTrip: -trace must write one parseable JSONL record per
// injection sample, grouped by cell, and the per-outcome counts in the
// trace must agree exactly with the results file.
func TestTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "r.json")
	trPath := filepath.Join(dir, "trace.jsonl")
	code, _, stderr := runGefin(t, tinyGrid("-out", outPath, "-trace", trPath)...)
	if code != 0 {
		t.Fatalf("traced run failed: %d (%s)", code, stderr)
	}
	if !strings.Contains(stderr, "wrote "+trPath) {
		t.Fatalf("trace path not reported: %s", stderr)
	}

	f, err := os.Open(trPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := telemetry.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 9 { // 3 cells x 3 samples
		t.Fatalf("trace has %d records, want 9", len(recs))
	}

	rs, err := core.LoadResultSet(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for faults := 1; faults <= 3; faults++ {
		res, err := rs.Get("L1D", "stringSearch", faults)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]int{}
		for _, rec := range recs {
			if rec.Faults == faults {
				got[rec.Outcome]++
			}
		}
		for _, e := range core.Effects() {
			if got[e.Label()] != res.Counts[e] {
				t.Errorf("faults=%d outcome %s: trace %d, results %d",
					faults, e.Label(), got[e.Label()], res.Counts[e])
			}
		}
	}
}

// TestMetricsEndpointServes: -metrics-addr with port 0 must bind, report
// the resolved address on stderr, and serve the campaign registry.
func TestMetricsEndpointServes(t *testing.T) {
	code, _, stderr := runGefin(t, tinyGrid("-metrics-addr", "127.0.0.1:0")...)
	if code != 0 {
		t.Fatalf("metrics run failed: %d (%s)", code, stderr)
	}
	if !strings.Contains(stderr, "metrics: serving http://127.0.0.1:") {
		t.Fatalf("resolved metrics address not reported: %s", stderr)
	}
}

func TestStatusLine(t *testing.T) {
	s := telemetry.Summary{
		Samples: 50, SamplesExpected: 100,
		ByOutcome: map[string]int64{"masked": 40, "sdc": 10},
		Cells:     5, CellsExpected: 10,
		CheckpointHits: 45, CheckpointMiss: 5,
	}
	line := statusLine(s, 10*time.Second)
	for _, want := range []string{
		"50/100 samples", "(5.0/s)", "masked 80.0%", "sdc 20.0%",
		"cells 5/10", "ckpt hit 90%", "eta 10s",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("status line missing %q: %s", want, line)
		}
	}
}

// TestStatusLineZeroElapsed: on the first tick the elapsed window can
// round to zero; the throughput must render as a placeholder, not "+Inf/s",
// and the meaningless ETA must be suppressed.
func TestStatusLineZeroElapsed(t *testing.T) {
	s := telemetry.Summary{Samples: 50, SamplesExpected: 100}
	for _, elapsed := range []time.Duration{0, -time.Second} {
		line := statusLine(s, elapsed)
		if strings.Contains(line, "Inf") || strings.Contains(line, "NaN") {
			t.Errorf("degenerate rate leaked: %s", line)
		}
		if !strings.Contains(line, "(--/s)") {
			t.Errorf("placeholder rate missing: %s", line)
		}
		if strings.Contains(line, "eta") {
			t.Errorf("eta rendered without a measured rate: %s", line)
		}
	}
}

// TestCellLineNoCompletedCells: with zero completed cells there is no pace
// to extrapolate; the ETA must render as a placeholder instead of the
// division-by-zero absurdity ("eta 2562047h47m16s").
func TestCellLineNoCompletedCells(t *testing.T) {
	res := &core.Result{Spec: core.Spec{Workload: "sha", Component: "L1D", Faults: 1}}
	res.Counts[core.EffectMasked] = 4
	line := cellLine(0, 10, res.Spec, res, time.Now().Add(-time.Second))
	if !strings.Contains(line, "eta --") {
		t.Errorf("placeholder eta missing: %s", line)
	}
	if strings.Contains(line, "2562047") {
		t.Errorf("overflow eta leaked: %s", line)
	}
	// The normal path still extrapolates.
	line = cellLine(5, 10, res.Spec, res, time.Now().Add(-10*time.Second))
	if !strings.Contains(line, "eta 10s") {
		t.Errorf("normal eta broken: %s", line)
	}
}

// TestJoinServeFlagConflicts: worker mode takes its grid and its output
// from the coordinator, so combining -join with coordinator-side flags is
// a configuration error, caught before any golden run is built.
func TestJoinServeFlagConflicts(t *testing.T) {
	code, _, stderr := runGefin(t, "-join", "localhost:1", "-serve", ":0")
	if code != 2 || !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("-join -serve: exit=%d stderr=%s", code, stderr)
	}
	for _, extra := range [][]string{
		{"-all"},
		{"-out", "r.json"},
		{"-out", "r.json", "-resume"},
	} {
		code, _, stderr := runGefin(t, append([]string{"-join", "localhost:1"}, extra...)...)
		if code != 2 || !strings.Contains(stderr, "-serve side") {
			t.Fatalf("-join %v: exit=%d stderr=%s", extra, code, stderr)
		}
	}
}

func TestNegativeWallTimeoutRejected(t *testing.T) {
	code, _, stderr := runGefin(t, append(tinyGrid(), "-wall-timeout", "-1s")...)
	if code != 2 || !strings.Contains(stderr, "wall timeout") {
		t.Fatalf("exit=%d stderr=%s", code, stderr)
	}
}

// TestWallTimeoutFlagReachesSamples: an unmeetable -wall-timeout turns
// every sample into a recorded timeout instead of hanging the campaign.
func TestWallTimeoutFlagReachesSamples(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	code, _, stderr := runGefin(t, "-workload", "stringSearch", "-comp", "L1D",
		"-faults", "1", "-samples", "3", "-q", "-wall-timeout", "1ns", "-out", path)
	if code != 0 {
		t.Fatalf("run failed: %d (%s)", code, stderr)
	}
	rs, err := core.LoadResultSet(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rs.Get("L1D", "stringSearch", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[core.EffectTimeout] != 3 {
		t.Fatalf("counts = %v, want all 3 samples timeout", res.Counts)
	}
}

// syncBuffer lets the test read a goroutine-owned stderr stream while the
// coordinator is still writing to it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestDistributedGridMatchesLocal drives the full CLI surface end to end:
// a -serve coordinator on an ephemeral port, one -join worker, and a
// results file that must be byte-identical to a plain in-process run of
// the same grid.
func TestDistributedGridMatchesLocal(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.json")
	distPath := filepath.Join(dir, "dist.json")

	code, _, stderr := runGefin(t, tinyGrid("-out", refPath)...)
	if code != 0 {
		t.Fatalf("reference run failed: %d (%s)", code, stderr)
	}

	var coordOut bytes.Buffer
	var coordErr syncBuffer
	coordDone := make(chan int, 1)
	go func() {
		coordDone <- run(tinyGrid("-out", distPath, "-serve", "127.0.0.1:0", "-lease-ttl", "2s"), &coordOut, &coordErr)
	}()

	// The coordinator reports its resolved address once it is listening.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never came up: %s", coordErr.String())
		}
		if s := coordErr.String(); strings.Contains(s, "on http://") {
			s = s[strings.Index(s, "on http://")+len("on http://"):]
			addr = strings.Fields(s)[0]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	code, stdout, stderr := runGefin(t, "-join", addr)
	if code != 0 {
		select {
		case c := <-coordDone:
			t.Fatalf("worker exit=%d stderr=%s\ncoordinator exited early (%d): %s", code, stderr, c, coordErr.String())
		default:
			t.Fatalf("worker exit=%d stderr=%s", code, stderr)
		}
	}
	if !strings.Contains(stdout, "worker done: 3 cells submitted") {
		t.Fatalf("worker progress missing: %s", stdout)
	}
	if code := <-coordDone; code != 0 {
		t.Fatalf("coordinator exit=%d stderr=%s", code, coordErr.String())
	}

	want, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(distPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("distributed results file differs from in-process run")
	}
}

func TestResumeCorruptFileFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr := runGefin(t, tinyGrid("-out", path, "-resume")...)
	if code != 1 {
		t.Fatalf("corrupt resume file: exit=%d stderr=%s", code, stderr)
	}
}
