package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/liveness"
	"mbusim/internal/telemetry"
	"mbusim/internal/workloads"
)

// runProfile is gefin's -profile mode: one fault-free golden run per
// workload under the liveness profiler, one versioned .mbup artifact per
// workload in dir. Artifacts are cache-friendly the same way checkpoint
// artifacts are: an existing file that decodes cleanly and matches the
// workload's current image hash and the requested window count is kept
// as-is, so re-running the command after an interruption (or in CI) only
// pays for the profiles that are missing or stale.
func runProfile(ctx context.Context, stdout, stderr io.Writer,
	dir, workload string, windows int, quiet bool,
	tel *telemetry.Campaign, start time.Time) int {

	if windows < 1 || windows > liveness.MaxWindows {
		fmt.Fprintf(stderr, "-windows must be in 1..%d, got %d\n", liveness.MaxWindows, windows)
		return 2
	}
	names := workloads.Names()
	if workload != "" {
		names = strings.Split(workload, ",")
		for _, n := range names {
			if err := core.ValidWorkload(n); err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	for i, name := range names {
		if ctx.Err() != nil {
			fmt.Fprintf(stderr, "interrupted: %d/%d profiles complete (re-run to finish; existing artifacts are kept)\n", i, len(names))
			return 130
		}
		w, err := workloads.ByName(name)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		path := filepath.Join(dir, name+".mbup")
		if p := cachedProfile(stderr, path, w, windows); p != nil {
			recordProfile(tel, p)
			if !quiet {
				fmt.Fprintf(stdout, "[%2d/%2d] %s up to date\n", i+1, len(names), profileLine(p))
			}
			continue
		}
		p, err := w.Profile(windows)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := writeFileAtomic(path, p.Encode()); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		recordProfile(tel, p)
		if !quiet {
			fmt.Fprintf(stdout, "[%2d/%2d] %s\n", i+1, len(names), profileLine(p))
		}
	}
	if !quiet {
		fmt.Fprintf(stdout, "profiled %d workloads into %s in %v\n",
			len(names), dir, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// cachedProfile returns the existing artifact at path when it is current:
// it decodes cleanly and matches the workload name, its compiled image,
// and the requested window count. A corrupt or stale file earns a one-line
// note and a nil return, which makes the caller re-profile and overwrite.
func cachedProfile(stderr io.Writer, path string, w *workloads.Workload, windows int) *liveness.Profile {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	p, err := liveness.DecodeProfile(data)
	if err != nil {
		fmt.Fprintf(stderr, "profile: %s: %v (re-profiling)\n", path, err)
		return nil
	}
	prog, err := w.Program()
	if err != nil || p.Workload != w.Name || p.Windows != windows || p.ImageHash != workloads.HashImage(prog) {
		return nil
	}
	return p
}

// recordProfile publishes a profile's per-component analytical gauges.
func recordProfile(tel *telemetry.Campaign, p *liveness.Profile) {
	for i := range p.Components {
		c := &p.Components[i]
		tel.RecordProfileComponent(c.Name, p.Workload, p.AVF(c.Name), p.NeverTouched(c.Name))
	}
	tel.RecordProfileDone()
}

// profileLine renders one workload's analytical summary: per-component
// ACE-derived AVF over the golden run.
func profileLine(p *liveness.Profile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s %8d cycles:", p.Workload, p.Cycles)
	for i := range p.Components {
		c := &p.Components[i]
		fmt.Fprintf(&b, " %s %.1f%%", c.Name, 100*p.AVF(c.Name))
	}
	return b.String()
}

// writeFileAtomic writes data to path via a temp file and rename, so an
// interrupted write never leaves a truncated artifact behind.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
