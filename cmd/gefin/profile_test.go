package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mbusim/internal/liveness"
)

func readProfile(t *testing.T, path string) (*liveness.Profile, []byte) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p, err := liveness.DecodeProfile(data)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return p, data
}

func TestProfileModeWritesAndCaches(t *testing.T) {
	dir := t.TempDir()
	code, stdout, stderr := runGefin(t, "-profile", dir, "-workload", "stringSearch", "-windows", "8")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	path := filepath.Join(dir, "stringSearch.mbup")
	p, first := readProfile(t, path)
	if p.Workload != "stringSearch" || p.Windows != 8 {
		t.Fatalf("artifact identity: %q windows=%d", p.Workload, p.Windows)
	}
	if !strings.Contains(stdout, "stringSearch") {
		t.Errorf("no progress line: %s", stdout)
	}

	// Second run: the artifact is current, so it is kept, not rewritten.
	code, stdout, stderr = runGefin(t, "-profile", dir, "-workload", "stringSearch", "-windows", "8")
	if code != 0 {
		t.Fatalf("rerun exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "up to date") {
		t.Errorf("rerun did not report the cache hit: %s", stdout)
	}
	if _, second := readProfile(t, path); !bytes.Equal(first, second) {
		t.Error("rerun changed a current artifact")
	}

	// A different window count is a different profile: re-profiled.
	code, stdout, _ = runGefin(t, "-profile", dir, "-workload", "stringSearch", "-windows", "4")
	if code != 0 || strings.Contains(stdout, "up to date") {
		t.Fatalf("window change not re-profiled: exit=%d %s", code, stdout)
	}
	if p, _ := readProfile(t, path); p.Windows != 4 {
		t.Errorf("artifact windows = %d, want 4", p.Windows)
	}
}

// TestProfileModeDeterministicAcrossStrategies: -nodelta and -nockpt alter
// how campaign machines are built and restored, but a profile observes one
// fresh golden run — the artifact must be byte-identical under every flag
// combination.
func TestProfileModeDeterministicAcrossStrategies(t *testing.T) {
	var first []byte
	for _, extra := range [][]string{nil, {"-nodelta"}, {"-nockpt"}, {"-nodelta", "-nockpt"}} {
		dir := t.TempDir()
		args := append([]string{"-profile", dir, "-workload", "stringSearch", "-windows", "8", "-q"}, extra...)
		code, _, stderr := runGefin(t, args...)
		if code != 0 {
			t.Fatalf("%v: exit = %d, stderr: %s", extra, code, stderr)
		}
		_, data := readProfile(t, filepath.Join(dir, "stringSearch.mbup"))
		if first == nil {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Fatalf("profile under %v differs from the default-path profile", extra)
		}
	}
}

// TestProfileModeRecoversCorruptArtifact: a truncated or bit-flipped
// artifact is reported in one line and re-profiled, never trusted and
// never a crash.
func TestProfileModeRecoversCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	if code, _, stderr := runGefin(t, "-profile", dir, "-workload", "stringSearch", "-windows", "8", "-q"); code != 0 {
		t.Fatalf("seed run failed: %s", stderr)
	}
	path := filepath.Join(dir, "stringSearch.mbup")
	_, good := readProfile(t, path)

	corrupt := append([]byte(nil), good[:len(good)/2]...)
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, stderr := runGefin(t, "-profile", dir, "-workload", "stringSearch", "-windows", "8")
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "re-profiling") {
		t.Errorf("corruption not reported: %s", stderr)
	}
	if strings.Contains(stdout, "up to date") {
		t.Error("corrupt artifact treated as current")
	}
	if _, rebuilt := readProfile(t, path); !bytes.Equal(good, rebuilt) {
		t.Error("rebuilt artifact differs from the original")
	}
}

func TestProfileModeFlagConflicts(t *testing.T) {
	cases := [][]string{
		{"-profile", "x", "-join", "host:1"},
		{"-profile", "x", "-serve", ":0"},
		{"-profile", "x", "-out", "r.json"},
		{"-profile", "x", "-resume", "-out", "r.json"},
	}
	for _, args := range cases {
		if code, _, _ := runGefin(t, args...); code != 2 {
			t.Errorf("%v: exit = %d, want 2", args, code)
		}
	}
	if code, _, stderr := runGefin(t, "-profile", t.TempDir(), "-workload", "nosuch"); code != 2 {
		t.Errorf("unknown workload: exit = %d (%s), want 2", code, stderr)
	}
	if code, _, stderr := runGefin(t, "-profile", t.TempDir(), "-workload", "stringSearch", "-windows", "0"); code != 2 {
		t.Errorf("bad window count: exit = %d (%s), want 2", code, stderr)
	}
}
