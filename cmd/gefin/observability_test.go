package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/dispatch"
	"mbusim/internal/telemetry"
)

// rawLease and rawSubmit drive the dispatch protocol over HTTP directly, so
// a test can play a worker without running any cells.
func rawLease(t *testing.T, url, worker string) *dispatch.LeaseReply {
	t.Helper()
	var rep dispatch.LeaseReply
	postJSON(t, url+dispatch.PathLease, &dispatch.LeaseRequest{Worker: worker}, &rep)
	if rep.Status != dispatch.StatusLease {
		t.Fatalf("lease = %+v", rep)
	}
	return &rep
}

func rawSubmit(t *testing.T, url, worker string, leaseID uint64, cell int, res *core.Result) {
	t.Helper()
	var rep dispatch.SubmitReply
	postJSON(t, url+dispatch.PathSubmit, &dispatch.SubmitRequest{
		Worker: worker, LeaseID: leaseID, Cell: cell, Result: res}, &rep)
	if rep.Status != dispatch.StatusAccepted {
		t.Fatalf("submit = %+v", rep)
	}
}

func postJSON(t *testing.T, url string, req, rep any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(rep); err != nil {
		t.Fatal(err)
	}
}

// oneCell is the arg list for the first cell of tinyGrid, so a later
// tinyGrid -resume run picks up exactly where it left off.
func oneCell(extra ...string) []string {
	return append([]string{"-comp", "L1D", "-workload", "stringSearch", "-faults", "1", "-samples", "3", "-q"}, extra...)
}

// readEventsFile parses an on-disk event log, failing the test on error.
func readEventsFile(t *testing.T, path string) *telemetry.EventList {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	el, err := telemetry.ReadEvents(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("event log unreadable: %v\n%s", err, data)
	}
	return el
}

// TestEventLogSurvivesRestartAndResume is the durability test: a campaign
// writes an event log, is "restarted" (a second process resumes the results
// file), and the continued log keeps strictly monotonic sequence numbers
// across both sessions — including when the first session's final line was
// torn mid-write by a crash.
func TestEventLogSurvivesRestartAndResume(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "results.json")
	evPath := filepath.Join(dir, "events.jsonl")

	// Session 1: one cell of the grid.
	code, _, stderr := runGefin(t, oneCell("-out", outPath, "-events", evPath)...)
	if code != 0 {
		t.Fatalf("session 1 failed: %d (%s)", code, stderr)
	}
	first := readEventsFile(t, evPath)
	if n := len(first.Events); n < 3 { // campaign_start, cell_done, campaign_done
		t.Fatalf("session 1 logged %d events: %+v", n, first.Events)
	}

	// Crash injection: a torn half-line at the tail, as a SIGKILL mid-write
	// would leave. The resumed session must cut it off, not refuse or append
	// garbage after it.
	if err := os.WriteFile(evPath, append(readFile(t, evPath), []byte(`{"seq":999,"t`)...), 0o644); err != nil {
		t.Fatal(err)
	}

	// Session 2: resume the remaining two cells, continuing the log.
	code, _, stderr = runGefin(t, tinyGrid("-out", outPath, "-resume", "-events", evPath)...)
	if code != 0 {
		t.Fatalf("session 2 failed: %d (%s)", code, stderr)
	}

	el := readEventsFile(t, evPath)
	if el.Truncated != 0 {
		t.Fatalf("final log still has a truncated line: %+v", el)
	}
	var lastSeq uint64
	starts, dones := 0, 0
	for _, ev := range el.Events {
		if ev.Seq <= lastSeq {
			t.Fatalf("seq %d after %d: log not strictly monotonic across restart", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		switch ev.Type {
		case telemetry.EventCampaignStart:
			starts++
		case telemetry.EventCellDone:
			dones++
		}
	}
	if starts != 2 {
		t.Fatalf("campaign_start events = %d, want 2 (one per session)", starts)
	}
	if dones != 3 {
		t.Fatalf("cell_done events = %d, want 3 (1 + 2 resumed)", dones)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestWatchModelRendering pins the dashboard: a fixed event stream must
// render to exactly this text.
func TestWatchModelRendering(t *testing.T) {
	m := newWatchModel()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	sec := int64(time.Second)
	evs := []telemetry.Event{
		{Seq: 1, TimeNS: base, Type: telemetry.EventCampaignStart, Cell: -1, Cells: 3},
		{Seq: 2, TimeNS: base, Type: telemetry.EventWorkerJoin, Worker: "w1", Cell: -1},
		{Seq: 3, TimeNS: base, Type: telemetry.EventCellLeased, Worker: "w1", Cell: 0,
			Comp: "L1D", Workload: "CRC32", Faults: 2},
		{Seq: 4, TimeNS: base + 1*sec, Type: telemetry.EventWorkerJoin, Worker: "w2", Cell: -1},
		{Seq: 5, TimeNS: base + 1*sec, Type: telemetry.EventCellLeased, Worker: "w2", Cell: 1,
			Comp: "L2", Workload: "matrixMult", Faults: 1},
		{Seq: 6, TimeNS: base + 4*sec, Type: telemetry.EventCellDone, Worker: "w1", Cell: 0,
			Samples: 100, Counts: map[string]int{"masked": 75, "sdc": 25}},
		{Seq: 7, TimeNS: base + 5*sec, Type: telemetry.EventLeaseExpired, Worker: "w2", Cell: 1},
		{Seq: 8, TimeNS: base + 5*sec, Type: telemetry.EventCellRetried, Cell: 1, Retries: 1},
		{Seq: 9, TimeNS: base + 6*sec, Type: telemetry.EventCellLeased, Worker: "w1", Cell: 1,
			Comp: "L2", Workload: "matrixMult", Faults: 1},
	}
	for _, ev := range evs {
		m.apply(ev)
	}
	got := renderWatch(m)
	want := strings.Join([]string{
		"watch: 1/3 cells, 100 samples (0.17 cells/s), 1 leases expired, 1 cells retried | eta 12s",
		"  outcomes: masked 75.0% sdc 25.0%",
		"  workers: 2 live",
		"    w1                   busy cell 1 (L2/matrixMult/1-bit)        1 cells done",
		"    w2                   idle                                     0 cells done",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("dashboard snapshot:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Campaign end flips the header to a terminal state.
	m.apply(telemetry.Event{Seq: 10, TimeNS: base + 9*sec, Type: telemetry.EventCampaignDone,
		Cell: -1, Cells: 3})
	if out := renderWatch(m); !strings.Contains(out, "| complete") {
		t.Fatalf("done dashboard missing completion marker:\n%s", out)
	}
	if !m.done {
		t.Fatal("model did not record campaign end")
	}
}

// TestWatchStreamsFromCoordinator drives runWatch against a live
// coordinator: it must render the campaign as events arrive and exit 0 at
// campaign_done.
func TestWatchStreamsFromCoordinator(t *testing.T) {
	specs := []core.Spec{
		{Workload: "stringSearch", Component: core.CompL1D, Faults: 1, Samples: 3, Seed: 1},
	}
	tel := telemetry.NewCampaign(nil)
	tel.Events = telemetry.NewEventLog(nil, 0)
	coord, err := dispatch.New(specs, nil, dispatch.Options{Tel: tel})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Mux())
	defer srv.Close()
	tel.Emit(telemetry.Event{Type: telemetry.EventCampaignStart, Cell: -1, Cells: 1})

	var out, errB bytes.Buffer
	watchDone := make(chan int, 1)
	go func() { watchDone <- runWatch(&out, &errB, srv.URL) }()

	// A fabricated worker completes the only cell.
	rep := rawLease(t, srv.URL, "w1")
	res := &core.Result{Spec: specs[0], GoldenCycles: 100, TargetBits: 64}
	res.Counts[core.EffectMasked] = specs[0].Samples
	rawSubmit(t, srv.URL, "w1", rep.LeaseID, rep.Cell, res)

	select {
	case code := <-watchDone:
		if code != 0 {
			t.Fatalf("watch exit = %d (stderr: %s)", code, errB.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("watch never saw campaign_done; output so far:\n%s", out.String())
	}
	rendered := out.String()
	for _, want := range []string{"1/1 cells", "w1", "masked 100.0%"} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("watch output missing %q:\n%s", want, rendered)
		}
	}
}

// TestStatusLineFleet: coordinator summaries grow a fleet section.
func TestStatusLineFleet(t *testing.T) {
	s := telemetry.Summary{
		Samples: 10, SamplesExpected: 100,
		ByOutcome: map[string]int64{"masked": 10},
		Cells:     1, CellsExpected: 10,
		WorkersLive: 2, WorkersSeen: 3, CellsLeased: 2,
		LeasesExpired: 1, CellsRetried: 1,
	}
	line := statusLine(s, 10*time.Second)
	for _, want := range []string{"fleet 2/3 workers live", "2 leased", "1 expired", "1 retried"} {
		if !strings.Contains(line, want) {
			t.Errorf("fleet status missing %q: %s", want, line)
		}
	}
	// A purely local summary must not render an empty fleet section.
	s.WorkersLive, s.WorkersSeen, s.CellsLeased, s.LeasesExpired, s.CellsRetried = 0, 0, 0, 0, 0
	if line := statusLine(s, 10*time.Second); strings.Contains(line, "fleet") {
		t.Errorf("local status grew a fleet section: %s", line)
	}
}
