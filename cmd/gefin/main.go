// gefin runs spatial multi-bit fault-injection campaigns on the simulated
// Cortex-A9-like machine (the Gem5+GeFIN analog of the paper).
//
// Run one cell:
//
//	gefin -workload CRC32 -comp L1D -faults 2 -samples 100
//
// Run the full grid (6 components x 15 workloads x 3 cardinalities) and
// save the results for avfreport:
//
//	gefin -all -samples 100 -out results.json
//
// Campaigns are crash-safe and resumable. Cells are dispatched across a
// bounded worker pool (-parallel) and the results file is rewritten
// atomically after every completed cell, so a SIGINT/SIGTERM (trapped: the
// first signal cancels the workers, flushes, and exits 130), an OOM kill,
// or a failing cell never discards finished work. Re-running with -resume
// loads the existing -out file and skips every cell whose component,
// workload, cardinality, sample count and seed already match; seeded
// determinism makes the resumed grid bit-identical to an uninterrupted one.
//
// Campaigns also shard across processes and machines. One process owns the
// grid and the results file:
//
//	gefin -all -samples 100 -out results.json -serve :9321
//
// and any number of workers lease cells from it, run them, and submit the
// results:
//
//	gefin -join coordinator-host:9321
//
// Workers that crash, hang, or vanish are routine: their leases expire
// (-lease-ttl) and the cells are reassigned, bounded by a per-cell retry
// budget (-retries). Seeded determinism makes the distributed result set
// byte-identical to a single-process run of the same grid.
//
// Exit status: 0 on success, 1 on runtime errors, 2 on bad configuration
// (unknown component/workload, impossible cardinality), 130 when
// interrupted by a signal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/dispatch"
	"mbusim/internal/forensics"
	"mbusim/internal/telemetry"
	"mbusim/internal/workloads"
)

// forensicsFlag parses -forensics as a boolean-style flag with an optional
// mode: bare -forensics (or =fast) arms the component probes,
// -forensics=full adds the lockstep shadow-machine divergence probe
// (~2x per-sample cost), -forensics=off disables.
type forensicsFlag struct{ mode forensics.Mode }

func (f *forensicsFlag) String() string { return f.mode.String() }

func (f *forensicsFlag) Set(s string) error {
	m, err := forensics.ParseMode(s)
	if err != nil {
		return err
	}
	f.mode = m
	return nil
}

// IsBoolFlag lets bare -forensics (no value) mean fast mode instead of
// consuming the next argument.
func (f *forensicsFlag) IsBoolFlag() bool { return true }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole CLI behind an exit code, so tests can drive it
// in-process with fake arg lists and capture both streams.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gefin", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload   = fs.String("workload", "", "workload name, or comma-separated list with -all (empty with -all means every workload)")
		comp       = fs.String("comp", "", "component: L1D, L1I, L2, RegFile, DTLB, ITLB; comma-separated list with -all (empty with -all means every component)")
		faults     = fs.Int("faults", 1, "fault cardinality 1-3 (ignored with -all: all three run)")
		samples    = fs.Int("samples", 100, "injections per cell")
		seed       = fs.Uint64("seed", 1, "campaign seed")
		all        = fs.Bool("all", false, "run the full component x workload x cardinality grid")
		outPath    = fs.String("out", "", "write results JSON to this file (atomically, after every completed cell)")
		resume     = fs.Bool("resume", false, "load an existing -out file and run only the cells it does not already cover")
		parallel   = fs.Int("parallel", 0, "cells dispatched concurrently (0 = GOMAXPROCS; sample workers share the cores)")
		quiet      = fs.Bool("q", false, "suppress per-cell progress")
		nockpt     = fs.Bool("nockpt", false, "replay every run from cycle 0 instead of fast-forwarding from golden checkpoints")
		nodelta    = fs.Bool("nodelta", false, "build and fully restore a fresh machine per sample instead of delta-restoring one reused machine per worker (A/B verification knob)")
		ckpts      = fs.Int("checkpoints", workloads.CheckpointCount, "golden checkpoints per workload (K)")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memProfile = fs.String("memprofile", "", "write a heap profile after the campaign to this file")
		tracePath  = fs.String("trace", "", "write a JSONL trace (one record per injection sample) to this file, flushed per cell")
		metricsOn  = fs.String("metrics-addr", "", "serve live campaign metrics on host:port (/metrics Prometheus text, /healthz, /debug/vars expvar, /debug/pprof)")
		status     = fs.Duration("status", 0, "print a periodic campaign summary to stderr at this interval (works with -q; 0 disables)")
		eventsPath = fs.String("events", "", "append the campaign event log (JSONL, one event per line) to this file; with -resume an existing log is continued, sequence numbers stay strictly monotonic")
		watchURL   = fs.String("watch", "", "observe a running coordinator at host:port: stream its campaign event log and render a live fleet dashboard (takes no grid flags)")
		serveAddr  = fs.String("serve", "", "coordinate a distributed campaign: listen on host:port and lease grid cells to -join workers instead of running them in-process")
		joinAddr   = fs.String("join", "", "work for a coordinator at host:port: lease cells, run them, submit results (takes no grid flags)")
		serviceDir = fs.String("service-dir", "", "with -serve: run the durable multi-campaign service instead of a one-shot coordinator, keeping its journal, event log and per-campaign results files in this directory (campaigns arrive via POST /campaigns; grid flags are rejected)")
		queueDepth = fs.Int("queue-depth", 64, "service: campaigns allowed to wait in the queue before submissions bounce with 429")
		maxActive  = fs.Int("max-active", 4, "service: campaigns run concurrently over the shared worker fleet")
		tenantCamp = fs.Int("tenant-campaigns", 8, "service: live campaigns allowed per tenant")
		tenantCell = fs.Int("tenant-cells", 4096, "service: live cells allowed per tenant across its campaigns")
		submitAddr = fs.String("submit", "", "submit the grid flags as one campaign to the service at host:port and print its id (see -tenant/-name/-campaign-out; takes the same grid flags as a local run)")
		cmpgnsAddr = fs.String("campaigns", "", "query the service at host:port: list campaigns, or one campaign's status with -campaign, or transition it with -do")
		campaignID = fs.String("campaign", "", "campaign id for -campaigns status and -do")
		doAction   = fs.String("do", "", "with -campaigns and -campaign: pause, resume or cancel")
		tenantName = fs.String("tenant", "", "with -submit: tenant identity for admission quotas (default \"default\")")
		cmpgnName  = fs.String("name", "", "with -submit: idempotency name — resubmitting while a campaign of this name is live returns it instead of queuing a duplicate")
		cmpgnOut   = fs.String("campaign-out", "", "with -submit: wait for the campaign to finish and write its results file here (byte-identical to the service's durable copy)")
		workerID   = fs.String("worker-id", "", "worker identity reported to the coordinator (default host:pid)")
		leaseTTL   = fs.Duration("lease-ttl", 15*time.Second, "coordinator: a worker silent this long loses its lease and the cell is reassigned")
		retries    = fs.Int("retries", 5, "coordinator: reassignments allowed per cell before the campaign fails naming it")
		wallTO     = fs.Duration("wall-timeout", 0, "per-sample wall-clock budget; a sample exceeding it is recorded as a timeout (0 = no watchdog)")
		cacheDir   = fs.String("cache-dir", defaultCacheDir(), "worker: disk cache for checkpoint artifacts fetched from the coordinator (empty = no disk cache)")
		noArtifact = fs.Bool("no-artifacts", false, "worker: skip the checkpoint-artifact cache and derive every golden reference locally")
		profileDir = fs.String("profile", "", "profile mode: run each workload's fault-free golden reference under the liveness profiler and write one versioned .mbup artifact per workload into this directory (takes -workload and -windows; runs no injections)")
		windows    = fs.Int("windows", 64, "profile mode: occupancy sampling windows per profile (1-4096)")
	)
	var fmode forensicsFlag
	fs.Var(&fmode, "forensics", "track every injected bit's fate (fast: component probes; full: + lockstep shadow-machine divergence, ~2x cost)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	workloads.CheckpointCount = *ckpts

	// Watch mode is a pure observer: it connects to a coordinator's event
	// stream and renders, running no cells and owning no results.
	if *watchURL != "" {
		if *serveAddr != "" || *joinAddr != "" {
			fmt.Fprintln(stderr, "-watch observes a campaign from outside: drop -serve/-join")
			return 2
		}
		return runWatch(stdout, stderr, *watchURL)
	}

	// Profile mode observes golden runs and writes artifacts; it neither
	// runs injections nor talks to a fleet, so the distributed-role flags
	// are contradictions, not options.
	profileMode := *profileDir != ""
	if profileMode {
		switch {
		case *serveAddr != "" || *joinAddr != "":
			fmt.Fprintln(stderr, "-profile observes golden runs locally: drop -serve/-join")
			return 2
		case *outPath != "" || *resume:
			fmt.Fprintln(stderr, "-profile writes .mbup artifacts into its directory, not a results file: drop -out/-resume")
			return 2
		}
	}

	// Worker mode needs no grid flags: the coordinator's leases carry the
	// specs. Validate before buildSpecs so `gefin -join host:port` alone is
	// a complete invocation.
	joinMode := *joinAddr != ""
	if joinMode {
		switch {
		case *serveAddr != "":
			fmt.Fprintln(stderr, "-join and -serve are mutually exclusive: a process is a worker or the coordinator, not both")
			return 2
		case *all, *outPath != "", *resume:
			fmt.Fprintln(stderr, "-join takes its grid from the coordinator and submits results back to it: drop -all/-out/-resume (they belong on the -serve side)")
			return 2
		}
	}

	// Campaign-service roles. -submit and -campaigns are clients of a
	// service; -serve -service-dir IS the service. All are exclusive with
	// the single-campaign roles.
	submitMode := *submitAddr != ""
	listMode := *cmpgnsAddr != ""
	serviceMode := *serveAddr != "" && *serviceDir != ""
	switch {
	case *serviceDir != "" && *serveAddr == "":
		fmt.Fprintln(stderr, "-service-dir is the service's state directory: it needs -serve for the listen address")
		return 2
	case (submitMode || listMode) && (*serveAddr != "" || joinMode || submitMode && listMode):
		fmt.Fprintln(stderr, "-submit and -campaigns talk to a campaign service from outside: use them alone, without -serve/-join or each other")
		return 2
	case serviceMode && (*all || *outPath != "" || *resume || *workload != "" || *comp != ""):
		fmt.Fprintln(stderr, "the campaign service takes its grids from POST /campaigns, not flags: drop -all/-workload/-comp/-out/-resume")
		return 2
	case *doAction != "" && (*campaignID == "" || !listMode):
		fmt.Fprintln(stderr, "-do needs -campaigns (the service address) and -campaign (the id to transition)")
		return 2
	}
	// Config that cannot work fails before any listener opens: a
	// non-positive lease TTL would make every lease expire instantly (or
	// never), and negative budgets/quotas are contradictions, not choices.
	if *serveAddr != "" {
		if *leaseTTL <= 0 {
			fmt.Fprintln(stderr, "-lease-ttl must be positive: leases that expire instantly reassign every cell forever")
			return 2
		}
		if *retries < 0 {
			fmt.Fprintln(stderr, "-retries must be >= 0")
			return 2
		}
	}
	if serviceMode {
		for _, bad := range []struct {
			name string
			v    int
		}{{"-queue-depth", *queueDepth}, {"-max-active", *maxActive},
			{"-tenant-campaigns", *tenantCamp}, {"-tenant-cells", *tenantCell}} {
			if bad.v <= 0 {
				fmt.Fprintf(stderr, "%s must be positive (got %d)\n", bad.name, bad.v)
				return 2
			}
		}
	}

	var specs []core.Spec
	if !joinMode && !profileMode && !listMode && !serviceMode {
		var code int
		specs, code = buildSpecs(stderr, *all, *comp, *workload, *faults, *samples, *seed, *nockpt, *nodelta, fmode.mode, *wallTO)
		if code != 0 {
			return code
		}
	}
	if *resume && *outPath == "" {
		fmt.Fprintln(stderr, "-resume needs -out: resuming loads and extends the results file")
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	// Resume: skip every cell the existing results file already covers.
	rs := core.NewResultSet()
	pending := specs
	if *resume {
		loaded, err := core.LoadResultSet(*outPath)
		switch {
		case err == nil:
			rs = loaded
			pending = rs.Pending(specs)
			fmt.Fprintf(stderr, "resume: %d of %d cells already complete in %s\n",
				len(specs)-len(pending), len(specs), *outPath)
			if len(pending) == 0 {
				fmt.Fprintln(stderr, "resume: nothing to do")
				return 0
			}
		case os.IsNotExist(err):
			fmt.Fprintf(stderr, "resume: %s does not exist yet, starting fresh\n", *outPath)
		default:
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	start := time.Now()

	// Telemetry: -trace, -metrics-addr, -status, -events or -forensics
	// enables the campaign registry (the core hot path stays untouched when
	// all are absent). Forensics needs the registry for its fate counters;
	// pair it with -trace to also get the per-sample forensics records. A
	// coordinator always carries the registry — its dispatch gauges are the
	// only view into a fleet of remote workers — and so does a worker, whose
	// registry snapshots ride its heartbeats into the coordinator's /metrics.
	var tel *telemetry.Campaign
	if *tracePath != "" || *metricsOn != "" || *status > 0 || *eventsPath != "" ||
		fmode.mode != forensics.ModeOff || *serveAddr != "" || joinMode {
		var tracer *telemetry.Tracer
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			defer f.Close()
			tracer = telemetry.NewTracer(f)
		}
		tel = telemetry.NewCampaign(tracer)
	}
	// The event log: durable when -events names a file (-resume continues an
	// existing log, fresh campaigns start one). The campaign service always
	// keeps a durable log in its state directory and always continues it —
	// restarting the service is resuming, never starting over. A coordinator
	// without -events still keeps an in-memory log so /dispatch/events and
	// -watch work.
	if *eventsPath != "" || serviceMode {
		path := *eventsPath
		if path == "" {
			path = filepath.Join(*serviceDir, "events.jsonl")
		}
		if serviceMode {
			if err := os.MkdirAll(*serviceDir, 0o755); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		} else if !*resume {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		evlog, err := telemetry.OpenEventLog(path)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer evlog.Close()
		tel.Events = evlog
	} else if *serveAddr != "" {
		tel.Events = telemetry.NewEventLog(nil, 0)
	}
	// Count every golden reference this process actually derives by running
	// the full fault-free simulation. In a distributed campaign the counter,
	// summed across the fleet, proves how many golden runs were really paid
	// for — the number the artifact cache exists to minimize. Nil-safe: with
	// telemetry off the hook is a no-op.
	workloads.OnGoldenDerived = func(string) { tel.GoldenDerived() }

	// health feeds /healthz on the metrics port and (coordinator mode) the
	// dispatch port: the process role plus a cheap campaign digest.
	role := "local"
	switch {
	case joinMode:
		role = "worker"
	case serviceMode:
		role = "service"
	case *serveAddr != "":
		role = "coordinator"
	}
	health := func() telemetry.Health {
		h := telemetry.Health{Role: role, UptimeSeconds: time.Since(start).Seconds()}
		if tel.Enabled() {
			s := tel.Summarize()
			c := map[string]any{"samples": s.Samples, "cells": s.Cells}
			if s.SamplesExpected > 0 {
				c["samples_expected"] = s.SamplesExpected
			}
			if s.CellsExpected > 0 {
				c["cells_expected"] = s.CellsExpected
			}
			if s.Fleet() {
				c["workers_live"] = s.WorkersLive
				c["workers_seen"] = s.WorkersSeen
				c["cells_leased"] = s.CellsLeased
			}
			h.Campaign = c
		}
		return h
	}
	if *metricsOn != "" {
		ln, err := net.Listen("tcp", *metricsOn)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "metrics: serving http://%s/metrics (healthz /healthz, expvar /debug/vars, pprof /debug/pprof/)\n", ln.Addr())
		srv := &http.Server{Handler: telemetry.Handler(tel.Registry, health)}
		go srv.Serve(ln)
		defer srv.Close()
	}

	// The first SIGINT/SIGTERM cancels the campaign context: workers stop
	// between samples, the partial grid is already on disk (flushed after
	// every cell), and a second signal kills the process the default way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// A failed flush also cancels: running on while losing results would
	// re-create the very bug this flag exists to fix.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		done     = 0
		flushErr error
	)
	if *status > 0 {
		statusDone := make(chan struct{})
		defer close(statusDone)
		go statusLoop(stderr, tel, *status, start, statusDone)
	}
	if profileMode {
		return runProfile(ctx, stdout, stderr, *profileDir, *workload, *windows, *quiet, tel, start)
	}
	if joinMode {
		dir := *cacheDir
		if *noArtifact {
			dir = ""
		}
		return runWorker(ctx, stdout, stderr, *joinAddr, *workerID, *quiet, tel, start,
			!*noArtifact, dir)
	}
	if submitMode {
		return runSubmit(ctx, stdout, stderr, *submitAddr, specs,
			*tenantName, *cmpgnName, *retries, *cmpgnOut, *quiet)
	}
	if listMode {
		return runCampaigns(ctx, stdout, stderr, *cmpgnsAddr, *campaignID, *doAction)
	}
	if serviceMode {
		return runService(ctx, stdout, stderr, *serveAddr, *serviceDir, dispatch.ServiceOptions{
			LeaseTTL: *leaseTTL, MaxRetries: *retries, QueueDepth: *queueDepth,
			MaxActive: *maxActive, TenantCampaigns: *tenantCamp, TenantCells: *tenantCell,
			Tel: tel,
		}, tel, start)
	}
	if *serveAddr != "" {
		return runServe(ctx, cancel, stdout, stderr, *serveAddr, specs, pending, rs,
			*outPath, *leaseTTL, *retries, tel, health, *quiet, start)
	}
	tel.Emit(telemetry.Event{Type: telemetry.EventCampaignStart, Cell: -1, Cells: len(pending)})
	err := core.RunGridWithTelemetry(ctx, pending, *parallel, func(i int, res *core.Result) {
		rs.Add(res)
		done++
		if *outPath != "" {
			if err := rs.Save(*outPath); err != nil && flushErr == nil {
				flushErr = err
				cancel()
			}
		}
		if !*quiet {
			fmt.Fprintln(stdout, cellLine(done, len(pending), pending[i], res, start))
		}
	}, tel)
	switch {
	case flushErr != nil:
		fmt.Fprintf(stderr, "flush failed after %d cells: %v\n", done, flushErr)
		return 1
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(stderr, "interrupted: %d/%d cells complete", done, len(pending))
		if *outPath != "" && done > 0 {
			fmt.Fprintf(stderr, ", partial results saved to %s (finish with -resume)", *outPath)
		}
		fmt.Fprintln(stderr)
		return 130
	case err != nil:
		fmt.Fprintf(stderr, "%v (%d/%d cells complete", err, done, len(pending))
		if *outPath != "" && done > 0 {
			fmt.Fprintf(stderr, ", saved to %s; fix and re-run with -resume", *outPath)
		}
		fmt.Fprintln(stderr, ")")
		return 1
	}
	tel.Emit(telemetry.Event{Type: telemetry.EventCampaignDone, Cell: -1, Cells: done})
	if !*quiet {
		fmt.Fprintf(stdout, "campaign complete: %d cells in %v\n", done, time.Since(start).Round(time.Second))
	}
	if fmode.mode != forensics.ModeOff && !*quiet {
		fmt.Fprintln(stdout, fateLine(tel.Summarize()))
	}
	if *outPath != "" {
		fmt.Fprintf(stderr, "wrote %s\n", *outPath)
	}
	if tel.Tracing() {
		if err := tel.Tracer.Err(); err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "wrote %s\n", *tracePath)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		runtime.GC() // materialize up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		f.Close()
		fmt.Fprintf(stderr, "wrote %s\n", *memProfile)
	}
	return 0
}

// runServe is coordinator mode: the campaign grid is leased cell-by-cell
// to -join workers over HTTP instead of running in-process. The
// coordinator owns the canonical ResultSet and the -out file, flushed
// after every accepted cell exactly like a local run, so a distributed
// campaign is resumable and mergeable with single-process ones.
func runServe(ctx context.Context, cancel context.CancelFunc, stdout, stderr io.Writer,
	addr string, specs, pending []core.Spec, rs *core.ResultSet, outPath string,
	ttl time.Duration, maxRetries int, tel *telemetry.Campaign,
	health func() telemetry.Health, quiet bool, start time.Time) int {

	var (
		done     = 0
		flushErr error
	)
	// Publish the grid shape so -status and /healthz show fleet-wide totals,
	// and open the event log with campaign_start — before dispatch.New, so a
	// resumed-already-complete grid's immediate campaign_done orders after it.
	totalSamples := 0
	for _, s := range pending {
		totalSamples += s.Samples
	}
	tel.SetGridShape(len(pending), totalSamples, 0, 0)
	tel.Emit(telemetry.Event{Type: telemetry.EventCampaignStart, Cell: -1, Cells: len(pending)})
	coord, err := dispatch.New(specs, rs, dispatch.Options{
		LeaseTTL:   ttl,
		MaxRetries: maxRetries,
		Tel:        tel,
		OnCell: func(cell int, res *core.Result) {
			done++
			if outPath != "" {
				if err := rs.Save(outPath); err != nil && flushErr == nil {
					flushErr = err
					cancel()
				}
			}
			if !quiet {
				fmt.Fprintln(stdout, cellLine(done, len(pending), specs[cell], res, start))
			}
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	mux := coord.Mux()
	// Serve checkpoint artifacts next to the lease endpoints: each
	// workload's golden reference and checkpoint set is derived once, here,
	// on first request, and every worker installs the verified artifact
	// instead of re-deriving it.
	arts, err := dispatch.NewArtifactServer(specs, tel)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	mux.Handle(dispatch.PathArtifact, arts)
	// The dispatch port doubles as the telemetry endpoint: /metrics shows
	// the live-worker and lease gauges (and every federated worker series)
	// next to the campaign counters, /healthz answers probes.
	mux.Handle("/", telemetry.Handler(tel.Registry, health))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(stderr, "dispatch: coordinating %d cells on http://%s (lease TTL %v, %d retries/cell)\n",
		len(pending), ln.Addr(), ttl, maxRetries)

	err = coord.Wait(ctx)
	if ctx.Err() == nil {
		// Keep serving briefly so tail workers polling for work learn the
		// campaign is over instead of finding a closed port.
		coord.Drain(ctx, ttl)
	}
	switch {
	case flushErr != nil:
		fmt.Fprintf(stderr, "flush failed after %d cells: %v\n", done, flushErr)
		return 1
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(stderr, "interrupted: %d/%d cells complete", done, len(pending))
		if outPath != "" && done > 0 {
			fmt.Fprintf(stderr, ", partial results saved to %s (finish with -resume)", outPath)
		}
		fmt.Fprintln(stderr)
		return 130
	case err != nil:
		fmt.Fprintf(stderr, "%v (%d/%d cells complete", err, done, len(pending))
		if outPath != "" && done > 0 {
			fmt.Fprintf(stderr, ", saved to %s; fix and re-run with -resume", outPath)
		}
		fmt.Fprintln(stderr, ")")
		return 1
	}
	if !quiet {
		fmt.Fprintf(stdout, "campaign complete: %d cells in %v\n", done, time.Since(start).Round(time.Second))
	}
	if outPath != "" {
		fmt.Fprintf(stderr, "wrote %s\n", outPath)
	}
	return 0
}

// runWorker is worker mode: lease cells from the coordinator, run them
// through the normal campaign path, submit the results, repeat until the
// coordinator reports the campaign done. A SIGINT/SIGTERM drains: the
// in-flight cell is handed back so the coordinator reassigns it at once.
func runWorker(ctx context.Context, stdout, stderr io.Writer,
	addr, id string, quiet bool, tel *telemetry.Campaign, start time.Time,
	useArtifacts bool, cacheDir string) int {
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	var arts *dispatch.ArtifactCache
	if useArtifacts {
		arts = &dispatch.ArtifactCache{Dir: cacheDir, URL: addr, Tel: tel}
	}
	done := 0
	w := &dispatch.Worker{
		ID: id, URL: addr, Tel: tel, Artifacts: arts,
		OnCell: func(cell int, spec core.Spec, res *core.Result) {
			done++
			if !quiet {
				fmt.Fprintf(stdout, "cell %3d %-8s %-13s %d-bit: AVF=%6.2f%% (%d samples, %v elapsed)\n",
					cell, spec.Component, spec.Workload, spec.Faults,
					100*res.AVF(), res.Samples(), time.Since(start).Round(time.Millisecond))
			}
		},
	}
	fmt.Fprintf(stderr, "dispatch: worker %s joining %s\n", id, addr)
	err := w.Run(ctx)
	var term *dispatch.TerminalError
	switch {
	case errors.Is(err, context.Canceled):
		fmt.Fprintf(stderr, "interrupted: %d cells submitted; in-flight lease handed back\n", done)
		return 130
	case errors.As(err, &term):
		// The coordinator is healthy and said no — wrong service, unknown
		// campaign, rejected identity. Retrying cannot fix a permanent
		// rejection, so this is misconfiguration (exit 2), not a runtime
		// failure, and the worker exits now instead of burning MaxDowntime.
		fmt.Fprintln(stderr, err)
		return 2
	case err != nil:
		fmt.Fprintln(stderr, err)
		return 1
	}
	if !quiet {
		fmt.Fprintf(stdout, "worker done: %d cells submitted in %v\n", done, time.Since(start).Round(time.Second))
	}
	return 0
}

// cellLine renders one completed cell's outcome mix and the campaign ETA —
// the same line whether the cell ran in-process or arrived from a
// distributed worker.
func cellLine(done, total int, spec core.Spec, res *core.Result, start time.Time) string {
	elapsed := time.Since(start)
	// No completed cells means no per-cell pace to extrapolate (a division
	// by zero here renders as an "eta 2562047h..." absurdity, not a crash).
	eta := "--"
	if done > 0 {
		eta = time.Duration(float64(elapsed) / float64(done) * float64(total-done)).Round(time.Second).String()
	}
	return fmt.Sprintf("[%3d/%3d] %-8s %-13s %d-bit: AVF=%6.2f%% masked=%5.1f%% sdc=%5.1f%% crash=%5.1f%% timeout=%5.1f%% assert=%5.1f%% ±%.2f%% (%v elapsed, eta %v)",
		done, total, spec.Component, spec.Workload, spec.Faults,
		100*res.AVF(),
		100*res.Fraction(core.EffectMasked),
		100*res.Fraction(core.EffectSDC),
		100*res.Fraction(core.EffectCrash),
		100*res.Fraction(core.EffectTimeout),
		100*res.Fraction(core.EffectAssert),
		100*res.AdjustedMargin(0.99),
		elapsed.Round(time.Millisecond), eta)
}

// statusLoop prints a registry-driven summary line every interval until
// done is closed. It works alongside -q: the summary replaces, rather than
// duplicates, the per-cell progress stream.
func statusLoop(w io.Writer, tel *telemetry.Campaign, interval time.Duration, start time.Time, done <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			fmt.Fprintln(w, statusLine(tel.Summarize(), time.Since(start)))
		}
	}
}

// statusLine renders one campaign summary: sample throughput, outcome mix,
// cell progress, checkpoint hit rate and an ETA, all derived from the
// telemetry registry.
func statusLine(s telemetry.Summary, elapsed time.Duration) string {
	var b strings.Builder
	// Elapsed time can be zero (or negative, under clock steps) on the
	// first tick; dividing by it renders throughput as "+Inf/s". No
	// measurement window means no rate — print a placeholder and skip the
	// ETA, which would be equally meaningless.
	rate := 0.0
	if secs := elapsed.Seconds(); secs > 0 {
		rate = float64(s.Samples) / secs
	}
	fmt.Fprintf(&b, "status: %d", s.Samples)
	if s.SamplesExpected > 0 {
		fmt.Fprintf(&b, "/%d", s.SamplesExpected)
	}
	if rate > 0 {
		fmt.Fprintf(&b, " samples (%.1f/s)", rate)
	} else {
		b.WriteString(" samples (--/s)")
	}
	if s.Samples > 0 {
		b.WriteString(" |")
		for _, e := range core.Effects() {
			if n := s.ByOutcome[e.Label()]; n > 0 {
				fmt.Fprintf(&b, " %s %.1f%%", e.Label(), 100*float64(n)/float64(s.Samples))
			}
		}
	}
	fmt.Fprintf(&b, " | cells %d", s.Cells)
	if s.CellsExpected > 0 {
		fmt.Fprintf(&b, "/%d", s.CellsExpected)
	}
	if total := s.CheckpointHits + s.CheckpointMiss; total > 0 {
		fmt.Fprintf(&b, " | ckpt hit %.0f%%", 100*float64(s.CheckpointHits)/float64(total))
	}
	if s.Fleet() {
		fmt.Fprintf(&b, " | fleet %d/%d workers live, %d leased", s.WorkersLive, s.WorkersSeen, s.CellsLeased)
		if s.LeasesExpired > 0 || s.CellsRetried > 0 {
			fmt.Fprintf(&b, ", %d expired, %d retried", s.LeasesExpired, s.CellsRetried)
		}
	}
	if rate > 0 && s.SamplesExpected > s.Samples {
		eta := time.Duration(float64(s.SamplesExpected-s.Samples) / rate * float64(time.Second))
		fmt.Fprintf(&b, " | eta %v", eta.Round(time.Second))
	}
	return b.String()
}

// fateLine renders the campaign-wide masking-mechanism breakdown from the
// registry's forensics counters, in canonical fate order.
func fateLine(s telemetry.Summary) string {
	var total int64
	for _, n := range s.ByFate {
		total += n
	}
	var b strings.Builder
	b.WriteString("forensics:")
	if total == 0 {
		b.WriteString(" no fates recorded")
		return b.String()
	}
	for _, f := range forensics.Fates() {
		if n := s.ByFate[f.Label()]; n > 0 {
			fmt.Fprintf(&b, " %s %.1f%%", f.Label(), 100*float64(n)/float64(total))
		}
	}
	fmt.Fprintf(&b, " (n=%d)", total)
	return b.String()
}

// defaultCacheDir is where worker processes cache checkpoint artifacts
// between runs: the OS user cache directory, or no disk cache when the
// platform does not define one.
func defaultCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "mbusim", "artifacts")
}

// buildSpecs expands the flag set into the campaign grid, validating
// component and workload lists up front — a typo must fail before the
// first golden run is built, not hours into the grid.
func buildSpecs(stderr io.Writer, all bool, comp, workload string, faults, samples int, seed uint64, nockpt, nodelta bool, fmode forensics.Mode, wallTO time.Duration) ([]core.Spec, int) {
	var specs []core.Spec
	if all {
		comps := core.Components()
		if comp != "" {
			comps = strings.Split(comp, ",")
			for _, c := range comps {
				if err := core.ValidComponent(c); err != nil {
					fmt.Fprintln(stderr, err)
					return nil, 2
				}
			}
		}
		names := workloads.Names()
		if workload != "" {
			names = strings.Split(workload, ",")
			for _, w := range names {
				if err := core.ValidWorkload(w); err != nil {
					fmt.Fprintln(stderr, err)
					return nil, 2
				}
			}
		}
		for _, c := range comps {
			for _, w := range names {
				for k := 1; k <= 3; k++ {
					specs = append(specs, core.Spec{
						Workload: w, Component: c, Faults: k,
						Samples: samples, Seed: seed,
						NoCheckpoints: nockpt, Forensics: fmode,
						WallTimeout: wallTO,
					})
				}
			}
		}
	} else {
		if workload == "" || comp == "" {
			fmt.Fprintln(stderr, "need -workload and -comp (or -all)")
			return nil, 2
		}
		specs = append(specs, core.Spec{
			Workload: workload, Component: comp, Faults: faults,
			Samples: samples, Seed: seed,
			NoCheckpoints: nockpt, NoDelta: nodelta, Forensics: fmode,
			WallTimeout: wallTO,
		})
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			fmt.Fprintln(stderr, err)
			return nil, 2
		}
	}
	return specs, 0
}
