// gefin runs spatial multi-bit fault-injection campaigns on the simulated
// Cortex-A9-like machine (the Gem5+GeFIN analog of the paper).
//
// Run one cell:
//
//	gefin -workload CRC32 -comp L1D -faults 2 -samples 100
//
// Run the full grid (6 components x 15 workloads x 3 cardinalities) and
// save the results for avfreport:
//
//	gefin -all -samples 100 -out results.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/workloads"
)

func main() {
	var (
		workload   = flag.String("workload", "", "workload name (empty with -all means every workload)")
		comp       = flag.String("comp", "", "component: L1D, L1I, L2, RegFile, DTLB, ITLB (empty with -all means every component)")
		faults     = flag.Int("faults", 1, "fault cardinality 1-3 (ignored with -all: all three run)")
		samples    = flag.Int("samples", 100, "injections per cell")
		seed       = flag.Uint64("seed", 1, "campaign seed")
		all        = flag.Bool("all", false, "run the full component x workload x cardinality grid")
		outPath    = flag.String("out", "", "write results JSON to this file")
		quiet      = flag.Bool("q", false, "suppress per-cell progress")
		nockpt     = flag.Bool("nockpt", false, "replay every run from cycle 0 instead of fast-forwarding from golden checkpoints")
		ckpts      = flag.Int("checkpoints", workloads.CheckpointCount, "golden checkpoints per workload (K)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile after the campaign to this file")
	)
	flag.Parse()
	workloads.CheckpointCount = *ckpts

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	rs := core.NewResultSet()
	var specs []core.Spec
	if *all {
		comps := core.Components()
		if *comp != "" {
			comps = strings.Split(*comp, ",")
		}
		names := workloads.Names()
		if *workload != "" {
			names = strings.Split(*workload, ",")
		}
		for _, c := range comps {
			for _, w := range names {
				for k := 1; k <= 3; k++ {
					specs = append(specs, core.Spec{
						Workload: w, Component: c, Faults: k,
						Samples: *samples, Seed: *seed,
						NoCheckpoints: *nockpt,
					})
				}
			}
		}
	} else {
		if *workload == "" || *comp == "" {
			fmt.Fprintln(os.Stderr, "need -workload and -comp (or -all)")
			os.Exit(2)
		}
		specs = append(specs, core.Spec{
			Workload: *workload, Component: *comp, Faults: *faults,
			Samples: *samples, Seed: *seed,
			NoCheckpoints: *nockpt,
		})
	}

	start := time.Now()
	for i, spec := range specs {
		t0 := time.Now()
		res, err := core.Run(spec, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rs.Add(res)
		if !*quiet {
			fmt.Printf("[%3d/%3d] %-8s %-13s %d-bit: AVF=%6.2f%% masked=%5.1f%% sdc=%5.1f%% crash=%5.1f%% timeout=%5.1f%% assert=%5.1f%% ±%.2f%% (%v)\n",
				i+1, len(specs), spec.Component, spec.Workload, spec.Faults,
				100*res.AVF(),
				100*res.Fraction(core.EffectMasked),
				100*res.Fraction(core.EffectSDC),
				100*res.Fraction(core.EffectCrash),
				100*res.Fraction(core.EffectTimeout),
				100*res.Fraction(core.EffectAssert),
				100*res.AdjustedMargin(0.99),
				time.Since(t0).Round(time.Millisecond))
		}
	}
	if !*quiet {
		fmt.Printf("campaign complete: %d cells in %v\n", len(specs), time.Since(start).Round(time.Second))
	}

	if *outPath != "" {
		data, err := json.MarshalIndent(rs, "", " ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC() // materialize up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "wrote %s\n", *memProfile)
	}
}
