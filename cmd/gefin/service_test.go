package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mbusim/internal/dispatch"
)

// TestServiceFlagValidation: configurations that cannot work exit 2 before
// any listener opens or any state directory is touched.
func TestServiceFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"service-dir without serve", []string{"-service-dir", "d"}, "needs -serve"},
		{"service with grid flags", []string{"-serve", ":0", "-service-dir", "d", "-all"}, "POST /campaigns, not flags"},
		{"service with out", []string{"-serve", ":0", "-service-dir", "d", "-out", "r.json"}, "POST /campaigns, not flags"},
		{"submit with serve", []string{"-submit", "localhost:1", "-serve", ":0"}, "use them alone"},
		{"submit with campaigns", []string{"-submit", "localhost:1", "-campaigns", "localhost:1"}, "use them alone"},
		{"campaigns with join", []string{"-campaigns", "localhost:1", "-join", "localhost:1"}, "use them alone"},
		{"do without campaign id", []string{"-campaigns", "localhost:1", "-do", "pause"}, "-do needs"},
		{"do without campaigns", []string{"-campaign", "c000000", "-do", "pause"}, "-do needs"},
		{"zero lease ttl", []string{"-serve", ":0", "-service-dir", "d", "-lease-ttl", "0s"}, "-lease-ttl must be positive"},
		{"negative lease ttl", append(tinyGrid(), "-serve", ":0", "-lease-ttl", "-1s"), "-lease-ttl must be positive"},
		{"negative retries", append(tinyGrid(), "-serve", ":0", "-retries", "-1"), "-retries must be >= 0"},
		{"zero queue depth", []string{"-serve", ":0", "-service-dir", "d", "-queue-depth", "0"}, "-queue-depth must be positive"},
		{"negative max active", []string{"-serve", ":0", "-service-dir", "d", "-max-active", "-3"}, "-max-active must be positive"},
		{"zero tenant campaigns", []string{"-serve", ":0", "-service-dir", "d", "-tenant-campaigns", "0"}, "-tenant-campaigns must be positive"},
		{"zero tenant cells", []string{"-serve", ":0", "-service-dir", "d", "-tenant-cells", "0"}, "-tenant-cells must be positive"},
	}
	for _, tc := range cases {
		code, _, stderr := runGefin(t, tc.args...)
		if code != 2 || !strings.Contains(stderr, tc.want) {
			t.Errorf("%s: exit=%d stderr=%q, want 2 with %q", tc.name, code, stderr, tc.want)
		}
	}
}

// TestSubmitUnreachableServiceFails: a submit against nothing is a runtime
// failure (1) after the client's patience, not a hang.
func TestSubmitUnreachableServiceFails(t *testing.T) {
	t.Parallel()
	// The client retries for MaxWait; connection-refused is instant, so a
	// short patience keeps this test quick. There is no flag for MaxWait —
	// use the package client directly with the same classification.
	cl := &dispatch.Client{URL: "http://127.0.0.1:1", MaxWait: 50 * time.Millisecond}
	_, err := cl.Campaigns(context.Background())
	if err == nil {
		t.Fatal("campaign list against a dead address succeeded")
	}
	if code := clientExit(&bytes.Buffer{}, err); code != 1 {
		t.Fatalf("unreachable service exit = %d, want 1", code)
	}
}

// startServiceGefin boots `gefin -serve 127.0.0.1:0 -service-dir DIR` in a
// goroutine and returns the resolved address. The goroutine leaks (service
// mode only exits on a signal) — harmless, the test binary's exit reaps it.
func startServiceGefin(t *testing.T, dir string, extra ...string) string {
	t.Helper()
	var errB syncBuffer
	args := append([]string{"-serve", "127.0.0.1:0", "-service-dir", dir}, extra...)
	go run(args, &bytes.Buffer{}, &errB)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s := errB.String(); strings.Contains(s, "campaign service on http://") {
			s = s[strings.Index(s, "on http://")+len("on http://"):]
			return strings.Fields(s)[0]
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign service never came up: %s", errB.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServiceSubmitWaitMatchesLocal is the CLI face of the campaign
// service: -submit with the usual grid flags, -campaign-out to wait and
// download, a plain -join worker doing the work, and the downloaded file
// byte-identical to the same grid run locally. Also exercises -campaigns
// listing and -do cancel on a second, never-started campaign.
func TestServiceSubmitWaitMatchesLocal(t *testing.T) {
	dir := t.TempDir()
	refPath := filepath.Join(dir, "ref.json")
	gotPath := filepath.Join(dir, "got.json")
	if code, _, stderr := runGefin(t, tinyGrid("-out", refPath)...); code != 0 {
		t.Fatalf("reference run failed: %s", stderr)
	}

	addr := startServiceGefin(t, filepath.Join(dir, "state"), "-max-active", "1")

	// A worker with no campaigns yet: it waits, it does not exit.
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	workerDone := make(chan int, 1)
	go func() {
		w := &dispatch.Worker{ID: "w1", URL: "http://" + addr,
			Backoff: dispatch.Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond}}
		w.Run(wctx)
		workerDone <- 1
	}()

	// Submit-and-wait: the CLI blocks until done and writes the results.
	code, stdout, stderr := runGefin(t, tinyGrid("-submit", addr, "-name", "cli-e2e",
		"-tenant", "acme", "-campaign-out", gotPath)...)
	if code != 0 {
		t.Fatalf("submit exit=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stdout, "tenant acme") {
		t.Fatalf("submit output missing tenant: %s", stdout)
	}

	want, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(gotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("campaign-service results differ from local run")
	}

	// The campaign list shows the finished campaign with its name.
	code, stdout, stderr = runGefin(t, "-campaigns", addr)
	if code != 0 {
		t.Fatalf("-campaigns exit=%d stderr=%s", code, stderr)
	}
	if !strings.Contains(stdout, "done") || !strings.Contains(stdout, "name=cli-e2e") {
		t.Fatalf("campaign listing: %s", stdout)
	}
	id := strings.Fields(stdout)[0]

	// Transitions against a finished campaign are typed config errors (2).
	code, _, stderr = runGefin(t, "-campaigns", addr, "-campaign", id, "-do", "pause")
	if code != 2 || !strings.Contains(stderr, "bad_transition") {
		t.Fatalf("pause of finished campaign: exit=%d stderr=%s", code, stderr)
	}

	// Submit a second campaign and cancel it through the CLI.
	code, stdout, stderr = runGefin(t, tinyGrid("-submit", addr, "-name", "doomed")...)
	if code != 0 {
		t.Fatalf("second submit exit=%d stderr=%s", code, stderr)
	}
	id2 := strings.Fields(strings.TrimPrefix(stdout, "campaign "))[0]
	id2 = strings.TrimSuffix(id2, ":")
	code, stdout, stderr = runGefin(t, "-campaigns", addr, "-campaign", id2, "-do", "cancel")
	if code != 0 || !strings.Contains(stdout, "cancelled") {
		t.Fatalf("cancel: exit=%d stdout=%s stderr=%s", code, stdout, stderr)
	}

	// Through all of it the worker kept serving — campaigns end, the fleet
	// stays. Only its context cancels it.
	select {
	case <-workerDone:
		t.Fatal("worker exited when the campaign finished; service workers are persistent")
	default:
	}
	wcancel()
	select {
	case <-workerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit on context cancel")
	}
}
