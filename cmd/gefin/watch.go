package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/dispatch"
	"mbusim/internal/telemetry"
)

// Watch mode: `gefin -watch host:port` tails a coordinator's campaign event
// log over GET /dispatch/events and renders a live text dashboard — cell
// progress and pace, the outcome mix so far, per-worker busy/idle state and
// lease health — refreshed whenever events arrive. It is a pure observer:
// state is reconstructed entirely from the event stream, so the same model
// drives post-mortem rendering from a saved log.

// watchWorker is one worker's live state in the dashboard.
type watchWorker struct {
	cell   int    // leased cell index, -1 when idle
	spec   string // comp/workload/k-bit of the leased cell
	cells  int    // cells completed by this worker
	lastNS int64  // last event concerning this worker
	gone   bool   // worker_leave seen after the last join
}

// watchModel folds a campaign event stream into the dashboard state. It is
// pure with respect to the events (no wall clock): pace and ETA derive from
// event timestamps, so rendering is deterministic for a fixed stream.
type watchModel struct {
	lastSeq   uint64
	cellsTot  int // campaign_start grid size, 0 until seen
	cellsDone int
	samples   int
	counts    map[string]int // outcome label -> count, from cell_done
	expired   int
	retried   int
	workers   map[string]*watchWorker
	done      bool
	detail    string // campaign_done detail (terminal error, if any)
	firstNS   int64  // first event timestamp
	lastNS    int64  // latest event timestamp
}

func newWatchModel() *watchModel {
	return &watchModel{counts: make(map[string]int), workers: make(map[string]*watchWorker)}
}

// apply folds one event into the model.
func (m *watchModel) apply(ev telemetry.Event) {
	if ev.Seq > m.lastSeq {
		m.lastSeq = ev.Seq
	}
	if m.firstNS == 0 {
		m.firstNS = ev.TimeNS
	}
	if ev.TimeNS > m.lastNS {
		m.lastNS = ev.TimeNS
	}
	var w *watchWorker
	if ev.Worker != "" {
		w = m.workers[ev.Worker]
		if w == nil {
			w = &watchWorker{cell: -1}
			m.workers[ev.Worker] = w
		}
		w.lastNS = ev.TimeNS
		w.gone = false
	}
	switch ev.Type {
	case telemetry.EventCampaignStart:
		m.cellsTot = ev.Cells
	case telemetry.EventCellLeased:
		w.cell = ev.Cell
		w.spec = fmt.Sprintf("%s/%s/%d-bit", ev.Comp, ev.Workload, ev.Faults)
	case telemetry.EventCellDone:
		m.cellsDone++
		m.samples += ev.Samples
		for k, n := range ev.Counts {
			m.counts[k] += n
		}
		if w != nil {
			w.cells++
			if w.cell == ev.Cell {
				w.cell = -1
			}
		}
	case telemetry.EventLeaseExpired:
		m.expired++
		if w != nil && w.cell == ev.Cell {
			w.cell = -1
		}
	case telemetry.EventCellRetried:
		m.retried++
	case telemetry.EventWorkerLeave:
		if w != nil {
			w.cell = -1
			w.gone = true
		}
	case telemetry.EventCampaignDone:
		m.done = true
		m.detail = ev.Detail
		if ev.Cells > m.cellsDone {
			m.cellsDone = ev.Cells
		}
	}
}

// renderWatch renders the dashboard snapshot: a header line with progress,
// pace, lease health and ETA, the outcome mix, then one line per worker.
func renderWatch(m *watchModel) string {
	var b strings.Builder
	elapsed := time.Duration(m.lastNS - m.firstNS)
	fmt.Fprintf(&b, "watch: %d", m.cellsDone)
	if m.cellsTot > 0 {
		fmt.Fprintf(&b, "/%d", m.cellsTot)
	}
	fmt.Fprintf(&b, " cells, %d samples", m.samples)
	rate := 0.0
	if secs := elapsed.Seconds(); secs > 0 && m.cellsDone > 0 {
		rate = float64(m.cellsDone) / secs
		fmt.Fprintf(&b, " (%.2f cells/s)", rate)
	}
	if m.expired > 0 || m.retried > 0 {
		fmt.Fprintf(&b, ", %d leases expired, %d cells retried", m.expired, m.retried)
	}
	switch {
	case m.done && m.detail != "":
		fmt.Fprintf(&b, " | FAILED: %s", m.detail)
	case m.done:
		b.WriteString(" | complete")
	case rate > 0 && m.cellsTot > m.cellsDone:
		eta := time.Duration(float64(m.cellsTot-m.cellsDone) / rate * float64(time.Second))
		fmt.Fprintf(&b, " | eta %v", eta.Round(time.Second))
	}
	b.WriteByte('\n')
	if m.samples > 0 {
		b.WriteString("  outcomes:")
		for _, e := range core.Effects() {
			if n := m.counts[e.Label()]; n > 0 {
				fmt.Fprintf(&b, " %s %.1f%%", e.Label(), 100*float64(n)/float64(m.samples))
			}
		}
		b.WriteByte('\n')
	}
	ids := make([]string, 0, len(m.workers))
	live := 0
	for id, w := range m.workers {
		ids = append(ids, id)
		if !w.gone {
			live++
		}
	}
	sort.Strings(ids)
	if len(ids) > 0 {
		fmt.Fprintf(&b, "  workers: %d live\n", live)
	}
	for _, id := range ids {
		w := m.workers[id]
		state := "idle"
		switch {
		case w.gone:
			state = "gone"
		case w.cell >= 0:
			state = fmt.Sprintf("busy cell %d (%s)", w.cell, w.spec)
		}
		fmt.Fprintf(&b, "    %-20s %-40s %d cells done\n", id, state, w.cells)
	}
	return b.String()
}

// runWatch drives the live dashboard: long-poll the coordinator's event
// stream from the last seen sequence number, fold, render. Exits 0 when the
// campaign ends, 130 on SIGINT/SIGTERM, 1 when the coordinator stays
// unreachable (a finished coordinator closing its port while we watch a
// complete campaign is normal exit, not an error).
func runWatch(stdout, stderr io.Writer, url string) int {
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	m := newWatchModel()
	client := &http.Client{Timeout: 30 * time.Second}
	fmt.Fprintf(stderr, "watch: streaming %s%s\n", url, dispatch.PathEvents)
	const maxFailures = 10
	failures := 0
	for {
		evs, err := fetchEvents(ctx, client, url, m.lastSeq)
		if ctx.Err() != nil {
			return 130
		}
		if err != nil {
			failures++
			if failures >= maxFailures {
				fmt.Fprintf(stderr, "watch: coordinator unreachable: %v\n", err)
				return 1
			}
			if !sleepCtxWatch(ctx, time.Second) {
				return 130
			}
			continue
		}
		failures = 0
		for _, ev := range evs {
			m.apply(ev)
		}
		if len(evs) > 0 {
			fmt.Fprint(stdout, renderWatch(m))
		}
		if m.done {
			return 0
		}
	}
}

// fetchEvents performs one long-poll against the events endpoint and decodes
// the JSONL body.
func fetchEvents(ctx context.Context, client *http.Client, url string, since uint64) ([]telemetry.Event, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s%s?since=%d&wait=10s", url, dispatch.PathEvents, since), nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("watch: %s: HTTP %d", dispatch.PathEvents, resp.StatusCode)
	}
	var evs []telemetry.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev telemetry.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, err
		}
		evs = append(evs, ev)
	}
	return evs, sc.Err()
}

// sleepCtxWatch pauses for d, returning false if ctx was cancelled first.
func sleepCtxWatch(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
