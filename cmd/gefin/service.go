package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/dispatch"
	"mbusim/internal/telemetry"
	"mbusim/internal/workloads"
)

// runService is `gefin -serve ADDR -service-dir DIR`: the durable
// multi-campaign coordinator. Campaigns arrive over POST /campaigns, one
// worker fleet is shared round-robin across everything running, and every
// accepted submission and state transition is journaled before it is
// acknowledged — SIGKILL the process, restart it on the same directory,
// and queued, running and finished campaigns come back exactly, with
// results files byte-identical to an uninterrupted run.
func runService(ctx context.Context, stdout, stderr io.Writer, addr, dir string,
	opts dispatch.ServiceOptions, tel *telemetry.Campaign, start time.Time) int {
	svc, err := dispatch.NewService(dir, opts)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	mux := svc.Mux()
	// Serve checkpoint artifacts for every registered workload: the service
	// cannot know which workloads future submissions will name, and the
	// artifact table is lazy — nothing derives until a worker asks.
	arts, err := dispatch.NewArtifactServer(allWorkloadSpecs(), tel)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	mux.Handle(dispatch.PathArtifact, arts)
	health := func() telemetry.Health {
		return telemetry.Health{Role: "service",
			UptimeSeconds: time.Since(start).Seconds(), Campaign: svc.Snapshot()}
	}
	mux.Handle("/", telemetry.Handler(tel.Registry, health))
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()
	fmt.Fprintf(stderr, "dispatch: campaign service on http://%s (state %s, %d active slots, queue depth %d)\n",
		ln.Addr(), dir, opts.MaxActive, opts.QueueDepth)

	err = svc.Run(ctx)
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(stderr, "campaign service stopped; state is durable — restart with the same -service-dir to resume")
		return 130
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

// allWorkloadSpecs synthesizes one spec per registered workload — the
// artifact server only reads Workload from them.
func allWorkloadSpecs() []core.Spec {
	names := workloads.Names()
	specs := make([]core.Spec, 0, len(names))
	for _, w := range names {
		specs = append(specs, core.Spec{Workload: w})
	}
	return specs
}

// serviceURL normalizes a host:port to a base URL.
func serviceURL(addr string) string {
	if !strings.Contains(addr, "://") {
		return "http://" + addr
	}
	return addr
}

// clientExit maps a campaign-API client error to an exit code: a typed
// rejection (4xx) is misconfiguration (2), anything else — the service
// unreachable past the client's patience — is a runtime failure (1).
func clientExit(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, err)
	var term *dispatch.TerminalError
	if errors.As(err, &term) {
		return 2
	}
	return 1
}

// runSubmit is `gefin -submit ADDR <grid flags>`: build the grid exactly
// like a local run would and hand it to the campaign service. With
// -campaign-out it then polls until the campaign finishes and downloads
// the results file; the poll loop rides the client's retry policy, so a
// service restart mid-campaign is invisible here beyond latency.
func runSubmit(ctx context.Context, stdout, stderr io.Writer, addr string,
	specs []core.Spec, tenant, name string, retries int, outPath string, quiet bool) int {
	cl := &dispatch.Client{URL: serviceURL(addr)}
	info, err := cl.SubmitCampaign(ctx, &dispatch.SubmitCampaignRequest{
		Tenant: tenant, Name: name, Retries: retries, Specs: specs,
	})
	if err != nil {
		return clientExit(stderr, err)
	}
	fmt.Fprintf(stdout, "campaign %s: %s, %d cells, tenant %s\n",
		info.ID, info.State, info.Cells, info.Tenant)
	if outPath == "" {
		return 0
	}

	lastDone := -1
	for {
		cur, err := cl.Campaign(ctx, info.ID)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(stderr, "interrupted waiting on campaign %s (it keeps running server-side)\n", info.ID)
				return 130
			}
			return clientExit(stderr, err)
		}
		if !quiet && cur.Done != lastDone {
			lastDone = cur.Done
			fmt.Fprintf(stdout, "campaign %s: %s, %d/%d cells done\n",
				cur.ID, cur.State, cur.Done, cur.Cells)
		}
		switch cur.State {
		case dispatch.StateDone:
			data, err := cl.Results(ctx, cur.ID)
			if err != nil {
				return clientExit(stderr, err)
			}
			if err := os.WriteFile(outPath, data, 0o644); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			fmt.Fprintf(stderr, "wrote %s\n", outPath)
			return 0
		case dispatch.StateFailed:
			fmt.Fprintf(stderr, "campaign %s failed: %s\n", cur.ID, cur.Detail)
			return 1
		case dispatch.StateCancelled:
			fmt.Fprintf(stderr, "campaign %s was cancelled\n", cur.ID)
			return 1
		}
		select {
		case <-ctx.Done():
			fmt.Fprintf(stderr, "interrupted waiting on campaign %s (it keeps running server-side)\n", info.ID)
			return 130
		case <-time.After(time.Second):
		}
	}
}

// campaignLine renders one campaign's status.
func campaignLine(c dispatch.CampaignInfo) string {
	line := fmt.Sprintf("%s  %-9s  %d/%d cells", c.ID, c.State, c.Done, c.Cells)
	if c.Leased > 0 {
		line += fmt.Sprintf(", %d leased", c.Leased)
	}
	if c.Retries > 0 {
		line += fmt.Sprintf(", %d retries", c.Retries)
	}
	line += "  tenant=" + c.Tenant
	if c.Name != "" {
		line += "  name=" + c.Name
	}
	if c.Detail != "" {
		line += "  (" + c.Detail + ")"
	}
	return line
}

// runCampaigns is `gefin -campaigns ADDR [-campaign ID [-do ACTION]]`:
// list every campaign, show one, or transition one (pause/resume/cancel).
func runCampaigns(ctx context.Context, stdout, stderr io.Writer, addr, id, action string) int {
	cl := &dispatch.Client{URL: serviceURL(addr)}
	switch {
	case id == "":
		infos, err := cl.Campaigns(ctx)
		if err != nil {
			return clientExit(stderr, err)
		}
		if len(infos) == 0 {
			fmt.Fprintln(stdout, "no campaigns")
			return 0
		}
		for _, c := range infos {
			fmt.Fprintln(stdout, campaignLine(c))
		}
		return 0
	case action != "":
		info, err := cl.Transition(ctx, id, action)
		if err != nil {
			return clientExit(stderr, err)
		}
		fmt.Fprintln(stdout, campaignLine(*info))
		return 0
	default:
		info, err := cl.Campaign(ctx, id)
		if err != nil {
			return clientExit(stderr, err)
		}
		fmt.Fprintln(stdout, campaignLine(*info))
		return 0
	}
}
