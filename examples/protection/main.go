// Protection planning: the paper's motivating use case. Error protection
// (parity, ECC, interleaving) costs area and power, so an architect wants
// to know which structures contribute most to the failure rate — and how
// much of that contribution a single-bit-only analysis would miss.
//
// This example runs small campaigns for two structures over two workloads,
// extends them to per-technology-node FIT (Eq. 3 + Eq. 4), and ranks the
// structures by their 22nm FIT contribution.
package main

import (
	"context"
	"fmt"
	"log"

	"mbusim/internal/avf"
	"mbusim/internal/core"
	"mbusim/internal/fit"
	"mbusim/internal/tech"
)

func main() {
	components := []string{core.CompL1D, core.CompDTLB}
	workloadNames := []string{"sha", "stringSearch"}
	const samples = 40

	// Campaign: both components, both workloads, all three cardinalities.
	rs := core.NewResultSet()
	for _, comp := range components {
		for _, wn := range workloadNames {
			for k := 1; k <= 3; k++ {
				res, err := core.Run(context.Background(), core.Spec{
					Workload: wn, Component: comp, Faults: k,
					Samples: samples, Seed: 11,
				}, nil)
				if err != nil {
					log.Fatal(err)
				}
				rs.Add(res)
			}
		}
	}

	// Weighted AVF per component (Eq. 2), then per-node FIT.
	cas, err := avf.WeightedFromResults(rs, components, workloadNames)
	if err != nil {
		log.Fatal(err)
	}
	node22, err := tech.ByName("22nm")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("structure ranking at 22nm (who needs protection first):")
	for _, ca := range cas {
		bits, err := tech.ComponentBits(ca.Component)
		if err != nil {
			log.Fatal(err)
		}
		agg := avf.NodeAVF(ca.ByFaults[1], ca.ByFaults[2], ca.ByFaults[3], node22)
		f := fit.Structure(agg, node22, bits)
		fSingle := fit.Structure(ca.ByFaults[1], node22, bits)
		missed := 0.0
		if f > 0 {
			missed = 100 * (1 - fSingle/f)
		}
		fmt.Printf("  %-8s AVF(1/2/3-bit) = %4.1f%%/%4.1f%%/%4.1f%%  22nm FIT = %.5f"+
			"  (a single-bit-only analysis misses %.0f%% of it)\n",
			ca.Component,
			100*ca.ByFaults[1], 100*ca.ByFaults[2], 100*ca.ByFaults[3],
			f, missed)
	}

	fmt.Println()
	fmt.Println("reading: the structure with the larger multi-bit FIT share profits")
	fmt.Println("most from interleaving-aware protection (the paper's Section VI).")
}
