// Technology scaling: reproduce the paper's Fig. 7 analysis for one
// component. A single campaign measures the single/double/triple-bit AVFs
// of the register file; combining them with each node's multi-bit upset
// rates (Table VI) shows how the same silicon design becomes more
// vulnerable as it is manufactured in denser technologies — and how much
// of that a single-bit-only assessment misses.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"mbusim/internal/avf"
	"mbusim/internal/core"
)

func main() {
	const workload = "gsm_dec"
	ca := avf.ComponentAVF{Component: core.CompRF}
	for k := 1; k <= 3; k++ {
		res, err := core.Run(context.Background(), core.Spec{
			Workload:  workload,
			Component: core.CompRF,
			Faults:    k,
			Samples:   60,
			Seed:      5,
		}, nil)
		if err != nil {
			log.Fatal(err)
		}
		ca.ByFaults[k] = res.AVF()
		fmt.Printf("%d-bit campaign: AVF = %.2f%% ± %.2f%%\n",
			k, 100*res.AVF(), 100*res.AdjustedMargin(0.99))
	}
	fmt.Printf("vulnerability increase: 2-bit %.1fx, 3-bit %.1fx\n\n",
		ca.Increase(2), ca.Increase(3))

	fmt.Printf("register file AVF across technology nodes (workload %s):\n", workload)
	fmt.Println("node     single-bit  aggregate  gap    bar (green=single, red=MBU extra)")
	for _, e := range avf.NodeTable(ca) {
		barLen := func(v float64) int { return int(v * 200) }
		single := barLen(e.SingleOnly)
		extra := barLen(e.Aggregate) - single
		if extra < 0 {
			extra = 0
		}
		fmt.Printf("%-7s  %6.2f%%     %6.2f%%   %5.1f%%  %s%s\n",
			e.Node.Name, 100*e.SingleOnly, 100*e.Aggregate, 100*e.Gap(),
			strings.Repeat("#", single), strings.Repeat("+", extra))
	}
	fmt.Println()
	fmt.Println("the '+' region is what any single-bit-only method cannot see; in the")
	fmt.Println("paper it reaches 35% of the register file's 22nm AVF.")
}
