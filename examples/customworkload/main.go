// Custom workload: bring your own program. This example compiles a MiniC
// matrix-multiply kernel, captures its golden run, and drives the low-level
// injection API directly (machine + target + mask) — the path to studying
// the vulnerability of code this repository does not ship.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand/v2"

	"mbusim/internal/core"
	"mbusim/internal/cpu"
	"mbusim/internal/minic"
	"mbusim/internal/sim"
)

const source = `
int a[256];
int b[256];
int c[256];

int main(void) {
    // Fill two 16x16 matrices deterministically and multiply them.
    for (int i = 0; i < 256; i++) {
        a[i] = (i * 7 + 3) % 97;
        b[i] = (i * 13 + 5) % 89;
    }
    for (int i = 0; i < 16; i++) {
        for (int j = 0; j < 16; j++) {
            int acc = 0;
            for (int k = 0; k < 16; k++) {
                acc += a[i*16 + k] * b[k*16 + j];
            }
            c[i*16 + j] = acc;
        }
    }
    uint dig = 2166136261u;
    for (int i = 0; i < 256; i++) {
        dig = (dig ^ (uint)c[i]) * 16777619u;
    }
    print_str("matmul digest=");
    print_hex(dig);
    print_nl();
    return 0;
}
`

func main() {
	prog, err := minic.CompileProgram(source)
	if err != nil {
		log.Fatal(err)
	}

	newMachine := func() *sim.Machine {
		m := sim.New(sim.DefaultConfig())
		if err := m.Load(prog); err != nil {
			log.Fatal(err)
		}
		return m
	}

	golden := newMachine().Run(100_000_000, 0, nil)
	if golden.Stop != cpu.StopExit || golden.ExitCode != 0 {
		log.Fatalf("golden run failed: %v", golden.Stop)
	}
	fmt.Printf("golden: %d cycles, %q\n", golden.Cycles, golden.Stdout)

	// 60 double-bit injections into the L1 data cache.
	rng := rand.New(rand.NewPCG(99, 1))
	var counts [5]int
	for i := 0; i < 60; i++ {
		m := newMachine()
		target, err := core.TargetFor(m, core.CompL1D)
		if err != nil {
			log.Fatal(err)
		}
		mask := core.GenerateMask(rng, target.Rows(), target.Cols(), 2, core.DefaultCluster)
		out := m.Run(4*golden.Cycles, rng.Uint64N(golden.Cycles), func(*sim.Machine) {
			mask.Apply(target)
		})

		// Classify by hand against our own golden reference.
		var effect core.Effect
		switch {
		case out.Assert:
			effect = core.EffectAssert
		case out.TimedOut || out.Stop == cpu.StopDeadlock:
			effect = core.EffectTimeout
		case out.Stop == cpu.StopExit:
			if out.ExitCode == golden.ExitCode && bytes.Equal(out.Stdout, golden.Stdout) {
				effect = core.EffectMasked
			} else {
				effect = core.EffectSDC
			}
		default:
			effect = core.EffectCrash
		}
		counts[effect]++
	}

	fmt.Println("60 double-bit L1D injections into the matmul kernel:")
	for _, e := range core.Effects() {
		fmt.Printf("  %-8v %3d\n", e, counts[e])
	}
	avfVal := 1 - float64(counts[core.EffectMasked])/60
	fmt.Printf("AVF = %.1f%%\n", 100*avfVal)
}
