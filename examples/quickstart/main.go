// Quickstart: run one workload fault-free, then inject a single triple-bit
// spatial fault into the L1 data cache and classify the outcome — the
// smallest end-to-end use of the library.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"

	"mbusim/internal/core"
	"mbusim/internal/sim"
	"mbusim/internal/workloads"
)

func main() {
	w, err := workloads.ByName("sha")
	if err != nil {
		log.Fatal(err)
	}

	// The golden (fault-free) run: reference output and cycle count.
	golden, err := w.Reference()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: %d cycles, output %q\n", golden.Cycles, golden.Stdout)

	// One injection: a 3-bit fault in a 3x3 cluster placed at a random
	// position in the L1D array, at a random cycle of execution.
	m, err := w.NewMachine()
	if err != nil {
		log.Fatal(err)
	}
	target, err := core.TargetFor(m, core.CompL1D)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(2024, 7))
	mask := core.GenerateMask(rng, target.Rows(), target.Cols(), 3, core.DefaultCluster)
	injectAt := rng.Uint64N(golden.Cycles)
	fmt.Printf("injecting %d faults at cycle %d: cells %v\n", len(mask.Cells), injectAt, mask.Cells)

	out := m.Run(4*golden.Cycles, injectAt, func(*sim.Machine) {
		mask.Apply(target)
	})
	effect := core.Classify(out, golden)
	fmt.Printf("outcome: %v (stop=%v, %d cycles)\n", effect, out.Stop, out.Cycles)
	if effect == core.EffectSDC {
		fmt.Printf("corrupted output: %q\n", out.Stdout)
	}

	// A small campaign over the same cell gives the AVF with its margin.
	res, err := core.Run(context.Background(), core.Spec{
		Workload:  "sha",
		Component: core.CompL1D,
		Faults:    3,
		Samples:   40,
		Seed:      1,
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campaign (40 injections): AVF = %.1f%% ± %.1f%% at 99%% confidence\n",
		100*res.AVF(), 100*res.AdjustedMargin(0.99))
	for _, e := range core.Effects() {
		fmt.Printf("  %-8v %3d\n", e, res.Counts[e])
	}
}
