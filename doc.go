// Package mbusim is a from-scratch reproduction of "Multi-Bit Upsets
// Vulnerability Analysis of Modern Microprocessors" (IISWC 2019): a
// microarchitecture-level spatial multi-bit fault-injection study on an ARM
// Cortex-A9-like out-of-order CPU.
//
// The module contains the full system stack the paper depends on, built in
// pure Go with only the standard library:
//
//   - internal/isa, internal/asm: the AR32 instruction set and assembler
//   - internal/minic: a C-like compiler used to write the fifteen
//     MiBench-analog workloads (internal/workloads)
//   - internal/cpu, internal/cache, internal/tlb, internal/vm,
//     internal/mem, internal/kernel, internal/sim: the simulated machine
//     with bit-accurate, fault-injectable state
//   - internal/core: the GeFIN-analog spatial multi-bit fault injector and
//     campaign runner (the paper's primary contribution)
//   - internal/stats, internal/tech, internal/avf, internal/fit,
//     internal/report: the statistical and analytical layers producing the
//     paper's tables and figures
//
// The root-level benchmarks (bench_test.go) regenerate every table and
// figure of the paper's evaluation at reduced sample counts; cmd/gefin and
// cmd/avfreport do the same at full fidelity.
package mbusim
