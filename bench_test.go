// Benchmarks regenerating every table and figure of the paper's evaluation
// section. Each benchmark runs the same pipeline as the full campaign
// (cmd/gefin + cmd/avfreport) at a reduced sample count and workload subset
// so that `go test -bench=.` finishes in minutes on one core; the printed
// rows have the same columns as the paper's tables. EXPERIMENTS.md records
// the full-fidelity numbers.
package mbusim_test

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"sync"
	"testing"

	"mbusim/internal/avf"
	"mbusim/internal/core"
	"mbusim/internal/fit"
	"mbusim/internal/forensics"
	"mbusim/internal/report"
	"mbusim/internal/sim"
	"mbusim/internal/tech"
	"mbusim/internal/telemetry"
	"mbusim/internal/workloads"
)

// benchSamples is the per-cell injection count used by the benchmarks.
const benchSamples = 12

// benchWorkloads is the workload subset used by the per-figure benchmarks:
// one long, one medium, one short, covering different footprints.
var benchWorkloads = []string{"sha", "dijkstra", "stringSearch"}

var printOnce sync.Map

// once prints a section a single time regardless of b.N.
func once(key, body string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("=== %s ===\n%s\n", key, body)
	}
}

// runGrid runs a campaign grid over the given components and workloads.
func runGrid(b *testing.B, comps, wls []string) *core.ResultSet {
	b.Helper()
	rs := core.NewResultSet()
	for _, c := range comps {
		for _, w := range wls {
			for k := 1; k <= 3; k++ {
				res, err := core.Run(context.Background(), core.Spec{
					Workload: w, Component: c, Faults: k,
					Samples: benchSamples, Seed: 1,
				}, nil)
				if err != nil {
					b.Fatal(err)
				}
				rs.Add(res)
			}
		}
	}
	return rs
}

// --- Setup tables ---

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		once("Table I", report.Table1())
	}
}

func BenchmarkTable3ExecutionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t3, err := report.Table3()
		if err != nil {
			b.Fatal(err)
		}
		once("Table III", t3)
	}
}

// --- Figures 1-6: per-component AVF class breakdowns ---

func benchFigure(b *testing.B, component string) {
	for i := 0; i < b.N; i++ {
		rs := runGrid(b, []string{component}, benchWorkloads)
		body, err := report.Figure(rs, component)
		if err != nil {
			b.Fatal(err)
		}
		once("Fig "+component, body)
		// Aggregate AVF per cardinality as reported metrics.
		for k := 1; k <= 3; k++ {
			total, n := 0.0, 0
			for _, w := range benchWorkloads {
				r, err := rs.Get(component, w, k)
				if err != nil {
					b.Fatal(err)
				}
				total += r.AVF()
				n++
			}
			b.ReportMetric(100*total/float64(n), fmt.Sprintf("avf%d_pct", k))
		}
	}
}

func BenchmarkFig1L1D(b *testing.B)     { benchFigure(b, core.CompL1D) }
func BenchmarkFig2L1I(b *testing.B)     { benchFigure(b, core.CompL1I) }
func BenchmarkFig3L2(b *testing.B)      { benchFigure(b, core.CompL2) }
func BenchmarkFig4RegFile(b *testing.B) { benchFigure(b, core.CompRF) }
func BenchmarkFig5DTLB(b *testing.B)    { benchFigure(b, core.CompDTLB) }
func BenchmarkFig6ITLB(b *testing.B)    { benchFigure(b, core.CompITLB) }

// --- Tables IV and V: vulnerability increases and weighted AVFs ---

func benchAggregates(b *testing.B) []avf.ComponentAVF {
	b.Helper()
	comps := []string{core.CompL1D, core.CompRF, core.CompDTLB}
	rs := runGrid(b, comps, benchWorkloads)
	cas, err := avf.WeightedFromResults(rs, comps, benchWorkloads)
	if err != nil {
		b.Fatal(err)
	}
	return cas
}

func BenchmarkTable4Increase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cas := benchAggregates(b)
		once("Table IV", report.Table4(cas))
		b.ReportMetric(cas[0].Increase(2), "l1d_2bit_x")
		b.ReportMetric(cas[0].Increase(3), "l1d_3bit_x")
	}
}

func BenchmarkTable5WeightedAVF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cas := benchAggregates(b)
		once("Table V", report.Table5(cas))
		b.ReportMetric(100*cas[0].ByFaults[1], "l1d_avf1_pct")
		b.ReportMetric(100*cas[0].ByFaults[3], "l1d_avf3_pct")
	}
}

// --- Tables VI-VIII: technology inputs ---

func BenchmarkTable6Rates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		once("Table VI", report.Table6())
	}
}

func BenchmarkTable7RawFIT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		once("Table VII", report.Table7())
	}
}

func BenchmarkTable8Sizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		once("Table VIII", report.Table8())
	}
}

// --- Figures 7 and 8: per-node AVF and whole-CPU FIT ---

func BenchmarkFig7NodeAVF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cas := benchAggregates(b)
		once("Fig 7", report.Fig7(cas))
		for _, ca := range cas {
			if ca.Component == core.CompRF {
				entries := avf.NodeTable(ca)
				b.ReportMetric(100*entries[len(entries)-1].Gap(), "rf_22nm_gap_pct")
			}
		}
	}
}

func BenchmarkFig8FIT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Fig 8 needs all six components; pad the three uncampaigned ones
		// with the three measured (same machinery, reduced cost); the
		// full-fidelity run in EXPERIMENTS.md uses all six measured.
		cas := benchAggregates(b)
		all := make([]avf.ComponentAVF, 0, 6)
		byName := map[string]avf.ComponentAVF{}
		for _, ca := range cas {
			byName[ca.Component] = ca
		}
		for _, comp := range core.Components() {
			ca, ok := byName[comp]
			if !ok {
				switch comp {
				case core.CompL1I, core.CompL2:
					ca = byName[core.CompL1D]
				default:
					ca = byName[core.CompDTLB]
				}
				ca.Component = comp
			}
			all = append(all, ca)
		}
		entries, err := fit.CPU(all)
		if err != nil {
			b.Fatal(err)
		}
		once("Fig 8", report.Fig8(entries))
		b.ReportMetric(100*entries[len(entries)-1].MBUShare(), "mbu_share_22nm_pct")
	}
}

// --- Ablations (DESIGN.md section 5) ---

// ablationCell runs one injection cell with a custom cluster/spanning
// configuration and returns its AVF.
func ablationCell(b *testing.B, cluster core.ClusterSpec, spanning bool) float64 {
	b.Helper()
	res, err := core.Run(context.Background(), core.Spec{
		Workload: "sha", Component: core.CompL1D, Faults: 2,
		Samples: benchSamples * 2, Seed: 3,
		Cluster: cluster, ForceSpanning: spanning,
	}, nil)
	if err != nil {
		b.Fatal(err)
	}
	return res.AVF()
}

func BenchmarkAblationClusterGeometry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		threeByThree := ablationCell(b, core.ClusterSpec{Rows: 3, Cols: 3}, false)
		rowOnly := ablationCell(b, core.ClusterSpec{Rows: 1, Cols: 9}, false)
		twoByTwo := ablationCell(b, core.ClusterSpec{Rows: 2, Cols: 2}, false)
		once("Ablation: cluster geometry", fmt.Sprintf(
			"3x3 (paper): AVF=%.1f%%\n1x9 row-only: AVF=%.1f%%\n2x2 compact:  AVF=%.1f%%\n",
			100*threeByThree, 100*rowOnly, 100*twoByTwo))
		b.ReportMetric(100*threeByThree, "avf_3x3_pct")
		b.ReportMetric(100*rowOnly, "avf_1x9_pct")
	}
}

func BenchmarkAblationSpanning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		free := ablationCell(b, core.DefaultCluster, false)
		span := ablationCell(b, core.DefaultCluster, true)
		once("Ablation: sub-cluster inclusion", fmt.Sprintf(
			"sub-clusters allowed (paper): AVF=%.1f%%\nforced full-span patterns:    AVF=%.1f%%\n",
			100*free, 100*span))
		b.ReportMetric(100*free, "avf_subcluster_pct")
		b.ReportMetric(100*span, "avf_spanning_pct")
	}
}

func BenchmarkAblationWeighting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var avfs []float64
		var cycles []uint64
		for _, wn := range benchWorkloads {
			res, err := core.Run(context.Background(), core.Spec{
				Workload: wn, Component: core.CompL1D, Faults: 1,
				Samples: benchSamples, Seed: 4,
			}, nil)
			if err != nil {
				b.Fatal(err)
			}
			w, _ := workloads.ByName(wn)
			g, err := w.Reference()
			if err != nil {
				b.Fatal(err)
			}
			avfs = append(avfs, res.AVF())
			cycles = append(cycles, g.Cycles)
		}
		weighted, err := avf.Weighted(avfs, cycles)
		if err != nil {
			b.Fatal(err)
		}
		mean := 0.0
		for _, a := range avfs {
			mean += a
		}
		mean /= float64(len(avfs))
		once("Ablation: Eq.2 weighting", fmt.Sprintf(
			"execution-time weighted (paper): %.2f%%\narithmetic mean:                 %.2f%%\n",
			100*weighted, 100*mean))
		b.ReportMetric(100*weighted, "weighted_pct")
		b.ReportMetric(100*mean, "mean_pct")
	}
}

func BenchmarkAblationWalkerPath(b *testing.B) {
	// Page walks through L2 (paper-faithful) vs directly to memory: the
	// direct path removes the kernel-panic route via cached page tables.
	run := func(direct bool) (panics int) {
		w, err := workloads.ByName("stringSearch")
		if err != nil {
			b.Fatal(err)
		}
		prog, err := w.Program()
		if err != nil {
			b.Fatal(err)
		}
		golden, err := w.Reference()
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(8, 8))
		for i := 0; i < benchSamples*3; i++ {
			cfg := sim.DefaultConfig()
			cfg.WalkerDirect = direct
			m := sim.New(cfg)
			if err := m.Load(prog); err != nil {
				b.Fatal(err)
			}
			target, err := core.TargetFor(m, core.CompL2)
			if err != nil {
				b.Fatal(err)
			}
			mask := core.GenerateMask(rng, target.Rows(), target.Cols(), 3, core.DefaultCluster)
			out := m.Run(4*golden.Cycles, rng.Uint64N(golden.Cycles), func(*sim.Machine) {
				mask.Apply(target)
				// Force re-walks so corrupted page-table lines are read.
				m.ITLB.Invalidate()
				m.DTLB.Invalidate()
			})
			if out.PanicMsg != "" || out.Stop.String() == "kernel-panic" {
				panics++
			}
		}
		return panics
	}
	for i := 0; i < b.N; i++ {
		through := run(false)
		direct := run(true)
		once("Ablation: walker path", fmt.Sprintf(
			"walks through L2 (paper): %d kernel panics / %d runs\nwalks direct to memory:   %d kernel panics / %d runs\n",
			through, benchSamples*3, direct, benchSamples*3))
		b.ReportMetric(float64(through), "panics_via_l2")
		b.ReportMetric(float64(direct), "panics_direct")
	}
}

// --- Campaign hot path: checkpointed fast-forward vs from-scratch replay ---

// benchCampaign runs one full campaign cell per iteration. The two
// variants share the spec; only the machine-construction path differs:
// Scratch rebuilds every machine and replays the golden prefix from cycle
// 0, Checkpointed restores the nearest golden checkpoint at or before the
// injection cycle. Both paths produce identical outcomes (enforced by
// TestCheckpointEquivalence); the difference is pure prefix-replay cost.
func benchCampaign(b *testing.B, noCheckpoints bool) {
	spec := core.Spec{
		Workload: "sha", Component: core.CompL1D, Faults: 2,
		Samples: benchSamples * 2, Seed: 7,
		NoCheckpoints: noCheckpoints,
	}
	// Warm the one-time per-process state (compile, golden run, checkpoint
	// set) outside the timed region for both variants alike.
	if _, err := core.Run(context.Background(), spec, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(context.Background(), spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Samples() != spec.Samples {
			b.Fatalf("campaign classified %d runs, want %d", res.Samples(), spec.Samples)
		}
	}
}

func BenchmarkCampaignScratch(b *testing.B)      { benchCampaign(b, true) }
func BenchmarkCampaignCheckpointed(b *testing.B) { benchCampaign(b, false) }

// BenchmarkCampaignTelemetry is BenchmarkCampaignCheckpointed with full
// telemetry enabled — live metrics registry plus a per-sample JSONL trace
// (written to io.Discard, so the number isolates collection and encoding
// cost from disk speed). Compare against Checkpointed for the enabled
// overhead; the disabled path is pinned allocation-free by
// telemetry's TestDisabledSamplePathZeroAllocs.
func BenchmarkCampaignTelemetry(b *testing.B) {
	spec := core.Spec{
		Workload: "sha", Component: core.CompL1D, Faults: 2,
		Samples: benchSamples * 2, Seed: 7,
	}
	if _, err := core.Run(context.Background(), spec, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel := telemetry.NewCampaign(telemetry.NewTracer(io.Discard))
		var res *core.Result
		err := core.RunGridWithTelemetry(context.Background(), []core.Spec{spec}, 1,
			func(_ int, r *core.Result) { res = r }, tel)
		if err != nil {
			b.Fatal(err)
		}
		if res.Samples() != spec.Samples {
			b.Fatalf("campaign classified %d runs, want %d", res.Samples(), spec.Samples)
		}
		if s := tel.Summarize(); s.Samples != int64(spec.Samples) {
			b.Fatalf("registry counted %d samples, want %d", s.Samples, spec.Samples)
		}
	}
}

// BenchmarkCampaignEvents is BenchmarkCampaignTelemetry with the campaign
// event log also attached (written to io.Discard): the number isolates the
// cost of structured event emission — sequence assignment, JSON encoding,
// one Write per event — on top of the metrics registry and sample trace.
// Compare against Telemetry for the event-log overhead; events are per-cell
// (not per-sample), so it should be noise at realistic sample counts.
func BenchmarkCampaignEvents(b *testing.B) {
	spec := core.Spec{
		Workload: "sha", Component: core.CompL1D, Faults: 2,
		Samples: benchSamples * 2, Seed: 7,
	}
	if _, err := core.Run(context.Background(), spec, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel := telemetry.NewCampaign(telemetry.NewTracer(io.Discard))
		tel.Events = telemetry.NewEventLog(io.Discard, 0)
		tel.Emit(telemetry.Event{Type: telemetry.EventCampaignStart, Cell: -1, Cells: 1})
		var res *core.Result
		err := core.RunGridWithTelemetry(context.Background(), []core.Spec{spec}, 1,
			func(_ int, r *core.Result) { res = r }, tel)
		if err != nil {
			b.Fatal(err)
		}
		tel.Emit(telemetry.Event{Type: telemetry.EventCampaignDone, Cell: -1, Cells: 1})
		if res.Samples() != spec.Samples {
			b.Fatalf("campaign classified %d runs, want %d", res.Samples(), spec.Samples)
		}
		if got := tel.Events.LastSeq(); got != 3 {
			b.Fatalf("event log recorded %d events, want 3", got)
		}
	}
}

// BenchmarkCampaignForensics measures the fault-lifecycle tracking overhead
// on top of BenchmarkCampaignTelemetry: fast mode arms the component access
// probes per sample, full mode additionally replays a lockstep shadow
// machine (expect roughly 2x the fast-mode sample cost). The probes-off
// cost is pinned allocation-free by forensics' TestDisabledPathAllocFree.
func benchCampaignForensics(b *testing.B, mode forensics.Mode) {
	spec := core.Spec{
		Workload: "sha", Component: core.CompL1D, Faults: 2,
		Samples: benchSamples * 2, Seed: 7,
		Forensics: mode,
	}
	if _, err := core.Run(context.Background(), spec, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tel := telemetry.NewCampaign(telemetry.NewTracer(io.Discard))
		var res *core.Result
		err := core.RunGridWithTelemetry(context.Background(), []core.Spec{spec}, 1,
			func(_ int, r *core.Result) { res = r }, tel)
		if err != nil {
			b.Fatal(err)
		}
		if res.Samples() != spec.Samples {
			b.Fatalf("campaign classified %d runs, want %d", res.Samples(), spec.Samples)
		}
		fates := int64(0)
		for _, n := range tel.Summarize().ByFate {
			fates += n
		}
		if fates != int64(spec.Samples) {
			b.Fatalf("registry counted %d fates, want %d", fates, spec.Samples)
		}
	}
}

func BenchmarkCampaignForensics(b *testing.B)     { benchCampaignForensics(b, forensics.ModeFast) }
func BenchmarkCampaignForensicsFull(b *testing.B) { benchCampaignForensics(b, forensics.ModeFull) }

// --- Microbenchmarks of the substrate itself ---

func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := workloads.ByName("sha")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		m, err := w.NewMachine()
		if err != nil {
			b.Fatal(err)
		}
		out := m.Run(0, 0, nil)
		cycles += out.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "Mcycles/s")
}

func BenchmarkMaskGeneration(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < b.N; i++ {
		core.GenerateMask(rng, 512, 530, 3, core.DefaultCluster)
	}
}

// --- Extensions beyond the paper ---

// BenchmarkExtensionProjectedNodes extends Fig. 8 past 22nm with the
// projected FinFET-era nodes (starred: extrapolated, not measured data).
func BenchmarkExtensionProjectedNodes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cas := benchAggregates(b)
		var all []avf.ComponentAVF
		byName := map[string]avf.ComponentAVF{}
		for _, ca := range cas {
			byName[ca.Component] = ca
		}
		for _, comp := range core.Components() {
			ca, ok := byName[comp]
			if !ok {
				ca = byName[core.CompL1D]
				ca.Component = comp
			}
			all = append(all, ca)
		}
		entries, err := fit.CPUFor(all, tech.AllNodes())
		if err != nil {
			b.Fatal(err)
		}
		once("Extension: projected nodes (starred = extrapolated)", report.Fig8(entries))
		b.ReportMetric(100*entries[len(entries)-1].MBUShare(), "mbu_share_7nm_pct")
	}
}

// BenchmarkExtensionProtection compares error-protection options on the
// L1D under double-bit spatial faults: unprotected vs SECDED vs SECDED with
// 4-way bit interleaving (the defence of the paper's refs [39]/[46]).
func BenchmarkExtensionProtection(b *testing.B) {
	cell := func(p core.Protection) *core.Result {
		res, err := core.Run(context.Background(), core.Spec{
			Workload: "sha", Component: core.CompL1D, Faults: 2,
			Samples: benchSamples * 2, Seed: 6, Protect: p,
		}, nil)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	for i := 0; i < b.N; i++ {
		none := cell(core.Protection{})
		secded := cell(core.Protection{Kind: core.ProtectSECDED})
		inter := cell(core.Protection{Kind: core.ProtectSECDED, Interleave: 4})
		once("Extension: protection options (2-bit faults, L1D)", fmt.Sprintf(
			"unprotected:        AVF=%5.1f%%  SDC=%5.1f%%\n"+
				"SECDED:             AVF=%5.1f%%  SDC=%5.1f%%  (adjacent bits still DUE)\n"+
				"SECDED+interleave4: AVF=%5.1f%%  SDC=%5.1f%%  (clusters spread across words)\n",
			100*none.AVF(), 100*none.Fraction(core.EffectSDC),
			100*secded.AVF(), 100*secded.Fraction(core.EffectSDC),
			100*inter.AVF(), 100*inter.Fraction(core.EffectSDC)))
		b.ReportMetric(100*none.AVF(), "avf_none_pct")
		b.ReportMetric(100*secded.AVF(), "avf_secded_pct")
		b.ReportMetric(100*inter.AVF(), "avf_interleaved_pct")
	}
}
