module mbusim

go 1.22
