package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/telemetry"
)

// Options tunes a Coordinator. The zero value means the defaults below.
type Options struct {
	// LeaseTTL is how long a worker may go silent before its cell is
	// reassigned. Workers heartbeat at TTL/3. Default 15s.
	LeaseTTL time.Duration
	// MaxRetries bounds how many times one cell may be handed back to the
	// pending queue (lease expiry or worker-reported failure) before the
	// campaign fails naming that cell. Default 5.
	MaxRetries int
	// Tel, when non-nil, receives the dispatch gauges and counters plus
	// the completed-cells counter.
	Tel *telemetry.Campaign
	// OnCell, when non-nil, observes each newly completed cell.
	// Invocations are serialized (callers may flush shared state without
	// locking) and happen exactly once per cell — a deduplicated
	// resubmission does not re-fire it.
	OnCell func(cell int, res *core.Result)
	// Campaign labels every event this coordinator emits with a campaign id,
	// so a shared event log (campaign service) stays attributable per
	// campaign. Empty on a one-shot coordinator.
	Campaign string

	// sharedFleet marks a coordinator owned by a multi-campaign Service:
	// the service tracks the worker fleet and the fleet-wide gauges itself
	// (several coordinators share one registry, and each setting the gauge
	// to its own private count would fight the others), so this coordinator
	// skips the worker join/leave events, the workers-seen counter and the
	// live-worker/leased-cell gauges.
	sharedFleet bool
}

const (
	defaultLeaseTTL   = 15 * time.Second
	defaultMaxRetries = 5
	// workerLiveWindow, in lease TTLs, is how long a worker counts as live
	// after its last contact.
	workerLiveWindow = 3
)

type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellDone
)

type lease struct {
	id       uint64
	cell     int
	worker   string
	deadline time.Time
}

// Coordinator owns the canonical ResultSet of a distributed campaign and
// hands out leases on its pending cells. All state transitions happen
// under one mutex; the HTTP handlers, the expiry sweep and Wait share it.
type Coordinator struct {
	opts Options

	mu       sync.Mutex
	specs    []core.Spec
	rs       *core.ResultSet
	state    []cellState
	retries  []int
	lastErr  []string // last worker-reported failure per cell
	leases   map[uint64]*lease
	workers  map[string]time.Time // worker -> last contact
	joined   map[string]bool      // worker ids ever seen (join events fire once)
	nextID   uint64
	pending  int // cells not yet done
	failErr  error
	finished sync.Once
	done     chan struct{}

	// fed merges the metric snapshots workers piggyback on heartbeats and
	// submits into the coordinator's registry (per-worker + fleet labels).
	fed *telemetry.Federator

	// now is the coordinator's clock, swappable so tests drive lease
	// expiry deterministically without sleeping.
	now func() time.Time
}

// New builds a coordinator for the grid. rs is the canonical result set —
// pre-load it from a results file to resume: every cell it already Covers
// is marked done and never handed out, exactly like single-process
// -resume. New validates every spec up front.
func New(specs []core.Spec, rs *core.ResultSet, opts Options) (*Coordinator, error) {
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = defaultLeaseTTL
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = defaultMaxRetries
	}
	if rs == nil {
		rs = core.NewResultSet()
	}
	var reg *telemetry.Registry
	if opts.Tel != nil {
		reg = opts.Tel.Registry
	}
	c := &Coordinator{
		opts:    opts,
		specs:   specs,
		rs:      rs,
		state:   make([]cellState, len(specs)),
		retries: make([]int, len(specs)),
		lastErr: make([]string, len(specs)),
		leases:  make(map[uint64]*lease),
		workers: make(map[string]time.Time),
		joined:  make(map[string]bool),
		done:    make(chan struct{}),
		now:     time.Now,
		fed:     telemetry.NewFederator(reg),
	}
	for i, s := range specs {
		if rs.Covers(s) {
			c.state[i] = cellDone
		} else {
			c.pending++
		}
	}
	if c.pending == 0 {
		c.finish(nil)
	}
	return c, nil
}

// Remaining returns how many cells are not yet complete.
func (c *Coordinator) Remaining() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pending
}

// Results returns the coordinator's canonical result set. The caller must
// not mutate it while the campaign runs; the OnCell callback is the
// serialized point to read or persist it.
func (c *Coordinator) Results() *core.ResultSet { return c.rs }

// Done is closed when the campaign completes or fails; Err then reports
// the terminal error (nil on success).
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Err returns the terminal campaign error, if any.
func (c *Coordinator) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failErr
}

// emit appends one event to the campaign event log, when one is attached.
func (c *Coordinator) emit(ev telemetry.Event) { c.opts.Tel.Emit(ev) }

// cellEvent builds an event pre-filled with a cell's identity.
func (c *Coordinator) cellEvent(typ string, cell int) telemetry.Event {
	s := c.specs[cell]
	return telemetry.Event{Type: typ, Cell: cell, Campaign: c.opts.Campaign,
		Comp: s.Component, Workload: s.Workload, Faults: s.Faults}
}

// touchWorkerLocked records contact from a worker, emitting worker_join
// the first time an id is ever seen. Callers hold mu.
func (c *Coordinator) touchWorkerLocked(worker string) {
	c.workers[worker] = c.now()
	if !c.joined[worker] {
		c.joined[worker] = true
		if !c.opts.sharedFleet {
			c.opts.Tel.DispatchWorkerSeen()
			c.emit(telemetry.Event{Type: telemetry.EventWorkerJoin, Worker: worker, Cell: -1})
		}
	}
}

// dropWorkerLocked removes a worker from the live set, emitting
// worker_leave with the reason. Callers hold mu.
func (c *Coordinator) dropWorkerLocked(worker, why string) {
	if _, ok := c.workers[worker]; !ok {
		return
	}
	delete(c.workers, worker)
	c.setWorkersGauge()
	if !c.opts.sharedFleet {
		c.emit(telemetry.Event{Type: telemetry.EventWorkerLeave, Worker: worker, Cell: -1, Detail: why})
	}
}

// setWorkersGauge and setLeasedGauge publish the fleet gauges, unless a
// Service owns the fleet view. Callers hold mu.
func (c *Coordinator) setWorkersGauge() {
	if !c.opts.sharedFleet {
		c.opts.Tel.SetDispatchWorkers(int64(len(c.workers)))
	}
}

func (c *Coordinator) setLeasedGauge() {
	if !c.opts.sharedFleet {
		c.opts.Tel.SetDispatchLeased(int64(len(c.leases)))
	}
}

// finish closes done exactly once. Callers hold mu (or are in New).
func (c *Coordinator) finish(err error) {
	if err != nil && c.failErr == nil {
		c.failErr = err
	}
	c.finished.Do(func() {
		ev := telemetry.Event{Type: telemetry.EventCampaignDone, Cell: -1,
			Campaign: c.opts.Campaign, Cells: len(c.specs) - c.pending}
		if c.failErr != nil {
			ev.Detail = c.failErr.Error()
		}
		c.emit(ev)
		close(c.done)
	})
}

// Wait runs the lease-expiry sweeper until the campaign completes or ctx
// is cancelled, returning the campaign's terminal error (nil on success,
// ctx.Err() on cancellation — the results accepted so far stay valid and a
// restarted coordinator resumes from them).
func (c *Coordinator) Wait(ctx context.Context) error {
	tick := time.NewTicker(c.opts.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-c.done:
			return c.Err()
		case <-tick.C:
			c.Sweep()
		}
	}
}

// Sweep expires every lease whose worker has gone silent past the TTL,
// returning expired cells to the pending queue (burning one retry each),
// and refreshes the live-worker and leased-cell gauges. Wait calls it
// every TTL/4; handlers call it opportunistically so a single-threaded
// test can drive expiry by advancing the clock.
func (c *Coordinator) Sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
}

func (c *Coordinator) sweepLocked() {
	now := c.now()
	for id, l := range c.leases {
		if now.After(l.deadline) {
			delete(c.leases, id)
			c.opts.Tel.DispatchLeaseExpired()
			ev := c.cellEvent(telemetry.EventLeaseExpired, l.cell)
			ev.Worker = l.worker
			ev.Lease = id
			ev.Detail = "worker went silent past TTL"
			c.emit(ev)
			c.requeueLocked(l.cell, fmt.Sprintf("lease %d on worker %s expired", id, l.worker))
		}
	}
	for w, last := range c.workers {
		if now.Sub(last) > workerLiveWindow*c.opts.LeaseTTL {
			c.dropWorkerLocked(w, "silent past live window")
		}
	}
	c.setWorkersGauge()
	c.setLeasedGauge()
}

// Release returns every leased cell to the pending queue WITHOUT charging
// a retry — the campaign-service pause/cancel drain: the work was
// interrupted by policy, not lost to a fault, so the retry budget stays
// intact. The released leases vanish, which the holding workers discover
// as StatusExpired on their next heartbeat and answer by cancelling the
// cell mid-run (the same path as a reassigned lease).
func (c *Coordinator) Release() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, l := range c.leases {
		delete(c.leases, id)
		if c.state[l.cell] == cellLeased {
			c.state[l.cell] = cellPending
		}
	}
	c.setLeasedGauge()
}

// Stats is a point-in-time snapshot of one coordinator's progress for the
// campaign-service status API.
type Stats struct {
	Cells   int    // grid size
	Done    int    // cells complete
	Leased  int    // cells currently out on lease
	Retries int    // retry charges across all cells so far
	Err     string // terminal error, when failed
}

// Stats snapshots the coordinator's progress counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{Cells: len(c.specs), Done: len(c.specs) - c.pending, Leased: len(c.leases)}
	for _, r := range c.retries {
		s.Retries += r
	}
	if c.failErr != nil {
		s.Err = c.failErr.Error()
	}
	return s
}

// requeueLocked puts a leased cell back in the pending queue, charging one
// retry; a cell over budget fails the whole campaign (deterministic specs
// mean the next attempt would fail the same way — better to stop and name
// the cell than to churn forever).
func (c *Coordinator) requeueLocked(cell int, why string) {
	if c.state[cell] != cellLeased {
		return
	}
	c.state[cell] = cellPending
	c.retries[cell]++
	c.opts.Tel.DispatchCellRetried()
	ev := c.cellEvent(telemetry.EventCellRetried, cell)
	ev.Retries = c.retries[cell]
	ev.Detail = why
	c.emit(ev)
	if c.retries[cell] > c.opts.MaxRetries {
		s := c.specs[cell]
		err := fmt.Errorf("dispatch: cell %s/%s/%d-bit exceeded %d retries (last: %s)",
			s.Component, s.Workload, s.Faults, c.opts.MaxRetries, why)
		if c.lastErr[cell] != "" {
			err = fmt.Errorf("%w; last worker error: %s", err, c.lastErr[cell])
		}
		c.finish(err)
	}
}

// Mux returns the coordinator's HTTP handler with the four protocol
// endpoints registered. Callers may add more routes (e.g. the telemetry
// /metrics handler) before serving it.
func (c *Coordinator) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc(PathLease, handle(c.lease))
	mux.HandleFunc(PathHeartbeat, handle(c.heartbeat))
	mux.HandleFunc(PathSubmit, handle(c.submit))
	mux.HandleFunc(PathAbandon, handle(c.abandon))
	mux.HandleFunc(PathEvents, eventsHandler(c.opts.Tel, ""))
	return mux
}

// maxEventWait caps how long one /dispatch/events long-poll may hang; the
// client just re-polls with the same since on an empty body.
const maxEventWait = 30 * time.Second

// eventsHandler serves GET ?since=<seq>[&wait=<dur>]: JSONL of every event
// with Seq > since, long-polling up to wait (default 10s) when none exist
// yet. 404 when no event log is attached. A non-empty campaign filters the
// stream to that campaign's events — the long-poll keeps draining the
// shared log until a matching event arrives or the wait expires, advancing
// the caller's cursor past the non-matching ones either way.
func eventsHandler(tel *telemetry.Campaign, campaign string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		var log *telemetry.EventLog
		if tel != nil {
			log = tel.Events
		}
		if log == nil {
			http.Error(w, "event log disabled", http.StatusNotFound)
			return
		}
		var since uint64
		if s := r.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			since = v
		}
		wait := 10 * time.Second
		if s := r.URL.Query().Get("wait"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil {
				http.Error(w, "bad wait: "+err.Error(), http.StatusBadRequest)
				return
			}
			wait = min(d, maxEventWait)
		}
		deadline := time.Now().Add(wait)
		var out []telemetry.Event
		for {
			evs := log.WaitSince(r.Context(), since, time.Until(deadline))
			for _, ev := range evs {
				since = ev.Seq
				if campaign == "" || ev.Campaign == campaign {
					out = append(out, ev)
				}
			}
			if len(out) > 0 || len(evs) == 0 || !time.Now().Before(deadline) {
				break
			}
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, ev := range out {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
	}
}

// handle adapts a typed request/reply function to an http.HandlerFunc.
func handle[Req, Rep any](f func(*Req) *Rep) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(f(&req))
	}
}

func (c *Coordinator) lease(req *LeaseRequest) *LeaseReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepLocked()
	c.touchWorkerLocked(req.Worker)
	c.setWorkersGauge()
	if c.pending == 0 || c.failErr != nil {
		// The worker is leaving: drop it from the live set so Drain knows
		// when every tail worker has been told the campaign is over.
		c.dropWorkerLocked(req.Worker, "campaign over")
		return &LeaseReply{Status: StatusDone}
	}
	for i, st := range c.state {
		if st != cellPending {
			continue
		}
		c.nextID++
		l := &lease{id: c.nextID, cell: i, worker: req.Worker,
			deadline: c.now().Add(c.opts.LeaseTTL)}
		c.leases[l.id] = l
		c.state[i] = cellLeased
		c.setLeasedGauge()
		ev := c.cellEvent(telemetry.EventCellLeased, i)
		ev.Worker = req.Worker
		ev.Lease = l.id
		if c.retries[i] > 0 {
			ev.Retries = c.retries[i]
		}
		c.emit(ev)
		return &LeaseReply{Status: StatusLease, LeaseID: l.id, Cell: i,
			Spec: c.specs[i], TTL: c.opts.LeaseTTL, Campaign: c.opts.Campaign}
	}
	// Everything pending is leased elsewhere: the campaign tail. Retry at
	// the sweep cadence so a freed cell is picked up promptly.
	return &LeaseReply{Status: StatusWait, RetryAfter: c.opts.LeaseTTL / 4}
}

func (c *Coordinator) heartbeat(req *HeartbeatRequest) *HeartbeatReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(req.Worker)
	if !c.opts.sharedFleet {
		// In service mode one Federator (the Service's) must difference each
		// worker's absolute snapshots; per-coordinator federators would each
		// diff against their own stale view and double-count the fleet.
		c.fed.Merge(req.Worker, req.Metrics)
	}
	l, ok := c.leases[req.LeaseID]
	if !ok || l.worker != req.Worker {
		return &HeartbeatReply{Status: StatusExpired}
	}
	l.deadline = c.now().Add(c.opts.LeaseTTL)
	ev := c.cellEvent(telemetry.EventHeartbeat, l.cell)
	ev.Worker = req.Worker
	ev.Lease = req.LeaseID
	c.emit(ev)
	return &HeartbeatReply{Status: StatusOK}
}

func (c *Coordinator) abandon(req *AbandonRequest) *AbandonReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	l, ok := c.leases[req.LeaseID]
	if !ok || l.worker != req.Worker {
		return &AbandonReply{Status: StatusExpired}
	}
	// A graceful abandon (draining worker) does not burn a retry: the cell
	// goes straight back to pending without blame.
	delete(c.leases, req.LeaseID)
	if c.state[l.cell] == cellLeased {
		c.state[l.cell] = cellPending
	}
	c.setLeasedGauge()
	return &AbandonReply{Status: StatusOK}
}

func (c *Coordinator) submit(req *SubmitRequest) (rep *SubmitReply) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(req.Worker)
	if !c.opts.sharedFleet {
		c.fed.Merge(req.Worker, req.Metrics)
	}
	// Any reply carrying CampaignDone sends the worker away: drop it from
	// the live set so Drain can tell when the fleet has been notified.
	defer func() {
		if rep.CampaignDone {
			c.dropWorkerLocked(req.Worker, "campaign over")
		}
	}()

	// Resolve the cell: through the live lease when it still exists,
	// otherwise through the echoed cell index (the expired-lease case).
	cell := -1
	if l, ok := c.leases[req.LeaseID]; ok && l.worker == req.Worker {
		cell = l.cell
		delete(c.leases, req.LeaseID)
		c.setLeasedGauge()
	} else if req.Cell >= 0 && req.Cell < len(c.specs) {
		cell = req.Cell
	}
	if cell < 0 {
		return &SubmitReply{Status: StatusStale}
	}

	if req.Err != "" {
		// Worker-side cell failure: requeue, charging a retry.
		c.lastErr[cell] = fmt.Sprintf("%s: %s", req.Worker, req.Err)
		if c.state[cell] == cellPending {
			// The lease already expired and the sweep requeued it; don't
			// double-charge.
			return &SubmitReply{Status: StatusOK, CampaignDone: c.overLocked()}
		}
		c.requeueLocked(cell, "worker "+req.Worker+" reported failure")
		return &SubmitReply{Status: StatusOK, CampaignDone: c.overLocked()}
	}

	if req.Result == nil {
		return &SubmitReply{Status: StatusStale, CampaignDone: c.overLocked()}
	}
	if c.state[cell] == cellDone {
		// A slow worker re-delivering a cell that was reassigned and
		// completed elsewhere: idempotent no-op.
		c.opts.Tel.DispatchSubmitDeduped()
		return &SubmitReply{Status: StatusDuplicate, CampaignDone: c.overLocked()}
	}
	// Verify the result actually answers this cell's spec, on the same
	// identity the resume logic uses (core.Spec.Equivalent): every
	// outcome-affecting field must match after normalization, so a worker
	// running a stale grid — same cell key but a different cluster
	// geometry, timeout, spanning mode or protection — is discarded
	// instead of poisoning the result set. A strict struct compare would
	// be wrong here: core.Run fills in zero Cluster/TimeoutFactor defaults
	// before recording the spec in the result.
	if !req.Result.Spec.Equivalent(c.specs[cell]) {
		// A confused or restarted-with-a-different-grid worker. Discard.
		return &SubmitReply{Status: StatusStale}
	}
	// Accept: even with no live lease the work is valid, because the spec
	// (and its seed) fully determines the result. Drop any newer lease
	// another worker holds on the same cell; its eventual submission will
	// dedup.
	for id, l := range c.leases {
		if l.cell == cell {
			delete(c.leases, id)
		}
	}
	c.setLeasedGauge()
	c.rs.Add(req.Result)
	c.state[cell] = cellDone
	c.pending--
	c.opts.Tel.FlushCell(nil, nil) // completed-cells counter
	ev := c.cellEvent(telemetry.EventCellDone, cell)
	ev.Worker = req.Worker
	ev.Lease = req.LeaseID
	ev.Samples = req.Result.Samples()
	ev.Counts = make(map[string]int)
	for _, e := range core.Effects() {
		if n := req.Result.Counts[e]; n > 0 {
			ev.Counts[e.Label()] = n
		}
	}
	c.emit(ev)
	if c.opts.OnCell != nil {
		c.opts.OnCell(cell, req.Result)
	}
	if c.pending == 0 {
		c.finish(nil)
	}
	return &SubmitReply{Status: StatusAccepted, CampaignDone: c.overLocked()}
}

// overLocked reports whether the campaign is over (complete or failed).
// Callers hold mu.
func (c *Coordinator) overLocked() bool {
	return c.pending == 0 || c.failErr != nil
}

// Drain keeps the campaign's endgame orderly: it blocks until every worker
// still in the live set has been told the campaign is over (workers leave
// the set when a lease or final submit is answered with done), or until
// timeout/ctx expires. Serving through this window lets tail workers —
// those waiting out the StatusWait cadence while someone else ran the last
// cell — learn the campaign's fate instead of finding a closed port and
// retrying into their MaxDowntime.
func (c *Coordinator) Drain(ctx context.Context, timeout time.Duration) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		c.mu.Lock()
		n := len(c.workers)
		c.mu.Unlock()
		if n == 0 {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-deadline.C:
			return
		case <-tick.C:
		}
	}
}
