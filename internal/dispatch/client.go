package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client talks the campaign-service API (POST/GET /campaigns and friends)
// with the same patience policy as a worker: transient failures (network,
// 5xx) retry with exponential backoff and jitter, a 429 backs off on the
// server's Retry-After schedule (capped at maxRetryAfter so a bad header
// cannot park the client), and a typed 4xx — invalid spec, unknown
// campaign, bad transition — returns a TerminalError immediately, because
// repeating a rejected request only delays the inevitable.
type Client struct {
	// URL is the service base URL, e.g. "http://10.0.0.1:9321".
	URL string
	// HTTPClient is the transport; nil means a default with a 10s timeout.
	HTTPClient *http.Client
	// Backoff shapes retry delays; zero value = defaults.
	Backoff Backoff
	// MaxWait bounds total retrying per call (backpressure included).
	// Default 2 minutes, same as a worker's downtime budget.
	MaxWait time.Duration
}

func (c *Client) client() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (c *Client) maxWait() time.Duration {
	if c.MaxWait > 0 {
		return c.MaxWait
	}
	return defaultMaxDowntime
}

// SubmitCampaign submits a grid and returns the admitted (or, for a named
// resubmission, the already-live) campaign. Backpressure is invisible to
// the caller beyond latency: 429 replies are absorbed by the retry loop
// until MaxWait runs out.
func (c *Client) SubmitCampaign(ctx context.Context, req *SubmitCampaignRequest) (*CampaignInfo, error) {
	var info CampaignInfo
	if err := c.do(ctx, http.MethodPost, PathCampaigns, req, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Campaigns lists every campaign the service knows, submission-ordered.
func (c *Client) Campaigns(ctx context.Context) ([]CampaignInfo, error) {
	var infos []CampaignInfo
	if err := c.do(ctx, http.MethodGet, PathCampaigns, nil, &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Campaign fetches one campaign's status.
func (c *Client) Campaign(ctx context.Context, id string) (*CampaignInfo, error) {
	var info CampaignInfo
	if err := c.do(ctx, http.MethodGet, PathCampaigns+"/"+id, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Transition posts a pause/resume/cancel action and returns the resulting
// status.
func (c *Client) Transition(ctx context.Context, id, action string) (*CampaignInfo, error) {
	var info CampaignInfo
	if err := c.do(ctx, http.MethodPost, PathCampaigns+"/"+id+"/"+action, nil, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// Results downloads a campaign's durable results file — the canonical
// ResultSet bytes, directly diffable against a local run's results.
func (c *Client) Results(ctx context.Context, id string) ([]byte, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, PathCampaigns+"/"+id+"/results", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// do runs one API call under the retry policy described on Client.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	start := time.Now()
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		var term *TerminalError
		if errors.As(err, &term) {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Since(start) >= c.maxWait() {
			return fmt.Errorf("dispatch: service %s unavailable for %v: %w", c.URL, c.maxWait(), err)
		}
		delay := c.Backoff.Delay(attempt, nil)
		var ra *retryAfterError
		if errors.As(err, &ra) && ra.after > delay {
			delay = min(ra.after, maxRetryAfter)
		}
		if !sleepCtx(ctx, delay) {
			return ctx.Err()
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.URL+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return classifyHTTPError(path, resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
