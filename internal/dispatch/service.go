package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/telemetry"
)

// Service promotes the one-shot Coordinator into a long-running campaign
// service: clients POST campaigns into a durable queue, one shared worker
// fleet is multiplexed round-robin across every running campaign, and the
// whole thing survives SIGKILL — the journal (accepted submissions + state
// transitions) and the per-campaign ResultSet files are replayed on
// restart, rebuilding queued, running and finished campaigns exactly,
// so the final results are byte-identical to an uninterrupted run.
//
// Admission control keeps it honest under load: the queue has a bounded
// depth, each tenant is capped on live campaigns and live cells, and a
// bounced submission gets 429 + Retry-After rather than silent queuing.
// Degradation is graceful rather than binary: campaigns move through
// queued/running/paused/done/failed/cancelled states, pause and cancel
// drain leases back without charging the cells' retry budgets, and a
// campaign that exhausts a cell's budget fails alone — the service and
// the other campaigns keep going.

// Campaign states.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StatePaused    = "paused"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// terminalState reports whether a campaign in this state will never run
// again.
func terminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// ServiceOptions tunes a Service. The zero value means the defaults below.
type ServiceOptions struct {
	// LeaseTTL and MaxRetries are handed to every campaign's coordinator
	// (MaxRetries as the default retry budget when a submission names none).
	LeaseTTL   time.Duration
	MaxRetries int
	// QueueDepth bounds how many campaigns may sit in the queued state;
	// submissions past it bounce with 429 queue_full. Default 64.
	QueueDepth int
	// MaxActive bounds how many campaigns run concurrently over the shared
	// fleet; the rest wait in the queue. Default 4.
	MaxActive int
	// TenantCampaigns caps one tenant's live (queued+running+paused)
	// campaigns. Default 8.
	TenantCampaigns int
	// TenantCells caps one tenant's live cells across its live campaigns.
	// Default 4096.
	TenantCells int
	// Tel receives the service gauges/counters and the shared event log.
	Tel *telemetry.Campaign
}

const (
	defaultQueueDepth      = 64
	defaultMaxActive       = 4
	defaultTenantCampaigns = 8
	defaultTenantCells     = 4096
)

// SubmitCampaignRequest is the body of POST /campaigns.
type SubmitCampaignRequest struct {
	// Tenant identifies the submitter for admission quotas; empty means
	// "default".
	Tenant string `json:"tenant,omitempty"`
	// Name, when set, makes the submission idempotent per tenant: while a
	// live campaign with this name exists, re-submitting returns it instead
	// of queuing a duplicate (the retry-after-a-crash story).
	Name string `json:"name,omitempty"`
	// Retries overrides the per-cell retry budget; 0 means the service
	// default.
	Retries int         `json:"retries,omitempty"`
	Specs   []core.Spec `json:"specs"`
}

// CampaignInfo is the status of one campaign (GET /campaigns, GET
// /campaigns/{id}, and the body of every accepted transition).
type CampaignInfo struct {
	ID          string `json:"id"`
	Tenant      string `json:"tenant"`
	Name        string `json:"name,omitempty"`
	State       string `json:"state"`
	Cells       int    `json:"cells"`
	Done        int    `json:"done"`
	Leased      int    `json:"leased,omitempty"`
	Retries     int    `json:"retries,omitempty"` // retry charges spent so far
	Budget      int    `json:"budget"`            // per-cell retry budget
	Detail      string `json:"detail,omitempty"`  // terminal error, when failed
	SubmittedNS int64  `json:"submitted_ns"`
	FinishedNS  int64  `json:"finished_ns,omitempty"`
}

// svcCampaign is the service's record of one campaign.
type svcCampaign struct {
	id     string
	tenant string
	name   string
	budget int
	specs  []core.Spec
	state  string
	detail string

	submittedNS int64
	finishedNS  int64

	// rs is the campaign's canonical result set, shared with coord once the
	// campaign starts; the coordinator's serialized OnCell is the only
	// writer after that.
	rs    *core.ResultSet
	coord *Coordinator
	// stop wakes the watcher goroutine when the campaign is cancelled (the
	// coordinator never finishes on its own then — its cells just sit
	// pending).
	stop    chan struct{}
	stopped bool

	// flushMu guards flushErr, set by OnCell when persisting the results
	// file fails; the watcher folds it into the campaign's fate.
	flushMu  sync.Mutex
	flushErr error
}

// Service is a durable multi-campaign coordinator. All state transitions
// happen under one mutex; the HTTP handlers, the sweep loop and the
// per-campaign watchers share it.
type Service struct {
	opts ServiceOptions
	dir  string
	tel  *telemetry.Campaign

	mu        sync.Mutex
	journal   *Journal
	campaigns map[string]*svcCampaign
	order     []string // submission order; also the round-robin ring
	rr        int      // round-robin cursor into order
	nextID    int
	workers   map[string]time.Time // worker -> last contact (service-wide)
	joined    map[string]bool

	// fed merges worker metric snapshots exactly once per delivery; the
	// per-campaign coordinators skip their own merge in sharedFleet mode.
	fed *telemetry.Federator

	// now is the service clock, swappable so tests pin timestamps.
	now func() time.Time
}

// NewService opens (creating if needed) the service state directory —
// DIR/journal.jsonl plus DIR/results/<id>.json — replays the journal, and
// resumes every live campaign from its results file. Replay is idempotent:
// running it twice over the same directory rebuilds the same state.
func NewService(dir string, opts ServiceOptions) (*Service, error) {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = defaultLeaseTTL
	}
	if opts.MaxRetries <= 0 {
		opts.MaxRetries = defaultMaxRetries
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = defaultQueueDepth
	}
	if opts.MaxActive <= 0 {
		opts.MaxActive = defaultMaxActive
	}
	if opts.TenantCampaigns <= 0 {
		opts.TenantCampaigns = defaultTenantCampaigns
	}
	if opts.TenantCells <= 0 {
		opts.TenantCells = defaultTenantCells
	}
	if err := os.MkdirAll(filepath.Join(dir, "results"), 0o755); err != nil {
		return nil, err
	}
	journal, recs, err := OpenJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		return nil, err
	}
	var reg *telemetry.Registry
	if opts.Tel != nil {
		reg = opts.Tel.Registry
	}
	s := &Service{
		opts:      opts,
		dir:       dir,
		tel:       opts.Tel,
		journal:   journal,
		campaigns: make(map[string]*svcCampaign),
		workers:   make(map[string]time.Time),
		joined:    make(map[string]bool),
		fed:       telemetry.NewFederator(reg),
		now:       time.Now,
	}
	if err := s.replay(recs); err != nil {
		journal.Close()
		return nil, err
	}
	return s, nil
}

// replay rebuilds the campaign set from journal records, then resumes
// every live campaign from its results file. No events are re-emitted and
// no state counters re-incremented — the event log already recorded the
// first life; only the gauges are brought current.
func (s *Service) replay(recs []JournalRecord) error {
	for _, rec := range recs {
		switch rec.Op {
		case JournalOpSubmit:
			c := &svcCampaign{
				id: rec.ID, tenant: rec.Tenant, name: rec.Name,
				budget: rec.Retries, specs: rec.Specs,
				state: StateQueued, submittedNS: rec.TimeNS,
				rs: core.NewResultSet(), stop: make(chan struct{}),
			}
			if c.budget <= 0 {
				c.budget = s.opts.MaxRetries
			}
			s.campaigns[c.id] = c
			s.order = append(s.order, c.id)
			// IDs are sequential ("c000017"): continue numbering after the
			// highest replayed one.
			if len(rec.ID) > 1 {
				if n, err := strconv.Atoi(rec.ID[1:]); err == nil && n >= s.nextID {
					s.nextID = n + 1
				}
			}
		case JournalOpState:
			c, ok := s.campaigns[rec.ID]
			if !ok {
				return fmt.Errorf("dispatch: journal: state %q for unknown campaign %s", rec.State, rec.ID)
			}
			c.state, c.detail = rec.State, rec.Detail
			if terminalState(rec.State) {
				c.finishedNS = rec.TimeNS
			}
		default:
			return fmt.Errorf("dispatch: journal: unknown op %q", rec.Op)
		}
	}
	// Resume: load every live campaign's results file (completed cells
	// survive the crash there, not in the journal) and rebuild the
	// coordinators of campaigns that were running or paused. A campaign
	// whose results already cover the grid finishes instantly through the
	// normal watcher path and is journaled done — the crash landed between
	// the last cell and the transition record.
	for _, id := range s.order {
		c := s.campaigns[id]
		if terminalState(c.state) {
			continue
		}
		rs, err := core.LoadResultSet(s.resultsPath(c.id))
		if err == nil {
			c.rs = rs
		} else if !os.IsNotExist(err) {
			return err
		}
		if c.state == StateRunning || c.state == StatePaused {
			if err := s.buildCoordinatorLocked(c); err != nil {
				return err
			}
		}
	}
	s.scheduleLocked()
	s.refreshGaugesLocked()
	return nil
}

func (s *Service) resultsPath(id string) string {
	return filepath.Join(s.dir, "results", id+".json")
}

// buildCoordinatorLocked attaches a fresh coordinator (and its watcher) to
// a campaign, resuming from whatever c.rs already covers.
func (s *Service) buildCoordinatorLocked(c *svcCampaign) error {
	rs, path := c.rs, s.resultsPath(c.id)
	campaign := c
	coord, err := New(c.specs, rs, Options{
		LeaseTTL:    s.opts.LeaseTTL,
		MaxRetries:  c.budget,
		Tel:         s.tel,
		Campaign:    c.id,
		sharedFleet: true,
		// OnCell invocations are serialized by the coordinator, so the
		// flush below never races itself; it must not touch s.mu (it runs
		// under the coordinator's lock, inside handlers that hold s.mu).
		OnCell: func(cell int, res *core.Result) {
			if err := rs.Save(path); err != nil {
				campaign.flushMu.Lock()
				if campaign.flushErr == nil {
					campaign.flushErr = err
				}
				campaign.flushMu.Unlock()
			}
			s.tel.CampaignCellDone(campaign.id, campaign.tenant)
		},
	})
	if err != nil {
		return err
	}
	c.coord = coord
	go s.watch(c, coord)
	return nil
}

// watch waits for one campaign's coordinator to finish and records its
// fate. Cancellation closes c.stop instead — the coordinator never
// finishes then, its cells just stay pending.
func (s *Service) watch(c *svcCampaign, coord *Coordinator) {
	select {
	case <-coord.Done():
	case <-c.stop:
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if terminalState(c.state) {
		return
	}
	err := coord.Err()
	c.flushMu.Lock()
	if err == nil && c.flushErr != nil {
		err = fmt.Errorf("campaign complete but results not durable: %w", c.flushErr)
	}
	c.flushMu.Unlock()
	if err != nil {
		s.transitionLocked(c, StateFailed, err.Error())
	} else {
		s.transitionLocked(c, StateDone, "")
	}
	s.scheduleLocked()
	s.refreshGaugesLocked()
}

// transitionLocked journals and applies one state transition. The journal
// append is best-effort here: an unwritable journal must not wedge a
// finished campaign, and replay self-heals (a campaign replayed as running
// whose results cover the grid immediately re-finishes and re-journals).
// Admission — where durability is the contract — writes the journal first
// and refuses on failure; see handleSubmitCampaign.
func (s *Service) transitionLocked(c *svcCampaign, state, detail string) {
	_ = s.journal.Append(JournalRecord{
		Op: JournalOpState, ID: c.id, TimeNS: s.now().UnixNano(),
		State: state, Detail: detail,
	})
	c.state, c.detail = state, detail
	if terminalState(state) {
		c.finishedNS = s.now().UnixNano()
		if !c.stopped {
			c.stopped = true
			close(c.stop)
		}
	}
	s.tel.CampaignEntered(state)
	s.tel.Emit(telemetry.Event{Type: telemetry.EventCampaignState,
		Campaign: c.id, Tenant: c.tenant, Cell: -1, Detail: state})
}

// scheduleLocked promotes queued campaigns to running, oldest first, while
// there is an active slot free.
func (s *Service) scheduleLocked() {
	active := 0
	for _, id := range s.order {
		if s.campaigns[id].state == StateRunning {
			active++
		}
	}
	for _, id := range s.order {
		if active >= s.opts.MaxActive {
			return
		}
		c := s.campaigns[id]
		if c.state != StateQueued {
			continue
		}
		if c.coord == nil {
			if err := s.buildCoordinatorLocked(c); err != nil {
				s.transitionLocked(c, StateFailed, err.Error())
				continue
			}
		}
		s.transitionLocked(c, StateRunning, "")
		active++
	}
}

// refreshGaugesLocked republishes the service-level gauges: queue depth,
// live campaigns, live workers and leased cells across all coordinators.
func (s *Service) refreshGaugesLocked() {
	var queued, live, leased int64
	for _, c := range s.campaigns {
		switch c.state {
		case StateQueued:
			queued++
			live++
		case StateRunning, StatePaused:
			live++
			if c.coord != nil {
				leased += int64(c.coord.Stats().Leased)
			}
		}
	}
	s.tel.SetQueueDepth(queued)
	s.tel.SetCampaignsLive(live)
	s.tel.SetDispatchWorkers(int64(len(s.workers)))
	s.tel.SetDispatchLeased(leased)
}

// touchWorkerLocked records contact from a worker, emitting worker_join
// once per id — the service owns the fleet view its coordinators suppress.
func (s *Service) touchWorkerLocked(worker string) {
	if worker == "" {
		return
	}
	s.workers[worker] = s.now()
	if !s.joined[worker] {
		s.joined[worker] = true
		s.tel.DispatchWorkerSeen()
		s.tel.Emit(telemetry.Event{Type: telemetry.EventWorkerJoin, Worker: worker, Cell: -1})
	}
}

// Sweep expires stale leases in every running campaign and drops workers
// silent past the live window. Run calls it every LeaseTTL/4.
func (s *Service) Sweep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	for _, c := range s.campaigns {
		if c.state == StateRunning && c.coord != nil {
			c.coord.Sweep()
		}
	}
	for w, last := range s.workers {
		if now.Sub(last) > workerLiveWindow*s.opts.LeaseTTL {
			delete(s.workers, w)
			s.tel.Emit(telemetry.Event{Type: telemetry.EventWorkerLeave,
				Worker: w, Cell: -1, Detail: "silent past live window"})
		}
	}
	s.refreshGaugesLocked()
}

// Run drives the sweep loop until ctx is cancelled. Campaign completion is
// event-driven (per-campaign watchers); Run only has to expire leases and
// keep the gauges fresh.
func (s *Service) Run(ctx context.Context) error {
	tick := time.NewTicker(s.opts.LeaseTTL / 4)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
			s.Sweep()
		}
	}
}

// Close closes the journal. In-flight handlers racing Close may lose their
// journal append — the same torn-tail story a crash leaves, which replay
// already tolerates.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal.Close()
}

// infoLocked snapshots one campaign for the status API.
func (s *Service) infoLocked(c *svcCampaign) CampaignInfo {
	info := CampaignInfo{
		ID: c.id, Tenant: c.tenant, Name: c.name, State: c.state,
		Cells: len(c.specs), Budget: c.budget, Detail: c.detail,
		SubmittedNS: c.submittedNS, FinishedNS: c.finishedNS,
	}
	if c.coord != nil {
		st := c.coord.Stats()
		info.Done, info.Leased, info.Retries = st.Done, st.Leased, st.Retries
	} else if c.state == StateDone {
		// A replayed finished campaign has no coordinator (its results stay
		// on disk); its grid is by definition fully covered.
		info.Done = len(c.specs)
	}
	return info
}

// Mux returns the service's HTTP handler: the campaign API under
// /campaigns plus the worker-facing dispatch protocol, multiplexed across
// campaigns by the Campaign field workers echo from their lease.
func (s *Service) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc(PathLease, handle(s.lease))
	mux.HandleFunc(PathHeartbeat, routed(s, func(c *svcCampaign, req *HeartbeatRequest) *HeartbeatReply {
		if c.coord == nil || terminalState(c.state) {
			// The lease is gone with its campaign; the worker cancels the
			// cell and asks for another lease. Not an error — campaigns
			// ending under live workers is the service's normal rhythm.
			return &HeartbeatReply{Status: StatusExpired}
		}
		return c.coord.heartbeat(req)
	}))
	mux.HandleFunc(PathSubmit, routed(s, func(c *svcCampaign, req *SubmitRequest) *SubmitReply {
		if c.coord == nil || terminalState(c.state) {
			// Work for a finished campaign: discard. CampaignDone stays
			// false — in service mode the fleet persists across campaigns
			// and only a signal sends a worker home.
			return &SubmitReply{Status: StatusStale}
		}
		rep := c.coord.submit(req)
		rep.CampaignDone = false
		return rep
	}))
	mux.HandleFunc(PathAbandon, routed(s, func(c *svcCampaign, req *AbandonRequest) *AbandonReply {
		if c.coord == nil || terminalState(c.state) {
			return &AbandonReply{Status: StatusExpired}
		}
		return c.coord.abandon(req)
	}))
	mux.HandleFunc(PathEvents, eventsHandler(s.tel, ""))
	mux.HandleFunc("POST "+PathCampaigns, s.handleSubmitCampaign)
	mux.HandleFunc("GET "+PathCampaigns, s.handleList)
	mux.HandleFunc("GET "+PathCampaigns+"/{id}", s.handleStatus)
	mux.HandleFunc("GET "+PathCampaigns+"/{id}/results", s.handleResults)
	mux.HandleFunc("GET "+PathCampaigns+"/{id}/events", s.handleEvents)
	mux.HandleFunc("POST "+PathCampaigns+"/{id}/{action}", s.handleAction)
	return mux
}

// writeAPIError sends a typed JSON error body. retryAfter > 0 adds the
// Retry-After header (whole seconds, rounded up) a 429 promises.
func writeAPIError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int(retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(APIError{Code: code, Error: msg})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// validName reports whether a tenant or campaign name is safe to embed in
// metric labels and file paths.
func validName(s string) bool {
	if len(s) > 64 {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.', r == ':':
		default:
			return false
		}
	}
	return true
}

// handleSubmitCampaign is POST /campaigns: validate, admit, journal,
// queue. The journal append happens before the 201 — acknowledgement IS
// the durability promise — and a failed append refuses the submission.
func (s *Service) handleSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	var req SubmitCampaignRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest, err.Error(), 0)
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if !validName(req.Tenant) || !validName(req.Name) {
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest,
			"tenant and name must be [A-Za-z0-9._:-], at most 64 chars", 0)
		return
	}
	if req.Retries < 0 {
		writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest, "retries must be >= 0", 0)
		return
	}
	if len(req.Specs) == 0 {
		writeAPIError(w, http.StatusBadRequest, ErrCodeInvalidSpec, "no cells in submission", 0)
		return
	}
	seen := make(map[core.CellKey]bool, len(req.Specs))
	for i, spec := range req.Specs {
		if err := spec.Validate(); err != nil {
			writeAPIError(w, http.StatusBadRequest, ErrCodeInvalidSpec,
				fmt.Sprintf("spec %d: %v", i, err), 0)
			return
		}
		if k := spec.Key(); seen[k] {
			writeAPIError(w, http.StatusBadRequest, ErrCodeInvalidSpec,
				fmt.Sprintf("spec %d: duplicate cell %s/%s/%d-bit", i, k.Component, k.Workload, k.Faults), 0)
			return
		} else {
			seen[k] = true
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	// Idempotent named resubmission: the client that crashed between its
	// POST and our 201 retries the same name and gets the live campaign
	// back instead of a duplicate.
	if req.Name != "" {
		for _, id := range s.order {
			c := s.campaigns[id]
			if c.tenant == req.Tenant && c.name == req.Name && !terminalState(c.state) {
				writeJSON(w, http.StatusOK, s.infoLocked(c))
				return
			}
		}
	}

	// Admission control. Retry-After tracks the lease TTL: by then at
	// least one sweep has run and some campaign has likely made progress.
	var queued, tenantLive, tenantCells int
	for _, c := range s.campaigns {
		if terminalState(c.state) {
			continue
		}
		if c.state == StateQueued {
			queued++
		}
		if c.tenant == req.Tenant {
			tenantLive++
			tenantCells += len(c.specs)
		}
	}
	retryAfter := s.opts.LeaseTTL
	switch {
	case queued >= s.opts.QueueDepth:
		s.tel.AdmissionRejected(req.Tenant, ErrCodeQueueFull)
		writeAPIError(w, http.StatusTooManyRequests, ErrCodeQueueFull,
			fmt.Sprintf("campaign queue full (%d queued)", queued), retryAfter)
		return
	case tenantLive >= s.opts.TenantCampaigns:
		s.tel.AdmissionRejected(req.Tenant, ErrCodeTenantCampaigns)
		writeAPIError(w, http.StatusTooManyRequests, ErrCodeTenantCampaigns,
			fmt.Sprintf("tenant %s at its live-campaign limit (%d)", req.Tenant, tenantLive), retryAfter)
		return
	case tenantCells+len(req.Specs) > s.opts.TenantCells:
		s.tel.AdmissionRejected(req.Tenant, ErrCodeTenantCells)
		writeAPIError(w, http.StatusTooManyRequests, ErrCodeTenantCells,
			fmt.Sprintf("tenant %s would exceed its live-cell limit (%d live + %d submitted > %d)",
				req.Tenant, tenantCells, len(req.Specs), s.opts.TenantCells), retryAfter)
		return
	}

	budget := req.Retries
	if budget <= 0 {
		budget = s.opts.MaxRetries
	}
	id := fmt.Sprintf("c%06d", s.nextID)
	now := s.now().UnixNano()
	// Durability before acknowledgement: the journal line is what replay
	// rebuilds the campaign from.
	if err := s.journal.Append(JournalRecord{
		Op: JournalOpSubmit, ID: id, TimeNS: now,
		Tenant: req.Tenant, Name: req.Name, Retries: budget, Specs: req.Specs,
	}); err != nil {
		writeAPIError(w, http.StatusInternalServerError, "journal_error", err.Error(), 0)
		return
	}
	s.nextID++
	c := &svcCampaign{
		id: id, tenant: req.Tenant, name: req.Name, budget: budget,
		specs: req.Specs, state: StateQueued, submittedNS: now,
		rs: core.NewResultSet(), stop: make(chan struct{}),
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.tel.CampaignEntered(StateQueued)
	s.tel.Emit(telemetry.Event{Type: telemetry.EventCampaignQueued,
		Campaign: id, Tenant: c.tenant, Cell: -1, Cells: len(c.specs)})
	s.scheduleLocked()
	s.refreshGaugesLocked()
	writeJSON(w, http.StatusCreated, s.infoLocked(c))
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	infos := make([]CampaignInfo, 0, len(s.order))
	for _, id := range s.order {
		infos = append(infos, s.infoLocked(s.campaigns[id]))
	}
	s.mu.Unlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	writeJSON(w, http.StatusOK, infos)
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	c, ok := s.campaigns[r.PathValue("id")]
	if !ok {
		s.mu.Unlock()
		writeAPIError(w, http.StatusNotFound, ErrCodeUnknownCampaign, "no such campaign", 0)
		return
	}
	info := s.infoLocked(c)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, info)
}

// handleResults serves the campaign's durable results file — the exact
// bytes a crash-restarted service would resume from, so "download results,
// kill the service, diff after restart" is a byte-identity check.
func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		writeAPIError(w, http.StatusNotFound, ErrCodeUnknownCampaign, "no such campaign", 0)
		return
	}
	data, err := os.ReadFile(s.resultsPath(id))
	if os.IsNotExist(err) {
		writeAPIError(w, http.StatusNotFound, "no_results", "no cells completed yet", 0)
		return
	} else if err != nil {
		writeAPIError(w, http.StatusInternalServerError, "results_error", err.Error(), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	_, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		writeAPIError(w, http.StatusNotFound, ErrCodeUnknownCampaign, "no such campaign", 0)
		return
	}
	eventsHandler(s.tel, id)(w, r)
}

// handleAction is POST /campaigns/{id}/{pause|resume|cancel}.
func (s *Service) handleAction(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[r.PathValue("id")]
	if !ok {
		writeAPIError(w, http.StatusNotFound, ErrCodeUnknownCampaign, "no such campaign", 0)
		return
	}
	action := r.PathValue("action")
	bad := func() {
		writeAPIError(w, http.StatusConflict, ErrCodeBadTransition,
			fmt.Sprintf("cannot %s a %s campaign", action, c.state), 0)
	}
	switch action {
	case "pause":
		if c.state != StateQueued && c.state != StateRunning {
			bad()
			return
		}
		s.transitionLocked(c, StatePaused, "")
		if c.coord != nil {
			// Drain: leases come straight back to pending with no retry
			// charge; workers find out via StatusExpired heartbeats.
			c.coord.Release()
		}
		s.scheduleLocked()
	case "resume":
		if c.state != StatePaused {
			bad()
			return
		}
		// A campaign paused before it ever ran goes back to the queue; one
		// paused mid-run keeps its coordinator and rejoins the rotation
		// (subject to the active-slot limit, which counts running only —
		// resume re-runs the scheduler rather than jumping the line).
		s.transitionLocked(c, StateQueued, "")
		s.scheduleLocked()
	case "cancel":
		if terminalState(c.state) {
			bad()
			return
		}
		s.transitionLocked(c, StateCancelled, "")
		if c.coord != nil {
			c.coord.Release()
		}
		s.scheduleLocked()
	default:
		writeAPIError(w, http.StatusNotFound, ErrCodeBadRequest,
			"unknown action (want pause, resume or cancel)", 0)
		return
	}
	s.refreshGaugesLocked()
	writeJSON(w, http.StatusOK, s.infoLocked(c))
}

// lease multiplexes the shared fleet: running campaigns are offered the
// worker round-robin, so N campaigns make progress together instead of
// starving in submission order. A coordinator replying done (its campaign
// just finished, watcher not yet run) or wait (tail: all pending cells
// leased) is skipped; only when no campaign has work does the worker get
// StatusWait — never StatusDone, because the service outlives any one
// campaign and the fleet should stay.
func (s *Service) lease(req *LeaseRequest) *LeaseReply {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touchWorkerLocked(req.Worker)
	n := len(s.order)
	for k := 0; k < n; k++ {
		c := s.campaigns[s.order[(s.rr+k)%n]]
		if c.state != StateRunning || c.coord == nil {
			continue
		}
		rep := c.coord.lease(req)
		if rep.Status == StatusLease {
			s.rr = (s.rr + k + 1) % n
			s.refreshGaugesLocked()
			return rep
		}
	}
	s.refreshGaugesLocked()
	return &LeaseReply{Status: StatusWait, RetryAfter: s.opts.LeaseTTL / 4}
}

// routed adapts a campaign-scoped protocol handler: it decodes the
// request, records worker contact, federates the piggybacked metrics, and
// resolves the campaign the request names. A request naming no campaign or
// one this journal has never heard of gets a typed 404 — terminal for the
// worker, which is the point: it is talking to the wrong service (or a
// service whose state directory was wiped), and retrying cannot fix that.
// A campaign that merely ENDED is not 404 — it stays in the map forever,
// and the per-endpoint handler answers with the protocol's "that lease is
// gone" status so the worker moves on to the next campaign.
func routed[Req, Rep any](s *Service, f func(*svcCampaign, *Req) *Rep) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Req
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeAPIError(w, http.StatusBadRequest, ErrCodeBadRequest, err.Error(), 0)
			return
		}
		worker, campaign, metrics := requestMeta(&req)
		s.mu.Lock()
		s.touchWorkerLocked(worker)
		s.fed.Merge(worker, metrics)
		c, ok := s.campaigns[campaign]
		if !ok {
			s.mu.Unlock()
			writeAPIError(w, http.StatusNotFound, ErrCodeUnknownCampaign,
				fmt.Sprintf("campaign %q is not known to this service", campaign), 0)
			return
		}
		rep := f(c, &req)
		s.refreshGaugesLocked()
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, rep)
	}
}

// requestMeta pulls the routing fields every worker-facing request carries.
func requestMeta(req any) (worker, campaign string, metrics []telemetry.WireMetric) {
	switch q := req.(type) {
	case *HeartbeatRequest:
		return q.Worker, q.Campaign, q.Metrics
	case *SubmitRequest:
		return q.Worker, q.Campaign, q.Metrics
	case *AbandonRequest:
		return q.Worker, q.Campaign, nil
	}
	return "", "", nil
}

// Snapshot summarizes the service for /healthz: campaign counts by state,
// queue depth and the live worker count.
func (s *Service) Snapshot() map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	states := make(map[string]int)
	queued := 0
	for _, c := range s.campaigns {
		states[c.state]++
		if c.state == StateQueued {
			queued++
		}
	}
	return map[string]any{
		"campaigns":   len(s.campaigns),
		"by_state":    states,
		"queue_depth": queued,
		"workers":     len(s.workers),
	}
}
