package dispatch

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/telemetry"
)

// eventTel returns a campaign with an in-memory event log attached, the way
// a coordinator runs.
func eventTel() *telemetry.Campaign {
	tel := telemetry.NewCampaign(nil)
	tel.Events = telemetry.NewEventLog(nil, 0)
	return tel
}

// eventTypes flattens a slice of events to their type strings.
func eventTypes(evs []telemetry.Event) []string {
	out := make([]string, len(evs))
	for i, ev := range evs {
		out[i] = ev.Type
	}
	return out
}

func TestCoordinatorEmitsLifecycleEvents(t *testing.T) {
	specs := protoGrid(1)
	tel := eventTel()
	c, err := New(specs, nil, Options{LeaseTTL: time.Second, Tel: tel})
	if err != nil {
		t.Fatal(err)
	}
	advance := clockFor(c)

	// Victim leases the cell, heartbeats once, then goes silent past TTL.
	rep := c.lease(&LeaseRequest{Worker: "victim"})
	if rep.Status != StatusLease {
		t.Fatalf("lease = %+v", rep)
	}
	c.heartbeat(&HeartbeatRequest{Worker: "victim", LeaseID: rep.LeaseID})
	// Past the lease TTL and the 3-TTL live window: one sweep expires the
	// lease AND prunes the silent worker.
	advance(4 * time.Second)
	c.Sweep()

	// Survivor takes over and completes it.
	rep2 := c.lease(&LeaseRequest{Worker: "survivor"})
	if rep2.Status != StatusLease || rep2.Cell != rep.Cell {
		t.Fatalf("release = %+v", rep2)
	}
	if got := c.submit(&SubmitRequest{Worker: "survivor", LeaseID: rep2.LeaseID,
		Cell: rep2.Cell, Result: fakeResult(specs[0])}); got.Status != StatusAccepted {
		t.Fatalf("submit = %+v", got)
	}

	evs := tel.Events.Since(0)
	want := []string{
		telemetry.EventWorkerJoin,   // victim
		telemetry.EventCellLeased,   // victim takes cell 0
		telemetry.EventHeartbeat,    // victim's one beat
		telemetry.EventLeaseExpired, // sweep kills the silent lease
		telemetry.EventCellRetried,  // cell back to pending
		telemetry.EventWorkerLeave,  // victim pruned from the live set
		telemetry.EventWorkerJoin,   // survivor
		telemetry.EventCellLeased,   // survivor takes cell 0
		telemetry.EventCellDone,     // survivor's submit accepted
		telemetry.EventCampaignDone, // last cell: campaign over
		telemetry.EventWorkerLeave,  // survivor told to go home
	}
	got := eventTypes(evs)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("event sequence:\n got %v\nwant %v", got, want)
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq = %d: %+v", i, ev.Seq, ev)
		}
	}

	// Cell-scoped events carry the spec identity; the retry carries blame.
	if lease := evs[1]; lease.Worker != "victim" || lease.Comp != specs[0].Component ||
		lease.Workload != specs[0].Workload || lease.Faults != specs[0].Faults {
		t.Fatalf("cell_leased = %+v", lease)
	}
	if exp := evs[3]; exp.Worker != "victim" || exp.Cell != rep.Cell || exp.Lease != rep.LeaseID {
		t.Fatalf("lease_expired = %+v", exp)
	}
	if retry := evs[4]; retry.Retries != 1 {
		t.Fatalf("cell_retried = %+v", retry)
	}
	if done := evs[8]; done.Worker != "survivor" || done.Samples != specs[0].Samples ||
		done.Counts["masked"] != specs[0].Samples {
		t.Fatalf("cell_done = %+v", done)
	}
	if fin := evs[9]; fin.Cells != 1 || fin.Detail != "" {
		t.Fatalf("campaign_done = %+v", fin)
	}
	if n := counter(tel, telemetry.MetricWorkersSeen); n != 2 {
		t.Fatalf("%s = %d, want 2", telemetry.MetricWorkersSeen, n)
	}
}

func TestHeartbeatAndSubmitFederateMetrics(t *testing.T) {
	specs := protoGrid(1)
	tel := telemetry.NewCampaign(nil)
	c, err := New(specs, nil, Options{Tel: tel})
	if err != nil {
		t.Fatal(err)
	}
	rep := c.lease(&LeaseRequest{Worker: "w1"})

	c.heartbeat(&HeartbeatRequest{Worker: "w1", LeaseID: rep.LeaseID,
		Metrics: []telemetry.WireMetric{
			{Name: `gefin_samples_total{outcome="masked"}`, Kind: telemetry.KindCounter, Value: 2},
		}})
	c.submit(&SubmitRequest{Worker: "w1", LeaseID: rep.LeaseID, Cell: rep.Cell,
		Result: fakeResult(specs[0]),
		Metrics: []telemetry.WireMetric{
			{Name: `gefin_samples_total{outcome="masked"}`, Kind: telemetry.KindCounter, Value: 4},
		}})

	if got := counter(tel, `gefin_samples_total{outcome="masked",worker="w1"}`); got != 4 {
		t.Fatalf(`per-worker series = %d, want 4`, got)
	}
	if got := counter(tel, `gefin_samples_total{outcome="masked",worker="fleet"}`); got != 4 {
		t.Fatalf(`fleet series = %d, want 4`, got)
	}
	// The federated samples surface in the coordinator's summary exactly once.
	if s := tel.Summarize(); s.Samples != 4 || s.ByOutcome["masked"] != 4 {
		t.Fatalf("federated summary = %+v", s)
	}
}

func TestEventsEndpointStreamsJSONL(t *testing.T) {
	specs := protoGrid(2)
	tel := eventTel()
	c, err := New(specs, nil, Options{Tel: tel})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Mux())
	defer srv.Close()

	rep := c.lease(&LeaseRequest{Worker: "w1"})
	if rep.Status != StatusLease {
		t.Fatalf("lease = %+v", rep)
	}

	fetch := func(query string) []telemetry.Event {
		t.Helper()
		resp, err := http.Get(srv.URL + PathEvents + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", query, resp.StatusCode)
		}
		var evs []telemetry.Event
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			var ev telemetry.Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
			}
			evs = append(evs, ev)
		}
		return evs
	}

	evs := fetch("?since=0&wait=1s")
	if len(evs) != 2 || evs[0].Type != telemetry.EventWorkerJoin || evs[1].Type != telemetry.EventCellLeased {
		t.Fatalf("streamed events = %v", eventTypes(evs))
	}

	// The cursor resumes mid-stream.
	if evs := fetch("?since=1&wait=1s"); len(evs) != 1 || evs[0].Seq != 2 {
		t.Fatalf("since=1 events = %+v", evs)
	}

	// A long-poll parked on the tail wakes when the next event lands.
	type res struct{ evs []telemetry.Event }
	ch := make(chan res, 1)
	go func() { ch <- res{fetch("?since=2&wait=10s")} }()
	time.Sleep(50 * time.Millisecond)
	c.submit(&SubmitRequest{Worker: "w1", LeaseID: rep.LeaseID, Cell: rep.Cell,
		Result: fakeResult(specs[rep.Cell])})
	select {
	case r := <-ch:
		if len(r.evs) == 0 || r.evs[0].Type != telemetry.EventCellDone {
			t.Fatalf("long-poll woke with %v", eventTypes(r.evs))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke")
	}

	// Bad cursor is a 400, POST a 405.
	if resp, _ := http.Get(srv.URL + PathEvents + "?since=banana"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: status %d", resp.StatusCode)
	}
	if resp, _ := http.Post(srv.URL+PathEvents, "application/json", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST events: status %d", resp.StatusCode)
	}
}

func TestEventsEndpointWithoutLogIs404(t *testing.T) {
	c, err := New(protoGrid(1), nil, Options{Tel: telemetry.NewCampaign(nil)})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Mux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + PathEvents)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestWorkerFederatesThroughRealRun is the federation acceptance path: a
// real worker runs a real cell, and one scrape of the coordinator's registry
// shows the worker's sample counters under its id and the fleet label.
func TestWorkerFederatesThroughRealRun(t *testing.T) {
	specs := []core.Spec{
		{Workload: "stringSearch", Component: core.CompL1D, Faults: 1, Samples: 4, Seed: 3},
	}
	tel := eventTel()
	coord, err := New(specs, nil, Options{Tel: tel})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Mux())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	w := &Worker{ID: "wrk", URL: srv.URL, Tel: telemetry.NewCampaign(nil)}
	if err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	<-coord.Done()

	var workerSeries, fleetSeries int64
	for _, m := range tel.Registry.Snapshot() {
		if !strings.HasPrefix(m.Name, telemetry.MetricSamples+"{") {
			continue
		}
		switch {
		case strings.Contains(m.Name, `worker="wrk"`):
			workerSeries += int64(m.Value)
		case strings.Contains(m.Name, `worker="fleet"`):
			fleetSeries += int64(m.Value)
		}
	}
	if workerSeries != int64(specs[0].Samples) || fleetSeries != int64(specs[0].Samples) {
		t.Fatalf("federated samples: worker=%d fleet=%d, want %d each",
			workerSeries, fleetSeries, specs[0].Samples)
	}
	// The summary folds the fleet view once: 4 samples, not 8.
	if s := tel.Summarize(); s.Samples != int64(specs[0].Samples) {
		t.Fatalf("summary samples = %d, want %d", s.Samples, specs[0].Samples)
	}
}
