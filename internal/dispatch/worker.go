package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/telemetry"
)

// Worker leases cells from a coordinator and runs them through the normal
// core.Run path (checkpoints, telemetry, forensics all apply). It streams
// heartbeats while a cell runs, reconnects with exponential backoff and
// jitter when the coordinator is unreachable, and on cancellation drains
// gracefully: the in-flight cell is abandoned back to the coordinator.
type Worker struct {
	// ID is the worker's stable identity (e.g. host:pid); the coordinator
	// keys heartbeats and the live-worker gauge on it.
	ID string
	// URL is the coordinator base URL, e.g. "http://10.0.0.1:9321".
	URL string
	// Client is the HTTP client; nil means a default with a 10s timeout.
	Client *http.Client
	// Tel, when non-nil, records the worker's sample/cell metrics exactly
	// as a local campaign would.
	Tel *telemetry.Campaign
	// OnCell, when non-nil, observes each cell this worker completed and
	// submitted (progress display).
	OnCell func(cell int, spec core.Spec, res *core.Result)
	// Artifacts, when non-nil, brings each leased cell's workload up from a
	// cached or coordinator-served checkpoint artifact before the cell
	// runs, instead of re-deriving the golden reference locally. Failures
	// inside it fall back to local derivation; nil skips the artifact path
	// entirely.
	Artifacts *ArtifactCache
	// Backoff shapes reconnection delays; zero value = defaults.
	Backoff Backoff
	// MaxDowntime is how long the coordinator may stay unreachable before
	// the worker gives up with an error. Default 2 minutes.
	MaxDowntime time.Duration

	// delta watches Tel's registry so each heartbeat and submit piggybacks
	// only the series that changed since the last send. Run initializes it;
	// a nil tracker (Tel disabled) sends nothing.
	delta *telemetry.DeltaTracker
}

const defaultMaxDowntime = 2 * time.Minute

// errCampaignDone flows from runCell to Run when a submit reply reported
// the campaign over, turning into Run's normal nil return.
var errCampaignDone = fmt.Errorf("dispatch: campaign done")

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (w *Worker) maxDowntime() time.Duration {
	if w.MaxDowntime > 0 {
		return w.MaxDowntime
	}
	return defaultMaxDowntime
}

// Run leases and executes cells until the coordinator reports the campaign
// done (returns nil), ctx is cancelled (returns ctx.Err() after abandoning
// any held lease), or the coordinator stays unreachable past MaxDowntime.
func (w *Worker) Run(ctx context.Context) error {
	if w.Tel != nil && w.delta == nil {
		w.delta = telemetry.NewDeltaTracker(w.Tel.Registry)
	}
	for {
		var rep LeaseReply
		if err := w.post(ctx, PathLease, &LeaseRequest{Worker: w.ID}, &rep); err != nil {
			return err
		}
		switch rep.Status {
		case StatusDone:
			return nil
		case StatusWait:
			pause := rep.RetryAfter
			if pause <= 0 {
				pause = 500 * time.Millisecond
			}
			if !sleepCtx(ctx, pause) {
				return ctx.Err()
			}
		case StatusLease:
			switch err := w.runCell(ctx, &rep); err {
			case nil:
			case errCampaignDone:
				return nil
			default:
				return err
			}
		default:
			return fmt.Errorf("dispatch: unexpected lease status %q", rep.Status)
		}
	}
}

// runCell executes one leased cell under a heartbeat, then submits the
// result (or the failure). Losing the lease mid-run cancels the cell: the
// coordinator has already reassigned it and dedup-on-submit makes any
// completed work safe to deliver anyway.
func (w *Worker) runCell(ctx context.Context, l *LeaseReply) error {
	cellCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var lost atomic.Bool
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := l.TTL / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-cellCtx.Done():
				return
			case <-t.C:
				var rep HeartbeatReply
				// One attempt per beat, no backoff: a missed beat is
				// absorbed by the lease TTL (3 beats per TTL), and a dead
				// coordinator is discovered by the next lease/submit.
				err := w.postOnce(cellCtx, PathHeartbeat,
					&HeartbeatRequest{Worker: w.ID, LeaseID: l.LeaseID,
						Campaign: l.Campaign, Metrics: w.delta.Delta()}, &rep)
				if err == nil && rep.Status == StatusExpired {
					lost.Store(true)
					cancel()
					return
				}
			}
		}
	}()

	if w.Artifacts != nil {
		// Best-effort: a failed Ensure leaves the workload to derive its
		// golden state locally inside the run below.
		_ = w.Artifacts.Ensure(l.Spec.Workload)
	}

	var res *core.Result
	runErr := core.RunGridWithTelemetry(cellCtx, []core.Spec{l.Spec}, 0,
		func(_ int, r *core.Result) { res = r }, w.Tel)
	cancel()
	<-hbDone

	switch {
	case ctx.Err() != nil:
		// Draining (SIGINT/SIGTERM): hand the unfinished cell straight
		// back so the coordinator reassigns it without waiting for the
		// TTL or burning a retry. Best-effort on a fresh short context —
		// if it fails, lease expiry covers it.
		actx, acancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer acancel()
		var rep AbandonReply
		_ = w.postOnce(actx, PathAbandon,
			&AbandonRequest{Worker: w.ID, LeaseID: l.LeaseID, Campaign: l.Campaign}, &rep)
		return ctx.Err()
	case res != nil:
		// Completed — submit even if the lease was lost along the way:
		// the result is deterministic for the spec, so the coordinator
		// accepts it if the cell is still open and dedups it if not.
		var rep SubmitReply
		if err := w.post(ctx, PathSubmit, &SubmitRequest{Worker: w.ID,
			LeaseID: l.LeaseID, Campaign: l.Campaign, Cell: l.Cell, Result: res,
			Metrics: w.delta.Delta()}, &rep); err != nil {
			return err
		}
		if w.OnCell != nil {
			w.OnCell(l.Cell, l.Spec, res)
		}
		if rep.CampaignDone {
			// This was the campaign's last cell: exit now rather than race
			// the coordinator's shutdown with another lease request.
			return errCampaignDone
		}
		return nil
	case lost.Load():
		// Lease expired under us and the run was cancelled incomplete:
		// drop it and lease something else.
		return nil
	case runErr != nil:
		// The cell itself failed (panicking sample, simulator error).
		// Report it — the coordinator charges the cell's retry budget —
		// and keep working; if the campaign dies of it, the next lease
		// request returns done and Run exits.
		var rep SubmitReply
		if err := w.post(ctx, PathSubmit, &SubmitRequest{Worker: w.ID,
			LeaseID: l.LeaseID, Campaign: l.Campaign, Cell: l.Cell, Err: runErr.Error(),
			Metrics: w.delta.Delta()}, &rep); err != nil {
			return err
		}
		if rep.CampaignDone {
			return errCampaignDone
		}
		return nil
	}
	// RunGrid returned no error and no result: impossible for a one-spec
	// grid, but fail loudly rather than spin.
	return fmt.Errorf("dispatch: cell %d produced neither result nor error", l.Cell)
}

// retryAfterError is a 429 from the server: not an outage, but an explicit
// "come back later" with the server's suggested pause.
type retryAfterError struct {
	path  string
	after time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("dispatch: %s: HTTP 429, retry after %v", e.path, e.after)
}

// maxRetryAfter caps how long a server-suggested Retry-After is honored —
// a misconfigured or adversarial header must not park the client forever.
const maxRetryAfter = 30 * time.Second

// post sends one request, retrying with backoff while the coordinator is
// unreachable, until MaxDowntime elapses or ctx is cancelled. A typed 4xx
// rejection (TerminalError) returns immediately: the server is healthy and
// said no — burning the downtime budget repeating the same doomed request
// would only delay the inevitable. A 429 is retried on the server's
// Retry-After schedule (capped exponential backoff underneath).
func (w *Worker) post(ctx context.Context, path string, req, rep any) error {
	start := time.Now()
	var lastErr error
	for attempt := 0; ; attempt++ {
		lastErr = w.postOnce(ctx, path, req, rep)
		if lastErr == nil {
			return nil
		}
		var term *TerminalError
		if errors.As(lastErr, &term) {
			return lastErr
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Since(start) >= w.maxDowntime() {
			return fmt.Errorf("dispatch: coordinator %s unreachable for %v: %w",
				w.URL, w.maxDowntime(), lastErr)
		}
		delay := w.Backoff.Delay(attempt, nil)
		var ra *retryAfterError
		if errors.As(lastErr, &ra) && ra.after > delay {
			delay = min(ra.after, maxRetryAfter)
		}
		if !sleepCtx(ctx, delay) {
			return ctx.Err()
		}
	}
}

// postOnce sends one JSON POST and decodes the JSON reply, no retries.
// Non-200 statuses are classified: 429 → retryAfterError (back off and
// retry), other 4xx → TerminalError (the request is permanently rejected),
// 5xx and transport failures → plain errors (transient, retry).
func (w *Worker) postOnce(ctx context.Context, path string, req, rep any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.URL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return classifyHTTPError(path, resp)
	}
	return json.NewDecoder(resp.Body).Decode(rep)
}

// classifyHTTPError turns a non-200 reply into the right error flavor for
// the retry loop, consuming (a bounded prefix of) the body for the reason.
func classifyHTTPError(path string, resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	if resp.StatusCode == http.StatusTooManyRequests {
		after := 2 * time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
		}
		return &retryAfterError{path: path, after: after}
	}
	if resp.StatusCode >= 400 && resp.StatusCode < 500 {
		term := &TerminalError{Path: path, Status: resp.StatusCode,
			Msg: strings.TrimSpace(string(raw))}
		var ae APIError
		if json.Unmarshal(raw, &ae) == nil && ae.Code != "" {
			term.Code, term.Msg = ae.Code, ae.Error
		}
		if term.Msg == "" {
			term.Msg = http.StatusText(resp.StatusCode)
		}
		return term
	}
	return fmt.Errorf("dispatch: %s: HTTP %d", path, resp.StatusCode)
}

// sleepCtx pauses for d, returning false if ctx was cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
