package dispatch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"mbusim/internal/core"
)

// The campaign journal is the service's crash-safe source of truth for
// WHAT was asked of it: every accepted submission and every campaign state
// transition is one JSONL record, written with a single Write call and
// fsynced before the client hears "accepted" — the same durability
// discipline as ResultSet.Save (results) and the event log (telemetry).
// Cell-level progress deliberately does NOT live here: the per-campaign
// ResultSet files already record it atomically, so a restarted service
// replays the journal to rebuild the campaign set and then loads each live
// campaign's results file to mark covered cells done, byte-identically to
// the pre-crash state.
//
// A crash can only ever tear the FINAL line (one Write per record). Open
// truncates a torn tail and carries on — the record was never acknowledged,
// so the client's retry re-submits it idempotently. Mid-stream corruption
// is a damaged journal, not an interrupted one, and fails the open.

// Journal ops.
const (
	JournalOpSubmit = "submit" // a campaign admitted into the queue
	JournalOpState  = "state"  // a campaign state transition
)

// JournalRecord is one line of the campaign journal.
type JournalRecord struct {
	Op     string `json:"op"`
	ID     string `json:"id"`
	TimeNS int64  `json:"t_ns"`

	// Submit fields.
	Tenant  string      `json:"tenant,omitempty"`
	Name    string      `json:"name,omitempty"`
	Retries int         `json:"retries,omitempty"` // per-campaign retry budget, 0 = service default
	Specs   []core.Spec `json:"specs,omitempty"`

	// State fields.
	State  string `json:"state,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// jfsync is the journal's file-sync call, indirected so tests can observe
// that appends really sync before they are acknowledged.
var jfsync = func(f *os.File) error { return f.Sync() }

// Journal appends campaign records durably to one file.
type Journal struct {
	f *os.File
}

// OpenJournal opens (creating if absent) the journal at path, returning
// the intact records for replay. A torn final line — the signature of a
// crash mid-append — is truncated away; the interrupted record was never
// acknowledged, so dropping it is correct, and the submitter's retry will
// be accepted as a fresh campaign. A malformed line with more data after
// it is corruption and fails the open.
func OpenJournal(path string) (*Journal, []JournalRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, err
	}
	recs, err := ReadJournal(bytes.NewReader(data))
	if err != nil {
		return nil, nil, fmt.Errorf("dispatch: journal %s: %w", path, err)
	}
	// Keep only whole lines: everything past the last newline is the torn
	// tail of an interrupted append.
	if cut := bytes.LastIndexByte(data, '\n') + 1; cut < len(data) {
		if err := os.Truncate(path, int64(cut)); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	return &Journal{f: f}, recs, nil
}

// Append writes one record as a single line and fsyncs it. Only after
// Append returns may the service acknowledge the action the record
// describes — that ordering is the whole crash-recovery guarantee.
func (j *Journal) Append(rec JournalRecord) error {
	line, err := json.Marshal(&rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return jfsync(j.f)
}

// Close closes the journal file.
func (j *Journal) Close() error { return j.f.Close() }

// ReadJournal parses a JSONL journal stream. Blank lines are skipped; a
// malformed FINAL line is tolerated (torn tail) and simply dropped, while
// a malformed line followed by more data fails with its line number.
func ReadJournal(r io.Reader) ([]JournalRecord, error) {
	var recs []JournalRecord
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	line := 0
	var pendingErr error
	for len(data) > 0 {
		line++
		var raw []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			raw, data = data[:i], data[i+1:]
		} else {
			raw, data = data, nil
		}
		raw = bytes.TrimSpace(raw)
		if len(raw) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, pendingErr
		}
		var rec JournalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			pendingErr = fmt.Errorf("journal line %d: %w", line, err)
			continue
		}
		recs = append(recs, rec)
	}
	return recs, nil
}
