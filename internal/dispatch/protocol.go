// Package dispatch shards a campaign grid across processes and machines:
// a coordinator owns the canonical core.ResultSet and hands out leases on
// pending cells; workers lease a cell, run it through the normal core.Run
// path, stream heartbeats and submit the result. Worker death is a normal
// event — a lease whose worker stops heartbeating expires and the cell is
// reassigned, with a bounded per-cell retry budget, and result acceptance
// is idempotent so a slow worker re-delivering a completed cell is a
// no-op. Seeded determinism makes the distributed grid byte-identical
// (canonical ResultSet encoding) to a single-process run of the same spec,
// and resumable/mergeable with one via the same Covers/Pending logic.
//
// The protocol is four JSON-over-HTTP POST endpoints, stdlib only.
package dispatch

import (
	"fmt"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/telemetry"
)

// Endpoint paths served by Coordinator.Mux.
const (
	PathLease     = "/dispatch/lease"
	PathHeartbeat = "/dispatch/heartbeat"
	PathSubmit    = "/dispatch/submit"
	PathAbandon   = "/dispatch/abandon"

	// PathArtifact is the checkpoint-artifact endpoint (ArtifactServer):
	// GET PathArtifact + key returns the encoded artifact with that content
	// address, 404 if the coordinator's build would not produce it. It is
	// the one non-JSON, non-POST route — artifacts are binary and the key
	// already says exactly what the bytes must hash to.
	PathArtifact = "/dispatch/artifact/"

	// PathEvents streams the campaign event log: GET PathEvents?since=<seq>
	// long-polls for events with a higher sequence number and returns them
	// as JSONL (one telemetry.Event per line), an empty body on timeout.
	// `gefin -watch` renders it as a live dashboard; any JSONL consumer can
	// tail it.
	PathEvents = "/dispatch/events"

	// PathCampaigns is the campaign-service API root (see Service): POST
	// submits a campaign, GET lists them, and PathCampaigns + "/{id}"
	// answers status, "/{id}/pause|resume|cancel" transitions, and
	// "/{id}/events" streams that campaign's slice of the event log.
	PathCampaigns = "/campaigns"
)

// Reply statuses.
const (
	// StatusLease: the LeaseReply carries a cell to run.
	StatusLease = "lease"
	// StatusWait: every pending cell is leased elsewhere; retry after
	// RetryAfter.
	StatusWait = "wait"
	// StatusDone: the campaign is over (complete or failed); the worker
	// should exit.
	StatusDone = "done"
	// StatusOK: heartbeat extended / abandon recorded.
	StatusOK = "ok"
	// StatusExpired: the lease is no longer held by this worker (it
	// expired and may have been reassigned); the worker should stop its
	// cell — though a late submit is still safe, just possibly wasted.
	StatusExpired = "expired"
	// StatusAccepted: the submitted result completed its cell.
	StatusAccepted = "accepted"
	// StatusDuplicate: the cell was already complete; the submission was
	// dropped as a no-op.
	StatusDuplicate = "duplicate"
	// StatusStale: the submission matched no live lease and its spec did
	// not match the cell it named; it was discarded.
	StatusStale = "stale"
)

// LeaseRequest asks the coordinator for one pending cell.
type LeaseRequest struct {
	Worker string // stable worker identity, e.g. host:pid
}

// LeaseReply answers a lease request.
type LeaseReply struct {
	Status  string
	LeaseID uint64    // with StatusLease
	Cell    int       // coordinator's cell index, echoed back on submit
	Spec    core.Spec // the cell to run, verbatim
	// Campaign is the campaign-service campaign id the lease belongs to;
	// workers echo it verbatim on heartbeat/submit/abandon so the service
	// routes them to the right campaign. Empty on a one-shot coordinator.
	Campaign string `json:",omitempty"`
	// TTL is the lease lifetime: a worker silent (no heartbeat, no
	// submit) for TTL loses the cell. Workers heartbeat at TTL/3.
	TTL time.Duration
	// RetryAfter, with StatusWait, is how long to pause before asking
	// again.
	RetryAfter time.Duration
}

// HeartbeatRequest renews a lease. Metrics piggybacks the worker's
// registry snapshot delta — the series that changed since its last send,
// as absolute values — which the coordinator federates into its own
// /metrics under per-worker and fleet labels (see telemetry.Federator).
type HeartbeatRequest struct {
	Worker   string
	LeaseID  uint64
	Campaign string                 `json:",omitempty"` // echoed from the LeaseReply
	Metrics  []telemetry.WireMetric `json:",omitempty"`
}

// HeartbeatReply is StatusOK or StatusExpired.
type HeartbeatReply struct {
	Status string
}

// SubmitRequest delivers a completed cell — or, with Err set, reports that
// the cell failed on the worker (a panicking sample, a simulator error),
// which counts against the cell's retry budget.
type SubmitRequest struct {
	Worker   string
	LeaseID  uint64
	Campaign string       `json:",omitempty"` // echoed from the LeaseReply
	Cell     int          // cell index from the LeaseReply
	Result   *core.Result // nil when Err is set
	Err      string       // worker-side cell failure, counts as a retry
	// Metrics carries the final registry delta for the cell, so the fleet
	// view is complete even for a worker that never heartbeats again.
	Metrics []telemetry.WireMetric `json:",omitempty"`
}

// SubmitReply is StatusAccepted, StatusDuplicate, StatusStale or (for a
// reported failure) StatusOK.
type SubmitReply struct {
	Status string
	// CampaignDone piggybacks the campaign's fate on the submit reply: when
	// true the worker exits without another lease round-trip. Without it a
	// worker submitting the final cell races the coordinator's shutdown and
	// burns MaxDowntime discovering a closed port.
	CampaignDone bool
}

// AbandonRequest releases a lease without burning a retry: a draining
// worker (SIGINT/SIGTERM) hands its unfinished cell straight back.
type AbandonRequest struct {
	Worker   string
	LeaseID  uint64
	Campaign string `json:",omitempty"` // echoed from the LeaseReply
}

// AbandonReply is StatusOK or StatusExpired.
type AbandonReply struct {
	Status string
}

// APIError is the JSON body of every non-200 reply from the campaign
// service (and the typed 4xx replies of the dispatch endpoints): a stable
// machine-readable code plus a human-readable message. Workers and the
// submit client turn 4xx replies carrying one into a TerminalError instead
// of retrying into their downtime budget.
type APIError struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// APIError codes.
const (
	ErrCodeUnknownCampaign  = "unknown_campaign"
	ErrCodeCampaignOver     = "campaign_over"
	ErrCodeBadRequest       = "bad_request"
	ErrCodeQueueFull        = "queue_full"
	ErrCodeTenantCampaigns  = "tenant_campaigns"
	ErrCodeTenantCells      = "tenant_cells"
	ErrCodeInvalidSpec      = "invalid_spec"
	ErrCodeBadTransition    = "bad_transition"
	ErrCodeMethodNotAllowed = "method_not_allowed"
)

// TerminalError is a permanent rejection from the coordinator or campaign
// service — a 4xx with a reason, not a transient outage. Retrying cannot
// help (the request itself is wrong: unknown campaign, mismatched spec,
// malformed submission), so workers and clients fail fast with exit code 2
// instead of burning their MaxDowntime budget against a healthy server.
type TerminalError struct {
	Path   string // endpoint that rejected the request
	Status int    // HTTP status
	Code   string // APIError code, when the body carried one
	Msg    string // human-readable reason
}

func (e *TerminalError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("dispatch: %s rejected (%s): %s", e.Path, e.Code, e.Msg)
	}
	return fmt.Sprintf("dispatch: %s rejected (HTTP %d): %s", e.Path, e.Status, e.Msg)
}
