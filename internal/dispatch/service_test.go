package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/telemetry"
)

// svcGrid returns n distinct cells that validate but need no simulation.
func svcGrid(n int) []core.Spec {
	comps := core.Components()
	specs := make([]core.Spec, n)
	for i := range specs {
		specs[i] = core.Spec{
			Workload: "stringSearch", Component: comps[i%len(comps)],
			Faults: 1 + (i/len(comps))%3, Samples: 4, Seed: 7,
		}
	}
	return specs
}

func fastBackoff() Backoff {
	return Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond}
}

// newTestService builds a Service over a fresh telemetry campaign with an
// in-memory event log, serving on an httptest server.
func newTestService(t *testing.T, dir string, opts ServiceOptions) (*Service, *telemetry.Campaign, *httptest.Server) {
	t.Helper()
	tel := telemetry.NewCampaign(nil)
	tel.Events = telemetry.NewEventLog(nil, 0)
	opts.Tel = tel
	svc, err := NewService(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Mux())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { svc.Close() })
	return svc, tel, srv
}

// postJSON posts a JSON body and decodes the JSON reply, returning the
// HTTP status — admission tests need the raw status and headers, which the
// retrying Client deliberately hides.
func postJSON(t *testing.T, url string, req, rep any) (int, http.Header) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if rep != nil {
		if err := json.NewDecoder(resp.Body).Decode(rep); err != nil {
			t.Fatalf("decoding reply: %v", err)
		}
	}
	return resp.StatusCode, resp.Header
}

func submitRaw(t *testing.T, base string, req *SubmitCampaignRequest) (int, http.Header, CampaignInfo, APIError) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+PathCampaigns, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info CampaignInfo
	var apiErr APIError
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		json.NewDecoder(resp.Body).Decode(&info)
	} else {
		json.NewDecoder(resp.Body).Decode(&apiErr)
	}
	return resp.StatusCode, resp.Header, info, apiErr
}

// waitState polls one campaign until it reaches state (or the deadline).
func waitState(t *testing.T, cl *Client, id, state string) CampaignInfo {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	for {
		info, err := cl.Campaign(ctx, id)
		if err != nil {
			t.Fatalf("polling %s: %v", id, err)
		}
		if info.State == state {
			return *info
		}
		if terminalState(info.State) {
			t.Fatalf("campaign %s reached %s (%s) while waiting for %s",
				id, info.State, info.Detail, state)
		}
		select {
		case <-ctx.Done():
			t.Fatalf("campaign %s stuck in %s waiting for %s", id, info.State, state)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestServiceCrashRestartByteIdentity is the tentpole acceptance test: a
// campaign runs partway, the service is killed abruptly (no transitions,
// no drain — the in-memory state just vanishes), a new service replays the
// journal and results files from the same directory, a fresh worker
// finishes the campaign, and the final results are byte-identical to an
// uninterrupted single-process run. A third replay on the finished
// directory is also exercised: replay is idempotent and changes nothing.
func TestServiceCrashRestartByteIdentity(t *testing.T) {
	specs := e2eGrid()
	ref := core.NewResultSet()
	if err := core.RunGrid(context.Background(), specs, 1,
		func(_ int, r *core.Result) { ref.Add(r) }); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Encode()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	// Life one: accept the campaign, complete exactly one cell, die.
	svc1, _, srv1 := newTestService(t, dir, ServiceOptions{LeaseTTL: time.Minute})
	cl1 := &Client{URL: srv1.URL, Backoff: fastBackoff()}
	info, err := cl1.SubmitCampaign(ctx, &SubmitCampaignRequest{
		Tenant: "acme", Name: "nightly", Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateRunning {
		t.Fatalf("submitted campaign state = %s, want running", info.State)
	}

	wctx, wcancel := context.WithCancel(ctx)
	var once sync.Once
	firstCell := make(chan struct{})
	w1 := &Worker{ID: "w1", URL: srv1.URL, Backoff: fastBackoff(),
		OnCell: func(int, core.Spec, *core.Result) { once.Do(func() { close(firstCell) }) }}
	w1Done := make(chan error, 1)
	go func() { w1Done <- w1.Run(wctx) }()
	select {
	case <-firstCell:
	case <-ctx.Done():
		t.Fatal("worker never completed a cell")
	}
	wcancel()
	<-w1Done
	srv1.Close()
	svc1.Close() // release the journal fd; nothing graceful was recorded

	// Life two: replay. The campaign must come back running with the
	// completed cell already covered, and a new worker finishes it.
	svc2, tel2, srv2 := newTestService(t, dir, ServiceOptions{LeaseTTL: time.Minute})
	cl2 := &Client{URL: srv2.URL, Backoff: fastBackoff()}
	replayed, err := cl2.Campaign(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.State != StateRunning {
		t.Fatalf("replayed campaign state = %s, want running", replayed.State)
	}
	if replayed.Done < 1 {
		t.Fatalf("replay lost the completed cell: done = %d", replayed.Done)
	}
	if replayed.Tenant != "acme" || replayed.Name != "nightly" {
		t.Fatalf("replay lost identity: %+v", replayed)
	}

	w2ctx, w2cancel := context.WithCancel(ctx)
	defer w2cancel()
	w2 := &Worker{ID: "w2", URL: srv2.URL, Backoff: fastBackoff()}
	go w2.Run(w2ctx)
	waitState(t, cl2, info.ID, StateDone)
	w2cancel()

	got := readFile(t, filepath.Join(dir, "results", info.ID+".json"))
	if !bytes.Equal(got, want) {
		t.Fatalf("crash-restarted campaign results differ from single-process run:\n got: %s\nwant: %s", got, want)
	}
	served, err := cl2.Results(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want) {
		t.Fatal("GET /campaigns/{id}/results differs from the durable file")
	}
	if n := counter(tel2, telemetry.MetricCampaigns+`{state="done"}`); n != 1 {
		t.Fatalf("campaigns_total{state=done} = %d, want 1", n)
	}
	srv2.Close()
	svc2.Close()

	// Life three: double replay of a finished directory is a no-op.
	svc3, _, srv3 := newTestService(t, dir, ServiceOptions{LeaseTTL: time.Minute})
	defer svc3.Close()
	cl3 := &Client{URL: srv3.URL, Backoff: fastBackoff()}
	final, err := cl3.Campaign(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("third replay state = %s, want done", final.State)
	}
	if again := readFile(t, filepath.Join(dir, "results", info.ID+".json")); !bytes.Equal(again, want) {
		t.Fatal("replaying a finished directory changed the results bytes")
	}
}

// TestServiceTwoTenantsSharedFleet is the multiplexing acceptance test:
// two campaigns from different tenants run concurrently over one shared
// two-worker fleet, both complete byte-identically to local runs, and an
// admission rejection along the way is observable in the metrics.
func TestServiceTwoTenantsSharedFleet(t *testing.T) {
	gridA := []core.Spec{
		{Workload: "stringSearch", Component: core.CompL1D, Faults: 1, Samples: 4, Seed: 3},
		{Workload: "stringSearch", Component: core.CompRF, Faults: 2, Samples: 4, Seed: 3},
	}
	gridB := []core.Spec{
		{Workload: "stringSearch", Component: core.CompDTLB, Faults: 2, Samples: 4, Seed: 3},
		{Workload: "stringSearch", Component: core.CompL1I, Faults: 1, Samples: 4, Seed: 3},
	}
	wantFor := func(grid []core.Spec) []byte {
		rs := core.NewResultSet()
		if err := core.RunGrid(context.Background(), grid, 1,
			func(_ int, r *core.Result) { rs.Add(r) }); err != nil {
			t.Fatal(err)
		}
		data, err := rs.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	wantA, wantB := wantFor(gridA), wantFor(gridB)

	dir := t.TempDir()
	_, tel, srv := newTestService(t, dir, ServiceOptions{
		LeaseTTL: time.Minute, TenantCampaigns: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	cl := &Client{URL: srv.URL, Backoff: fastBackoff()}

	infoA, err := cl.SubmitCampaign(ctx, &SubmitCampaignRequest{Tenant: "alpha", Specs: gridA})
	if err != nil {
		t.Fatal(err)
	}
	infoB, err := cl.SubmitCampaign(ctx, &SubmitCampaignRequest{Tenant: "beta", Specs: gridB})
	if err != nil {
		t.Fatal(err)
	}

	// Tenant alpha is at its live-campaign quota: the next submission
	// bounces with 429 + Retry-After, visible in the admission counters.
	code, hdr, _, apiErr := submitRaw(t, srv.URL, &SubmitCampaignRequest{Tenant: "alpha", Specs: gridB})
	if code != http.StatusTooManyRequests || apiErr.Code != ErrCodeTenantCampaigns {
		t.Fatalf("over-quota submit = %d %+v, want 429 tenant_campaigns", code, apiErr)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if n := counter(tel, telemetry.MetricAdmissionRejects+`{tenant="alpha",reason="tenant_campaigns"}`); n != 1 {
		t.Fatalf("admission reject counter = %d, want 1", n)
	}

	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	for _, id := range []string{"w1", "w2"} {
		w := &Worker{ID: id, URL: srv.URL, Backoff: fastBackoff()}
		go w.Run(wctx)
	}
	waitState(t, cl, infoA.ID, StateDone)
	waitState(t, cl, infoB.ID, StateDone)
	wcancel()

	gotA := readFile(t, filepath.Join(dir, "results", infoA.ID+".json"))
	gotB := readFile(t, filepath.Join(dir, "results", infoB.ID+".json"))
	if !bytes.Equal(gotA, wantA) {
		t.Fatal("tenant alpha's results differ from a local run of its grid")
	}
	if !bytes.Equal(gotB, wantB) {
		t.Fatal("tenant beta's results differ from a local run of its grid")
	}
	if n := counter(tel, telemetry.MetricCampaigns+`{state="done"}`); n != 2 {
		t.Fatalf("campaigns_total{state=done} = %d, want 2", n)
	}
	// The shared event log attributes cell completions per campaign.
	seen := map[string]bool{}
	for _, ev := range tel.Events.Since(0) {
		if ev.Type == telemetry.EventCellDone {
			seen[ev.Campaign] = true
		}
	}
	if !seen[infoA.ID] || !seen[infoB.ID] {
		t.Fatalf("cell_done events missing campaign labels: %v", seen)
	}
}

// TestServiceAdmissionQueueAndCells covers the other two admission axes:
// bounded queue depth and the per-tenant live-cell cap.
func TestServiceAdmissionQueueAndCells(t *testing.T) {
	_, tel, srv := newTestService(t, t.TempDir(), ServiceOptions{
		LeaseTTL: time.Minute, MaxActive: 1, QueueDepth: 1, TenantCells: 8})

	// First campaign runs; the tenant's live cells now count against its cap,
	// so a follow-up submission that would push it past 8 bounces even with
	// room in the queue.
	if code, _, _, apiErr := submitRaw(t, srv.URL, &SubmitCampaignRequest{
		Tenant: "t0", Specs: svcGrid(1)}); code != http.StatusCreated {
		t.Fatalf("first submit = %d (%+v), want 201", code, apiErr)
	}
	code, _, _, apiErr := submitRaw(t, srv.URL, &SubmitCampaignRequest{
		Tenant: "t0", Specs: svcGrid(9)})
	if code != http.StatusTooManyRequests || apiErr.Code != ErrCodeTenantCells {
		t.Fatalf("oversized submit = %d %+v, want 429 tenant_cells", code, apiErr)
	}

	// One campaign fits the queue; the next finds it full.
	if code, _, _, apiErr := submitRaw(t, srv.URL, &SubmitCampaignRequest{
		Tenant: "t1", Specs: svcGrid(1)}); code != http.StatusCreated {
		t.Fatalf("queued submit = %d (%+v), want 201", code, apiErr)
	}
	code, _, _, apiErr = submitRaw(t, srv.URL, &SubmitCampaignRequest{
		Tenant: "t2", Specs: svcGrid(1)})
	if code != http.StatusTooManyRequests || apiErr.Code != ErrCodeQueueFull {
		t.Fatalf("over-queue submit = %d %+v, want 429 queue_full", code, apiErr)
	}
	if n := counter(tel, telemetry.MetricAdmissionRejects+`{tenant="t2",reason="queue_full"}`); n != 1 {
		t.Fatalf("queue_full reject counter = %d, want 1", n)
	}
	if n := counter(tel, telemetry.MetricAdmissionRejects+`{tenant="t0",reason="tenant_cells"}`); n != 1 {
		t.Fatalf("tenant_cells reject counter = %d, want 1", n)
	}
	if got := tel.Registry.Gauge(telemetry.MetricQueueDepth).Value(); got != 1 {
		t.Fatalf("queue depth gauge = %d, want 1", got)
	}
}

// TestServiceValidationRejects: malformed submissions get typed 400s, not
// queue slots.
func TestServiceValidationRejects(t *testing.T) {
	_, _, srv := newTestService(t, t.TempDir(), ServiceOptions{})
	cases := []struct {
		name string
		req  SubmitCampaignRequest
		code string
	}{
		{"no cells", SubmitCampaignRequest{}, ErrCodeInvalidSpec},
		{"bad spec", SubmitCampaignRequest{Specs: []core.Spec{{Workload: "nope", Component: "L1D", Faults: 1, Samples: 1}}}, ErrCodeInvalidSpec},
		{"duplicate cells", SubmitCampaignRequest{Specs: append(svcGrid(1), svcGrid(1)...)}, ErrCodeInvalidSpec},
		{"bad tenant", SubmitCampaignRequest{Tenant: `evil"t`, Specs: svcGrid(1)}, ErrCodeBadRequest},
		{"negative retries", SubmitCampaignRequest{Retries: -1, Specs: svcGrid(1)}, ErrCodeBadRequest},
	}
	for _, tc := range cases {
		code, _, _, apiErr := submitRaw(t, srv.URL, &tc.req)
		if code != http.StatusBadRequest || apiErr.Code != tc.code {
			t.Errorf("%s: got %d %+v, want 400 %s", tc.name, code, apiErr, tc.code)
		}
	}
}

// TestServiceNamedResubmitIdempotent: a named submission retried while the
// campaign is live returns the same campaign instead of queuing another.
func TestServiceNamedResubmitIdempotent(t *testing.T) {
	_, _, srv := newTestService(t, t.TempDir(), ServiceOptions{})
	first, _, info1, _ := submitRaw(t, srv.URL, &SubmitCampaignRequest{
		Tenant: "acme", Name: "nightly", Specs: svcGrid(1)})
	second, _, info2, _ := submitRaw(t, srv.URL, &SubmitCampaignRequest{
		Tenant: "acme", Name: "nightly", Specs: svcGrid(1)})
	if first != http.StatusCreated || second != http.StatusOK {
		t.Fatalf("statuses = %d, %d; want 201 then 200", first, second)
	}
	if info1.ID != info2.ID {
		t.Fatalf("named resubmit created a duplicate: %s vs %s", info1.ID, info2.ID)
	}
	// A different tenant's identical name is a different campaign.
	_, _, info3, _ := submitRaw(t, srv.URL, &SubmitCampaignRequest{
		Tenant: "other", Name: "nightly", Specs: svcGrid(1)})
	if info3.ID == info1.ID {
		t.Fatal("tenant namespaces leaked: same campaign for different tenants")
	}
}

// TestServicePauseResumeCancelDrain drives the lifecycle by hand with raw
// protocol calls: pause releases the lease without charging a retry, the
// holder discovers it on heartbeat, resume re-queues, and cancel is
// terminal for lease, submit and transition alike.
func TestServicePauseResumeCancelDrain(t *testing.T) {
	svc, _, srv := newTestService(t, t.TempDir(), ServiceOptions{LeaseTTL: time.Minute})
	_, _, info, _ := submitRaw(t, srv.URL, &SubmitCampaignRequest{Specs: svcGrid(1)})
	id := info.ID

	var lease LeaseReply
	postJSON(t, srv.URL+PathLease, &LeaseRequest{Worker: "w1"}, &lease)
	if lease.Status != StatusLease || lease.Campaign != id {
		t.Fatalf("lease = %+v, want a lease on %s", lease, id)
	}

	var paused CampaignInfo
	if code, _ := postJSON(t, srv.URL+PathCampaigns+"/"+id+"/pause", struct{}{}, &paused); code != http.StatusOK {
		t.Fatalf("pause returned %d", code)
	}
	if paused.State != StatePaused || paused.Leased != 0 {
		t.Fatalf("paused info = %+v, want paused with 0 leases", paused)
	}
	if paused.Retries != 0 {
		t.Fatalf("pause charged %d retries, want 0", paused.Retries)
	}
	var hb HeartbeatReply
	postJSON(t, srv.URL+PathHeartbeat, &HeartbeatRequest{Worker: "w1", LeaseID: lease.LeaseID, Campaign: id}, &hb)
	if hb.Status != StatusExpired {
		t.Fatalf("heartbeat on a paused campaign = %s, want expired", hb.Status)
	}
	var wait LeaseReply
	postJSON(t, srv.URL+PathLease, &LeaseRequest{Worker: "w1"}, &wait)
	if wait.Status != StatusWait {
		t.Fatalf("lease with everything paused = %s, want wait (the fleet stays)", wait.Status)
	}

	// Pausing a paused campaign is a 409, not a silent no-op.
	var apiErr APIError
	if code, _ := postJSON(t, srv.URL+PathCampaigns+"/"+id+"/pause", struct{}{}, &apiErr); code != http.StatusConflict || apiErr.Code != ErrCodeBadTransition {
		t.Fatalf("double pause = %d %+v, want 409 bad_transition", code, apiErr)
	}

	var resumed CampaignInfo
	postJSON(t, srv.URL+PathCampaigns+"/"+id+"/resume", struct{}{}, &resumed)
	if resumed.State != StateRunning {
		t.Fatalf("resume left state %s, want running", resumed.State)
	}
	postJSON(t, srv.URL+PathLease, &LeaseRequest{Worker: "w1"}, &lease)
	if lease.Status != StatusLease || lease.Campaign != id {
		t.Fatalf("lease after resume = %+v", lease)
	}
	if st := svc.campaigns[id].coord.Stats(); st.Retries != 0 {
		t.Fatalf("pause/resume burned %d retries, want 0", st.Retries)
	}

	var cancelled CampaignInfo
	postJSON(t, srv.URL+PathCampaigns+"/"+id+"/cancel", struct{}{}, &cancelled)
	if cancelled.State != StateCancelled {
		t.Fatalf("cancel left state %s", cancelled.State)
	}
	var sub SubmitReply
	postJSON(t, srv.URL+PathSubmit, &SubmitRequest{Worker: "w1", LeaseID: lease.LeaseID,
		Campaign: id, Cell: lease.Cell, Result: fakeResult(lease.Spec)}, &sub)
	if sub.Status != StatusStale || sub.CampaignDone {
		t.Fatalf("submit into a cancelled campaign = %+v, want stale and no campaign-done", sub)
	}
	if code, _ := postJSON(t, srv.URL+PathCampaigns+"/"+id+"/resume", struct{}{}, &apiErr); code != http.StatusConflict {
		t.Fatalf("resume after cancel = %d, want 409", code)
	}
}

// TestServiceRoundRobinLeasing: with two campaigns running, consecutive
// leases alternate between them — one fleet, fair multiplexing.
func TestServiceRoundRobinLeasing(t *testing.T) {
	_, _, srv := newTestService(t, t.TempDir(), ServiceOptions{LeaseTTL: time.Minute})
	_, _, infoA, _ := submitRaw(t, srv.URL, &SubmitCampaignRequest{Tenant: "alpha", Specs: svcGrid(2)})
	_, _, infoB, _ := submitRaw(t, srv.URL, &SubmitCampaignRequest{Tenant: "beta", Specs: svcGrid(2)})

	var got []string
	for i := 0; i < 4; i++ {
		var lease LeaseReply
		postJSON(t, srv.URL+PathLease, &LeaseRequest{Worker: fmt.Sprintf("w%d", i)}, &lease)
		if lease.Status != StatusLease {
			t.Fatalf("lease %d = %s", i, lease.Status)
		}
		got = append(got, lease.Campaign)
	}
	want := []string{infoA.ID, infoB.ID, infoA.ID, infoB.ID}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lease order = %v, want alternating %v", got, want)
		}
	}
}

// TestServiceUnknownCampaignIsTerminal: a request naming a campaign the
// journal never admitted is a typed 404 the worker treats as permanent —
// it returns immediately instead of burning its downtime budget.
func TestServiceUnknownCampaignIsTerminal(t *testing.T) {
	_, _, srv := newTestService(t, t.TempDir(), ServiceOptions{})
	w := &Worker{ID: "lost", URL: srv.URL, Backoff: fastBackoff(),
		MaxDowntime: 30 * time.Second}
	start := time.Now()
	var rep HeartbeatReply
	err := w.post(context.Background(), PathHeartbeat,
		&HeartbeatRequest{Worker: "lost", LeaseID: 1, Campaign: "c999999"}, &rep)
	var term *TerminalError
	if !errors.As(err, &term) {
		t.Fatalf("unknown campaign returned %v, want TerminalError", err)
	}
	if term.Code != ErrCodeUnknownCampaign || term.Status != http.StatusNotFound {
		t.Fatalf("terminal error = %+v", term)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("terminal rejection took %v — the worker retried it", elapsed)
	}
}

// TestServiceEventsFilteredPerCampaign: the per-campaign event endpoint
// returns only that campaign's slice of the shared log.
func TestServiceEventsFilteredPerCampaign(t *testing.T) {
	_, _, srv := newTestService(t, t.TempDir(), ServiceOptions{})
	_, _, infoA, _ := submitRaw(t, srv.URL, &SubmitCampaignRequest{Tenant: "alpha", Specs: svcGrid(1)})
	_, _, infoB, _ := submitRaw(t, srv.URL, &SubmitCampaignRequest{Tenant: "beta", Specs: svcGrid(1)})

	resp, err := http.Get(srv.URL + PathCampaigns + "/" + infoA.ID + "/events?wait=10ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := json.NewDecoder(resp.Body)
	n := 0
	for dec.More() {
		var ev telemetry.Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		if ev.Campaign != infoA.ID {
			t.Fatalf("campaign %s stream leaked event for %q", infoA.ID, ev.Campaign)
		}
		n++
	}
	if n == 0 {
		t.Fatal("per-campaign stream returned nothing")
	}
	if resp, err := http.Get(srv.URL + PathCampaigns + "/zzz/events?wait=10ms"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("events for unknown campaign = %d, want 404", resp.StatusCode)
		}
	}
	_ = infoB
}

// TestServiceHealthSnapshot: the /healthz digest counts campaigns by state.
func TestServiceHealthSnapshot(t *testing.T) {
	svc, _, srv := newTestService(t, t.TempDir(), ServiceOptions{MaxActive: 1})
	submitRaw(t, srv.URL, &SubmitCampaignRequest{Specs: svcGrid(1)})
	submitRaw(t, srv.URL, &SubmitCampaignRequest{Specs: svcGrid(1)})
	snap := svc.Snapshot()
	if snap["campaigns"] != 2 {
		t.Fatalf("snapshot campaigns = %v, want 2", snap["campaigns"])
	}
	states := snap["by_state"].(map[string]int)
	if states[StateRunning] != 1 || states[StateQueued] != 1 {
		t.Fatalf("snapshot by_state = %v, want 1 running + 1 queued", states)
	}
	if snap["queue_depth"] != 1 {
		t.Fatalf("snapshot queue_depth = %v, want 1", snap["queue_depth"])
	}
}

// TestServiceJournalUnwritableRefusesSubmission: when the journal cannot
// make a submission durable, the service refuses it rather than accepting
// work a crash would forget.
func TestServiceJournalUnwritableRefusesSubmission(t *testing.T) {
	dir := t.TempDir()
	svc, _, srv := newTestService(t, dir, ServiceOptions{})
	svc.journal.Close() // simulate a dead journal fd (disk gone, etc.)
	code, _, _, apiErr := submitRaw(t, srv.URL, &SubmitCampaignRequest{Specs: svcGrid(1)})
	if code != http.StatusInternalServerError {
		t.Fatalf("submit with a dead journal = %d (%+v), want 500", code, apiErr)
	}
	// And nothing was admitted: the queue is exactly as durable as it claims.
	if n := len(svc.Snapshot()) ; n == 0 {
		t.Fatal("snapshot unavailable")
	}
	if svc.Snapshot()["campaigns"] != 0 {
		t.Fatalf("refused submission still queued: %v", svc.Snapshot())
	}
	_ = os.Remove(filepath.Join(dir, "journal.jsonl"))
}
