package dispatch

import (
	"strings"
	"testing"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/telemetry"
)

// protoGrid returns a small real grid (validated by New) without needing
// to simulate anything: protocol tests fabricate matching Results by hand.
func protoGrid(n int) []core.Spec {
	specs := make([]core.Spec, n)
	for i := range specs {
		specs[i] = core.Spec{
			Workload: "stringSearch", Component: core.CompL1D,
			Faults: 1 + i%3, Samples: 4, Seed: 7,
		}
	}
	return specs
}

// fakeResult fabricates a Result that answers spec, the way protocol tests
// stand in for a real core.Run.
func fakeResult(spec core.Spec) *core.Result {
	r := &core.Result{Spec: spec, GoldenCycles: 1000, TargetBits: 4096}
	r.Counts[core.EffectMasked] = spec.Samples
	return r
}

// clockFor installs a manual clock on the coordinator and returns the
// advance function.
func clockFor(c *Coordinator) func(d time.Duration) {
	now := time.Unix(1_700_000_000, 0)
	c.now = func() time.Time { return now }
	return func(d time.Duration) { now = now.Add(d) }
}

func counter(tel *telemetry.Campaign, name string) int64 {
	return tel.Registry.Counter(name).Value()
}

func TestLeaseExpiryReassignsCell(t *testing.T) {
	tel := telemetry.NewCampaign(nil)
	specs := protoGrid(1)
	c, err := New(specs, nil, Options{LeaseTTL: time.Minute, Tel: tel})
	if err != nil {
		t.Fatal(err)
	}
	advance := clockFor(c)

	l1 := c.lease(&LeaseRequest{Worker: "w1"})
	if l1.Status != StatusLease || l1.Cell != 0 {
		t.Fatalf("w1 lease = %+v", l1)
	}
	if l1.TTL != time.Minute {
		t.Fatalf("lease TTL = %v, want 1m", l1.TTL)
	}
	// The only cell is leased: a second worker waits.
	if rep := c.lease(&LeaseRequest{Worker: "w2"}); rep.Status != StatusWait || rep.RetryAfter <= 0 {
		t.Fatalf("w2 lease while leased = %+v", rep)
	}

	// w1 dies silently. Past the TTL the sweep reclaims the cell.
	advance(61 * time.Second)
	c.Sweep()
	if got := counter(tel, telemetry.MetricDispatchExpired); got != 1 {
		t.Fatalf("expired counter = %d, want 1", got)
	}
	if got := counter(tel, telemetry.MetricDispatchRetried); got != 1 {
		t.Fatalf("retried counter = %d, want 1", got)
	}

	// w1's old lease is gone.
	if rep := c.heartbeat(&HeartbeatRequest{Worker: "w1", LeaseID: l1.LeaseID}); rep.Status != StatusExpired {
		t.Fatalf("heartbeat on expired lease = %+v", rep)
	}

	// w2 now gets the same cell.
	l2 := c.lease(&LeaseRequest{Worker: "w2"})
	if l2.Status != StatusLease || l2.Cell != 0 || l2.LeaseID == l1.LeaseID {
		t.Fatalf("reassigned lease = %+v", l2)
	}
	if rep := c.submit(&SubmitRequest{Worker: "w2", LeaseID: l2.LeaseID,
		Cell: 0, Result: fakeResult(specs[0])}); rep.Status != StatusAccepted {
		t.Fatalf("w2 submit = %+v", rep)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("campaign not done after last cell")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("terminal error = %v", err)
	}

	// The slow original worker re-delivers: idempotent no-op.
	if rep := c.submit(&SubmitRequest{Worker: "w1", LeaseID: l1.LeaseID,
		Cell: 0, Result: fakeResult(specs[0])}); rep.Status != StatusDuplicate {
		t.Fatalf("late duplicate submit = %+v", rep)
	}
	if got := counter(tel, telemetry.MetricDispatchDeduped); got != 1 {
		t.Fatalf("dedup counter = %d, want 1", got)
	}
	if got := c.rs.Cells[core.CellKey{Component: "L1D", Workload: "stringSearch", Faults: 1}]; got == nil {
		t.Fatal("result missing from canonical set")
	}
}

func TestHeartbeatExtendsLease(t *testing.T) {
	c, err := New(protoGrid(1), nil, Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	advance := clockFor(c)
	l := c.lease(&LeaseRequest{Worker: "w1"})
	advance(50 * time.Second)
	if rep := c.heartbeat(&HeartbeatRequest{Worker: "w1", LeaseID: l.LeaseID}); rep.Status != StatusOK {
		t.Fatalf("heartbeat = %+v", rep)
	}
	// 50s after the beat (100s after the lease): still live.
	advance(50 * time.Second)
	c.Sweep()
	if rep := c.lease(&LeaseRequest{Worker: "w2"}); rep.Status != StatusWait {
		t.Fatalf("cell reclaimed despite heartbeats: %+v", rep)
	}
	// A heartbeat from the wrong worker does not renew.
	if rep := c.heartbeat(&HeartbeatRequest{Worker: "w2", LeaseID: l.LeaseID}); rep.Status != StatusExpired {
		t.Fatalf("foreign heartbeat = %+v", rep)
	}
}

func TestDuplicateSubmitFiresOnCellOnce(t *testing.T) {
	tel := telemetry.NewCampaign(nil)
	specs := protoGrid(1)
	fired := 0
	c, err := New(specs, nil, Options{Tel: tel,
		OnCell: func(cell int, res *core.Result) { fired++ }})
	if err != nil {
		t.Fatal(err)
	}
	l := c.lease(&LeaseRequest{Worker: "w1"})
	req := &SubmitRequest{Worker: "w1", LeaseID: l.LeaseID, Cell: 0, Result: fakeResult(specs[0])}
	if rep := c.submit(req); rep.Status != StatusAccepted {
		t.Fatalf("first submit = %+v", rep)
	}
	if rep := c.submit(req); rep.Status != StatusDuplicate {
		t.Fatalf("second submit = %+v", rep)
	}
	if fired != 1 {
		t.Fatalf("OnCell fired %d times, want 1", fired)
	}
	if got := counter(tel, telemetry.MetricDispatchDeduped); got != 1 {
		t.Fatalf("dedup counter = %d, want 1", got)
	}
}

func TestRetryBudgetExhaustionFailsCampaign(t *testing.T) {
	specs := protoGrid(2)
	c, err := New(specs, nil, Options{MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The same cell fails on a worker three times: two retries allowed,
	// the third failure kills the campaign naming the cell and the error.
	for i := 0; i < 3; i++ {
		l := c.lease(&LeaseRequest{Worker: "w1"})
		if l.Status != StatusLease || l.Cell != 0 {
			t.Fatalf("attempt %d lease = %+v", i, l)
		}
		c.submit(&SubmitRequest{Worker: "w1", LeaseID: l.LeaseID, Cell: l.Cell,
			Err: "sample 3 panicked: boom"})
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("campaign still running after budget exhaustion")
	}
	err = c.Err()
	if err == nil || !strings.Contains(err.Error(), "L1D/stringSearch/1-bit") ||
		!strings.Contains(err.Error(), "boom") {
		t.Fatalf("terminal error = %v, want cell name and last worker error", err)
	}
	// Workers asking for more work are told to go home.
	if rep := c.lease(&LeaseRequest{Worker: "w2"}); rep.Status != StatusDone {
		t.Fatalf("lease after failure = %+v", rep)
	}
}

func TestCoordinatorResumesFromResultSet(t *testing.T) {
	specs := protoGrid(2)
	rs := core.NewResultSet()
	rs.Add(fakeResult(specs[0]))
	c, err := New(specs, rs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Remaining(); got != 1 {
		t.Fatalf("Remaining = %d, want 1 (one cell covered)", got)
	}
	l := c.lease(&LeaseRequest{Worker: "w1"})
	if l.Status != StatusLease || l.Cell != 1 {
		t.Fatalf("resumed lease = %+v, want cell 1", l)
	}
	if rep := c.submit(&SubmitRequest{Worker: "w1", LeaseID: l.LeaseID,
		Cell: 1, Result: fakeResult(specs[1])}); rep.Status != StatusAccepted {
		t.Fatalf("submit = %+v", rep)
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("resumed campaign not done")
	}

	// A coordinator restarted over the completed set has nothing to do.
	c2, err := New(specs, c.Results(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-c2.Done():
	default:
		t.Fatal("fully-covered coordinator should start done")
	}
	if rep := c2.lease(&LeaseRequest{Worker: "w1"}); rep.Status != StatusDone {
		t.Fatalf("lease on complete campaign = %+v", rep)
	}
}

func TestStaleSubmitDiscarded(t *testing.T) {
	specs := protoGrid(1)
	c, err := New(specs, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// No lease, and the result's spec does not match the named cell.
	wrong := specs[0]
	wrong.Seed = 999
	if rep := c.submit(&SubmitRequest{Worker: "w1", LeaseID: 42, Cell: 0,
		Result: fakeResult(wrong)}); rep.Status != StatusStale {
		t.Fatalf("mismatched submit = %+v", rep)
	}
	// Out-of-range cell index.
	if rep := c.submit(&SubmitRequest{Worker: "w1", LeaseID: 42, Cell: 7,
		Result: fakeResult(specs[0])}); rep.Status != StatusStale {
		t.Fatalf("out-of-range submit = %+v", rep)
	}
	// But a lease-less submit whose spec matches the cell IS accepted:
	// that is the expired-lease redelivery path.
	if rep := c.submit(&SubmitRequest{Worker: "w1", LeaseID: 42, Cell: 0,
		Result: fakeResult(specs[0])}); rep.Status != StatusAccepted {
		t.Fatalf("valid lease-less submit = %+v", rep)
	}
}

func TestAbandonRequeuesWithoutRetry(t *testing.T) {
	tel := telemetry.NewCampaign(nil)
	c, err := New(protoGrid(1), nil, Options{Tel: tel})
	if err != nil {
		t.Fatal(err)
	}
	l := c.lease(&LeaseRequest{Worker: "w1"})
	if rep := c.abandon(&AbandonRequest{Worker: "w1", LeaseID: l.LeaseID}); rep.Status != StatusOK {
		t.Fatalf("abandon = %+v", rep)
	}
	if got := counter(tel, telemetry.MetricDispatchRetried); got != 0 {
		t.Fatalf("graceful abandon burned a retry (counter=%d)", got)
	}
	// The cell is immediately leasable again.
	if rep := c.lease(&LeaseRequest{Worker: "w2"}); rep.Status != StatusLease || rep.Cell != 0 {
		t.Fatalf("lease after abandon = %+v", rep)
	}
	if c.retries[0] != 0 {
		t.Fatalf("retries[0] = %d, want 0", c.retries[0])
	}
}

func TestLiveWorkerGaugeTracksContact(t *testing.T) {
	tel := telemetry.NewCampaign(nil)
	c, err := New(protoGrid(3), nil, Options{LeaseTTL: time.Minute, Tel: tel})
	if err != nil {
		t.Fatal(err)
	}
	advance := clockFor(c)
	c.lease(&LeaseRequest{Worker: "w1"})
	c.lease(&LeaseRequest{Worker: "w2"})
	if got := tel.Registry.Gauge(telemetry.MetricDispatchWorkers).Value(); got != 2 {
		t.Fatalf("live workers = %d, want 2", got)
	}
	if got := tel.Registry.Gauge(telemetry.MetricDispatchLeased).Value(); got != 2 {
		t.Fatalf("leased cells = %d, want 2", got)
	}
	// Both go silent: past the live window they drop off the gauge (and
	// their cells are reclaimed).
	advance(4 * time.Minute)
	c.Sweep()
	if got := tel.Registry.Gauge(telemetry.MetricDispatchWorkers).Value(); got != 0 {
		t.Fatalf("live workers after silence = %d, want 0", got)
	}
	if got := tel.Registry.Gauge(telemetry.MetricDispatchLeased).Value(); got != 0 {
		t.Fatalf("leased cells after silence = %d, want 0", got)
	}
}
