package dispatch

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mbusim/internal/core"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "journal.jsonl")
}

func mustAppend(t *testing.T, j *Journal, rec JournalRecord) {
	t.Helper()
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
}

func TestJournalAppendReplay(t *testing.T) {
	path := journalPath(t)
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	specs := []core.Spec{{Workload: "stringSearch", Component: core.CompL1D,
		Faults: 2, Samples: 4, Seed: 3}}
	mustAppend(t, j, JournalRecord{Op: JournalOpSubmit, ID: "c000000",
		Tenant: "acme", Name: "nightly", Retries: 3, Specs: specs, TimeNS: 7})
	mustAppend(t, j, JournalRecord{Op: JournalOpState, ID: "c000000",
		State: StateRunning, TimeNS: 9})
	j.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	sub := recs[0]
	if sub.Op != JournalOpSubmit || sub.ID != "c000000" || sub.Tenant != "acme" ||
		sub.Name != "nightly" || sub.Retries != 3 || len(sub.Specs) != 1 {
		t.Fatalf("submit record corrupted by round-trip: %+v", sub)
	}
	if !sub.Specs[0].Equivalent(specs[0]) {
		t.Fatalf("replayed spec not equivalent: %+v", sub.Specs[0])
	}
	if st := recs[1]; st.Op != JournalOpState || st.State != StateRunning {
		t.Fatalf("state record corrupted by round-trip: %+v", st)
	}
	// The reopened journal appends after the replayed records, not over them.
	mustAppend(t, j2, JournalRecord{Op: JournalOpState, ID: "c000000", State: StateDone})
	_, recs, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[2].State != StateDone {
		t.Fatalf("append after reopen lost records: %+v", recs)
	}
}

// TestJournalTornTail: a crash mid-append leaves a partial final line. Open
// must drop it (the record was never acknowledged), truncate the file back
// to a line boundary, and accept new appends — the crashed submitter's
// retry lands as a fresh record, idempotently.
func TestJournalTornTail(t *testing.T) {
	path := journalPath(t)
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, JournalRecord{Op: JournalOpSubmit, ID: "c000000"})
	j.Close()
	if err := os.WriteFile(path, append(readFile(t, path),
		[]byte(`{"op":"submit","id":"c0000`)...), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn tail should be tolerated: %v", err)
	}
	if len(recs) != 1 || recs[0].ID != "c000000" {
		t.Fatalf("replay after torn tail = %+v, want the one whole record", recs)
	}
	if tail := readFile(t, path); strings.Contains(string(tail), "c0000\"") ||
		!strings.HasSuffix(string(tail), "\n") {
		t.Fatalf("torn tail not truncated: %q", tail)
	}
	// The retry is re-accepted and lands cleanly after the truncation point.
	mustAppend(t, j2, JournalRecord{Op: JournalOpSubmit, ID: "c000001"})
	j2.Close()
	_, recs, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].ID != "c000001" {
		t.Fatalf("append after torn-tail recovery = %+v", recs)
	}
}

// TestJournalMidstreamCorruption: a bad line with more data after it is
// damage, not an interrupted append, and must fail the open loudly.
func TestJournalMidstreamCorruption(t *testing.T) {
	path := journalPath(t)
	data := `{"op":"submit","id":"c000000"}` + "\n" +
		`NOT JSON` + "\n" +
		`{"op":"state","id":"c000000","state":"running"}` + "\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := OpenJournal(path)
	if err == nil {
		t.Fatal("mid-stream corruption should fail the open")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("corruption error should name the line: %v", err)
	}
}

// TestJournalSyncsBeforeAck: Append must not return before the bytes are
// fsynced — the acknowledgement IS the durability promise.
func TestJournalSyncsBeforeAck(t *testing.T) {
	synced := 0
	orig := jfsync
	jfsync = func(f *os.File) error { synced++; return orig(f) }
	defer func() { jfsync = orig }()

	j, _, err := OpenJournal(journalPath(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAppend(t, j, JournalRecord{Op: JournalOpSubmit, ID: "c000000"})
	if synced != 1 {
		t.Fatalf("Append fsynced %d times, want 1", synced)
	}
}

func readFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
