package dispatch

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/telemetry"
	"mbusim/internal/workloads"
)

// artifactFixture serves the protoGrid workload's artifact from an
// httptest server and returns the server plus the workload's key.
func artifactFixture(t *testing.T, tel *telemetry.Campaign) (*httptest.Server, string) {
	t.Helper()
	specs := protoGrid(1)
	as, err := NewArtifactServer(specs, tel)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.Handle(PathArtifact, as)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	w, err := workloads.ByName(specs[0].Workload)
	if err != nil {
		t.Fatal(err)
	}
	key, err := w.ArtifactKey()
	if err != nil {
		t.Fatal(err)
	}
	return srv, key
}

func TestArtifactServerServesAndRejects(t *testing.T) {
	tel := telemetry.NewCampaign(nil)
	srv, key := artifactFixture(t, tel)

	resp, err := http.Get(srv.URL + PathArtifact + key)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET known key: HTTP %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	// The served bytes must decode and verify end-to-end.
	a, err := workloads.DecodeArtifact(buf.Bytes())
	if err != nil {
		t.Fatalf("served artifact does not verify: %v", err)
	}
	if a.Key() != key {
		t.Fatalf("served artifact keyed %s, requested %s", a.Key(), key)
	}
	if got := counter(tel, telemetry.MetricArtifactServed); got != 1 {
		t.Fatalf("served counter = %d, want 1", got)
	}

	// Unknown key: 404, not an error page with a 200.
	resp2, err := http.Get(srv.URL + PathArtifact + "deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown key: HTTP %d, want 404", resp2.StatusCode)
	}
}

func TestArtifactCacheFetchesAndCaches(t *testing.T) {
	tel := telemetry.NewCampaign(nil)
	srv, key := artifactFixture(t, tel)
	dir := t.TempDir()

	cache := &ArtifactCache{Dir: dir, URL: srv.URL, Tel: tel}
	if err := cache.Ensure("stringSearch"); err != nil {
		t.Fatal(err)
	}
	if got := counter(tel, telemetry.MetricArtifactFetches); got != 1 {
		t.Fatalf("fetch counter = %d, want 1", got)
	}
	path := filepath.Join(dir, key+".mba")
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("fetched artifact not cached on disk: %v", err)
	}
	if _, err := workloads.DecodeArtifact(good); err != nil {
		t.Fatalf("cached bytes do not verify: %v", err)
	}

	// Same workload again: a no-op, no second fetch.
	if err := cache.Ensure("stringSearch"); err != nil {
		t.Fatal(err)
	}
	if got := counter(tel, telemetry.MetricArtifactFetches); got != 1 {
		t.Fatalf("repeat Ensure refetched: %d", got)
	}

	// A fresh cache instance (a new process) hits the disk instead.
	cache2 := &ArtifactCache{Dir: dir, URL: srv.URL, Tel: tel}
	if err := cache2.Ensure("stringSearch"); err != nil {
		t.Fatal(err)
	}
	if got := counter(tel, telemetry.MetricArtifactCacheHits); got != 1 {
		t.Fatalf("cache-hit counter = %d, want 1", got)
	}
	if got := counter(tel, telemetry.MetricArtifactFetches); got != 1 {
		t.Fatalf("disk hit still fetched: %d", got)
	}
}

func TestArtifactCacheCorruptDiskRefetches(t *testing.T) {
	tel := telemetry.NewCampaign(nil)
	srv, key := artifactFixture(t, tel)
	dir := t.TempDir()
	path := filepath.Join(dir, key+".mba")

	// Seed the cache with a valid artifact, then corrupt it on disk.
	seed := &ArtifactCache{Dir: dir, URL: srv.URL, Tel: tel}
	if err := seed.Ensure("stringSearch"); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := bytes.Clone(good)
	bad[len(bad)/2] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh cache must reject the corrupt file — never install it, never
	// crash — refetch, and leave a verified copy in its place.
	cache := &ArtifactCache{Dir: dir, URL: srv.URL, Tel: tel}
	if err := cache.Ensure("stringSearch"); err != nil {
		t.Fatal(err)
	}
	if got := counter(tel, telemetry.MetricArtifactCorrupt); got != 1 {
		t.Fatalf("corrupt counter = %d, want 1", got)
	}
	if got := counter(tel, telemetry.MetricArtifactFetches); got != 2 {
		t.Fatalf("fetch counter = %d, want 2 (seed + refetch)", got)
	}
	if got := counter(tel, telemetry.MetricArtifactFallbacks); got != 0 {
		t.Fatalf("fallback counter = %d, want 0", got)
	}
	repaired, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("corrupt cache entry not replaced: %v", err)
	}
	if !bytes.Equal(repaired, good) {
		t.Fatal("cache entry not repaired with verified bytes")
	}
}

func TestArtifactCacheFallsBackWithoutCoordinator(t *testing.T) {
	tel := telemetry.NewCampaign(nil)
	// No disk cache, and a coordinator that answers 404 for everything.
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	cache := &ArtifactCache{URL: srv.URL, Tel: tel}
	if err := cache.Ensure("stringSearch"); err != nil {
		t.Fatal(err)
	}
	if got := counter(tel, telemetry.MetricArtifactFallbacks); got != 1 {
		t.Fatalf("fallback counter = %d, want 1", got)
	}
	// Unknown workloads are a real error, not a fallback.
	if err := cache.Ensure("no-such-workload"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestSubmitSpecMismatchIsStale pins the other half of the identity bugfix:
// a worker submitting a result whose spec differs in any outcome-affecting
// field — even with the cell key, samples and seed all matching — must be
// answered StatusStale and kept out of the canonical result set.
func TestSubmitSpecMismatchIsStale(t *testing.T) {
	specs := protoGrid(1)
	muts := map[string]func(*core.Spec){
		"cluster":       func(s *core.Spec) { s.Cluster = core.ClusterSpec{Rows: 9, Cols: 1} },
		"timeoutFactor": func(s *core.Spec) { s.TimeoutFactor = 2 },
		"wallTimeout":   func(s *core.Spec) { s.WallTimeout = time.Minute },
		"forceSpanning": func(s *core.Spec) { s.ForceSpanning = true },
		"protect":       func(s *core.Spec) { s.Protect = core.Protection{Kind: core.ProtectSECDED} },
	}
	for name, mut := range muts {
		c, err := New(specs, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		clockFor(c)
		l := c.lease(&LeaseRequest{Worker: "w1"})
		stale := specs[0]
		mut(&stale)
		rep := c.submit(&SubmitRequest{Worker: "w1", LeaseID: l.LeaseID,
			Cell: l.Cell, Result: fakeResult(stale)})
		if rep.Status != StatusStale {
			t.Errorf("%s: mismatched submit = %q, want stale", name, rep.Status)
		}
		if c.Remaining() != 1 {
			t.Errorf("%s: mismatched submit completed the cell", name)
		}
	}

	// The result a real worker records carries normalized defaults
	// (Cluster, TimeoutFactor filled in); that must still be accepted.
	c, err := New(specs, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	clockFor(c)
	l := c.lease(&LeaseRequest{Worker: "w1"})
	normalized := specs[0].Normalize()
	if rep := c.submit(&SubmitRequest{Worker: "w1", LeaseID: l.LeaseID,
		Cell: l.Cell, Result: fakeResult(normalized)}); rep.Status != StatusAccepted {
		t.Fatalf("normalized submit = %q, want accepted", rep.Status)
	}
}
