package dispatch

import (
	"math/rand/v2"
	"testing"
	"time"
)

// TestBackoffBounds pins the jitter envelope: attempt n waits somewhere in
// [min(Base*2^n, Max)/2, min(Base*2^n, Max)], never more than Max and
// never less than half the base.
func TestBackoffBounds(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second}
	rnd := rand.New(rand.NewPCG(1, 2))
	for n := 0; n < 24; n++ {
		ideal := 100 * time.Millisecond
		for i := 0; i < n && ideal < b.Max; i++ {
			ideal *= 2
		}
		if ideal > b.Max {
			ideal = b.Max
		}
		for trial := 0; trial < 200; trial++ {
			d := b.Delay(n, rnd)
			if d < ideal/2 || d > ideal {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]", n, d, ideal/2, ideal)
			}
		}
	}
}

// TestBackoffDefaults: the zero value backs off from 100ms to a 5s cap.
func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if d := b.Delay(0, nil); d < 50*time.Millisecond || d > 100*time.Millisecond {
		t.Fatalf("default first delay = %v", d)
	}
	if d := b.Delay(100, nil); d < 2500*time.Millisecond || d > 5*time.Second {
		t.Fatalf("default capped delay = %v", d)
	}
}

// TestBackoffJitterSpreads: with many draws the delays are not all equal —
// the anti-stampede property.
func TestBackoffJitterSpreads(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 5 * time.Second}
	rnd := rand.New(rand.NewPCG(3, 4))
	seen := map[time.Duration]bool{}
	for i := 0; i < 100; i++ {
		seen[b.Delay(3, rnd)] = true
	}
	if len(seen) < 10 {
		t.Fatalf("100 draws produced only %d distinct delays", len(seen))
	}
}
