package dispatch

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"

	"mbusim/internal/core"
	"mbusim/internal/telemetry"
	"mbusim/internal/workloads"
)

// Checkpoint-artifact distribution: without it, every worker process opens
// a distributed campaign by re-deriving the golden reference and checkpoint
// set of every workload it touches — the exact same multi-hundred-million-
// cycle simulations the coordinator and every other worker also run. The
// coordinator instead derives each workload once, packages the result as a
// content-addressed artifact (workloads.Artifact), and serves it over the
// dispatch HTTP surface; workers compute the key they expect from their own
// build and configuration, check a local disk cache, fetch on miss, verify
// the content hash, and install. Every verification failure — wrong key,
// corrupt bytes, mismatched image — degrades to local derivation, so the
// artifact path can only ever save work, never change results.

// ArtifactServer serves encoded checkpoint artifacts for the workloads of
// a campaign grid, deriving and encoding each workload's artifact at most
// once, on first request. Mount it on the coordinator's mux at
// PathArtifact.
type ArtifactServer struct {
	tel     *telemetry.Campaign
	entries map[string]*artifactEntry // content address -> entry
}

type artifactEntry struct {
	w    *workloads.Workload
	once sync.Once
	data []byte
	err  error
}

// NewArtifactServer builds a server for every distinct workload in the
// grid, computing their keys (which compiles each workload, cheap) but
// deriving nothing yet.
func NewArtifactServer(specs []core.Spec, tel *telemetry.Campaign) (*ArtifactServer, error) {
	s := &ArtifactServer{tel: tel, entries: make(map[string]*artifactEntry)}
	seen := make(map[string]bool)
	for _, spec := range specs {
		if seen[spec.Workload] {
			continue
		}
		seen[spec.Workload] = true
		w, err := workloads.ByName(spec.Workload)
		if err != nil {
			return nil, err
		}
		key, err := w.ArtifactKey()
		if err != nil {
			return nil, err
		}
		s.entries[key] = &artifactEntry{w: w}
	}
	return s, nil
}

// ServeHTTP answers GET PathArtifact+key with the encoded artifact, 404
// for a key this build and configuration would not produce (the requester
// falls back to deriving locally), and 500 if derivation itself failed.
func (s *ArtifactServer) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(rw, "GET only", http.StatusMethodNotAllowed)
		return
	}
	key := r.URL.Path[len(PathArtifact):]
	e, ok := s.entries[key]
	if !ok {
		http.Error(rw, "unknown artifact", http.StatusNotFound)
		return
	}
	e.once.Do(func() {
		a, err := workloads.ExportArtifact(e.w)
		if err != nil {
			e.err = err
			return
		}
		e.data = a.Encode()
	})
	if e.err != nil {
		http.Error(rw, e.err.Error(), http.StatusInternalServerError)
		return
	}
	s.tel.ArtifactServed()
	s.tel.Emit(telemetry.Event{Type: telemetry.EventArtifactFetch, Cell: -1,
		Workload: e.w.Name, Detail: key})
	rw.Header().Set("Content-Type", "application/octet-stream")
	rw.Write(e.data)
}

// ArtifactCache brings workloads up from cached checkpoint artifacts on
// the worker side: disk cache first, then a fetch from the coordinator,
// then — on any miss or verification failure — silent fallback to local
// derivation. All methods are safe for concurrent use.
type ArtifactCache struct {
	// Dir is the disk cache directory, created on demand. Empty disables
	// the disk layer (fetch-and-install only).
	Dir string
	// URL is the coordinator base URL; empty disables fetching (disk-only).
	URL string
	// Client is the HTTP client for fetches; nil means http.DefaultClient.
	Client *http.Client
	// Tel, when non-nil, receives the artifact counters.
	Tel *telemetry.Campaign

	mu    sync.Mutex
	tried map[string]bool // workload name -> Ensure already ran
}

func (c *ArtifactCache) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// Ensure makes one attempt to bring the named workload up from an artifact
// before its golden state is first needed. It never returns an error for a
// missing or bad artifact — that is the fallback path, counted in
// telemetry, and the workload simply derives locally — only for an unknown
// workload name. Repeat calls for the same workload are no-ops.
func (c *ArtifactCache) Ensure(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tried[name] {
		return nil
	}
	if c.tried == nil {
		c.tried = make(map[string]bool)
	}
	c.tried[name] = true

	w, err := workloads.ByName(name)
	if err != nil {
		return err
	}
	key, err := w.ArtifactKey()
	if err != nil {
		// The workload does not compile; the campaign will report that
		// through the normal path.
		return nil
	}
	if c.installFromDisk(w, key) {
		return nil
	}
	if c.fetchAndInstall(w, key) {
		return nil
	}
	c.Tel.ArtifactFallback()
	return nil
}

// cachePath is the disk location of an artifact ("" when disk caching is
// off). The key is a hex digest, so it is always a safe filename.
func (c *ArtifactCache) cachePath(key string) string {
	if c.Dir == "" {
		return ""
	}
	return filepath.Join(c.Dir, key+".mba")
}

// installFromDisk tries the disk cache. A file that fails verification or
// install is deleted so the subsequent fetch can replace it.
func (c *ArtifactCache) installFromDisk(w *workloads.Workload, key string) bool {
	path := c.cachePath(key)
	if path == "" {
		return false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	if err := decodeAndInstall(w, data); err != nil {
		c.Tel.ArtifactCorrupt()
		os.Remove(path)
		return false
	}
	c.Tel.ArtifactCacheHit()
	return true
}

// fetchAndInstall downloads the artifact from the coordinator, installs it,
// and writes it to the disk cache (atomically, so a concurrent process or
// a crash never exposes a partial file — though verification would catch
// one anyway).
func (c *ArtifactCache) fetchAndInstall(w *workloads.Workload, key string) bool {
	if c.URL == "" {
		return false
	}
	resp, err := c.client().Get(c.URL + PathArtifact + key)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return false
	}
	if err := decodeAndInstall(w, data); err != nil {
		c.Tel.ArtifactCorrupt()
		return false
	}
	c.Tel.ArtifactFetched()
	if path := c.cachePath(key); path != "" {
		_ = writeFileAtomic(path, data)
	}
	return true
}

// decodeAndInstall verifies an encoded artifact end-to-end and seeds the
// workload from it.
func decodeAndInstall(w *workloads.Workload, data []byte) error {
	a, err := workloads.DecodeArtifact(data)
	if err != nil {
		return err
	}
	return workloads.InstallArtifact(w, a)
}

// writeFileAtomic writes data via a temp file and rename. Cache writes are
// best-effort: a lost cache entry costs one re-fetch, never correctness.
func writeFileAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
