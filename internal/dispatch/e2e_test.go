package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mbusim/internal/core"
	"mbusim/internal/telemetry"
)

// e2eGrid is a small but real grid: two cells that actually simulate.
func e2eGrid() []core.Spec {
	return []core.Spec{
		{Workload: "stringSearch", Component: core.CompL1D, Faults: 1, Samples: 4, Seed: 3},
		{Workload: "stringSearch", Component: core.CompDTLB, Faults: 2, Samples: 4, Seed: 3},
	}
}

// rawLease grabs a lease over HTTP without ever coming back — the analog
// of a worker SIGKILLed right after leasing.
func rawLease(t *testing.T, url, worker string) *LeaseReply {
	t.Helper()
	body, _ := json.Marshal(&LeaseRequest{Worker: worker})
	resp, err := http.Post(url+PathLease, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep LeaseReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return &rep
}

// TestChaosEquivalence is the package's acceptance test: a worker dies
// holding a lease, a second worker completes the campaign after the lease
// expires, and the coordinator's final ResultSet is byte-identical
// (canonical Encode) to an uninterrupted single-process run of the same
// grid.
func TestChaosEquivalence(t *testing.T) {
	specs := e2eGrid()

	// Reference: uninterrupted single-process run.
	ref := core.NewResultSet()
	if err := core.RunGrid(context.Background(), specs, 1,
		func(_ int, r *core.Result) { ref.Add(r) }); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Distributed: short TTL so the dead worker's lease expires quickly.
	tel := telemetry.NewCampaign(nil)
	coord, err := New(specs, nil, Options{LeaseTTL: 300 * time.Millisecond, Tel: tel})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Mux())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	waitErr := make(chan error, 1)
	go func() { waitErr <- coord.Wait(ctx) }()

	// The victim: leases cell 0 and is never heard from again.
	if rep := rawLease(t, srv.URL, "victim"); rep.Status != StatusLease {
		t.Fatalf("victim lease = %+v", rep)
	}

	// The survivor: a real worker that does everything else, including the
	// victim's cell once its lease expires.
	w := &Worker{ID: "survivor", URL: srv.URL,
		Backoff: Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond}}
	if err := w.Run(ctx); err != nil {
		t.Fatalf("survivor worker: %v", err)
	}
	if err := <-waitErr; err != nil {
		t.Fatalf("coordinator: %v", err)
	}

	got, err := coord.Results().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed ResultSet differs from single-process run:\n got: %s\nwant: %s", got, want)
	}
	if n := counter(tel, telemetry.MetricDispatchExpired); n < 1 {
		t.Fatalf("expected at least one expired lease, got %d", n)
	}
	if n := counter(tel, telemetry.MetricCells); n != int64(len(specs)) {
		t.Fatalf("cells completed counter = %d, want %d", n, len(specs))
	}
}

// TestWorkerDrainAbandonsLease: a cancelled worker hands its in-flight
// cell back to the coordinator instead of letting the TTL expire it, and
// the hand-back does not burn a retry.
func TestWorkerDrainAbandonsLease(t *testing.T) {
	// One big cell the worker cannot possibly finish before we cancel it.
	specs := []core.Spec{{Workload: "stringSearch", Component: core.CompL1D,
		Faults: 1, Samples: 100000, Seed: 3}}
	coord, err := New(specs, nil, Options{LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Mux())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{ID: "drainer", URL: srv.URL}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	// Wait until the worker holds the lease, then pull the plug.
	deadline := time.Now().Add(10 * time.Second)
	for {
		coord.mu.Lock()
		leased := len(coord.leases) == 1
		coord.mu.Unlock()
		if leased {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never leased the cell")
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("drained worker returned %v, want context.Canceled", err)
	}

	// The abandon hand-back is synchronous within Run's return, so the
	// cell is already pending again, with no retry charged.
	coord.mu.Lock()
	defer coord.mu.Unlock()
	if coord.state[0] != cellPending {
		t.Fatalf("cell state after drain = %d, want pending", coord.state[0])
	}
	if len(coord.leases) != 0 {
		t.Fatalf("%d leases outstanding after drain, want 0", len(coord.leases))
	}
	if coord.retries[0] != 0 {
		t.Fatalf("drain charged %d retries, want 0", coord.retries[0])
	}
}

// TestWorkerReportsCellFailure: a cell that fails on the worker (here: an
// invalid spec smuggled past New) is reported, charged against the retry
// budget, and eventually fails the campaign, which the worker observes as
// a normal done.
func TestWorkerReportsCellFailure(t *testing.T) {
	specs := e2eGrid()
	coord, err := New(specs, nil, Options{LeaseTTL: time.Minute, MaxRetries: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage cell 0 after validation: ForceSpanning with 1-bit faults in
	// the default 3x3 cluster can never produce a spanning mask, so every
	// sample errors out — the deterministic poisoned-cell case.
	coord.specs[0].ForceSpanning = true

	srv := httptest.NewServer(coord.Mux())
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	waitErr := make(chan error, 1)
	go func() { waitErr <- coord.Wait(ctx) }()

	w := &Worker{ID: "w1", URL: srv.URL,
		Backoff: Backoff{Base: 20 * time.Millisecond, Max: 200 * time.Millisecond}}
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker should end cleanly on campaign failure, got %v", err)
	}
	err = <-waitErr
	if err == nil || coord.Err() == nil {
		t.Fatal("campaign should have failed on the poisoned cell")
	}
}

// TestWorkerGivesUpWhenCoordinatorUnreachable bounds the reconnect loop:
// with nothing listening, Run fails after MaxDowntime, not forever.
func TestWorkerGivesUpWhenCoordinatorUnreachable(t *testing.T) {
	w := &Worker{ID: "w1", URL: "http://127.0.0.1:1",
		Backoff:     Backoff{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond},
		MaxDowntime: 250 * time.Millisecond,
		Client:      &http.Client{Timeout: 100 * time.Millisecond},
	}
	start := time.Now()
	err := w.Run(context.Background())
	if err == nil {
		t.Fatal("worker should give up on an unreachable coordinator")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("worker took %v to give up", elapsed)
	}
}
