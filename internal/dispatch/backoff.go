package dispatch

import (
	"math/rand/v2"
	"time"
)

// Backoff is capped exponential backoff with jitter, used by workers when
// the coordinator is unreachable. The zero value means the defaults.
type Backoff struct {
	Base time.Duration // first delay; default 100ms
	Max  time.Duration // cap; default 5s
}

const (
	defaultBackoffBase = 100 * time.Millisecond
	defaultBackoffMax  = 5 * time.Second
)

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = defaultBackoffBase
	}
	if b.Max <= 0 {
		b.Max = defaultBackoffMax
	}
	if b.Max < b.Base {
		b.Max = b.Base
	}
	return b
}

// Delay returns the pause before retry attempt n (0-based): Base*2^n
// capped at Max, jittered uniformly over [d/2, d] so a fleet of workers
// reconnecting after a coordinator restart does not stampede in lockstep.
// rnd is the caller's random source (nil means the global one).
func (b Backoff) Delay(n int, rnd *rand.Rand) time.Duration {
	b = b.withDefaults()
	d := b.Base
	for i := 0; i < n && d < b.Max; i++ {
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	half := d / 2
	var j time.Duration
	if rnd != nil {
		j = time.Duration(rnd.Int64N(int64(half) + 1))
	} else {
		j = time.Duration(rand.Int64N(int64(half) + 1))
	}
	return half + j
}
