// Package wire is the minimal binary codec under the content-addressed
// snapshot artifact format: fixed-width little-endian scalars and
// length-prefixed byte strings, appended to one growing buffer. The
// encoding carries no type information — writer and reader must agree on
// the field sequence, which the artifact format pins with an explicit
// version number — so two encodings of equal state are byte-identical,
// the property content addressing is built on.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer appends fields to a buffer. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// Bytes returns the encoded buffer. The Writer retains ownership; the
// slice is valid until the next append.
func (w *Writer) Bytes() []byte { return w.buf }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// I32 appends an int32 (two's complement).
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 appends an int64 (two's complement).
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int appends an int as an int64, so the encoding is identical across
// host int widths.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 appends a float64 by its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Blob appends a length-prefixed byte string.
func (w *Writer) Blob(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes fields from a buffer. The first malformed read (a field
// extending past the end of the buffer) latches an error; every later
// read returns the zero value, so decoders can run the full field
// sequence and check Err once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf. The Reader does not copy buf;
// decoded Blob slices are copies, so the caller may reuse buf afterwards.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unconsumed bytes.
func (r *Reader) Len() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = fmt.Errorf("wire: truncated: need %d bytes at offset %d of %d", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I32 reads an int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int encoded by Writer.Int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a bool. Any nonzero byte is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Blob reads a length-prefixed byte string into a fresh slice (nil for an
// empty blob, matching how Go serializes empty slices round-trip).
func (r *Reader) Blob() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Len()) {
		r.err = fmt.Errorf("wire: blob length %d exceeds %d remaining bytes", n, r.Len())
		return nil
	}
	b := r.take(int(n))
	if len(b) == 0 {
		return nil
	}
	return append([]byte(nil), b...)
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Blob()) }
