package wire

import (
	"bytes"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	w.U8(0xAB)
	w.U32(0xDEADBEEF)
	w.U64(1 << 60)
	w.I32(-7)
	w.I64(-1 << 40)
	w.Int(-42)
	w.F64(math.Pi)
	w.Bool(true)
	w.Bool(false)
	w.Blob([]byte{1, 2, 3})
	w.Blob(nil)
	w.String("golden")
	w.String("")

	r := NewReader(w.Bytes())
	if v := r.U8(); v != 0xAB {
		t.Errorf("U8 = %#x", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := r.U64(); v != 1<<60 {
		t.Errorf("U64 = %#x", v)
	}
	if v := r.I32(); v != -7 {
		t.Errorf("I32 = %d", v)
	}
	if v := r.I64(); v != -1<<40 {
		t.Errorf("I64 = %d", v)
	}
	if v := r.Int(); v != -42 {
		t.Errorf("Int = %d", v)
	}
	if v := r.F64(); v != math.Pi {
		t.Errorf("F64 = %v", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip broken")
	}
	if v := r.Blob(); !bytes.Equal(v, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", v)
	}
	if v := r.Blob(); v != nil {
		t.Errorf("empty Blob = %v, want nil", v)
	}
	if v := r.String(); v != "golden" {
		t.Errorf("String = %q", v)
	}
	if v := r.String(); v != "" {
		t.Errorf("empty String = %q", v)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left over", r.Len())
	}
}

// TestDeterministic pins the property content addressing depends on: equal
// field sequences encode to identical bytes.
func TestDeterministic(t *testing.T) {
	enc := func() []byte {
		var w Writer
		w.String("sha")
		w.U64(123456)
		w.Blob([]byte{9, 9})
		return append([]byte(nil), w.Bytes()...)
	}
	if !bytes.Equal(enc(), enc()) {
		t.Fatal("equal inputs encoded differently")
	}
}

// TestTruncationLatches: the first read past the end latches an error,
// later reads return zero values, and Err reports the failure once.
func TestTruncationLatches(t *testing.T) {
	var w Writer
	w.U64(7)
	data := w.Bytes()

	r := NewReader(data[:4])
	if v := r.U64(); v != 0 {
		t.Errorf("truncated U64 = %d, want 0", v)
	}
	if r.Err() == nil {
		t.Fatal("truncation not reported")
	}
	// Latched: subsequent reads stay zero and don't panic.
	if v := r.U32(); v != 0 {
		t.Errorf("read after error = %d", v)
	}
	if v := r.Blob(); v != nil {
		t.Errorf("blob after error = %v", v)
	}
}

// TestBlobLengthBomb: a blob whose claimed length exceeds the remaining
// bytes errors instead of allocating the claimed size.
func TestBlobLengthBomb(t *testing.T) {
	var w Writer
	w.U64(1 << 50) // claimed length, no payload
	r := NewReader(w.Bytes())
	if v := r.Blob(); v != nil {
		t.Errorf("bomb blob = %v", v)
	}
	if r.Err() == nil {
		t.Fatal("oversized blob length not reported")
	}
}
