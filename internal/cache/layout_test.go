package cache

import "testing"

// nullLevel satisfies Level for caches that never miss in these tests.
type nullLevel struct{}

func (nullLevel) ReadLine(pa uint32, dst []byte) int  { return 1 }
func (nullLevel) WriteLine(pa uint32, src []byte) int { return 1 }

// TestFlipBitColumnLayout pins the injectable column layout that the
// forensics tracker's cell classification depends on:
//
//	col 0              valid
//	col 1              dirty
//	cols 2..StateBits-1 tag (bit col-2)
//	cols StateBits..    data (byte (col-StateBits)/8, bit (col-StateBits)%8)
//
// If FlipBit and StateBits/Cols ever disagree, fate classification silently
// mislabels tag faults as data faults, so this test is deliberately literal.
func TestFlipBitColumnLayout(t *testing.T) {
	c := New(Config{Name: "L1D", Size: 512, Ways: 2, LineSize: 32, Latency: 1, PABits: 16}, nullLevel{})
	// 16 lines, 8 sets; offBits=5, setBits=3 => tagBits = 16-5-3 = 8.
	wantState := 2 + 8
	if got := c.StateBits(); got != wantState {
		t.Fatalf("StateBits() = %d, want %d", got, wantState)
	}
	if got, want := c.Cols(), wantState+32*8; got != want {
		t.Fatalf("Cols() = %d, want %d", got, want)
	}

	const row = 3
	tag0, valid0, dirty0, data := c.LineState(row)
	orig := make([]byte, len(data))
	copy(orig, data)

	check := func(desc string, same bool) {
		t.Helper()
		if !same {
			t.Errorf("%s: unexpected state change", desc)
		}
	}

	// col 0: valid only.
	c.FlipBit(row, 0)
	tag, valid, dirty, data := c.LineState(row)
	if valid == valid0 {
		t.Error("col 0 did not toggle the valid bit")
	}
	check("col 0", tag == tag0 && dirty == dirty0 && bytesEqual(data, orig))
	c.FlipBit(row, 0)

	// col 1: dirty only.
	c.FlipBit(row, 1)
	tag, valid, dirty, data = c.LineState(row)
	if dirty == dirty0 {
		t.Error("col 1 did not toggle the dirty bit")
	}
	check("col 1", tag == tag0 && valid == valid0 && bytesEqual(data, orig))
	c.FlipBit(row, 1)

	// Every tag column: col k toggles tag bit k-2, nothing else.
	for col := 2; col < c.StateBits(); col++ {
		c.FlipBit(row, col)
		tag, valid, dirty, data = c.LineState(row)
		if tag != tag0^(1<<(col-2)) {
			t.Errorf("col %d: tag = %#x, want %#x", col, tag, tag0^(1<<(col-2)))
		}
		check("tag col", valid == valid0 && dirty == dirty0 && bytesEqual(data, orig))
		c.FlipBit(row, col)
	}

	// Data columns: first bit, a mid-line bit, and the very last bit.
	for _, col := range []int{c.StateBits(), c.StateBits() + 13*8 + 5, c.Cols() - 1} {
		bit := col - c.StateBits()
		c.FlipBit(row, col)
		tag, valid, dirty, data = c.LineState(row)
		if data[bit/8] != orig[bit/8]^(1<<(bit%8)) {
			t.Errorf("col %d: data byte %d = %#x, want %#x",
				col, bit/8, data[bit/8], orig[bit/8]^(1<<(bit%8)))
		}
		for i := range data {
			if i != bit/8 && data[i] != orig[i] {
				t.Errorf("col %d also changed data byte %d", col, i)
			}
		}
		check("data col", tag == tag0 && valid == valid0 && dirty == dirty0)
		c.FlipBit(row, col)
	}

	// Double flip restored everything.
	tag, valid, dirty, data = c.LineState(row)
	if tag != tag0 || valid != valid0 || dirty != dirty0 || !bytesEqual(data, orig) {
		t.Error("double flips did not restore the original line state")
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
