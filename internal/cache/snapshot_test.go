package cache

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"mbusim/internal/mem"
)

func snapTestCache() (*Cache, *mem.RAM) {
	ram := mem.NewRAM(1 << 20)
	c := New(Config{Name: "L1D", Size: 4 << 10, Ways: 4, LineSize: 64, Latency: 2, PABits: 20}, ram)
	return c, ram
}

// fill drives a deterministic access pattern that leaves a mix of valid,
// dirty and invalid lines behind.
func fillCache(c *Cache) {
	rng := rand.New(rand.NewPCG(42, 42))
	for i := 0; i < 200; i++ {
		pa := rng.Uint32N(1 << 18 & ^uint32(3))
		pa &^= 3
		if i%3 == 0 {
			c.WriteWord(pa, rng.Uint32())
		} else {
			c.ReadWord(pa)
		}
	}
}

func TestCacheSnapshotRoundTrip(t *testing.T) {
	c, _ := snapTestCache()
	fillCache(c)
	s := c.Snapshot()
	want := make([]line, len(c.lines))
	copy(want, c.lines)
	for i := range want {
		want[i].data = append([]byte(nil), c.lines[i].data...)
	}
	wantClock, wantHits, wantMisses, wantWB := c.useClock, c.Hits, c.Misses, c.Writebacks

	// Dirty the cache, then restore.
	fillCache(c)
	c.FlipBit(0, 0)
	c.Restore(s)

	if c.useClock != wantClock || c.Hits != wantHits || c.Misses != wantMisses || c.Writebacks != wantWB {
		t.Fatal("restored counters differ")
	}
	for i := range want {
		ln := &c.lines[i]
		if ln.tag != want[i].tag || ln.valid != want[i].valid ||
			ln.dirty != want[i].dirty || ln.lastUse != want[i].lastUse ||
			!reflect.DeepEqual(ln.data, want[i].data) {
			t.Fatalf("line %d differs after restore", i)
		}
	}
}

func TestCacheSnapshotNoAliasing(t *testing.T) {
	c, _ := snapTestCache()
	fillCache(c)
	s := c.Snapshot()

	// Mutating a restored cache must not reach back into the snapshot.
	c2, _ := snapTestCache()
	c2.Restore(s)
	for col := 0; col < c2.Cols(); col++ {
		c2.FlipBit(0, col)
	}
	c2.useClock += 1000

	c3, _ := snapTestCache()
	c3.Restore(s)
	tag2, v2, d2, data2 := c2.LineState(0)
	tag3, v3, d3, data3 := c3.LineState(0)
	if tag2 == tag3 && v2 == v3 && d2 == d3 && reflect.DeepEqual(data2, data3) {
		t.Fatal("mutation of restored cache did not change its own line 0")
	}
	// c3 must match the original snapshotted state.
	tag0, v0, d0, data0 := c.LineState(0)
	if tag3 != tag0 || v3 != v0 || d3 != d0 || !reflect.DeepEqual(data3, data0) {
		t.Fatal("snapshot mutated through a restored cache")
	}
}

func TestCacheSnapshotGeometryMismatchPanics(t *testing.T) {
	c, _ := snapTestCache()
	s := c.Snapshot()
	other := New(Config{Name: "L2", Size: 8 << 10, Ways: 4, LineSize: 64, Latency: 8, PABits: 20}, mem.NewRAM(1<<20))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched geometry")
		}
	}()
	other.Restore(s)
}

// TestCacheDeltaRestoreRoundTrip pins the dirty-tracking contract: after
// arming at a snapshot-equal state, accesses, refills, fault flips and
// full flushes are all rewound exactly by RestoreDirty, repeatedly.
func TestCacheDeltaRestoreRoundTrip(t *testing.T) {
	c, _ := snapTestCache()
	fillCache(c)
	s := c.Snapshot()

	c.TrackDirty()
	for round := 0; round < 3; round++ {
		fillCache(c) // hits, misses, refills, evictions
		c.FlipBit(2, 5)
		c.FlipBit(0, c.Cols()-1)
		if round == 1 {
			c.FlushAll()
		}
		c.RestoreDirty(s)
		if !c.EqualsSnapshot(s) {
			t.Fatalf("round %d: EqualsSnapshot false after delta restore", round)
		}
		if !reflect.DeepEqual(c.Snapshot(), s) {
			t.Fatalf("round %d: delta-restored cache re-snapshots differently", round)
		}
	}

	// Untracked cache: RestoreDirty falls back to a full restore and arms.
	c2, _ := snapTestCache()
	fillCache(c2)
	c2.RestoreDirty(s)
	if !reflect.DeepEqual(c2.Snapshot(), s) {
		t.Fatal("untracked RestoreDirty fallback differs from the snapshot")
	}
	c2.FlipBit(1, 1)
	c2.RestoreDirty(s)
	if !reflect.DeepEqual(c2.Snapshot(), s) {
		t.Fatal("armed-by-fallback delta restore differs from the snapshot")
	}
}

// TestCacheDeltaRestoreNoAliasing: mutating a delta-restored cache never
// reaches back into the snapshot.
func TestCacheDeltaRestoreNoAliasing(t *testing.T) {
	c, _ := snapTestCache()
	fillCache(c)
	s := c.Snapshot()

	c.TrackDirty()
	c.FlipBit(0, 3)
	c.RestoreDirty(s)
	for col := 0; col < c.Cols(); col++ {
		c.FlipBit(0, col) // mutate after the delta restore
	}

	c3, _ := snapTestCache()
	c3.Restore(s)
	if !c3.EqualsSnapshot(s) {
		t.Fatal("snapshot mutated through a delta-restored cache")
	}
}

// TestCacheEqualsSnapshot: the equality check accepts the snapshotted
// state and rejects flipped bits and perturbed counters.
func TestCacheEqualsSnapshot(t *testing.T) {
	c, _ := snapTestCache()
	fillCache(c)
	s := c.Snapshot()
	if !c.EqualsSnapshot(s) {
		t.Fatal("cache does not equal its own snapshot")
	}
	c.FlipBit(3, 0)
	if c.EqualsSnapshot(s) {
		t.Fatal("EqualsSnapshot missed a flipped bit")
	}
	c.FlipBit(3, 0)
	if !c.EqualsSnapshot(s) {
		t.Fatal("EqualsSnapshot false after undoing the flip")
	}
	c.Hits++
	if c.EqualsSnapshot(s) {
		t.Fatal("EqualsSnapshot missed a perturbed hit counter")
	}
}
