package cache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"mbusim/internal/mem"
)

func newTestCache(size, ways int) (*Cache, *mem.RAM) {
	ram := mem.NewRAM(1 << 20)
	c := New(Config{Name: "T", Size: size, Ways: ways, LineSize: 64, Latency: 2, PABits: 20}, ram)
	return c, ram
}

func TestReadWriteThrough(t *testing.T) {
	c, ram := newTestCache(4096, 4)
	c.WriteWord(0x100, 0xDEADBEEF)
	v, _ := c.ReadWord(0x100)
	if v != 0xDEADBEEF {
		t.Fatalf("read back %#x", v)
	}
	// Write-back: RAM must not see it until eviction or flush.
	if ram.ReadWord(0x100) == 0xDEADBEEF {
		t.Fatal("write-through behaviour, want write-back")
	}
	c.FlushAll()
	if ram.ReadWord(0x100) != 0xDEADBEEF {
		t.Fatal("flush did not write back")
	}
}

func TestMissLatencyHigherThanHit(t *testing.T) {
	c, _ := newTestCache(4096, 4)
	var b [4]byte
	missLat := c.Read(0x2000, b[:])
	hitLat := c.Read(0x2000, b[:])
	if missLat <= hitLat {
		t.Fatalf("miss lat %d <= hit lat %d", missLat, hitLat)
	}
	if hitLat != 2 {
		t.Fatalf("hit lat %d, want 2", hitLat)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	c, ram := newTestCache(1024, 2) // 8 sets, 2 ways
	// Three lines mapping to the same set (stride = sets*lineSize = 512).
	c.WriteWord(0x0000, 1)
	c.WriteWord(0x0200, 2)
	c.WriteWord(0x0400, 3) // evicts the LRU dirty line 0x0000
	if ram.ReadWord(0x0000) != 1 {
		t.Fatal("evicted dirty line not written back")
	}
	v, _ := c.ReadWord(0x0000) // refill
	if v != 1 {
		t.Fatalf("refill got %d", v)
	}
}

func TestLRUOrder(t *testing.T) {
	c, _ := newTestCache(1024, 2)
	var b [4]byte
	c.Read(0x0000, b[:]) // way A
	c.Read(0x0200, b[:]) // way B
	c.Read(0x0000, b[:]) // touch A: B is now LRU
	c.Read(0x0400, b[:]) // evicts B
	c.Misses = 0
	c.Read(0x0000, b[:])
	if c.Misses != 0 {
		t.Fatal("recently used line was evicted")
	}
	c.Read(0x0200, b[:])
	if c.Misses != 1 {
		t.Fatal("LRU line was not evicted")
	}
}

func TestTwoLevelHierarchy(t *testing.T) {
	ram := mem.NewRAM(1 << 20)
	l2 := New(Config{Name: "L2", Size: 16384, Ways: 8, LineSize: 64, Latency: 8, PABits: 20}, ram)
	l1 := New(Config{Name: "L1", Size: 2048, Ways: 2, LineSize: 64, Latency: 2, PABits: 20}, l2)
	l1.WriteWord(0x3000, 42)
	// Force eviction from L1 by filling the set.
	for i := uint32(1); i <= 2; i++ {
		l1.WriteWord(0x3000+i*1024, uint32(i))
	}
	// The value must now be in L2 (dirty), not RAM.
	if ram.ReadWord(0x3000) == 42 {
		t.Fatal("L1 eviction skipped L2")
	}
	v, _ := l1.ReadWord(0x3000)
	if v != 42 {
		t.Fatalf("reload through L2 got %d", v)
	}
}

func TestGeometry(t *testing.T) {
	c, _ := newTestCache(8192, 4) // 128 lines
	if c.Rows() != 128 {
		t.Fatalf("rows = %d", c.Rows())
	}
	// 20 PA bits, 64B line (6), 32 sets (5) -> 9 tag bits; +2 state.
	if c.StateBits() != 11 {
		t.Fatalf("state bits = %d", c.StateBits())
	}
	if c.Cols() != 11+64*8 {
		t.Fatalf("cols = %d", c.Cols())
	}
}

func TestFlipDataBitChangesRead(t *testing.T) {
	c, _ := newTestCache(4096, 4)
	c.WriteWord(0x0, 0)
	// Find the row holding PA 0 by flipping and reading.
	tagBits := c.StateBits()
	for row := 0; row < c.Rows(); row++ {
		_, valid, _, _ := c.LineState(row)
		if valid {
			c.FlipBit(row, tagBits) // first data bit = bit 0 of byte 0
			v, _ := c.ReadWord(0x0)
			if v != 1 {
				t.Fatalf("after flip read %#x, want 1", v)
			}
			return
		}
	}
	t.Fatal("no valid line found")
}

func TestFlipValidBitInvalidatesLine(t *testing.T) {
	c, ram := newTestCache(4096, 4)
	ram.WriteWord(0x40, 7)
	c.ReadWord(0x40)
	row := -1
	for r := 0; r < c.Rows(); r++ {
		if _, valid, _, _ := c.LineState(r); valid {
			row = r
			break
		}
	}
	c.FlipBit(row, 0) // valid off
	c.Misses = 0
	v, _ := c.ReadWord(0x40)
	if v != 7 || c.Misses != 1 {
		t.Fatalf("invalidated line should refill: v=%d misses=%d", v, c.Misses)
	}
}

func TestFlipDirtyBitLosesUpdate(t *testing.T) {
	c, ram := newTestCache(1024, 2)
	c.WriteWord(0x0, 99)
	row := -1
	for r := 0; r < c.Rows(); r++ {
		if _, valid, dirty, _ := c.LineState(r); valid && dirty {
			row = r
			break
		}
	}
	c.FlipBit(row, 1) // dirty off: the write is silently lost
	c.FlushAll()
	if ram.ReadWord(0x0) == 99 {
		t.Fatal("cleared dirty bit still wrote back")
	}
}

func TestFlipTagBitAliases(t *testing.T) {
	c, _ := newTestCache(1024, 2) // 8 sets: tag stride 512
	c.WriteWord(0x0, 5)
	row := -1
	for r := 0; r < c.Rows(); r++ {
		if _, valid, _, _ := c.LineState(r); valid {
			row = r
			break
		}
	}
	c.FlipBit(row, 2) // lowest tag bit: line now claims PA 0x200
	c.Misses = 0
	v, _ := c.ReadWord(0x200) // false hit with stale data
	if c.Misses != 0 {
		t.Fatal("expected a false hit on the aliased tag")
	}
	if v != 5 {
		t.Fatalf("aliased read got %d", v)
	}
}

func TestOccupancy(t *testing.T) {
	c, _ := newTestCache(4096, 4)
	if c.Occupancy() != 0 {
		t.Fatal("new cache not empty")
	}
	var b [4]byte
	for i := uint32(0); i < 16; i++ {
		c.Read(i*64, b[:])
	}
	if got := c.Occupancy(); got != 16.0/64.0 {
		t.Fatalf("occupancy = %f", got)
	}
}

// TestCacheCoherentWithRAMModel is a property test: a random sequence of
// reads and writes through the cache behaves exactly like a flat memory.
func TestCacheCoherentWithRAMModel(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		ram := mem.NewRAM(1 << 16)
		c := New(Config{Name: "T", Size: 1024, Ways: 2, LineSize: 32, Latency: 1, PABits: 16}, ram)
		model := make([]byte, 1<<16)
		for op := 0; op < 500; op++ {
			pa := rng.Uint32() % (1 << 16)
			pa &^= 3
			if pa > 1<<16-4 {
				pa = 1<<16 - 4
			}
			if rng.IntN(2) == 0 {
				v := rng.Uint32()
				c.WriteWord(pa, v)
				model[pa] = byte(v)
				model[pa+1] = byte(v >> 8)
				model[pa+2] = byte(v >> 16)
				model[pa+3] = byte(v >> 24)
			} else {
				v, _ := c.ReadWord(pa)
				want := uint32(model[pa]) | uint32(model[pa+1])<<8 |
					uint32(model[pa+2])<<16 | uint32(model[pa+3])<<24
				if v != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFlipBitOutOfRangePanics(t *testing.T) {
	c, _ := newTestCache(1024, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.FlipBit(c.Rows(), 0)
}

func TestCrossLineAccessAsserts(t *testing.T) {
	c, _ := newTestCache(1024, 2)
	defer func() {
		if _, ok := recover().(mem.AssertError); !ok {
			t.Fatal("expected AssertError")
		}
	}()
	buf := make([]byte, 8)
	c.Read(60, buf) // crosses the 64B boundary
}
