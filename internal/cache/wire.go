package cache

import (
	"fmt"

	"mbusim/internal/wire"
)

// EncodeWire appends the snapshot's complete state to w in the artifact
// wire format (field order versioned by sim.SnapshotFormat).
func (s *Snapshot) EncodeWire(w *wire.Writer) {
	w.Int(len(s.tags))
	for _, t := range s.tags {
		w.U32(t)
	}
	w.Blob(s.flags)
	for _, u := range s.lastUse {
		w.U64(u)
	}
	w.Blob(s.data)
	w.U64(s.useClock)
	w.U64(s.hits)
	w.U64(s.misses)
	w.U64(s.writebacks)
}

// maxWireLines bounds the line count a decoded cache snapshot may claim,
// far above any simulated geometry, so a corrupt length cannot drive a
// giant allocation before the structural checks run.
const maxWireLines = 1 << 20

// DecodeSnapshotWire reads a snapshot encoded by EncodeWire.
func DecodeSnapshotWire(r *wire.Reader) (*Snapshot, error) {
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > maxWireLines {
		return nil, fmt.Errorf("cache: snapshot line count %d out of range", n)
	}
	s := &Snapshot{
		tags:    make([]uint32, n),
		lastUse: make([]uint64, n),
	}
	for i := range s.tags {
		s.tags[i] = r.U32()
	}
	s.flags = r.Blob()
	for i := range s.lastUse {
		s.lastUse[i] = r.U64()
	}
	s.data = r.Blob()
	s.useClock = r.U64()
	s.hits = r.U64()
	s.misses = r.U64()
	s.writebacks = r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(s.flags) != n {
		return nil, fmt.Errorf("cache: snapshot flags length %d, want %d", len(s.flags), n)
	}
	if n > 0 && len(s.data)%n != 0 {
		return nil, fmt.Errorf("cache: snapshot data length %d not a multiple of %d lines", len(s.data), n)
	}
	return s, nil
}
