// Package cache implements set-associative write-back caches with
// bit-accurate, fault-injectable storage.
//
// Every line carries its real state: tag bits, a valid bit, a dirty bit and
// the data bytes. The cache is the only holder of that state — there is no
// shadow "functional" memory — so a flipped bit genuinely changes what the
// simulated program reads, exactly as in the paper's gem5/GeFIN setup.
//
// For fault injection the cache exposes a two-dimensional bit geometry
// matching a physical SRAM array: one row per line (rows ordered set-major,
// ways adjacent, so a 3x3 spatial cluster can straddle neighbouring lines),
// and columns laid out as
//
//	col 0:            valid bit
//	col 1:            dirty bit
//	cols 2..2+T-1:    tag bits (T = tag width for the configured geometry)
//	cols 2+T..:       data bits, byte 0 bit 0 first
package cache

import (
	"fmt"
	"math/bits"

	"mbusim/internal/mem"
)

// Probe observes the cache's bit-level accesses for fault forensics. Every
// method corresponds to a hardware event that consults or rewrites stored
// bits; implementations must not mutate cache state. A nil probe (the
// default) costs one pointer compare per event.
//
// Lookup models the parallel tag read of a set-associative SRAM: a single
// access consults the valid and tag bits of every way in the set, so a
// corrupted metadata bit anywhere in the probed set counts as read.
type Probe interface {
	// OnLookup fires when an access probes a set (valid + tag bits of all
	// ways consulted), before any fill it may trigger.
	OnLookup(set uint32)
	// OnReadData fires when n data bytes at byte offset off of the line at
	// row enter the datapath.
	OnReadData(row, off, n int)
	// OnWriteData fires when n data bytes at byte offset off of the line at
	// row are overwritten (the dirty bit is set as a side effect).
	OnWriteData(row, off, n int)
	// OnEvict fires when the line at row is chosen as a fill victim (its
	// valid + dirty bits are consulted to decide on a writeback).
	OnEvict(row int)
	// OnWriteback fires when the dirty line at row is written to the lower
	// level: its tag bits form the address and its data bytes escape.
	OnWriteback(row int)
	// OnFill fires after the line at row has been refilled from the lower
	// level (tag/valid/dirty/data all rewritten).
	OnFill(row int)
}

// Level is a lower memory level the cache fills from and writes back to:
// either another Cache or the physical RAM.
type Level interface {
	// ReadLine fills dst with the line at pa and returns the latency.
	ReadLine(pa uint32, dst []byte) int
	// WriteLine writes the line at pa and returns the latency.
	WriteLine(pa uint32, src []byte) int
}

// Config describes a cache geometry.
type Config struct {
	Name     string
	Size     int // total bytes
	Ways     int
	LineSize int // bytes
	Latency  int // hit latency in cycles
	PABits   int // physical address width, determines stored tag width
}

type line struct {
	tag     uint32
	valid   bool
	dirty   bool
	lastUse uint64
	data    []byte
}

// Cache is a single cache level. It is not safe for concurrent use; each
// simulated machine owns its own hierarchy.
type Cache struct {
	cfg      Config
	sets     int
	setShift uint // log2(LineSize)
	setMask  uint32
	tagBits  int
	tagMask  uint32
	lines    []line // sets*ways, set-major
	next     Level
	useClock uint64
	probe    Probe

	// Dirty tracking for delta restore: when armed (TrackDirty), every
	// mutated row lands in dirtyRows exactly once and RestoreDirty rewinds
	// only those rows. Disarmed by default.
	track     bool
	rowDirty  []bool
	dirtyRows []int32

	// Statistics.
	Hits, Misses, Writebacks uint64
}

// New builds a cache over the given lower level. It panics on an invalid
// geometry (non power-of-two sizes), which is a programming error.
func New(cfg Config, next Level) *Cache {
	if cfg.LineSize <= 0 || cfg.Ways <= 0 || cfg.Size <= 0 {
		panic("cache: invalid config")
	}
	numLines := cfg.Size / cfg.LineSize
	sets := numLines / cfg.Ways
	if numLines*cfg.LineSize != cfg.Size || sets*cfg.Ways != numLines ||
		sets&(sets-1) != 0 || cfg.LineSize&(cfg.LineSize-1) != 0 {
		panic("cache: geometry must be power of two")
	}
	if cfg.PABits <= 0 {
		cfg.PABits = 25 // 32 MB default physical space
	}
	offBits := bits.TrailingZeros(uint(cfg.LineSize))
	setBits := bits.TrailingZeros(uint(sets))
	tagBits := cfg.PABits - offBits - setBits
	if tagBits < 1 {
		tagBits = 1
	}
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: uint(offBits),
		setMask:  uint32(sets - 1),
		tagBits:  tagBits,
		tagMask:  uint32(1)<<tagBits - 1,
		lines:    make([]line, numLines),
		next:     next,
	}
	data := make([]byte, numLines*cfg.LineSize)
	for i := range c.lines {
		c.lines[i].data = data[i*cfg.LineSize : (i+1)*cfg.LineSize : (i+1)*cfg.LineSize]
	}
	return c
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetProbe installs (or removes, with nil) the forensics probe.
func (c *Cache) SetProbe(p Probe) { c.probe = p }

func (c *Cache) set(pa uint32) uint32 { return pa >> c.setShift & c.setMask }
func (c *Cache) tag(pa uint32) uint32 {
	return pa >> (c.setShift + uint(bits.TrailingZeros(uint(c.sets)))) & c.tagMask
}

// addrOf reconstructs the base physical address of a line from its set and
// stored tag. A corrupted tag reconstructs a different — possibly unmapped —
// address, which is how tag faults turn into wrong-data hits, lost updates
// or assertion failures on writeback.
func (c *Cache) addrOf(set, tag uint32) uint32 {
	setBits := uint(bits.TrailingZeros(uint(c.sets)))
	return tag<<(c.setShift+setBits) | set<<c.setShift
}

// lookup returns the way index holding pa, or -1.
func (c *Cache) lookup(set, tag uint32) int {
	base := int(set) * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			return w
		}
	}
	return -1
}

// victim picks the LRU way in the set, preferring invalid lines.
func (c *Cache) victim(set uint32) int {
	base := int(set) * c.cfg.Ways
	best, bestUse := 0, ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if !ln.valid {
			return w
		}
		if ln.lastUse < bestUse {
			best, bestUse = w, ln.lastUse
		}
	}
	return best
}

// fill brings the line containing pa into the cache and returns (way,
// latency). Dirty victims are written back to the lower level first.
func (c *Cache) fill(set, tag uint32, pa uint32) (int, int) {
	w := c.victim(set)
	row := int(set)*c.cfg.Ways + w
	ln := &c.lines[row]
	lat := 0
	if c.probe != nil {
		c.probe.OnEvict(row)
	}
	if ln.valid && ln.dirty {
		// Probe before the write: a corrupted tag can reconstruct an
		// unmapped address and abort the run inside WriteLine.
		if c.probe != nil {
			c.probe.OnWriteback(row)
		}
		lat += c.next.WriteLine(c.addrOf(set, ln.tag), ln.data)
		c.Writebacks++
	}
	lineBase := pa &^ uint32(c.cfg.LineSize-1)
	lat += c.next.ReadLine(lineBase, ln.data)
	c.markRow(row)
	ln.tag = tag
	ln.valid = true
	ln.dirty = false
	if c.probe != nil {
		c.probe.OnFill(row)
	}
	return w, lat
}

// markRow records row as mutated since TrackDirty was armed.
func (c *Cache) markRow(row int) {
	if c.track && !c.rowDirty[row] {
		c.rowDirty[row] = true
		c.dirtyRows = append(c.dirtyRows, int32(row))
	}
}

func (c *Cache) touch(set uint32, way int) *line {
	c.useClock++
	row := int(set)*c.cfg.Ways + way
	c.markRow(row)
	ln := &c.lines[row]
	ln.lastUse = c.useClock
	return ln
}

// Read copies len(dst) bytes at pa into dst, filling on miss, and returns
// the total latency in cycles. The access must not cross a line boundary.
func (c *Cache) Read(pa uint32, dst []byte) int {
	set, tag := c.set(pa), c.tag(pa)
	off := int(pa) & (c.cfg.LineSize - 1)
	if off+len(dst) > c.cfg.LineSize {
		// Inline the assert so the hot path never boxes arguments.
		mem.Assertf(false, "%s: access %#x+%d crosses line boundary", c.cfg.Name, pa, len(dst))
	}
	lat := c.cfg.Latency
	if c.probe != nil {
		c.probe.OnLookup(set)
	}
	w := c.lookup(set, tag)
	if w < 0 {
		c.Misses++
		var fillLat int
		w, fillLat = c.fill(set, tag, pa)
		lat += fillLat
	} else {
		c.Hits++
	}
	ln := c.touch(set, w)
	if c.probe != nil {
		c.probe.OnReadData(int(set)*c.cfg.Ways+w, off, len(dst))
	}
	copy(dst, ln.data[off:])
	return lat
}

// Write stores src at pa (write-allocate, write-back) and returns the
// latency in cycles.
func (c *Cache) Write(pa uint32, src []byte) int {
	set, tag := c.set(pa), c.tag(pa)
	off := int(pa) & (c.cfg.LineSize - 1)
	if off+len(src) > c.cfg.LineSize {
		mem.Assertf(false, "%s: access %#x+%d crosses line boundary", c.cfg.Name, pa, len(src))
	}
	lat := c.cfg.Latency
	if c.probe != nil {
		c.probe.OnLookup(set)
	}
	w := c.lookup(set, tag)
	if w < 0 {
		c.Misses++
		var fillLat int
		w, fillLat = c.fill(set, tag, pa)
		lat += fillLat
	} else {
		c.Hits++
	}
	ln := c.touch(set, w)
	if c.probe != nil {
		c.probe.OnWriteData(int(set)*c.cfg.Ways+w, off, len(src))
	}
	copy(ln.data[off:], src)
	ln.dirty = true
	return lat
}

// ReadLine implements Level so a Cache can serve as the lower level of
// another cache (L1 -> L2).
func (c *Cache) ReadLine(pa uint32, dst []byte) int { return c.Read(pa, dst) }

// WriteLine implements Level.
func (c *Cache) WriteLine(pa uint32, src []byte) int { return c.Write(pa, src) }

// ReadWord reads an aligned 32-bit word through the cache.
func (c *Cache) ReadWord(pa uint32) (uint32, int) {
	var b [4]byte
	lat := c.Read(pa, b[:])
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24, lat
}

// WriteWord writes an aligned 32-bit word through the cache.
func (c *Cache) WriteWord(pa uint32, v uint32) int {
	b := [4]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)}
	return c.Write(pa, b[:])
}

// FlushAll writes back every dirty line (used by tests to inspect RAM).
func (c *Cache) FlushAll() {
	for i := range c.lines {
		ln := &c.lines[i]
		if ln.valid && ln.dirty {
			set := uint32(i / c.cfg.Ways)
			if c.probe != nil {
				c.probe.OnWriteback(i)
			}
			c.next.WriteLine(c.addrOf(set, ln.tag), ln.data)
			c.markRow(i)
			ln.dirty = false
		}
	}
}

// --- Fault-injection geometry (core.Target implementation) ---

// Name returns the component name used by the fault injector.
func (c *Cache) Name() string { return c.cfg.Name }

// Rows returns the number of SRAM rows (one per line).
func (c *Cache) Rows() int { return len(c.lines) }

// Cols returns the number of bit columns per row: valid + dirty + tag bits
// + data bits.
func (c *Cache) Cols() int { return 2 + c.tagBits + c.cfg.LineSize*8 }

// StateBits returns the number of metadata columns before the data bits.
func (c *Cache) StateBits() int { return 2 + c.tagBits }

// FlipBit flips one stored bit. Out-of-range coordinates are a programming
// error in the injector and panic.
func (c *Cache) FlipBit(row, col int) {
	if row < 0 || row >= len(c.lines) || col < 0 || col >= c.Cols() {
		panic(fmt.Sprintf("cache %s: FlipBit(%d,%d) out of range", c.cfg.Name, row, col))
	}
	c.markRow(row)
	ln := &c.lines[row]
	switch {
	case col == 0:
		ln.valid = !ln.valid
	case col == 1:
		ln.dirty = !ln.dirty
	case col < 2+c.tagBits:
		ln.tag ^= 1 << (col - 2)
	default:
		bit := col - 2 - c.tagBits
		ln.data[bit/8] ^= 1 << (bit % 8)
	}
}

// Occupancy returns the fraction of valid lines (diagnostics and tests).
func (c *Cache) Occupancy() float64 {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return float64(n) / float64(len(c.lines))
}

// DirtyFraction returns the fraction of lines that are valid and dirty.
func (c *Cache) DirtyFraction() float64 {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid && c.lines[i].dirty {
			n++
		}
	}
	return float64(n) / float64(len(c.lines))
}

// LineState reports the state of a line by row index (test use).
func (c *Cache) LineState(row int) (tag uint32, valid, dirty bool, data []byte) {
	ln := &c.lines[row]
	return ln.tag, ln.valid, ln.dirty, ln.data
}
