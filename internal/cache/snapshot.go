package cache

// Snapshot is a deep copy of a cache's mutable state: every line's tag,
// state bits, LRU stamp and data, plus the use clock and access counters.
// It is immutable once taken and can be restored into any cache with the
// same geometry any number of times.
type Snapshot struct {
	tags     []uint32
	flags    []uint8 // bit 0 valid, bit 1 dirty
	lastUse  []uint64
	data     []byte // all lines concatenated, line order
	useClock uint64

	hits, misses, writebacks uint64
}

// Snapshot captures the full cache state.
func (c *Cache) Snapshot() *Snapshot {
	n := len(c.lines)
	s := &Snapshot{
		tags:       make([]uint32, n),
		flags:      make([]uint8, n),
		lastUse:    make([]uint64, n),
		data:       make([]byte, n*c.cfg.LineSize),
		useClock:   c.useClock,
		hits:       c.Hits,
		misses:     c.Misses,
		writebacks: c.Writebacks,
	}
	for i := range c.lines {
		ln := &c.lines[i]
		s.tags[i] = ln.tag
		if ln.valid {
			s.flags[i] |= 1
		}
		if ln.dirty {
			s.flags[i] |= 2
		}
		s.lastUse[i] = ln.lastUse
		copy(s.data[i*c.cfg.LineSize:], ln.data)
	}
	return s
}

// Restore overwrites the cache state with the snapshot's. The cache must
// have the geometry the snapshot was taken from; a mismatch is a
// programming error and panics.
func (c *Cache) Restore(s *Snapshot) {
	if len(s.tags) != len(c.lines) || len(s.data) != len(c.lines)*c.cfg.LineSize {
		panic("cache: restore into mismatched geometry")
	}
	for i := range c.lines {
		ln := &c.lines[i]
		ln.tag = s.tags[i]
		ln.valid = s.flags[i]&1 != 0
		ln.dirty = s.flags[i]&2 != 0
		ln.lastUse = s.lastUse[i]
		copy(ln.data, s.data[i*c.cfg.LineSize:])
	}
	c.useClock = s.useClock
	c.Hits = s.hits
	c.Misses = s.misses
	c.Writebacks = s.writebacks
}
