package cache

import "bytes"

// Snapshot is a deep copy of a cache's mutable state: every line's tag,
// state bits, LRU stamp and data, plus the use clock and access counters.
// It is immutable once taken and can be restored into any cache with the
// same geometry any number of times.
type Snapshot struct {
	tags     []uint32
	flags    []uint8 // bit 0 valid, bit 1 dirty
	lastUse  []uint64
	data     []byte // all lines concatenated, line order
	useClock uint64

	hits, misses, writebacks uint64
}

// Snapshot captures the full cache state.
func (c *Cache) Snapshot() *Snapshot {
	n := len(c.lines)
	s := &Snapshot{
		tags:       make([]uint32, n),
		flags:      make([]uint8, n),
		lastUse:    make([]uint64, n),
		data:       make([]byte, n*c.cfg.LineSize),
		useClock:   c.useClock,
		hits:       c.Hits,
		misses:     c.Misses,
		writebacks: c.Writebacks,
	}
	for i := range c.lines {
		ln := &c.lines[i]
		s.tags[i] = ln.tag
		if ln.valid {
			s.flags[i] |= 1
		}
		if ln.dirty {
			s.flags[i] |= 2
		}
		s.lastUse[i] = ln.lastUse
		copy(s.data[i*c.cfg.LineSize:], ln.data)
	}
	return s
}

// Restore overwrites the cache state with the snapshot's. The cache must
// have the geometry the snapshot was taken from; a mismatch is a
// programming error and panics.
func (c *Cache) Restore(s *Snapshot) {
	if len(s.tags) != len(c.lines) || len(s.data) != len(c.lines)*c.cfg.LineSize {
		panic("cache: restore into mismatched geometry")
	}
	for i := range c.lines {
		ln := &c.lines[i]
		ln.tag = s.tags[i]
		ln.valid = s.flags[i]&1 != 0
		ln.dirty = s.flags[i]&2 != 0
		ln.lastUse = s.lastUse[i]
		copy(ln.data, s.data[i*c.cfg.LineSize:])
	}
	c.useClock = s.useClock
	c.Hits = s.hits
	c.Misses = s.misses
	c.Writebacks = s.writebacks
}

// EqualsSnapshot reports whether the cache state bit-equals the snapshot
// (convergence-exit support). The use clock and access counters are checked
// first: any access perturbs them, so a diverged cache almost always fails
// without touching the line arrays.
func (c *Cache) EqualsSnapshot(s *Snapshot) bool {
	if len(s.tags) != len(c.lines) || len(s.data) != len(c.lines)*c.cfg.LineSize {
		return false
	}
	if c.useClock != s.useClock || c.Hits != s.hits || c.Misses != s.misses ||
		c.Writebacks != s.writebacks {
		return false
	}
	for i := range c.lines {
		ln := &c.lines[i]
		var flags uint8
		if ln.valid {
			flags |= 1
		}
		if ln.dirty {
			flags |= 2
		}
		if ln.tag != s.tags[i] || flags != s.flags[i] || ln.lastUse != s.lastUse[i] {
			return false
		}
		if !bytes.Equal(ln.data, s.data[i*c.cfg.LineSize:(i+1)*c.cfg.LineSize]) {
			return false
		}
	}
	return true
}

// TrackDirty arms dirty tracking: every row mutated from now on (accessed,
// refilled, flushed or fault-flipped) is recorded, and RestoreDirty can
// rewind the cache to the snapshot it currently equals by restoring only
// those rows. Arming (or re-arming) clears the dirty set, so call it only
// when the cache bit-equals the snapshot that RestoreDirty will be given.
func (c *Cache) TrackDirty() {
	if len(c.rowDirty) != len(c.lines) {
		c.rowDirty = make([]bool, len(c.lines))
	} else {
		for _, row := range c.dirtyRows {
			c.rowDirty[row] = false
		}
	}
	c.dirtyRows = c.dirtyRows[:0]
	c.track = true
}

// RestoreDirty rewinds the cache to snapshot s by restoring only the rows
// mutated since TrackDirty was last armed, then re-arms tracking. It is
// only correct when the cache bit-equalled s at arm time; the delta-restore
// layer guarantees that by arming right after a full Restore of the same
// snapshot.
func (c *Cache) RestoreDirty(s *Snapshot) {
	if len(s.tags) != len(c.lines) || len(s.data) != len(c.lines)*c.cfg.LineSize {
		panic("cache: delta restore into mismatched geometry")
	}
	if !c.track {
		c.Restore(s)
		c.TrackDirty()
		return
	}
	for _, row := range c.dirtyRows {
		i := int(row)
		ln := &c.lines[i]
		ln.tag = s.tags[i]
		ln.valid = s.flags[i]&1 != 0
		ln.dirty = s.flags[i]&2 != 0
		ln.lastUse = s.lastUse[i]
		copy(ln.data, s.data[i*c.cfg.LineSize:(i+1)*c.cfg.LineSize])
		c.rowDirty[i] = false
	}
	c.dirtyRows = c.dirtyRows[:0]
	c.useClock = s.useClock
	c.Hits = s.hits
	c.Misses = s.misses
	c.Writebacks = s.writebacks
}
