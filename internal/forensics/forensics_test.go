package forensics

import (
	"testing"

	"mbusim/internal/cache"
	"mbusim/internal/cpu"
	"mbusim/internal/tlb"
)

// fakeLevel is a flat backing store so a cache under test can fill and
// write back without a real memory hierarchy. Fixed-size array: no
// allocations on the hot path, which the zero-alloc test depends on.
type fakeLevel struct {
	mem [1 << 16]byte
}

func (f *fakeLevel) ReadLine(pa uint32, dst []byte) int {
	copy(dst, f.mem[pa:])
	return 1
}

func (f *fakeLevel) WriteLine(pa uint32, src []byte) int {
	copy(f.mem[pa:], src)
	return 1
}

// testCache returns a small cache (8 sets x 2 ways, 16 B lines) plus a
// manual cycle counter the tracker reads.
func testCache(t *testing.T) (*cache.Cache, *fakeLevel) {
	t.Helper()
	return cache.New(cache.Config{
		Name: "L1D", Size: 256, Ways: 2, LineSize: 16, Latency: 1, PABits: 16,
	}, &fakeLevel{}), nil
}

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		err  bool
	}{
		{"off", ModeOff, false}, {"false", ModeOff, false}, {"", ModeOff, false},
		{"fast", ModeFast, false}, {"true", ModeFast, false}, {"on", ModeFast, false},
		{"full", ModeFull, false},
		{"bogus", ModeOff, true},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	for _, m := range []Mode{ModeOff, ModeFast, ModeFull} {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("ParseMode(%v.String()) = %v, %v", m, back, err)
		}
	}
}

func TestFateLabelsStable(t *testing.T) {
	want := map[Fate]string{
		FateNeverTouched: "never-touched",
		FateOverwritten:  "overwritten",
		FateRefilled:     "refilled",
		FateReadMasked:   "read-then-masked",
		FateReadSDC:      "read-then-sdc",
		FateWrittenBack:  "written-back",
		FateDiverged:     "diverged",
	}
	if len(Fates()) != int(NumFates) || len(want) != int(NumFates) {
		t.Fatalf("fate enumeration out of sync: %d fates", len(Fates()))
	}
	seen := map[string]bool{}
	for _, f := range Fates() {
		if f.Label() != want[f] {
			t.Errorf("fate %d label = %q, want %q (wire names are frozen)", f, f.Label(), want[f])
		}
		if seen[f.Label()] {
			t.Errorf("duplicate fate label %q", f.Label())
		}
		seen[f.Label()] = true
	}
}

func TestAttachUnsupportedTarget(t *testing.T) {
	cyc := uint64(0)
	tr := NewTracker(func() uint64 { return cyc })
	if err := tr.Attach(42, nil); err == nil {
		t.Fatal("Attach(int) succeeded; want error")
	}
}

// track arms a tracker over the given mask cells with a settable clock.
func track(t *testing.T, target any, cyc *uint64, cells ...BitCell) *Tracker {
	t.Helper()
	tr := NewTracker(func() uint64 { return *cyc })
	if err := tr.Attach(target, cells); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCacheDataReadFate(t *testing.T) {
	c, _ := testCache(t)
	var buf [4]byte
	c.Read(0x000, buf[:]) // warm row 0 of set 0
	cyc := uint64(100)
	// Flip the first data bit of row 0 (byte 0).
	col := c.StateBits()
	c.FlipBit(0, col)
	tr := track(t, c, &cyc, BitCell{Row: 0, Col: col})

	cyc = 140
	c.Read(0x000, buf[:]) // corrupted byte enters the datapath

	if r := tr.Resolve(false); r.Fate != FateReadSDC || r.FirstTouchLat != 40 {
		t.Errorf("Resolve(false) = %+v; want read-then-sdc at lat 40", r)
	}
	if r := tr.Resolve(true); r.Fate != FateReadMasked {
		t.Errorf("Resolve(true).Fate = %v; want read-then-masked", r.Fate)
	}
}

func TestCacheMetadataConsultedByLookup(t *testing.T) {
	// A tag flip in set 0 must count as read on ANY access probing set 0:
	// the parallel tag compare consults every way. This is what guarantees
	// an SDC caused by a wrong-way hit still resolves to read-then-sdc.
	c, _ := testCache(t)
	var buf [4]byte
	c.Read(0x000, buf[:])
	cyc := uint64(10)
	c.FlipBit(0, 2) // lowest tag bit of row 0
	tr := track(t, c, &cyc, BitCell{Row: 0, Col: 2})

	cyc = 25
	c.Read(0x008, buf[:]) // same set, any tag: probes set 0

	if r := tr.Resolve(false); r.Fate != FateReadSDC || r.FirstTouchLat != 15 {
		t.Errorf("Resolve = %+v; want read-then-sdc at lat 15", r)
	}
}

func TestCacheOverwrittenFate(t *testing.T) {
	c, _ := testCache(t)
	var buf [4]byte
	c.Read(0x000, buf[:])
	cyc := uint64(5)
	col := c.StateBits() // data byte 0
	c.FlipBit(0, col)
	tr := track(t, c, &cyc, BitCell{Row: 0, Col: col})

	cyc = 9
	c.Write(0x000, buf[:]) // store rewrites bytes 0..3 before any read

	r := tr.Resolve(true)
	if r.Fate != FateOverwritten || r.FirstTouchLat != 4 {
		t.Errorf("Resolve = %+v; want overwritten at lat 4", r)
	}
}

func TestCacheRefilledFate(t *testing.T) {
	// Corrupt data in a CLEAN line, then force its eviction: the line is
	// dropped and refilled, discarding the corruption — the paper's
	// clean-line masking mechanism.
	c, _ := testCache(t)
	var buf [4]byte
	c.Read(0x000, buf[:]) // row 0, set 0
	c.Read(0x100, buf[:]) // row 1, set 0 (second way; set = pa>>4 & 7)
	cyc := uint64(50)
	col := c.StateBits()
	c.FlipBit(0, col)
	tr := track(t, c, &cyc, BitCell{Row: 0, Col: col})

	cyc = 60
	c.Read(0x200, buf[:]) // third tag in set 0: evicts LRU row 0, clean, refill

	r := tr.Resolve(true)
	if r.Fate != FateRefilled || r.FirstTouchLat != 10 {
		t.Errorf("Resolve = %+v; want refilled at lat 10", r)
	}
}

func TestCacheWrittenBackFate(t *testing.T) {
	// Corrupt a data byte of a DIRTY line outside the stored bytes, then
	// evict it: the corruption escapes to the next level in the writeback —
	// the paper's dirty-line latent-SDC mechanism.
	c, _ := testCache(t)
	var buf [4]byte
	c.Write(0x000, buf[:]) // row 0 dirty (bytes 0..3 written)
	c.Read(0x100, buf[:])  // row 1, set 0
	cyc := uint64(7)
	col := c.StateBits() + 8*8 // data byte 8: untouched by the store
	c.FlipBit(0, col)
	tr := track(t, c, &cyc, BitCell{Row: 0, Col: col})

	cyc = 19
	c.Read(0x200, buf[:]) // evicts dirty row 0 -> writeback

	r := tr.Resolve(false)
	if r.Fate != FateWrittenBack || r.FirstTouchLat != 12 {
		t.Errorf("Resolve = %+v; want written-back at lat 12", r)
	}
}

func TestCacheNeverTouchedFate(t *testing.T) {
	c, _ := testCache(t)
	var buf [4]byte
	c.Read(0x000, buf[:])
	cyc := uint64(3)
	// Corrupt a data bit in set 7 (row 14), then only ever touch set 0.
	col := c.StateBits()
	c.FlipBit(14, col)
	tr := track(t, c, &cyc, BitCell{Row: 14, Col: col})

	cyc = 30
	c.Read(0x000, buf[:])
	c.Write(0x004, buf[:])

	r := tr.Resolve(true)
	if r.Fate != FateNeverTouched || r.FirstTouchLat != -1 {
		t.Errorf("Resolve = %+v; want never-touched at lat -1", r)
	}
}

func TestPartialClearResolvesToClearFate(t *testing.T) {
	// Two corrupted bits; only one is refilled, the other sits in dead
	// state. The sample resolves to the clear-based fate (never-touched is
	// reserved for zero events), keeping FirstTouchLat == -1 iff
	// never-touched.
	c, _ := testCache(t)
	var buf [4]byte
	c.Read(0x000, buf[:]) // row 0, set 0
	c.Read(0x100, buf[:]) // row 1, set 0
	cyc := uint64(40)
	col := c.StateBits()
	c.FlipBit(0, col)  // will be refilled
	c.FlipBit(14, col) // set 7: never accessed
	tr := track(t, c, &cyc, BitCell{Row: 0, Col: col}, BitCell{Row: 14, Col: col})

	cyc = 55
	c.Read(0x200, buf[:]) // evict clean row 0

	r := tr.Resolve(true)
	if r.Fate != FateRefilled || r.FirstTouchLat != 15 {
		t.Errorf("Resolve = %+v; want refilled at lat 15", r)
	}
}

func TestReadBeatsWritebackOnTie(t *testing.T) {
	c, _ := testCache(t)
	var buf [4]byte
	c.Write(0x000, buf[:])
	cyc := uint64(1)
	col := c.StateBits() + 8*8
	c.FlipBit(0, col)
	tr := track(t, c, &cyc, BitCell{Row: 0, Col: col})

	cyc = 2
	var wide [16]byte
	c.Read(0x000, wide[:]) // reads the corrupted byte (read event)
	c.Read(0x100, buf[:])
	c.Read(0x200, buf[:]) // evicts dirty row 0 -> writeback, same tracker

	r := tr.Resolve(false)
	if r.Fate != FateReadSDC {
		t.Errorf("Resolve.Fate = %v; want read-then-sdc (read precedes writeback)", r.Fate)
	}
}

func TestTLBFates(t *testing.T) {
	const camCol = 31 // valid bit: CAM-compared by every lookup
	newTLB := func() *tlb.TLB {
		tb := tlb.New("DTLB", 4)
		tb.Insert(5, 9, true, true)  // row 0
		tb.Insert(6, 10, true, true) // row 1
		return tb
	}

	t.Run("cam-read-on-any-lookup", func(t *testing.T) {
		tb := newTLB()
		cyc := uint64(10)
		tb.FlipBit(2, camCol) // invalid entry's valid bit: still CAM-compared
		tr := track(t, tb, &cyc, BitCell{Row: 2, Col: camCol})
		cyc = 12
		tb.Lookup(1234) // miss; CAM still consulted every entry
		if r := tr.Resolve(false); r.Fate != FateReadSDC || r.FirstTouchLat != 2 {
			t.Errorf("Resolve = %+v; want read-then-sdc at lat 2", r)
		}
	})

	t.Run("payload-read-only-on-hit", func(t *testing.T) {
		tb := newTLB()
		cyc := uint64(0)
		tb.FlipBit(0, 1) // PFN bit of row 0: payload
		tr := track(t, tb, &cyc, BitCell{Row: 0, Col: 1})
		tb.Lookup(1234) // miss: payload not consulted
		if r := tr.Resolve(true); r.Fate != FateNeverTouched {
			t.Fatalf("after miss: %+v; want never-touched", r)
		}
		tb.Lookup(6) // hits row 1: row 0 payload still untouched
		if r := tr.Resolve(true); r.Fate != FateNeverTouched {
			t.Fatalf("after other-row hit: %+v; want never-touched", r)
		}
		tb.Lookup(5) // hits row 0: corrupted PFN enters the datapath
		if r := tr.Resolve(true); r.Fate != FateReadMasked {
			t.Errorf("after hit: %+v; want read-then-masked", r)
		}
	})

	t.Run("insert-overwrites", func(t *testing.T) {
		tb := newTLB()
		cyc := uint64(0)
		tb.FlipBit(2, 1) // payload bit of row 2 = next round-robin victim
		tr := track(t, tb, &cyc, BitCell{Row: 2, Col: 1})
		tb.Insert(7, 11, true, true) // lands on row 2
		if r := tr.Resolve(true); r.Fate != FateOverwritten {
			t.Errorf("Resolve = %+v; want overwritten", r)
		}
	})

	t.Run("invalidate-overwrites", func(t *testing.T) {
		tb := newTLB()
		cyc := uint64(0)
		tb.FlipBit(3, camCol)
		tr := track(t, tb, &cyc, BitCell{Row: 3, Col: camCol})
		tb.Invalidate()
		if r := tr.Resolve(true); r.Fate != FateOverwritten {
			t.Errorf("Resolve = %+v; want overwritten", r)
		}
	})

	t.Run("spare-never-consulted", func(t *testing.T) {
		tb := newTLB()
		cyc := uint64(0)
		tb.FlipBit(0, 0) // spare column
		tr := track(t, tb, &cyc, BitCell{Row: 0, Col: 0})
		tb.Lookup(5)
		tb.Lookup(1234)
		if r := tr.Resolve(true); r.Fate != FateNeverTouched {
			t.Errorf("Resolve = %+v; want never-touched", r)
		}
	})
}

func TestRegFileFates(t *testing.T) {
	t.Run("data-read", func(t *testing.T) {
		rf := cpu.NewRegFile(8)
		cyc := uint64(20)
		rf.FlipBit(3, 0)
		tr := track(t, rf, &cyc, BitCell{Row: 3, Col: 0})
		cyc = 23
		rf.Val(3)
		if r := tr.Resolve(false); r.Fate != FateReadSDC || r.FirstTouchLat != 3 {
			t.Errorf("Resolve = %+v; want read-then-sdc at lat 3", r)
		}
	})

	t.Run("data-overwritten", func(t *testing.T) {
		rf := cpu.NewRegFile(8)
		cyc := uint64(0)
		rf.FlipBit(3, 0)
		tr := track(t, rf, &cyc, BitCell{Row: 3, Col: 0})
		rf.Val(4) // different register: not a read of row 3
		rf.Write(3, 0xDEAD)
		if r := tr.Resolve(true); r.Fate != FateOverwritten {
			t.Errorf("Resolve = %+v; want overwritten", r)
		}
	})

	t.Run("ready-read-by-issue", func(t *testing.T) {
		rf := cpu.NewRegFile(8)
		cyc := uint64(0)
		rf.FlipBit(5, cpu.ReadyCol)
		tr := track(t, rf, &cyc, BitCell{Row: 5, Col: cpu.ReadyCol})
		rf.Val(5) // value read does NOT consult the ready bit
		if r := tr.Resolve(true); r.Fate != FateNeverTouched {
			t.Fatalf("after Val: %+v; want never-touched", r)
		}
		rf.Ready(5)
		if r := tr.Resolve(false); r.Fate != FateReadSDC {
			t.Errorf("after Ready: %+v; want read-then-sdc", r)
		}
	})

	t.Run("alloc-rewrites-ready-not-data", func(t *testing.T) {
		rf := cpu.NewRegFile(8)
		cyc := uint64(0)
		rf.FlipBit(5, cpu.ReadyCol)
		rf.FlipBit(5, 0)
		tr := track(t, rf, &cyc,
			BitCell{Row: 5, Col: cpu.ReadyCol}, BitCell{Row: 5, Col: 0})
		rf.Alloc(5) // clears the ready bit; the stale data bit survives
		if r := tr.Resolve(true); r.Fate != FateOverwritten {
			t.Fatalf("after Alloc: %+v; want overwritten (ready bit cleared)", r)
		}
		rf.Val(5) // the surviving corrupted data bit is read
		if r := tr.Resolve(false); r.Fate != FateReadSDC {
			t.Errorf("after Val: %+v; want read-then-sdc", r)
		}
	})
}

func TestDivergedFate(t *testing.T) {
	c, _ := testCache(t)
	cyc := uint64(100)
	col := c.StateBits()
	c.FlipBit(0, col)
	tr := track(t, c, &cyc, BitCell{Row: 0, Col: col})
	cyc = 250
	tr.MarkDiverged()
	cyc = 300
	tr.MarkDiverged() // second call must not move the recorded cycle
	if !tr.Diverged() {
		t.Fatal("Diverged() = false after MarkDiverged")
	}
	r := tr.Resolve(false)
	if r.Fate != FateDiverged || r.DivergeCycle != 250 {
		t.Errorf("Resolve = %+v; want diverged at cycle 250", r)
	}
}

func TestCycleZeroClamped(t *testing.T) {
	// Events at cycle 0 must not alias the "never happened" sentinel.
	rf := cpu.NewRegFile(4)
	cyc := uint64(0)
	rf.FlipBit(1, 0)
	tr := track(t, rf, &cyc, BitCell{Row: 1, Col: 0})
	rf.Val(1) // read at cycle 0
	if r := tr.Resolve(false); r.Fate != FateReadSDC {
		t.Errorf("Resolve = %+v; want read-then-sdc even at cycle 0", r)
	}
}

// TestDisabledPathAllocFree pins the forensics-off cost of every hooked
// component path: with a nil probe, the hot paths must not allocate.
func TestDisabledPathAllocFree(t *testing.T) {
	c, _ := testCache(t)
	tb := tlb.New("DTLB", 8)
	tb.Insert(5, 9, true, true)
	rf := cpu.NewRegFile(8)
	var buf [4]byte
	c.Read(0x000, buf[:]) // warm up
	c.Write(0x004, buf[:])

	allocs := testing.AllocsPerRun(200, func() {
		c.Read(0x000, buf[:])
		c.Write(0x004, buf[:])
		c.Read(0x100, buf[:]) // alternates ways; exercises fill/evict
		tb.Lookup(5)
		tb.Lookup(999)
		tb.Insert(6, 10, true, true)
		rf.Ready(3)
		rf.Val(3)
		rf.Alloc(3)
		rf.Write(3, 42)
	})
	if allocs != 0 {
		t.Errorf("disabled-path allocations = %v per run; want 0", allocs)
	}
}
