// Package forensics tracks the fate of every injected fault bit: the cycle
// a corrupted bit is first read into the datapath, overwritten before being
// read, discarded by a line refill, or escapes to the next memory level in
// a writeback — plus, optionally, the first cycle a lockstep shadow machine
// observes an architectural divergence. The campaign layer turns the
// resulting Report into the `forensics` records of the JSONL trace and the
// masking-mechanism counters of the telemetry registry.
//
// A Tracker is armed at injection time, inside the inject callback, after
// the fault mask has been applied: Attach classifies each flipped bit
// against the concrete target geometry and installs the tracker as the
// target's access probe. The probes model what the hardware actually
// consults per access — a set-associative lookup reads valid+tag of every
// way in the probed set in parallel, a TLB lookup CAM-compares valid+VPN of
// every entry — so a fault that influenced an access is never missed; the
// price is a conservative over-approximation (a metadata bit "read" by a
// compare that happened to produce the right answer still counts as read).
package forensics

import (
	"fmt"

	"mbusim/internal/cache"
	"mbusim/internal/cpu"
	"mbusim/internal/tlb"
)

// Mode selects how much forensics a campaign records per sample.
type Mode int

const (
	// ModeOff disables forensics entirely (no tracker is built; component
	// hot paths pay one nil compare per access).
	ModeOff Mode = iota
	// ModeFast arms the component probes only.
	ModeFast
	// ModeFull additionally replays a lockstep shadow machine from the
	// same checkpoint and records the first architectural-divergence
	// cycle. Roughly doubles per-sample cost.
	ModeFull
)

// String returns the flag spelling of the mode.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeFast:
		return "fast"
	case ModeFull:
		return "full"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses a -forensics flag value. Accepted spellings: "off",
// "false", "" (off); "fast", "true", "on" (fast); "full".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "false", "":
		return ModeOff, nil
	case "fast", "true", "on":
		return ModeFast, nil
	case "full":
		return ModeFull, nil
	}
	return ModeOff, fmt.Errorf("forensics: unknown mode %q (want off, fast or full)", s)
}

// Fate is the resolved lifecycle of one injected fault mask.
type Fate int

const (
	// FateNeverTouched: no corrupted bit was ever consulted, overwritten
	// or refilled — the fault sat in dead state to the end of the run.
	FateNeverTouched Fate = iota
	// FateOverwritten: every corrupted bit was overwritten by new state
	// (store, TLB insert/invalidate, register write) before being read.
	FateOverwritten
	// FateRefilled: corrupted bits were discarded by a cache line refill
	// (at least one refill-clear, no read, no writeback) — the paper's
	// clean-line masking mechanism.
	FateRefilled
	// FateReadMasked: a corrupted bit entered the datapath but the run
	// still produced golden output (logical masking).
	FateReadMasked
	// FateReadSDC: a corrupted bit entered the datapath and the run left
	// the golden path (SDC, crash, timeout or assert).
	FateReadSDC
	// FateWrittenBack: no corrupted bit was read locally, but a corrupted
	// dirty line escaped to the next memory level — the paper's dirty-line
	// SDC mechanism (latent corruption).
	FateWrittenBack
	// FateDiverged: no component probe fired, yet the lockstep shadow
	// machine observed an architectural divergence (ModeFull only).
	FateDiverged
	// NumFates is the number of fate classes.
	NumFates
)

// Label returns the stable wire name used in trace records and metric
// labels.
func (f Fate) Label() string {
	switch f {
	case FateNeverTouched:
		return "never-touched"
	case FateOverwritten:
		return "overwritten"
	case FateRefilled:
		return "refilled"
	case FateReadMasked:
		return "read-then-masked"
	case FateReadSDC:
		return "read-then-sdc"
	case FateWrittenBack:
		return "written-back"
	case FateDiverged:
		return "diverged"
	}
	return fmt.Sprintf("Fate(%d)", int(f))
}

// Fates returns all fate classes in stable order.
func Fates() []Fate {
	fs := make([]Fate, NumFates)
	for i := range fs {
		fs[i] = Fate(i)
	}
	return fs
}

// BitCell names one flipped bit in the target's injectable geometry.
type BitCell struct {
	Row, Col int
}

// Report is the resolved fate of one injection sample.
type Report struct {
	Fate Fate
	// FirstTouchLat is the number of cycles between injection and the
	// first event involving a corrupted bit (read, overwrite, refill or
	// writeback); -1 if nothing ever touched one.
	FirstTouchLat int64
	// DivergeCycle is the absolute cycle of the first architectural
	// divergence seen by the shadow machine; 0 = none observed (or
	// ModeFast).
	DivergeCycle uint64
}

// cellKind classifies a flipped bit by which hardware events consult it.
type cellKind uint8

const (
	kindCacheValid cellKind = iota
	kindCacheDirty
	kindCacheTag
	kindCacheData
	kindTLBCAM
	kindTLBPayload
	kindTLBSpare
	kindRegData
	kindRegReady
)

type trCell struct {
	kind    cellKind
	row     int
	set     int // cache kinds: set index of row; else -1
	byteIdx int // kindCacheData: byte offset within the line; else -1
	read    uint64
	wb      uint64
	clear   uint64
	refill  bool // clear came from a line refill
}

// Tracker follows the corrupted bits of a single injection. It implements
// the cache, TLB and register-file probe interfaces; Attach installs it on
// the target. Not safe for concurrent use — each sample owns its own
// tracker, like its own machine.
type Tracker struct {
	now        func() uint64
	armCycle   uint64
	cells      []trCell
	firstRead  uint64
	firstWB    uint64
	firstTouch uint64
	diverge    uint64
	detach     func() // removes the probe Attach installed
}

// NewTracker returns a tracker reading the current cycle from now
// (typically machine.Core.Cycles).
func NewTracker(now func() uint64) *Tracker {
	return &Tracker{now: now}
}

// Attach classifies the flipped bits against the concrete target type and
// installs the tracker as the target's access probe. Call it inside the
// injection callback, after the mask has been applied. It returns an error
// for target types it does not know.
func (t *Tracker) Attach(target any, mask []BitCell) error {
	t.armCycle = t.now()
	switch tg := target.(type) {
	case *cache.Cache:
		t.attachCache(tg, mask)
	case *tlb.TLB:
		t.attachTLB(tg, mask)
	case *cpu.RegFile:
		t.attachRegFile(tg, mask)
	default:
		return fmt.Errorf("forensics: unsupported target %T", target)
	}
	return nil
}

// Detach removes the probe Attach installed, returning the target to its
// unprobed fast path. Campaigns that reuse one machine across samples must
// detach each sample's tracker before rewinding the machine for the next —
// probes are wiring, not snapshot state, so a restore does not remove them.
// Detach is idempotent and a no-op on a never-attached tracker.
func (t *Tracker) Detach() {
	if t.detach != nil {
		t.detach()
		t.detach = nil
	}
}

func (t *Tracker) attachCache(c *cache.Cache, mask []BitCell) {
	stateBits := c.StateBits()
	ways := c.Config().Ways
	for _, mc := range mask {
		cl := trCell{row: mc.Row, set: mc.Row / ways, byteIdx: -1}
		switch {
		case mc.Col == 0:
			cl.kind = kindCacheValid
		case mc.Col == 1:
			cl.kind = kindCacheDirty
		case mc.Col < stateBits:
			cl.kind = kindCacheTag
		default:
			cl.kind = kindCacheData
			cl.byteIdx = (mc.Col - stateBits) / 8
		}
		t.cells = append(t.cells, cl)
	}
	c.SetProbe(t)
	t.detach = func() { c.SetProbe(nil) }
}

func (t *Tracker) attachTLB(tb *tlb.TLB, mask []BitCell) {
	for _, mc := range mask {
		cl := trCell{row: mc.Row, set: -1, byteIdx: -1}
		switch tlb.ClassifyCol(mc.Col) {
		case tlb.ColCAM:
			cl.kind = kindTLBCAM
		case tlb.ColPayload:
			cl.kind = kindTLBPayload
		default:
			cl.kind = kindTLBSpare
		}
		t.cells = append(t.cells, cl)
	}
	tb.SetProbe(t)
	t.detach = func() { tb.SetProbe(nil) }
}

func (t *Tracker) attachRegFile(rf *cpu.RegFile, mask []BitCell) {
	for _, mc := range mask {
		cl := trCell{row: mc.Row, set: -1, byteIdx: -1, kind: kindRegData}
		if mc.Col == cpu.ReadyCol {
			cl.kind = kindRegReady
		}
		t.cells = append(t.cells, cl)
	}
	rf.SetProbe(t)
	t.detach = func() { rf.SetProbe(nil) }
}

// tick returns the current cycle, clamped to 1 so it can never alias the
// zero "never happened" sentinel.
func (t *Tracker) tick() uint64 {
	cyc := t.now()
	if cyc == 0 {
		cyc = 1
	}
	return cyc
}

func (t *Tracker) markRead(c *trCell) {
	if c.read != 0 || c.clear != 0 {
		return
	}
	cyc := t.tick()
	c.read = cyc
	if t.firstRead == 0 {
		t.firstRead = cyc
	}
	if t.firstTouch == 0 {
		t.firstTouch = cyc
	}
}

func (t *Tracker) markWB(c *trCell) {
	if c.wb != 0 || c.clear != 0 {
		return
	}
	cyc := t.tick()
	c.wb = cyc
	if t.firstWB == 0 {
		t.firstWB = cyc
	}
	if t.firstTouch == 0 {
		t.firstTouch = cyc
	}
}

func (t *Tracker) markClear(c *trCell, refill bool) {
	if c.clear != 0 {
		return
	}
	cyc := t.tick()
	c.clear = cyc
	c.refill = refill
	if t.firstTouch == 0 {
		t.firstTouch = cyc
	}
}

// --- cache.Probe ---

// OnLookup implements cache.Probe: the parallel tag read consults valid +
// tag bits of every way in the probed set.
func (t *Tracker) OnLookup(set uint32) {
	for i := range t.cells {
		c := &t.cells[i]
		if c.set == int(set) && (c.kind == kindCacheValid || c.kind == kindCacheTag) {
			t.markRead(c)
		}
	}
}

// OnReadData implements cache.Probe.
func (t *Tracker) OnReadData(row, off, n int) {
	for i := range t.cells {
		c := &t.cells[i]
		if c.kind == kindCacheData && c.row == row && c.byteIdx >= off && c.byteIdx < off+n {
			t.markRead(c)
		}
	}
}

// OnWriteData implements cache.Probe: overwritten data bytes are cleared,
// and the dirty bit is rewritten (stores set it unconditionally).
func (t *Tracker) OnWriteData(row, off, n int) {
	for i := range t.cells {
		c := &t.cells[i]
		if c.row != row {
			continue
		}
		switch c.kind {
		case kindCacheData:
			if c.byteIdx >= off && c.byteIdx < off+n {
				t.markClear(c, false)
			}
		case kindCacheDirty:
			t.markClear(c, false)
		}
	}
}

// OnEvict implements cache.Probe: choosing a fill victim consults its valid
// and dirty bits.
func (t *Tracker) OnEvict(row int) {
	for i := range t.cells {
		c := &t.cells[i]
		if c.row == row && (c.kind == kindCacheValid || c.kind == kindCacheDirty) {
			t.markRead(c)
		}
	}
}

// OnWriteback implements cache.Probe: the victim's tag bits form the
// writeback address and its data bytes escape to the next level.
func (t *Tracker) OnWriteback(row int) {
	for i := range t.cells {
		c := &t.cells[i]
		if c.row == row && (c.kind == kindCacheTag || c.kind == kindCacheData) {
			t.markWB(c)
		}
	}
}

// OnFill implements cache.Probe: a refill rewrites the whole line —
// valid, dirty, tag and data.
func (t *Tracker) OnFill(row int) {
	for i := range t.cells {
		c := &t.cells[i]
		if c.row == row {
			t.markClear(c, true)
		}
	}
}

// --- tlb.Probe ---

// OnTLBLookup implements tlb.Probe: the CAM compare consults valid + VPN
// bits of every entry; on a hit, the hit entry's payload enters the
// datapath.
func (t *Tracker) OnTLBLookup(hit int) {
	for i := range t.cells {
		c := &t.cells[i]
		switch c.kind {
		case kindTLBCAM:
			t.markRead(c)
		case kindTLBPayload:
			if c.row == hit {
				t.markRead(c)
			}
		}
	}
}

// OnTLBInsert implements tlb.Probe: the whole entry is overwritten.
func (t *Tracker) OnTLBInsert(row int) {
	for i := range t.cells {
		c := &t.cells[i]
		if c.row == row && isTLBKind(c.kind) {
			t.markClear(c, false)
		}
	}
}

// OnTLBInvalidate implements tlb.Probe: every entry is cleared.
func (t *Tracker) OnTLBInvalidate() {
	for i := range t.cells {
		c := &t.cells[i]
		if isTLBKind(c.kind) {
			t.markClear(c, false)
		}
	}
}

func isTLBKind(k cellKind) bool {
	return k == kindTLBCAM || k == kindTLBPayload || k == kindTLBSpare
}

// --- cpu.RegProbe ---

// OnRegRead implements cpu.RegProbe.
func (t *Tracker) OnRegRead(row int) {
	for i := range t.cells {
		c := &t.cells[i]
		if c.kind == kindRegData && c.row == row {
			t.markRead(c)
		}
	}
}

// OnRegReadyRead implements cpu.RegProbe.
func (t *Tracker) OnRegReadyRead(row int) {
	for i := range t.cells {
		c := &t.cells[i]
		if c.kind == kindRegReady && c.row == row {
			t.markRead(c)
		}
	}
}

// OnRegWrite implements cpu.RegProbe: the value and ready bit are both
// rewritten.
func (t *Tracker) OnRegWrite(row int) {
	for i := range t.cells {
		c := &t.cells[i]
		if c.row == row && (c.kind == kindRegData || c.kind == kindRegReady) {
			t.markClear(c, false)
		}
	}
}

// OnRegAlloc implements cpu.RegProbe: reallocation rewrites the ready bit;
// the stale (possibly corrupted) value survives until the producer writes.
func (t *Tracker) OnRegAlloc(row int) {
	for i := range t.cells {
		c := &t.cells[i]
		if c.kind == kindRegReady && c.row == row {
			t.markClear(c, false)
		}
	}
}

// --- shadow divergence ---

// Diverged reports whether a divergence has already been recorded (lets
// the run loop stop comparing digests once it has its answer).
func (t *Tracker) Diverged() bool { return t.diverge != 0 }

// MarkDiverged records the first architectural-divergence cycle.
func (t *Tracker) MarkDiverged() {
	if t.diverge == 0 {
		t.diverge = t.tick()
	}
}

// Resolve folds the recorded events and the run's classification into a
// fate. benign is true when the run was classified Masked. Priority: the
// earliest of read/writeback decides (tie goes to read); then an observed
// shadow divergence; then a refill or overwrite of at least one corrupted
// bit (cells that were never cleared sat as dead, naturally-masked state);
// never-touched is reserved for samples with no event at all, so
// FirstTouchLat is -1 exactly for never-touched reports.
func (t *Tracker) Resolve(benign bool) Report {
	r := Report{FirstTouchLat: -1, DivergeCycle: t.diverge}
	if t.firstTouch != 0 && t.firstTouch >= t.armCycle {
		r.FirstTouchLat = int64(t.firstTouch - t.armCycle)
	} else if t.firstTouch != 0 {
		r.FirstTouchLat = 0
	}
	switch {
	case t.firstRead != 0 && (t.firstWB == 0 || t.firstRead <= t.firstWB):
		if benign {
			r.Fate = FateReadMasked
		} else {
			r.Fate = FateReadSDC
		}
	case t.firstWB != 0:
		r.Fate = FateWrittenBack
	case t.diverge != 0:
		r.Fate = FateDiverged
	case t.anyRefill():
		r.Fate = FateRefilled
	case t.anyCleared():
		r.Fate = FateOverwritten
	default:
		r.Fate = FateNeverTouched
	}
	return r
}

func (t *Tracker) anyCleared() bool {
	for i := range t.cells {
		if t.cells[i].clear != 0 {
			return true
		}
	}
	return false
}

func (t *Tracker) anyRefill() bool {
	for i := range t.cells {
		if t.cells[i].refill {
			return true
		}
	}
	return false
}
