package asm

import (
	"testing"

	"mbusim/internal/isa"
)

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func word(p *Program, i int) uint32 {
	b := p.Text[i*4:]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func TestBasicInstructions(t *testing.T) {
	p := assemble(t, `
_start:
    add r1, r2, r3
    addi r4, r5, #-7
    mov r6, r8
    cmp r1, #3
    nop
`)
	in, err := isa.Decode(word(p, 0))
	if err != nil || in.Op != isa.OpADD || in.Rd != 1 || in.Rn != 2 || in.Rm != 3 {
		t.Fatalf("add: %+v %v", in, err)
	}
	in, _ = isa.Decode(word(p, 1))
	if in.Op != isa.OpADDI || in.Imm != -7 {
		t.Fatalf("addi: %+v", in)
	}
	in, _ = isa.Decode(word(p, 2))
	if in.Op != isa.OpMOV || in.Rd != 6 || in.Rm != 8 {
		t.Fatalf("mov: %+v", in)
	}
	in, _ = isa.Decode(word(p, 3))
	if in.Op != isa.OpCMPI || in.Imm != 3 {
		t.Fatalf("cmp imm: %+v", in)
	}
}

func TestBranchTargets(t *testing.T) {
	// Branch offsets are relative to pc+4 (target = pc + 4 + off*4).
	p := assemble(t, `
_start:
    nop
top:
    b.ne top
    b fwd
    nop
fwd:
    bl top
`)
	// b.ne top at word 1: target word 1 -> off = (4 - (4+4))/4 = -1.
	in, _ := isa.Decode(word(p, 1))
	if in.Op != isa.OpB || in.Imm != -1 {
		t.Fatalf("backward branch: %+v", in)
	}
	// b fwd at word 2: target word 4 -> off = (16 - 12)/4 = 1.
	in, _ = isa.Decode(word(p, 2))
	if in.Imm != 1 {
		t.Fatalf("forward branch: %+v", in)
	}
	// bl top at word 4: off = (4 - 20)/4 = -4.
	in, _ = isa.Decode(word(p, 4))
	if in.Op != isa.OpBL || in.Imm != -4 {
		t.Fatalf("bl: %+v", in)
	}
}

func TestLiMacro(t *testing.T) {
	p := assemble(t, "_start:\n li r1, #0x12345678\n li r2, #5\n")
	in0, _ := isa.Decode(word(p, 0))
	in1, _ := isa.Decode(word(p, 1))
	if in0.Op != isa.OpMOVZ || uint32(in0.Imm) != 0x5678 {
		t.Fatalf("li low: %+v", in0)
	}
	if in1.Op != isa.OpMOVT || uint32(in1.Imm) != 0x1234 {
		t.Fatalf("li high: %+v", in1)
	}
	// Small constant needs only MOVZ.
	in2, _ := isa.Decode(word(p, 2))
	if in2.Op != isa.OpMOVZ || in2.Imm != 5 {
		t.Fatalf("li small: %+v", in2)
	}
	if len(p.Text) != 12 {
		t.Fatalf("text length %d, want 12", len(p.Text))
	}
}

func TestLaMacroAndData(t *testing.T) {
	p := assemble(t, `
_start:
    la r1, table
.data
.align 4
table: .word 1, 2, -3
msg: .asciz "hi"
`)
	addr := p.Symbols["table"]
	if addr != DefaultDataBase {
		t.Fatalf("table at %#x, want %#x", addr, DefaultDataBase)
	}
	in0, _ := isa.Decode(word(p, 0))
	in1, _ := isa.Decode(word(p, 1))
	if uint32(in0.Imm) != addr&0xFFFF || uint32(in1.Imm) != addr>>16 {
		t.Fatalf("la halves: %+v %+v", in0, in1)
	}
	if p.Data[0] != 1 || int32(uint32(p.Data[8])|uint32(p.Data[9])<<8|uint32(p.Data[10])<<16|uint32(p.Data[11])<<24) != -3 {
		t.Fatalf("data words wrong: % x", p.Data[:12])
	}
	if string(p.Data[12:15]) != "hi\x00" {
		t.Fatalf("asciz wrong: %q", p.Data[12:15])
	}
}

func TestDirectives(t *testing.T) {
	p := assemble(t, `
_start: nop
.data
a: .byte 1, 2, 255
   .half 0x1234
   .space 3
   .align 4
b: .word sym_in_text
.text
sym_in_text: nop
`)
	if p.Data[0] != 1 || p.Data[2] != 255 {
		t.Fatalf(".byte: % x", p.Data[:3])
	}
	if p.Data[3] != 0x34 || p.Data[4] != 0x12 {
		t.Fatalf(".half: % x", p.Data[3:5])
	}
	bOff := int(p.Symbols["b"] - DefaultDataBase)
	got := uint32(p.Data[bOff]) | uint32(p.Data[bOff+1])<<8 | uint32(p.Data[bOff+2])<<16 | uint32(p.Data[bOff+3])<<24
	if got != p.Symbols["sym_in_text"] {
		t.Fatalf(".word sym = %#x, want %#x", got, p.Symbols["sym_in_text"])
	}
}

func TestMemOperands(t *testing.T) {
	p := assemble(t, `
_start:
    ldr r1, [r2, #8]
    str r3, [sp]
    ldrr r4, [r5, r6]
    strb r7, [fp, #-4]
`)
	in, _ := isa.Decode(word(p, 0))
	if in.Op != isa.OpLDR || in.Imm != 8 {
		t.Fatalf("ldr: %+v", in)
	}
	in, _ = isa.Decode(word(p, 1))
	if in.Op != isa.OpSTR || in.Rn != isa.RegSP || in.Imm != 0 {
		t.Fatalf("str: %+v", in)
	}
	in, _ = isa.Decode(word(p, 2))
	if in.Op != isa.OpLDRR || in.Rm != 6 {
		t.Fatalf("ldrr: %+v", in)
	}
	in, _ = isa.Decode(word(p, 3))
	if in.Op != isa.OpSTRB || in.Rn != 11 || in.Imm != -4 {
		t.Fatalf("strb: %+v", in)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"undefined symbol", "_start: b nowhere\n"},
		{"duplicate label", "a: nop\na: nop\n"},
		{"bad register", "_start: add r1, r99, r2\n"},
		{"bad mnemonic", "_start: frobnicate r1\n"},
		{"imm out of range", "_start: addi r1, r2, #40000\n"},
		{"instruction in data", ".data\nadd r1, r2, r3\n"},
		{"bad directive", ".bogus 3\n"},
		{"bad align", "_start: nop\n.align 3\n"},
		{"missing operand", "_start: add r1, r2\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Assemble(tc.src); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestEntrySymbol(t *testing.T) {
	p := assemble(t, "foo: nop\n_start: nop\n")
	if p.Entry != DefaultTextBase+4 {
		t.Fatalf("entry = %#x, want %#x", p.Entry, DefaultTextBase+4)
	}
	// Without _start the entry falls back to the text base.
	p = assemble(t, "foo: nop\n")
	if p.Entry != DefaultTextBase {
		t.Fatalf("fallback entry = %#x", p.Entry)
	}
}

func TestCommentsAndLabelsOnOneLine(t *testing.T) {
	p := assemble(t, "_start: nop ; trailing comment\nx: y: nop // another\n")
	if p.Symbols["x"] != p.Symbols["y"] {
		t.Fatal("stacked labels must share an address")
	}
	if len(p.Text) != 8 {
		t.Fatalf("text length %d", len(p.Text))
	}
}
