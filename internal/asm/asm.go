// Package asm implements a two-pass assembler for the AR32 instruction set.
//
// Syntax, one statement per line ("; " or "//" start comments):
//
//	label:
//	    add   r1, r2, r3
//	    addi  r1, r2, #-4
//	    li    r1, #0x12345678      ; macro: MOVZ or MOVZ+MOVT
//	    la    r1, table            ; macro: load symbol address
//	    ldr   r1, [r2, #8]
//	    ldrr  r1, [r2, r3]
//	    b.ne  loop
//	    bl    func
//	    bx    lr
//	.text / .data                   ; section switch
//	.word 1, 2, -3, sym             ; 32-bit values (little endian)
//	.half 1, 2                      ; 16-bit values
//	.byte 1, 2, 0xFF
//	.ascii "hi\n"                   ; no terminator
//	.asciz "hi"                     ; NUL-terminated
//	.space 64                       ; zero fill
//	.align 4                        ; pad to power-of-two boundary
//
// Register names: r0..r15, sp (r13), lr (r14), fp (r11).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"mbusim/internal/isa"
)

// Program is an assembled binary image.
type Program struct {
	Text     []byte // instruction bytes, little endian, loaded at TextBase
	Data     []byte // data bytes, loaded at DataBase
	TextBase uint32
	DataBase uint32
	Entry    uint32            // address of the "_start" label (or TextBase)
	Symbols  map[string]uint32 // label -> virtual address
}

// Default load addresses. Both live in the low 16 MB so that virtual page
// numbers fit the simulated TLB entry layout.
const (
	DefaultTextBase = 0x0001_0000
	DefaultDataBase = 0x0010_0000
)

// Error is an assembly error annotated with a line number.
type Error struct {
	Line int
	Msg  string
}

func (e Error) Error() string { return fmt.Sprintf("line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

type fixup struct {
	line   int
	offset uint32 // byte offset into text
	symbol string
	kind   fixupKind
	cond   isa.Cond
	op     isa.Op
	rd     uint8
}

type fixupKind int

const (
	fixBranch   fixupKind = iota // B-type, pc-relative word offset
	fixCall                      // BL, pc-relative word offset
	fixLoadAddr                  // la macro: patch MOVZ+MOVT pair
	fixWord                      // .word sym
)

type assembler struct {
	text     []byte
	data     []byte
	sec      section
	symbols  map[string]uint32
	fixups   []fixup
	textBase uint32
	dataBase uint32
}

// Assemble assembles source into a Program using the default load addresses.
func Assemble(src string) (*Program, error) {
	return AssembleAt(src, DefaultTextBase, DefaultDataBase)
}

// AssembleAt assembles source with explicit text and data base addresses.
func AssembleAt(src string, textBase, dataBase uint32) (*Program, error) {
	a := &assembler{
		sec:      secText,
		symbols:  make(map[string]uint32),
		textBase: textBase,
		dataBase: dataBase,
	}
	for i, line := range strings.Split(src, "\n") {
		if err := a.line(i+1, line); err != nil {
			return nil, err
		}
	}
	if err := a.resolve(); err != nil {
		return nil, err
	}
	entry := textBase
	if e, ok := a.symbols["_start"]; ok {
		entry = e
	}
	return &Program{
		Text: a.text, Data: a.data,
		TextBase: textBase, DataBase: dataBase,
		Entry: entry, Symbols: a.symbols,
	}, nil
}

func (a *assembler) pc() uint32 {
	if a.sec == secText {
		return a.textBase + uint32(len(a.text))
	}
	return a.dataBase + uint32(len(a.data))
}

func (a *assembler) emit32(w uint32) {
	buf := &a.text
	if a.sec == secData {
		buf = &a.data
	}
	*buf = append(*buf, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
}

func (a *assembler) line(n int, raw string) error {
	line := raw
	if i := strings.Index(line, ";"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	// Labels, possibly several on one line before a statement.
	for {
		i := strings.Index(line, ":")
		if i < 0 {
			break
		}
		name := strings.TrimSpace(line[:i])
		if !isIdent(name) {
			break // e.g. a ':' inside a string literal of a directive
		}
		if _, dup := a.symbols[name]; dup {
			return Error{n, "duplicate label " + name}
		}
		a.symbols[name] = a.pc()
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}
	if strings.HasPrefix(line, ".") {
		return a.directive(n, line)
	}
	return a.instruction(n, line)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			i > 0 && r >= '0' && r <= '9'
		if !ok {
			return false
		}
	}
	return true
}

func (a *assembler) directive(n int, line string) error {
	name, rest, _ := strings.Cut(line, " ")
	rest = strings.TrimSpace(rest)
	buf := &a.text
	if a.sec == secData {
		buf = &a.data
	}
	switch name {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".word":
		for _, f := range splitOperands(rest) {
			if isIdent(f) {
				a.fixups = append(a.fixups, fixup{
					line: n, offset: uint32(len(*buf)), symbol: f, kind: fixWord,
				})
				// Real emission happens at resolve time; for .word in data we
				// still need the fixup to know which section. Track via sec.
				if a.sec == secData {
					a.fixups[len(a.fixups)-1].rd = 1 // rd==1 marks data section
				}
				a.emit32(0)
				continue
			}
			v, err := parseInt(f)
			if err != nil {
				return Error{n, err.Error()}
			}
			a.emit32(uint32(v))
		}
	case ".half":
		for _, f := range splitOperands(rest) {
			v, err := parseInt(f)
			if err != nil {
				return Error{n, err.Error()}
			}
			*buf = append(*buf, byte(v), byte(v>>8))
		}
	case ".byte":
		for _, f := range splitOperands(rest) {
			v, err := parseInt(f)
			if err != nil {
				return Error{n, err.Error()}
			}
			*buf = append(*buf, byte(v))
		}
	case ".ascii", ".asciz":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return Error{n, "bad string literal: " + rest}
		}
		*buf = append(*buf, s...)
		if name == ".asciz" {
			*buf = append(*buf, 0)
		}
	case ".space":
		v, err := parseInt(rest)
		if err != nil || v < 0 {
			return Error{n, "bad .space size"}
		}
		*buf = append(*buf, make([]byte, v)...)
	case ".align":
		v, err := parseInt(rest)
		if err != nil || v <= 0 || v&(v-1) != 0 {
			return Error{n, "bad .align (want power of two)"}
		}
		for int64(len(*buf))%v != 0 {
			*buf = append(*buf, 0)
		}
	default:
		return Error{n, "unknown directive " + name}
	}
	return nil
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseInt(s string) (int64, error) {
	s = strings.TrimPrefix(s, "#")
	if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
		return int64(s[1]), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full-range unsigned hex like 0xFFFFFFFF.
		if u, uerr := strconv.ParseUint(s, 0, 32); uerr == nil {
			return int64(int32(uint32(u))), nil
		}
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if v < -(1<<31) || v > 1<<32-1 {
		return 0, fmt.Errorf("integer %q out of 32-bit range", s)
	}
	return v, nil
}

func parseReg(s string) (uint8, bool) {
	switch s {
	case "sp":
		return isa.RegSP, true
	case "lr":
		return isa.RegLR, true
	case "fp":
		return 11, true
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumGPR {
			return uint8(n), true
		}
	}
	return 0, false
}

var condNames = map[string]isa.Cond{
	"": isa.CondAL, "al": isa.CondAL,
	"eq": isa.CondEQ, "ne": isa.CondNE,
	"lt": isa.CondLT, "ge": isa.CondGE,
	"le": isa.CondLE, "gt": isa.CondGT,
	"lo": isa.CondLO, "hs": isa.CondHS,
	"ls": isa.CondLS, "hi": isa.CondHI,
}

var rTypeOps = map[string]isa.Op{
	"add": isa.OpADD, "sub": isa.OpSUB, "rsb": isa.OpRSB,
	"and": isa.OpAND, "orr": isa.OpORR, "eor": isa.OpEOR, "bic": isa.OpBIC,
	"lsl": isa.OpLSL, "lsr": isa.OpLSR, "asr": isa.OpASR, "ror": isa.OpROR,
	"mul": isa.OpMUL, "sdiv": isa.OpSDIV, "udiv": isa.OpUDIV,
	"srem": isa.OpSREM, "urem": isa.OpUREM,
	"smulh": isa.OpSMLH, "umulh": isa.OpUMLH,
}

var iTypeOps = map[string]isa.Op{
	"addi": isa.OpADDI, "subi": isa.OpSUBI, "andi": isa.OpANDI,
	"orri": isa.OpORRI, "eori": isa.OpEORI,
	"lsli": isa.OpLSLI, "lsri": isa.OpLSRI, "asri": isa.OpASRI,
}

var memImmOps = map[string]isa.Op{
	"ldr": isa.OpLDR, "ldrb": isa.OpLDRB, "ldrh": isa.OpLDRH,
	"str": isa.OpSTR, "strb": isa.OpSTRB, "strh": isa.OpSTRH,
}

var memRegOps = map[string]isa.Op{
	"ldrr": isa.OpLDRR, "ldrbr": isa.OpLDRBR,
	"strr": isa.OpSTRR, "strbr": isa.OpSTRBR,
}

func (a *assembler) instruction(n int, line string) error {
	if a.sec != secText {
		return Error{n, "instruction outside .text"}
	}
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(mnemonic)
	ops := splitOperands(strings.TrimSpace(rest))
	bad := func(format string, args ...any) error {
		return Error{n, fmt.Sprintf(format, args...)}
	}
	reg := func(i int) (uint8, error) {
		if i >= len(ops) {
			return 0, bad("missing operand %d", i+1)
		}
		r, ok := parseReg(ops[i])
		if !ok {
			return 0, bad("bad register %q", ops[i])
		}
		return r, nil
	}

	// Branches with optional condition suffix: b, b.eq, ...
	if mnemonic == "b" || strings.HasPrefix(mnemonic, "b.") {
		suffix := strings.TrimPrefix(strings.TrimPrefix(mnemonic, "b"), ".")
		cond, ok := condNames[suffix]
		if !ok {
			return bad("unknown condition %q", suffix)
		}
		if len(ops) != 1 || !isIdent(ops[0]) {
			return bad("branch needs a label operand")
		}
		a.fixups = append(a.fixups, fixup{
			line: n, offset: uint32(len(a.text)), symbol: ops[0],
			kind: fixBranch, cond: cond,
		})
		a.emit32(0)
		return nil
	}

	switch mnemonic {
	case "bl":
		if len(ops) != 1 || !isIdent(ops[0]) {
			return bad("bl needs a label operand")
		}
		a.fixups = append(a.fixups, fixup{
			line: n, offset: uint32(len(a.text)), symbol: ops[0], kind: fixCall,
		})
		a.emit32(0)
		return nil
	case "bx", "blx":
		rm, err := reg(0)
		if err != nil {
			return err
		}
		op := isa.OpBX
		if mnemonic == "blx" {
			op = isa.OpBLX
		}
		a.emit32(isa.EncodeR(op, 0, 0, rm))
		return nil
	case "syscall":
		a.emit32(uint32(isa.OpSYSCALL) << 26)
		return nil
	case "nop":
		a.emit32(uint32(isa.OpNOP) << 26)
		return nil
	case "mov", "mvn":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rm, err := reg(1)
		if err != nil {
			return err
		}
		op := isa.OpMOV
		if mnemonic == "mvn" {
			op = isa.OpMVN
		}
		a.emit32(isa.EncodeR(op, rd, 0, rm))
		return nil
	case "movz", "movt":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err2 := parseIntOp(ops, 1)
		if err2 != nil {
			return Error{n, err2.Error()}
		}
		if v < 0 || v > 0xFFFF {
			return bad("%s immediate out of range: %d", mnemonic, v)
		}
		if mnemonic == "movz" {
			a.emit32(isa.EncodeI(isa.OpMOVZ, rd, 0, int32(v)))
		} else {
			a.emit32(isa.EncodeI(isa.OpMOVT, rd, rd, int32(v)))
		}
		return nil
	case "li": // load 32-bit immediate macro
		rd, err := reg(0)
		if err != nil {
			return err
		}
		v, err2 := parseIntOp(ops, 1)
		if err2 != nil {
			return Error{n, err2.Error()}
		}
		u := uint32(v)
		a.emit32(isa.EncodeI(isa.OpMOVZ, rd, 0, int32(u&0xFFFF)))
		if u>>16 != 0 {
			a.emit32(isa.EncodeI(isa.OpMOVT, rd, rd, int32(u>>16)))
		}
		return nil
	case "la": // load symbol address macro (always two instructions)
		rd, err := reg(0)
		if err != nil {
			return err
		}
		if len(ops) != 2 || !isIdent(ops[1]) {
			return bad("la needs a symbol operand")
		}
		a.fixups = append(a.fixups, fixup{
			line: n, offset: uint32(len(a.text)), symbol: ops[1],
			kind: fixLoadAddr, rd: rd,
		})
		a.emit32(0)
		a.emit32(0)
		return nil
	case "cmp", "cmpi":
		rn, err := reg(0)
		if err != nil {
			return err
		}
		if mnemonic == "cmpi" && (len(ops) != 2 || !strings.HasPrefix(ops[1], "#")) {
			return bad("cmpi needs an immediate operand")
		}
		if len(ops) == 2 && strings.HasPrefix(ops[1], "#") {
			v, err2 := parseInt(ops[1])
			if err2 != nil {
				return Error{n, err2.Error()}
			}
			if v < -0x8000 || v > 0x7FFF {
				return bad("cmp immediate out of range")
			}
			a.emit32(isa.EncodeI(isa.OpCMPI, 0, rn, int32(v)))
			return nil
		}
		rm, err := reg(1)
		if err != nil {
			return err
		}
		a.emit32(isa.EncodeR(isa.OpCMP, 0, rn, rm))
		return nil
	case "tst":
		rn, err := reg(0)
		if err != nil {
			return err
		}
		rm, err := reg(1)
		if err != nil {
			return err
		}
		a.emit32(isa.EncodeR(isa.OpTST, 0, rn, rm))
		return nil
	}

	if op, ok := rTypeOps[mnemonic]; ok {
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rn, err := reg(1)
		if err != nil {
			return err
		}
		rm, err := reg(2)
		if err != nil {
			return err
		}
		a.emit32(isa.EncodeR(op, rd, rn, rm))
		return nil
	}
	if op, ok := iTypeOps[mnemonic]; ok {
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rn, err := reg(1)
		if err != nil {
			return err
		}
		v, err2 := parseIntOp(ops, 2)
		if err2 != nil {
			return Error{n, err2.Error()}
		}
		if v < -0x8000 || v > 0x7FFF {
			return bad("immediate out of range: %d", v)
		}
		a.emit32(isa.EncodeI(op, rd, rn, int32(v)))
		return nil
	}
	if op, ok := memImmOps[mnemonic]; ok {
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rn, imm, err := parseMemImm(ops)
		if err != nil {
			return Error{n, err.Error()}
		}
		a.emit32(isa.EncodeI(op, rd, rn, imm))
		return nil
	}
	if op, ok := memRegOps[mnemonic]; ok {
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rn, rm, err := parseMemReg(ops)
		if err != nil {
			return Error{n, err.Error()}
		}
		a.emit32(isa.EncodeR(op, rd, rn, rm))
		return nil
	}
	return bad("unknown mnemonic %q", mnemonic)
}

func parseIntOp(ops []string, i int) (int64, error) {
	if i >= len(ops) {
		return 0, fmt.Errorf("missing operand %d", i+1)
	}
	return parseInt(ops[i])
}

// parseMemImm parses the "[rn, #imm]" or "[rn]" operand pair. Because
// operands were split on commas, the bracket expression arrives as one or
// two fields.
func parseMemImm(ops []string) (rn uint8, imm int32, err error) {
	if len(ops) < 2 {
		return 0, 0, fmt.Errorf("missing address operand")
	}
	addr := strings.Join(ops[1:], ",")
	if !strings.HasPrefix(addr, "[") || !strings.HasSuffix(addr, "]") {
		return 0, 0, fmt.Errorf("bad address %q", addr)
	}
	inner := splitOperands(addr[1 : len(addr)-1])
	if len(inner) < 1 || len(inner) > 2 {
		return 0, 0, fmt.Errorf("bad address %q", addr)
	}
	rn, ok := parseReg(inner[0])
	if !ok {
		return 0, 0, fmt.Errorf("bad base register %q", inner[0])
	}
	if len(inner) == 2 {
		v, err := parseInt(inner[1])
		if err != nil {
			return 0, 0, err
		}
		if v < -0x8000 || v > 0x7FFF {
			return 0, 0, fmt.Errorf("offset out of range: %d", v)
		}
		imm = int32(v)
	}
	return rn, imm, nil
}

func parseMemReg(ops []string) (rn, rm uint8, err error) {
	if len(ops) < 2 {
		return 0, 0, fmt.Errorf("missing address operand")
	}
	addr := strings.Join(ops[1:], ",")
	if !strings.HasPrefix(addr, "[") || !strings.HasSuffix(addr, "]") {
		return 0, 0, fmt.Errorf("bad address %q", addr)
	}
	inner := splitOperands(addr[1 : len(addr)-1])
	if len(inner) != 2 {
		return 0, 0, fmt.Errorf("bad address %q", addr)
	}
	rn, ok := parseReg(inner[0])
	if !ok {
		return 0, 0, fmt.Errorf("bad base register %q", inner[0])
	}
	rm, ok = parseReg(inner[1])
	if !ok {
		return 0, 0, fmt.Errorf("bad index register %q", inner[1])
	}
	return rn, rm, nil
}

func (a *assembler) resolve() error {
	for _, f := range a.fixups {
		target, ok := a.symbols[f.symbol]
		if !ok {
			return Error{f.line, "undefined symbol " + f.symbol}
		}
		switch f.kind {
		case fixBranch, fixCall:
			// Targets resolve as pc + 4 + off*4 in the core, mirroring the
			// ARM convention of offsets relative to the next instruction.
			pc := a.textBase + f.offset
			diff := int64(target) - int64(pc+4)
			if diff%4 != 0 {
				return Error{f.line, "misaligned branch target"}
			}
			wordOff := int32(diff / 4)
			var w uint32
			if f.kind == fixBranch {
				w = isa.EncodeB(f.cond, wordOff)
			} else {
				w = isa.EncodeBL(wordOff)
			}
			putWord(a.text, f.offset, w)
		case fixLoadAddr:
			putWord(a.text, f.offset, isa.EncodeI(isa.OpMOVZ, f.rd, 0, int32(target&0xFFFF)))
			putWord(a.text, f.offset+4, isa.EncodeI(isa.OpMOVT, f.rd, f.rd, int32(target>>16)))
		case fixWord:
			buf := a.text
			if f.rd == 1 {
				buf = a.data
			}
			putWord(buf, f.offset, target)
		}
	}
	return nil
}

func putWord(buf []byte, off uint32, w uint32) {
	buf[off] = byte(w)
	buf[off+1] = byte(w >> 8)
	buf[off+2] = byte(w >> 16)
	buf[off+3] = byte(w >> 24)
}
