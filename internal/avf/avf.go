// Package avf implements the paper's AVF aggregation: execution-time
// weighted averaging across workloads (Eq. 2) and per-technology-node
// aggregation over fault cardinalities (Eq. 3).
package avf

import (
	"fmt"

	"mbusim/internal/core"
	"mbusim/internal/tech"
	"mbusim/internal/workloads"
)

// Weighted computes the execution-time weighted average AVF (Eq. 2):
//
//	W_AVF = sum(AVF_k * t_k) / sum(t_k)
//
// avfs and cycles must be parallel slices of per-workload values.
func Weighted(avfs []float64, cycles []uint64) (float64, error) {
	if len(avfs) != len(cycles) || len(avfs) == 0 {
		return 0, fmt.Errorf("avf: mismatched or empty inputs (%d vs %d)", len(avfs), len(cycles))
	}
	var num, den float64
	for i, a := range avfs {
		num += a * float64(cycles[i])
		den += float64(cycles[i])
	}
	if den == 0 {
		return 0, fmt.Errorf("avf: zero total execution time")
	}
	return num / den, nil
}

// NodeAVF combines per-cardinality AVFs with a node's upset rates (Eq. 3):
//
//	Node_AVF = sum_i AVF_i * f(i)
func NodeAVF(single, double, triple float64, node tech.Node) float64 {
	return single*node.Single + double*node.Double + triple*node.Triple
}

// ComponentAVF holds the weighted AVF of one component at each cardinality.
type ComponentAVF struct {
	Component string
	ByFaults  [4]float64 // index 1..3 used
}

// Increase returns the multiplicative AVF increase of k-bit over single-bit
// faults (the paper's Table IV columns).
func (c ComponentAVF) Increase(k int) float64 {
	if c.ByFaults[1] == 0 {
		return 0
	}
	return c.ByFaults[k] / c.ByFaults[1]
}

// WeightedFromResults computes the weighted AVF per component and
// cardinality from a full campaign grid, weighting by each workload's
// golden execution time.
func WeightedFromResults(rs *core.ResultSet, components []string, workloadNames []string) ([]ComponentAVF, error) {
	out := make([]ComponentAVF, 0, len(components))
	for _, comp := range components {
		ca := ComponentAVF{Component: comp}
		for k := 1; k <= 3; k++ {
			var avfs []float64
			var cycles []uint64
			for _, wn := range workloadNames {
				r, err := rs.Get(comp, wn, k)
				if err != nil {
					return nil, err
				}
				w, err := workloads.ByName(wn)
				if err != nil {
					return nil, err
				}
				g, err := w.Reference()
				if err != nil {
					return nil, err
				}
				avfs = append(avfs, r.AVF())
				cycles = append(cycles, g.Cycles)
			}
			wavf, err := Weighted(avfs, cycles)
			if err != nil {
				return nil, err
			}
			ca.ByFaults[k] = wavf
		}
		out = append(out, ca)
	}
	return out, nil
}

// NodeTable returns, for one component, the aggregate multi-bit AVF at
// every measured technology node (the bars of Fig. 7), alongside the
// single-bit-only AVF that a conventional assessment would report.
func NodeTable(ca ComponentAVF) []NodeAVFEntry {
	return NodeTableFor(ca, tech.Nodes)
}

// NodeTableFor is NodeTable over an explicit node list (e.g. including the
// projected post-22nm nodes of tech.AllNodes).
func NodeTableFor(ca ComponentAVF, nodes []tech.Node) []NodeAVFEntry {
	entries := make([]NodeAVFEntry, 0, len(nodes))
	for _, n := range nodes {
		entries = append(entries, NodeAVFEntry{
			Node:       n,
			Aggregate:  NodeAVF(ca.ByFaults[1], ca.ByFaults[2], ca.ByFaults[3], n),
			SingleOnly: ca.ByFaults[1],
		})
	}
	return entries
}

// NodeAVFEntry is one bar of Fig. 7: the single-bit AVF (green) and the
// aggregate multi-bit AVF (green+red) of a component at one node.
type NodeAVFEntry struct {
	Node       tech.Node
	Aggregate  float64
	SingleOnly float64
}

// Gap returns the assessment gap fraction: how much of the aggregate AVF a
// single-bit-only analysis misses.
func (e NodeAVFEntry) Gap() float64 {
	if e.Aggregate == 0 {
		return 0
	}
	return 1 - e.SingleOnly/e.Aggregate
}
