package avf

import (
	"math"
	"testing"
	"testing/quick"

	"mbusim/internal/tech"
)

func TestWeightedBasic(t *testing.T) {
	// Longer benchmarks dominate (Eq. 2).
	got, err := Weighted([]float64{0.1, 0.9}, []uint64{900, 100})
	if err != nil {
		t.Fatal(err)
	}
	want := (0.1*900 + 0.9*100) / 1000
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("weighted = %f, want %f", got, want)
	}
}

func TestWeightedErrors(t *testing.T) {
	if _, err := Weighted(nil, nil); err == nil {
		t.Fatal("empty inputs must error")
	}
	if _, err := Weighted([]float64{1}, []uint64{1, 2}); err == nil {
		t.Fatal("mismatched lengths must error")
	}
	if _, err := Weighted([]float64{1}, []uint64{0}); err == nil {
		t.Fatal("zero total time must error")
	}
}

func TestWeightedBounds(t *testing.T) {
	// Property: the weighted AVF lies within [min, max] of the inputs.
	f := func(a1, a2, a3 float64, c1, c2, c3 uint16) bool {
		clamp := func(x float64) float64 { return math.Abs(math.Mod(x, 1)) }
		avfs := []float64{clamp(a1), clamp(a2), clamp(a3)}
		cycles := []uint64{uint64(c1) + 1, uint64(c2) + 1, uint64(c3) + 1}
		got, err := Weighted(avfs, cycles)
		if err != nil {
			return false
		}
		lo, hi := avfs[0], avfs[0]
		for _, a := range avfs[1:] {
			lo = math.Min(lo, a)
			hi = math.Max(hi, a)
		}
		return got >= lo-1e-12 && got <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeAVF250nmIsSingleBit(t *testing.T) {
	n, _ := tech.ByName("250nm")
	if got := NodeAVF(0.2, 0.5, 0.9, n); got != 0.2 {
		t.Fatalf("250nm AVF = %f, want pure single-bit 0.2", got)
	}
}

func TestNodeAVF22nm(t *testing.T) {
	n, _ := tech.ByName("22nm")
	got := NodeAVF(0.2032, 0.2970, 0.3628, n) // the paper's L1D numbers
	want := 0.553*0.2032 + 0.344*0.2970 + 0.103*0.3628
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("22nm = %f, want %f", got, want)
	}
	// Sanity: with rising per-cardinality AVFs the aggregate exceeds the
	// single-bit AVF.
	if got <= 0.2032 {
		t.Fatal("aggregate must exceed single-bit when MBU AVFs are larger")
	}
}

func TestNodeAVFMonotoneAcrossNodes(t *testing.T) {
	// With AVF1 < AVF2 < AVF3, the assessment gap grows as nodes shrink,
	// except for the 45nm->32nm dip the paper also observes; the aggregate
	// AVF itself must never drop below single-bit.
	for _, n := range tech.Nodes {
		agg := NodeAVF(0.1, 0.2, 0.3, n)
		if agg < 0.1-1e-12 {
			t.Fatalf("%s: aggregate %f below single-bit", n.Name, agg)
		}
	}
	e22 := NodeAVF(0.1, 0.2, 0.3, tech.Nodes[7])
	e250 := NodeAVF(0.1, 0.2, 0.3, tech.Nodes[0])
	if e22 <= e250 {
		t.Fatal("22nm aggregate must exceed 250nm")
	}
}

func TestIncrease(t *testing.T) {
	ca := ComponentAVF{Component: "L1I"}
	ca.ByFaults[1] = 0.1201
	ca.ByFaults[2] = 0.1957
	ca.ByFaults[3] = 0.2514
	if got := ca.Increase(3); math.Abs(got-2.09) > 0.01 {
		t.Fatalf("3-bit increase = %f", got)
	}
	var zero ComponentAVF
	if zero.Increase(2) != 0 {
		t.Fatal("zero single-bit AVF must give zero increase")
	}
}

func TestNodeTableGap(t *testing.T) {
	ca := ComponentAVF{Component: "X"}
	ca.ByFaults[1] = 0.1
	ca.ByFaults[2] = 0.2
	ca.ByFaults[3] = 0.3
	entries := NodeTable(ca)
	if len(entries) != len(tech.Nodes) {
		t.Fatalf("%d entries", len(entries))
	}
	if entries[0].Gap() != 0 {
		t.Fatalf("250nm gap = %f, want 0", entries[0].Gap())
	}
	last := entries[len(entries)-1]
	if last.Gap() <= 0 || last.Gap() >= 1 {
		t.Fatalf("22nm gap = %f", last.Gap())
	}
}
