package tech

// Projected post-22nm nodes. The paper's technology data (Ibe et al.) ends
// at 22 nm; its conclusion states the methodology applies unchanged to
// FinFET-era nodes where "the per-component AVF and the overall
// microprocessor FIT rates assessment gaps between single-bit and
// aggregate multi-bit faults [are expected] to be even larger because of
// the higher rates of multi-bit faults".
//
// ProjectedNodes extends the Table VI/VII series with that expectation:
// the single-bit share keeps falling along the measured trend, and the raw
// per-bit FIT keeps falling per the FinFET reduction reported by Seifert
// et al. (the paper's ref [22]). These are extrapolations for what-if
// analysis, NOT measured data — they are kept out of Nodes so the paper's
// tables and figures never mix them in.
var ProjectedNodes = []Node{
	{Name: "14nm*", Nm: 14, Single: 0.480, Double: 0.370, Triple: 0.150, RawFIT: 14e-8},
	{Name: "10nm*", Nm: 10, Single: 0.420, Double: 0.390, Triple: 0.190, RawFIT: 10e-8},
	{Name: "7nm*", Nm: 7, Single: 0.360, Double: 0.400, Triple: 0.240, RawFIT: 7e-8},
}

// AllNodes returns the measured nodes followed by the projections (starred
// names mark extrapolated entries).
func AllNodes() []Node {
	out := make([]Node, 0, len(Nodes)+len(ProjectedNodes))
	out = append(out, Nodes...)
	return append(out, ProjectedNodes...)
}
