package tech

import (
	"math"
	"testing"
)

func TestRatesSumToOne(t *testing.T) {
	for _, n := range Nodes {
		sum := n.Single + n.Double + n.Triple
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: rates sum to %f", n.Name, sum)
		}
	}
}

func TestEightNodesOrdered(t *testing.T) {
	if len(Nodes) != 8 {
		t.Fatalf("%d nodes, want 8", len(Nodes))
	}
	for i := 1; i < len(Nodes); i++ {
		if Nodes[i].Nm >= Nodes[i-1].Nm {
			t.Fatal("nodes must shrink monotonically")
		}
	}
	if Nodes[0].Name != "250nm" || Nodes[7].Name != "22nm" {
		t.Fatal("range must be 250nm..22nm")
	}
}

func TestMultiBitRateGrowsWithDensity(t *testing.T) {
	// Table VI: the single-bit share falls monotonically toward 22nm.
	for i := 1; i < len(Nodes); i++ {
		if Nodes[i].Single >= Nodes[i-1].Single {
			t.Fatalf("single-bit rate not decreasing at %s", Nodes[i].Name)
		}
	}
	if Nodes[7].Single != 0.553 || Nodes[7].Triple != 0.103 {
		t.Fatal("22nm rates must match Table VI")
	}
}

func TestRawFITPeaksAt130nm(t *testing.T) {
	// Table VII: the per-bit rate rises to 130nm and then falls.
	peak := 0
	for i, n := range Nodes {
		if n.RawFIT > Nodes[peak].RawFIT {
			peak = i
		}
	}
	if Nodes[peak].Name != "130nm" {
		t.Fatalf("raw FIT peaks at %s, want 130nm", Nodes[peak].Name)
	}
}

func TestRate(t *testing.T) {
	n := Nodes[7]
	if n.Rate(1) != n.Single || n.Rate(2) != n.Double || n.Rate(3) != n.Triple {
		t.Fatal("Rate accessor mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for cardinality 4")
		}
	}()
	n.Rate(4)
}

func TestByName(t *testing.T) {
	n, err := ByName("65nm")
	if err != nil || n.Nm != 65 {
		t.Fatalf("ByName: %v %+v", err, n)
	}
	if _, err := ByName("7nm"); err == nil {
		t.Fatal("expected error for unlisted node")
	}
}

func TestComponentBits(t *testing.T) {
	want := map[string]int{
		"L1D": 262144, "L1I": 262144, "L2": 4194304,
		"RegFile": 2112, "ITLB": 1024, "DTLB": 1024,
	}
	total := 0
	for comp, bits := range want {
		got, err := ComponentBits(comp)
		if err != nil || got != bits {
			t.Errorf("%s: %d (%v), want %d", comp, got, err, bits)
		}
		total += got
	}
	// The six structures cover >94% of the CPU's memory cells per the
	// paper; sanity-check the total is the Table VIII sum.
	if total != 262144*2+4194304+2112+1024*2 {
		t.Fatalf("total bits %d", total)
	}
	if _, err := ComponentBits("BTB"); err == nil {
		t.Fatal("expected error for unknown component")
	}
}

func TestProjectedNodesContinueTrends(t *testing.T) {
	prev := Nodes[len(Nodes)-1]
	for _, n := range ProjectedNodes {
		if n.Nm >= prev.Nm {
			t.Fatalf("%s: projected nodes must shrink", n.Name)
		}
		if n.Single >= prev.Single {
			t.Fatalf("%s: single-bit share must keep falling", n.Name)
		}
		if n.RawFIT >= prev.RawFIT {
			t.Fatalf("%s: raw FIT must keep falling (FinFET trend)", n.Name)
		}
		sum := n.Single + n.Double + n.Triple
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: rates sum to %f", n.Name, sum)
		}
		prev = n
	}
	if len(AllNodes()) != len(Nodes)+len(ProjectedNodes) {
		t.Fatal("AllNodes incomplete")
	}
	// Projections are visually marked and never leak into Nodes.
	for _, n := range ProjectedNodes {
		if n.Name[len(n.Name)-1] != '*' {
			t.Fatalf("%s: projections must be starred", n.Name)
		}
	}
	for _, n := range Nodes {
		if n.Name[len(n.Name)-1] == '*' {
			t.Fatalf("%s: measured nodes must not be starred", n.Name)
		}
	}
}
