// Package tech holds the technology-node data the paper's aggregate
// analysis combines with the measured AVFs: the multi-bit upset rate per
// node (Table VI, from Ibe et al.), the raw per-bit FIT rate per node
// (Table VII) and the component sizes in bits (Table VIII).
package tech

import "fmt"

// Node is one fabrication technology node.
type Node struct {
	Name string
	Nm   int

	// Fraction of particle-induced upsets of each cardinality. Rates for
	// four bits and above are folded into Triple, as in the paper.
	Single, Double, Triple float64

	// RawFIT is the soft-error FIT rate of a single bit.
	RawFIT float64
}

// Rate returns the upset-rate fraction for a fault cardinality (1-3).
func (n Node) Rate(faults int) float64 {
	switch faults {
	case 1:
		return n.Single
	case 2:
		return n.Double
	case 3:
		return n.Triple
	}
	panic(fmt.Sprintf("tech: no rate for %d-bit faults", faults))
}

// Nodes lists the eight nodes of Tables VI and VII, 250 nm down to 22 nm.
var Nodes = []Node{
	{Name: "250nm", Nm: 250, Single: 1.000, Double: 0.000, Triple: 0.000, RawFIT: 47e-8},
	{Name: "180nm", Nm: 180, Single: 0.964, Double: 0.036, Triple: 0.000, RawFIT: 85e-8},
	{Name: "130nm", Nm: 130, Single: 0.934, Double: 0.044, Triple: 0.022, RawFIT: 106e-8},
	{Name: "90nm", Nm: 90, Single: 0.878, Double: 0.096, Triple: 0.026, RawFIT: 100e-8},
	{Name: "65nm", Nm: 65, Single: 0.816, Double: 0.161, Triple: 0.023, RawFIT: 85e-8},
	{Name: "45nm", Nm: 45, Single: 0.722, Double: 0.230, Triple: 0.048, RawFIT: 58e-8},
	{Name: "32nm", Nm: 32, Single: 0.653, Double: 0.291, Triple: 0.056, RawFIT: 38e-8},
	{Name: "22nm", Nm: 22, Single: 0.553, Double: 0.344, Triple: 0.103, RawFIT: 23e-8},
}

// ByName returns the named node.
func ByName(name string) (Node, error) {
	for _, n := range Nodes {
		if n.Name == name {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("tech: unknown node %q", name)
}

// ComponentBits returns the size in bits of each studied structure
// (Table VIII).
func ComponentBits(component string) (int, error) {
	switch component {
	case "L1D", "L1I":
		return 262144, nil
	case "L2":
		return 4194304, nil
	case "RegFile":
		return 2112, nil
	case "ITLB", "DTLB":
		return 1024, nil
	}
	return 0, fmt.Errorf("tech: unknown component %q", component)
}
