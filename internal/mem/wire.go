package mem

import (
	"fmt"

	"mbusim/internal/wire"
)

// EncodeWire appends the snapshot's complete state to w in the artifact
// wire format. The field order here and in DecodeSnapshotWire is part of
// the artifact format and is versioned by sim.SnapshotFormat; changing it
// requires bumping that constant.
func (s *Snapshot) EncodeWire(w *wire.Writer) {
	w.U32(s.size)
	w.Int(s.latency)
	w.U32(s.highWater)
	w.Int(len(s.chunks))
	for _, c := range s.chunks {
		w.U32(c)
	}
	w.Blob(s.data)
}

// DecodeSnapshotWire reads a snapshot encoded by EncodeWire. Structural
// inconsistencies (a chunk count that cannot match the stored payload)
// fail here; byte-level corruption is caught by the artifact's content
// hash before decoding starts.
func DecodeSnapshotWire(r *wire.Reader) (*Snapshot, error) {
	s := &Snapshot{
		size:      r.U32(),
		latency:   r.Int(),
		highWater: r.U32(),
	}
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if n < 0 || n > int(s.size)/snapChunk+1 {
		return nil, fmt.Errorf("mem: snapshot chunk count %d out of range for %d-byte RAM", n, s.size)
	}
	if n > 0 {
		s.chunks = make([]uint32, n)
		for i := range s.chunks {
			s.chunks[i] = r.U32()
		}
	}
	s.data = r.Blob()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
