package mem

import (
	"bytes"
	"math/bits"
)

// Snapshot support: RAM is by far the largest piece of machine state
// (8 MB), but a workload only ever writes a small, mostly-contiguous
// prefix of it (frames are allocated sequentially and the stack pages are
// largely untouched zeros). Snapshots therefore store only the non-zero
// chunks below the write high-water mark, which keeps a full checkpoint
// set per workload in the hundreds of kilobytes instead of tens of
// megabytes.

// snapChunk is the granularity of sparse RAM snapshots.
const snapChunk = 4096

// Snapshot is a deep, sparse copy of RAM contents. It is immutable once
// taken and safe to restore into any RAM of the same size any number of
// times, including concurrently.
type Snapshot struct {
	size      uint32
	latency   int
	highWater uint32
	chunks    []uint32 // start offsets of stored chunks, ascending
	data      []byte   // concatenated chunk payloads
}

// Snapshot captures the current RAM contents.
func (r *RAM) Snapshot() *Snapshot {
	s := &Snapshot{
		size:      uint32(len(r.bytes)),
		latency:   r.latency,
		highWater: r.highWater,
	}
	for start := uint32(0); start < r.highWater; start += snapChunk {
		end := start + snapChunk
		if end > s.size {
			end = s.size
		}
		chunk := r.bytes[start:end]
		if allZero(chunk) {
			continue
		}
		s.chunks = append(s.chunks, start)
		s.data = append(s.data, chunk...)
	}
	return s
}

// Restore overwrites the RAM contents with the snapshot's. The RAM must
// have the same size as the snapshotted one (a programming error
// otherwise). Bytes the snapshot recorded as zero are zeroed, so restoring
// into a dirty RAM is exact; restoring into a freshly allocated RAM only
// pays for the non-zero chunks plus the previously written span.
func (r *RAM) Restore(s *Snapshot) {
	if uint32(len(r.bytes)) != s.size {
		Assertf(false, "mem: restore of %d-byte snapshot into %d-byte RAM", s.size, len(r.bytes))
	}
	// Clear everything this RAM may have written, then lay the snapshot's
	// non-zero chunks back down.
	clearTo := r.highWater
	if s.highWater > clearTo {
		clearTo = s.highWater
	}
	zero(r.bytes[:clearTo])
	off := 0
	for _, start := range s.chunks {
		end := int(start) + snapChunk
		if end > int(s.size) {
			end = int(s.size)
		}
		n := end - int(start)
		copy(r.bytes[start:end], s.data[off:off+n])
		off += n
	}
	r.latency = s.latency
	r.highWater = s.highWater
}

// TrackDirty arms dirty tracking: from now on every write marks its chunk,
// and RestoreDirty can rewind the RAM to the snapshot it currently equals
// by touching only the marked chunks. Arming (or re-arming) clears the
// dirty set, so call it only when the RAM bit-equals the snapshot that
// RestoreDirty will later be given.
func (r *RAM) TrackDirty() {
	words := (len(r.bytes)/snapChunk + 63) / 64
	if len(r.chunkDirty) != words {
		r.chunkDirty = make([]uint64, words)
	} else {
		for i := range r.chunkDirty {
			r.chunkDirty[i] = 0
		}
	}
	r.track = true
}

// RestoreDirty rewinds the RAM to snapshot s by restoring only the chunks
// written since TrackDirty was last armed, then re-arms tracking. It is
// only correct when the RAM bit-equalled s at arm time (every untracked
// chunk still holds s's contents); the delta-restore layer guarantees that
// by arming right after a full Restore of the same snapshot.
func (r *RAM) RestoreDirty(s *Snapshot) {
	if uint32(len(r.bytes)) != s.size {
		Assertf(false, "mem: delta restore of %d-byte snapshot into %d-byte RAM", s.size, len(r.bytes))
	}
	if !r.track {
		r.Restore(s)
		r.TrackDirty()
		return
	}
	// Walk the dirty bitmap and the snapshot's sorted chunk offsets in one
	// merged pass: a dirty chunk the snapshot stored is copied back, a
	// dirty chunk it skipped (all-zero at snapshot time) is zeroed.
	si := 0
	for wi, word := range r.chunkDirty {
		if word == 0 {
			continue
		}
		for word != 0 {
			bit := word & (-word)
			ch := uint32(wi)<<6 + uint32(bits.TrailingZeros64(word))
			word &^= bit
			start := ch * snapChunk
			end := start + snapChunk
			if end > s.size {
				end = s.size
			}
			for si < len(s.chunks) && s.chunks[si] < start {
				si++
			}
			if si < len(s.chunks) && s.chunks[si] == start {
				// Every stored chunk is snapChunk long except possibly the
				// final one at the RAM boundary, so the payload offset is a
				// multiplication, not a scan.
				off := si * snapChunk
				copy(r.bytes[start:end], s.data[off:off+int(end-start)])
			} else {
				zero(r.bytes[start:end])
			}
		}
		r.chunkDirty[wi] = 0
	}
	r.latency = s.latency
	r.highWater = s.highWater
}

// EqualsSnapshot reports whether the RAM contents bit-equal the snapshot.
// The campaign's convergence exit uses this to detect that a faulty run's
// state has re-joined the golden run at a checkpoint cycle. Bytes above the
// high-water mark are zero by construction (every write raises the mark),
// so once the marks match, comparing below them is exhaustive.
func (r *RAM) EqualsSnapshot(s *Snapshot) bool {
	if uint32(len(r.bytes)) != s.size || r.latency != s.latency || r.highWater != s.highWater {
		return false
	}
	prev := uint32(0)
	off := 0
	for _, start := range s.chunks {
		if !allZero(r.bytes[prev:start]) {
			return false
		}
		end := start + snapChunk
		if end > s.size {
			end = s.size
		}
		n := int(end - start)
		if !bytes.Equal(r.bytes[start:end], s.data[off:off+n]) {
			return false
		}
		off += n
		prev = end
	}
	// The final stored chunk may extend past the high-water mark, in which
	// case everything written is already compared.
	if prev >= s.highWater {
		return true
	}
	return allZero(r.bytes[prev:s.highWater])
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
