package mem

// Snapshot support: RAM is by far the largest piece of machine state
// (8 MB), but a workload only ever writes a small, mostly-contiguous
// prefix of it (frames are allocated sequentially and the stack pages are
// largely untouched zeros). Snapshots therefore store only the non-zero
// chunks below the write high-water mark, which keeps a full checkpoint
// set per workload in the hundreds of kilobytes instead of tens of
// megabytes.

// snapChunk is the granularity of sparse RAM snapshots.
const snapChunk = 4096

// Snapshot is a deep, sparse copy of RAM contents. It is immutable once
// taken and safe to restore into any RAM of the same size any number of
// times, including concurrently.
type Snapshot struct {
	size      uint32
	latency   int
	highWater uint32
	chunks    []uint32 // start offsets of stored chunks, ascending
	data      []byte   // concatenated chunk payloads
}

// Snapshot captures the current RAM contents.
func (r *RAM) Snapshot() *Snapshot {
	s := &Snapshot{
		size:      uint32(len(r.bytes)),
		latency:   r.latency,
		highWater: r.highWater,
	}
	for start := uint32(0); start < r.highWater; start += snapChunk {
		end := start + snapChunk
		if end > s.size {
			end = s.size
		}
		chunk := r.bytes[start:end]
		if allZero(chunk) {
			continue
		}
		s.chunks = append(s.chunks, start)
		s.data = append(s.data, chunk...)
	}
	return s
}

// Restore overwrites the RAM contents with the snapshot's. The RAM must
// have the same size as the snapshotted one (a programming error
// otherwise). Bytes the snapshot recorded as zero are zeroed, so restoring
// into a dirty RAM is exact; restoring into a freshly allocated RAM only
// pays for the non-zero chunks plus the previously written span.
func (r *RAM) Restore(s *Snapshot) {
	if uint32(len(r.bytes)) != s.size {
		Assertf(false, "mem: restore of %d-byte snapshot into %d-byte RAM", s.size, len(r.bytes))
	}
	// Clear everything this RAM may have written, then lay the snapshot's
	// non-zero chunks back down.
	clearTo := r.highWater
	if s.highWater > clearTo {
		clearTo = s.highWater
	}
	zero(r.bytes[:clearTo])
	off := 0
	for _, start := range s.chunks {
		end := int(start) + snapChunk
		if end > int(s.size) {
			end = int(s.size)
		}
		n := end - int(start)
		copy(r.bytes[start:end], s.data[off:off+n])
		off += n
	}
	r.latency = s.latency
	r.highWater = s.highWater
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
