// Package mem models the physical memory of the simulated machine: a flat
// RAM array addressed by physical addresses, accessed in cache-line units by
// the cache hierarchy and in words by the page-table walker.
//
// It also defines AssertError, the simulated-hardware assertion used across
// the machine model. The paper's "Assert" outcome class covers runs where
// the simulator itself detects an impossible condition (most prominently a
// physical address request outside the system map, the typical result of a
// corrupted TLB physical frame number). Model code signals such conditions
// with panic(AssertError{...}); the campaign runner recovers them and
// classifies the run as Assert.
package mem

import "fmt"

// AssertError is a simulated-hardware assertion failure.
type AssertError struct {
	Msg string
}

func (e AssertError) Error() string { return "simulator assert: " + e.Msg }

// Assertf panics with an AssertError when cond is false.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic(AssertError{Msg: fmt.Sprintf(format, args...)})
	}
}

// RAM is the physical memory. The zero value is not usable; call NewRAM.
type RAM struct {
	bytes   []byte
	latency int // access latency in cycles, charged by the cache hierarchy

	// highWater is the exclusive upper bound of bytes ever written, used
	// by the snapshot layer to bound its scan and restore work.
	highWater uint32

	// Dirty tracking for delta restore: when armed (TrackDirty), every
	// write marks its snapChunk-sized chunk in the bitmap, and
	// RestoreDirty rewinds only the marked chunks instead of the whole
	// written span. Disarmed by default, so single-use machines pay one
	// predictable branch per write.
	track      bool
	chunkDirty []uint64 // 1 bit per snapChunk of RAM
}

// DefaultLatency is the DRAM access latency in CPU cycles.
const DefaultLatency = 60

// NewRAM returns a RAM of the given size in bytes.
func NewRAM(size int) *RAM {
	return &RAM{bytes: make([]byte, size), latency: DefaultLatency}
}

// Size returns the RAM size in bytes.
func (r *RAM) Size() uint32 { return uint32(len(r.bytes)) }

// Latency returns the access latency in cycles.
func (r *RAM) Latency() int { return r.latency }

// check panics with an AssertError if [pa, pa+n) is outside RAM. All
// physical accesses funnel through here, so corrupted physical addresses
// produced anywhere in the machine surface as Assert outcomes.
func (r *RAM) check(pa uint32, n int) {
	end := uint64(pa) + uint64(n)
	if end > uint64(len(r.bytes)) {
		Assertf(false, "physical access %#x+%d outside system map (%#x bytes of RAM)", pa, n, len(r.bytes))
	}
}

// touch records a write to [pa, pa+n). Must follow a successful check.
func (r *RAM) touch(pa uint32, n int) {
	if end := pa + uint32(n); end > r.highWater {
		r.highWater = end
	}
	if r.track && n > 0 {
		for ch := pa / snapChunk; ch <= (pa+uint32(n)-1)/snapChunk; ch++ {
			r.chunkDirty[ch>>6] |= 1 << (ch & 63)
		}
	}
}

// ReadLine copies the cache line at pa into dst and returns the latency.
// pa must be aligned to len(dst).
func (r *RAM) ReadLine(pa uint32, dst []byte) int {
	r.check(pa, len(dst))
	copy(dst, r.bytes[pa:])
	return r.latency
}

// WriteLine writes a full cache line at pa and returns the latency.
func (r *RAM) WriteLine(pa uint32, src []byte) int {
	r.check(pa, len(src))
	r.touch(pa, len(src))
	copy(r.bytes[pa:], src)
	return r.latency
}

// ReadWord reads an aligned 32-bit word (used by the loader and tests; the
// running machine reads through the cache hierarchy).
func (r *RAM) ReadWord(pa uint32) uint32 {
	r.check(pa, 4)
	b := r.bytes[pa:]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// WriteWord writes an aligned 32-bit word directly to RAM.
func (r *RAM) WriteWord(pa uint32, v uint32) {
	r.check(pa, 4)
	r.touch(pa, 4)
	b := r.bytes[pa:]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

// WriteBytes copies buf into RAM at pa (loader use).
func (r *RAM) WriteBytes(pa uint32, buf []byte) {
	r.check(pa, len(buf))
	r.touch(pa, len(buf))
	copy(r.bytes[pa:], buf)
}

// ReadBytes copies n bytes at pa into a new slice (test and loader use).
func (r *RAM) ReadBytes(pa uint32, n int) []byte {
	r.check(pa, n)
	out := make([]byte, n)
	copy(out, r.bytes[pa:])
	return out
}
