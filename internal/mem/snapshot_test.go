package mem

import (
	"bytes"
	"testing"
)

func TestRAMSnapshotRoundTrip(t *testing.T) {
	r := NewRAM(64 << 10)
	r.WriteWord(0, 0x11223344)
	r.WriteWord(4096, 0xA5A5A5A5)
	r.WriteBytes(9000, []byte{1, 2, 3, 4, 5})
	want := append([]byte(nil), r.bytes...)

	s := r.Snapshot()

	// Restoring into a dirty RAM reproduces the snapshotted contents
	// exactly, including bytes the snapshot recorded as zero.
	r.WriteWord(0, 0xFFFFFFFF)
	r.WriteWord(2048, 0xDEADBEEF) // a chunk that was all-zero at snapshot time
	r.WriteWord(60000, 7)         // above the snapshot's high-water mark
	r.Restore(s)
	if !bytes.Equal(r.bytes, want) {
		t.Fatal("restored RAM contents differ from snapshotted contents")
	}

	// Restoring into a fresh RAM reproduces them too.
	r2 := NewRAM(64 << 10)
	r2.Restore(s)
	if !bytes.Equal(r2.bytes, want) {
		t.Fatal("restore into fresh RAM differs from snapshotted contents")
	}
}

func TestRAMSnapshotNoAliasing(t *testing.T) {
	r := NewRAM(16 << 10)
	r.WriteWord(128, 0x01020304)
	s := r.Snapshot()

	r2 := NewRAM(16 << 10)
	r2.Restore(s)
	r2.WriteWord(128, 0xFFFFFFFF)
	r2.WriteWord(132, 0xEEEEEEEE)

	r3 := NewRAM(16 << 10)
	r3.Restore(s)
	if got := r3.ReadWord(128); got != 0x01020304 {
		t.Fatalf("snapshot mutated through a restored RAM: word = %#x", got)
	}
	if got := r3.ReadWord(132); got != 0 {
		t.Fatalf("snapshot mutated through a restored RAM: word = %#x", got)
	}
}

func TestRAMSnapshotSizeMismatchAsserts(t *testing.T) {
	s := NewRAM(4 << 10).Snapshot()
	defer func() {
		if _, ok := recover().(AssertError); !ok {
			t.Fatal("expected AssertError for mismatched restore size")
		}
	}()
	NewRAM(8 << 10).Restore(s)
}

func TestRAMHighWaterTracksWrites(t *testing.T) {
	r := NewRAM(8 << 10)
	if r.highWater != 0 {
		t.Fatalf("fresh RAM highWater = %d", r.highWater)
	}
	r.WriteBytes(100, []byte{1, 2, 3})
	if r.highWater != 103 {
		t.Fatalf("highWater after WriteBytes = %d, want 103", r.highWater)
	}
	line := make([]byte, 64)
	r.WriteLine(512, line)
	if r.highWater != 576 {
		t.Fatalf("highWater after WriteLine = %d, want 576", r.highWater)
	}
	r.ReadWord(4096) // reads must not move the mark
	if r.highWater != 576 {
		t.Fatalf("highWater after read = %d, want 576", r.highWater)
	}
}

// TestRAMDeltaRestoreRoundTrip pins the dirty-tracking contract: after
// arming at a snapshot-equal state, any pattern of writes — re-dirtying
// stored chunks, dirtying chunks the snapshot skipped as all-zero, writing
// above the high-water mark, straddling chunk boundaries — is rewound
// exactly by RestoreDirty, repeatedly, without a full restore.
func TestRAMDeltaRestoreRoundTrip(t *testing.T) {
	r := NewRAM(64 << 10)
	r.WriteWord(0, 0x11223344)
	r.WriteWord(4096, 0xA5A5A5A5)
	r.WriteBytes(9000, []byte{1, 2, 3, 4, 5})
	s := r.Snapshot()
	want := append([]byte(nil), r.bytes...)

	r.TrackDirty()
	for round := 0; round < 3; round++ {
		r.WriteWord(0, 0xFFFFFFFF)
		r.WriteWord(2048, 0xDEADBEEF)          // chunk stored by the snapshot
		r.WriteWord(20480, 0x0BADF00D)         // chunk all-zero at snapshot time
		r.WriteWord(60000, 7)                  // above the high-water mark
		r.WriteBytes(8190, []byte{9, 9, 9, 9}) // straddles a chunk boundary
		r.RestoreDirty(s)
		if !bytes.Equal(r.bytes, want) {
			t.Fatalf("round %d: delta-restored RAM differs from snapshotted contents", round)
		}
		if !r.EqualsSnapshot(s) {
			t.Fatalf("round %d: EqualsSnapshot false after delta restore", round)
		}
	}

	// Untracked RAM: RestoreDirty falls back to a full restore and arms.
	r2 := NewRAM(64 << 10)
	r2.WriteWord(512, 5)
	r2.RestoreDirty(s)
	if !bytes.Equal(r2.bytes, want) {
		t.Fatal("untracked RestoreDirty fallback differs from snapshotted contents")
	}
	r2.WriteWord(512, 6)
	r2.RestoreDirty(s)
	if !bytes.Equal(r2.bytes, want) {
		t.Fatal("armed-by-fallback delta restore differs from snapshotted contents")
	}
}

// TestRAMDeltaRestoreNoAliasing: mutating a delta-restored RAM never
// reaches back into the snapshot.
func TestRAMDeltaRestoreNoAliasing(t *testing.T) {
	r := NewRAM(16 << 10)
	r.WriteWord(128, 0x01020304)
	s := r.Snapshot()
	want := append([]byte(nil), r.bytes...)

	r.TrackDirty()
	r.WriteWord(128, 0xFFFFFFFF)
	r.RestoreDirty(s)
	r.WriteWord(128, 0xEEEEEEEE) // mutate after the delta restore

	r3 := NewRAM(16 << 10)
	r3.Restore(s)
	if !bytes.Equal(r3.bytes, want) {
		t.Fatal("snapshot mutated through a delta-restored RAM")
	}
}

// TestRAMEqualsSnapshot: the equality check accepts the snapshotted state
// and rejects any byte or scalar difference.
func TestRAMEqualsSnapshot(t *testing.T) {
	r := NewRAM(64 << 10)
	r.WriteWord(4096, 0xA5A5A5A5)
	r.WriteBytes(9000, []byte{1, 2, 3})
	s := r.Snapshot()
	if !r.EqualsSnapshot(s) {
		t.Fatal("RAM does not equal its own snapshot")
	}
	r.WriteWord(4096, 0xA5A5A5A4)
	if r.EqualsSnapshot(s) {
		t.Fatal("EqualsSnapshot missed a changed word in a stored chunk")
	}
	r.WriteWord(4096, 0xA5A5A5A5)
	if !r.EqualsSnapshot(s) {
		t.Fatal("EqualsSnapshot false after undoing the change")
	}
	r.WriteWord(128, 1) // chunk the snapshot recorded as all-zero
	if r.EqualsSnapshot(s) {
		t.Fatal("EqualsSnapshot missed a write into an all-zero chunk")
	}
	r.WriteWord(128, 0)
	r.WriteWord(60000, 1) // raises the high-water mark
	if r.EqualsSnapshot(s) {
		t.Fatal("EqualsSnapshot missed a raised high-water mark")
	}
}
