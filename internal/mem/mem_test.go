package mem

import "testing"

func TestReadWriteWord(t *testing.T) {
	r := NewRAM(4096)
	r.WriteWord(8, 0xCAFEBABE)
	if v := r.ReadWord(8); v != 0xCAFEBABE {
		t.Fatalf("read %#x", v)
	}
	// Little-endian layout.
	if b := r.ReadBytes(8, 4); b[0] != 0xBE || b[3] != 0xCA {
		t.Fatalf("layout % x", b)
	}
}

func TestLineTransfer(t *testing.T) {
	r := NewRAM(4096)
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i)
	}
	if lat := r.WriteLine(64, src); lat != DefaultLatency {
		t.Fatalf("latency %d", lat)
	}
	dst := make([]byte, 64)
	r.ReadLine(64, dst)
	for i := range dst {
		if dst[i] != byte(i) {
			t.Fatalf("byte %d = %d", i, dst[i])
		}
	}
}

func TestOutOfRangeAsserts(t *testing.T) {
	r := NewRAM(4096)
	cases := []func(){
		func() { r.ReadWord(4096) },
		func() { r.WriteWord(4094, 1) },
		func() { r.ReadLine(4095, make([]byte, 64)) },
		func() { r.WriteBytes(4090, make([]byte, 10)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if _, ok := recover().(AssertError); !ok {
					t.Fatalf("case %d: expected AssertError", i)
				}
			}()
			f()
		}()
	}
}

func TestAssertf(t *testing.T) {
	Assertf(true, "never fires")
	defer func() {
		ae, ok := recover().(AssertError)
		if !ok {
			t.Fatal("expected AssertError")
		}
		if ae.Error() == "" {
			t.Fatal("empty message")
		}
	}()
	Assertf(false, "value %d out of map", 7)
}
