// Package cpu implements the out-of-order core of the simulated machine: a
// cycle-stepped pipeline with register renaming onto a physical register
// file, a reorder buffer, an instruction queue, load/store queues with
// store-to-load forwarding, and branch prediction. The configuration
// defaults follow the paper's Table I (ARM Cortex-A9-like).
//
// The core executes architecturally: instruction bits come out of the L1I
// cache through the ITLB, data comes out of the L1D cache through the DTLB,
// and register values live in the injectable physical register file, so a
// fault injected anywhere in that state genuinely changes program behaviour.
package cpu

import (
	"mbusim/internal/cache"
	"mbusim/internal/isa"
	"mbusim/internal/tlb"
	"mbusim/internal/vm"
)

// StopKind says why the core stopped.
type StopKind uint8

const (
	StopNone        StopKind = iota
	StopExit                 // program exited via syscall
	StopUndef                // undefined instruction committed
	StopSegv                 // memory fault (unmapped or protected page)
	StopAlign                // misaligned access committed
	StopKernelPanic          // corrupted page tables reached the walker
	StopKilled               // kernel killed the process (bad syscall, fault in handler)
	StopDeadlock             // watchdog: no commit progress
)

func (k StopKind) String() string {
	switch k {
	case StopNone:
		return "running"
	case StopExit:
		return "exit"
	case StopUndef:
		return "undefined-instruction"
	case StopSegv:
		return "segfault"
	case StopAlign:
		return "alignment-fault"
	case StopKernelPanic:
		return "kernel-panic"
	case StopKilled:
		return "killed"
	case StopDeadlock:
		return "deadlock"
	}
	return "unknown"
}

// SysAction tells the core how to continue after a system call.
type SysAction uint8

const (
	SysContinue SysAction = iota
	SysExit               // stop with StopExit
	SysKill               // stop with StopKilled
	SysPanic              // stop with StopKernelPanic (fault inside the kernel)
)

// OS handles system calls at commit time. Implementations read arguments
// with Core.ArchReg and access memory through their own cache handle.
type OS interface {
	Syscall(c *Core) (r0 uint32, action SysAction)
}

type excKind uint8

const (
	excNone excKind = iota
	excUndef
	excSegv
	excAlign
	excKPanic
)

type robEntry struct {
	seq   uint64
	pc    uint32
	inst  isa.Inst
	valid bool
	done  bool

	exc     excKind
	excAddr uint32

	archDest         uint8 // architectural dest (0..16) or isa.NoReg
	newPhys, oldPhys uint8

	predNext uint32
	isBranch bool

	isLoad, isStore bool
	memSize         uint8
	addrVA, addrPA  uint32
	addrKnown       bool
	storeVal        uint32

	isSys bool
}

type fetchedInst struct {
	pc       uint32
	inst     isa.Inst
	exc      excKind
	excAddr  uint32
	predNext uint32
}

type iqEntry struct {
	slot int
	seq  uint64
	srcs [3]uint8 // physical registers, NoPhys if unused
}

type wbEntry struct {
	slot      int
	seq       uint64
	destPhys  uint8
	val       uint32
	doneCycle uint64

	isBranch   bool
	isCond     bool
	isInd      bool
	brPC       uint32
	taken      bool
	actualNext uint32
}

type pendingLoad struct {
	slot int
	seq  uint64
}

// Core is the out-of-order CPU core.
type Core struct {
	cfg Config

	icache, dcache *cache.Cache
	itlb, dtlb     *tlb.TLB
	walker         *vm.Walker
	os             OS

	rf        *RegFile
	renameMap [isa.NumArch]uint8 // speculative map, updated at rename
	archMap   [isa.NumArch]uint8 // committed map, updated at commit
	freeList  []uint8

	rob      []robEntry
	robHead  int
	robCount int
	seqNext  uint64

	fetchPC      uint32
	fetchQ       []fetchedInst
	fqHead       int // consumed prefix of fetchQ (reset when drained)
	fetchReadyAt uint64
	fetchFaulted bool

	iq       []iqEntry
	inflight []wbEntry
	pending  []pendingLoad
	sq       []int // ROB slots of in-flight stores, program order
	sqHead   int   // consumed prefix of sq
	lqCount  int
	sqCount  int

	pred *predictor

	cycle      uint64
	lastCommit uint64

	stopped  StopKind
	stopPC   uint32
	stopAddr uint32

	// Stats.
	Committed   uint64
	Mispredicts uint64
	Squashes    uint64

	// TraceCommit, when non-nil, is invoked for every committed
	// instruction (debugging aid; see cmd/mcc -trace).
	TraceCommit func(pc uint32, raw uint32)
}

// New wires a core to its memory system and operating system handler.
func New(cfg Config, ic, dc *cache.Cache, it, dt *tlb.TLB, w *vm.Walker, os OS) *Core {
	c := &Core{
		cfg:    cfg,
		icache: ic, dcache: dc,
		itlb: it, dtlb: dt,
		walker: w,
		os:     os,
		rf:     NewRegFile(cfg.PhysRegs),
		rob:    make([]robEntry, cfg.ROBSize),
		pred:   newPredictor(),
	}
	for i := 0; i < isa.NumArch; i++ {
		c.renameMap[i] = uint8(i)
		c.archMap[i] = uint8(i)
	}
	for p := isa.NumArch; p < cfg.PhysRegs; p++ {
		c.freeList = append(c.freeList, uint8(p))
	}
	return c
}

// RegFile exposes the physical register file for fault injection.
func (c *Core) RegFile() *RegFile { return c.rf }

// Cycles returns the number of cycles simulated so far.
func (c *Core) Cycles() uint64 { return c.cycle }

// Stopped returns the stop reason, StopNone while running.
func (c *Core) Stopped() StopKind { return c.stopped }

// StopPC returns the PC of the instruction that stopped the core.
func (c *Core) StopPC() uint32 { return c.stopPC }

// StopAddr returns the faulting address for memory faults.
func (c *Core) StopAddr() uint32 { return c.stopAddr }

// SetPC sets the fetch PC (loader use, before the first cycle).
func (c *Core) SetPC(pc uint32) { c.fetchPC = pc }

// ArchReg returns the committed architectural value of register i.
func (c *Core) ArchReg(i int) uint32 { return c.rf.Val(c.archMap[i]) }

// SetArchReg sets the committed architectural value of register i (loader
// use, before the first cycle).
func (c *Core) SetArchReg(i int, v uint32) { c.rf.Write(c.archMap[i], v) }

// ArchHash digests the committed architectural state (instruction count +
// every architectural register) with FNV-1a. It reads the register file
// storage directly, bypassing any forensics probe: the lockstep divergence
// check must not itself count as a read of a corrupted bit.
func (c *Core) ArchHash() uint64 {
	h := uint64(0xcbf29ce484222325)
	h = (h ^ c.Committed) * 0x100000001b3
	for i := 0; i < isa.NumArch; i++ {
		h = (h ^ uint64(c.rf.vals[c.archMap[i]])) * 0x100000001b3
	}
	return h
}

func (c *Core) stop(kind StopKind, pc, addr uint32) {
	c.stopped = kind
	c.stopPC = pc
	c.stopAddr = addr
}

// Cycle advances the machine by one clock cycle. Pipeline stages run in
// reverse order so results move between stages with one-cycle latency.
func (c *Core) Cycle() {
	if c.stopped != StopNone {
		return
	}
	c.cycle++
	c.commit()
	if c.stopped != StopNone {
		return
	}
	c.writeback()
	c.executeLoads()
	c.issue()
	c.rename()
	c.fetch()

	if c.cycle-c.lastCommit > c.cfg.DeadlockLimit {
		c.stop(StopDeadlock, c.fetchPC, 0)
	}
}

func (c *Core) robPos(slot int) int {
	return (slot - c.robHead + c.cfg.ROBSize) % c.cfg.ROBSize
}

func (c *Core) fqLen() int { return len(c.fetchQ) - c.fqHead }

// --- Fetch ---

func (c *Core) fetch() {
	if c.fetchFaulted || c.cycle < c.fetchReadyAt {
		return
	}
	if c.fqHead > 0 {
		// Compact the consumed prefix so the queue reuses its backing
		// array instead of growing without bound.
		n := copy(c.fetchQ, c.fetchQ[c.fqHead:])
		c.fetchQ = c.fetchQ[:n]
		c.fqHead = 0
	}
	for n := 0; n < c.cfg.FetchWidth && c.fqLen() < c.cfg.FetchQSize; n++ {
		pc := c.fetchPC
		fi := fetchedInst{pc: pc, predNext: pc + 4}
		if pc&3 != 0 {
			fi.exc, fi.excAddr = excAlign, pc
			c.fetchQ = append(c.fetchQ, fi)
			c.fetchFaulted = true
			return
		}
		if pc >= vm.VASize {
			fi.exc, fi.excAddr = excSegv, pc
			c.fetchQ = append(c.fetchQ, fi)
			c.fetchFaulted = true
			return
		}
		vpn := pc >> tlb.PageShift
		tr, hit := c.itlb.Lookup(vpn)
		if !hit {
			var lat int
			var fault vm.WalkFault
			tr, lat, fault = c.walker.Refill(c.itlb, vpn)
			c.fetchReadyAt = c.cycle + uint64(lat)
			switch fault {
			case vm.WalkUnmapped:
				fi.exc, fi.excAddr = excSegv, pc
				c.fetchQ = append(c.fetchQ, fi)
				c.fetchFaulted = true
				return
			case vm.WalkBadFrame:
				fi.exc, fi.excAddr = excKPanic, pc
				c.fetchQ = append(c.fetchQ, fi)
				c.fetchFaulted = true
				return
			}
			if lat > 0 {
				return // retry after the walk completes
			}
		}
		pa := tr.PFN<<tlb.PageShift | pc&(tlb.PageSize-1)
		word, lat := c.icache.ReadWord(pa)
		if lat > c.icache.Config().Latency {
			// Miss: stall fetch until the fill completes, then deliver.
			c.fetchReadyAt = c.cycle + uint64(lat)
		}
		inst, err := isa.Decode(word)
		if err != nil {
			fi.inst = inst
			fi.exc, fi.excAddr = excUndef, pc
			c.fetchQ = append(c.fetchQ, fi)
			c.fetchPC = pc + 4
			continue
		}
		fi.inst = inst
		// Pre-decode control flow and predict the next PC.
		switch inst.Op {
		case isa.OpB:
			target := pc + 4 + uint32(inst.Imm)*4
			if inst.Cond == isa.CondAL {
				fi.predNext = target
			} else if c.pred.predictCond(pc) {
				fi.predNext = target
			}
		case isa.OpBL:
			fi.predNext = pc + 4 + uint32(inst.Imm)*4
		case isa.OpBX, isa.OpBLX:
			if tgt, ok := c.pred.predictIndirect(pc); ok {
				fi.predNext = tgt
			}
		}
		c.fetchQ = append(c.fetchQ, fi)
		c.fetchPC = fi.predNext
		if fi.predNext != pc+4 {
			return // redirected: start a new fetch group next cycle
		}
	}
}

// --- Rename/dispatch ---

// sources lists the physical registers an instruction reads.
func (c *Core) sources(in isa.Inst) [3]uint8 {
	srcs := [3]uint8{NoPhys, NoPhys, NoPhys}
	n := 0
	add := func(arch uint8) {
		srcs[n] = c.renameMap[arch]
		n++
	}
	switch in.Class {
	case isa.ClassALU:
		if in.Rn != isa.NoReg {
			add(in.Rn)
		}
		// MOV/MVN track their single source through both Rn and Rm; Rn was
		// already added above, so only genuine second sources follow.
		if in.Rm != isa.NoReg && in.Op != isa.OpMOV && in.Op != isa.OpMVN {
			add(in.Rm)
		}
	case isa.ClassCmp:
		add(in.Rn)
		if in.Op != isa.OpCMPI {
			add(in.Rm)
		}
	case isa.ClassLoad:
		add(in.Rn)
		if in.Op == isa.OpLDRR || in.Op == isa.OpLDRBR {
			add(in.Rm)
		}
	case isa.ClassStore:
		add(in.Rn)
		if in.Op == isa.OpSTRR || in.Op == isa.OpSTRBR {
			add(in.Rm)
		}
		add(in.Rd) // store data
	case isa.ClassBranch:
		switch in.Op {
		case isa.OpB:
			if in.Cond != isa.CondAL {
				add(isa.RegFlags)
			}
		case isa.OpBX, isa.OpBLX:
			add(in.Rm)
		}
	}
	return srcs
}

// dest returns the architectural destination register of an instruction,
// or isa.NoReg.
func dest(in isa.Inst) uint8 {
	switch in.Class {
	case isa.ClassALU:
		return in.Rd
	case isa.ClassCmp:
		return isa.RegFlags
	case isa.ClassLoad:
		return in.Rd
	case isa.ClassBranch:
		if in.Op == isa.OpBL || in.Op == isa.OpBLX {
			return isa.RegLR
		}
	case isa.ClassSys:
		return 0 // syscalls return in r0
	}
	return isa.NoReg
}

func (c *Core) rename() {
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.fqLen() == 0 || c.robCount == c.cfg.ROBSize {
			return
		}
		fi := c.fetchQ[c.fqHead]
		in := fi.inst

		needsIQ := fi.exc == excNone && (in.Class == isa.ClassALU ||
			in.Class == isa.ClassCmp || in.Class == isa.ClassLoad ||
			in.Class == isa.ClassStore ||
			in.Op == isa.OpB && in.Cond != isa.CondAL ||
			in.Op == isa.OpBX || in.Op == isa.OpBLX)
		if needsIQ && len(c.iq) >= c.cfg.IQSize {
			return
		}
		isLoad := fi.exc == excNone && in.Class == isa.ClassLoad
		isStore := fi.exc == excNone && in.Class == isa.ClassStore
		if isLoad && c.lqCount >= c.cfg.LQSize {
			return
		}
		if isStore && c.sqCount >= c.cfg.SQSize {
			return
		}
		archDest := uint8(isa.NoReg)
		if fi.exc == excNone {
			archDest = dest(in)
		}
		if archDest != isa.NoReg && len(c.freeList) == 0 {
			return // physical registers exhausted; wait for commit
		}

		c.fqHead++
		slot := (c.robHead + c.robCount) % c.cfg.ROBSize
		c.robCount++
		c.seqNext++
		e := &c.rob[slot]
		*e = robEntry{
			seq: c.seqNext, pc: fi.pc, inst: in, valid: true,
			exc: fi.exc, excAddr: fi.excAddr,
			archDest: isa.NoReg, newPhys: NoPhys, oldPhys: NoPhys,
			predNext: fi.predNext,
			isLoad:   isLoad, isStore: isStore,
		}
		srcs := [3]uint8{NoPhys, NoPhys, NoPhys}
		if fi.exc == excNone {
			srcs = c.sources(in)
		}
		if archDest != isa.NoReg {
			p := c.freeList[len(c.freeList)-1]
			c.freeList = c.freeList[:len(c.freeList)-1]
			e.archDest = archDest
			e.newPhys = p
			e.oldPhys = c.renameMap[archDest]
			c.renameMap[archDest] = p
			c.rf.Alloc(p)
		}

		switch {
		case fi.exc != excNone:
			e.done = true
		case in.Class == isa.ClassNop:
			e.done = true
		case in.Class == isa.ClassSys:
			e.isSys = true
			e.done = true // handled at commit
		case in.Op == isa.OpB && in.Cond == isa.CondAL:
			e.isBranch = true
			e.done = true // resolved at fetch
		case in.Op == isa.OpBL:
			e.isBranch = true
			e.done = true
			c.rf.Write(e.newPhys, fi.pc+4)
		default:
			if in.Op == isa.OpBLX {
				// The link value is known at rename even though the
				// target resolves at execute.
				c.rf.Write(e.newPhys, fi.pc+4)
			}
			if in.Op == isa.OpB || in.Op == isa.OpBX || in.Op == isa.OpBLX {
				e.isBranch = true
			}
			c.iq = append(c.iq, iqEntry{slot: slot, seq: e.seq, srcs: srcs})
		}
		if isLoad {
			c.lqCount++
		}
		if isStore {
			c.sqCount++
			if c.sqHead > 0 {
				n := copy(c.sq, c.sq[c.sqHead:])
				c.sq = c.sq[:n]
				c.sqHead = 0
			}
			c.sq = append(c.sq, slot)
		}
	}
}

// --- Issue/execute ---

func (c *Core) issue() {
	issued := 0
	for i := 0; i < len(c.iq) && issued < c.cfg.IssueWidth; i++ {
		ent := c.iq[i]
		ready := true
		for _, s := range ent.srcs {
			if s != NoPhys && !c.rf.Ready(s) {
				ready = false
				break
			}
		}
		if !ready {
			if c.cfg.InOrder {
				return // in-order cores stall behind the oldest waiter
			}
			continue
		}
		c.iq = append(c.iq[:i], c.iq[i+1:]...)
		i--
		issued++
		c.executeOne(ent)
	}
}

func (c *Core) executeOne(ent iqEntry) {
	e := &c.rob[ent.slot]
	in := e.inst
	val := func(p uint8) uint32 { return c.rf.Val(p) }

	switch {
	case e.isLoad:
		base := val(ent.srcs[0])
		var off uint32
		if in.Op == isa.OpLDRR || in.Op == isa.OpLDRBR {
			off = val(ent.srcs[1])
		} else {
			off = uint32(in.Imm)
		}
		e.addrVA = base + off
		e.memSize = memSize(in.Op)
		e.addrKnown = true
		c.pending = append(c.pending, pendingLoad{slot: ent.slot, seq: ent.seq})

	case e.isStore:
		base := val(ent.srcs[0])
		var off uint32
		dataIdx := 1
		if in.Op == isa.OpSTRR || in.Op == isa.OpSTRBR {
			off = val(ent.srcs[1])
			dataIdx = 2
		} else {
			off = uint32(in.Imm)
		}
		e.addrVA = base + off
		e.memSize = memSize(in.Op)
		e.storeVal = val(ent.srcs[dataIdx])
		e.addrKnown = true
		if e.addrVA&uint32(e.memSize-1) != 0 {
			e.exc, e.excAddr = excAlign, e.addrVA
		} else {
			pa, _, exc := c.translate(e.addrVA, true)
			if exc != excNone {
				e.exc, e.excAddr = exc, e.addrVA
			} else {
				e.addrPA = pa
			}
		}
		c.inflight = append(c.inflight, wbEntry{
			slot: ent.slot, seq: ent.seq, destPhys: NoPhys,
			doneCycle: c.cycle + uint64(c.cfg.AGULat),
		})

	case e.isBranch:
		var actual uint32
		taken := false
		isCond, isInd := false, false
		switch in.Op {
		case isa.OpB:
			isCond = true
			flags := val(ent.srcs[0])
			taken = isa.EvalCond(in.Cond, flags)
			if taken {
				actual = e.pc + 4 + uint32(in.Imm)*4
			} else {
				actual = e.pc + 4
			}
		case isa.OpBX, isa.OpBLX:
			isInd = true
			actual = val(ent.srcs[0])
			taken = true
		}
		c.inflight = append(c.inflight, wbEntry{
			slot: ent.slot, seq: ent.seq, destPhys: NoPhys,
			doneCycle: c.cycle + uint64(c.cfg.ALULat),
			isBranch:  true, isCond: isCond, isInd: isInd,
			brPC: e.pc, taken: taken, actualNext: actual,
		})

	case in.Class == isa.ClassCmp:
		a := val(ent.srcs[0])
		var b uint32
		if in.Op == isa.OpCMPI {
			b = uint32(in.Imm)
		} else {
			b = val(ent.srcs[1])
		}
		var flags uint32
		if in.Op == isa.OpTST {
			flags = isa.AndFlags(a, b)
		} else {
			flags = isa.SubFlags(a, b)
		}
		c.inflight = append(c.inflight, wbEntry{
			slot: ent.slot, seq: ent.seq, destPhys: e.newPhys, val: flags,
			doneCycle: c.cycle + uint64(c.cfg.ALULat),
		})

	default: // ALU
		result := c.alu(in, ent, val)
		c.inflight = append(c.inflight, wbEntry{
			slot: ent.slot, seq: ent.seq, destPhys: e.newPhys, val: result,
			doneCycle: c.cycle + uint64(c.aluLat(in.Op)),
		})
	}
}

func memSize(op isa.Op) uint8 {
	switch op {
	case isa.OpLDRB, isa.OpSTRB, isa.OpLDRBR, isa.OpSTRBR:
		return 1
	case isa.OpLDRH, isa.OpSTRH:
		return 2
	}
	return 4
}

func (c *Core) aluLat(op isa.Op) int {
	switch op {
	case isa.OpMUL, isa.OpSMLH, isa.OpUMLH:
		return c.cfg.MulLat
	case isa.OpSDIV, isa.OpUDIV, isa.OpSREM, isa.OpUREM:
		return c.cfg.DivLat
	}
	return c.cfg.ALULat
}

func (c *Core) alu(in isa.Inst, ent iqEntry, val func(uint8) uint32) uint32 {
	a := uint32(0)
	if ent.srcs[0] != NoPhys {
		a = val(ent.srcs[0])
	}
	b := uint32(in.Imm)
	reg2 := false
	switch in.Op {
	case isa.OpADD, isa.OpSUB, isa.OpRSB, isa.OpAND, isa.OpORR, isa.OpEOR,
		isa.OpBIC, isa.OpLSL, isa.OpLSR, isa.OpASR, isa.OpROR, isa.OpMUL,
		isa.OpSDIV, isa.OpUDIV, isa.OpSREM, isa.OpUREM, isa.OpSMLH, isa.OpUMLH:
		reg2 = true
	}
	if reg2 {
		b = val(ent.srcs[1])
	}
	switch in.Op {
	case isa.OpADD, isa.OpADDI:
		return a + b
	case isa.OpSUB, isa.OpSUBI:
		return a - b
	case isa.OpRSB:
		return b - a
	case isa.OpAND, isa.OpANDI:
		return a & b
	case isa.OpORR, isa.OpORRI:
		return a | b
	case isa.OpEOR, isa.OpEORI:
		return a ^ b
	case isa.OpBIC:
		return a &^ b
	case isa.OpLSL, isa.OpLSLI:
		return a << (b & 31)
	case isa.OpLSR, isa.OpLSRI:
		return a >> (b & 31)
	case isa.OpASR, isa.OpASRI:
		return uint32(int32(a) >> (b & 31))
	case isa.OpROR:
		s := b & 31
		if s == 0 {
			return a
		}
		return a>>s | a<<(32-s)
	case isa.OpMUL:
		return a * b
	case isa.OpSMLH:
		return uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)
	case isa.OpUMLH:
		return uint32(uint64(a) * uint64(b) >> 32)
	case isa.OpSDIV:
		return sdiv(int32(a), int32(b))
	case isa.OpUDIV:
		if b == 0 {
			return 0
		}
		return a / b
	case isa.OpSREM:
		return srem(int32(a), int32(b))
	case isa.OpUREM:
		if b == 0 {
			return a
		}
		return a % b
	case isa.OpMOV:
		return a
	case isa.OpMVN:
		return ^a
	case isa.OpMOVZ:
		return uint32(in.Imm)
	case isa.OpMOVT:
		return a&0xFFFF | uint32(in.Imm)<<16
	}
	return 0
}

// sdiv implements ARM division semantics: x/0 == 0 and MinInt32/-1 wraps.
func sdiv(a, b int32) uint32 {
	if b == 0 {
		return 0
	}
	if a == -1<<31 && b == -1 {
		return uint32(a)
	}
	return uint32(a / b)
}

func srem(a, b int32) uint32 {
	if b == 0 {
		return uint32(a)
	}
	if a == -1<<31 && b == -1 {
		return 0
	}
	return uint32(a % b)
}

// translate maps a virtual address through the DTLB, walking on a miss.
func (c *Core) translate(va uint32, write bool) (pa uint32, lat int, exc excKind) {
	if va >= vm.VASize {
		return 0, 0, excSegv
	}
	vpn := va >> tlb.PageShift
	tr, hit := c.dtlb.Lookup(vpn)
	if !hit {
		var fault vm.WalkFault
		tr, lat, fault = c.walker.Refill(c.dtlb, vpn)
		switch fault {
		case vm.WalkUnmapped:
			return 0, lat, excSegv
		case vm.WalkBadFrame:
			return 0, lat, excKPanic
		}
	}
	if write && !tr.Writable {
		return 0, lat, excSegv
	}
	return tr.PFN<<tlb.PageShift | va&(tlb.PageSize-1), lat, excNone
}

// executeLoads retries pending loads against the store queue each cycle.
func (c *Core) executeLoads() {
	for i := 0; i < len(c.pending); i++ {
		p := c.pending[i]
		e := &c.rob[p.slot]
		if !e.valid || e.seq != p.seq {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			i--
			continue
		}
		fwd, fwdVal, blocked := c.checkStoreQueue(e)
		if blocked {
			continue
		}
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
		i--

		wb := wbEntry{slot: p.slot, seq: p.seq, destPhys: e.newPhys}
		switch {
		case e.addrVA&uint32(e.memSize-1) != 0:
			e.exc, e.excAddr = excAlign, e.addrVA
			wb.doneCycle = c.cycle + 1
		case fwd:
			wb.val = truncVal(fwdVal, e.memSize)
			wb.doneCycle = c.cycle + uint64(c.cfg.AGULat) + 1
		default:
			pa, lat, exc := c.translate(e.addrVA, false)
			if exc != excNone {
				e.exc, e.excAddr = exc, e.addrVA
				wb.doneCycle = c.cycle + uint64(1+lat)
			} else {
				e.addrPA = pa
				var buf [4]byte
				rlat := c.dcache.Read(pa, buf[:e.memSize])
				wb.val = truncVal(leWord(buf), e.memSize)
				wb.doneCycle = c.cycle + uint64(c.cfg.AGULat+lat+rlat)
			}
		}
		c.inflight = append(c.inflight, wb)
	}
}

func leWord(b [4]byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func truncVal(v uint32, size uint8) uint32 {
	switch size {
	case 1:
		return v & 0xFF
	case 2:
		return v & 0xFFFF
	}
	return v
}

// checkStoreQueue looks for older stores that overlap a load. It returns
// forwarded data for an exact match, or blocked while an older store's
// address is unknown or a partial overlap is still in flight.
func (c *Core) checkStoreQueue(ld *robEntry) (fwd bool, val uint32, blocked bool) {
	// Scan youngest-first among stores older than the load.
	for i := len(c.sq) - 1; i >= c.sqHead; i-- {
		st := &c.rob[c.sq[i]]
		if !st.valid || st.seq >= ld.seq {
			continue
		}
		if !st.addrKnown {
			return false, 0, true
		}
		if st.exc != excNone {
			// The store will fault at commit; it cannot forward. It also
			// cannot overlap meaningfully — wait for it to drain.
			return false, 0, true
		}
		aLo, aHi := ld.addrVA, ld.addrVA+uint32(ld.memSize)
		bLo, bHi := st.addrVA, st.addrVA+uint32(st.memSize)
		if aLo < bHi && bLo < aHi {
			if aLo == bLo && ld.memSize == st.memSize {
				return true, st.storeVal, false
			}
			return false, 0, true // partial overlap: wait for commit
		}
	}
	return false, 0, false
}

// --- Writeback ---

func (c *Core) writeback() {
	done := 0
	for done < c.cfg.WBWidth {
		// Pick the oldest eligible completion.
		best := -1
		for i := range c.inflight {
			if c.inflight[i].doneCycle > c.cycle {
				continue
			}
			if best < 0 || c.inflight[i].seq < c.inflight[best].seq {
				best = i
			}
		}
		if best < 0 {
			return
		}
		wb := c.inflight[best]
		c.inflight = append(c.inflight[:best], c.inflight[best+1:]...)
		e := &c.rob[wb.slot]
		if !e.valid || e.seq != wb.seq {
			continue // squashed while in flight
		}
		done++
		if wb.destPhys != NoPhys {
			c.rf.Write(wb.destPhys, wb.val)
		}
		e.done = true
		if e.isLoad {
			c.lqCount--
		}
		if wb.isBranch && e.exc == excNone {
			if wb.isCond {
				c.pred.trainCond(wb.brPC, wb.taken)
			}
			if wb.isInd {
				c.pred.trainIndirect(wb.brPC, wb.actualNext)
				if wb.actualNext&3 != 0 || wb.actualNext >= vm.VASize {
					e.exc, e.excAddr = excAlign, wb.actualNext
					if wb.actualNext >= vm.VASize {
						e.exc = excSegv
					}
					continue // raise at commit; no redirect
				}
			}
			if wb.actualNext != e.predNext {
				c.Mispredicts++
				c.squashAfter(wb.slot)
				c.fetchPC = wb.actualNext
			}
		}
	}
}

// squashAfter removes every instruction younger than the one in slot,
// restoring the speculative rename map and the free list by walking the
// reorder buffer from youngest to oldest.
func (c *Core) squashAfter(slot int) {
	c.Squashes++
	keep := c.robPos(slot) + 1
	for pos := c.robCount - 1; pos >= keep; pos-- {
		s := (c.robHead + pos) % c.cfg.ROBSize
		e := &c.rob[s]
		if e.newPhys != NoPhys {
			c.renameMap[e.archDest] = e.oldPhys
			c.freeList = append(c.freeList, e.newPhys)
		}
		e.valid = false
	}
	c.robCount = keep
	brSeq := c.rob[slot].seq

	filterIQ := c.iq[:0]
	for _, q := range c.iq {
		if q.seq <= brSeq {
			filterIQ = append(filterIQ, q)
		}
	}
	c.iq = filterIQ

	filterWB := c.inflight[:0]
	for _, w := range c.inflight {
		if w.seq <= brSeq {
			filterWB = append(filterWB, w)
		}
	}
	c.inflight = filterWB

	filterPend := c.pending[:0]
	for _, p := range c.pending {
		if p.seq <= brSeq {
			filterPend = append(filterPend, p)
		}
	}
	c.pending = filterPend

	filterSQ := c.sq[:0]
	for _, s := range c.sq[c.sqHead:] {
		if c.rob[s].valid && c.rob[s].seq <= brSeq {
			filterSQ = append(filterSQ, s)
		}
	}
	c.sq = filterSQ
	c.sqHead = 0

	// Recompute load/store queue occupancy from surviving entries.
	c.lqCount, c.sqCount = 0, 0
	for pos := 0; pos < c.robCount; pos++ {
		e := &c.rob[(c.robHead+pos)%c.cfg.ROBSize]
		if e.isLoad && !e.done {
			c.lqCount++
		}
		if e.isStore {
			c.sqCount++
		}
	}

	c.fetchQ = c.fetchQ[:0]
	c.fqHead = 0
	c.fetchFaulted = false
	c.fetchReadyAt = c.cycle
}

// --- Commit ---

func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.robCount > 0; n++ {
		slot := c.robHead
		e := &c.rob[slot]
		if !e.done {
			return
		}
		if e.exc != excNone {
			switch e.exc {
			case excUndef:
				c.stop(StopUndef, e.pc, e.excAddr)
			case excSegv:
				c.stop(StopSegv, e.pc, e.excAddr)
			case excAlign:
				c.stop(StopAlign, e.pc, e.excAddr)
			case excKPanic:
				c.stop(StopKernelPanic, e.pc, e.excAddr)
			}
			return
		}
		if e.isStore {
			var buf [4]byte
			buf[0] = byte(e.storeVal)
			buf[1] = byte(e.storeVal >> 8)
			buf[2] = byte(e.storeVal >> 16)
			buf[3] = byte(e.storeVal >> 24)
			c.dcache.Write(e.addrPA, buf[:e.memSize])
			c.sqCount--
			if c.sqHead < len(c.sq) && c.sq[c.sqHead] == slot {
				c.sqHead++
			}
		}
		if e.isSys {
			r0, action := c.os.Syscall(c)
			c.rf.Write(e.newPhys, r0)
			switch action {
			case SysExit:
				c.retire(e)
				c.stop(StopExit, e.pc, 0)
				return
			case SysKill:
				c.retire(e)
				c.stop(StopKilled, e.pc, 0)
				return
			case SysPanic:
				c.retire(e)
				c.stop(StopKernelPanic, e.pc, 0)
				return
			}
			c.retire(e)
			// Serialise: flush everything younger and refetch.
			if c.robCount > 0 {
				c.squashAfterCommitted(slot)
			}
			c.fetchPC = e.pc + 4
			return
		}
		c.retire(e)
	}
}

// retire updates the committed architectural map and recycles the previous
// mapping of the destination register.
func (c *Core) retire(e *robEntry) {
	if c.TraceCommit != nil {
		c.TraceCommit(e.pc, e.inst.Raw)
	}
	if e.newPhys != NoPhys {
		old := c.archMap[e.archDest]
		c.archMap[e.archDest] = e.newPhys
		c.freeList = append(c.freeList, old)
	}
	e.valid = false
	c.robHead = (c.robHead + 1) % c.cfg.ROBSize
	c.robCount--
	c.Committed++
	c.lastCommit = c.cycle
}

// squashAfterCommitted flushes the whole speculative window after the
// instruction in slot has already retired (syscall serialisation).
func (c *Core) squashAfterCommitted(slot int) {
	c.Squashes++
	for pos := c.robCount - 1; pos >= 0; pos-- {
		s := (c.robHead + pos) % c.cfg.ROBSize
		e := &c.rob[s]
		if e.newPhys != NoPhys {
			c.renameMap[e.archDest] = e.oldPhys
			c.freeList = append(c.freeList, e.newPhys)
		}
		e.valid = false
	}
	c.robCount = 0
	c.iq = c.iq[:0]
	c.inflight = c.inflight[:0]
	c.pending = c.pending[:0]
	c.sq = c.sq[:0]
	c.sqHead = 0
	c.lqCount, c.sqCount = 0, 0
	c.fetchQ = c.fetchQ[:0]
	c.fqHead = 0
	c.fetchFaulted = false
	c.fetchReadyAt = c.cycle
	_ = slot
}
