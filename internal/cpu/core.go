// Package cpu implements the out-of-order core of the simulated machine: a
// cycle-stepped pipeline with register renaming onto a physical register
// file, a reorder buffer, an instruction queue, load/store queues with
// store-to-load forwarding, and branch prediction. The configuration
// defaults follow the paper's Table I (ARM Cortex-A9-like).
//
// The core executes architecturally: instruction bits come out of the L1I
// cache through the ITLB, data comes out of the L1D cache through the DTLB,
// and register values live in the injectable physical register file, so a
// fault injected anywhere in that state genuinely changes program behaviour.
package cpu

import (
	"mbusim/internal/cache"
	"mbusim/internal/isa"
	"mbusim/internal/tlb"
	"mbusim/internal/vm"
)

// StopKind says why the core stopped.
type StopKind uint8

const (
	StopNone        StopKind = iota
	StopExit                 // program exited via syscall
	StopUndef                // undefined instruction committed
	StopSegv                 // memory fault (unmapped or protected page)
	StopAlign                // misaligned access committed
	StopKernelPanic          // corrupted page tables reached the walker
	StopKilled               // kernel killed the process (bad syscall, fault in handler)
	StopDeadlock             // watchdog: no commit progress
)

func (k StopKind) String() string {
	switch k {
	case StopNone:
		return "running"
	case StopExit:
		return "exit"
	case StopUndef:
		return "undefined-instruction"
	case StopSegv:
		return "segfault"
	case StopAlign:
		return "alignment-fault"
	case StopKernelPanic:
		return "kernel-panic"
	case StopKilled:
		return "killed"
	case StopDeadlock:
		return "deadlock"
	}
	return "unknown"
}

// SysAction tells the core how to continue after a system call.
type SysAction uint8

const (
	SysContinue SysAction = iota
	SysExit               // stop with StopExit
	SysKill               // stop with StopKilled
	SysPanic              // stop with StopKernelPanic (fault inside the kernel)
)

// OS handles system calls at commit time. Implementations read arguments
// with Core.ArchReg and access memory through their own cache handle.
type OS interface {
	Syscall(c *Core) (r0 uint32, action SysAction)
}

type excKind uint8

const (
	excNone excKind = iota
	excUndef
	excSegv
	excAlign
	excKPanic
)

// robEntry is one reorder-buffer slot. The rename stage rewrites a whole
// entry every dispatch, so word-sized fields are grouped ahead of the byte
// fields to keep the struct (and rename's store traffic) compact.
type robEntry struct {
	seq uint64

	pc       uint32
	raw      uint32 // encoding, for commit tracing
	imm      int32
	predNext uint32
	excAddr  uint32
	addrVA   uint32
	addrPA   uint32
	storeVal uint32

	op   isa.Op
	cond isa.Cond
	exc  excKind

	archDest         uint8 // architectural dest (0..16) or isa.NoReg
	newPhys, oldPhys uint8
	memSize          uint8

	valid     bool
	done      bool
	isBranch  bool
	isLoad    bool
	isStore   bool
	isSys     bool
	memReg    bool // register-offset addressing
	addrKnown bool
}

// fetchedInst is one fetch-queue entry. preIdx points into the immutable
// pretext array when the fetched word matched its predecode line; -1 means
// the word must be decoded from raw at rename (I-side corruption).
type fetchedInst struct {
	pc       uint32
	predNext uint32
	excAddr  uint32
	raw      uint32
	preIdx   int32
	exc      excKind
}

type iqEntry struct {
	seq  uint64
	slot int32
	srcs [3]uint8 // physical registers, NoPhys if unused
}

type wbEntry struct {
	seq        uint64
	doneCycle  uint64
	slot       int32
	val        uint32
	brPC       uint32
	actualNext uint32

	destPhys uint8
	isBranch bool
	isCond   bool
	isInd    bool
	taken    bool
}

type pendingLoad struct {
	seq  uint64
	slot int32
}

// Core is the out-of-order CPU core.
type Core struct {
	cfg Config

	icache, dcache *cache.Cache
	itlb, dtlb     *tlb.TLB
	walker         *vm.Walker
	os             OS

	rf        *RegFile
	renameMap [isa.NumArch]uint8 // speculative map, updated at rename
	archMap   [isa.NumArch]uint8 // committed map, updated at commit
	freeList  []uint8

	rob      []robEntry
	robHead  int
	robCount int
	seqNext  uint64

	fetchPC      uint32
	fetchQ       []fetchedInst
	fqHead       int // consumed prefix of fetchQ (reset when drained)
	fetchReadyAt uint64
	fetchFaulted bool

	// Predecoded text segment (see predecode.go). Immutable after
	// InstallText; shared by reference across snapshots.
	pretext  []preInst
	textBase uint32

	iq       []iqEntry
	inflight []wbEntry
	pending  []pendingLoad
	sq       []int32 // ROB slots of in-flight stores, program order
	sqHead   int     // consumed prefix of sq
	lqCount  int
	sqCount  int

	pred *predictor

	cycle      uint64
	lastCommit uint64

	// Scheduling hints. These are derived accelerators, not architectural
	// state: they only let a stage skip a scan that provably cannot act
	// this cycle, so they are reset (not copied) on restore and excluded
	// from snapshots.
	//
	// wbNextDone is a lower bound on the earliest doneCycle in c.inflight;
	// writeback skips its scan while cycle < wbNextDone. wakeGen counts
	// core-side events that can unblock a stalled issue or load scan (IQ
	// dispatch, store address resolution, store drain, squash); the
	// register file keeps its own generation for readiness changes. A
	// stage that scanned and found nothing runnable records the
	// generations it saw and skips until one of them moves.
	wbNextDone   uint64
	wakeGen      uint64
	issueIdle    bool
	issueIdleGen uint64
	issueIdleRF  uint64
	loadsIdle    bool
	loadsIdleGen uint64

	stopped  StopKind
	stopPC   uint32
	stopAddr uint32

	// Stats.
	Committed   uint64
	Mispredicts uint64
	Squashes    uint64

	// TraceCommit, when non-nil, is invoked for every committed
	// instruction (debugging aid; see cmd/mcc -trace).
	TraceCommit func(pc uint32, raw uint32)
}

// New wires a core to its memory system and operating system handler.
func New(cfg Config, ic, dc *cache.Cache, it, dt *tlb.TLB, w *vm.Walker, os OS) *Core {
	c := &Core{
		cfg:    cfg,
		icache: ic, dcache: dc,
		itlb: it, dtlb: dt,
		walker: w,
		os:     os,
		rf:     NewRegFile(cfg.PhysRegs),
		rob:    make([]robEntry, cfg.ROBSize),
		pred:   newPredictor(),
	}
	for i := 0; i < isa.NumArch; i++ {
		c.renameMap[i] = uint8(i)
		c.archMap[i] = uint8(i)
	}
	for p := isa.NumArch; p < cfg.PhysRegs; p++ {
		c.freeList = append(c.freeList, uint8(p))
	}
	return c
}

// RegFile exposes the physical register file for fault injection.
func (c *Core) RegFile() *RegFile { return c.rf }

// Cycles returns the number of cycles simulated so far.
func (c *Core) Cycles() uint64 { return c.cycle }

// Stopped returns the stop reason, StopNone while running.
func (c *Core) Stopped() StopKind { return c.stopped }

// StopPC returns the PC of the instruction that stopped the core.
func (c *Core) StopPC() uint32 { return c.stopPC }

// StopAddr returns the faulting address for memory faults.
func (c *Core) StopAddr() uint32 { return c.stopAddr }

// SetPC sets the fetch PC (loader use, before the first cycle).
func (c *Core) SetPC(pc uint32) { c.fetchPC = pc }

// ArchReg returns the committed architectural value of register i.
func (c *Core) ArchReg(i int) uint32 { return c.rf.Val(c.archMap[i]) }

// SetArchReg sets the committed architectural value of register i (loader
// use, before the first cycle).
func (c *Core) SetArchReg(i int, v uint32) { c.rf.Write(c.archMap[i], v) }

// ArchHash digests the committed architectural state (instruction count +
// every architectural register) with FNV-1a. It reads the register file
// storage directly, bypassing any forensics probe: the lockstep divergence
// check must not itself count as a read of a corrupted bit.
func (c *Core) ArchHash() uint64 {
	h := uint64(0xcbf29ce484222325)
	h = (h ^ c.Committed) * 0x100000001b3
	for i := 0; i < isa.NumArch; i++ {
		h = (h ^ uint64(c.rf.vals[c.archMap[i]])) * 0x100000001b3
	}
	return h
}

func (c *Core) stop(kind StopKind, pc, addr uint32) {
	c.stopped = kind
	c.stopPC = pc
	c.stopAddr = addr
}

// Cycle advances the machine by one clock cycle. Pipeline stages run in
// reverse order so results move between stages with one-cycle latency.
func (c *Core) Cycle() {
	if c.stopped != StopNone {
		return
	}
	c.cycle++
	c.commit()
	if c.stopped != StopNone {
		return
	}
	c.writeback()
	c.executeLoads()
	c.issue()
	c.rename()
	c.fetch()

	if c.cycle-c.lastCommit > c.cfg.DeadlockLimit {
		c.stop(StopDeadlock, c.fetchPC, 0)
	}
}

func (c *Core) robPos(slot int) int {
	p := slot - c.robHead
	if p < 0 {
		p += c.cfg.ROBSize
	}
	return p
}

func (c *Core) fqLen() int { return len(c.fetchQ) - c.fqHead }

// --- Fetch ---

func (c *Core) fetch() {
	if c.fetchFaulted || c.cycle < c.fetchReadyAt {
		return
	}
	if c.fqHead > 0 {
		// Compact the consumed prefix so the queue reuses its backing
		// array instead of growing without bound.
		n := copy(c.fetchQ, c.fetchQ[c.fqHead:])
		c.fetchQ = c.fetchQ[:n]
		c.fqHead = 0
	}
	for n := 0; n < c.cfg.FetchWidth && c.fqLen() < c.cfg.FetchQSize; n++ {
		pc := c.fetchPC
		fi := fetchedInst{pc: pc, predNext: pc + 4, preIdx: -1}
		if pc&3 != 0 {
			fi.exc, fi.excAddr = excAlign, pc
			c.fetchQ = append(c.fetchQ, fi)
			c.fetchFaulted = true
			return
		}
		if pc >= vm.VASize {
			fi.exc, fi.excAddr = excSegv, pc
			c.fetchQ = append(c.fetchQ, fi)
			c.fetchFaulted = true
			return
		}
		vpn := pc >> tlb.PageShift
		tr, hit := c.itlb.Lookup(vpn)
		if !hit {
			var lat int
			var fault vm.WalkFault
			tr, lat, fault = c.walker.Refill(c.itlb, vpn)
			c.fetchReadyAt = c.cycle + uint64(lat)
			switch fault {
			case vm.WalkUnmapped:
				fi.exc, fi.excAddr = excSegv, pc
				c.fetchQ = append(c.fetchQ, fi)
				c.fetchFaulted = true
				return
			case vm.WalkBadFrame:
				fi.exc, fi.excAddr = excKPanic, pc
				c.fetchQ = append(c.fetchQ, fi)
				c.fetchFaulted = true
				return
			}
			if lat > 0 {
				return // retry after the walk completes
			}
		}
		pa := tr.PFN<<tlb.PageShift | pc&(tlb.PageSize-1)
		word, lat := c.icache.ReadWord(pa)
		if lat > c.icache.Config().Latency {
			// Miss: stall fetch until the fill completes, then deliver.
			c.fetchReadyAt = c.cycle + uint64(lat)
		}
		fi.raw = word
		var pre *preInst
		var slow preInst
		if idx := (pc - c.textBase) >> 2; idx < uint32(len(c.pretext)) && c.pretext[idx].raw == word {
			pre = &c.pretext[idx]
			fi.preIdx = int32(idx)
		} else {
			// I-side corruption (or a PC outside the installed text):
			// decode the fetched word from scratch.
			slow = buildPre(pc, word)
			pre = &slow
		}
		if pre.flags&preOK == 0 {
			fi.exc, fi.excAddr = excUndef, pc
			c.fetchQ = append(c.fetchQ, fi)
			c.fetchPC = pc + 4
			continue
		}
		// Predict the next PC from the predecoded branch kind.
		switch pre.brKind {
		case preBrStatic:
			fi.predNext = pre.target
		case preBrCond:
			if c.pred.predictCond(pc) {
				fi.predNext = pre.target
			}
		case preBrInd:
			if tgt, ok := c.pred.predictIndirect(pc); ok {
				fi.predNext = tgt
			}
		}
		c.fetchQ = append(c.fetchQ, fi)
		c.fetchPC = fi.predNext
		if fi.predNext != pc+4 {
			return // redirected: start a new fetch group next cycle
		}
	}
}

// --- Rename/dispatch ---

func (c *Core) rename() {
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.fqLen() == 0 || c.robCount == c.cfg.ROBSize {
			return
		}
		fi := &c.fetchQ[c.fqHead]
		ok := fi.exc == excNone
		var pre *preInst
		var slow preInst
		switch {
		case fi.preIdx >= 0:
			pre = &c.pretext[fi.preIdx]
		case ok:
			// Corrupted but still decodable word: rebuild its predecode.
			slow = buildPre(fi.pc, fi.raw)
			pre = &slow
		default:
			// Faulted at fetch: the entry carries bookkeeping only.
			slow = preInst{raw: fi.raw}
			pre = &slow
		}

		if ok && pre.flags&preNeedsIQ != 0 && len(c.iq) >= c.cfg.IQSize {
			return
		}
		isLoad := ok && pre.flags&preIsLoad != 0
		isStore := ok && pre.flags&preIsStore != 0
		if isLoad && c.lqCount >= c.cfg.LQSize {
			return
		}
		if isStore && c.sqCount >= c.cfg.SQSize {
			return
		}
		archDest := uint8(isa.NoReg)
		if ok {
			archDest = pre.archDest
		}
		if archDest != isa.NoReg && len(c.freeList) == 0 {
			return // physical registers exhausted; wait for commit
		}

		c.fqHead++
		slot := c.robHead + c.robCount
		if slot >= c.cfg.ROBSize {
			slot -= c.cfg.ROBSize
		}
		c.robCount++
		c.seqNext++
		e := &c.rob[slot]
		*e = robEntry{
			seq: c.seqNext, pc: fi.pc, raw: pre.raw, valid: true,
			imm: pre.imm, op: pre.op, cond: pre.cond,
			exc: fi.exc, excAddr: fi.excAddr,
			archDest: isa.NoReg, newPhys: NoPhys, oldPhys: NoPhys,
			predNext: fi.predNext,
			isLoad:   isLoad, isStore: isStore,
			memSize: pre.memSize, memReg: pre.flags&preMemReg != 0,
		}
		srcs := [3]uint8{NoPhys, NoPhys, NoPhys}
		if ok {
			for i := uint8(0); i < pre.nsrc; i++ {
				srcs[i] = c.renameMap[pre.srcs[i]]
			}
		}
		if archDest != isa.NoReg {
			p := c.freeList[len(c.freeList)-1]
			c.freeList = c.freeList[:len(c.freeList)-1]
			e.archDest = archDest
			e.newPhys = p
			e.oldPhys = c.renameMap[archDest]
			c.renameMap[archDest] = p
			c.rf.Alloc(p)
		}

		switch {
		case !ok:
			e.done = true
		case pre.flags&preDoneAtRename != 0:
			// NOP, SYSCALL (handled at commit), B.AL (resolved at fetch)
			// and BL (resolved at fetch, link written here).
			e.isSys = pre.flags&preIsSys != 0
			e.isBranch = pre.flags&preIsBranch != 0
			e.done = true
			if pre.op == isa.OpBL {
				c.rf.Write(e.newPhys, fi.pc+4)
			}
		default:
			if pre.op == isa.OpBLX {
				// The link value is known at rename even though the
				// target resolves at execute.
				c.rf.Write(e.newPhys, fi.pc+4)
			}
			e.isBranch = pre.flags&preIsBranch != 0
			c.iq = append(c.iq, iqEntry{slot: int32(slot), seq: e.seq, srcs: srcs})
			c.wakeGen++
		}
		if isLoad {
			c.lqCount++
		}
		if isStore {
			c.sqCount++
			if c.sqHead > 0 {
				n := copy(c.sq, c.sq[c.sqHead:])
				c.sq = c.sq[:n]
				c.sqHead = 0
			}
			c.sq = append(c.sq, int32(slot))
		}
	}
}

// --- Issue/execute ---

// issue scans the instruction queue in program order, executing up to
// IssueWidth ready entries and compacting the queue in place. Entries are
// only rewritten once the first gap opens, so a cycle that issues nothing
// costs one pass of readiness checks and zero stores.
func (c *Core) issue() {
	issued := 0
	probed := c.rf.probe != nil
	// If the previous scan issued nothing and no wake event has happened
	// since (no dispatch, squash, readiness write or injected flip), this
	// scan cannot issue anything either — skip it. Never skip while a
	// forensics probe is attached: the per-cycle readiness reads are
	// observable events.
	if !probed {
		if c.issueIdle && c.issueIdleGen == c.wakeGen && c.issueIdleRF == c.rf.gen {
			return
		}
	}
	w := 0
	moved := false
	i := 0
	n := len(c.iq)
	for ; i < n; i++ {
		if issued == c.cfg.IssueWidth {
			break
		}
		ent := c.iq[i]
		ready := true
		if probed {
			// Probe attached (forensics on the register file): go through
			// Ready so every readiness check raises its probe event.
			for _, s := range ent.srcs {
				if s != NoPhys && !c.rf.Ready(s) {
					ready = false
					break
				}
			}
		} else {
			for _, s := range ent.srcs {
				if s != NoPhys && !c.rf.ready[s] {
					ready = false
					break
				}
			}
		}
		if !ready {
			if c.cfg.InOrder {
				break // in-order cores stall behind the oldest waiter
			}
			if moved {
				c.iq[w] = ent
			}
			w++
			continue
		}
		issued++
		moved = true
		c.executeOne(ent)
	}
	if moved {
		w += copy(c.iq[w:], c.iq[i:n])
		c.iq = c.iq[:w]
	}
	c.issueIdle = issued == 0
	c.issueIdleGen = c.wakeGen
	c.issueIdleRF = c.rf.gen
}

func (c *Core) executeOne(ent iqEntry) {
	e := &c.rob[ent.slot]

	switch {
	case e.isLoad:
		base := c.rf.Val(ent.srcs[0])
		var off uint32
		if e.memReg {
			off = c.rf.Val(ent.srcs[1])
		} else {
			off = uint32(e.imm)
		}
		e.addrVA = base + off
		e.addrKnown = true
		c.pending = append(c.pending, pendingLoad{slot: ent.slot, seq: ent.seq})
		c.wakeGen++

	case e.isStore:
		base := c.rf.Val(ent.srcs[0])
		var off uint32
		dataIdx := 1
		if e.memReg {
			off = c.rf.Val(ent.srcs[1])
			dataIdx = 2
		} else {
			off = uint32(e.imm)
		}
		e.addrVA = base + off
		e.storeVal = c.rf.Val(ent.srcs[dataIdx])
		e.addrKnown = true
		c.wakeGen++
		if e.addrVA&uint32(e.memSize-1) != 0 {
			e.exc, e.excAddr = excAlign, e.addrVA
		} else {
			pa, _, exc := c.translate(e.addrVA, true)
			if exc != excNone {
				e.exc, e.excAddr = exc, e.addrVA
			} else {
				e.addrPA = pa
			}
		}
		c.addInflight(wbEntry{
			slot: ent.slot, seq: ent.seq, destPhys: NoPhys,
			doneCycle: c.cycle + uint64(c.cfg.AGULat),
		})

	case e.isBranch:
		var actual uint32
		taken := false
		isCond, isInd := false, false
		if e.op == isa.OpB {
			isCond = true
			flags := c.rf.Val(ent.srcs[0])
			taken = isa.EvalCond(e.cond, flags)
			if taken {
				actual = e.pc + 4 + uint32(e.imm)*4
			} else {
				actual = e.pc + 4
			}
		} else { // BX, BLX
			isInd = true
			actual = c.rf.Val(ent.srcs[0])
			taken = true
		}
		c.addInflight(wbEntry{
			slot: ent.slot, seq: ent.seq, destPhys: NoPhys,
			doneCycle: c.cycle + uint64(c.cfg.ALULat),
			isBranch:  true, isCond: isCond, isInd: isInd,
			brPC: e.pc, taken: taken, actualNext: actual,
		})

	default: // ALU and compares, via the generated dispatch tables
		a := uint32(0)
		if ent.srcs[0] != NoPhys {
			a = c.rf.Val(ent.srcs[0])
		}
		b := uint32(e.imm)
		if aluRegB[e.op] {
			b = c.rf.Val(ent.srcs[1])
		}
		lat := c.cfg.ALULat
		switch opLatKind[e.op] {
		case isa.LatMul:
			lat = c.cfg.MulLat
		case isa.LatDiv:
			lat = c.cfg.DivLat
		}
		c.addInflight(wbEntry{
			slot: ent.slot, seq: ent.seq, destPhys: e.newPhys, val: aluFns[e.op](a, b),
			doneCycle: c.cycle + uint64(lat),
		})
	}
}

// addInflight queues a completion and keeps the writeback gate's bound on
// the earliest completion cycle current.
func (c *Core) addInflight(wb wbEntry) {
	if wb.doneCycle < c.wbNextDone {
		c.wbNextDone = wb.doneCycle
	}
	c.inflight = append(c.inflight, wb)
}

// sdiv implements ARM division semantics: x/0 == 0 and MinInt32/-1 wraps.
func sdiv(a, b int32) uint32 {
	if b == 0 {
		return 0
	}
	if a == -1<<31 && b == -1 {
		return uint32(a)
	}
	return uint32(a / b)
}

func srem(a, b int32) uint32 {
	if b == 0 {
		return uint32(a)
	}
	if a == -1<<31 && b == -1 {
		return 0
	}
	return uint32(a % b)
}

// translate maps a virtual address through the DTLB, walking on a miss.
func (c *Core) translate(va uint32, write bool) (pa uint32, lat int, exc excKind) {
	if va >= vm.VASize {
		return 0, 0, excSegv
	}
	vpn := va >> tlb.PageShift
	tr, hit := c.dtlb.Lookup(vpn)
	if !hit {
		var fault vm.WalkFault
		tr, lat, fault = c.walker.Refill(c.dtlb, vpn)
		switch fault {
		case vm.WalkUnmapped:
			return 0, lat, excSegv
		case vm.WalkBadFrame:
			return 0, lat, excKPanic
		}
	}
	if write && !tr.Writable {
		return 0, lat, excSegv
	}
	return tr.PFN<<tlb.PageShift | va&(tlb.PageSize-1), lat, excNone
}

// executeLoads retries pending loads against the store queue each cycle.
func (c *Core) executeLoads() {
	// Every pending load left by the previous scan was blocked on the
	// store queue. Blocking only clears on a wake event (a store address
	// resolving, a store draining at commit, a squash, a new pending
	// load), so an unchanged generation means this scan would block on
	// exactly the same stores. The skipped scan performs no reads, so it
	// is unobservable even to forensics probes.
	if len(c.pending) == 0 || (c.loadsIdle && c.loadsIdleGen == c.wakeGen) {
		return
	}
	for i := 0; i < len(c.pending); i++ {
		p := c.pending[i]
		e := &c.rob[p.slot]
		if !e.valid || e.seq != p.seq {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			i--
			continue
		}
		fwd, fwdVal, blocked := c.checkStoreQueue(e)
		if blocked {
			continue
		}
		c.pending = append(c.pending[:i], c.pending[i+1:]...)
		i--

		wb := wbEntry{slot: p.slot, seq: p.seq, destPhys: e.newPhys}
		switch {
		case e.addrVA&uint32(e.memSize-1) != 0:
			e.exc, e.excAddr = excAlign, e.addrVA
			wb.doneCycle = c.cycle + 1
		case fwd:
			wb.val = truncVal(fwdVal, e.memSize)
			wb.doneCycle = c.cycle + uint64(c.cfg.AGULat) + 1
		default:
			pa, lat, exc := c.translate(e.addrVA, false)
			if exc != excNone {
				e.exc, e.excAddr = exc, e.addrVA
				wb.doneCycle = c.cycle + uint64(1+lat)
			} else {
				e.addrPA = pa
				var buf [4]byte
				rlat := c.dcache.Read(pa, buf[:e.memSize])
				wb.val = truncVal(leWord(buf), e.memSize)
				wb.doneCycle = c.cycle + uint64(c.cfg.AGULat+lat+rlat)
			}
		}
		c.addInflight(wb)
	}
	c.loadsIdle = true
	c.loadsIdleGen = c.wakeGen
}

func leWord(b [4]byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func truncVal(v uint32, size uint8) uint32 {
	switch size {
	case 1:
		return v & 0xFF
	case 2:
		return v & 0xFFFF
	}
	return v
}

// checkStoreQueue looks for older stores that overlap a load. It returns
// forwarded data for an exact match, or blocked while an older store's
// address is unknown or a partial overlap is still in flight.
func (c *Core) checkStoreQueue(ld *robEntry) (fwd bool, val uint32, blocked bool) {
	// Scan youngest-first among stores older than the load.
	for i := len(c.sq) - 1; i >= c.sqHead; i-- {
		st := &c.rob[c.sq[i]]
		if !st.valid || st.seq >= ld.seq {
			continue
		}
		if !st.addrKnown {
			return false, 0, true
		}
		if st.exc != excNone {
			// The store will fault at commit; it cannot forward. It also
			// cannot overlap meaningfully — wait for it to drain.
			return false, 0, true
		}
		aLo, aHi := ld.addrVA, ld.addrVA+uint32(ld.memSize)
		bLo, bHi := st.addrVA, st.addrVA+uint32(st.memSize)
		if aLo < bHi && bLo < aHi {
			if aLo == bLo && ld.memSize == st.memSize {
				return true, st.storeVal, false
			}
			return false, 0, true // partial overlap: wait for commit
		}
	}
	return false, 0, false
}

// --- Writeback ---

func (c *Core) writeback() {
	// No in-flight result can complete before wbNextDone; skip the scan
	// until then. The bound is maintained on every insert and refreshed by
	// the scan below, so skipped cycles are exactly those where the scan
	// would have found nothing.
	if c.cycle < c.wbNextDone || len(c.inflight) == 0 {
		return
	}
	done := 0
	for done < c.cfg.WBWidth {
		// Pick the oldest eligible completion.
		best := -1
		minDone := ^uint64(0)
		for i := range c.inflight {
			if dc := c.inflight[i].doneCycle; dc > c.cycle {
				if dc < minDone {
					minDone = dc
				}
				continue
			}
			if best < 0 || c.inflight[i].seq < c.inflight[best].seq {
				best = i
			}
		}
		if best < 0 {
			c.wbNextDone = minDone
			return
		}
		c.wbNextDone = 0
		wb := c.inflight[best]
		c.inflight = append(c.inflight[:best], c.inflight[best+1:]...)
		e := &c.rob[wb.slot]
		if !e.valid || e.seq != wb.seq {
			continue // squashed while in flight
		}
		done++
		if wb.destPhys != NoPhys {
			c.rf.Write(wb.destPhys, wb.val)
		}
		e.done = true
		if e.isLoad {
			c.lqCount--
		}
		if wb.isBranch && e.exc == excNone {
			if wb.isCond {
				c.pred.trainCond(wb.brPC, wb.taken)
			}
			if wb.isInd {
				c.pred.trainIndirect(wb.brPC, wb.actualNext)
				if wb.actualNext&3 != 0 || wb.actualNext >= vm.VASize {
					e.exc, e.excAddr = excAlign, wb.actualNext
					if wb.actualNext >= vm.VASize {
						e.exc = excSegv
					}
					continue // raise at commit; no redirect
				}
			}
			if wb.actualNext != e.predNext {
				c.Mispredicts++
				c.squashAfter(int(wb.slot))
				c.fetchPC = wb.actualNext
			}
		}
	}
}

// squashAfter removes every instruction younger than the one in slot,
// restoring the speculative rename map and the free list by walking the
// reorder buffer from youngest to oldest.
func (c *Core) squashAfter(slot int) {
	c.Squashes++
	c.wakeGen++
	keep := c.robPos(slot) + 1
	for pos := c.robCount - 1; pos >= keep; pos-- {
		s := c.robHead + pos
		if s >= c.cfg.ROBSize {
			s -= c.cfg.ROBSize
		}
		e := &c.rob[s]
		if e.newPhys != NoPhys {
			c.renameMap[e.archDest] = e.oldPhys
			c.freeList = append(c.freeList, e.newPhys)
		}
		e.valid = false
	}
	c.robCount = keep
	brSeq := c.rob[slot].seq

	filterIQ := c.iq[:0]
	for _, q := range c.iq {
		if q.seq <= brSeq {
			filterIQ = append(filterIQ, q)
		}
	}
	c.iq = filterIQ

	filterWB := c.inflight[:0]
	for _, w := range c.inflight {
		if w.seq <= brSeq {
			filterWB = append(filterWB, w)
		}
	}
	c.inflight = filterWB

	filterPend := c.pending[:0]
	for _, p := range c.pending {
		if p.seq <= brSeq {
			filterPend = append(filterPend, p)
		}
	}
	c.pending = filterPend

	filterSQ := c.sq[:0]
	for _, s := range c.sq[c.sqHead:] {
		if c.rob[s].valid && c.rob[s].seq <= brSeq {
			filterSQ = append(filterSQ, s)
		}
	}
	c.sq = filterSQ
	c.sqHead = 0

	// Recompute load/store queue occupancy from surviving entries.
	c.lqCount, c.sqCount = 0, 0
	for pos, s := 0, c.robHead; pos < c.robCount; pos++ {
		e := &c.rob[s]
		if s++; s == c.cfg.ROBSize {
			s = 0
		}
		if e.isLoad && !e.done {
			c.lqCount++
		}
		if e.isStore {
			c.sqCount++
		}
	}

	c.fetchQ = c.fetchQ[:0]
	c.fqHead = 0
	c.fetchFaulted = false
	c.fetchReadyAt = c.cycle
}

// --- Commit ---

func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.robCount > 0; n++ {
		slot := c.robHead
		e := &c.rob[slot]
		if !e.done {
			return
		}
		if e.exc != excNone {
			switch e.exc {
			case excUndef:
				c.stop(StopUndef, e.pc, e.excAddr)
			case excSegv:
				c.stop(StopSegv, e.pc, e.excAddr)
			case excAlign:
				c.stop(StopAlign, e.pc, e.excAddr)
			case excKPanic:
				c.stop(StopKernelPanic, e.pc, e.excAddr)
			}
			return
		}
		if e.isStore {
			var buf [4]byte
			buf[0] = byte(e.storeVal)
			buf[1] = byte(e.storeVal >> 8)
			buf[2] = byte(e.storeVal >> 16)
			buf[3] = byte(e.storeVal >> 24)
			c.dcache.Write(e.addrPA, buf[:e.memSize])
			c.sqCount--
			if c.sqHead < len(c.sq) && int(c.sq[c.sqHead]) == slot {
				c.sqHead++
			}
			c.wakeGen++
		}
		if e.isSys {
			r0, action := c.os.Syscall(c)
			c.rf.Write(e.newPhys, r0)
			switch action {
			case SysExit:
				c.retire(e)
				c.stop(StopExit, e.pc, 0)
				return
			case SysKill:
				c.retire(e)
				c.stop(StopKilled, e.pc, 0)
				return
			case SysPanic:
				c.retire(e)
				c.stop(StopKernelPanic, e.pc, 0)
				return
			}
			c.retire(e)
			// Serialise: flush everything younger and refetch.
			if c.robCount > 0 {
				c.squashAfterCommitted(slot)
			}
			c.fetchPC = e.pc + 4
			return
		}
		c.retire(e)
	}
}

// retire updates the committed architectural map and recycles the previous
// mapping of the destination register.
func (c *Core) retire(e *robEntry) {
	if c.TraceCommit != nil {
		c.TraceCommit(e.pc, e.raw)
	}
	if e.newPhys != NoPhys {
		old := c.archMap[e.archDest]
		c.archMap[e.archDest] = e.newPhys
		c.freeList = append(c.freeList, old)
	}
	e.valid = false
	if c.robHead++; c.robHead == c.cfg.ROBSize {
		c.robHead = 0
	}
	c.robCount--
	c.Committed++
	c.lastCommit = c.cycle
}

// squashAfterCommitted flushes the whole speculative window after the
// instruction in slot has already retired (syscall serialisation).
func (c *Core) squashAfterCommitted(slot int) {
	c.Squashes++
	c.wakeGen++
	for pos := c.robCount - 1; pos >= 0; pos-- {
		s := c.robHead + pos
		if s >= c.cfg.ROBSize {
			s -= c.cfg.ROBSize
		}
		e := &c.rob[s]
		if e.newPhys != NoPhys {
			c.renameMap[e.archDest] = e.oldPhys
			c.freeList = append(c.freeList, e.newPhys)
		}
		e.valid = false
	}
	c.robCount = 0
	c.iq = c.iq[:0]
	c.inflight = c.inflight[:0]
	c.pending = c.pending[:0]
	c.sq = c.sq[:0]
	c.sqHead = 0
	c.lqCount, c.sqCount = 0, 0
	c.fetchQ = c.fetchQ[:0]
	c.fqHead = 0
	c.fetchFaulted = false
	c.fetchReadyAt = c.cycle
	_ = slot
}
