package cpu

// Branch prediction: a bimodal table of 2-bit saturating counters for
// conditional branch direction plus a direct-mapped BTB for indirect branch
// targets. Direct targets never need the BTB because fetch pre-decodes the
// instruction word and computes them immediately.
//
// The predictor is not one of the paper's injection targets, so its state
// is not part of the injectable geometry.

const (
	bimodalEntries = 512
	btbEntries     = 64
)

type predictor struct {
	bimodal [bimodalEntries]uint8 // 2-bit counters, initialised weakly taken
	btbTag  [btbEntries]uint32
	btbTgt  [btbEntries]uint32
	btbOK   [btbEntries]bool
}

func newPredictor() *predictor {
	p := &predictor{}
	for i := range p.bimodal {
		p.bimodal[i] = 2 // weakly taken: loops predict well from cold
	}
	return p
}

func bimodalIdx(pc uint32) int { return int(pc>>2) & (bimodalEntries - 1) }
func btbIdx(pc uint32) int     { return int(pc>>2) & (btbEntries - 1) }

// predictCond predicts the direction of a conditional branch at pc.
func (p *predictor) predictCond(pc uint32) bool {
	return p.bimodal[bimodalIdx(pc)] >= 2
}

// trainCond updates the direction counter with the resolved outcome.
func (p *predictor) trainCond(pc uint32, taken bool) {
	i := bimodalIdx(pc)
	if taken {
		if p.bimodal[i] < 3 {
			p.bimodal[i]++
		}
	} else if p.bimodal[i] > 0 {
		p.bimodal[i]--
	}
}

// predictIndirect returns the BTB target for an indirect branch, if any.
func (p *predictor) predictIndirect(pc uint32) (uint32, bool) {
	i := btbIdx(pc)
	if p.btbOK[i] && p.btbTag[i] == pc {
		return p.btbTgt[i], true
	}
	return 0, false
}

// trainIndirect records the resolved target of an indirect branch.
func (p *predictor) trainIndirect(pc, target uint32) {
	i := btbIdx(pc)
	p.btbTag[i], p.btbTgt[i], p.btbOK[i] = pc, target, true
}
