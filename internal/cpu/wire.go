package cpu

import (
	"fmt"

	"mbusim/internal/isa"
	"mbusim/internal/wire"
)

// Wire encoding of core snapshots, the cpu piece of the content-addressed
// checkpoint artifact format. Every field a Snapshot captures is encoded
// except the predecoded text: pretext is derived state, rebuilt from the
// program image by InstallText, so the artifact ships the image hash
// instead and the loader rebinds a locally predecoded text with BindText.
// The field order here is part of the artifact format, versioned by
// sim.SnapshotFormat.

// maxWireSlice bounds every decoded slice length, far above any simulated
// configuration, so a corrupt length cannot drive a giant allocation
// before structural checks run.
const maxWireSlice = 1 << 20

func wireLen(r *wire.Reader) (int, error) {
	n := r.Int()
	if err := r.Err(); err != nil {
		return 0, err
	}
	if n < 0 || n > maxWireSlice {
		return 0, fmt.Errorf("cpu: snapshot slice length %d out of range", n)
	}
	return n, nil
}

// EncodeWire appends the register-file snapshot to w.
func (s *RegFileSnapshot) EncodeWire(w *wire.Writer) {
	w.Int(len(s.vals))
	for _, v := range s.vals {
		w.U32(v)
	}
	for _, rdy := range s.ready {
		w.Bool(rdy)
	}
}

func decodeRegFileWire(r *wire.Reader) (*RegFileSnapshot, error) {
	n, err := wireLen(r)
	if err != nil {
		return nil, err
	}
	s := &RegFileSnapshot{
		vals:  make([]uint32, n),
		ready: make([]bool, n),
	}
	for i := range s.vals {
		s.vals[i] = r.U32()
	}
	for i := range s.ready {
		s.ready[i] = r.Bool()
	}
	return s, r.Err()
}

func encodeROBEntry(w *wire.Writer, e *robEntry) {
	w.U64(e.seq)
	w.U32(e.pc)
	w.U32(e.raw)
	w.I32(e.imm)
	w.U32(e.predNext)
	w.U32(e.excAddr)
	w.U32(e.addrVA)
	w.U32(e.addrPA)
	w.U32(e.storeVal)
	w.U8(uint8(e.op))
	w.U8(uint8(e.cond))
	w.U8(uint8(e.exc))
	w.U8(e.archDest)
	w.U8(e.newPhys)
	w.U8(e.oldPhys)
	w.U8(e.memSize)
	w.Bool(e.valid)
	w.Bool(e.done)
	w.Bool(e.isBranch)
	w.Bool(e.isLoad)
	w.Bool(e.isStore)
	w.Bool(e.isSys)
	w.Bool(e.memReg)
	w.Bool(e.addrKnown)
}

func decodeROBEntry(r *wire.Reader, e *robEntry) {
	e.seq = r.U64()
	e.pc = r.U32()
	e.raw = r.U32()
	e.imm = r.I32()
	e.predNext = r.U32()
	e.excAddr = r.U32()
	e.addrVA = r.U32()
	e.addrPA = r.U32()
	e.storeVal = r.U32()
	e.op = isa.Op(r.U8())
	e.cond = isa.Cond(r.U8())
	e.exc = excKind(r.U8())
	e.archDest = r.U8()
	e.newPhys = r.U8()
	e.oldPhys = r.U8()
	e.memSize = r.U8()
	e.valid = r.Bool()
	e.done = r.Bool()
	e.isBranch = r.Bool()
	e.isLoad = r.Bool()
	e.isStore = r.Bool()
	e.isSys = r.Bool()
	e.memReg = r.Bool()
	e.addrKnown = r.Bool()
}

// EncodeWire appends the core snapshot to w, pretext excluded (see the
// package comment above).
func (s *Snapshot) EncodeWire(w *wire.Writer) {
	s.rf.EncodeWire(w)
	for _, v := range s.renameMap {
		w.U8(v)
	}
	for _, v := range s.archMap {
		w.U8(v)
	}
	w.Blob(s.freeList)

	w.Int(len(s.rob))
	for i := range s.rob {
		encodeROBEntry(w, &s.rob[i])
	}
	w.Int(s.robHead)
	w.Int(s.robCount)
	w.U64(s.seqNext)

	w.U32(s.fetchPC)
	w.Int(len(s.fetchQ))
	for i := range s.fetchQ {
		f := &s.fetchQ[i]
		w.U32(f.pc)
		w.U32(f.predNext)
		w.U32(f.excAddr)
		w.U32(f.raw)
		w.I32(f.preIdx)
		w.U8(uint8(f.exc))
	}
	w.Int(s.fqHead)
	w.U64(s.fetchReadyAt)
	w.Bool(s.fetchFaulted)
	w.U32(s.textBase)

	w.Int(len(s.iq))
	for i := range s.iq {
		e := &s.iq[i]
		w.U64(e.seq)
		w.I32(e.slot)
		w.U8(e.srcs[0])
		w.U8(e.srcs[1])
		w.U8(e.srcs[2])
	}
	w.Int(len(s.inflight))
	for i := range s.inflight {
		e := &s.inflight[i]
		w.U64(e.seq)
		w.U64(e.doneCycle)
		w.I32(e.slot)
		w.U32(e.val)
		w.U32(e.brPC)
		w.U32(e.actualNext)
		w.U8(e.destPhys)
		w.Bool(e.isBranch)
		w.Bool(e.isCond)
		w.Bool(e.isInd)
		w.Bool(e.taken)
	}
	w.Int(len(s.pending))
	for i := range s.pending {
		w.U64(s.pending[i].seq)
		w.I32(s.pending[i].slot)
	}
	w.Int(len(s.sq))
	for _, v := range s.sq {
		w.I32(v)
	}
	w.Int(s.sqHead)
	w.Int(s.lqCount)
	w.Int(s.sqCount)

	for _, v := range s.pred.bimodal {
		w.U8(v)
	}
	for _, v := range s.pred.btbTag {
		w.U32(v)
	}
	for _, v := range s.pred.btbTgt {
		w.U32(v)
	}
	for _, v := range s.pred.btbOK {
		w.Bool(v)
	}

	w.U64(s.cycle)
	w.U64(s.lastCommit)
	w.U8(uint8(s.stopped))
	w.U32(s.stopPC)
	w.U32(s.stopAddr)
	w.U64(s.committed)
	w.U64(s.mispredicts)
	w.U64(s.squashes)
}

// DecodeSnapshotWire reads a core snapshot encoded by EncodeWire. The
// returned snapshot has no predecoded text: BindText must attach one
// before the snapshot is restored into a machine.
func DecodeSnapshotWire(r *wire.Reader) (*Snapshot, error) {
	s := &Snapshot{}
	var err error
	if s.rf, err = decodeRegFileWire(r); err != nil {
		return nil, err
	}
	for i := range s.renameMap {
		s.renameMap[i] = r.U8()
	}
	for i := range s.archMap {
		s.archMap[i] = r.U8()
	}
	s.freeList = r.Blob()

	n, err := wireLen(r)
	if err != nil {
		return nil, err
	}
	s.rob = make([]robEntry, n)
	for i := range s.rob {
		decodeROBEntry(r, &s.rob[i])
	}
	s.robHead = r.Int()
	s.robCount = r.Int()
	s.seqNext = r.U64()

	s.fetchPC = r.U32()
	if n, err = wireLen(r); err != nil {
		return nil, err
	}
	s.fetchQ = make([]fetchedInst, n)
	for i := range s.fetchQ {
		f := &s.fetchQ[i]
		f.pc = r.U32()
		f.predNext = r.U32()
		f.excAddr = r.U32()
		f.raw = r.U32()
		f.preIdx = r.I32()
		f.exc = excKind(r.U8())
	}
	s.fqHead = r.Int()
	s.fetchReadyAt = r.U64()
	s.fetchFaulted = r.Bool()
	s.textBase = r.U32()

	if n, err = wireLen(r); err != nil {
		return nil, err
	}
	s.iq = make([]iqEntry, n)
	for i := range s.iq {
		e := &s.iq[i]
		e.seq = r.U64()
		e.slot = r.I32()
		e.srcs[0] = r.U8()
		e.srcs[1] = r.U8()
		e.srcs[2] = r.U8()
	}
	if n, err = wireLen(r); err != nil {
		return nil, err
	}
	s.inflight = make([]wbEntry, n)
	for i := range s.inflight {
		e := &s.inflight[i]
		e.seq = r.U64()
		e.doneCycle = r.U64()
		e.slot = r.I32()
		e.val = r.U32()
		e.brPC = r.U32()
		e.actualNext = r.U32()
		e.destPhys = r.U8()
		e.isBranch = r.Bool()
		e.isCond = r.Bool()
		e.isInd = r.Bool()
		e.taken = r.Bool()
	}
	if n, err = wireLen(r); err != nil {
		return nil, err
	}
	s.pending = make([]pendingLoad, n)
	for i := range s.pending {
		s.pending[i].seq = r.U64()
		s.pending[i].slot = r.I32()
	}
	if n, err = wireLen(r); err != nil {
		return nil, err
	}
	s.sq = make([]int32, n)
	for i := range s.sq {
		s.sq[i] = r.I32()
	}
	s.sqHead = r.Int()
	s.lqCount = r.Int()
	s.sqCount = r.Int()

	for i := range s.pred.bimodal {
		s.pred.bimodal[i] = r.U8()
	}
	for i := range s.pred.btbTag {
		s.pred.btbTag[i] = r.U32()
	}
	for i := range s.pred.btbTgt {
		s.pred.btbTgt[i] = r.U32()
	}
	for i := range s.pred.btbOK {
		s.pred.btbOK[i] = r.Bool()
	}

	s.cycle = r.U64()
	s.lastCommit = r.U64()
	s.stopped = StopKind(r.U8())
	s.stopPC = r.U32()
	s.stopAddr = r.U32()
	s.committed = r.U64()
	s.mispredicts = r.U64()
	s.squashes = r.U64()
	if err := r.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// BindText attaches the predecoded text of a live core to a decoded
// snapshot. The core must have installed the same program image the
// snapshot was taken under (the artifact layer guarantees this by hashing
// the compiled image into the artifact key); mismatched text bases mean a
// different image and are rejected.
func (s *Snapshot) BindText(c *Core) error {
	if c.textBase != s.textBase {
		return fmt.Errorf("cpu: snapshot text base %#x does not match core text base %#x",
			s.textBase, c.textBase)
	}
	s.pretext = c.pretext
	return nil
}
