package cpu

import "fmt"

// NoPhys marks an unused physical register slot.
const NoPhys = 0xFF

// RegFile is the physical register file: the values and per-register ready
// bits that back the renamed architectural state. It is one of the paper's
// six injection targets; the injectable geometry is one row per physical
// register, columns 0..31 the data bits and column 32 the ready bit.
//
// Flipping a data bit corrupts a (possibly committed) value and propagates
// to every later reader; flipping a ready bit either releases a consumer
// early (it reads a stale value) or parks consumers forever, which the
// watchdog eventually reports as a deadlock — both effects the paper
// observes for register-file faults.
type RegFile struct {
	vals  []uint32
	ready []bool
}

// NewRegFile returns a register file with n physical registers, all zero
// and ready.
func NewRegFile(n int) *RegFile {
	rf := &RegFile{vals: make([]uint32, n), ready: make([]bool, n)}
	for i := range rf.ready {
		rf.ready[i] = true
	}
	return rf
}

// Val returns the value of physical register p.
func (rf *RegFile) Val(p uint8) uint32 { return rf.vals[p] }

// Ready reports whether physical register p holds a produced value.
func (rf *RegFile) Ready(p uint8) bool { return rf.ready[p] }

// Write produces a value into p and marks it ready.
func (rf *RegFile) Write(p uint8, v uint32) {
	rf.vals[p] = v
	rf.ready[p] = true
}

// Alloc marks p as allocated and awaiting its value.
func (rf *RegFile) Alloc(p uint8) { rf.ready[p] = false }

// --- Fault-injection geometry (core.Target implementation) ---

// Name returns the component name used by the fault injector.
func (rf *RegFile) Name() string { return "RegFile" }

// Rows returns the number of physical registers.
func (rf *RegFile) Rows() int { return len(rf.vals) }

// Cols returns the bit width of a register row (32 data bits + ready).
func (rf *RegFile) Cols() int { return 33 }

// FlipBit flips one stored bit of register row.
func (rf *RegFile) FlipBit(row, col int) {
	if row < 0 || row >= len(rf.vals) || col < 0 || col >= 33 {
		panic(fmt.Sprintf("regfile: FlipBit(%d,%d) out of range", row, col))
	}
	if col == 32 {
		rf.ready[row] = !rf.ready[row]
		return
	}
	rf.vals[row] ^= 1 << col
}
