package cpu

import "fmt"

// NoPhys marks an unused physical register slot.
const NoPhys = 0xFF

// ReadyCol is the injectable column index of the per-register ready bit
// (columns 0..31 are the data bits).
const ReadyCol = 32

// RegProbe observes register-file accesses for fault forensics.
// Implementations must not mutate register state; a nil probe (the
// default) costs one pointer compare per event.
type RegProbe interface {
	// OnRegRead fires when the value of physical register row enters the
	// datapath.
	OnRegRead(row int)
	// OnRegReadyRead fires when the ready bit of physical register row is
	// consulted by the issue logic.
	OnRegReadyRead(row int)
	// OnRegWrite fires when physical register row is overwritten (value
	// produced, ready set).
	OnRegWrite(row int)
	// OnRegAlloc fires when physical register row is reallocated (ready
	// cleared; the stale value remains until the producer writes).
	OnRegAlloc(row int)
}

// RegFile is the physical register file: the values and per-register ready
// bits that back the renamed architectural state. It is one of the paper's
// six injection targets; the injectable geometry is one row per physical
// register, columns 0..31 the data bits and column 32 the ready bit.
//
// Flipping a data bit corrupts a (possibly committed) value and propagates
// to every later reader; flipping a ready bit either releases a consumer
// early (it reads a stale value) or parks consumers forever, which the
// watchdog eventually reports as a deadlock — both effects the paper
// observes for register-file faults.
type RegFile struct {
	vals  []uint32
	ready []bool
	probe RegProbe

	// gen counts readiness transitions that could wake a stalled issue
	// scan (a ready bit set by Write, or any injected flip). It is a
	// scheduling hint, not architectural state — see Core.wakeGen.
	gen uint64
}

// NewRegFile returns a register file with n physical registers, all zero
// and ready.
func NewRegFile(n int) *RegFile {
	rf := &RegFile{vals: make([]uint32, n), ready: make([]bool, n)}
	for i := range rf.ready {
		rf.ready[i] = true
	}
	return rf
}

// SetProbe installs (or removes, with nil) the forensics probe.
func (rf *RegFile) SetProbe(p RegProbe) { rf.probe = p }

// Val returns the value of physical register p.
func (rf *RegFile) Val(p uint8) uint32 {
	if rf.probe != nil {
		rf.probe.OnRegRead(int(p))
	}
	return rf.vals[p]
}

// Ready reports whether physical register p holds a produced value.
func (rf *RegFile) Ready(p uint8) bool {
	if rf.probe != nil {
		rf.probe.OnRegReadyRead(int(p))
	}
	return rf.ready[p]
}

// Write produces a value into p and marks it ready.
func (rf *RegFile) Write(p uint8, v uint32) {
	if rf.probe != nil {
		rf.probe.OnRegWrite(int(p))
	}
	rf.vals[p] = v
	rf.ready[p] = true
	rf.gen++
}

// Alloc marks p as allocated and awaiting its value.
func (rf *RegFile) Alloc(p uint8) {
	if rf.probe != nil {
		rf.probe.OnRegAlloc(int(p))
	}
	rf.ready[p] = false
}

// ReadyAt reports the ready bit of physical register i without firing
// the access probe (sampling use).
func (rf *RegFile) ReadyAt(i int) bool { return rf.ready[i] }

// Occupancy returns the fraction of ready (value-holding) registers.
func (rf *RegFile) Occupancy() float64 {
	n := 0
	for _, r := range rf.ready {
		if r {
			n++
		}
	}
	return float64(n) / float64(len(rf.ready))
}

// --- Fault-injection geometry (core.Target implementation) ---

// Name returns the component name used by the fault injector.
func (rf *RegFile) Name() string { return "RegFile" }

// Rows returns the number of physical registers.
func (rf *RegFile) Rows() int { return len(rf.vals) }

// Cols returns the bit width of a register row (32 data bits + ready).
func (rf *RegFile) Cols() int { return 33 }

// FlipBit flips one stored bit of register row.
func (rf *RegFile) FlipBit(row, col int) {
	if row < 0 || row >= len(rf.vals) || col < 0 || col >= 33 {
		panic(fmt.Sprintf("regfile: FlipBit(%d,%d) out of range", row, col))
	}
	rf.gen++
	if col == 32 {
		rf.ready[row] = !rf.ready[row]
		return
	}
	rf.vals[row] ^= 1 << col
}
