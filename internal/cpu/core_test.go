package cpu

import (
	"testing"

	"mbusim/internal/asm"
	"mbusim/internal/cache"
	"mbusim/internal/isa"
	"mbusim/internal/mem"
	"mbusim/internal/tlb"
	"mbusim/internal/vm"
)

// testOS implements OS: syscall 1 exits with r0, everything else kills.
type testOS struct {
	exitCode uint32
	exited   bool
}

func (o *testOS) Syscall(c *Core) (uint32, SysAction) {
	if c.ArchReg(isa.RegSys) == 1 {
		o.exitCode = c.ArchReg(0)
		o.exited = true
		return 0, SysExit
	}
	return 0, SysKill
}

// rig is a minimal machine without the kernel package: identity-ish page
// tables built by hand, real caches and TLBs.
type rig struct {
	core *Core
	os   *testOS
	ram  *mem.RAM
	l1d  *cache.Cache
	l1i  *cache.Cache
}

// buildRig loads prog with text, data and one stack page mapped.
func buildRig(t *testing.T, prog *asm.Program) *rig {
	return buildRigWithConfig(t, prog, DefaultConfig())
}

func buildRigWithConfig(t *testing.T, prog *asm.Program, cfg Config) *rig {
	t.Helper()
	ram := mem.NewRAM(1 << 23)
	l2 := cache.New(cache.Config{Name: "L2", Size: 64 << 10, Ways: 8, LineSize: 64, Latency: 8, PABits: 23}, ram)
	l1i := cache.New(cache.Config{Name: "L1I", Size: 8 << 10, Ways: 4, LineSize: 64, Latency: 2, PABits: 23}, l2)
	l1d := cache.New(cache.Config{Name: "L1D", Size: 8 << 10, Ways: 4, LineSize: 64, Latency: 2, PABits: 23}, l2)
	itlb := tlb.New("ITLB", 32)
	dtlb := tlb.New("DTLB", 32)

	// Page tables: root at frame 1; level-2 tables from frame 2; user
	// frames from frame 16.
	const root = uint32(1) << tlb.PageShift
	nextL2 := uint32(2)
	nextFrame := uint32(16)
	mapPage := func(vpn uint32, writable bool) uint32 {
		idx1 := vpn >> 7 & (vm.L1Entries - 1)
		idx2 := vpn & (vm.L2Entries - 1)
		l1e := ram.ReadWord(root + idx1*4)
		var l2f uint32
		if l1e&vm.PTEValid == 0 {
			l2f = nextL2
			nextL2++
			ram.WriteWord(root+idx1*4, vm.PackPTE(l2f, true, false))
		} else {
			l2f = l1e & vm.PTEFrameMask
		}
		pte := ram.ReadWord(l2f<<tlb.PageShift + idx2*4)
		if pte&vm.PTEValid != 0 {
			return pte & vm.PTEFrameMask
		}
		f := nextFrame
		nextFrame++
		ram.WriteWord(l2f<<tlb.PageShift+idx2*4, vm.PackPTE(f, writable, true))
		return f
	}
	loadSeg := func(base uint32, img []byte, writable bool) {
		for off := 0; off < len(img); off += tlb.PageSize {
			f := mapPage(base>>tlb.PageShift+uint32(off/tlb.PageSize), writable)
			end := off + tlb.PageSize
			if end > len(img) {
				end = len(img)
			}
			ram.WriteBytes(f<<tlb.PageShift, img[off:end])
		}
	}
	loadSeg(prog.TextBase, prog.Text, false)
	if len(prog.Data) > 0 {
		loadSeg(prog.DataBase, prog.Data, true)
	}
	const stackTop = 0x0040_0000
	for p := uint32(1); p <= 4; p++ {
		mapPage(stackTop>>tlb.PageShift-p, true)
	}

	walker := vm.NewWalker(l2, root, 1<<13)
	os := &testOS{}
	core := New(cfg, l1i, l1d, itlb, dtlb, walker, os)
	core.SetPC(prog.Entry)
	core.SetArchReg(isa.RegSP, stackTop)
	return &rig{core: core, os: os, ram: ram, l1d: l1d, l1i: l1i}
}

func runRig(t *testing.T, src string, maxCycles uint64) *rig {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	r := buildRig(t, prog)
	for r.core.Stopped() == StopNone && r.core.Cycles() < maxCycles {
		r.core.Cycle()
	}
	return r
}

func TestMispredictRecovery(t *testing.T) {
	// A data-dependent alternating branch defeats the bimodal predictor;
	// the architectural result must still be exact.
	r := runRig(t, `
_start:
    li r1, #0       ; acc
    li r2, #0       ; i
loop:
    andi r3, r2, #1
    cmp r3, #0
    b.eq even
    addi r1, r1, #3
    b next
even:
    addi r1, r1, #5
next:
    addi r2, r2, #1
    cmp r2, #100
    b.lt loop
    mov r0, r1
    li r7, #1
    syscall
`, 1_000_000)
	if r.core.Stopped() != StopExit {
		t.Fatalf("stop = %v", r.core.Stopped())
	}
	if r.os.exitCode != 50*3+50*5 {
		t.Fatalf("exit = %d, want %d", r.os.exitCode, 50*3+50*5)
	}
	if r.core.Mispredicts == 0 {
		t.Fatal("alternating branch should mispredict at least once")
	}
}

func TestRegFileReadyBitDeadlock(t *testing.T) {
	// Clearing a ready bit on a live register parks its consumers; the
	// watchdog must classify the hang as a deadlock.
	prog, err := asm.Assemble(`
_start:
    li r1, #1
loop:
    add r1, r1, r1
    cmp r1, #0
    b.ne loop
    li r7, #1
    syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	r := buildRig(t, prog)
	for r.core.Cycles() < 200 {
		r.core.Cycle()
	}
	rf := r.core.RegFile()
	for p := 0; p < rf.Rows(); p++ {
		rf.FlipBit(p, 32) // toggle every ready bit: guaranteed to park someone
	}
	for r.core.Stopped() == StopNone && r.core.Cycles() < 1_000_000 {
		r.core.Cycle()
	}
	if r.core.Stopped() != StopDeadlock {
		t.Fatalf("stop = %v, want deadlock", r.core.Stopped())
	}
}

func TestWrongPathFaultNotRaised(t *testing.T) {
	// An undefined word sits on the not-taken path; since the branch is
	// always taken, the fault must never commit. The bimodal predictor
	// starts weakly-taken, but exercise both directions anyway.
	r := runRig(t, `
_start:
    li r2, #0
loop:
    addi r2, r2, #1
    cmp r2, #50
    b.lt skip
    b done
skip:
    b loop
    .word 0xFFFFFFFF   ; never executed architecturally
done:
    li r0, #9
    li r7, #1
    syscall
`, 1_000_000)
	if r.core.Stopped() != StopExit || r.os.exitCode != 9 {
		t.Fatalf("stop = %v exit=%d", r.core.Stopped(), r.os.exitCode)
	}
}

func TestPreciseUndef(t *testing.T) {
	// Instructions after the faulting one must not change state; the store
	// following the undef word must never land.
	prog, err := asm.Assemble(`
_start:
    li r1, #0x00200000  ; unmapped... actually use data
    .word 0x00000000    ; undefined (all zeros)
    li r7, #1
    syscall
`)
	if err != nil {
		t.Fatal(err)
	}
	r := buildRig(t, prog)
	for r.core.Stopped() == StopNone && r.core.Cycles() < 100000 {
		r.core.Cycle()
	}
	if r.core.Stopped() != StopUndef {
		t.Fatalf("stop = %v, want undefined-instruction", r.core.Stopped())
	}
	if r.os.exited {
		t.Fatal("syscall after the fault must not commit")
	}
}

func TestStoreLoadForwardingSizes(t *testing.T) {
	r := runRig(t, `
_start:
    li r1, #0x00100000
    li r2, #0xAABBCCDD
    str r2, [r1, #0]
    ldr r3, [r1, #0]     ; word forward
    ldrb r4, [r1, #0]    ; partial: must wait for commit, then read 0xDD
    add r0, r4, r3
    sub r0, r0, r3       ; r0 = 0xDD
    li r7, #1
    syscall
.data
.word 0
`, 1_000_000)
	if r.core.Stopped() != StopExit || r.os.exitCode != 0xDD {
		t.Fatalf("stop=%v exit=%#x", r.core.Stopped(), r.os.exitCode)
	}
}

func TestSegfaultOnReadOnlyStore(t *testing.T) {
	// Text pages are mapped read-only; writing one is a protection fault.
	r := runRig(t, `
_start:
    li r1, #0x00010000
    li r2, #1
    str r2, [r1, #0]
    li r7, #1
    syscall
`, 1_000_000)
	if r.core.Stopped() != StopSegv {
		t.Fatalf("stop = %v, want segfault", r.core.Stopped())
	}
}

func TestIndirectCallAndReturn(t *testing.T) {
	r := runRig(t, `
_start:
    la r1, fn
    blx r1
    addi r0, r0, #1
    li r7, #1
    syscall
fn:
    li r0, #41
    bx lr
`, 1_000_000)
	if r.core.Stopped() != StopExit || r.os.exitCode != 42 {
		t.Fatalf("stop=%v exit=%d", r.core.Stopped(), r.os.exitCode)
	}
}

func TestUnalignedAccessFaults(t *testing.T) {
	r := runRig(t, `
_start:
    li r1, #0x00100001
    ldr r2, [r1, #0]
    li r7, #1
    syscall
.data
.word 0
`, 1_000_000)
	if r.core.Stopped() != StopAlign {
		t.Fatalf("stop = %v, want alignment fault", r.core.Stopped())
	}
}

func TestRegFileDataFlipChangesResult(t *testing.T) {
	// Flip bit 0 of every physical register mid-run: the exit code of a
	// long dependent chain must change (value corruption propagates).
	src := `
_start:
    li r1, #0
    li r2, #0
loop:
    add r1, r1, r2
    addi r2, r2, #1
    cmp r2, #2000
    b.lt loop
    andi r0, r1, #0xFF
    li r7, #1
    syscall
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	clean := buildRig(t, prog)
	for clean.core.Stopped() == StopNone && clean.core.Cycles() < 1_000_000 {
		clean.core.Cycle()
	}
	faulty := buildRig(t, prog)
	for faulty.core.Cycles() < 2000 {
		faulty.core.Cycle()
	}
	rf := faulty.core.RegFile()
	for p := 0; p < rf.Rows(); p++ {
		rf.FlipBit(p, 7)
	}
	for faulty.core.Stopped() == StopNone && faulty.core.Cycles() < 1_000_000 {
		faulty.core.Cycle()
	}
	if faulty.core.Stopped() == StopExit && faulty.os.exitCode == clean.os.exitCode {
		t.Fatal("massive register corruption was architecturally invisible")
	}
}

func TestCommitCountMatchesWork(t *testing.T) {
	r := runRig(t, `
_start:
    li r2, #0
loop:
    addi r2, r2, #1
    cmp r2, #100
    b.lt loop
    li r7, #1
    syscall
`, 1_000_000)
	if r.core.Stopped() != StopExit {
		t.Fatalf("stop = %v", r.core.Stopped())
	}
	// 2 setup + 100 iterations x 3 + final li/syscall: roughly 300-320.
	if r.core.Committed < 300 || r.core.Committed > 330 {
		t.Fatalf("committed = %d", r.core.Committed)
	}
	if r.core.Cycles() == 0 || r.core.Cycles() > 10*r.core.Committed {
		t.Fatalf("implausible cycle count %d for %d instructions", r.core.Cycles(), r.core.Committed)
	}
}

func TestDivLatencyVisible(t *testing.T) {
	// A chain of dependent divisions must take roughly DivLat cycles each.
	r := runRig(t, `
_start:
    li r1, #100000
    li r2, #3
    sdiv r1, r1, r2
    sdiv r1, r1, r2
    sdiv r1, r1, r2
    sdiv r1, r1, r2
    mov r0, r1
    li r7, #1
    syscall
`, 1_000_000)
	if r.core.Stopped() != StopExit {
		t.Fatalf("stop = %v", r.core.Stopped())
	}
	if r.os.exitCode != 100000/3/3/3/3 {
		t.Fatalf("exit = %d", r.os.exitCode)
	}
	if r.core.Cycles() < 4*12 {
		t.Fatalf("dependent divides finished in %d cycles", r.core.Cycles())
	}
}

func TestInOrderModeSameResultLowerILP(t *testing.T) {
	// In-order issue must preserve architectural results while extracting
	// less ILP from an interleaved independent-chain kernel.
	src := `
_start:
    li r1, #1
    li r2, #1
    li r3, #0
loop:
    mul r4, r1, r2      ; long-latency op feeding nothing immediately
    addi r1, r1, #3
    addi r2, r2, #5
    add r5, r1, r2
    eor r6, r4, r5
    add r3, r3, r6
    cmp r1, #3000
    b.lt loop
    andi r0, r3, #0xFF
    li r7, #1
    syscall
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	runCfg := func(inOrder bool) (*rig, uint64) {
		r := buildRig(t, prog)
		if inOrder {
			// Rebuild with the in-order configuration.
			cfg := DefaultConfig()
			cfg.InOrder = true
			r = buildRigWithConfig(t, prog, cfg)
		}
		for r.core.Stopped() == StopNone && r.core.Cycles() < 10_000_000 {
			r.core.Cycle()
		}
		if r.core.Stopped() != StopExit {
			t.Fatalf("inOrder=%v: stop = %v", inOrder, r.core.Stopped())
		}
		return r, r.core.Cycles()
	}
	ooo, oooCycles := runCfg(false)
	ino, inoCycles := runCfg(true)
	if ooo.os.exitCode != ino.os.exitCode {
		t.Fatalf("architectural results differ: %d vs %d", ooo.os.exitCode, ino.os.exitCode)
	}
	if inoCycles < oooCycles {
		t.Fatalf("in-order (%d cycles) should not beat out-of-order (%d)", inoCycles, oooCycles)
	}
}
