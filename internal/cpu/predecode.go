package cpu

import "mbusim/internal/isa"

// Predecode: the text segment is decoded once, when the program is loaded,
// into a dense array of preInst records — everything the pipeline needs to
// know about an instruction, resolved through the generated dispatch
// tables (exec_gen.go). The fetch stage then replaces the per-cycle
// isa.Decode call and branch-classification switch with one array index.
//
// Correctness under fault injection: the fetch stage compares the word it
// actually read from the I-side (L1I through the ITLB) against the raw
// word recorded in the predecode line. Any mismatch — a bit flip in L1I
// data, a tag or valid-bit flip aliasing another line into this PC, or a
// corrupted translation fetching the wrong frame — falls back to decoding
// the fetched word from scratch, so corrupted encodings behave exactly as
// they would without predecode. The pretext array itself is immutable
// after InstallText and is shared by reference across snapshots.

type preFlags uint8

const (
	preOK           preFlags = 1 << iota // decodes without error
	preNeedsIQ                           // dispatches into the issue queue
	preIsLoad                            //
	preIsStore                           //
	preIsBranch                          //
	preIsSys                             //
	preDoneAtRename                      // NOP, SYSCALL, B.AL, BL: no execute stage
	preMemReg                            // register-offset addressing
)

// Branch kinds, from the fetch stage's point of view.
const (
	preBrNone   uint8 = iota
	preBrCond         // B with a genuine condition: predicted taken/not-taken
	preBrStatic       // B.AL and BL: target known at fetch
	preBrInd          // BX/BLX: target predicted through the BTB
)

// preInst is one predecoded instruction.
type preInst struct {
	raw      uint32 // the encoding this record was decoded from
	imm      int32
	target   uint32 // static branch target (B and BL)
	op       isa.Op
	cond     isa.Cond
	flags    preFlags
	brKind   uint8
	archDest uint8 // architectural destination, isa.NoReg if none
	nsrc     uint8
	srcs     [3]uint8 // architectural source registers, in rename order
	memSize  uint8
}

// buildPre decodes one instruction word into its predecoded form. It is
// the single decode path: InstallText runs it over the text segment and
// the fetch stage runs it for any word that misses or mismatches the
// predecode array.
func buildPre(pc, word uint32) preInst {
	in, err := isa.Decode(word)
	p := preInst{raw: word, imm: in.Imm, op: in.Op, cond: in.Cond, archDest: isa.NoReg}
	if err != nil {
		return p // preOK clear: undefined instruction
	}
	p.flags |= preOK

	switch opDestKind[in.Op] {
	case isa.DestRd:
		p.archDest = in.Rd
	case isa.DestFlags:
		p.archDest = isa.RegFlags
	case isa.DestLR:
		p.archDest = isa.RegLR
	case isa.DestR0:
		p.archDest = 0
	}

	kinds := opSrcKinds[in.Op]
	n := 0
	for i := uint8(0); i < opNumSrcs[in.Op]; i++ {
		switch kinds[i] {
		case isa.SrcRn:
			p.srcs[n] = in.Rn
		case isa.SrcRm:
			p.srcs[n] = in.Rm
		case isa.SrcRdData:
			p.srcs[n] = in.Rd
		case isa.SrcFlags:
			if in.Cond == isa.CondAL {
				continue // B.AL reads no flags
			}
			p.srcs[n] = isa.RegFlags
		}
		n++
	}
	p.nsrc = uint8(n)

	p.memSize = opMemSizeTab[in.Op]
	if opMemRegTab[in.Op] {
		p.flags |= preMemReg
	}

	switch in.Class {
	case isa.ClassALU, isa.ClassCmp:
		p.flags |= preNeedsIQ
	case isa.ClassLoad:
		p.flags |= preNeedsIQ | preIsLoad
	case isa.ClassStore:
		p.flags |= preNeedsIQ | preIsStore
	case isa.ClassBranch:
		p.flags |= preIsBranch
		switch in.Op {
		case isa.OpB:
			p.target = pc + 4 + uint32(in.Imm)*4
			if in.Cond == isa.CondAL {
				p.brKind = preBrStatic
				p.flags |= preDoneAtRename
			} else {
				p.brKind = preBrCond
				p.flags |= preNeedsIQ
			}
		case isa.OpBL:
			p.target = pc + 4 + uint32(in.Imm)*4
			p.brKind = preBrStatic
			p.flags |= preDoneAtRename
		case isa.OpBX, isa.OpBLX:
			p.brKind = preBrInd
			p.flags |= preNeedsIQ
		}
	case isa.ClassSys:
		p.flags |= preIsSys | preDoneAtRename
	case isa.ClassNop:
		p.flags |= preDoneAtRename
	}
	return p
}

// InstallText predecodes the program's text segment (loader use, once per
// golden run). base is the virtual address of text[0].
func (c *Core) InstallText(base uint32, text []byte) {
	c.textBase = base
	c.pretext = make([]preInst, len(text)/4)
	for i := range c.pretext {
		w := uint32(text[4*i]) | uint32(text[4*i+1])<<8 |
			uint32(text[4*i+2])<<16 | uint32(text[4*i+3])<<24
		c.pretext[i] = buildPre(base+uint32(4*i), w)
	}
}
