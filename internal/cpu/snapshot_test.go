package cpu

import (
	"reflect"
	"testing"

	"mbusim/internal/asm"
)

// snapProg is a loop long enough to populate the ROB, queues and predictor
// with in-flight state at any snapshot point.
const snapProg = `
_start:
    li r1, #0
    li r2, #0
    la r5, buf
loop:
    add r1, r1, r2
    str r1, [r5, #0]
    ldr r3, [r5, #0]
    add r1, r1, r3
    addi r2, r2, #1
    cmp r2, #200
    b.lt loop
    li r0, #0
    li r7, #1
    syscall
.data
.align 4
buf: .space 4
`

func TestCoreSnapshotRoundTrip(t *testing.T) {
	prog, err := asm.Assemble(snapProg)
	if err != nil {
		t.Fatal(err)
	}
	r := buildRig(t, prog)
	for i := 0; i < 500 && r.core.Stopped() == StopNone; i++ {
		r.core.Cycle()
	}
	if r.core.Stopped() != StopNone {
		t.Fatal("program finished before the snapshot point")
	}

	s1 := r.core.Snapshot()
	// Mutate the core, then restore; the re-snapshot must deep-equal the
	// original snapshot (Snapshot/Restore are both deep copies, so this
	// compares the complete mutable state field by field).
	for i := 0; i < 100 && r.core.Stopped() == StopNone; i++ {
		r.core.Cycle()
	}
	r.core.Restore(s1)
	s2 := r.core.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("core state after Restore(Snapshot()) differs from the snapshot")
	}

	// No aliasing: running the restored core further must not change the
	// snapshots taken earlier.
	for i := 0; i < 100 && r.core.Stopped() == StopNone; i++ {
		r.core.Cycle()
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("snapshot mutated by running the restored core")
	}
	if reflect.DeepEqual(s1, r.core.Snapshot()) {
		t.Fatal("core did not advance after restore")
	}
}

func TestRegFileSnapshotRoundTrip(t *testing.T) {
	rf := NewRegFile(8)
	rf.Write(3, 0xABCD)
	rf.Alloc(5)
	s := rf.Snapshot()

	rf.Write(3, 1)
	rf.Write(5, 2)
	rf.Restore(s)
	if rf.Val(3) != 0xABCD || rf.Ready(5) {
		t.Fatalf("restored regfile state differs: val(3)=%#x ready(5)=%v", rf.Val(3), rf.Ready(5))
	}

	// Mutating the restored file must not touch the snapshot.
	rf.Write(3, 0)
	rf2 := NewRegFile(8)
	rf2.Restore(s)
	if rf2.Val(3) != 0xABCD {
		t.Fatal("snapshot mutated through a restored regfile")
	}
}

func TestRegFileSnapshotSizeMismatchPanics(t *testing.T) {
	s := NewRegFile(4).Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched regfile size")
		}
	}()
	NewRegFile(8).Restore(s)
}

func TestCoreSnapshotROBMismatchPanics(t *testing.T) {
	prog, err := asm.Assemble(snapProg)
	if err != nil {
		t.Fatal(err)
	}
	r := buildRig(t, prog)
	s := r.core.Snapshot()

	cfg := DefaultConfig()
	cfg.ROBSize = 16
	r2 := buildRigWithConfig(t, prog, cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched ROB size")
		}
	}()
	r2.core.Restore(s)
}
