package cpu

import (
	"slices"

	"mbusim/internal/isa"
)

// Snapshot support: a Core snapshot captures every piece of mutable
// pipeline state — the physical register file, both rename maps, the free
// list, the reorder buffer, the fetch/issue/writeback queues, the
// load/store queues, the predictor tables, the cycle counters and the stop
// state — so that a restored core continues execution bit-identically.
// The memory-system handles (caches, TLBs, walker, OS) are wiring, not
// state: a restored core keeps the handles of the core it is restored
// into. TraceCommit is a debugging hook and is deliberately not part of
// the snapshot.

// RegFileSnapshot is a deep copy of a physical register file.
type RegFileSnapshot struct {
	vals  []uint32
	ready []bool
}

// Snapshot captures the register-file state.
func (rf *RegFile) Snapshot() *RegFileSnapshot {
	return &RegFileSnapshot{
		vals:  append([]uint32(nil), rf.vals...),
		ready: append([]bool(nil), rf.ready...),
	}
}

// Restore overwrites the register-file state with the snapshot's. The
// register counts must match (a programming error otherwise).
func (rf *RegFile) Restore(s *RegFileSnapshot) {
	if len(s.vals) != len(rf.vals) {
		panic("regfile: restore into mismatched size")
	}
	copy(rf.vals, s.vals)
	copy(rf.ready, s.ready)
}

// EqualsSnapshot reports whether the register-file state bit-equals the
// snapshot (convergence-exit support). The wake generation is a scheduling
// hint, not architectural state, and is deliberately not compared.
func (rf *RegFile) EqualsSnapshot(s *RegFileSnapshot) bool {
	return slices.Equal(rf.vals, s.vals) && slices.Equal(rf.ready, s.ready)
}

// Snapshot is a deep copy of a core's mutable state.
type Snapshot struct {
	rf        *RegFileSnapshot
	renameMap [isa.NumArch]uint8
	archMap   [isa.NumArch]uint8
	freeList  []uint8

	rob      []robEntry
	robHead  int
	robCount int
	seqNext  uint64

	fetchPC      uint32
	fetchQ       []fetchedInst
	fqHead       int
	fetchReadyAt uint64
	fetchFaulted bool

	// The predecoded text is immutable after InstallText, so snapshots
	// share it by reference rather than deep-copying it.
	pretext  []preInst
	textBase uint32

	iq       []iqEntry
	inflight []wbEntry
	pending  []pendingLoad
	sq       []int32
	sqHead   int
	lqCount  int
	sqCount  int

	pred predictor

	cycle      uint64
	lastCommit uint64

	stopped  StopKind
	stopPC   uint32
	stopAddr uint32

	committed   uint64
	mispredicts uint64
	squashes    uint64
}

// Snapshot captures the full core state.
func (c *Core) Snapshot() *Snapshot {
	return &Snapshot{
		rf:        c.rf.Snapshot(),
		renameMap: c.renameMap,
		archMap:   c.archMap,
		freeList:  append([]uint8(nil), c.freeList...),

		rob:      append([]robEntry(nil), c.rob...),
		robHead:  c.robHead,
		robCount: c.robCount,
		seqNext:  c.seqNext,

		fetchPC:      c.fetchPC,
		fetchQ:       append([]fetchedInst(nil), c.fetchQ...),
		fqHead:       c.fqHead,
		fetchReadyAt: c.fetchReadyAt,
		fetchFaulted: c.fetchFaulted,
		pretext:      c.pretext,
		textBase:     c.textBase,

		iq:       append([]iqEntry(nil), c.iq...),
		inflight: append([]wbEntry(nil), c.inflight...),
		pending:  append([]pendingLoad(nil), c.pending...),
		sq:       append([]int32(nil), c.sq...),
		sqHead:   c.sqHead,
		lqCount:  c.lqCount,
		sqCount:  c.sqCount,

		pred: *c.pred,

		cycle:      c.cycle,
		lastCommit: c.lastCommit,

		stopped:  c.stopped,
		stopPC:   c.stopPC,
		stopAddr: c.stopAddr,

		committed:   c.Committed,
		mispredicts: c.Mispredicts,
		squashes:    c.Squashes,
	}
}

// Restore overwrites the core state with the snapshot's, deep-copying every
// slice so later core activity never reaches back into the snapshot. The
// core must share the configuration of the snapshotted one (same ROB and
// register-file sizes); a mismatch is a programming error and panics.
func (c *Core) Restore(s *Snapshot) {
	if len(s.rob) != len(c.rob) {
		panic("cpu: restore into mismatched ROB size")
	}
	c.rf.Restore(s.rf)
	c.renameMap = s.renameMap
	c.archMap = s.archMap
	c.freeList = append(c.freeList[:0], s.freeList...)

	copy(c.rob, s.rob)
	c.robHead = s.robHead
	c.robCount = s.robCount
	c.seqNext = s.seqNext

	c.fetchPC = s.fetchPC
	c.fetchQ = append(c.fetchQ[:0], s.fetchQ...)
	c.fqHead = s.fqHead
	c.fetchReadyAt = s.fetchReadyAt
	c.fetchFaulted = s.fetchFaulted
	c.pretext = s.pretext
	c.textBase = s.textBase

	c.iq = append(c.iq[:0], s.iq...)
	c.inflight = append(c.inflight[:0], s.inflight...)
	c.pending = append(c.pending[:0], s.pending...)
	c.sq = append(c.sq[:0], s.sq...)
	c.sqHead = s.sqHead
	c.lqCount = s.lqCount
	c.sqCount = s.sqCount

	*c.pred = s.pred

	c.cycle = s.cycle
	c.lastCommit = s.lastCommit

	// Scheduling hints are derived state: reset them so the first cycle
	// after a restore rescans everything.
	c.wbNextDone = 0
	c.issueIdle = false
	c.loadsIdle = false

	c.stopped = s.stopped
	c.stopPC = s.stopPC
	c.stopAddr = s.stopAddr

	c.Committed = s.committed
	c.Mispredicts = s.mispredicts
	c.Squashes = s.squashes
}

// EqualsSnapshot reports whether the core's complete snapshotted state
// bit-equals the snapshot (convergence-exit support). Scheduling hints are
// excluded for the same reason Restore resets them: they are conservative
// derived accelerators whose value never changes an outcome. The cheap
// progress scalars are compared first — any timing perturbation shows up in
// the commit count or sequence counter long before the queue contents need
// walking.
func (c *Core) EqualsSnapshot(s *Snapshot) bool {
	if c.cycle != s.cycle || c.Committed != s.committed || c.seqNext != s.seqNext ||
		c.lastCommit != s.lastCommit || c.fetchPC != s.fetchPC ||
		c.robHead != s.robHead || c.robCount != s.robCount ||
		c.fqHead != s.fqHead || c.fetchReadyAt != s.fetchReadyAt ||
		c.fetchFaulted != s.fetchFaulted || c.textBase != s.textBase ||
		c.sqHead != s.sqHead || c.lqCount != s.lqCount || c.sqCount != s.sqCount ||
		c.stopped != s.stopped || c.stopPC != s.stopPC || c.stopAddr != s.stopAddr ||
		c.Mispredicts != s.mispredicts || c.Squashes != s.squashes {
		return false
	}
	if c.renameMap != s.renameMap || c.archMap != s.archMap || *c.pred != s.pred {
		return false
	}
	return c.rf.EqualsSnapshot(s.rf) &&
		slices.Equal(c.freeList, s.freeList) &&
		slices.Equal(c.rob, s.rob) &&
		slices.Equal(c.fetchQ, s.fetchQ) &&
		slices.Equal(c.iq, s.iq) &&
		slices.Equal(c.inflight, s.inflight) &&
		slices.Equal(c.pending, s.pending) &&
		slices.Equal(c.sq, s.sq)
}

// RestoreDirty is the core's delta restore. Virtually every pipeline field
// — the ROB, queues, rename maps, predictor counters, cycle counts —
// mutates every cycle, so there is nothing for dirty tracking to skip: a
// delta restore of the core is the full restore (a few KB of copies into
// preallocated slices, no allocation).
func (c *Core) RestoreDirty(s *Snapshot) { c.Restore(s) }
