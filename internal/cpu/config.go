package cpu

// Config holds the microarchitectural parameters of the core. The defaults
// follow the paper's Table I (an ARM Cortex-A9-like out-of-order core).
type Config struct {
	FetchWidth  int // instructions fetched per cycle
	IssueWidth  int // instructions issued to execution per cycle
	WBWidth     int // completions written back per cycle
	CommitWidth int // instructions committed per cycle

	ROBSize    int // reorder buffer entries
	IQSize     int // instruction queue entries
	PhysRegs   int // physical register file size
	LQSize     int // load queue entries
	SQSize     int // store queue entries
	FetchQSize int // fetch buffer entries

	// Execution latencies in cycles.
	ALULat int
	MulLat int
	DivLat int
	AGULat int // address generation before the cache access

	// DeadlockLimit is the number of cycles without a commit after which
	// the core reports a deadlock (the watchdog behind the paper's Timeout
	// class for stuck pipelines).
	DeadlockLimit uint64

	// InOrder restricts issue to program order (the paper's conclusion
	// notes the methodology applies to in-order CPUs as well; this models
	// one without a separate core).
	InOrder bool
}

// DefaultConfig returns the Cortex-A9-like configuration of Table I.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  2,
		IssueWidth:  4,
		WBWidth:     4,
		CommitWidth: 4,

		ROBSize:    40,
		IQSize:     32,
		PhysRegs:   56,
		LQSize:     8,
		SQSize:     8,
		FetchQSize: 8,

		ALULat: 1,
		MulLat: 3,
		DivLat: 12,
		AGULat: 1,

		DeadlockLimit: 25000,
	}
}
