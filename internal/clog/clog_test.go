package clog

import (
	"bytes"
	"strings"
	"testing"
)

func TestLevelsAndFormat(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, false)
	log.Debug("hidden detail")
	log.Info("loaded results", "cells", 3, "path", "r.json")
	log.Warn("section skipped", "comp", "L2")
	log.Error("boom")
	got := buf.String()
	want := "loaded results cells=3 path=r.json\n" +
		"warn: section skipped comp=L2\n" +
		"error: boom\n"
	if got != want {
		t.Fatalf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestVerboseEnablesDebug(t *testing.T) {
	var buf bytes.Buffer
	New(&buf, true).Debug("detail", "k", "v")
	if got := buf.String(); got != "debug: detail k=v\n" {
		t.Fatalf("got %q", got)
	}
}

func TestWithAttrsAndGroups(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, false).With("tool", "mcc").WithGroup("run")
	log.Info("done", "cycles", 42)
	got := buf.String()
	if !strings.Contains(got, "tool=mcc") || !strings.Contains(got, "run.cycles=42") {
		t.Fatalf("got %q", got)
	}
}
