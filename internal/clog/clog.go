// Package clog is the shared leveled logger for the mbusim command-line
// tools. It wraps log/slog with a human-oriented handler: no timestamps
// (these are interactive tools, not servers), plain messages at info level,
// a "level:" prefix for everything else, and key=value detail appended in
// record order. Debug records are dropped unless the tool's -v flag is set.
package clog

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
)

// New returns a logger writing to w. verbose lowers the threshold from
// Info to Debug — the convention every cmd/ tool maps its -v flag to.
func New(w io.Writer, verbose bool) *slog.Logger {
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	return slog.New(&handler{mu: &sync.Mutex{}, w: w, level: level})
}

// handler renders records as "message key=value ..." lines. It implements
// WithAttrs/WithGroup by pre-rendering: attrs bound early are appended to
// every line, and group names become dotted key prefixes.
type handler struct {
	mu     *sync.Mutex // shared across WithAttrs/WithGroup copies
	w      io.Writer
	level  slog.Level
	bound  string // pre-rendered attrs from WithAttrs
	prefix string // dotted group path from WithGroup
}

func (h *handler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= h.level
}

func (h *handler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	if r.Level != slog.LevelInfo {
		b.WriteString(strings.ToLower(r.Level.String()))
		b.WriteString(": ")
	}
	b.WriteString(r.Message)
	b.WriteString(h.bound)
	r.Attrs(func(a slog.Attr) bool {
		h.appendAttr(&b, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

func (h *handler) appendAttr(b *strings.Builder, a slog.Attr) {
	if a.Equal(slog.Attr{}) {
		return
	}
	fmt.Fprintf(b, " %s%s=%v", h.prefix, a.Key, a.Value.Resolve())
}

func (h *handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	var b strings.Builder
	b.WriteString(h.bound)
	for _, a := range attrs {
		h.appendAttr(&b, a)
	}
	nh.bound = b.String()
	return &nh
}

func (h *handler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := *h
	nh.prefix = h.prefix + name + "."
	return &nh
}
