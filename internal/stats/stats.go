// Package stats implements the statistical fault-sampling calculations of
// Leveugle et al. (DATE 2009), the formulation the paper follows: given a
// finite fault population (bits x cycles), a sample of n injections
// estimates the AVF within margin e at a chosen confidence level.
package stats

import "math"

// ZScore returns the two-sided normal z value for any confidence level in
// (0,1), via the inverse error function: a two-sided confidence c needs
// Φ(z) = (1+c)/2, and with Φ(z) = (1+erf(z/√2))/2 that solves to
//
//	z = √2 · erfinv(c)
//
// The paper's levels come out to the familiar constants (0.90 → 1.6449,
// 0.95 → 1.9600, 0.99 → 2.5758, 0.999 → 3.2905). Levels outside (0,1)
// panic, because a campaign configured with an impossible confidence is a
// programming error.
func ZScore(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 || math.IsNaN(confidence) {
		panic("stats: confidence level must be inside (0,1)")
	}
	return math.Sqrt2 * math.Erfinv(confidence)
}

// Margin returns the error margin e for a sample of n faults drawn from a
// population of size population, at the given estimated proportion p and
// confidence level:
//
//	e = z * sqrt( p(1-p)/n * (N-n)/(N-1) )
//
// Population sizes in fault injection (bits x cycles) dwarf any feasible
// sample, so the finite-population correction is usually ~1; it is kept for
// exactness with the paper's formula.
func Margin(n int, population float64, p, confidence float64) float64 {
	if n <= 0 {
		return 1
	}
	z := ZScore(confidence)
	fpc := 1.0
	if population > 1 && float64(n) < population {
		fpc = (population - float64(n)) / (population - 1)
	}
	return z * math.Sqrt(p*(1-p)/float64(n)*fpc)
}

// SampleSize returns the number of fault injections needed to estimate a
// proportion p within margin e at the given confidence, for a population of
// the given size:
//
//	n = N / (1 + e^2 (N-1) / (z^2 p(1-p)))
//
// With p = 0.5 (the worst case the paper starts from), 2,000 samples give a
// 2.88% margin at 99% confidence for any large population — the paper's
// campaign size.
func SampleSize(population float64, e, p, confidence float64) int {
	z := ZScore(confidence)
	n := population / (1 + e*e*(population-1)/(z*z*p*(1-p)))
	return int(math.Ceil(n))
}

// Readjust recomputes the margin after a campaign, replacing the worst-case
// p = 0.5 with the measured proportion shifted by the initial margin (the
// paper's post-campaign re-adjustment, which tightens 2.88% to ~2.4%).
func Readjust(n int, population float64, measured, initialMargin, confidence float64) float64 {
	p := measured
	// Shift toward 0.5 by the initial margin: the conservative direction.
	if p < 0.5 {
		p += initialMargin
		if p > 0.5 {
			p = 0.5
		}
	} else {
		p -= initialMargin
		if p < 0.5 {
			p = 0.5
		}
	}
	return Margin(n, population, p, confidence)
}
