package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperSampleSize(t *testing.T) {
	// The paper: 2,000 samples give a 2.88% margin at 99% confidence with
	// p = 0.5 for a very large population.
	got := Margin(2000, 1e12, 0.5, 0.99)
	if math.Abs(got-0.0288) > 0.0003 {
		t.Fatalf("margin(2000) = %.4f, want ~0.0288", got)
	}
	n := SampleSize(1e12, 0.0288, 0.5, 0.99)
	if n < 1900 || n > 2100 {
		t.Fatalf("sample size = %d, want ~2000", n)
	}
}

func TestMarginDecreasesWithN(t *testing.T) {
	prev := 1.0
	for _, n := range []int{10, 100, 1000, 10000} {
		m := Margin(n, 1e12, 0.5, 0.99)
		if m >= prev {
			t.Fatalf("margin not decreasing at n=%d", n)
		}
		prev = m
	}
}

func TestMarginWorstCaseAtHalf(t *testing.T) {
	f := func(p float64) bool {
		p = math.Abs(math.Mod(p, 1))
		return Margin(500, 1e9, p, 0.99) <= Margin(500, 1e9, 0.5, 0.99)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFinitePopulationCorrection(t *testing.T) {
	// Sampling most of a small population shrinks the margin.
	small := Margin(900, 1000, 0.5, 0.99)
	large := Margin(900, 1e12, 0.5, 0.99)
	if small >= large {
		t.Fatalf("FPC missing: %f >= %f", small, large)
	}
}

func TestReadjustTightensExtremes(t *testing.T) {
	init := Margin(2000, 1e12, 0.5, 0.99)
	adj := Readjust(2000, 1e12, 0.05, init, 0.99)
	if adj >= init {
		t.Fatalf("readjusted margin %f not tighter than %f", adj, init)
	}
	// The paper reports margins between 2.4% and 2.88% after adjustment.
	if adj < 0.015 || adj > init {
		t.Fatalf("adjusted margin %f outside plausible band", adj)
	}
	// A measurement near 0.5 cannot tighten.
	adj = Readjust(2000, 1e12, 0.5, init, 0.99)
	if math.Abs(adj-init) > 1e-12 {
		t.Fatalf("p=0.5 readjustment changed the margin: %f vs %f", adj, init)
	}
}

func TestZScoreAnchors(t *testing.T) {
	// The four levels of the old lookup table remain exact to 4 decimal
	// places under the erfinv-based inverse normal.
	anchors := map[float64]float64{
		0.90:  1.6449,
		0.95:  1.9600,
		0.99:  2.5758,
		0.999: 3.2905,
	}
	for c, want := range anchors {
		if got := ZScore(c); math.Abs(got-want) > 1e-4 {
			t.Errorf("ZScore(%g) = %.6f, want %.4f ± 1e-4", c, got, want)
		}
	}
}

func TestZScoreAnyConfidence(t *testing.T) {
	// Monotone increasing over (0,1), symmetric through erf: the median
	// confidence 0.5 gives the quartile z ≈ 0.6745.
	if got := ZScore(0.5); math.Abs(got-0.6745) > 1e-4 {
		t.Fatalf("ZScore(0.5) = %.6f, want ~0.6745", got)
	}
	prev := 0.0
	for _, c := range []float64{0.01, 0.25, 0.42, 0.80, 0.95, 0.9999} {
		z := ZScore(c)
		if z <= prev {
			t.Fatalf("ZScore not increasing at %g: %f <= %f", c, z, prev)
		}
		prev = z
	}
	// Round-trip through the normal CDF: erf(z/√2) must give back c.
	for _, c := range []float64{0.1, 0.5, 0.77, 0.999} {
		if back := math.Erf(ZScore(c) / math.Sqrt2); math.Abs(back-c) > 1e-12 {
			t.Fatalf("round-trip at %g gave %g", c, back)
		}
	}
}

func TestZScorePanicsOutsideUnitInterval(t *testing.T) {
	for _, c := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		c := c
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ZScore(%v) did not panic", c)
				}
			}()
			ZScore(c)
		}()
	}
}

func TestMarginDegenerate(t *testing.T) {
	if Margin(0, 1e9, 0.5, 0.99) != 1 {
		t.Fatal("n=0 must give the trivial margin")
	}
}
