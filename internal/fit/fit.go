// Package fit implements the paper's Failures-In-Time analysis (Eq. 4):
//
//	FIT_struct = AVF_struct x rawFIT_bit x #Bits_struct
//
// summed over structures to give the whole-CPU FIT per technology node,
// with the multi-bit contribution separated out (Fig. 8).
package fit

import (
	"mbusim/internal/avf"
	"mbusim/internal/tech"
)

// Structure computes the FIT of one structure at one node from its
// aggregate AVF.
func Structure(nodeAVF float64, node tech.Node, bits int) float64 {
	return nodeAVF * node.RawFIT * float64(bits)
}

// CPUEntry is one bar of Fig. 8: the whole-CPU FIT at a node, split into
// the part a single-bit-only analysis would report and the extra part
// contributed by multi-bit upsets.
type CPUEntry struct {
	Node       tech.Node
	Total      float64            // FIT with the full multi-bit AVF
	SingleOnly float64            // FIT using only the single-bit AVF
	PerComp    map[string]float64 // per-structure FIT (multi-bit)
}

// MBUShare is the fraction of the total FIT attributable to multi-bit
// upsets (the red area of Fig. 8), 0% at 250 nm rising to ~21% at 22 nm in
// the paper.
func (e CPUEntry) MBUShare() float64 {
	if e.Total == 0 {
		return 0
	}
	return 1 - e.SingleOnly/e.Total
}

// CPU computes the whole-CPU FIT at every measured node from per-component
// weighted AVFs, using the paper's Table VII raw rates and Table VIII
// sizes.
func CPU(cas []avf.ComponentAVF) ([]CPUEntry, error) {
	return CPUFor(cas, tech.Nodes)
}

// CPUFor is CPU over an explicit node list (e.g. tech.AllNodes to include
// the projected post-22nm extension).
func CPUFor(cas []avf.ComponentAVF, nodes []tech.Node) ([]CPUEntry, error) {
	entries := make([]CPUEntry, 0, len(nodes))
	for _, n := range nodes {
		e := CPUEntry{Node: n, PerComp: make(map[string]float64, len(cas))}
		for _, ca := range cas {
			bits, err := tech.ComponentBits(ca.Component)
			if err != nil {
				return nil, err
			}
			agg := avf.NodeAVF(ca.ByFaults[1], ca.ByFaults[2], ca.ByFaults[3], n)
			f := Structure(agg, n, bits)
			e.PerComp[ca.Component] = f
			e.Total += f
			e.SingleOnly += Structure(ca.ByFaults[1], n, bits)
		}
		entries = append(entries, e)
	}
	return entries, nil
}
