package fit

import (
	"math"
	"testing"

	"mbusim/internal/avf"
	"mbusim/internal/tech"
)

func TestStructureEq4(t *testing.T) {
	n, _ := tech.ByName("130nm")
	// FIT = AVF x rawFIT x bits.
	got := Structure(0.25, n, 262144)
	want := 0.25 * 106e-8 * 262144
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("FIT = %g, want %g", got, want)
	}
}

func paperLikeAVFs() []avf.ComponentAVF {
	// Per-component AVFs in the paper's Table V.
	mk := func(name string, a1, a2, a3 float64) avf.ComponentAVF {
		ca := avf.ComponentAVF{Component: name}
		ca.ByFaults[1], ca.ByFaults[2], ca.ByFaults[3] = a1, a2, a3
		return ca
	}
	return []avf.ComponentAVF{
		mk("L1D", 0.2032, 0.2970, 0.3628),
		mk("L1I", 0.1201, 0.1957, 0.2514),
		mk("L2", 0.1794, 0.2483, 0.3013),
		mk("RegFile", 0.1095, 0.1865, 0.2301),
		mk("ITLB", 0.5031, 0.6291, 0.6667),
		mk("DTLB", 0.5066, 0.6177, 0.6722),
	}
}

func TestCPUWithPaperNumbers(t *testing.T) {
	// Feeding the paper's own Table V AVFs through our Eq. 3 + Eq. 4
	// machinery must reproduce the paper's Fig. 8 shape: FIT peaks at
	// 130nm, falls to a minimum at 22nm, and the MBU share rises
	// monotonically from 0% to ~20% at 22nm.
	entries, err := CPU(paperLikeAVFs())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 8 {
		t.Fatalf("%d entries", len(entries))
	}
	peak, low := 0, 0
	for i, e := range entries {
		if e.Total > entries[peak].Total {
			peak = i
		}
		if e.Total < entries[low].Total {
			low = i
		}
	}
	if entries[peak].Node.Name != "130nm" {
		t.Fatalf("FIT peaks at %s, want 130nm", entries[peak].Node.Name)
	}
	if entries[low].Node.Name != "22nm" {
		t.Fatalf("FIT minimum at %s, want 22nm", entries[low].Node.Name)
	}
	if entries[0].MBUShare() != 0 {
		t.Fatalf("250nm MBU share = %f, want 0", entries[0].MBUShare())
	}
	for i := 1; i < len(entries); i++ {
		if entries[i].MBUShare() < entries[i-1].MBUShare()-1e-9 {
			t.Fatalf("MBU share not monotone at %s", entries[i].Node.Name)
		}
	}
	share22 := entries[7].MBUShare()
	if share22 < 0.15 || share22 > 0.27 {
		t.Fatalf("22nm MBU share = %.1f%%, paper reports ~21%%", 100*share22)
	}
}

func TestCPUPerComponentBreakdown(t *testing.T) {
	entries, err := CPU(paperLikeAVFs())
	if err != nil {
		t.Fatal(err)
	}
	e := entries[7]
	sum := 0.0
	for _, f := range e.PerComp {
		sum += f
	}
	if math.Abs(sum-e.Total) > 1e-9 {
		t.Fatalf("per-component FITs sum to %g, total %g", sum, e.Total)
	}
	// The L2 dominates the CPU FIT (it holds 88% of the bits).
	if e.PerComp["L2"] < e.PerComp["L1D"] {
		t.Fatal("L2 should dominate the FIT budget")
	}
}

func TestCPUUnknownComponent(t *testing.T) {
	bad := []avf.ComponentAVF{{Component: "BTB"}}
	if _, err := CPU(bad); err == nil {
		t.Fatal("expected error for unknown component")
	}
}

func TestMBUShareZeroTotal(t *testing.T) {
	var e CPUEntry
	if e.MBUShare() != 0 {
		t.Fatal("zero total must give zero share")
	}
}
