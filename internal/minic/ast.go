package minic

// Types.

type typeKind uint8

const (
	tVoid typeKind = iota
	tInt
	tUint
	tChar
	tPtr
	tArray
)

// Type describes a MiniC type. Types are compared structurally.
type Type struct {
	kind typeKind
	elem *Type // for tPtr and tArray
	len  int   // for tArray
}

var (
	typeVoid = &Type{kind: tVoid}
	typeInt  = &Type{kind: tInt}
	typeUint = &Type{kind: tUint}
	typeChar = &Type{kind: tChar}
)

func ptrTo(t *Type) *Type          { return &Type{kind: tPtr, elem: t} }
func arrayOf(t *Type, n int) *Type { return &Type{kind: tArray, elem: t, len: n} }

func (t *Type) size() int {
	switch t.kind {
	case tChar:
		return 1
	case tInt, tUint, tPtr:
		return 4
	case tArray:
		return t.len * t.elem.size()
	}
	return 0
}

func (t *Type) String() string {
	switch t.kind {
	case tVoid:
		return "void"
	case tInt:
		return "int"
	case tUint:
		return "uint"
	case tChar:
		return "char"
	case tPtr:
		return t.elem.String() + "*"
	case tArray:
		return t.elem.String() + "[]"
	}
	return "?"
}

func sameType(a, b *Type) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case tPtr:
		return sameType(a.elem, b.elem)
	case tArray:
		return a.len == b.len && sameType(a.elem, b.elem)
	}
	return true
}

// isUnsigned reports whether arithmetic on t uses unsigned operations.
// Pointers compare unsigned, as in C.
func (t *Type) isUnsigned() bool {
	return t.kind == tUint || t.kind == tChar || t.kind == tPtr
}

func (t *Type) isInteger() bool {
	return t.kind == tInt || t.kind == tUint || t.kind == tChar
}

func (t *Type) isScalar() bool { return t.isInteger() || t.kind == tPtr }

// Expressions. The checker fills in the typ field.

type expr interface {
	exprLine() int
	typeOf() *Type
}

type exprBase struct {
	line int
	typ  *Type
}

func (e *exprBase) exprLine() int { return e.line }
func (e *exprBase) typeOf() *Type { return e.typ }

type numLit struct {
	exprBase
	val     uint32
	uintLit bool
}

type strLit struct {
	exprBase
	val   string
	label string // assigned by codegen
}

type varRef struct {
	exprBase
	name string
	// resolved by the checker:
	local  *localVar // nil for globals and functions
	global *globalVar
}

type unary struct {
	exprBase
	op      string // ! ~ - * & ++ -- (prefix), p++ p-- as postfix=true
	x       expr
	postfix bool
}

type binary struct {
	exprBase
	op   string
	l, r expr
}

type assign struct {
	exprBase
	op   string // "=", "+=", ...
	l, r expr
}

type ternary struct {
	exprBase
	cond, a, b expr
}

type index struct {
	exprBase
	base, idx expr
}

type call struct {
	exprBase
	name string
	args []expr
	fn   *funcDecl // resolved; nil for intrinsics
}

type cast struct {
	exprBase
	to *Type
	x  expr
}

// Statements.

type stmt interface{ stmtLine() int }

type stmtBase struct{ line int }

func (s *stmtBase) stmtLine() int { return s.line }

type declStmt struct {
	stmtBase
	name string
	typ  *Type
	init expr // nil for none; arrays may not have initializers
	v    *localVar
}

type exprStmt struct {
	stmtBase
	x expr
}

type ifStmt struct {
	stmtBase
	cond      expr
	then, els stmt // els may be nil
}

type whileStmt struct {
	stmtBase
	cond expr
	body stmt
}

type doWhileStmt struct {
	stmtBase
	body stmt
	cond expr
}

type forStmt struct {
	stmtBase
	init stmt // nil, declStmt or exprStmt
	cond expr // nil means true
	post expr // nil for none
	body stmt
}

type returnStmt struct {
	stmtBase
	x expr // nil for void return
}

type breakStmt struct{ stmtBase }
type continueStmt struct{ stmtBase }

type block struct {
	stmtBase
	stmts []stmt
}

// Declarations.

type param struct {
	name string
	typ  *Type
}

type funcDecl struct {
	name   string
	ret    *Type
	params []param
	body   *block
	line   int

	// Populated by the checker/codegen.
	locals  []*localVar
	maxArgs int // widest call made by this function
}

type localVar struct {
	name   string
	typ    *Type
	offset int // sp-relative, assigned by codegen
}

type globalVar struct {
	name   string
	typ    *Type
	line   int
	init   expr   // scalar initializer
	inits  []expr // array initializer list
	str    string // string initializer for char arrays
	hasStr bool
}

type program struct {
	globals []*globalVar
	funcs   []*funcDecl
}
