package minic

import (
	"testing"

	"mbusim/internal/cpu"
	"mbusim/internal/sim"
)

// compileAndRun compiles src, runs it on the simulated machine, and returns
// the outcome.
func compileAndRun(t *testing.T, src string) sim.Outcome {
	t.Helper()
	prog, err := CompileProgram(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m := sim.New(sim.DefaultConfig())
	if err := m.Load(prog); err != nil {
		t.Fatalf("load: %v", err)
	}
	out := m.Run(50_000_000, 0, nil)
	if out.TimedOut {
		t.Fatalf("timed out after %d cycles", out.Cycles)
	}
	return out
}

// wantOutput runs src and checks both clean exit and exact stdout.
func wantOutput(t *testing.T, src, want string) {
	t.Helper()
	out := compileAndRun(t, src)
	if out.Stop != cpu.StopExit {
		t.Fatalf("stopped with %v at pc=%#x (kill=%q panic=%q), want exit",
			out.Stop, 0, out.KillMsg, out.PanicMsg)
	}
	if got := string(out.Stdout); got != want {
		t.Fatalf("stdout = %q, want %q", got, want)
	}
}

func TestPrintBasics(t *testing.T) {
	wantOutput(t, `
int main(void) {
    print_str("hi ");
    print_int(-123);
    print_char(' ');
    print_uint(4000000000u);
    print_char(' ');
    print_hex(0xDEADBEEF);
    print_nl();
    return 0;
}`, "hi -123 4000000000 deadbeef\n")
}

func TestArithmetic(t *testing.T) {
	wantOutput(t, `
int main(void) {
    int a = 17;
    int b = -5;
    print_int(a + b); print_char(',');
    print_int(a - b); print_char(',');
    print_int(a * b); print_char(',');
    print_int(a / b); print_char(',');
    print_int(a % b); print_char(',');
    print_int(a << 2); print_char(',');
    print_int(b >> 1); print_char(',');
    print_int(a & b); print_char(',');
    print_int(a | b); print_char(',');
    print_int(a ^ b);
    print_nl();
    return 0;
}`, "12,22,-85,-3,2,68,-3,17,-5,-22\n")
}

func TestUnsignedArithmetic(t *testing.T) {
	wantOutput(t, `
int main(void) {
    uint a = 0xF0000000u;
    uint b = 3u;
    print_uint(a / b); print_char(',');
    print_uint(a % b); print_char(',');
    print_uint(a >> 4); print_char(',');
    print_uint((uint)(a < b)); print_char(',');
    print_uint((uint)(a > b));
    print_nl();
    return 0;
}`, "1342177280,0,251658240,0,1\n")
}

func TestControlFlow(t *testing.T) {
	wantOutput(t, `
int main(void) {
    int total = 0;
    for (int i = 0; i < 10; i++) {
        if (i % 2 == 0) continue;
        total += i;
        if (i == 7) break;
    }
    print_int(total);   // 1+3+5+7 = 16
    print_char(' ');
    int n = 3;
    while (n > 0) { total = total * 2; n--; }
    print_int(total);   // 128
    print_char(' ');
    do { total++; } while (total < 130);
    print_int(total);   // 130
    print_nl();
    return 0;
}`, "16 128 130\n")
}

func TestGlobalsAndArrays(t *testing.T) {
	wantOutput(t, `
int table[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int scale = 10;
char msg[] = "sum=";
int sum;

int main(void) {
    sum = 0;
    for (int i = 0; i < 8; i++) sum += table[i] * scale;
    print_str(msg);
    print_int(sum);
    print_nl();
    return 0;
}`, "sum=360\n")
}

func TestPointers(t *testing.T) {
	wantOutput(t, `
int swap(int *a, int *b) {
    int tmp = *a;
    *a = *b;
    *b = tmp;
    return 0;
}
int main(void) {
    int x = 3;
    int y = 9;
    swap(&x, &y);
    print_int(x); print_char(','); print_int(y);
    print_char(' ');
    int arr[5];
    int *p = arr;
    for (int i = 0; i < 5; i++) { *p = i * i; p++; }
    int total = 0;
    for (int i = 0; i < 5; i++) total += arr[i];
    print_int(total);  // 0+1+4+9+16 = 30
    print_nl();
    return 0;
}`, "9,3 30\n")
}

func TestCharsAndStrings(t *testing.T) {
	wantOutput(t, `
char buf[16];
int copy(char *dst, char *src) {
    int n = 0;
    while (src[n]) { dst[n] = src[n]; n++; }
    dst[n] = (char)0;
    return n;
}
int main(void) {
    int n = copy(buf, "abcDEF");
    for (int i = 0; i < n; i++) {
        char c = buf[i];
        if (c >= 'a' && c <= 'z') c = (char)(c - 32);
        print_char(c);
    }
    print_nl();
    return 0;
}`, "ABCDEF\n")
}

func TestRecursion(t *testing.T) {
	wantOutput(t, `
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main(void) {
    print_int(fib(15));
    print_nl();
    return 0;
}`, "610\n")
}

func TestManyArguments(t *testing.T) {
	wantOutput(t, `
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
    return a + b*2 + c*3 + d*4 + e*5 + f*6 + g*7 + h*8;
}
int main(void) {
    print_int(sum8(1, 2, 3, 4, 5, 6, 7, 8));
    print_nl();
    return 0;
}`, "204\n")
}

func TestTernaryAndLogical(t *testing.T) {
	wantOutput(t, `
int count = 0;
int bump(void) { count++; return 1; }
int main(void) {
    int a = 5;
    print_int(a > 3 ? 100 : 200); print_char(',');
    print_int(a < 3 ? 100 : 200); print_char(',');
    // Short circuit: bump must not run.
    int r = (a < 3) && bump();
    print_int(r); print_char(',');
    print_int(count); print_char(',');
    r = (a > 3) || bump();
    print_int(r); print_char(',');
    print_int(count);
    print_nl();
    return 0;
}`, "100,200,0,0,1,0\n")
}

func TestIncDecSemantics(t *testing.T) {
	wantOutput(t, `
int a[4] = {10, 20, 30, 40};
int main(void) {
    int i = 0;
    print_int(a[i++]); print_char(',');  // 10, i=1
    print_int(a[++i]); print_char(',');  // 30, i=2
    print_int(i--); print_char(',');     // 2, i=1
    print_int(--i); print_char(',');     // 0
    int *p = a;
    p++;
    print_int(*p);                       // 20
    print_nl();
    return 0;
}`, "10,30,2,0,20\n")
}

func TestCompoundAssign(t *testing.T) {
	wantOutput(t, `
int g = 100;
int main(void) {
    int x = 7;
    x += 3; x *= 2; x -= 4; x /= 2; x %= 7;  // ((7+3)*2-4)/2 %7 = 8%7 = 1
    print_int(x); print_char(',');
    uint u = 0xFF;
    u <<= 4; u |= 0xA; u &= 0xFFF; u ^= 0xF0F; u >>= 2;
    print_hex(u); print_char(',');
    g += 11;
    print_int(g);
    print_nl();
    return 0;
}`, "1,0000003d,111\n")
}

func TestBrkIntrinsic(t *testing.T) {
	wantOutput(t, `
int main(void) {
    uint base = __brk(0u);
    uint end = __brk(base + 8192u);
    if (end < base + 8192u) { print_str("brk failed\n"); return 1; }
    int *heap = (int*)base;
    for (int i = 0; i < 2048; i++) heap[i] = i;
    int total = 0;
    for (int i = 0; i < 2048; i++) total += heap[i];
    print_int(total);
    print_nl();
    return 0;
}`, "2096128\n")
}

func TestCasts(t *testing.T) {
	wantOutput(t, `
int main(void) {
    int big = 0x1234;
    char low = (char)big;
    print_int((int)low); print_char(',');        // 0x34 = 52
    uint u = (uint)-1;
    print_uint(u / 2u); print_char(',');
    print_int((int)(u >> 16));                    // 65535
    print_nl();
    return 0;
}`, "52,2147483647,65535\n")
}

func TestDeepExpression(t *testing.T) {
	// Forces spilling beyond the seven temp registers.
	wantOutput(t, `
int main(void) {
    int a = 1;
    int b = 2;
    int r = a + (b + (a + (b + (a + (b + (a + (b + (a + (b + (a + b))))))))));
    print_int(r);
    print_nl();
    return 0;
}`, "18\n")
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"undefined var", `int main(void){ return x; }`},
		{"undefined func", `int main(void){ return f(); }`},
		{"bad arg count", `int f(int a){return a;} int main(void){ return f(); }`},
		{"assign to rvalue", `int main(void){ 3 = 4; return 0; }`},
		{"break outside loop", `int main(void){ break; return 0; }`},
		{"void variable", `int main(void){ void x; return 0; }`},
		{"no main", `int f(void){ return 0; }`},
		{"duplicate local", `int main(void){ int a = 1; int a = 2; return a; }`},
		{"deref non-pointer", `int main(void){ int a = 1; return *a; }`},
		{"array assignment", `int a[3]; int b[3]; int main(void){ a = b; return 0; }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Compile(tc.src); err == nil {
				t.Fatalf("expected a compile error")
			}
		})
	}
}

func TestGlobalInitializers(t *testing.T) {
	wantOutput(t, `
int a = 3 * 7 + 1;
uint mask = ~0xFu;
char c = 'A';
int negs[3] = {-1, -2, -3};
int main(void) {
    print_int(a); print_char(',');
    print_hex(mask); print_char(',');
    print_char(c); print_char(',');
    print_int(negs[0] + negs[1] + negs[2]);
    print_nl();
    return 0;
}`, "22,fffffff0,A,-6\n")
}
