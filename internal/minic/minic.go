package minic

import "mbusim/internal/asm"

// Prelude is the MiniC runtime library prepended to every program. It
// provides the formatted-output helpers the workloads use; everything is
// MiniC itself, so the runtime executes on the simulated CPU and is subject
// to injected faults like any other code (as libc was in the paper's
// full-system runs).
const Prelude = `
void print_char(char c) {
    char b[4];
    b[0] = c;
    __write(b, 1);
}

void print_str(char *s) {
    int n = 0;
    while (s[n]) n = n + 1;
    __write(s, n);
}

void print_uint(uint v) {
    char b[12];
    int i = 11;
    if (v == 0u) { print_char('0'); return; }
    while (v != 0u) {
        i = i - 1;
        b[i] = (char)('0' + (int)(v % 10u));
        v = v / 10u;
    }
    __write(&b[i], 11 - i);
}

void print_int(int v) {
    if (v < 0) {
        print_char('-');
        print_uint((uint)0 - (uint)v);
        return;
    }
    print_uint((uint)v);
}

void print_hex(uint v) {
    char b[8];
    int i = 8;
    while (i > 0) {
        i = i - 1;
        int d = (int)(v & 15u);
        if (d < 10) b[i] = (char)('0' + d);
        else b[i] = (char)('a' + d - 10);
        v = v >> 4;
    }
    __write(b, 8);
}

void print_nl(void) {
    print_char(10);
}
`

// Compile compiles MiniC source (with the runtime prelude) to AR32 assembly
// text.
func Compile(src string) (string, error) {
	prog, err := parse(Prelude + src)
	if err != nil {
		return "", err
	}
	if err := check(prog); err != nil {
		return "", err
	}
	return generate(prog)
}

// CompileProgram compiles MiniC source all the way to a loadable binary
// image.
func CompileProgram(src string) (*asm.Program, error) {
	text, err := Compile(src)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(text)
}
