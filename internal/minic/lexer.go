// Package minic implements a small C-like language and its compiler to AR32
// assembly. The paper's workloads are MiBench C programs cross-compiled for
// ARM; MiniC plays the role of that toolchain so the fifteen workload
// analogs can be written at source level and executed by the simulated CPU.
//
// The language: types int, uint, char, pointers and arrays thereof;
// functions; globals with constant initializers; if/else, while, for,
// do-while, break, continue, return; the full C expression set over those
// types (assignment and compound assignment, ternary, logical short
// circuit, bitwise, shifts, comparisons, arithmetic, casts, ++/--, array
// indexing, address-of and dereference). Signedness follows C: an operation
// with a uint operand is unsigned. char is unsigned and promotes to int.
//
// Intrinsics lower directly to system calls: __write(p, n), __exit(code),
// __brk(addr).
package minic

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokChar
	tokPunct
	tokKeyword
)

type token struct {
	kind    tokKind
	text    string
	num     int64
	line    int
	uintLit bool // number carried a u/U suffix
}

// Error is a compile error with a source line.
type Error struct {
	Line int
	Msg  string
}

func (e Error) Error() string { return fmt.Sprintf("minic: line %d: %s", e.Line, e.Msg) }

var keywords = map[string]bool{
	"int": true, "uint": true, "char": true, "void": true,
	"if": true, "else": true, "while": true, "for": true, "do": true,
	"break": true, "continue": true, "return": true,
}

// multi-character punctuators, longest first.
var puncts = []string{
	"<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
	"+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
	"(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
}

type lexer struct {
	src  string
	pos  int
	line int
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1}
	var toks []token
	for {
		tok, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, tok)
		if tok.kind == tokEOF {
			return toks, nil
		}
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return Error{Line: l.line, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			l.pos += 2
			for l.pos+1 < len(l.src) && !(l.src[l.pos] == '*' && l.src[l.pos+1] == '/') {
				if l.src[l.pos] == '\n' {
					l.line++
				}
				l.pos++
			}
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("unterminated block comment")
			}
			l.pos += 2
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, line: l.line}, nil

scan:
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentCont(l.src[l.pos]) {
			l.pos++
		}
		text := l.src[start:l.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: l.line}, nil

	case c >= '0' && c <= '9':
		start := l.pos
		base := int64(10)
		if c == '0' && l.pos+1 < len(l.src) && (l.src[l.pos+1] == 'x' || l.src[l.pos+1] == 'X') {
			base = 16
			l.pos += 2
		}
		for l.pos < len(l.src) && isNumCont(l.src[l.pos], base) {
			l.pos++
		}
		text := l.src[start:l.pos]
		var v int64
		digits := text
		if base == 16 {
			digits = text[2:]
			if digits == "" {
				return token{}, l.errf("bad hex literal %q", text)
			}
		}
		for i := 0; i < len(digits); i++ {
			v = v*base + int64(hexVal(digits[i]))
			if v > 0xFFFF_FFFF {
				return token{}, l.errf("integer literal %q overflows 32 bits", text)
			}
		}
		uintLit := false
		if l.pos < len(l.src) && (l.src[l.pos] == 'u' || l.src[l.pos] == 'U') {
			uintLit = true
			l.pos++
		}
		return token{kind: tokNumber, text: text, num: v, line: l.line, uintLit: uintLit}, nil

	case c == '"':
		s, err := l.stringLit('"')
		if err != nil {
			return token{}, err
		}
		return token{kind: tokString, text: s, line: l.line}, nil

	case c == '\'':
		s, err := l.stringLit('\'')
		if err != nil {
			return token{}, err
		}
		if len(s) != 1 {
			return token{}, l.errf("character literal must be one byte")
		}
		return token{kind: tokChar, num: int64(s[0]), text: s, line: l.line}, nil
	}

	for _, p := range puncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.pos += len(p)
			return token{kind: tokPunct, text: p, line: l.line}, nil
		}
	}
	return token{}, l.errf("unexpected character %q", string(c))
}

func (l *lexer) stringLit(quote byte) (string, error) {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return sb.String(), nil
		case '\n':
			return "", l.errf("newline in literal")
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return "", l.errf("unterminated escape")
			}
			switch e := l.src[l.pos]; e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '0':
				sb.WriteByte(0)
			case '\\':
				sb.WriteByte('\\')
			case '\'':
				sb.WriteByte('\'')
			case '"':
				sb.WriteByte('"')
			default:
				return "", l.errf("unknown escape \\%c", e)
			}
			l.pos++
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return "", l.errf("unterminated literal")
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func isNumCont(c byte, base int64) bool {
	if c >= '0' && c <= '9' {
		return true
	}
	return base == 16 && (c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F')
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
