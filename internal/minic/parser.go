package minic

import "fmt"

type parser struct {
	toks []token
	pos  int
}

func parse(src string) (*program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &program{}
	for !p.at(tokEOF) {
		if err := p.topLevel(prog); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

func (p *parser) cur() token        { return p.toks[p.pos] }
func (p *parser) at(k tokKind) bool { return p.cur().kind == k }

func (p *parser) atPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) atKeyword(s string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == s
}

func (p *parser) advance() token {
	t := p.cur()
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return Error{Line: p.cur().line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return p.errf("expected %q, found %q", s, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if !p.at(tokIdent) {
		return "", p.errf("expected identifier, found %q", p.cur().text)
	}
	return p.advance().text, nil
}

// atType reports whether the current token starts a type.
func (p *parser) atType() bool {
	t := p.cur()
	if t.kind != tokKeyword {
		return false
	}
	switch t.text {
	case "int", "uint", "char", "void":
		return true
	}
	return false
}

// parseType parses a base type plus pointer stars.
func (p *parser) parseType() (*Type, error) {
	if !p.atType() {
		return nil, p.errf("expected type, found %q", p.cur().text)
	}
	var t *Type
	switch p.advance().text {
	case "int":
		t = typeInt
	case "uint":
		t = typeUint
	case "char":
		t = typeChar
	case "void":
		t = typeVoid
	}
	for p.atPunct("*") {
		p.advance()
		t = ptrTo(t)
	}
	return t, nil
}

// topLevel parses one global variable or function definition.
func (p *parser) topLevel(prog *program) error {
	line := p.cur().line
	typ, err := p.parseType()
	if err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.atPunct("(") {
		fn, err := p.funcRest(typ, name, line)
		if err != nil {
			return err
		}
		prog.funcs = append(prog.funcs, fn)
		return nil
	}
	g, err := p.globalRest(typ, name, line)
	if err != nil {
		return err
	}
	prog.globals = append(prog.globals, g)
	return nil
}

func (p *parser) globalRest(typ *Type, name string, line int) (*globalVar, error) {
	g := &globalVar{name: name, typ: typ, line: line}
	if p.atPunct("[") {
		p.advance()
		n := -1 // inferred from initializer
		if !p.atPunct("]") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			v, err := constEval(e)
			if err != nil {
				return nil, err
			}
			n = int(int32(v))
			if n <= 0 {
				return nil, Error{line, "array length must be positive"}
			}
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		g.typ = arrayOf(typ, n) // len fixed below if inferred
	}
	if p.atPunct("=") {
		p.advance()
		switch {
		case p.atPunct("{"):
			p.advance()
			for !p.atPunct("}") {
				e, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				g.inits = append(g.inits, e)
				if p.atPunct(",") {
					p.advance()
				} else {
					break
				}
			}
			if err := p.expectPunct("}"); err != nil {
				return nil, err
			}
		case p.at(tokString):
			g.str = p.advance().text
			g.hasStr = true
		default:
			e, err := p.assignExpr()
			if err != nil {
				return nil, err
			}
			g.init = e
		}
	}
	if g.typ.kind == tArray && g.typ.len < 0 {
		switch {
		case g.hasStr:
			g.typ = arrayOf(g.typ.elem, len(g.str)+1)
		case len(g.inits) > 0:
			g.typ = arrayOf(g.typ.elem, len(g.inits))
		default:
			return nil, Error{line, "cannot infer array length without initializer"}
		}
	}
	return g, p.expectPunct(";")
}

func (p *parser) funcRest(ret *Type, name string, line int) (*funcDecl, error) {
	fn := &funcDecl{name: name, ret: ret, line: line}
	p.advance() // "("
	if p.atKeyword("void") && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == ")" {
		p.advance()
	}
	for !p.atPunct(")") {
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		pn, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if t.kind == tVoid {
			return nil, p.errf("parameter %s has void type", pn)
		}
		fn.params = append(fn.params, param{name: pn, typ: t})
		if p.atPunct(",") {
			p.advance()
		} else {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.body = body
	return fn, nil
}

func (p *parser) block() (*block, error) {
	b := &block{stmtBase: stmtBase{p.cur().line}}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.atPunct("}") {
		if p.at(tokEOF) {
			return nil, p.errf("unexpected end of file in block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.stmts = append(b.stmts, s)
	}
	p.advance()
	return b, nil
}

func (p *parser) stmt() (stmt, error) {
	line := p.cur().line
	switch {
	case p.atPunct("{"):
		return p.block()

	case p.atType():
		return p.declStmt()

	case p.atKeyword("if"):
		p.advance()
		cond, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s := &ifStmt{stmtBase{line}, cond, then, nil}
		if p.atKeyword("else") {
			p.advance()
			if s.els, err = p.stmt(); err != nil {
				return nil, err
			}
		}
		return s, nil

	case p.atKeyword("while"):
		p.advance()
		cond, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &whileStmt{stmtBase{line}, cond, body}, nil

	case p.atKeyword("do"):
		p.advance()
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		if !p.atKeyword("while") {
			return nil, p.errf("expected while after do body")
		}
		p.advance()
		cond, err := p.parenExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		return &doWhileStmt{stmtBase{line}, body, cond}, nil

	case p.atKeyword("for"):
		p.advance()
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		s := &forStmt{stmtBase: stmtBase{line}}
		if !p.atPunct(";") {
			if p.atType() {
				d, err := p.declStmt()
				if err != nil {
					return nil, err
				}
				s.init = d
			} else {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				s.init = &exprStmt{stmtBase{line}, e}
				if err := p.expectPunct(";"); err != nil {
					return nil, err
				}
			}
		} else {
			p.advance()
		}
		if !p.atPunct(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.cond = e
		}
		if err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		if !p.atPunct(")") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.post = e
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s.body = body
		return s, nil

	case p.atKeyword("return"):
		p.advance()
		s := &returnStmt{stmtBase: stmtBase{line}}
		if !p.atPunct(";") {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.x = e
		}
		return s, p.expectPunct(";")

	case p.atKeyword("break"):
		p.advance()
		return &breakStmt{stmtBase{line}}, p.expectPunct(";")

	case p.atKeyword("continue"):
		p.advance()
		return &continueStmt{stmtBase{line}}, p.expectPunct(";")

	case p.atPunct(";"):
		p.advance()
		return &block{stmtBase: stmtBase{line}}, nil

	default:
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &exprStmt{stmtBase{line}, e}, p.expectPunct(";")
	}
}

// declStmt parses "type name [N];" or "type name = expr;", consuming the
// trailing semicolon.
func (p *parser) declStmt() (stmt, error) {
	line := p.cur().line
	typ, err := p.parseType()
	if err != nil {
		return nil, err
	}
	if typ.kind == tVoid {
		return nil, p.errf("variable of void type")
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &declStmt{stmtBase: stmtBase{line}, name: name, typ: typ}
	if p.atPunct("[") {
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		v, err := constEval(e)
		if err != nil {
			return nil, err
		}
		n := int(int32(v))
		if n <= 0 {
			return nil, Error{line, "array length must be positive"}
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		d.typ = arrayOf(typ, n)
	}
	if p.atPunct("=") {
		if d.typ.kind == tArray {
			return nil, p.errf("local array initializers are not supported")
		}
		p.advance()
		e, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		d.init = e
	}
	return d, p.expectPunct(";")
}

func (p *parser) parenExpr() (expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return e, p.expectPunct(")")
}

// --- Expressions (precedence climbing) ---

func (p *parser) expr() (expr, error) { return p.assignExpr() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"&=": true, "|=": true, "^=": true, "<<=": true, ">>=": true,
}

func (p *parser) assignExpr() (expr, error) {
	l, err := p.ternaryExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct && assignOps[t.text] {
		p.advance()
		r, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &assign{exprBase{line: t.line}, t.text, l, r}, nil
	}
	return l, nil
}

func (p *parser) ternaryExpr() (expr, error) {
	cond, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.atPunct("?") {
		return cond, nil
	}
	line := p.advance().line
	a, err := p.expr()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	b, err := p.ternaryExpr()
	if err != nil {
		return nil, err
	}
	return &ternary{exprBase{line: line}, cond, a, b}, nil
}

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"|": 3, "^": 4, "&": 5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binaryExpr(minPrec int) (expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.text]
		if t.kind != tokPunct || !ok || prec < minPrec {
			return l, nil
		}
		p.advance()
		r, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		l = &binary{exprBase{line: t.line}, t.text, l, r}
	}
}

func (p *parser) unaryExpr() (expr, error) {
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "-", "!", "~", "*", "&", "++", "--":
			p.advance()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			return &unary{exprBase{line: t.line}, t.text, x, false}, nil
		case "+":
			p.advance()
			return p.unaryExpr()
		case "(":
			// Cast if a type follows.
			if p.toks[p.pos+1].kind == tokKeyword && keywordIsType(p.toks[p.pos+1].text) {
				p.advance()
				to, err := p.parseType()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				x, err := p.unaryExpr()
				if err != nil {
					return nil, err
				}
				return &cast{exprBase{line: t.line}, to, x}, nil
			}
		}
	}
	return p.postfixExpr()
}

func keywordIsType(s string) bool {
	switch s {
	case "int", "uint", "char", "void":
		return true
	}
	return false
}

func (p *parser) postfixExpr() (expr, error) {
	e, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch {
		case p.atPunct("["):
			p.advance()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = &index{exprBase{line: t.line}, e, idx}
		case p.atPunct("++"), p.atPunct("--"):
			p.advance()
			e = &unary{exprBase{line: t.line}, t.text, e, true}
		default:
			return e, nil
		}
	}
}

func (p *parser) primaryExpr() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.advance()
		return &numLit{exprBase{line: t.line}, uint32(t.num), t.uintLit}, nil
	case tokChar:
		p.advance()
		return &numLit{exprBase{line: t.line}, uint32(t.num), false}, nil
	case tokString:
		p.advance()
		return &strLit{exprBase{line: t.line}, t.text, ""}, nil
	case tokIdent:
		p.advance()
		if p.atPunct("(") {
			p.advance()
			c := &call{exprBase{line: t.line}, t.text, nil, nil}
			for !p.atPunct(")") {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				c.args = append(c.args, a)
				if p.atPunct(",") {
					p.advance()
				} else {
					break
				}
			}
			return c, p.expectPunct(")")
		}
		return &varRef{exprBase: exprBase{line: t.line}, name: t.text}, nil
	case tokPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			return e, p.expectPunct(")")
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}

// constEval folds a constant integer expression (used for array lengths and
// global initializers).
func constEval(e expr) (uint32, error) {
	switch n := e.(type) {
	case *numLit:
		return n.val, nil
	case *unary:
		if n.postfix {
			break
		}
		v, err := constEval(n.x)
		if err != nil {
			return 0, err
		}
		switch n.op {
		case "-":
			return -v, nil
		case "~":
			return ^v, nil
		case "!":
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *binary:
		l, err := constEval(n.l)
		if err != nil {
			return 0, err
		}
		r, err := constEval(n.r)
		if err != nil {
			return 0, err
		}
		switch n.op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, Error{n.line, "division by zero in constant"}
			}
			return uint32(int32(l) / int32(r)), nil
		case "%":
			if r == 0 {
				return 0, Error{n.line, "division by zero in constant"}
			}
			return uint32(int32(l) % int32(r)), nil
		case "<<":
			return l << (r & 31), nil
		case ">>":
			return uint32(int32(l) >> (r & 31)), nil
		case "&":
			return l & r, nil
		case "|":
			return l | r, nil
		case "^":
			return l ^ r, nil
		}
	case *cast:
		v, err := constEval(n.x)
		if err != nil {
			return 0, err
		}
		if n.to.kind == tChar {
			v &= 0xFF
		}
		return v, nil
	}
	return 0, Error{e.exprLine(), "expression is not constant"}
}
