package minic

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"

	"mbusim/internal/cpu"
	"mbusim/internal/sim"
)

// TestDifferentialExpressions generates random expression trees over int
// and uint variables, evaluates them natively with matching semantics, and
// checks that the compiled program computes the same values on the
// simulated CPU. This is the compiler's strongest correctness check: any
// divergence in codegen, ISA execution semantics, or the pipeline shows up
// as a mismatch.
func TestDifferentialExpressions(t *testing.T) {
	rounds := 30
	if testing.Short() {
		rounds = 6
	}
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewPCG(uint64(round), 0xABCD))
		g := &exprGen{rng: rng}
		var (
			decls strings.Builder
			body  strings.Builder
			want  []uint32
		)
		env := map[string]uint32{}
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("v%d", i)
			val := rng.Uint32()
			env[name] = val
			// Mix signed and unsigned declarations.
			if i%2 == 0 {
				fmt.Fprintf(&decls, "    int %s = (int)0x%Xu;\n", name, val)
				g.intVars = append(g.intVars, name)
			} else {
				fmt.Fprintf(&decls, "    uint %s = 0x%Xu;\n", name, val)
				g.uintVars = append(g.uintVars, name)
			}
		}
		for i := 0; i < 8; i++ {
			e, v := g.gen(env, 4, i%2 == 0)
			fmt.Fprintf(&body, "    print_hex((uint)(%s)); print_nl();\n", e)
			want = append(want, v)
		}
		src := "int main(void) {\n" + decls.String() + body.String() + "    return 0;\n}\n"

		prog, err := CompileProgram(src)
		if err != nil {
			t.Fatalf("round %d: compile: %v\nsource:\n%s", round, err, src)
		}
		m := sim.New(sim.DefaultConfig())
		if err := m.Load(prog); err != nil {
			t.Fatal(err)
		}
		out := m.Run(20_000_000, 0, nil)
		if out.Stop != cpu.StopExit || out.TimedOut {
			t.Fatalf("round %d: stop=%v timeout=%v\nsource:\n%s", round, out.Stop, out.TimedOut, src)
		}
		var wantOut strings.Builder
		for _, v := range want {
			fmt.Fprintf(&wantOut, "%08x\n", v)
		}
		if got := string(out.Stdout); got != wantOut.String() {
			t.Fatalf("round %d: output mismatch\n got: %q\nwant: %q\nsource:\n%s", round, got, wantOut.String(), src)
		}
	}
}

// exprGen builds a random expression string together with its expected
// value under MiniC semantics.
type exprGen struct {
	rng      *rand.Rand
	intVars  []string
	uintVars []string
}

// gen returns an expression of the requested signedness and its value.
// asInt selects int-typed expressions (arithmetic ops use signed division
// etc.); otherwise the expression is uint-typed.
func (g *exprGen) gen(env map[string]uint32, depth int, asInt bool) (string, uint32) {
	if depth == 0 || g.rng.IntN(4) == 0 {
		return g.leaf(env, asInt)
	}
	switch g.rng.IntN(9) {
	case 0: // addition
		l, lv := g.gen(env, depth-1, asInt)
		r, rv := g.gen(env, depth-1, asInt)
		return "(" + l + " + " + r + ")", lv + rv
	case 1:
		l, lv := g.gen(env, depth-1, asInt)
		r, rv := g.gen(env, depth-1, asInt)
		return "(" + l + " - " + r + ")", lv - rv
	case 2:
		l, lv := g.gen(env, depth-1, asInt)
		r, rv := g.gen(env, depth-1, asInt)
		return "(" + l + " * " + r + ")", lv * rv
	case 3: // division with a guaranteed nonzero constant divisor
		l, lv := g.gen(env, depth-1, asInt)
		d := g.rng.Uint32()%1000 + 1
		if asInt {
			return fmt.Sprintf("(%s / %d)", l, d), uint32(int32(lv) / int32(d))
		}
		return fmt.Sprintf("(%s / %du)", l, d), lv / d
	case 4:
		l, lv := g.gen(env, depth-1, asInt)
		d := g.rng.Uint32()%1000 + 1
		if asInt {
			return fmt.Sprintf("(%s %% %d)", l, d), uint32(int32(lv) % int32(d))
		}
		return fmt.Sprintf("(%s %% %du)", l, d), lv % d
	case 5: // bitwise
		ops := []string{"&", "|", "^"}
		op := ops[g.rng.IntN(3)]
		l, lv := g.gen(env, depth-1, asInt)
		r, rv := g.gen(env, depth-1, asInt)
		var v uint32
		switch op {
		case "&":
			v = lv & rv
		case "|":
			v = lv | rv
		case "^":
			v = lv ^ rv
		}
		return "(" + l + " " + op + " " + r + ")", v
	case 6: // shifts with constant amounts
		l, lv := g.gen(env, depth-1, asInt)
		s := g.rng.Uint32() % 31
		if g.rng.IntN(2) == 0 {
			return fmt.Sprintf("(%s << %d)", l, s), lv << s
		}
		if asInt {
			return fmt.Sprintf("(%s >> %d)", l, s), uint32(int32(lv) >> s)
		}
		return fmt.Sprintf("(%s >> %d)", l, s), lv >> s
	case 7: // comparison folded back to the arithmetic type
		l, lv := g.gen(env, depth-1, asInt)
		r, rv := g.gen(env, depth-1, asInt)
		var b bool
		if asInt {
			b = int32(lv) < int32(rv)
		} else {
			b = lv < rv
		}
		v := uint32(0)
		if b {
			v = 1
		}
		cast := "(int)"
		if !asInt {
			cast = "(uint)"
		}
		return fmt.Sprintf("(%s(%s < %s))", cast, l, r), v
	default: // ternary
		c, cv := g.gen(env, depth-1, true)
		l, lv := g.gen(env, depth-1, asInt)
		r, rv := g.gen(env, depth-1, asInt)
		v := rv
		if cv != 0 {
			v = lv
		}
		return fmt.Sprintf("((%s) ? (%s) : (%s))", c, l, r), v
	}
}

func (g *exprGen) leaf(env map[string]uint32, asInt bool) (string, uint32) {
	if asInt {
		if g.rng.IntN(2) == 0 && len(g.intVars) > 0 {
			n := g.intVars[g.rng.IntN(len(g.intVars))]
			return n, env[n]
		}
		v := g.rng.Uint32() % 100000
		return fmt.Sprintf("%d", v), v
	}
	if g.rng.IntN(2) == 0 && len(g.uintVars) > 0 {
		n := g.uintVars[g.rng.IntN(len(g.uintVars))]
		return n, env[n]
	}
	v := g.rng.Uint32()
	return fmt.Sprintf("0x%Xu", v), v
}
