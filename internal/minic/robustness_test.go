package minic

import (
	"math/rand/v2"
	"strings"
	"testing"

	"mbusim/internal/asm"
)

// TestCompilerNeverPanics feeds the compiler mangled variants of valid
// programs: truncations, random token substitutions and byte noise. The
// compiler must return an error or succeed — never panic.
func TestCompilerNeverPanics(t *testing.T) {
	base := `
int table[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int helper(int *p, int n) {
    int total = 0;
    for (int i = 0; i < n; i++) total += p[i];
    return total;
}
int main(void) {
    int x = helper(table, 8);
    while (x > 0) { x = x - (x % 7) - 1; }
    print_int(x);
    return 0;
}
`
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("compiler panicked: %v", r)
		}
	}()

	// Truncations at every rune boundary.
	for i := 0; i < len(base); i += 3 {
		Compile(base[:i])
	}

	// Random token-level mutations.
	tokens := []string{"int", "uint", "char", "void", "{", "}", "(", ")",
		"[", "]", ";", ",", "+", "-", "*", "/", "%", "=", "==", "<", ">",
		"if", "else", "while", "for", "return", "break", "continue",
		"x", "main", "0", "42", "0xFF", `"s"`, "'c'", "?", ":", "&", "|"}
	rng := rand.New(rand.NewPCG(1, 2))
	for round := 0; round < 300; round++ {
		var sb strings.Builder
		n := 5 + rng.IntN(60)
		for i := 0; i < n; i++ {
			sb.WriteString(tokens[rng.IntN(len(tokens))])
			sb.WriteByte(' ')
		}
		Compile(sb.String())
	}

	// Byte noise spliced into the valid program.
	for round := 0; round < 200; round++ {
		b := []byte(base)
		for k := 0; k < 5; k++ {
			b[rng.IntN(len(b))] = byte(rng.IntN(128))
		}
		Compile(string(b))
	}
}

// TestAssemblerNeverPanics does the same for the assembler layer.
func TestAssemblerNeverPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("assembler panicked: %v", r)
		}
	}()
	text, err := Compile("int main(void) { print_int(1); return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	lines := strings.Split(text, "\n")
	for round := 0; round < 300; round++ {
		mangled := make([]string, len(lines))
		copy(mangled, lines)
		for k := 0; k < 4; k++ {
			i := rng.IntN(len(mangled))
			line := mangled[i]
			if line == "" {
				continue
			}
			switch rng.IntN(3) {
			case 0:
				mangled[i] = line[:rng.IntN(len(line))]
			case 1:
				b := []byte(line)
				b[rng.IntN(len(b))] = byte('!' + rng.IntN(90))
				mangled[i] = string(b)
			case 2:
				mangled[i] = mangled[rng.IntN(len(mangled))]
			}
		}
		// Errors are expected constantly; panics never.
		_, _ = asm.Assemble(strings.Join(mangled, "\n"))
	}
}
