package minic

import "fmt"

// checker resolves names and computes types for every expression.
type checker struct {
	prog    *program
	funcs   map[string]*funcDecl
	globals map[string]*globalVar

	fn     *funcDecl
	scopes []map[string]*localVar
	loops  int
}

// intrinsics maps intrinsic names to their signatures. The pointer argument
// of __write accepts any pointer type.
var intrinsics = map[string]struct {
	args int
	ret  *Type
}{
	"__write": {2, typeVoid},
	"__exit":  {1, typeVoid},
	"__brk":   {1, typeUint},
}

func check(prog *program) error {
	c := &checker{
		prog:    prog,
		funcs:   make(map[string]*funcDecl),
		globals: make(map[string]*globalVar),
	}
	for _, fn := range prog.funcs {
		if _, dup := c.funcs[fn.name]; dup {
			return Error{fn.line, "duplicate function " + fn.name}
		}
		if _, isIntr := intrinsics[fn.name]; isIntr {
			return Error{fn.line, fn.name + " is a builtin"}
		}
		c.funcs[fn.name] = fn
	}
	for _, g := range prog.globals {
		if _, dup := c.globals[g.name]; dup {
			return Error{g.line, "duplicate global " + g.name}
		}
		if _, dup := c.funcs[g.name]; dup {
			return Error{g.line, g.name + " is already a function"}
		}
		c.globals[g.name] = g
		if err := c.checkGlobal(g); err != nil {
			return err
		}
	}
	if _, ok := c.funcs["main"]; !ok {
		return Error{1, "no main function"}
	}
	for _, fn := range prog.funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkGlobal(g *globalVar) error {
	switch {
	case g.init != nil:
		if g.typ.kind == tArray {
			return Error{g.line, "array global needs a {...} or string initializer"}
		}
		if _, err := constEval(g.init); err != nil {
			return err
		}
	case len(g.inits) > 0:
		if g.typ.kind != tArray {
			return Error{g.line, "{...} initializer on non-array global"}
		}
		if len(g.inits) > g.typ.len {
			return Error{g.line, "too many initializers"}
		}
		for _, e := range g.inits {
			if _, err := constEval(e); err != nil {
				return err
			}
		}
	case g.hasStr:
		if g.typ.kind != tArray || g.typ.elem.kind != tChar {
			return Error{g.line, "string initializer on non-char-array global"}
		}
		if len(g.str)+1 > g.typ.len {
			return Error{g.line, "string initializer too long"}
		}
	}
	return nil
}

func (c *checker) checkFunc(fn *funcDecl) error {
	c.fn = fn
	c.scopes = []map[string]*localVar{make(map[string]*localVar)}
	c.loops = 0
	for _, p := range fn.params {
		v := &localVar{name: p.name, typ: p.typ}
		if _, dup := c.scopes[0][p.name]; dup {
			return Error{fn.line, "duplicate parameter " + p.name}
		}
		c.scopes[0][p.name] = v
		fn.locals = append(fn.locals, v)
	}
	if len(fn.params) > 8 {
		return Error{fn.line, "more than 8 parameters"}
	}
	return c.stmt(fn.body)
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*localVar)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookup(name string) *localVar {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if v, ok := c.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

func errf(line int, format string, args ...any) error {
	return Error{line, fmt.Sprintf(format, args...)}
}

func (c *checker) stmt(s stmt) error {
	switch n := s.(type) {
	case *block:
		c.pushScope()
		defer c.popScope()
		for _, sub := range n.stmts {
			if err := c.stmt(sub); err != nil {
				return err
			}
		}
		return nil

	case *declStmt:
		scope := c.scopes[len(c.scopes)-1]
		if _, dup := scope[n.name]; dup {
			return errf(n.line, "duplicate variable %s", n.name)
		}
		v := &localVar{name: n.name, typ: n.typ}
		scope[n.name] = v
		n.v = v
		c.fn.locals = append(c.fn.locals, v)
		if n.init != nil {
			if err := c.expr(n.init); err != nil {
				return err
			}
			decay(n.init)
			if err := c.assignable(n.typ, n.init, n.line); err != nil {
				return err
			}
		}
		return nil

	case *exprStmt:
		return c.expr(n.x)

	case *ifStmt:
		if err := c.condExpr(n.cond); err != nil {
			return err
		}
		if err := c.stmt(n.then); err != nil {
			return err
		}
		if n.els != nil {
			return c.stmt(n.els)
		}
		return nil

	case *whileStmt:
		if err := c.condExpr(n.cond); err != nil {
			return err
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.stmt(n.body)

	case *doWhileStmt:
		c.loops++
		err := c.stmt(n.body)
		c.loops--
		if err != nil {
			return err
		}
		return c.condExpr(n.cond)

	case *forStmt:
		c.pushScope()
		defer c.popScope()
		if n.init != nil {
			if err := c.stmt(n.init); err != nil {
				return err
			}
		}
		if n.cond != nil {
			if err := c.condExpr(n.cond); err != nil {
				return err
			}
		}
		if n.post != nil {
			if err := c.expr(n.post); err != nil {
				return err
			}
		}
		c.loops++
		defer func() { c.loops-- }()
		return c.stmt(n.body)

	case *returnStmt:
		if n.x == nil {
			if c.fn.ret.kind != tVoid {
				return errf(n.line, "missing return value in %s", c.fn.name)
			}
			return nil
		}
		if c.fn.ret.kind == tVoid {
			return errf(n.line, "return with value in void function %s", c.fn.name)
		}
		if err := c.expr(n.x); err != nil {
			return err
		}
		decay(n.x)
		return c.assignable(c.fn.ret, n.x, n.line)

	case *breakStmt:
		if c.loops == 0 {
			return errf(n.line, "break outside loop")
		}
		return nil

	case *continueStmt:
		if c.loops == 0 {
			return errf(n.line, "continue outside loop")
		}
		return nil
	}
	return fmt.Errorf("minic: unknown statement %T", s)
}

// condExpr checks an expression used as a condition (must be scalar).
func (c *checker) condExpr(e expr) error {
	if err := c.expr(e); err != nil {
		return err
	}
	if !e.typeOf().isScalar() {
		return errf(e.exprLine(), "condition is not scalar")
	}
	return nil
}

// assignable validates that e can be assigned to a variable of type t.
func (c *checker) assignable(t *Type, e expr, line int) error {
	et := e.typeOf()
	switch {
	case t.isInteger() && et.isInteger():
		return nil
	case t.kind == tPtr && et.kind == tPtr && sameType(t.elem, et.elem):
		return nil
	case t.kind == tPtr && et.isInteger():
		// Allow p = 0 and integer/pointer conversions (used for address
		// arithmetic in the workloads).
		return nil
	case t.isInteger() && et.kind == tPtr:
		return nil
	}
	return errf(line, "cannot assign %s to %s", et, t)
}

// decay converts array-typed expressions to pointers in rvalue position.
func decay(e expr) {
	if t := e.typeOf(); t != nil && t.kind == tArray {
		setType(e, ptrTo(t.elem))
	}
}

func setType(e expr, t *Type) {
	switch n := e.(type) {
	case *numLit:
		n.typ = t
	case *strLit:
		n.typ = t
	case *varRef:
		n.typ = t
	case *unary:
		n.typ = t
	case *binary:
		n.typ = t
	case *assign:
		n.typ = t
	case *ternary:
		n.typ = t
	case *index:
		n.typ = t
	case *call:
		n.typ = t
	case *cast:
		n.typ = t
	}
}

// isLvalue reports whether e designates a storage location.
func isLvalue(e expr) bool {
	switch n := e.(type) {
	case *varRef:
		return n.typeOf().kind != tArray
	case *unary:
		return n.op == "*" && !n.postfix
	case *index:
		return n.typeOf().kind != tArray
	}
	return false
}

func (c *checker) expr(e expr) error {
	switch n := e.(type) {
	case *numLit:
		if n.uintLit || n.val > 0x7FFF_FFFF {
			n.typ = typeUint
		} else {
			n.typ = typeInt
		}
		return nil

	case *strLit:
		n.typ = ptrTo(typeChar)
		return nil

	case *varRef:
		if v := c.lookup(n.name); v != nil {
			n.local = v
			n.typ = v.typ
			return nil
		}
		if g, ok := c.globals[n.name]; ok {
			n.global = g
			n.typ = g.typ
			return nil
		}
		return errf(n.line, "undefined variable %s", n.name)

	case *unary:
		if err := c.expr(n.x); err != nil {
			return err
		}
		xt := n.x.typeOf()
		switch n.op {
		case "-", "~":
			decay(n.x)
			if !xt.isInteger() {
				return errf(n.line, "unary %s on %s", n.op, xt)
			}
			n.typ = promote(xt)
		case "!":
			decay(n.x)
			if !n.x.typeOf().isScalar() {
				return errf(n.line, "! on %s", xt)
			}
			n.typ = typeInt
		case "*":
			decay(n.x)
			pt := n.x.typeOf()
			if pt.kind != tPtr {
				return errf(n.line, "dereference of non-pointer %s", pt)
			}
			if pt.elem.kind == tVoid {
				return errf(n.line, "dereference of void pointer")
			}
			n.typ = pt.elem
		case "&":
			if !isLvalue(n.x) && n.x.typeOf().kind != tArray {
				return errf(n.line, "cannot take address of this expression")
			}
			if xt.kind == tArray {
				n.typ = ptrTo(xt.elem)
			} else {
				n.typ = ptrTo(xt)
			}
		case "++", "--":
			if !isLvalue(n.x) {
				return errf(n.line, "%s on non-lvalue", n.op)
			}
			if !xt.isScalar() {
				return errf(n.line, "%s on %s", n.op, xt)
			}
			n.typ = xt
		default:
			return errf(n.line, "unknown unary %s", n.op)
		}
		return nil

	case *binary:
		if err := c.expr(n.l); err != nil {
			return err
		}
		if err := c.expr(n.r); err != nil {
			return err
		}
		decay(n.l)
		decay(n.r)
		lt, rt := n.l.typeOf(), n.r.typeOf()
		switch n.op {
		case "+", "-":
			switch {
			case lt.kind == tPtr && rt.isInteger():
				n.typ = lt
			case rt.kind == tPtr && lt.isInteger() && n.op == "+":
				n.typ = rt
			case lt.kind == tPtr && rt.kind == tPtr && n.op == "-":
				return errf(n.line, "pointer difference is not supported")
			case lt.isInteger() && rt.isInteger():
				n.typ = arith(lt, rt)
			default:
				return errf(n.line, "%s between %s and %s", n.op, lt, rt)
			}
		case "*", "/", "%", "&", "|", "^":
			if !lt.isInteger() || !rt.isInteger() {
				return errf(n.line, "%s between %s and %s", n.op, lt, rt)
			}
			n.typ = arith(lt, rt)
		case "<<", ">>":
			if !lt.isInteger() || !rt.isInteger() {
				return errf(n.line, "%s between %s and %s", n.op, lt, rt)
			}
			n.typ = promote(lt)
		case "==", "!=", "<", "<=", ">", ">=":
			ok := lt.isInteger() && rt.isInteger() ||
				lt.kind == tPtr && rt.kind == tPtr ||
				lt.kind == tPtr && rt.isInteger() ||
				rt.kind == tPtr && lt.isInteger()
			if !ok {
				return errf(n.line, "%s between %s and %s", n.op, lt, rt)
			}
			n.typ = typeInt
		case "&&", "||":
			if !lt.isScalar() || !rt.isScalar() {
				return errf(n.line, "%s between %s and %s", n.op, lt, rt)
			}
			n.typ = typeInt
		default:
			return errf(n.line, "unknown operator %s", n.op)
		}
		return nil

	case *assign:
		if err := c.expr(n.l); err != nil {
			return err
		}
		if err := c.expr(n.r); err != nil {
			return err
		}
		if !isLvalue(n.l) {
			return errf(n.line, "assignment to non-lvalue")
		}
		decay(n.r)
		lt := n.l.typeOf()
		if n.op != "=" {
			rt := n.r.typeOf()
			isArith := lt.isInteger() && rt.isInteger()
			isPtrStep := lt.kind == tPtr && rt.isInteger() &&
				(n.op == "+=" || n.op == "-=")
			if !isArith && !isPtrStep {
				return errf(n.line, "%s between %s and %s", n.op, lt, rt)
			}
		} else if err := c.assignable(lt, n.r, n.line); err != nil {
			return err
		}
		n.typ = lt
		return nil

	case *ternary:
		if err := c.condExpr(n.cond); err != nil {
			return err
		}
		if err := c.expr(n.a); err != nil {
			return err
		}
		if err := c.expr(n.b); err != nil {
			return err
		}
		decay(n.a)
		decay(n.b)
		at, bt := n.a.typeOf(), n.b.typeOf()
		switch {
		case at.kind == tPtr:
			n.typ = at
		case bt.kind == tPtr:
			n.typ = bt
		case at.isInteger() && bt.isInteger():
			n.typ = arith(at, bt)
		default:
			return errf(n.line, "incompatible ternary branches %s and %s", at, bt)
		}
		return nil

	case *index:
		if err := c.expr(n.base); err != nil {
			return err
		}
		if err := c.expr(n.idx); err != nil {
			return err
		}
		decay(n.base)
		bt := n.base.typeOf()
		if bt.kind != tPtr {
			return errf(n.line, "indexing non-pointer %s", bt)
		}
		if !n.idx.typeOf().isInteger() {
			return errf(n.line, "non-integer index")
		}
		n.typ = bt.elem
		return nil

	case *call:
		for _, a := range n.args {
			if err := c.expr(a); err != nil {
				return err
			}
			decay(a)
		}
		if intr, ok := intrinsics[n.name]; ok {
			if len(n.args) != intr.args {
				return errf(n.line, "%s takes %d arguments", n.name, intr.args)
			}
			n.typ = intr.ret
			return nil
		}
		fn, ok := c.funcs[n.name]
		if !ok {
			return errf(n.line, "undefined function %s", n.name)
		}
		if len(n.args) != len(fn.params) {
			return errf(n.line, "%s takes %d arguments, got %d", n.name, len(fn.params), len(n.args))
		}
		for i, a := range n.args {
			if err := c.assignable(fn.params[i].typ, a, n.line); err != nil {
				return err
			}
		}
		n.fn = fn
		n.typ = fn.ret
		if len(n.args) > c.fn.maxArgs {
			c.fn.maxArgs = len(n.args)
		}
		return nil

	case *cast:
		if err := c.expr(n.x); err != nil {
			return err
		}
		decay(n.x)
		if !n.x.typeOf().isScalar() || !n.to.isScalar() {
			return errf(n.line, "cast from %s to %s", n.x.typeOf(), n.to)
		}
		n.typ = n.to
		return nil
	}
	return fmt.Errorf("minic: unknown expression %T", e)
}

// promote applies the integer promotion (char widens to int).
func promote(t *Type) *Type {
	if t.kind == tChar {
		return typeInt
	}
	return t
}

// arith applies the usual arithmetic conversions: uint wins, char promotes.
func arith(l, r *Type) *Type {
	if l.kind == tUint || r.kind == tUint {
		return typeUint
	}
	return typeInt
}
