package minic

import "testing"

// Additional semantic corner cases beyond the basic feature tests.

func TestPointerCompoundAssign(t *testing.T) {
	wantOutput(t, `
int a[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int main(void) {
    int *p = a;
    p += 3;
    print_int(*p); print_char(',');   // 4
    p -= 2;
    print_int(*p); print_char(',');   // 2
    *p += 100;
    print_int(a[1]);                  // 102
    print_nl();
    return 0;
}`, "4,2,102\n")
}

func TestCharArithmeticPromotion(t *testing.T) {
	wantOutput(t, `
int main(void) {
    char a = (char)200;
    char b = (char)100;
    int sum = a + b;          // chars are unsigned: 300
    print_int(sum); print_char(',');
    char c = (char)(a + b);   // truncates to 44
    print_int((int)c); print_char(',');
    print_int((int)(char)-1); // 255
    print_nl();
    return 0;
}`, "300,44,255\n")
}

func TestNestedCallsAndSpills(t *testing.T) {
	// Deep call expressions with live temporaries across the calls.
	wantOutput(t, `
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int main(void) {
    int r = add(mul(2, 3), add(mul(4, 5), add(mul(6, 7), add(1, 1))));
    print_int(r);   // 6 + 20 + 42 + 2 = 70
    print_nl();
    return 0;
}`, "70\n")
}

func TestGlobalCharArrayIndexing(t *testing.T) {
	wantOutput(t, `
char hex[] = "0123456789abcdef";
int main(void) {
    for (int i = 15; i >= 0; i -= 5) print_char(hex[i]);
    print_nl();
    return 0;
}`, "fa50\n")
}

func TestWhileWithSideEffectCondition(t *testing.T) {
	wantOutput(t, `
int n = 0;
int next(void) { n++; return n; }
int main(void) {
    int total = 0;
    while (next() < 5) total += n;
    print_int(total);   // 1+2+3+4 = 10
    print_char(',');
    print_int(n);       // 5
    print_nl();
    return 0;
}`, "10,5\n")
}

func TestDoWhileRunsOnce(t *testing.T) {
	wantOutput(t, `
int main(void) {
    int n = 100;
    int runs = 0;
    do { runs++; } while (n < 10);
    print_int(runs);
    print_nl();
    return 0;
}`, "1\n")
}

func TestShadowingInBlocks(t *testing.T) {
	wantOutput(t, `
int x = 1;
int main(void) {
    int r = x;          // global 1
    int x = 2;
    r = r * 10 + x;     // 12
    {
        int x = 3;
        r = r * 10 + x; // 123
    }
    r = r * 10 + x;     // 1232
    print_int(r);
    print_nl();
    return 0;
}`, "1232\n")
}

func TestUnsignedWraparound(t *testing.T) {
	wantOutput(t, `
int main(void) {
    uint u = 0xFFFFFFFFu;
    u = u + 2u;
    print_uint(u); print_char(',');        // 1
    int i = -2147483647 - 1;               // INT_MIN
    print_int(i); print_char(',');
    print_int(i / -1);                     // ARM semantics: wraps to INT_MIN
    print_nl();
    return 0;
}`, "1,-2147483648,-2147483648\n")
}

func TestDivModByZeroARMSemantics(t *testing.T) {
	// No trap: x/0 == 0, x%0 == x (matching the modeled SDIV/SREM).
	wantOutput(t, `
int zero = 0;
int main(void) {
    int x = 42;
    print_int(x / zero); print_char(',');
    print_int(x % zero); print_char(',');
    uint u = 7u;
    print_uint(u / (uint)zero); print_char(',');
    print_uint(u % (uint)zero);
    print_nl();
    return 0;
}`, "0,42,0,7\n")
}

func TestAddressOfLocalAcrossCalls(t *testing.T) {
	wantOutput(t, `
void bump(int *p) { *p = *p + 1; }
int main(void) {
    int x = 41;
    bump(&x);
    print_int(x);
    print_nl();
    return 0;
}`, "42\n")
}

func TestStringDeduplication(t *testing.T) {
	// The same literal twice must still behave correctly (single label).
	wantOutput(t, `
int main(void) {
    print_str("dup");
    print_str("dup");
    print_nl();
    return 0;
}`, "dupdup\n")
}

func TestTernaryNested(t *testing.T) {
	wantOutput(t, `
int classify(int v) {
    return v < 0 ? -1 : v == 0 ? 0 : 1;
}
int main(void) {
    print_int(classify(-5));
    print_int(classify(0));
    print_int(classify(9));
    print_nl();
    return 0;
}`, "-101\n")
}

func TestRecursionDepth(t *testing.T) {
	// Exercise deep stacks (512 frames within the 512 KB stack).
	wantOutput(t, `
int depth(int n) {
    if (n == 0) return 0;
    return 1 + depth(n - 1);
}
int main(void) {
    print_int(depth(512));
    print_nl();
    return 0;
}`, "512\n")
}

func TestLogicalOperatorsAsValues(t *testing.T) {
	wantOutput(t, `
int main(void) {
    int a = 5;
    int b = 0;
    print_int(a && b); print_int(a || b);
    print_int(!a); print_int(!b);
    print_int((a > 1) && (b == 0));
    print_nl();
    return 0;
}`, "01011\n")
}

func TestBreakContinueNested(t *testing.T) {
	wantOutput(t, `
int main(void) {
    int total = 0;
    for (int i = 0; i < 5; i++) {
        for (int j = 0; j < 5; j++) {
            if (j == 3) break;
            if (j == 1) continue;
            total += i * 10 + j;
        }
    }
    // j takes 0 and 2: sum over i of (10i+0 + 10i+2) = 20i+2 -> 0..4: 200+10
    print_int(total);
    print_nl();
    return 0;
}`, "210\n")
}
