package vm

import (
	"testing"

	"mbusim/internal/cache"
	"mbusim/internal/mem"
	"mbusim/internal/tlb"
)

// buildTables writes a two-level page table into RAM mapping vpn -> pfn and
// returns the root physical address.
func buildTables(ram *mem.RAM, root uint32, mappings map[uint32]uint32) {
	nextTable := root + 1024 // place level-2 tables after the root
	l2base := map[uint32]uint32{}
	for vpn, pfn := range mappings {
		idx1 := vpn >> 7 & (L1Entries - 1)
		idx2 := vpn & (L2Entries - 1)
		base, ok := l2base[idx1]
		if !ok {
			base = nextTable
			nextTable += 1024
			l2base[idx1] = base
			ram.WriteWord(root+idx1*4, PackPTE(base>>tlb.PageShift, true, false))
		}
		ram.WriteWord(base+idx2*4, PackPTE(pfn, true, true))
	}
}

func newWalkerEnv() (*Walker, *mem.RAM, *cache.Cache) {
	ram := mem.NewRAM(1 << 20)
	l2 := cache.New(cache.Config{Name: "L2", Size: 8192, Ways: 4, LineSize: 64, Latency: 8, PABits: 20}, ram)
	w := NewWalker(l2, 0x8000, 1024)
	return w, ram, l2
}

func TestWalkSuccess(t *testing.T) {
	w, ram, _ := newWalkerEnv()
	buildTables(ram, 0x8000, map[uint32]uint32{5: 77, 0x3FFF: 99})
	tr, lat, fault := w.Walk(5)
	if fault != WalkOK || tr.PFN != 77 || !tr.Writable || !tr.User {
		t.Fatalf("walk: %+v fault=%v", tr, fault)
	}
	if lat <= 0 {
		t.Fatal("walk must cost cycles")
	}
	tr, _, fault = w.Walk(0x3FFF)
	if fault != WalkOK || tr.PFN != 99 {
		t.Fatalf("walk high vpn: %+v fault=%v", tr, fault)
	}
}

func TestWalkUnmapped(t *testing.T) {
	w, ram, _ := newWalkerEnv()
	buildTables(ram, 0x8000, map[uint32]uint32{5: 77})
	if _, _, fault := w.Walk(6); fault != WalkUnmapped {
		t.Fatalf("fault = %v, want unmapped (missing level-2 entry)", fault)
	}
	if _, _, fault := w.Walk(0x2000); fault != WalkUnmapped {
		t.Fatalf("fault = %v, want unmapped (missing level-1 entry)", fault)
	}
}

func TestWalkBadFrame(t *testing.T) {
	w, ram, _ := newWalkerEnv()
	buildTables(ram, 0x8000, map[uint32]uint32{5: 77})
	// Corrupt the level-2 PTE so its frame leaves the 1024-frame map.
	idx1 := uint32(5) >> 7 & (L1Entries - 1)
	l1e := ram.ReadWord(0x8000 + idx1*4)
	l2pa := (l1e & PTEFrameMask) << tlb.PageShift
	ram.WriteWord(l2pa+5*4, PackPTE(2000, true, true))
	if _, _, fault := w.Walk(5); fault != WalkBadFrame {
		t.Fatalf("fault = %v, want bad frame", fault)
	}
}

func TestRefillInsertsIntoTLB(t *testing.T) {
	w, ram, _ := newWalkerEnv()
	buildTables(ram, 0x8000, map[uint32]uint32{9: 33})
	tl := tlb.New("D", 8)
	if _, _, fault := w.Refill(tl, 9); fault != WalkOK {
		t.Fatalf("refill fault %v", fault)
	}
	tr, ok := tl.Lookup(9)
	if !ok || tr.PFN != 33 {
		t.Fatal("refill did not install the translation")
	}
	// A failing walk must not install anything.
	w.Refill(tl, 10)
	if _, ok := tl.Lookup(10); ok {
		t.Fatal("failed walk installed an entry")
	}
}

func TestWalkerReadsThroughCache(t *testing.T) {
	w, ram, l2 := newWalkerEnv()
	buildTables(ram, 0x8000, map[uint32]uint32{5: 77})
	w.Walk(5)
	// Corrupt the PTE in RAM only: the cached copy must win, proving the
	// walker reads page tables through L2 (the paper's kernel-panic route
	// goes through cache faults for exactly this reason).
	idx1 := uint32(5) >> 7 & (L1Entries - 1)
	l1e := ram.ReadWord(0x8000 + idx1*4)
	l2pa := (l1e & PTEFrameMask) << tlb.PageShift
	ram.WriteWord(l2pa+5*4, PackPTE(123, true, true))
	tr, _, fault := w.Walk(5)
	if fault != WalkOK || tr.PFN != 77 {
		t.Fatalf("walker bypassed the cache: %+v", tr)
	}
	_ = l2
}

func TestPackPTE(t *testing.T) {
	e := PackPTE(0x3FF, true, false)
	if e&PTEValid == 0 || e&PTEWritable == 0 || e&PTEUser != 0 {
		t.Fatalf("flags wrong: %#x", e)
	}
	if e&PTEFrameMask != 0x3FF {
		t.Fatalf("frame wrong: %#x", e)
	}
}
