// Package vm implements the virtual-memory system: the two-level page-table
// format kept in simulated RAM and the hardware page-table walker that
// refills the TLBs through the L2 cache.
//
// The virtual address space is 16 MB (VA[23:0]); pages are 1 KB. A virtual
// page number therefore has 14 bits, split 7/7 across the two levels:
//
//	level-1 table: 128 entries, indexed by VA[23:17], each pointing to a
//	               level-2 table frame
//	level-2 table: 128 entries, indexed by VA[16:10], each mapping one page
//
// Page-table entries are 32-bit words:
//
//	bit  31:    valid
//	bit  30:    writable
//	bit  29:    user accessible
//	bits 13..0: physical frame number (one bit wider than RAM, so cache
//	            faults in page-table lines can corrupt a PTE out of the
//	            system map)
//
// Because the walker reads PTEs through the L2 cache, faults injected into
// L2 lines that hold page tables corrupt translations; a PTE whose frame
// number points outside physical memory is detected by the walker and
// reported as a kernel panic, one of the paper's crash routes.
package vm

import (
	"mbusim/internal/tlb"
)

// PTE field layout.
const (
	PTEValid     uint32 = 1 << 31
	PTEWritable  uint32 = 1 << 30
	PTEUser      uint32 = 1 << 29
	PTEFrameMask uint32 = 0x3FFF

	// L1Entries and L2Entries are the table sizes.
	L1Entries = 128
	L2Entries = 128
	// TableBytes is the byte size of one table (both levels).
	TableBytes = L1Entries * 4

	// VASize is the size of the virtual address space.
	VASize = 1 << 24
)

// PackPTE builds a page-table entry.
func PackPTE(pfn uint32, writable, user bool) uint32 {
	e := PTEValid | pfn&PTEFrameMask
	if writable {
		e |= PTEWritable
	}
	if user {
		e |= PTEUser
	}
	return e
}

// WalkFault describes why a page walk failed.
type WalkFault int

const (
	WalkOK       WalkFault = iota
	WalkUnmapped           // no valid PTE: a page fault (segfault for user code)
	WalkBadFrame           // valid PTE with a frame outside RAM: kernel panic
)

// WordReader is the memory port the walker reads page tables through:
// normally the L2 cache (so cached page-table lines are injectable state),
// or physical memory directly in the ablation configuration.
type WordReader interface {
	ReadWord(pa uint32) (uint32, int)
}

// Walker is the hardware page-table walker. It reads page tables through
// its memory port and validates frame numbers against the size of RAM.
type Walker struct {
	l2        WordReader
	root      uint32 // physical address of the level-1 table
	numFrames uint32

	Walks uint64
}

// NewWalker builds a walker. root is the physical address of the level-1
// table; numFrames bounds valid physical frame numbers.
func NewWalker(port WordReader, root, numFrames uint32) *Walker {
	return &Walker{l2: port, root: root, numFrames: numFrames}
}

// SetRoot points the walker at a (new) level-1 table.
func (w *Walker) SetRoot(root uint32) { w.root = root }

// Walk translates vpn by walking the page tables. On success it returns the
// mapped translation and the walk latency in cycles. The caller decides what
// a fault means (the CPU raises a page fault; the kernel panics on
// WalkBadFrame).
func (w *Walker) Walk(vpn uint32) (tr tlb.Translation, lat int, fault WalkFault) {
	w.Walks++
	idx1 := vpn >> 7 & (L1Entries - 1)
	idx2 := vpn & (L2Entries - 1)

	l1e, lat1 := w.l2.ReadWord(w.root + idx1*4)
	lat += lat1
	if l1e&PTEValid == 0 {
		return tr, lat, WalkUnmapped
	}
	l2frame := l1e & PTEFrameMask
	if l2frame >= w.numFrames {
		return tr, lat, WalkBadFrame
	}
	l2e, lat2 := w.l2.ReadWord(l2frame<<tlb.PageShift + idx2*4)
	lat += lat2
	if l2e&PTEValid == 0 {
		return tr, lat, WalkUnmapped
	}
	pfn := l2e & PTEFrameMask
	if pfn >= w.numFrames {
		return tr, lat, WalkBadFrame
	}
	return tlb.Translation{
		PFN:      pfn,
		Writable: l2e&PTEWritable != 0,
		User:     l2e&PTEUser != 0,
	}, lat, WalkOK
}

// WalkerSnapshot is a copy of a walker's mutable state (the table root and
// the walk counter; the memory port and frame bound are wiring, not state).
type WalkerSnapshot struct {
	root  uint32
	walks uint64
}

// Snapshot captures the walker state.
func (w *Walker) Snapshot() *WalkerSnapshot {
	return &WalkerSnapshot{root: w.root, walks: w.Walks}
}

// Restore overwrites the walker state with the snapshot's.
func (w *Walker) Restore(s *WalkerSnapshot) {
	w.root = s.root
	w.Walks = s.walks
}

// EqualsSnapshot reports whether the walker state bit-equals the snapshot
// (convergence-exit support).
func (w *Walker) EqualsSnapshot(s *WalkerSnapshot) bool {
	return w.root == s.root && w.Walks == s.walks
}

// RestoreDirty is the walker's delta restore. Its mutable state is two
// scalar words, so tracking which changed would cost more than restoring
// both unconditionally — the walk counter changes on every TLB miss anyway.
func (w *Walker) RestoreDirty(s *WalkerSnapshot) { w.Restore(s) }

// Refill walks vpn and, on success, installs the translation into t.
func (w *Walker) Refill(t *tlb.TLB, vpn uint32) (tr tlb.Translation, lat int, fault WalkFault) {
	tr, lat, fault = w.Walk(vpn)
	if fault == WalkOK {
		t.Insert(vpn, tr.PFN, tr.Writable, tr.User)
	}
	return tr, lat, fault
}
