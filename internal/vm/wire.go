package vm

import "mbusim/internal/wire"

// EncodeWire appends the snapshot's complete state to w in the artifact
// wire format (field order versioned by sim.SnapshotFormat).
func (s *WalkerSnapshot) EncodeWire(w *wire.Writer) {
	w.U32(s.root)
	w.U64(s.walks)
}

// DecodeSnapshotWire reads a snapshot encoded by EncodeWire.
func DecodeSnapshotWire(r *wire.Reader) (*WalkerSnapshot, error) {
	s := &WalkerSnapshot{root: r.U32(), walks: r.U64()}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
