package workloads

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"mbusim/internal/asm"
	"mbusim/internal/sim"
	"mbusim/internal/wire"
)

// Checkpoint artifacts: the expensive part of bringing up a workload is not
// compiling it (milliseconds) but deriving its golden reference — a full
// fault-free run of up to 500M simulated cycles — and replaying it again to
// record the checkpoint set. In a distributed campaign every worker used to
// pay that tax per process. An Artifact captures the derived state (golden
// run + checkpoint snapshots) in a versioned binary encoding, keyed by a
// content address over everything the state is a pure function of: the
// wire-format version, the workload name, the compiled image, and the
// checkpoint count. Any party holding the same source and configuration
// computes the same key, so a worker can ask the coordinator for "the
// artifact I would have derived" and install it instead — and a key
// mismatch (different simulator build, source, or K) degrades safely to
// local derivation rather than ever installing the wrong state.

// ArtifactFormat versions the artifact container layout (magic, header,
// payload field order, hash trailer). The snapshot payload is versioned
// separately by sim.SnapshotFormat; both are folded into the key.
const ArtifactFormat = 1

// artifactMagic opens every encoded artifact.
var artifactMagic = [4]byte{'M', 'B', 'U', 'A'}

// Artifact is a workload's derived state in portable form.
type Artifact struct {
	Workload  string
	ImageHash [32]byte // HashImage of the compiled program
	K         int      // CheckpointCount the set was built with
	Golden    Golden
	Cycles    []uint64        // checkpoint cycles, ascending, Cycles[0] == 0
	Snaps     []*sim.Snapshot // checkpoint snapshots, parallel to Cycles
}

// HashImage returns a deterministic digest of a compiled program's
// execution-relevant content: text, data, load addresses and entry point.
// Symbols are omitted — they carry no execution semantics.
func HashImage(p *asm.Program) [32]byte {
	h := sha256.New()
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], p.TextBase)
	binary.LittleEndian.PutUint32(hdr[4:], p.DataBase)
	binary.LittleEndian.PutUint32(hdr[8:], p.Entry)
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(p.Text)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(p.Data)))
	h.Write(hdr[:])
	h.Write(p.Text)
	h.Write(p.Data)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// artifactKey computes the content address for a (name, image, K) triple.
func artifactKey(name string, imageHash [32]byte, k int) string {
	h := sha256.New()
	var ver [16]byte
	binary.LittleEndian.PutUint64(ver[0:], ArtifactFormat)
	binary.LittleEndian.PutUint64(ver[8:], sim.SnapshotFormat)
	h.Write(ver[:])
	h.Write([]byte(name))
	h.Write(imageHash[:])
	var kb [8]byte
	binary.LittleEndian.PutUint64(kb[:], uint64(k))
	h.Write(kb[:])
	return hex.EncodeToString(h.Sum(nil))
}

// Key returns the artifact's content address.
func (a *Artifact) Key() string {
	return artifactKey(a.Workload, a.ImageHash, a.K)
}

// ArtifactKey returns the content address of the artifact this process
// would derive for the workload under its current configuration: its
// compiled image, the current CheckpointCount, and this build's snapshot
// format. It compiles the workload (cheap) but derives nothing.
func (w *Workload) ArtifactKey() (string, error) {
	prog, err := w.Program()
	if err != nil {
		return "", err
	}
	k := CheckpointCount
	if k < 1 {
		k = 1
	}
	return artifactKey(w.Name, HashImage(prog), k), nil
}

// ExportArtifact packages the workload's derived state, deriving it first
// if this process has not already (one golden run + one checkpoint replay).
func ExportArtifact(w *Workload) (*Artifact, error) {
	prog, err := w.Program()
	if err != nil {
		return nil, err
	}
	g, err := w.Reference()
	if err != nil {
		return nil, err
	}
	cycles, snaps, err := w.GoldenCheckpoints()
	if err != nil {
		return nil, err
	}
	k := CheckpointCount
	if k < 1 {
		k = 1
	}
	return &Artifact{
		Workload:  w.Name,
		ImageHash: HashImage(prog),
		K:         k,
		Golden:    *g,
		Cycles:    cycles,
		Snaps:     snaps,
	}, nil
}

// Encode serializes the artifact: magic, format version, payload, then a
// sha256 trailer over everything before it. The trailer is what cached and
// fetched copies are verified against, so corruption anywhere in the bytes
// is caught before any field is trusted.
func (a *Artifact) Encode() []byte {
	var w wire.Writer
	w.String(a.Workload)
	w.Blob(a.ImageHash[:])
	w.Int(a.K)
	w.U64(a.Golden.Cycles)
	w.U64(a.Golden.Committed)
	w.Blob(a.Golden.Stdout)
	w.U32(a.Golden.ExitCode)
	w.Int(len(a.Cycles))
	for _, c := range a.Cycles {
		w.U64(c)
	}
	for _, s := range a.Snaps {
		s.EncodeWire(&w)
	}
	payload := w.Bytes()

	out := make([]byte, 0, len(artifactMagic)+8+len(payload)+sha256.Size)
	out = append(out, artifactMagic[:]...)
	out = binary.LittleEndian.AppendUint64(out, ArtifactFormat)
	out = append(out, payload...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// maxArtifactCheckpoints bounds the checkpoint count a decoded artifact may
// claim, far above any sane configuration.
const maxArtifactCheckpoints = 1 << 12

// DecodeArtifact parses and verifies an encoded artifact. It rejects bad
// magic, an unknown format version, a content hash that does not match the
// bytes, and any structural inconsistency — a caller that gets a non-nil
// Artifact back holds exactly what Encode was given.
func DecodeArtifact(data []byte) (*Artifact, error) {
	headerLen := len(artifactMagic) + 8
	if len(data) < headerLen+sha256.Size {
		return nil, fmt.Errorf("workloads: artifact truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:4], artifactMagic[:]) {
		return nil, fmt.Errorf("workloads: bad artifact magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint64(data[4:12]); v != ArtifactFormat {
		return nil, fmt.Errorf("workloads: unsupported artifact format %d (want %d)", v, ArtifactFormat)
	}
	body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], trailer) {
		return nil, fmt.Errorf("workloads: artifact content hash mismatch")
	}

	r := wire.NewReader(body[headerLen:])
	a := &Artifact{Workload: r.String()}
	ih := r.Blob()
	a.K = r.Int()
	a.Golden.Cycles = r.U64()
	a.Golden.Committed = r.U64()
	a.Golden.Stdout = r.Blob()
	a.Golden.ExitCode = r.U32()
	n := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("workloads: artifact header: %w", err)
	}
	if len(ih) != len(a.ImageHash) {
		return nil, fmt.Errorf("workloads: artifact image hash is %d bytes", len(ih))
	}
	copy(a.ImageHash[:], ih)
	if n < 1 || n > maxArtifactCheckpoints {
		return nil, fmt.Errorf("workloads: artifact checkpoint count %d out of range", n)
	}
	a.Cycles = make([]uint64, n)
	for i := range a.Cycles {
		a.Cycles[i] = r.U64()
	}
	a.Snaps = make([]*sim.Snapshot, n)
	for i := range a.Snaps {
		s, err := sim.DecodeSnapshotWire(r)
		if err != nil {
			return nil, fmt.Errorf("workloads: artifact checkpoint %d: %w", i, err)
		}
		a.Snaps[i] = s
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("workloads: artifact payload: %w", err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("workloads: %d trailing bytes after artifact payload", r.Len())
	}
	if err := a.validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// validate checks the artifact's internal consistency.
func (a *Artifact) validate() error {
	if a.Workload == "" {
		return fmt.Errorf("workloads: artifact has no workload name")
	}
	if len(a.Cycles) == 0 || len(a.Cycles) != len(a.Snaps) {
		return fmt.Errorf("workloads: artifact has %d cycles for %d snapshots",
			len(a.Cycles), len(a.Snaps))
	}
	if a.Cycles[0] != 0 {
		return fmt.Errorf("workloads: artifact first checkpoint at cycle %d, want 0", a.Cycles[0])
	}
	for i := 1; i < len(a.Cycles); i++ {
		if a.Cycles[i] <= a.Cycles[i-1] {
			return fmt.Errorf("workloads: artifact checkpoint cycles not ascending at %d", i)
		}
	}
	if last := a.Cycles[len(a.Cycles)-1]; last >= a.Golden.Cycles {
		return fmt.Errorf("workloads: artifact checkpoint at cycle %d beyond golden run (%d cycles)",
			last, a.Golden.Cycles)
	}
	return nil
}

// InstallArtifact seeds the workload's derived state from a verified
// artifact, so later Reference/GoldenCheckpoints/MachineAt calls find it
// already built and no golden run happens in this process. It compiles the
// workload locally (cheap) and refuses the artifact unless the image hash,
// checkpoint count, and machine configuration all match what this process
// would have derived itself — on any mismatch the workload is left
// untouched and the caller falls back to local derivation. Installing into
// a workload whose state was already derived (or installed) is an error if
// the golden runs disagree and a no-op otherwise.
func InstallArtifact(w *Workload, a *Artifact) error {
	if a.Workload != w.Name {
		return fmt.Errorf("workloads: artifact is for %q, not %q", a.Workload, w.Name)
	}
	prog, err := w.Program()
	if err != nil {
		return err
	}
	if HashImage(prog) != a.ImageHash {
		return fmt.Errorf("workloads: artifact image hash does not match compiled %s", w.Name)
	}
	k := CheckpointCount
	if k < 1 {
		k = 1
	}
	if a.K != k {
		return fmt.Errorf("workloads: artifact built with %d checkpoints, this process wants %d", a.K, k)
	}
	// The snapshots carry no predecoded text (it is derived from the
	// image); bind the locally compiled program into each before they are
	// ever restored. A freshly exported in-process artifact shares live
	// snapshots that are already bound — binding again is a harmless
	// re-check. Reject snapshots taken under a different machine
	// configuration: Restorer rebuilds machines from snap.Cfg, so a wrong
	// config would silently change the simulated hardware.
	m, err := w.NewMachine()
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig()
	for i, s := range a.Snaps {
		if s.Cfg != cfg {
			return fmt.Errorf("workloads: artifact checkpoint %d has a different machine configuration", i)
		}
		if err := s.BindProgram(m); err != nil {
			return fmt.Errorf("workloads: artifact checkpoint %d: %w", i, err)
		}
	}

	installedGolden := false
	w.goldenOnce.Do(func() {
		g := a.Golden
		w.golden = &g
		installedGolden = true
	})
	if !installedGolden {
		if w.goldenErr != nil {
			return fmt.Errorf("workloads: %s golden already failed: %w", w.Name, w.goldenErr)
		}
		if w.golden.Cycles != a.Golden.Cycles || w.golden.ExitCode != a.Golden.ExitCode ||
			!bytes.Equal(w.golden.Stdout, a.Golden.Stdout) {
			return fmt.Errorf("workloads: artifact golden disagrees with the one already derived for %s", w.Name)
		}
	}
	w.ckptOnce.Do(func() {
		w.ckpts = make([]checkpoint, len(a.Snaps))
		for i := range a.Snaps {
			w.ckpts[i] = checkpoint{cycle: a.Cycles[i], snap: a.Snaps[i]}
		}
		w.ckptCycles = a.Cycles
		w.ckptSnaps = a.Snaps
	})
	return nil
}
