package workloads

// Telecom and security workloads: CRC32, SHA, ADPCM decode, GSM decode,
// Rijndael (AES) decrypt — analogs of the MiBench telecomm/security suites.

func init() {
	register("CRC32", lcgHelpers+crcSource)
	register("sha", lcgHelpers+shaSource)
	register("adpcm_dec", lcgHelpers+adpcmSource)
	register("gsm_dec", lcgHelpers+gsmSource)
	register("rijndael_dec", lcgHelpers+rijndaelSource)
}

// CRC32 over a pseudo-random buffer, table-driven like the MiBench version.
const crcSource = `
uint crc_table[256];
char buf[24576];

void make_table(void) {
    for (int i = 0; i < 256; i++) {
        uint c = (uint)i;
        for (int k = 0; k < 8; k++) {
            if (c & 1u) c = 0xEDB88320u ^ (c >> 1);
            else c = c >> 1;
        }
        crc_table[i] = c;
    }
}

int main(void) {
    make_table();
    rng_seed(777u);
    int n = 24576;
    for (int i = 0; i < n; i++) buf[i] = (char)rng_next();
    uint crc = 0xFFFFFFFFu;
    for (int i = 0; i < n; i++) {
        uint idx = (crc ^ (uint)buf[i]) & 0xFFu;
        crc = crc_table[(int)idx] ^ (crc >> 8);
    }
    crc = crc ^ 0xFFFFFFFFu;
    print_str("crc32=");
    print_hex(crc);
    print_nl();
    return 0;
}
`

// SHA-1 over a pseudo-random message, matching the MiBench sha kernel.
const shaSource = `
uint h0; uint h1; uint h2; uint h3; uint h4;
char msg[512];
uint w[80];

uint rol(uint x, int n) {
    return (x << n) | (x >> (32 - n));
}

void sha_block(char *p) {
    for (int t = 0; t < 16; t++) {
        w[t] = ((uint)p[t*4] << 24) | ((uint)p[t*4+1] << 16)
             | ((uint)p[t*4+2] << 8) | (uint)p[t*4+3];
    }
    for (int t = 16; t < 80; t++) {
        w[t] = rol(w[t-3] ^ w[t-8] ^ w[t-14] ^ w[t-16], 1);
    }
    uint a = h0; uint b = h1; uint c = h2; uint d = h3; uint e = h4;
    for (int t = 0; t < 80; t++) {
        uint f; uint k;
        if (t < 20)      { f = (b & c) | ((~b) & d);           k = 0x5A827999u; }
        else if (t < 40) { f = b ^ c ^ d;                      k = 0x6ED9EBA1u; }
        else if (t < 60) { f = (b & c) | (b & d) | (c & d);    k = 0x8F1BBCDCu; }
        else             { f = b ^ c ^ d;                      k = 0xCA62C1D6u; }
        uint tmp = rol(a, 5) + f + e + k + w[t];
        e = d; d = c; c = rol(b, 30); b = a; a = tmp;
    }
    h0 += a; h1 += b; h2 += c; h3 += d; h4 += e;
}

int main(void) {
    rng_seed(4242u);
    int n = 512;
    for (int i = 0; i < n; i++) msg[i] = (char)rng_next();
    h0 = 0x67452301u; h1 = 0xEFCDAB89u; h2 = 0x98BADCFEu;
    h3 = 0x10325476u; h4 = 0xC3D2E1F0u;
    // Whole blocks only: the message length is a multiple of 64, and the
    // final padding block is fixed.
    for (int off = 0; off < n; off += 64) sha_block(&msg[off]);
    print_str("sha1=");
    print_hex(h0); print_hex(h1); print_hex(h2); print_hex(h3); print_hex(h4);
    print_nl();
    return 0;
}
`

// IMA ADPCM decoder over a synthetic nibble stream (MiBench adpcm decode).
const adpcmSource = `
int step_table[89] = {
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17,
    19, 21, 23, 25, 28, 31, 34, 37, 41, 45,
    50, 55, 60, 66, 73, 80, 88, 97, 107, 118,
    130, 143, 157, 173, 190, 209, 230, 253, 279, 307,
    337, 371, 408, 449, 494, 544, 598, 658, 724, 796,
    876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358,
    5894, 6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};
int index_table[16] = {-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8};
char in[3072];

int main(void) {
    rng_seed(99u);
    int n = 3072;
    for (int i = 0; i < n; i++) in[i] = (char)rng_next();
    int pred = 0;
    int index = 0;
    for (int i = 0; i < n; i++) {
        int byte = (int)in[i];
        for (int half = 0; half < 2; half++) {
            int delta;
            if (half == 0) delta = byte & 15;
            else delta = (byte >> 4) & 15;
            int step = step_table[index];
            int diff = step >> 3;
            if (delta & 1) diff += step >> 2;
            if (delta & 2) diff += step >> 1;
            if (delta & 4) diff += step;
            if (delta & 8) pred -= diff;
            else pred += diff;
            if (pred > 32767) pred = 32767;
            if (pred < -32768) pred = -32768;
            index += index_table[delta];
            if (index < 0) index = 0;
            if (index > 88) index = 88;
            dig_add((uint)pred);
        }
    }
    print_str("adpcm ");
    dig_print();
    return 0;
}
`

// GSM-style decoder: LAR parameters expand to reflection coefficients that
// drive an 8th-order lattice synthesis filter over 160-sample frames
// (the structure of GSM 06.10 short-term synthesis).
const gsmSource = `
int v[9];

int main(void) {
    rng_seed(515u);
    for (int i = 0; i < 9; i++) v[i] = 0;
    int frames = 2;
    int rc[8];
    for (int f = 0; f < frames; f++) {
        // Decode LARs to reflection coefficients in Q14.
        for (int j = 0; j < 8; j++) {
            int lar = (int)(rng_next() & 0x3Fu) - 32;   // [-32, 31]
            int tmp = lar * 400;                        // |rc| < 12800 < 2^14
            rc[j] = tmp;
        }
        // Short-term synthesis over the frame.
        for (int k = 0; k < 160; k++) {
            int sri = (int)(rng_next() & 0x1FFFu) - 4096; // excitation
            for (int j = 7; j >= 0; j--) {
                int t = (rc[j] * v[j]) >> 14;
                sri -= t;
                t = (rc[j] * sri) >> 14;
                v[j+1] = v[j] + t;
            }
            v[0] = sri;
            if (sri > 32767) sri = 32767;
            if (sri < -32768) sri = -32768;
            dig_add((uint)sri);
        }
    }
    print_str("gsm ");
    dig_print();
    return 0;
}
`

// AES-128 decryption in ECB mode (MiBench rijndael decode). Tables are
// computed at startup from the S-box, like the reference implementation's
// key schedule work.
const rijndaelSource = `
char sbox[256];
char inv_sbox[256];
char state[16];
char round_keys[176];
char data[80];

int xtime(int a) {
    a = a << 1;
    if (a & 0x100) a = (a ^ 0x1B) & 0xFF;
    return a;
}

int gmul(int a, int b) {
    // xtime is inlined here: gmul runs in the inner loop of InvMixColumns
    // and a nested call per bit would dominate the whole benchmark.
    int p = 0;
    while (b != 0) {
        if (b & 1) p = p ^ a;
        a = a << 1;
        if (a & 0x100) a = (a ^ 0x1B) & 0xFF;
        b = b >> 1;
    }
    return p & 0xFF;
}

void build_sbox(void) {
    // Build the AES S-box by walking powers of the generator 3 (p) and its
    // inverse (q), the standard table-free construction.
    int p = 1;
    int q = 1;
    do {
        p = p ^ (p << 1);
        if (p & 0x100) p = (p ^ 0x1B) & 0xFF;
        q = q ^ (q << 1);
        q = q ^ (q << 2);
        q = q ^ (q << 4);
        q = q & 0xFF;
        if (q & 0x80) q = q ^ 0x09;
        int r = q;
        int s = q;
        for (int i = 0; i < 4; i++) {
            r = ((r << 1) | (r >> 7)) & 0xFF;
            s = s ^ r;
        }
        sbox[p] = (char)(s ^ 0x63);
    } while (p != 1);
    sbox[0] = (char)0x63;
    for (int x = 0; x < 256; x++) inv_sbox[(int)sbox[x]] = (char)x;
}

void expand_key(char *key) {
    for (int i = 0; i < 16; i++) round_keys[i] = key[i];
    int rcon = 1;
    for (int i = 16; i < 176; i += 4) {
        int t0 = (int)round_keys[i-4];
        int t1 = (int)round_keys[i-3];
        int t2 = (int)round_keys[i-2];
        int t3 = (int)round_keys[i-1];
        if (i % 16 == 0) {
            int tmp = t0;
            t0 = (int)sbox[t1] ^ rcon;
            t1 = (int)sbox[t2];
            t2 = (int)sbox[t3];
            t3 = (int)sbox[tmp];
            rcon = xtime(rcon);
        }
        round_keys[i]   = (char)((int)round_keys[i-16] ^ t0);
        round_keys[i+1] = (char)((int)round_keys[i-15] ^ t1);
        round_keys[i+2] = (char)((int)round_keys[i-14] ^ t2);
        round_keys[i+3] = (char)((int)round_keys[i-13] ^ t3);
    }
}

void add_round_key(int round) {
    for (int i = 0; i < 16; i++) {
        state[i] = (char)((int)state[i] ^ (int)round_keys[round*16 + i]);
    }
}

void inv_shift_rows(void) {
    char t;
    t = state[13]; state[13] = state[9]; state[9] = state[5]; state[5] = state[1]; state[1] = t;
    t = state[2]; state[2] = state[10]; state[10] = t;
    t = state[6]; state[6] = state[14]; state[14] = t;
    t = state[3]; state[3] = state[7]; state[7] = state[11]; state[11] = state[15]; state[15] = t;
}

void inv_sub_bytes(void) {
    for (int i = 0; i < 16; i++) state[i] = inv_sbox[(int)state[i]];
}

void inv_mix_columns(void) {
    for (int c = 0; c < 4; c++) {
        int a0 = (int)state[c*4];
        int a1 = (int)state[c*4+1];
        int a2 = (int)state[c*4+2];
        int a3 = (int)state[c*4+3];
        state[c*4]   = (char)(gmul(a0,14) ^ gmul(a1,11) ^ gmul(a2,13) ^ gmul(a3,9));
        state[c*4+1] = (char)(gmul(a0,9) ^ gmul(a1,14) ^ gmul(a2,11) ^ gmul(a3,13));
        state[c*4+2] = (char)(gmul(a0,13) ^ gmul(a1,9) ^ gmul(a2,14) ^ gmul(a3,11));
        state[c*4+3] = (char)(gmul(a0,11) ^ gmul(a1,13) ^ gmul(a2,9) ^ gmul(a3,14));
    }
}

void decrypt_block(char *block) {
    for (int i = 0; i < 16; i++) state[i] = block[i];
    add_round_key(10);
    for (int round = 9; round >= 1; round--) {
        inv_shift_rows();
        inv_sub_bytes();
        add_round_key(round);
        inv_mix_columns();
    }
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(0);
    for (int i = 0; i < 16; i++) block[i] = state[i];
}

char key[16];

int main(void) {
    build_sbox();
    rng_seed(2025u);
    for (int i = 0; i < 16; i++) key[i] = (char)rng_next();
    expand_key(key);
    int n = 80;
    for (int i = 0; i < n; i++) data[i] = (char)rng_next();
    for (int off = 0; off < n; off += 16) decrypt_block(&data[off]);
    for (int i = 0; i < n; i += 4) {
        dig_add(((uint)data[i] << 24) | ((uint)data[i+1] << 16)
              | ((uint)data[i+2] << 8) | (uint)data[i+3]);
    }
    print_str("rijndael ");
    dig_print();
    return 0;
}
`
