package workloads

import (
	"fmt"

	"mbusim/internal/liveness"
)

// Profile runs the workload's fault-free reference once under the liveness
// profiler and returns the resulting occupancy/ACE profile, stamped with
// the workload name and image hash so artifacts are self-identifying. The
// golden run is derived first (or installed from a cached artifact), which
// pins the expected cycle count: the profiled run must reproduce it
// exactly, otherwise the probes themselves would have perturbed execution
// and the profile would describe a machine that never runs in a campaign.
func (w *Workload) Profile(windows int) (*liveness.Profile, error) {
	golden, err := w.Reference()
	if err != nil {
		return nil, err
	}
	prog, err := w.Program()
	if err != nil {
		return nil, err
	}
	m, err := w.NewMachine()
	if err != nil {
		return nil, err
	}
	prof := liveness.NewProfiler(m, golden.Cycles, windows)
	out := m.RunObserved(golden.Cycles+1, 0, nil, prof.OnCycle)
	if out.Stop.String() != "exit" || out.ExitCode != golden.ExitCode || out.Cycles != golden.Cycles {
		return nil, fmt.Errorf("workloads: profiled run of %s diverged from golden: stop=%v exit=%d cycles=%d (want exit=%d cycles=%d)",
			w.Name, out.Stop, out.ExitCode, out.Cycles, golden.ExitCode, golden.Cycles)
	}
	p := prof.Finish(out.Cycles)
	p.Workload = w.Name
	p.ImageHash = HashImage(prog)
	return p, nil
}
