package workloads

import (
	"fmt"
	"sort"

	"mbusim/internal/sim"
)

// Golden checkpoints: every fault-injection run replays the deterministic
// fault-free prefix of its workload up to the injection cycle, so on
// average half of each run is redundant work. A checkpoint set records K
// evenly spaced machine snapshots during a single instrumented golden run;
// MachineAt then fast-forwards a fresh machine to the nearest checkpoint
// at or before the injection cycle, cutting the average replayed prefix
// from G/2 to G/(2K) cycles. Because snapshots capture the complete
// machine state, the fast-forwarded run is bit-identical to a from-scratch
// run (enforced by TestCheckpointEquivalence in internal/core).

// CheckpointCount is K, the number of evenly spaced golden checkpoints
// recorded per workload (including one at cycle 0). It is read when a
// workload's checkpoint set is first built — once per workload per
// process — so set it before any campaign runs. Values below 1 behave
// like 1.
var CheckpointCount = 8

// checkpoint is one golden snapshot and the cycle it was taken at.
type checkpoint struct {
	cycle uint64
	snap  *sim.Snapshot
}

// buildCheckpoints records the checkpoint set during one golden run.
func (w *Workload) buildCheckpoints() {
	w.ckptOnce.Do(func() {
		g, err := w.Reference()
		if err != nil {
			w.ckptErr = err
			return
		}
		m, err := w.NewMachine()
		if err != nil {
			w.ckptErr = err
			return
		}
		k := CheckpointCount
		if k < 1 {
			k = 1
		}
		for i := 0; i < k; i++ {
			target := g.Cycles * uint64(i) / uint64(k)
			if target > m.Core.Cycles() {
				out := m.Run(target, 0, nil)
				if !out.TimedOut {
					// The golden run completes at g.Cycles and every target
					// is below that, so stopping early means the golden
					// reference and this replay diverged.
					w.ckptErr = fmt.Errorf("workloads: %s: checkpoint replay stopped at cycle %d (%v) before target %d",
						w.Name, out.Cycles, out.Stop, target)
					return
				}
			}
			if n := len(w.ckpts); n > 0 && w.ckpts[n-1].cycle == m.Core.Cycles() {
				continue // tiny workload: targets collapsed onto one cycle
			}
			w.ckpts = append(w.ckpts, checkpoint{cycle: m.Core.Cycles(), snap: m.Snapshot()})
		}
		for _, c := range w.ckpts {
			w.ckptCycles = append(w.ckptCycles, c.cycle)
			w.ckptSnaps = append(w.ckptSnaps, c.snap)
		}
	})
}

// GoldenCheckpoints returns the cycles and snapshots of the workload's
// golden checkpoint set in ascending cycle order, building the set on
// first use. The returned slices are shared and must not be modified; the
// snapshots are immutable. The campaign's convergence exit compares a
// faulty machine against snaps[i] when its run crosses cycles[i].
func (w *Workload) GoldenCheckpoints() (cycles []uint64, snaps []*sim.Snapshot, err error) {
	w.buildCheckpoints()
	if w.ckptErr != nil {
		return nil, nil, w.ckptErr
	}
	return w.ckptCycles, w.ckptSnaps, nil
}

// CheckpointCycles returns the cycles of the workload's golden checkpoint
// set, building it on first use (diagnostics and tests).
func (w *Workload) CheckpointCycles() ([]uint64, error) {
	w.buildCheckpoints()
	if w.ckptErr != nil {
		return nil, w.ckptErr
	}
	cycles := make([]uint64, len(w.ckpts))
	for i, c := range w.ckpts {
		cycles[i] = c.cycle
	}
	return cycles, nil
}

// Checkpoint identifies one golden checkpoint: its index within the
// workload's checkpoint set and the cycle its snapshot was taken at.
// Index 0 is always the cycle-0 checkpoint, so a restore from it skips
// nothing — campaign telemetry counts those as checkpoint misses.
type Checkpoint struct {
	Index int
	Cycle uint64
}

// MachineAt returns a fresh machine fast-forwarded to the latest golden
// checkpoint at or before cycle, and which checkpoint that was. The
// checkpoint set always includes cycle 0, so any cycle within the golden
// run resolves. The returned machine is independent of the checkpoint set
// and of every other machine returned from it.
func (w *Workload) MachineAt(cycle uint64) (*sim.Machine, Checkpoint, error) {
	w.buildCheckpoints()
	if w.ckptErr != nil {
		return nil, Checkpoint{}, w.ckptErr
	}
	// Latest checkpoint with ckpts[i].cycle <= cycle; index 0 is cycle 0.
	i := sort.Search(len(w.ckpts), func(i int) bool { return w.ckpts[i].cycle > cycle }) - 1
	if i < 0 {
		i = 0
	}
	ck := w.ckpts[i]
	return sim.RestoreMachine(ck.snap), Checkpoint{Index: i, Cycle: ck.cycle}, nil
}

// Restorer hands out checkpoint-restored machines like MachineAt, but owns
// one machine that it rewinds by delta restore between calls instead of
// building a fresh machine each time. Consecutive requests that resolve to
// the same checkpoint pay only for the state the previous run dirtied; a
// checkpoint switch (or the first call) transparently falls back to a full
// restore. The returned machine is bit-identical to MachineAt's — enforced
// by TestCheckpointEquivalence — but it is only valid until the next
// MachineAt call on the same Restorer, and the caller must detach any
// probes it installed before that call. A Restorer is not safe for
// concurrent use; campaigns create one per worker.
type Restorer struct {
	w     *Workload
	m     *sim.Machine
	dirty *sim.Dirty
}

// NewRestorer returns a Restorer for the workload, creating no machine yet.
func (w *Workload) NewRestorer() *Restorer { return &Restorer{w: w} }

// MachineAt returns the Restorer's machine rewound to the latest golden
// checkpoint at or before cycle, and which checkpoint that was.
func (r *Restorer) MachineAt(cycle uint64) (*sim.Machine, Checkpoint, error) {
	w := r.w
	w.buildCheckpoints()
	if w.ckptErr != nil {
		return nil, Checkpoint{}, w.ckptErr
	}
	i := sort.Search(len(w.ckpts), func(i int) bool { return w.ckpts[i].cycle > cycle }) - 1
	if i < 0 {
		i = 0
	}
	ck := w.ckpts[i]
	if r.m == nil {
		r.m = sim.New(ck.snap.Cfg)
	}
	r.dirty = r.m.RestoreDelta(ck.snap, r.dirty)
	return r.m, Checkpoint{Index: i, Cycle: ck.cycle}, nil
}
