package workloads

// Network and office analogs: dijkstra shortest paths and stringsearch
// (Boyer-Moore-Horspool).

func init() {
	register("dijkstra", lcgHelpers+dijkstraSource)
	register("stringSearch", lcgHelpers+stringsearchSource)
}

// dijkstra: single-source shortest paths with an O(V^2) scan over an
// adjacency matrix, run from several sources (the MiBench program runs many
// source/destination pairs over a 100-node matrix).
const dijkstraSource = `
int adj[2304];
int dist[48];
int done[48];
int nv = 48;

int main(void) {
    rng_seed(1313u);
    for (int i = 0; i < nv; i++) {
        for (int j = 0; j < nv; j++) {
            int w = (int)(rng_next() & 63u) + 1;
            if ((rng_next() & 3u) == 0u) w = 1000000; // sparse: most edges absent
            if (i == j) w = 0;
            adj[i * nv + j] = w;
        }
    }
    for (int src = 0; src < 4; src++) {
        for (int i = 0; i < nv; i++) {
            dist[i] = 1000000;
            done[i] = 0;
        }
        dist[src] = 0;
        for (int round = 0; round < nv; round++) {
            int best = -1;
            int bestd = 1000001;
            for (int i = 0; i < nv; i++) {
                if (!done[i] && dist[i] < bestd) {
                    bestd = dist[i];
                    best = i;
                }
            }
            if (best < 0) break;
            done[best] = 1;
            for (int j = 0; j < nv; j++) {
                int nd = dist[best] + adj[best * nv + j];
                if (nd < dist[j]) dist[j] = nd;
            }
        }
        for (int i = 0; i < nv; i++) dig_add((uint)dist[i]);
    }
    print_str("dijkstra ");
    dig_print();
    return 0;
}
`

// stringSearch: Boyer-Moore-Horspool over synthetic text, several patterns
// (the shortest workload in Table III).
const stringsearchSource = `
char text[256];
char pat[8];
int skip[256];

int search(int patlen) {
    for (int i = 0; i < 256; i++) skip[i] = patlen;
    for (int i = 0; i < patlen - 1; i++) skip[(int)pat[i]] = patlen - 1 - i;
    int n = 256;
    int found = 0;
    int pos = 0;
    while (pos <= n - patlen) {
        int j = patlen - 1;
        while (j >= 0 && text[pos + j] == pat[j]) j--;
        if (j < 0) {
            found++;
            pos += patlen;
        } else {
            pos += skip[(int)text[pos + patlen - 1]];
        }
    }
    return found;
}

int main(void) {
    rng_seed(2121u);
    for (int i = 0; i < 256; i++) {
        text[i] = (char)('a' + (int)(rng_next() & 7u));
    }
    int total = 0;
    for (int p = 0; p < 2; p++) {
        int patlen = 3 + p;
        for (int i = 0; i < patlen; i++) {
            pat[i] = (char)('a' + (int)(rng_next() & 7u));
        }
        int found = search(patlen);
        total += found;
        dig_add((uint)found);
    }
    print_str("stringsearch total=");
    print_int(total);
    print_char(' ');
    dig_print();
    return 0;
}
`
