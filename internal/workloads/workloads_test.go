package workloads

import (
	"bytes"
	"testing"
)

func TestFifteenWorkloads(t *testing.T) {
	if n := len(All()); n != 15 {
		t.Fatalf("registered %d workloads, want 15 (Table III)", n)
	}
}

func TestGoldenRuns(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			g, err := w.Reference()
			if err != nil {
				t.Fatal(err)
			}
			if g.Cycles == 0 || g.Committed == 0 {
				t.Fatalf("golden run reports no work: %+v", g)
			}
			if len(g.Stdout) == 0 {
				t.Fatalf("golden run produced no output")
			}
			t.Logf("cycles=%d committed=%d IPC=%.2f out=%q",
				g.Cycles, g.Committed, float64(g.Committed)/float64(g.Cycles), g.Stdout)
		})
	}
}

func TestGoldenDeterminism(t *testing.T) {
	w, err := ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	g, err := w.Reference()
	if err != nil {
		t.Fatal(err)
	}
	m, err := w.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	out := m.Run(0, 0, nil)
	if out.Cycles != g.Cycles {
		t.Fatalf("cycle count differs between runs: %d vs %d", out.Cycles, g.Cycles)
	}
	if !bytes.Equal(out.Stdout, g.Stdout) {
		t.Fatalf("stdout differs between runs")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

// TestMidRunOccupancies logs the structure occupancies of each workload at
// its half-way point. These numbers are the first-order explanation of the
// per-component AVFs (see EXPERIMENTS.md); the test asserts only the broad
// invariants so tuning does not break it.
func TestMidRunOccupancies(t *testing.T) {
	if testing.Short() {
		t.Skip("occupancy survey is slow")
	}
	for _, w := range All() {
		g, err := w.Reference()
		if err != nil {
			t.Fatal(err)
		}
		m, err := w.NewMachine()
		if err != nil {
			t.Fatal(err)
		}
		half := g.Cycles / 2
		for m.Core.Cycles() < half && m.Core.Stopped() == 0 {
			m.Core.Cycle()
		}
		occ := m.Occupancy()
		t.Logf("%-13s L1I=%.2f L1D=%.2f(d%.2f) L2=%.2f(d%.2f) ITLB=%.2f DTLB=%.2f",
			w.Name, occ["L1I"], occ["L1D"], occ["L1D.dirty"],
			occ["L2"], occ["L2.dirty"], occ["ITLB"], occ["DTLB"])
		if occ["L1I"] == 0 || occ["DTLB"] == 0 {
			t.Errorf("%s: implausible zero occupancy: %v", w.Name, occ)
		}
	}
}

// TestExists: the cheap registry probe must agree with ByName without
// compiling anything (grid validation calls it once per cell up front).
func TestExists(t *testing.T) {
	for _, n := range Names() {
		if !Exists(n) {
			t.Errorf("Exists(%q) = false for a registered workload", n)
		}
	}
	for _, n := range []string{"", "stringsearch", "sha1", "CRC-32"} {
		if Exists(n) {
			t.Errorf("Exists(%q) = true", n)
		}
		if _, err := ByName(n); err == nil {
			t.Errorf("ByName(%q) succeeded", n)
		}
	}
}
