package workloads

// Automotive-suite analogs: basicmath, qsort, and the three susan image
// kernels (smoothing, edges, corners).

func init() {
	register("basicmath", lcgHelpers+basicmathSource)
	register("qsort", lcgHelpers+qsortSource)
	register("susan_s", lcgHelpers+susanCommon+susanSSource)
	register("susan_e", lcgHelpers+susanCommon+susanESource)
	register("susan_c", lcgHelpers+susanCommon+susanCSource)
}

// basicmath: integer square roots, cube roots (Newton), and angle
// conversions in fixed point, mirroring the MiBench basicmath kernels.
const basicmathSource = `
uint isqrt(uint x) {
    uint op = x;
    uint res = 0u;
    uint one = 1u << 30;
    while (one > op) one = one >> 2;
    while (one != 0u) {
        if (op >= res + one) {
            op = op - (res + one);
            res = (res >> 1) + one;
        } else {
            res = res >> 1;
        }
        one = one >> 2;
    }
    return res;
}

int icbrt(uint x) {
    // Bit-at-a-time integer cube root (Hacker's Delight): terminates in
    // exactly 11 steps, unlike integer Newton which can oscillate.
    uint y = 0u;
    for (int s = 30; s >= 0; s -= 3) {
        y = y + y;
        uint b = (3u * y * (y + 1u) + 1u) << s;
        if (x >= b) {
            x = x - b;
            y = y + 1u;
        }
    }
    return (int)y;
}

int deg_to_rad_q10(int deg) {
    // pi/180 in Q16 is 1144; result in Q10.
    return (deg * 1144) >> 6;
}

int rad_q10_to_deg(int radq) {
    // 180/pi in Q10 is 58671/1024.
    return (radq * 57) >> 10;
}

int main(void) {
    // Square roots over a dense range.
    for (uint i = 0u; i < 3000u; i++) {
        dig_add(isqrt(i * i + i));
    }
    // Cube roots of pseudo-random values.
    rng_seed(31u);
    for (int i = 0; i < 600; i++) {
        uint v = rng_next() & 0xFFFFFu;
        dig_add((uint)icbrt(v));
    }
    // Angle conversions round trip.
    int err = 0;
    for (int d = -180; d <= 180; d++) {
        int r = deg_to_rad_q10(d);
        int back = rad_q10_to_deg(r);
        err += back - d;
        dig_add((uint)r);
    }
    print_str("basicmath err=");
    print_int(err);
    print_char(' ');
    dig_print();
    return 0;
}
`

// qsort: recursive quicksort over pseudo-random ints with verification,
// like the MiBench large qsort run.
const qsortSource = `
int arr[1000];

void quicksort(int lo, int hi) {
    if (lo >= hi) return;
    int pivot = arr[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (arr[i] < pivot) i++;
        while (arr[j] > pivot) j--;
        if (i <= j) {
            int t = arr[i];
            arr[i] = arr[j];
            arr[j] = t;
            i++;
            j--;
        }
    }
    quicksort(lo, j);
    quicksort(i, hi);
}

int main(void) {
    int n = 1000;
    rng_seed(6502u);
    for (int i = 0; i < n; i++) arr[i] = (int)(rng_next() & 0xFFFFu);
    quicksort(0, n - 1);
    int sorted = 1;
    for (int i = 1; i < n; i++) {
        if (arr[i-1] > arr[i]) sorted = 0;
        dig_add((uint)arr[i]);
    }
    print_str("qsort sorted=");
    print_int(sorted);
    print_char(' ');
    dig_print();
    return 0;
}
`

// susanCommon synthesizes the input image shared by the three susan
// kernels: smooth gradients plus pseudo-random speckle, so thresholding
// finds real structure.
const susanCommon = `
char img[1024];
int img_w;
int img_h;

void make_image(int w, int h) {
    img_w = w;
    img_h = h;
    rng_seed(7u);
    for (int y = 0; y < img_h; y++) {
        for (int x = 0; x < img_w; x++) {
            int v = (x * 5 + y * 3) & 0xFF;
            if (((x / 8) + (y / 8)) % 2 == 0) v = (v + 96) & 0xFF;
            v = (v + (int)(rng_next() & 7u)) & 0xFF;
            img[y * img_w + x] = (char)v;
        }
    }
}
`

// susan_s: 5x5 weighted smoothing (the susan smoothing path).
const susanSSource = `
char smoothed[1024];

int main(void) {
    make_image(16, 16);
    for (int y = 2; y < img_h - 2; y++) {
        for (int x = 2; x < img_w - 2; x++) {
            int c = (int)img[y * img_w + x];
            int total = 0;
            int weight = 0;
            for (int dy = -2; dy <= 2; dy++) {
                for (int dx = -2; dx <= 2; dx++) {
                    int p = (int)img[(y + dy) * img_w + x + dx];
                    int diff = p - c;
                    if (diff < 0) diff = -diff;
                    // Brightness weight falls off with difference.
                    int w = 16 - (diff >> 3);
                    if (w < 0) w = 0;
                    total += p * w;
                    weight += w;
                }
            }
            if (weight == 0) weight = 1;
            smoothed[y * img_w + x] = (char)(total / weight);
        }
    }
    for (int i = 0; i < img_w * img_h; i += 4) {
        dig_add(((uint)smoothed[i] << 16) | (uint)smoothed[i+1]);
    }
    print_str("susan_s ");
    dig_print();
    return 0;
}
`

// susan_e: USAN edge response — count similar neighbours in a 3x3 area and
// flag pixels whose area is below the geometric threshold.
const susanESource = `
char edges[1024];

int main(void) {
    make_image(12, 12);
    int nedges = 0;
    for (int y = 1; y < img_h - 1; y++) {
        for (int x = 1; x < img_w - 1; x++) {
            int c = (int)img[y * img_w + x];
            int usan = 0;
            for (int dy = -1; dy <= 1; dy++) {
                for (int dx = -1; dx <= 1; dx++) {
                    int p = (int)img[(y + dy) * img_w + x + dx];
                    int diff = p - c;
                    if (diff < 0) diff = -diff;
                    if (diff < 24) usan++;
                }
            }
            // Edge when fewer than 3/4 of the neighbourhood is similar.
            if (usan < 7) {
                edges[y * img_w + x] = (char)1;
                nedges++;
            }
            dig_add((uint)usan);
        }
    }
    print_str("susan_e n=");
    print_int(nedges);
    print_char(' ');
    dig_print();
    return 0;
}
`

// susan_c: corner response — USAN area below the corner threshold with a
// centroid test, on a sparser grid than the edge kernel.
const susanCSource = `
int main(void) {
    make_image(12, 12);
    int ncorners = 0;
    for (int y = 2; y < img_h - 2; y += 2) {
        for (int x = 2; x < img_w - 2; x += 2) {
            int c = (int)img[y * img_w + x];
            int usan = 0;
            int cx = 0;
            int cy = 0;
            for (int dy = -1; dy <= 1; dy++) {
                for (int dx = -1; dx <= 1; dx++) {
                    int p = (int)img[(y + dy) * img_w + x + dx];
                    int diff = p - c;
                    if (diff < 0) diff = -diff;
                    if (diff < 24) {
                        usan++;
                        cx += dx;
                        cy += dy;
                    }
                }
            }
            dig_add((uint)usan);
            if (usan < 6 && (cx != 0 || cy != 0)) {
                ncorners++;
                dig_add((uint)(y * img_w + x));
            }
        }
    }
    print_str("susan_c n=");
    print_int(ncorners);
    print_char(' ');
    dig_print();
    return 0;
}
`
