package workloads

// Consumer and telecom DSP analogs: cjpeg (JPEG-style compression), djpeg
// (decompression) and a fixed-point radix-2 FFT.

func init() {
	register("cjpeg", lcgHelpers+jpegCommon+cjpegSource)
	register("djpeg", lcgHelpers+jpegCommon+djpegSource)
	register("FFT", lcgHelpers+fftSource)
}

// jpegCommon holds the pieces both JPEG kernels share: the Q10 DCT basis,
// the quantization table and the zigzag order.
const jpegCommon = `
int dct_cos[64] = {
    1024, 1024, 1024, 1024, 1024, 1024, 1024, 1024,
    1004, 851, 569, 200, -200, -569, -851, -1004,
    946, 392, -392, -946, -946, -392, 392, 946,
    851, -200, -1004, -569, 569, 1004, 200, -851,
    724, -724, -724, 724, 724, -724, -724, 724,
    569, -1004, 200, 851, -851, -200, 1004, -569,
    392, -946, 946, -392, -392, 946, -946, 392,
    200, -569, 851, -1004, 1004, -851, 569, -200};

int quant[64] = {
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99};

int zigzag[64] = {
    0, 1, 8, 16, 9, 2, 3, 10,
    17, 24, 32, 25, 18, 11, 4, 5,
    12, 19, 26, 33, 40, 48, 41, 34,
    27, 20, 13, 6, 7, 14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36,
    29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46,
    53, 60, 61, 54, 47, 55, 62, 63};

int block[64];
int coeffs[64];

// fdct runs a naive 2-D DCT-II on block into coeffs. The C(0) = 1/sqrt(2)
// normalisation (724 in Q10) is applied to the zero rows/columns after the
// two passes, followed by the overall 1/4 scale.
void fdct(void) {
    int tmp[64];
    for (int y = 0; y < 8; y++) {
        for (int u = 0; u < 8; u++) {
            int acc = 0;
            for (int x = 0; x < 8; x++) {
                acc += dct_cos[u * 8 + x] * block[y * 8 + x];
            }
            tmp[y * 8 + u] = acc >> 10;
        }
    }
    for (int u = 0; u < 8; u++) {
        for (int v = 0; v < 8; v++) {
            int acc = 0;
            for (int y = 0; y < 8; y++) {
                acc += dct_cos[v * 8 + y] * tmp[y * 8 + u];
            }
            acc = acc >> 10;
            if (u == 0) acc = (acc * 724) >> 10;
            if (v == 0) acc = (acc * 724) >> 10;
            coeffs[v * 8 + u] = acc >> 2;
        }
    }
}

// idct is the matching inverse (DCT-III): pre-scale by the C(u)C(v)
// factors, then two accumulation passes.
void idct(void) {
    int tmp[64];
    int sc[64];
    for (int v = 0; v < 8; v++) {
        for (int u = 0; u < 8; u++) {
            int s = coeffs[v * 8 + u];
            if (u == 0) s = (s * 724) >> 10;
            if (v == 0) s = (s * 724) >> 10;
            sc[v * 8 + u] = s;
        }
    }
    for (int v = 0; v < 8; v++) {
        for (int x = 0; x < 8; x++) {
            int acc = 0;
            for (int u = 0; u < 8; u++) {
                acc += dct_cos[u * 8 + x] * sc[v * 8 + u];
            }
            tmp[v * 8 + x] = acc >> 10;
        }
    }
    for (int x = 0; x < 8; x++) {
        for (int y = 0; y < 8; y++) {
            int acc = 0;
            for (int v = 0; v < 8; v++) {
                acc += dct_cos[v * 8 + y] * tmp[v * 8 + x];
            }
            block[y * 8 + x] = acc >> 12; // >>10 basis scale, >>2 for 1/4
        }
    }
}
`

// cjpeg: synthesize an image, transform/quantize/zigzag/run-length encode
// each 8x8 block, and digest the code stream.
const cjpegSource = `
char image[512];

int main(void) {
    rng_seed(88u);
    for (int y = 0; y < 16; y++) {
        for (int x = 0; x < 32; x++) {
            int v = ((x * x + y * 3) & 0x7F) + (int)(rng_next() & 15u);
            image[y * 32 + x] = (char)(v & 0xFF);
        }
    }
    int codes = 0;
    for (int by = 0; by < 2; by++) {
        for (int bx = 0; bx < 4; bx++) {
            for (int y = 0; y < 8; y++) {
                for (int x = 0; x < 8; x++) {
                    block[y * 8 + x] = (int)image[(by * 8 + y) * 32 + bx * 8 + x] - 128;
                }
            }
            fdct();
            // Quantize and run-length encode in zigzag order.
            int run = 0;
            for (int k = 0; k < 64; k++) {
                int idx = zigzag[k];
                int q = coeffs[idx] / quant[idx];
                if (q == 0) {
                    run++;
                } else {
                    dig_add((uint)(run * 65536 + (q & 0xFFFF)));
                    codes++;
                    run = 0;
                }
            }
            dig_add(0xE0Bu); // end-of-block marker
        }
    }
    print_str("cjpeg codes=");
    print_int(codes);
    print_char(' ');
    dig_print();
    return 0;
}
`

// djpeg: synthesize plausible quantized coefficient blocks (energy decaying
// along the zigzag), dequantize, inverse transform, and digest the pixels.
const djpegSource = `
int main(void) {
    rng_seed(333u);
    int nblocks = 2;
    for (int b = 0; b < nblocks; b++) {
        for (int k = 0; k < 64; k++) {
            int idx = zigzag[k];
            int mag = 64 >> (k / 8);          // decaying magnitude budget
            int q = 0;
            if (mag > 0) {
                q = (int)(rng_next() % (uint)(2 * mag + 1)) - mag;
            }
            coeffs[idx] = q * quant[idx];     // dequantize
        }
        idct();
        for (int i = 0; i < 64; i++) {
            int p = block[i] + 128;
            if (p < 0) p = 0;
            if (p > 255) p = 255;
            dig_add((uint)p);
        }
    }
    print_str("djpeg ");
    dig_print();
    return 0;
}
`

// FFT: 256-point radix-2 decimation-in-time fixed-point FFT with Q12
// twiddles from a quarter sine table, forward plus inverse with round-trip
// error reporting (the MiBench fft runs forward and inverse transforms).
const fftSource = `
int sine_q[65] = {
    0, 101, 201, 301, 401, 501, 601, 700, 799, 897,
    995, 1092, 1189, 1285, 1380, 1474, 1567, 1660, 1751, 1842,
    1931, 2019, 2106, 2191, 2276, 2359, 2440, 2520, 2598, 2675,
    2751, 2824, 2896, 2967, 3035, 3102, 3166, 3229, 3290, 3349,
    3406, 3461, 3513, 3564, 3612, 3659, 3703, 3745, 3784, 3822,
    3857, 3889, 3920, 3948, 3973, 3996, 4017, 4036, 4052, 4065,
    4076, 4085, 4091, 4095, 4096};

int re[256];
int im[256];
int orig[256];

int fsin(int k) {
    // sin(2*pi*k/256) in Q12 via quarter-wave symmetry.
    k = k & 255;
    if (k < 64) return sine_q[k];
    if (k < 128) return sine_q[128 - k];
    if (k < 192) return -sine_q[k - 128];
    return -sine_q[256 - k];
}

int fcos(int k) {
    return fsin(k + 64);
}

void fft(int inverse) {
    int n = 256;
    // Bit-reversal permutation.
    int j = 0;
    for (int i = 0; i < n - 1; i++) {
        if (i < j) {
            int t = re[i]; re[i] = re[j]; re[j] = t;
            t = im[i]; im[i] = im[j]; im[j] = t;
        }
        int m = n >> 1;
        while (m >= 1 && j >= m) {
            j -= m;
            m = m >> 1;
        }
        j += m;
    }
    for (int span = 1; span < n; span = span << 1) {
        int step = span << 1;
        int tw = 128 / span;      // twiddle index stride
        for (int k = 0; k < span; k++) {
            int c = fcos(k * tw);
            int s = fsin(k * tw);
            if (inverse == 0) s = -s;
            for (int i = k; i < n; i += step) {
                int l = i + span;
                int tr = (re[l] * c - im[l] * s) >> 12;
                int ti = (re[l] * s + im[l] * c) >> 12;
                re[l] = re[i] - tr;
                im[l] = im[i] - ti;
                re[i] = re[i] + tr;
                im[i] = im[i] + ti;
            }
        }
        // Forward pass scales by 1/2 per stage (1/N total) to avoid
        // overflow; the inverse leaves growth in place so the round trip
        // recovers the original amplitude.
        if (inverse == 0) {
            for (int i = 0; i < n; i++) {
                re[i] = re[i] >> 1;
                im[i] = im[i] >> 1;
            }
        }
    }
}

int main(void) {
    rng_seed(1967u);
    int maxerr = 0;
    for (int round = 0; round < 2; round++) {
        for (int i = 0; i < 256; i++) {
            int v = (int)(rng_next() & 0x3FFFu) - 8192;
            re[i] = v;
            im[i] = 0;
            orig[i] = v;
        }
        fft(0);
        for (int i = 0; i < 256; i += 8) {
            dig_add((uint)re[i]);
            dig_add((uint)im[i]);
        }
        fft(1);
        // Forward scaled by 1/N, inverse unscaled: the round trip should
        // land back on the input up to fixed-point error.
        for (int i = 0; i < 256; i++) {
            int err = re[i] - orig[i];
            if (err < 0) err = -err;
            if (err > maxerr) maxerr = err;
        }
    }
    print_str("fft maxerr=");
    print_int(maxerr);
    print_char(' ');
    dig_print();
    return 0;
}
`
