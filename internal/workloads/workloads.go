// Package workloads provides the fifteen MiBench-analog benchmarks of the
// paper's Table III, written in MiniC and compiled to AR32 for the simulated
// machine. Each workload synthesizes its own deterministic input (a seeded
// LCG replaces MiBench's input files) and writes a result digest to stdout;
// the fault-free run's output is the golden reference for SDC detection,
// and its cycle count sets both the Table III analog and the 4x timeout
// limit used by the injection campaigns.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"mbusim/internal/asm"
	"mbusim/internal/minic"
	"mbusim/internal/sim"
)

// Workload is one benchmark: a name (matching the paper's Table III) and
// its MiniC source.
type Workload struct {
	Name   string
	Source string

	// Compilation and golden derivation are separate once-guards: compiling
	// is milliseconds, the golden run is hundreds of millions of simulated
	// cycles. The artifact layer (InstallArtifact) exploits the split — it
	// needs the compiled image to verify the artifact's hash and to build
	// machines, but seeds golden and checkpoints from the artifact instead
	// of deriving them.
	compileOnce sync.Once
	prog        *asm.Program
	compileErr  error

	goldenOnce sync.Once
	golden     *Golden
	goldenErr  error

	ckptOnce sync.Once
	ckpts    []checkpoint
	ckptErr  error

	// Flattened views of ckpts, built once alongside it, so the campaign's
	// per-sample convergence checks borrow them without allocating.
	ckptCycles []uint64
	ckptSnaps  []*sim.Snapshot
}

// OnGoldenDerived, when non-nil, is called each time a workload's golden
// reference is actually derived by running the full fault-free simulation
// in this process — as opposed to being installed from a cached artifact.
// The gefin binary wires it to a telemetry counter so a distributed
// campaign can prove fleet-wide how many golden runs it really paid for.
// Set it before any campaign runs; it must be safe for concurrent calls.
var OnGoldenDerived func(name string)

// Golden holds the fault-free reference run of a workload.
type Golden struct {
	Cycles    uint64
	Committed uint64
	Stdout    []byte
	ExitCode  uint32
}

var registry = map[string]*Workload{}

func register(name, source string) {
	if _, dup := registry[name]; dup {
		panic("workloads: duplicate " + name)
	}
	registry[name] = &Workload{Name: name, Source: source}
}

// Names returns all workload names sorted alphabetically.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Exists reports whether a workload with the given name is registered,
// without building anything — campaign front-ends use it to validate whole
// grids before the first golden run is spent.
func Exists(name string) bool {
	_, ok := registry[name]
	return ok
}

// ByName returns the named workload.
func ByName(name string) (*Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q", name)
	}
	return w, nil
}

// All returns every workload, sorted by name.
func All() []*Workload {
	ws := make([]*Workload, 0, len(registry))
	for _, n := range Names() {
		ws = append(ws, registry[n])
	}
	return ws
}

// compile compiles the workload's MiniC source, once.
func (w *Workload) compile() {
	w.compileOnce.Do(func() {
		prog, err := minic.CompileProgram(w.Source)
		if err != nil {
			w.compileErr = fmt.Errorf("workloads: compile %s: %w", w.Name, err)
			return
		}
		w.prog = prog
	})
}

// deriveGolden captures the fault-free reference run, once. InstallArtifact
// wins the same once-guard with a cached golden instead, skipping the run.
func (w *Workload) deriveGolden() {
	w.goldenOnce.Do(func() {
		w.compile()
		if w.compileErr != nil {
			w.goldenErr = w.compileErr
			return
		}
		m := sim.New(sim.DefaultConfig())
		if err := m.Load(w.prog); err != nil {
			w.goldenErr = fmt.Errorf("workloads: load %s: %w", w.Name, err)
			return
		}
		out := m.Run(500_000_000, 0, nil)
		if out.Stop.String() != "exit" || out.ExitCode != 0 || out.TimedOut {
			w.goldenErr = fmt.Errorf("workloads: golden run of %s failed: stop=%v exit=%d timeout=%v kill=%q panic=%q",
				w.Name, out.Stop, out.ExitCode, out.TimedOut, out.KillMsg, out.PanicMsg)
			return
		}
		w.golden = &Golden{
			Cycles:    out.Cycles,
			Committed: out.Committed,
			Stdout:    out.Stdout,
			ExitCode:  out.ExitCode,
		}
		if OnGoldenDerived != nil {
			OnGoldenDerived(w.Name)
		}
	})
}

// Program returns the compiled binary image (compiled once, cached).
func (w *Workload) Program() (*asm.Program, error) {
	w.compile()
	return w.prog, w.compileErr
}

// Reference returns the golden fault-free run (computed once, cached).
func (w *Workload) Reference() (*Golden, error) {
	w.deriveGolden()
	if w.goldenErr != nil {
		return nil, w.goldenErr
	}
	return w.golden, nil
}

// NewMachine builds a fresh machine with the workload loaded, ready to run.
func (w *Workload) NewMachine() (*sim.Machine, error) {
	prog, err := w.Program()
	if err != nil {
		return nil, err
	}
	m := sim.New(sim.DefaultConfig())
	if err := m.Load(prog); err != nil {
		return nil, err
	}
	return m, nil
}

// lcgHelpers is shared MiniC source implementing the deterministic input
// generator and digest helpers used by every workload.
const lcgHelpers = `
uint rng_state = 12345u;

uint rng_next(void) {
    rng_state = rng_state * 1103515245u + 12345u;
    return (rng_state >> 8) & 0xFFFFFFu;
}

void rng_seed(uint s) {
    rng_state = s;
}

uint dig_state = 2166136261u;

void dig_add(uint v) {
    dig_state = (dig_state ^ v) * 16777619u;
}

void dig_print(void) {
    print_str("digest=");
    print_hex(dig_state);
    print_nl();
}
`
