package workloads

import (
	"bytes"
	"strings"
	"testing"

	"mbusim/internal/sim"
)

// countGoldenDerivations routes the OnGoldenDerived hook into a counter for
// the duration of the test.
func countGoldenDerivations(t *testing.T) *int {
	t.Helper()
	prev := OnGoldenDerived
	n := new(int)
	OnGoldenDerived = func(string) { *n++ }
	t.Cleanup(func() { OnGoldenDerived = prev })
	return n
}

func TestArtifactRoundTrip(t *testing.T) {
	w, err := ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ExportArtifact(w)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeArtifact(a.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload != a.Workload || back.ImageHash != a.ImageHash || back.K != a.K {
		t.Fatalf("identity fields lost: %+v", back)
	}
	if back.Golden.Cycles != a.Golden.Cycles || back.Golden.ExitCode != a.Golden.ExitCode ||
		!bytes.Equal(back.Golden.Stdout, a.Golden.Stdout) || back.Golden.Committed != a.Golden.Committed {
		t.Fatalf("golden lost: %+v", back.Golden)
	}
	if len(back.Snaps) != len(a.Snaps) {
		t.Fatalf("checkpoint count %d, want %d", len(back.Snaps), len(a.Snaps))
	}

	// The decoded snapshots carry no predecoded text; bind the program and
	// verify each restores to a machine bit-identical to the original
	// snapshot (EqualsSnapshot covers every component's mutable state).
	m, err := w.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range back.Snaps {
		if s.Cfg != a.Snaps[i].Cfg {
			t.Fatalf("checkpoint %d config changed", i)
		}
		if err := s.BindProgram(m); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		if !sim.RestoreMachine(s).EqualsSnapshot(a.Snaps[i]) {
			t.Fatalf("checkpoint %d (cycle %d) did not survive the round trip", i, back.Cycles[i])
		}
	}
}

func TestArtifactKey(t *testing.T) {
	w, err := ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	k1, err := w.ArtifactKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := w.ArtifactKey()
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("key not deterministic: %s vs %s", k1, k2)
	}
	a, err := ExportArtifact(w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key() != k1 {
		t.Fatalf("exported key %s, expected key %s", a.Key(), k1)
	}

	// The key is a content address: a different checkpoint count or a
	// different workload must produce a different key.
	other := *a
	other.K++
	if other.Key() == k1 {
		t.Fatal("key insensitive to checkpoint count")
	}
	w2, err := ByName("CRC32")
	if err != nil {
		t.Fatal(err)
	}
	k3, err := w2.ArtifactKey()
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Fatal("two workloads share a key")
	}
}

func TestArtifactDecodeRejectsCorruption(t *testing.T) {
	w, err := ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ExportArtifact(w)
	if err != nil {
		t.Fatal(err)
	}
	good := a.Encode()
	if _, err := DecodeArtifact(good); err != nil {
		t.Fatalf("pristine artifact rejected: %v", err)
	}

	// A flipped byte anywhere must fail the content hash — probe the
	// header, the middle of the snapshot payload, and the trailer itself.
	for _, pos := range []int{0, 5, 40, len(good) / 2, len(good) - 1} {
		bad := bytes.Clone(good)
		bad[pos] ^= 0x01
		if _, err := DecodeArtifact(bad); err == nil {
			t.Errorf("flipped byte %d decoded cleanly", pos)
		}
	}
	// Truncations: inside the header, inside the payload, inside the
	// trailer.
	for _, n := range []int{0, 8, 100, len(good) - 1} {
		if _, err := DecodeArtifact(good[:n]); err == nil {
			t.Errorf("truncation to %d bytes decoded cleanly", n)
		}
	}
}

func TestInstallArtifact(t *testing.T) {
	src, err := ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ExportArtifact(src)
	if err != nil {
		t.Fatal(err)
	}
	// Decode a fresh copy so the install exercises unbound snapshots, the
	// cross-process case.
	a, err = DecodeArtifact(a.Encode())
	if err != nil {
		t.Fatal(err)
	}

	// A fresh Workload with the same source stands in for a worker process
	// that has never derived anything.
	w := &Workload{Name: src.Name, Source: src.Source}
	derived := countGoldenDerivations(t)
	if err := InstallArtifact(w, a); err != nil {
		t.Fatal(err)
	}
	g, err := w.Reference()
	if err != nil {
		t.Fatal(err)
	}
	if g.Cycles != a.Golden.Cycles || !bytes.Equal(g.Stdout, a.Golden.Stdout) {
		t.Fatalf("installed golden differs: %+v", g)
	}
	// The installed checkpoints must actually run: fast-forward to the last
	// checkpoint and finish, reproducing the golden outcome.
	cycles, err := w.CheckpointCycles()
	if err != nil {
		t.Fatal(err)
	}
	m, ck, err := w.MachineAt(g.Cycles - 1)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Cycle != cycles[len(cycles)-1] {
		t.Fatalf("fast-forwarded to %d, want last checkpoint %d", ck.Cycle, cycles[len(cycles)-1])
	}
	out := m.Run(0, 0, nil)
	if out.Cycles != g.Cycles || out.ExitCode != g.ExitCode || !bytes.Equal(out.Stdout, g.Stdout) {
		t.Fatalf("installed checkpoint diverged from golden: cycles=%d want %d", out.Cycles, g.Cycles)
	}
	if *derived != 0 {
		t.Fatalf("install still derived %d goldens locally", *derived)
	}
}

func TestInstallArtifactRejectsMismatch(t *testing.T) {
	src, err := ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	a, err := ExportArtifact(src)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong workload name.
	w := &Workload{Name: "CRC32", Source: src.Source}
	if err := InstallArtifact(w, a); err == nil || !strings.Contains(err.Error(), "artifact is for") {
		t.Fatalf("name mismatch accepted: %v", err)
	}
	// Wrong image: same name, different source.
	w = &Workload{Name: src.Name, Source: strings.Replace(src.Source, "12345", "12346", 1)}
	if err := InstallArtifact(w, a); err == nil || !strings.Contains(err.Error(), "image hash") {
		t.Fatalf("image mismatch accepted: %v", err)
	}
	// Wrong checkpoint count for this process's configuration.
	bad := *a
	bad.K++
	w = &Workload{Name: src.Name, Source: src.Source}
	if err := InstallArtifact(w, &bad); err == nil || !strings.Contains(err.Error(), "checkpoints") {
		t.Fatalf("K mismatch accepted: %v", err)
	}
	// A rejected install must leave the workload untouched: deriving still
	// works from scratch.
	derived := countGoldenDerivations(t)
	g, err := w.Reference()
	if err != nil {
		t.Fatal(err)
	}
	if g.Cycles == 0 || *derived != 1 {
		t.Fatalf("fallback derivation broken after rejected install: derived=%d", *derived)
	}
}
