package workloads

import (
	"bytes"
	"testing"

	"mbusim/internal/liveness"
)

// TestProfileDeterministic: profiling the same workload twice yields
// byte-identical artifacts — the property the artifact cache and the
// cross-process reproducibility story rest on.
func TestProfileDeterministic(t *testing.T) {
	w, err := ByName("stringSearch")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := w.Profile(8)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := w.Profile(8)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := p1.Encode(), p2.Encode()
	if !bytes.Equal(e1, e2) {
		t.Fatal("two profiles of the same workload encode differently")
	}
	if _, err := liveness.DecodeProfile(e1); err != nil {
		t.Fatalf("emitted artifact does not validate: %v", err)
	}
}

// TestProfileMatchesGolden: the profiled run is the golden run — same
// cycle count, and the artifact is stamped with the workload identity.
func TestProfileMatchesGolden(t *testing.T) {
	w, err := ByName("stringSearch")
	if err != nil {
		t.Fatal(err)
	}
	g, err := w.Reference()
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Profile(4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Cycles != g.Cycles {
		t.Errorf("profile covers %d cycles, golden ran %d", p.Cycles, g.Cycles)
	}
	if p.Workload != "stringSearch" {
		t.Errorf("profile workload = %q", p.Workload)
	}
	prog, err := w.Program()
	if err != nil {
		t.Fatal(err)
	}
	if p.ImageHash != HashImage(prog) {
		t.Error("profile image hash does not match the compiled program")
	}
	// All six structures present, every class within the run budget.
	if len(p.Components) != 6 {
		t.Fatalf("profile has %d components, want 6", len(p.Components))
	}
	for i := range p.Components {
		c := &p.Components[i]
		if budget := c.TotalBits() * p.Cycles; c.Ace() > budget || c.Never() > budget {
			t.Errorf("%s bit-cycles exceed the run budget", c.Name)
		}
	}
}
