package workloads

import "testing"

// pinnedOutputs locks the golden outputs of every workload. Any change to
// the compiler, ISA semantics, pipeline architectural behaviour or the
// workloads themselves that alters program results shows up here — and
// silently shifting goldens would silently re-baseline every AVF number in
// the repository.
var pinnedOutputs = map[string]string{
	"CRC32":        "crc32=1a280466\n",
	"FFT":          "fft maxerr=136 digest=bbe6a5ab\n",
	"adpcm_dec":    "adpcm digest=613f5302\n",
	"basicmath":    "basicmath err=-187 digest=7357d61e\n",
	"cjpeg":        "cjpeg codes=87 digest=2962029d\n",
	"dijkstra":     "dijkstra digest=f39ff09d\n",
	"djpeg":        "djpeg digest=0c4c7242\n",
	"gsm_dec":      "gsm digest=3c769f04\n",
	"qsort":        "qsort sorted=1 digest=7f0acf13\n",
	"rijndael_dec": "rijndael digest=aab5ec6e\n",
	"sha":          "sha1=fb73c1de6861c7f7cf324f89a460283de17f30ab\n",
	"stringSearch": "stringsearch total=1 digest=eb741d64\n",
	"susan_c":      "susan_c n=1 digest=5db6990f\n",
	"susan_e":      "susan_e n=36 digest=c3fbd0a1\n",
	"susan_s":      "susan_s digest=f9257dc5\n",
}

func TestPinnedGoldenOutputs(t *testing.T) {
	for name, want := range pinnedOutputs {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := w.Reference()
		if err != nil {
			t.Fatal(err)
		}
		if got := string(g.Stdout); got != want {
			t.Errorf("%s: golden output changed:\n got %q\nwant %q", name, got, want)
		}
	}
}

func TestTableIIIOrderingMatchesPaper(t *testing.T) {
	// The paper's Table III ordering (by execution time) that the scaled
	// workloads reproduce: CRC32 longest, stringsearch/susan_c shortest.
	cyclesOf := func(name string) uint64 {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := w.Reference()
		if err != nil {
			t.Fatal(err)
		}
		return g.Cycles
	}
	order := []string{
		"CRC32", "basicmath", "adpcm_dec", "FFT", "dijkstra",
		"rijndael_dec", "qsort", "cjpeg", "susan_s", "gsm_dec",
		"sha", "djpeg", "susan_e",
	}
	for i := 1; i < len(order); i++ {
		if cyclesOf(order[i-1]) <= cyclesOf(order[i]) {
			t.Errorf("ordering violated: %s (%d) should exceed %s (%d)",
				order[i-1], cyclesOf(order[i-1]), order[i], cyclesOf(order[i]))
		}
	}
	// The two shortest sit at the bottom, in either order.
	if cyclesOf("susan_c") >= cyclesOf("susan_e") || cyclesOf("stringSearch") >= cyclesOf("susan_e") {
		t.Error("susan_c and stringSearch must be the shortest workloads")
	}
}

func TestWorkloadFootprintsDiffer(t *testing.T) {
	// The suite must mix long and short workloads (the paper's Eq. 2
	// weighting exists because of this spread).
	var min, max uint64
	for _, w := range All() {
		g, err := w.Reference()
		if err != nil {
			t.Fatal(err)
		}
		if min == 0 || g.Cycles < min {
			min = g.Cycles
		}
		if g.Cycles > max {
			max = g.Cycles
		}
	}
	if max/min < 20 {
		t.Fatalf("cycle spread %dx too small (paper's Table III spans >100x)", max/min)
	}
}
