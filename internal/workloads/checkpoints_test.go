package workloads

import (
	"bytes"
	"testing"
)

func TestCheckpointCyclesSpacing(t *testing.T) {
	w, err := ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	g, err := w.Reference()
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := w.CheckpointCycles()
	if err != nil {
		t.Fatal(err)
	}
	if len(cycles) == 0 || cycles[0] != 0 {
		t.Fatalf("checkpoint set must start at cycle 0: %v", cycles)
	}
	for i := 1; i < len(cycles); i++ {
		if cycles[i] <= cycles[i-1] {
			t.Fatalf("checkpoint cycles not strictly increasing: %v", cycles)
		}
		if cycles[i] >= g.Cycles {
			t.Fatalf("checkpoint %d at cycle %d beyond golden end %d", i, cycles[i], g.Cycles)
		}
	}
	// Evenly spaced: the i-th target is i*G/K.
	k := len(cycles)
	for i, c := range cycles {
		want := g.Cycles * uint64(i) / uint64(CheckpointCount)
		if c != want {
			t.Fatalf("checkpoint %d at cycle %d, want %d (K=%d, G=%d)", i, c, want, k, g.Cycles)
		}
	}
}

func TestMachineAtPicksNearestCheckpoint(t *testing.T) {
	w, err := ByName("stringSearch")
	if err != nil {
		t.Fatal(err)
	}
	g, err := w.Reference()
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := w.CheckpointCycles()
	if err != nil {
		t.Fatal(err)
	}

	// Exactly at a checkpoint, just after one, and just before the next.
	for _, tc := range []struct {
		ask, want uint64
		wantIndex int
	}{
		{0, 0, 0},
		{cycles[1], cycles[1], 1},
		{cycles[1] + 1, cycles[1], 1},
		{cycles[2] - 1, cycles[1], 1},
		{g.Cycles - 1, cycles[len(cycles)-1], len(cycles) - 1},
	} {
		m, ck, err := w.MachineAt(tc.ask)
		if err != nil {
			t.Fatal(err)
		}
		if ck.Cycle != tc.want {
			t.Errorf("MachineAt(%d) fast-forwarded to %d, want %d", tc.ask, ck.Cycle, tc.want)
		}
		if ck.Index != tc.wantIndex {
			t.Errorf("MachineAt(%d) restored checkpoint %d, want %d", tc.ask, ck.Index, tc.wantIndex)
		}
		if m.Core.Cycles() != ck.Cycle {
			t.Errorf("MachineAt(%d): machine at cycle %d, reported %d", tc.ask, m.Core.Cycles(), ck.Cycle)
		}
	}
}

// TestMachineAtReproducesGolden: a machine fast-forwarded to any
// checkpoint and run to completion reproduces the golden outcome exactly.
func TestMachineAtReproducesGolden(t *testing.T) {
	w, err := ByName("susan_c")
	if err != nil {
		t.Fatal(err)
	}
	g, err := w.Reference()
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := w.CheckpointCycles()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cycles {
		m, _, err := w.MachineAt(c)
		if err != nil {
			t.Fatal(err)
		}
		out := m.Run(0, 0, nil)
		if out.Cycles != g.Cycles || out.ExitCode != g.ExitCode || !bytes.Equal(out.Stdout, g.Stdout) {
			t.Fatalf("fast-forward from cycle %d diverged: cycles=%d want %d stdout=%q want %q",
				c, out.Cycles, g.Cycles, out.Stdout, g.Stdout)
		}
	}
}
