// Package liveness profiles the microarchitectural liveness of the six
// injectable structures over one fault-free golden run: which bits hold
// live (ACE) state when, how long written values sit before their first
// consume, and how occupancy evolves over the run.
//
// The profiler reuses the forensics probe hook points (cache.Probe,
// tlb.Probe, cpu.RegProbe) but tracks the *whole* structure instead of one
// injected mask: every row x bit-class is a tracked cell carrying its
// current write ("def") cycle, first/last consume cycles and last-touch
// cycle. The event fan-out mirrors internal/forensics exactly — a
// set-associative lookup consults valid+tag of every way in the probed
// set, a TLB lookup CAM-compares every entry, a writeback reads tag+data —
// so the analytical model and the measured fault fates describe the same
// hardware events. Two summaries fall out:
//
//   - ACE bit-cycles: for each generation of a cell (write..last read),
//     the interval during which a flipped bit would have been consumed.
//     AVF_analytical = ACE bit-cycles / (total bits x run cycles), the
//     classic Mukherjee-style ACE bound.
//   - Never-touched bit-cycles: for each cell, the tail of the run after
//     its last event of any kind. A fault injected uniformly in time lands
//     in dead state with probability never-bit-cycles / total bit-cycles,
//     which must agree with the forensics `never-touched` fate fraction.
//
// A golden run under the profiler is deterministic, so the resulting
// Profile artifact (see profile.go) is byte-identical across runs and
// across the -nodelta / -nockpt execution strategies.
package liveness

import (
	"math/bits"

	"mbusim/internal/cache"
	"mbusim/internal/cpu"
	"mbusim/internal/sim"
	"mbusim/internal/tlb"
)

// LifeBuckets is the number of log2 lifetime-histogram buckets per bit
// class: bucket 0 counts same-cycle consumes, bucket b counts first-consume
// latencies in [2^(b-1), 2^b). 40 buckets cover any run the simulator can
// count.
const LifeBuckets = 40

// lifeBucket maps a write-to-first-consume latency to its histogram bucket.
func lifeBucket(d uint64) int {
	b := bits.Len64(d)
	if b >= LifeBuckets {
		b = LifeBuckets - 1
	}
	return b
}

// cell is one tracked row x bit-class unit. Data is tracked per byte (the
// granularity the probes report), metadata per field — the same cells the
// forensics tracker classifies an injected mask into.
type cell struct {
	class uint16 // index into the component's class table
	width uint16 // bits this cell stands for
	// Cycle marks, clamped to >= 1 so 0 means "never": the current
	// generation's write cycle, its first and last consume cycles, and the
	// last event of any kind (consume or overwrite).
	def       uint64
	firstUse  uint64
	lastUse   uint64
	lastTouch uint64
}

// compTracker is the per-structure profiler: the flat cell array, the
// per-class aggregates it folds into, and the occupancy window series.
type compTracker struct {
	name    string
	rows    int
	cols    int
	now     func() uint64
	cells   []cell
	classes []ClassProfile

	// Window sampling state, filled by Profiler.sample.
	target   any // the concrete structure, for StructState
	rowLive  func(row int) bool
	hasDirty bool
	occBP    []uint32
	dirtyBP  []uint32
	rowValid []byte
	rowBytes int

	detach func()
}

// tick returns the current cycle clamped to 1, the same "never happened"
// sentinel convention the forensics tracker uses.
func (t *compTracker) tick() uint64 {
	cyc := t.now()
	if cyc == 0 {
		cyc = 1
	}
	return cyc
}

// consume records that cell i's bits entered the datapath (read, CAM
// compare, writeback): the first consume of a generation closes the
// write-to-read lifetime into the class histogram; every consume extends
// the generation's ACE interval.
func (t *compTracker) consume(i int) {
	c := &t.cells[i]
	cyc := t.tick()
	if c.firstUse == 0 {
		cl := &t.classes[c.class]
		cl.Reads++
		cl.Life[lifeBucket(cyc-c.def)]++
		c.firstUse = cyc
	}
	c.lastUse = cyc
	c.lastTouch = cyc
}

// define records that cell i was overwritten with new state: the previous
// generation's ACE interval (write..last consume) is banked, and a new
// generation opens at the current cycle.
func (t *compTracker) define(i int) {
	c := &t.cells[i]
	cyc := t.tick()
	cl := &t.classes[c.class]
	if c.lastUse != 0 {
		cl.AceBitCycles += (c.lastUse - c.def) * uint64(c.width)
	}
	cl.Defs++
	c.def = cyc
	c.firstUse = 0
	c.lastUse = 0
	c.lastTouch = cyc
}

// finish closes every open generation at the end of the run and banks each
// cell's dead tail (end - lastTouch) as never-touched bit-cycles. A cell
// with no event at all contributes its full end x width.
func (t *compTracker) finish(end uint64) {
	for i := range t.cells {
		c := &t.cells[i]
		cl := &t.classes[c.class]
		if c.lastUse != 0 {
			cl.AceBitCycles += (c.lastUse - c.def) * uint64(c.width)
		}
		lt := c.lastTouch
		if lt > end {
			lt = end
		}
		cl.NeverBitCycles += (end - lt) * uint64(c.width)
	}
}

// --- cache tracker ---

// Cache cell layout: valid cells [0,rows), dirty [rows,2rows), tag
// [2rows,3rows) (one cell of tagBits width per row), then one cell per
// data byte, line-major.
type cacheProbe struct {
	t        *compTracker
	ways     int
	lineSize int
	dataBase int // 3*rows
}

func newCacheTracker(c *cache.Cache, now func() uint64) *compTracker {
	cfg := c.Config()
	rows := c.Rows()
	tagBits := c.StateBits() - 2
	t := &compTracker{
		name: c.Name(), rows: rows, cols: c.Cols(), now: now,
		target: c, hasDirty: true,
	}
	t.classes = []ClassProfile{
		{Name: "valid", Bits: uint64(rows)},
		{Name: "dirty", Bits: uint64(rows)},
		{Name: "tag", Bits: uint64(rows) * uint64(tagBits)},
		{Name: "data", Bits: uint64(rows) * uint64(cfg.LineSize) * 8},
	}
	t.cells = make([]cell, 3*rows+rows*cfg.LineSize)
	for r := 0; r < rows; r++ {
		t.cells[r] = cell{class: 0, width: 1}
		t.cells[rows+r] = cell{class: 1, width: 1}
		t.cells[2*rows+r] = cell{class: 2, width: uint16(tagBits)}
	}
	for i := 3 * rows; i < len(t.cells); i++ {
		t.cells[i] = cell{class: 3, width: 8}
	}
	t.rowLive = func(row int) bool {
		_, valid, _, _ := c.LineState(row)
		return valid
	}
	c.SetProbe(&cacheProbe{t: t, ways: cfg.Ways, lineSize: cfg.LineSize, dataBase: 3 * rows})
	t.detach = func() { c.SetProbe(nil) }
	return t
}

// OnLookup implements cache.Probe: the parallel tag read consults valid +
// tag bits of every way in the probed set.
func (p *cacheProbe) OnLookup(set uint32) {
	base := int(set) * p.ways
	for w := 0; w < p.ways; w++ {
		row := base + w
		p.t.consume(row)              // valid
		p.t.consume(2*p.t.rows + row) // tag
	}
}

// OnReadData implements cache.Probe.
func (p *cacheProbe) OnReadData(row, off, n int) {
	base := p.dataBase + row*p.lineSize + off
	for i := 0; i < n; i++ {
		p.t.consume(base + i)
	}
}

// OnWriteData implements cache.Probe: the written bytes and the dirty bit
// are rewritten.
func (p *cacheProbe) OnWriteData(row, off, n int) {
	base := p.dataBase + row*p.lineSize + off
	for i := 0; i < n; i++ {
		p.t.define(base + i)
	}
	p.t.define(p.t.rows + row) // dirty bit set unconditionally
}

// OnEvict implements cache.Probe: choosing a fill victim consults its
// valid and dirty bits.
func (p *cacheProbe) OnEvict(row int) {
	p.t.consume(row)            // valid
	p.t.consume(p.t.rows + row) // dirty
}

// OnWriteback implements cache.Probe: the tag bits form the writeback
// address and the data bytes escape to the next level.
func (p *cacheProbe) OnWriteback(row int) {
	p.t.consume(2*p.t.rows + row)
	base := p.dataBase + row*p.lineSize
	for i := 0; i < p.lineSize; i++ {
		p.t.consume(base + i)
	}
}

// OnFill implements cache.Probe: a refill rewrites the whole line.
func (p *cacheProbe) OnFill(row int) {
	p.t.define(row)
	p.t.define(p.t.rows + row)
	p.t.define(2*p.t.rows + row)
	base := p.dataBase + row*p.lineSize
	for i := 0; i < p.lineSize; i++ {
		p.t.define(base + i)
	}
}

// --- TLB tracker ---

// TLB cell layout: CAM cells [0,rows), payload [rows,2rows), spare
// [2rows,3rows). Widths are derived from tlb.ClassifyCol so the class
// geometry can never drift from the injectable geometry.
type tlbProbe struct{ t *compTracker }

func newTLBTracker(tb *tlb.TLB, now func() uint64) *compTracker {
	rows := tb.Rows()
	var camW, payW, spareW int
	for col := 0; col < tlb.EntryBits; col++ {
		switch tlb.ClassifyCol(col) {
		case tlb.ColCAM:
			camW++
		case tlb.ColPayload:
			payW++
		default:
			spareW++
		}
	}
	t := &compTracker{name: tb.Name(), rows: rows, cols: tlb.EntryBits, now: now, target: tb}
	t.classes = []ClassProfile{
		{Name: "cam", Bits: uint64(rows * camW)},
		{Name: "payload", Bits: uint64(rows * payW)},
		{Name: "spare", Bits: uint64(rows * spareW)},
	}
	t.cells = make([]cell, 3*rows)
	for r := 0; r < rows; r++ {
		t.cells[r] = cell{class: 0, width: uint16(camW)}
		t.cells[rows+r] = cell{class: 1, width: uint16(payW)}
		t.cells[2*rows+r] = cell{class: 2, width: uint16(spareW)}
	}
	t.rowLive = tb.ValidAt
	tb.SetProbe(&tlbProbe{t: t})
	t.detach = func() { tb.SetProbe(nil) }
	return t
}

// OnTLBLookup implements tlb.Probe: the CAM compare consults valid + VPN
// of every entry; on a hit the hit entry's payload enters the datapath.
func (p *tlbProbe) OnTLBLookup(hit int) {
	for r := 0; r < p.t.rows; r++ {
		p.t.consume(r)
	}
	if hit >= 0 {
		p.t.consume(p.t.rows + hit)
	}
}

// OnTLBInsert implements tlb.Probe: the whole entry is overwritten.
func (p *tlbProbe) OnTLBInsert(row int) {
	p.t.define(row)
	p.t.define(p.t.rows + row)
	p.t.define(2*p.t.rows + row)
}

// OnTLBInvalidate implements tlb.Probe: every entry is cleared.
func (p *tlbProbe) OnTLBInvalidate() {
	for i := range p.t.cells {
		p.t.define(i)
	}
}

// --- register-file tracker ---

// RegFile cell layout: data cells [0,rows) (32 bits each), ready cells
// [rows,2rows).
type regProbe struct{ t *compTracker }

func newRegTracker(rf *cpu.RegFile, now func() uint64) *compTracker {
	rows := rf.Rows()
	t := &compTracker{name: rf.Name(), rows: rows, cols: rf.Cols(), now: now, target: rf}
	t.classes = []ClassProfile{
		{Name: "data", Bits: uint64(rows) * 32},
		{Name: "ready", Bits: uint64(rows)},
	}
	t.cells = make([]cell, 2*rows)
	for r := 0; r < rows; r++ {
		t.cells[r] = cell{class: 0, width: 32}
		t.cells[rows+r] = cell{class: 1, width: 1}
	}
	t.rowLive = rf.ReadyAt
	rf.SetProbe(&regProbe{t: t})
	t.detach = func() { rf.SetProbe(nil) }
	return t
}

// OnRegRead implements cpu.RegProbe.
func (p *regProbe) OnRegRead(row int) { p.t.consume(row) }

// OnRegReadyRead implements cpu.RegProbe.
func (p *regProbe) OnRegReadyRead(row int) { p.t.consume(p.t.rows + row) }

// OnRegWrite implements cpu.RegProbe: value and ready bit are rewritten.
func (p *regProbe) OnRegWrite(row int) {
	p.t.define(row)
	p.t.define(p.t.rows + row)
}

// OnRegAlloc implements cpu.RegProbe: reallocation rewrites the ready bit;
// the stale value survives until the producer writes.
func (p *regProbe) OnRegAlloc(row int) { p.t.define(p.t.rows + row) }

// --- profiler ---

// Profiler observes one fault-free run of a machine and accumulates the
// liveness profile of all six injectable structures. Use it as:
//
//	p := liveness.NewProfiler(m, golden.Cycles, windows)
//	out := m.RunObserved(limit, 0, nil, p.OnCycle)
//	profile := p.Finish(out.Cycles)
//
// Not safe for concurrent use; the profiled machine must be single-use
// like any other. Finish detaches every probe it installed.
type Profiler struct {
	total   uint64
	windows int
	next    int
	comps   []*compTracker
}

// NewProfiler attaches whole-structure trackers to every injectable
// structure of m. totalCycles is the expected golden run length (it places
// the occupancy window boundaries); windows is clamped to [1, MaxWindows].
func NewProfiler(m *sim.Machine, totalCycles uint64, windows int) *Profiler {
	if windows < 1 {
		windows = 1
	}
	if windows > MaxWindows {
		windows = MaxWindows
	}
	now := m.Core.Cycles
	p := &Profiler{total: totalCycles, windows: windows}
	// The paper's presentation order (core.Components), without importing
	// core: the component names come from the structures themselves.
	p.comps = []*compTracker{
		newCacheTracker(m.L1D, now),
		newCacheTracker(m.L1I, now),
		newCacheTracker(m.L2, now),
		newRegTracker(m.Core.RegFile(), now),
		newTLBTracker(m.DTLB, now),
		newTLBTracker(m.ITLB, now),
	}
	for _, ct := range p.comps {
		ct.occBP = make([]uint32, windows)
		if ct.hasDirty {
			ct.dirtyBP = make([]uint32, windows)
		}
		ct.rowBytes = (ct.rows + 7) / 8
		ct.rowValid = make([]byte, windows*ct.rowBytes)
	}
	return p
}

// boundary is the cycle at which window i closes: the run is split into
// `windows` equal spans of the expected total.
func (p *Profiler) boundary(i int) uint64 {
	return p.total * uint64(i+1) / uint64(p.windows)
}

// OnCycle is the sim.Machine.RunObserved per-cycle hook: one compare per
// cycle until the next window boundary, then a snapshot of every
// structure's occupancy and per-row valid bits. Snapshots use only
// probe-free accessors, so sampling never perturbs the access stream the
// trackers are recording.
func (p *Profiler) OnCycle(m *sim.Machine) {
	cyc := m.Core.Cycles()
	for p.next < p.windows && cyc >= p.boundary(p.next) {
		p.sample(p.next)
		p.next++
	}
}

func (p *Profiler) sample(win int) {
	for _, ct := range p.comps {
		st := StructState(ct.target)
		ct.occBP[win] = toBP(st.Occ)
		if ct.dirtyBP != nil {
			ct.dirtyBP[win] = toBP(st.Dirty)
		}
		base := win * ct.rowBytes
		for r := 0; r < ct.rows; r++ {
			if ct.rowLive(r) {
				ct.rowValid[base+r/8] |= 1 << (r % 8)
			}
		}
	}
}

// toBP converts a fraction to basis points (1/10000), the registry's
// integral-gauge convention.
func toBP(f float64) uint32 { return uint32(f*1e4 + 0.5) }

// Finish closes the profile at the run's actual end cycle: any windows the
// run never reached are filled with the final state, every open generation
// is banked, and the probes are detached. The caller stamps Workload and
// ImageHash before encoding.
func (p *Profiler) Finish(end uint64) *Profile {
	for p.next < p.windows {
		p.sample(p.next)
		p.next++
	}
	prof := &Profile{Cycles: end, Windows: p.windows}
	for _, ct := range p.comps {
		ct.detach()
		ct.finish(end)
		prof.Components = append(prof.Components, ComponentProfile{
			Name: ct.name, Rows: ct.rows, Cols: ct.cols,
			Classes: ct.classes, OccBP: ct.occBP, DirtyBP: ct.dirtyBP,
			RowValid: ct.rowValid,
		})
	}
	return prof
}
