package liveness

// State is a point-in-time occupancy sample of one injectable structure:
// the valid-entry fraction (all six structures expose one) and the dirty
// fraction (caches only).
type State struct {
	Occ      float64
	Dirty    float64
	HasOcc   bool
	HasDirty bool
}

// StructState samples a target's occupancy through its probe-free
// accessors. It is the one shared definition of "structure state at a
// cycle": the campaign's at-inject occupancy gauges and the profiler's
// window series both go through it, so the two can never disagree about
// what occupancy means.
func StructState(target any) State {
	var s State
	if o, ok := target.(interface{ Occupancy() float64 }); ok {
		s.Occ, s.HasOcc = o.Occupancy(), true
	}
	if d, ok := target.(interface{ DirtyFraction() float64 }); ok {
		s.Dirty, s.HasDirty = d.DirtyFraction(), true
	}
	return s
}
