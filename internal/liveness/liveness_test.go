package liveness

import (
	"testing"

	"mbusim/internal/cache"
	"mbusim/internal/cpu"
	"mbusim/internal/tlb"
)

// fakeLevel is a flat backing store so a cache under test can fill and
// write back without a real memory hierarchy. Fixed-size array: no
// allocations on the hot path, which the zero-alloc test depends on.
type fakeLevel struct {
	mem [1 << 16]byte
}

func (f *fakeLevel) ReadLine(pa uint32, dst []byte) int {
	copy(dst, f.mem[pa:])
	return 1
}

func (f *fakeLevel) WriteLine(pa uint32, src []byte) int {
	copy(f.mem[pa:], src)
	return 1
}

func testCache() *cache.Cache {
	return cache.New(cache.Config{
		Name: "L1D", Size: 256, Ways: 2, LineSize: 16, Latency: 1, PABits: 16,
	}, &fakeLevel{})
}

func TestLifeBucket(t *testing.T) {
	cases := []struct {
		d    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 38, LifeBuckets - 1}, {^uint64(0), LifeBuckets - 1},
	}
	for _, c := range cases {
		if got := lifeBucket(c.d); got != c.want {
			t.Errorf("lifeBucket(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

// TestCellAccounting pins the ACE and never-touched arithmetic on one
// 8-bit cell: a generation's ACE interval is write..last-read, the
// lifetime histogram records write..first-read, and the dead tail after
// the last event of any kind is never-touched.
func TestCellAccounting(t *testing.T) {
	var cyc uint64
	tr := &compTracker{
		now:     func() uint64 { return cyc },
		classes: []ClassProfile{{Name: "data", Bits: 8}},
		cells:   []cell{{class: 0, width: 8}},
	}
	cyc = 10
	tr.define(0)
	cyc = 15
	tr.consume(0) // first read: lifetime 5
	cyc = 20
	tr.consume(0) // extends the ACE interval to 10..20
	tr.finish(100)

	cl := &tr.classes[0]
	if cl.Defs != 1 || cl.Reads != 1 {
		t.Fatalf("defs=%d reads=%d, want 1/1", cl.Defs, cl.Reads)
	}
	if want := uint64((20 - 10) * 8); cl.AceBitCycles != want {
		t.Errorf("ace = %d, want %d", cl.AceBitCycles, want)
	}
	if want := uint64((100 - 20) * 8); cl.NeverBitCycles != want {
		t.Errorf("never = %d, want %d", cl.NeverBitCycles, want)
	}
	if cl.Life[lifeBucket(5)] != 1 {
		t.Errorf("lifetime 5 not recorded in bucket %d: %v", lifeBucket(5), cl.Life)
	}
}

// TestCellNeverReadIsDead: a write with no subsequent read earns no ACE
// credit, and the dead tail starts at the write.
func TestCellNeverReadIsDead(t *testing.T) {
	var cyc uint64
	tr := &compTracker{
		now:     func() uint64 { return cyc },
		classes: []ClassProfile{{Name: "data", Bits: 1}},
		cells:   []cell{{class: 0, width: 1}},
	}
	cyc = 30
	tr.define(0)
	tr.finish(100)
	cl := &tr.classes[0]
	if cl.AceBitCycles != 0 {
		t.Errorf("ace = %d for a never-read write, want 0", cl.AceBitCycles)
	}
	if want := uint64(100 - 30); cl.NeverBitCycles != want {
		t.Errorf("never = %d, want %d", cl.NeverBitCycles, want)
	}
	// A cell with no event at all is dead for the whole run.
	tr2 := &compTracker{
		now:     func() uint64 { return 0 },
		classes: []ClassProfile{{Name: "data", Bits: 1}},
		cells:   []cell{{class: 0, width: 1}},
	}
	tr2.finish(100)
	if got := tr2.classes[0].NeverBitCycles; got != 100 {
		t.Errorf("untouched cell never = %d, want 100", got)
	}
}

// TestRedefineBanksPreviousGeneration: overwriting a read value closes its
// ACE interval; overwriting an unread one discards it.
func TestRedefineBanksPreviousGeneration(t *testing.T) {
	var cyc uint64
	tr := &compTracker{
		now:     func() uint64 { return cyc },
		classes: []ClassProfile{{Name: "data", Bits: 1}},
		cells:   []cell{{class: 0, width: 1}},
	}
	cyc = 10
	tr.define(0)
	cyc = 14
	tr.consume(0)
	cyc = 25
	tr.define(0) // banks 10..14
	cyc = 40
	tr.define(0) // generation at 25 was never read: no ACE
	tr.finish(50)
	cl := &tr.classes[0]
	if want := uint64(14 - 10); cl.AceBitCycles != want {
		t.Errorf("ace = %d, want %d", cl.AceBitCycles, want)
	}
	if want := uint64(50 - 40); cl.NeverBitCycles != want {
		t.Errorf("never = %d, want %d", cl.NeverBitCycles, want)
	}
}

// TestCacheTrackerFanout drives a real cache under a tracker and checks
// the probe fan-out books the forensics event semantics: a lookup
// consults valid+tag of every way in the set, a fill defines the whole
// line, reads consume data bytes.
func TestCacheTrackerFanout(t *testing.T) {
	c := testCache()
	var cyc uint64
	tr := newCacheTracker(c, func() uint64 { return cyc })

	var buf [4]byte
	cyc = 5
	c.Read(0x0000, buf[:]) // miss: lookup, evict, fill, then data read
	cyc = 9
	c.Read(0x0000, buf[:]) // hit: lookup + data read
	tr.finish(20)

	classByName := func(name string) *ClassProfile {
		for i := range tr.classes {
			if tr.classes[i].Name == name {
				return &tr.classes[i]
			}
		}
		t.Fatalf("no class %q", name)
		return nil
	}
	valid, data := classByName("valid"), classByName("data")
	// Two lookups x 2 ways = 4 valid-bit consume events; the fill's define
	// resets the filled way's generation between them.
	if valid.Reads == 0 || data.Reads == 0 {
		t.Fatalf("lookup/read fan-out not recorded: valid.Reads=%d data.Reads=%d", valid.Reads, data.Reads)
	}
	// The fill defines 16 data-byte cells exactly once.
	if data.Defs != 16 {
		t.Errorf("data defs = %d, want 16 (one fill)", data.Defs)
	}
	// The filled line's data was read at cycle 5 (same cycle as the fill)
	// and again at 9: ACE interval 5..9 on 4 bytes read, each 8 bits wide.
	if want := uint64((9 - 5) * 8 * 4); data.AceBitCycles != want {
		t.Errorf("data ace = %d, want %d", data.AceBitCycles, want)
	}
	total := uint64(0)
	for i := range tr.classes {
		total += tr.classes[i].Bits
	}
	if want := uint64(tr.rows) * uint64(tr.cols); total != want {
		t.Errorf("class bits sum = %d, want rows*cols = %d", total, want)
	}
}

// TestTLBTrackerFanout: a lookup CAM-compares every entry and consumes the
// hit entry's payload; an insert defines all three cells of its row.
func TestTLBTrackerFanout(t *testing.T) {
	tb := tlb.New("DTLB", 8)
	var cyc uint64
	tr := newTLBTracker(tb, func() uint64 { return cyc })

	cyc = 3
	tb.Insert(5, 9, true, true)
	cyc = 7
	if tr9, ok := tb.Lookup(5); !ok || tr9.PFN != 9 {
		t.Fatalf("lookup(5) = %+v,%v", tr9, ok)
	}
	tr.finish(10)

	cam, pay := &tr.classes[0], &tr.classes[1]
	if cam.Defs != 1 || pay.Defs != 1 {
		t.Fatalf("insert defs cam=%d payload=%d, want 1/1", cam.Defs, pay.Defs)
	}
	// The lookup CAM-compared all 8 entries, so every entry's state is ACE
	// up to cycle 7: the inserted one from its insert at 3, the other seven
	// from their reset state at 0 (a flip of an invalid entry's CAM bits
	// before the compare could produce a false hit).
	camW := uint64(tr.cells[0].width)
	if want := (7-3)*camW + 7*(7-0)*camW; cam.AceBitCycles != want {
		t.Errorf("cam ace = %d, want %d", cam.AceBitCycles, want)
	}
	if want := uint64((7 - 3) * int(tr.cells[tr.rows].width)); pay.AceBitCycles != want {
		t.Errorf("payload ace = %d, want %d", pay.AceBitCycles, want)
	}
}

// TestRegTrackerFanout: writes define data+ready, reads consume them
// separately, alloc redefines only the ready bit.
func TestRegTrackerFanout(t *testing.T) {
	rf := cpu.NewRegFile(8)
	var cyc uint64
	tr := newRegTracker(rf, func() uint64 { return cyc })

	cyc = 2
	rf.Write(3, 42)
	cyc = 6
	rf.Val(3)
	cyc = 8
	rf.Alloc(3) // ready redefined; the stale value keeps its generation
	tr.finish(10)

	data, ready := &tr.classes[0], &tr.classes[1]
	if want := uint64((6 - 2) * 32); data.AceBitCycles != want {
		t.Errorf("data ace = %d, want %d", data.AceBitCycles, want)
	}
	if data.Defs != 1 || ready.Defs != 2 {
		t.Errorf("defs data=%d ready=%d, want 1/2", data.Defs, ready.Defs)
	}
}

// TestDetachedPathAllocFree pins the profiling-off cost, matching the
// forensics disabled-path guarantee: once Finish detaches the probes, the
// structure hot paths must not allocate — profiling off costs one nil
// pointer compare per probe site.
func TestDetachedPathAllocFree(t *testing.T) {
	c := testCache()
	tb := tlb.New("DTLB", 8)
	rf := cpu.NewRegFile(8)
	var cyc uint64
	trs := []*compTracker{
		newCacheTracker(c, func() uint64 { return cyc }),
		newTLBTracker(tb, func() uint64 { return cyc }),
		newRegTracker(rf, func() uint64 { return cyc }),
	}
	for _, tr := range trs {
		tr.detach()
	}
	var buf [4]byte
	c.Read(0x000, buf[:]) // warm up
	c.Write(0x004, buf[:])
	tb.Insert(5, 9, true, true)

	allocs := testing.AllocsPerRun(200, func() {
		c.Read(0x000, buf[:])
		c.Write(0x004, buf[:])
		c.Read(0x100, buf[:])
		tb.Lookup(5)
		tb.Lookup(999)
		tb.Insert(6, 10, true, true)
		rf.Ready(3)
		rf.Val(3)
		rf.Alloc(3)
		rf.Write(3, 42)
	})
	if allocs != 0 {
		t.Errorf("detached-path allocations = %v per run; want 0", allocs)
	}
}

// TestAttachedPathAllocFree: the tracker event paths themselves are
// allocation-free too — the profiler's per-event cost is pointer
// arithmetic into preallocated cell and class tables.
func TestAttachedPathAllocFree(t *testing.T) {
	c := testCache()
	tb := tlb.New("DTLB", 8)
	rf := cpu.NewRegFile(8)
	var cyc uint64
	now := func() uint64 { return cyc }
	newCacheTracker(c, now)
	newTLBTracker(tb, now)
	newRegTracker(rf, now)

	var buf [4]byte
	c.Read(0x000, buf[:]) // warm up
	c.Write(0x004, buf[:])
	tb.Insert(5, 9, true, true)

	allocs := testing.AllocsPerRun(200, func() {
		cyc++
		c.Read(0x000, buf[:])
		c.Write(0x004, buf[:])
		c.Read(0x100, buf[:])
		tb.Lookup(5)
		tb.Lookup(999)
		tb.Insert(6, 10, true, true)
		rf.Ready(3)
		rf.Val(3)
		rf.Alloc(3)
		rf.Write(3, 42)
	})
	if allocs != 0 {
		t.Errorf("attached-path allocations = %v per run; want 0", allocs)
	}
}
