package liveness

import (
	"reflect"
	"strings"
	"testing"
)

// testProfile builds a small, internally consistent profile by hand.
func testProfile() *Profile {
	p := &Profile{
		Workload: "toy",
		Cycles:   1000,
		Windows:  4,
	}
	p.ImageHash[0] = 0xab
	c := ComponentProfile{
		Name: "L1D", Rows: 8, Cols: 10,
		Classes: []ClassProfile{
			{Name: "valid", Bits: 8, AceBitCycles: 100, NeverBitCycles: 200, Defs: 3, Reads: 2},
			{Name: "data", Bits: 72, AceBitCycles: 4000, NeverBitCycles: 60000, Defs: 9, Reads: 7},
		},
		OccBP:    []uint32{0, 2500, 5000, 10000},
		DirtyBP:  []uint32{0, 0, 1250, 1250},
		RowValid: make([]byte, 4*1), // 4 windows x ceil(8/8) bytes
	}
	c.Classes[0].Life[3] = 2
	c.Classes[1].Life[0] = 5
	c.Classes[1].Life[7] = 2
	c.RowValid[2] = 0b0000_0101 // rows 0 and 2 valid in window 2
	p.Components = append(p.Components, c)
	return p
}

func TestProfileRoundTrip(t *testing.T) {
	p := testProfile()
	enc := p.Encode()
	got, err := DecodeProfile(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n  in:  %+v\n  out: %+v", p, got)
	}
	if enc2 := p.Encode(); !reflect.DeepEqual(enc, enc2) {
		t.Fatal("Encode is not deterministic")
	}
	if got.Key() != p.Key() {
		t.Fatal("Key changed across round trip")
	}
}

func TestProfileDerived(t *testing.T) {
	p := testProfile()
	c := p.Component("L1D")
	if c == nil || p.Component("nope") != nil {
		t.Fatal("Component lookup broken")
	}
	if got, want := c.TotalBits(), uint64(80); got != want {
		t.Fatalf("TotalBits = %d, want %d", got, want)
	}
	if got, want := p.AVF("L1D"), float64(4100)/float64(80*1000); got != want {
		t.Errorf("AVF = %v, want %v", got, want)
	}
	if got, want := p.NeverTouched("L1D"), float64(60200)/float64(80*1000); got != want {
		t.Errorf("NeverTouched = %v, want %v", got, want)
	}
	if !c.RowValidAt(2, 0) || c.RowValidAt(2, 1) || !c.RowValidAt(2, 2) {
		t.Error("RowValidAt does not match the bitmap")
	}
	// valid class: 2 lifetimes, both in bucket 3 (upper edge 8).
	if got := c.Classes[0].LifePercentile(50); got != 8 {
		t.Errorf("valid p50 = %d, want 8", got)
	}
	// data class: 5 same-cycle (bucket 0) + 2 in bucket 7; p50 lands in
	// bucket 0, p99 in bucket 7 (upper edge 128).
	if got := c.Classes[1].LifePercentile(50); got != 0 {
		t.Errorf("data p50 = %d, want 0", got)
	}
	if got := c.Classes[1].LifePercentile(99); got != 128 {
		t.Errorf("data p99 = %d, want 128", got)
	}
}

// TestDecodeRejectsCorruption drives every corruption class through the
// decoder: each must come back as a one-line error, never a panic or a
// silently wrong profile.
func TestDecodeRejectsCorruption(t *testing.T) {
	enc := testProfile().Encode()
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"empty", func(b []byte) []byte { return nil }, "truncated"},
		{"truncated header", func(b []byte) []byte { return b[:10] }, "truncated"},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-40] }, "hash mismatch"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "magic"},
		{"future version", func(b []byte) []byte { b[4] = 99; return b }, "format"},
		{"payload bit flip", func(b []byte) []byte { b[20] ^= 0x40; return b }, "hash mismatch"},
		{"trailer bit flip", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }, "hash mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mutate(append([]byte(nil), enc...))
			p, err := DecodeProfile(data)
			if err == nil {
				t.Fatalf("decoded a %s profile: %+v", tc.name, p)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestDecodeRejectsInconsistency re-encodes structurally broken profiles
// (valid container, invalid content) and checks validation catches them.
func TestDecodeRejectsInconsistency(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(p *Profile)
		wantSub string
	}{
		{"no workload", func(p *Profile) { p.Workload = "" }, "workload"},
		{"zero cycles", func(p *Profile) { p.Cycles = 0 }, "zero cycles"},
		{"class bits mismatch", func(p *Profile) { p.Components[0].Classes[0].Bits = 9 }, "classes cover"},
		{"ace over budget", func(p *Profile) { p.Components[0].Classes[0].AceBitCycles = 1 << 40 }, "budget"},
		{"occupancy over 100%", func(p *Profile) { p.Components[0].OccBP[1] = 10001 }, "10000"},
		{"bitmap length", func(p *Profile) { p.Components[0].RowValid = p.Components[0].RowValid[:3] }, "bitmap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := testProfile()
			tc.mutate(p)
			got, err := DecodeProfile(p.Encode())
			if err == nil {
				t.Fatalf("decoded an inconsistent profile: %+v", got)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}
