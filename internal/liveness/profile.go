package liveness

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"mbusim/internal/wire"
)

// ProfileFormat versions the profile container layout (magic, header,
// payload field order, hash trailer). Bump it on any encoding change; the
// decoder rejects every other version.
const ProfileFormat = 1

// MaxWindows bounds the occupancy window count a profile may carry, far
// above any useful resolution.
const MaxWindows = 4096

// profileMagic opens every encoded profile.
var profileMagic = [4]byte{'M', 'B', 'U', 'P'}

// Decoder bounds, far above any real machine configuration.
const (
	maxProfileComponents = 16
	maxProfileClasses    = 16
	maxProfileRows       = 1 << 22
	maxProfileCols       = 1 << 16
)

// ClassProfile aggregates one bit class (cache valid/dirty/tag/data, TLB
// cam/payload/spare, register data/ready) of one structure over the run.
type ClassProfile struct {
	Name string
	Bits uint64 // bits of this class in the structure
	// AceBitCycles sums, over every write..last-read generation of every
	// cell, the interval length times the cell width: the bit-cycles during
	// which a flip would have been consumed.
	AceBitCycles uint64
	// NeverBitCycles sums each cell's dead tail (run end minus its last
	// event of any kind) times the cell width: the bit-cycles during which
	// a flip would never have been touched again.
	NeverBitCycles uint64
	Defs           uint64 // overwrite events (generations opened)
	Reads          uint64 // first-consume events (generations read)
	// Life is the log2 histogram of write-to-first-consume latencies:
	// bucket 0 same-cycle, bucket b latencies in [2^(b-1), 2^b).
	Life [LifeBuckets]uint64
}

// LifePercentile returns the approximate p-th percentile (nearest-rank) of
// the class's first-consume lifetimes as the upper edge of its histogram
// bucket, in cycles; 0 when the class was never consumed.
func (c *ClassProfile) LifePercentile(pct int) uint64 {
	var total uint64
	for _, n := range c.Life {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := (uint64(pct)*total + 99) / 100
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for b, n := range c.Life {
		cum += n
		if cum >= rank {
			if b == 0 {
				return 0
			}
			return uint64(1) << uint(b)
		}
	}
	return uint64(1) << (LifeBuckets - 1)
}

// ComponentProfile is one structure's liveness record.
type ComponentProfile struct {
	Name string
	Rows int
	Cols int
	// Classes partition the Rows x Cols geometry; their Bits sum to
	// Rows*Cols.
	Classes []ClassProfile
	// OccBP is the valid-entry fraction at each window boundary, in basis
	// points; DirtyBP the dirty fraction (caches only, else nil).
	OccBP   []uint32
	DirtyBP []uint32
	// RowValid is the per-row valid bitmap at each window boundary,
	// window-major: ceil(Rows/8) bytes per window, row r of window w at
	// byte w*ceil(Rows/8)+r/8, bit r%8.
	RowValid []byte
}

// TotalBits is the structure's injectable bit count.
func (c *ComponentProfile) TotalBits() uint64 { return uint64(c.Rows) * uint64(c.Cols) }

// Ace sums ACE bit-cycles across classes.
func (c *ComponentProfile) Ace() uint64 {
	var n uint64
	for i := range c.Classes {
		n += c.Classes[i].AceBitCycles
	}
	return n
}

// Never sums never-touched bit-cycles across classes.
func (c *ComponentProfile) Never() uint64 {
	var n uint64
	for i := range c.Classes {
		n += c.Classes[i].NeverBitCycles
	}
	return n
}

// RowValidAt reports row's valid bit in the given window's bitmap.
func (c *ComponentProfile) RowValidAt(win, row int) bool {
	rb := (c.Rows + 7) / 8
	return c.RowValid[win*rb+row/8]>>(row%8)&1 == 1
}

// LifePercentile returns the component-wide first-consume lifetime
// percentile, merging every class's histogram.
func (c *ComponentProfile) LifePercentile(pct int) uint64 {
	var merged ClassProfile
	for i := range c.Classes {
		for b, n := range c.Classes[i].Life {
			merged.Life[b] += n
		}
	}
	return merged.LifePercentile(pct)
}

// Profile is one workload's liveness record over its golden run: the
// versioned, deterministic artifact gefin -profile writes and the
// analyzers read.
type Profile struct {
	Workload   string
	ImageHash  [32]byte // workloads.HashImage of the compiled program
	Cycles     uint64   // golden run length
	Windows    int
	Components []ComponentProfile
}

// Component returns the named component's record, or nil.
func (p *Profile) Component(name string) *ComponentProfile {
	for i := range p.Components {
		if p.Components[i].Name == name {
			return &p.Components[i]
		}
	}
	return nil
}

// AVF returns the analytical (ACE) AVF of the named component: live
// bit-cycles over total bit-cycles. 0 for an unknown component.
func (p *Profile) AVF(comp string) float64 {
	c := p.Component(comp)
	if c == nil || p.Cycles == 0 {
		return 0
	}
	return float64(c.Ace()) / (float64(c.TotalBits()) * float64(p.Cycles))
}

// NeverTouched returns the analytical probability that a fault injected
// uniformly in space and time lands on state that is never touched again:
// dead bit-cycles over total bit-cycles. It is the profile-side twin of
// the forensics `never-touched` fate fraction.
func (p *Profile) NeverTouched(comp string) float64 {
	c := p.Component(comp)
	if c == nil || p.Cycles == 0 {
		return 0
	}
	return float64(c.Never()) / (float64(c.TotalBits()) * float64(p.Cycles))
}

// Key returns the profile's content address: a digest of everything the
// profile is a pure function of (format, workload, compiled image, window
// count). Any party holding the same source and configuration computes the
// same key, mirroring the checkpoint-artifact identity of PR 7.
func (p *Profile) Key() string {
	h := sha256.New()
	var ver [8]byte
	binary.LittleEndian.PutUint64(ver[:], ProfileFormat)
	h.Write(ver[:])
	h.Write([]byte(p.Workload))
	h.Write(p.ImageHash[:])
	var wb [8]byte
	binary.LittleEndian.PutUint64(wb[:], uint64(p.Windows))
	h.Write(wb[:])
	return hex.EncodeToString(h.Sum(nil))
}

// Encode serializes the profile: magic, format version, payload, then a
// sha256 trailer over everything before it, so corruption anywhere in the
// bytes is caught before any field is trusted. Every slice is written in
// its stored order and the profiler fills them deterministically, so equal
// runs encode to equal bytes.
func (p *Profile) Encode() []byte {
	var w wire.Writer
	w.String(p.Workload)
	w.Blob(p.ImageHash[:])
	w.U64(p.Cycles)
	w.Int(p.Windows)
	w.Int(len(p.Components))
	for i := range p.Components {
		c := &p.Components[i]
		w.String(c.Name)
		w.Int(c.Rows)
		w.Int(c.Cols)
		w.Int(len(c.Classes))
		for j := range c.Classes {
			cl := &c.Classes[j]
			w.String(cl.Name)
			w.U64(cl.Bits)
			w.U64(cl.AceBitCycles)
			w.U64(cl.NeverBitCycles)
			w.U64(cl.Defs)
			w.U64(cl.Reads)
			for _, n := range cl.Life {
				w.U64(n)
			}
		}
		w.Int(len(c.OccBP))
		for _, v := range c.OccBP {
			w.U32(v)
		}
		w.Int(len(c.DirtyBP))
		for _, v := range c.DirtyBP {
			w.U32(v)
		}
		w.Blob(c.RowValid)
	}
	payload := w.Bytes()

	out := make([]byte, 0, len(profileMagic)+8+len(payload)+sha256.Size)
	out = append(out, profileMagic[:]...)
	out = binary.LittleEndian.AppendUint64(out, ProfileFormat)
	out = append(out, payload...)
	sum := sha256.Sum256(out)
	return append(out, sum[:]...)
}

// DecodeProfile parses and verifies an encoded profile. It rejects bad
// magic, an unknown format version, a content hash that does not match the
// bytes, and any structural inconsistency — a caller that gets a non-nil
// Profile back holds exactly what Encode was given.
func DecodeProfile(data []byte) (*Profile, error) {
	headerLen := len(profileMagic) + 8
	if len(data) < headerLen+sha256.Size {
		return nil, fmt.Errorf("liveness: profile truncated (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:4], profileMagic[:]) {
		return nil, fmt.Errorf("liveness: bad profile magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint64(data[4:12]); v != ProfileFormat {
		return nil, fmt.Errorf("liveness: unsupported profile format %d (want %d)", v, ProfileFormat)
	}
	body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], trailer) {
		return nil, fmt.Errorf("liveness: profile content hash mismatch")
	}

	r := wire.NewReader(body[headerLen:])
	p := &Profile{Workload: r.String()}
	ih := r.Blob()
	p.Cycles = r.U64()
	p.Windows = r.Int()
	nComps := r.Int()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("liveness: profile header: %w", err)
	}
	if len(ih) != len(p.ImageHash) {
		return nil, fmt.Errorf("liveness: profile image hash is %d bytes", len(ih))
	}
	copy(p.ImageHash[:], ih)
	if p.Windows < 1 || p.Windows > MaxWindows {
		return nil, fmt.Errorf("liveness: profile window count %d out of range", p.Windows)
	}
	if nComps < 1 || nComps > maxProfileComponents {
		return nil, fmt.Errorf("liveness: profile component count %d out of range", nComps)
	}
	p.Components = make([]ComponentProfile, nComps)
	for i := range p.Components {
		c := &p.Components[i]
		c.Name = r.String()
		c.Rows = r.Int()
		c.Cols = r.Int()
		nClasses := r.Int()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("liveness: profile component %d: %w", i, err)
		}
		if c.Rows < 1 || c.Rows > maxProfileRows || c.Cols < 1 || c.Cols > maxProfileCols {
			return nil, fmt.Errorf("liveness: component %q geometry %dx%d out of range", c.Name, c.Rows, c.Cols)
		}
		if nClasses < 1 || nClasses > maxProfileClasses {
			return nil, fmt.Errorf("liveness: component %q class count %d out of range", c.Name, nClasses)
		}
		c.Classes = make([]ClassProfile, nClasses)
		for j := range c.Classes {
			cl := &c.Classes[j]
			cl.Name = r.String()
			cl.Bits = r.U64()
			cl.AceBitCycles = r.U64()
			cl.NeverBitCycles = r.U64()
			cl.Defs = r.U64()
			cl.Reads = r.U64()
			for b := range cl.Life {
				cl.Life[b] = r.U64()
			}
		}
		nOcc := r.Int()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("liveness: component %q classes: %w", c.Name, err)
		}
		if nOcc != p.Windows {
			return nil, fmt.Errorf("liveness: component %q has %d occupancy windows, want %d", c.Name, nOcc, p.Windows)
		}
		c.OccBP = make([]uint32, nOcc)
		for k := range c.OccBP {
			c.OccBP[k] = r.U32()
		}
		nDirty := r.Int()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("liveness: component %q occupancy: %w", c.Name, err)
		}
		if nDirty != 0 && nDirty != p.Windows {
			return nil, fmt.Errorf("liveness: component %q has %d dirty windows, want 0 or %d", c.Name, nDirty, p.Windows)
		}
		if nDirty > 0 {
			c.DirtyBP = make([]uint32, nDirty)
			for k := range c.DirtyBP {
				c.DirtyBP[k] = r.U32()
			}
		}
		c.RowValid = r.Blob()
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("liveness: profile payload: %w", err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("liveness: %d trailing bytes after profile payload", r.Len())
	}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// validate checks the profile's internal consistency: class geometry sums,
// bit-cycle bounds, window series lengths and basis-point ranges.
func (p *Profile) validate() error {
	if p.Workload == "" {
		return fmt.Errorf("liveness: profile has no workload name")
	}
	if p.Cycles == 0 {
		return fmt.Errorf("liveness: profile covers zero cycles")
	}
	for i := range p.Components {
		c := &p.Components[i]
		if c.Name == "" {
			return fmt.Errorf("liveness: component %d has no name", i)
		}
		total := c.TotalBits()
		budget := total * p.Cycles
		var classBits uint64
		for j := range c.Classes {
			cl := &c.Classes[j]
			classBits += cl.Bits
			if limit := cl.Bits * p.Cycles; cl.AceBitCycles > limit || cl.NeverBitCycles > limit {
				return fmt.Errorf("liveness: %s/%s bit-cycles exceed the class budget", c.Name, cl.Name)
			}
		}
		if classBits != total {
			return fmt.Errorf("liveness: %s classes cover %d bits of a %dx%d geometry", c.Name, classBits, c.Rows, c.Cols)
		}
		if c.Ace() > budget || c.Never() > budget {
			return fmt.Errorf("liveness: %s bit-cycles exceed the run budget", c.Name)
		}
		for _, v := range c.OccBP {
			if v > 10000 {
				return fmt.Errorf("liveness: %s occupancy %d exceeds 10000 bp", c.Name, v)
			}
		}
		for _, v := range c.DirtyBP {
			if v > 10000 {
				return fmt.Errorf("liveness: %s dirty fraction %d exceeds 10000 bp", c.Name, v)
			}
		}
		if want := p.Windows * ((c.Rows + 7) / 8); len(c.RowValid) != want {
			return fmt.Errorf("liveness: %s row bitmap is %d bytes, want %d", c.Name, len(c.RowValid), want)
		}
	}
	return nil
}
