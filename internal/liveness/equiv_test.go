package liveness_test

import (
	"context"
	"testing"

	"mbusim/internal/core"
	"mbusim/internal/forensics"
	"mbusim/internal/telemetry"
	"mbusim/internal/workloads"
)

// TestNeverTouchedMatchesForensics is the closing-the-loop check: the
// analytical never-touched fraction from one fault-free profiled run must
// agree with the forensics-measured `never-touched` fate fraction of a
// real injection campaign on the same workload. The two measure the same
// quantity through disjoint machinery — the profiler integrates dead
// bit-cycles over the whole structure, forensics watches each injected
// mask for events — so agreement within sampling noise validates both.
//
// Cache components are used because their column count (~500+) makes the
// mask generator's slight under-weighting of edge rows/cols negligible;
// the tolerance of 5 percentage points covers binomial noise at the
// sample counts used (the campaign is seeded, so the measured fractions
// are deterministic and this test cannot flake).
func TestNeverTouchedMatchesForensics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 400-sample forensics campaign per component")
	}
	const (
		workload = "stringSearch"
		samples  = 400
		seed     = 7
	)
	w, err := workloads.ByName(workload)
	if err != nil {
		t.Fatal(err)
	}
	p, err := w.Profile(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []string{"L1D", "L1I", "L2"} {
		t.Run(comp, func(t *testing.T) {
			analytic := p.NeverTouched(comp)
			tel := telemetry.NewCampaign(nil)
			spec := core.Spec{
				Workload: workload, Component: comp, Faults: 1,
				Samples: samples, Seed: seed, Forensics: forensics.ModeFast,
			}
			err := core.RunGridWithTelemetry(context.Background(), []core.Spec{spec}, 1,
				func(int, *core.Result) {}, tel)
			if err != nil {
				t.Fatal(err)
			}
			s := tel.Summarize()
			var total int64
			for _, n := range s.ByFate {
				total += n
			}
			if total == 0 {
				t.Fatal("campaign recorded no fates")
			}
			measured := float64(s.ByFate["never-touched"]) / float64(total)
			t.Logf("%s: analytical %.4f, measured %.4f (n=%d)", comp, analytic, measured, total)
			if diff := analytic - measured; diff > 0.05 || diff < -0.05 {
				t.Errorf("%s never-touched: analytical %.4f vs measured %.4f differ by %.2f pp (tolerance 5 pp)",
					comp, analytic, measured, 100*diff)
			}
		})
	}
}
