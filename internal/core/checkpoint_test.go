package core

import (
	"bytes"
	"context"
	"math/rand/v2"
	"reflect"
	"testing"

	"mbusim/internal/forensics"
	"mbusim/internal/sim"
	"mbusim/internal/workloads"
)

// TestCheckpointEquivalence is the acceptance test for checkpoint-based
// fast-forwarding: for every registered workload and several injection
// cycles, the checkpointed path and the from-scratch path must produce
// byte-identical Outcomes — cycles, stdout, stop kind, exit code, all of
// it — both fault-free and under a fixed injected mask. Execution is
// deterministic (TestDeterminism, TestGoldenDeterminism), so equivalence
// is checkable exactly.
func TestCheckpointEquivalence(t *testing.T) {
	fractions := []float64{0.15, 0.55, 0.95}
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			golden, err := w.Reference()
			if err != nil {
				t.Fatal(err)
			}
			limit := 4 * golden.Cycles
			for fi, frac := range fractions {
				injectAt := uint64(frac * float64(golden.Cycles))

				// Fault-free: fast-forward and run out; must reproduce the
				// golden outcome a scratch machine produces.
				scratch, err := w.NewMachine()
				if err != nil {
					t.Fatal(err)
				}
				want := scratch.Run(limit, 0, nil)
				ff, ck, err := w.MachineAt(injectAt)
				if err != nil {
					t.Fatal(err)
				}
				if ck.Cycle > injectAt {
					t.Fatalf("MachineAt(%d) overshot to cycle %d", injectAt, ck.Cycle)
				}
				got := ff.Run(limit, 0, nil)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("fault-free outcome diverged at injectAt=%d:\n got %+v\nwant %+v", injectAt, got, want)
				}

				// Faulted: the same fixed mask applied at the same cycle on
				// both paths. L1D with a 3-bit cluster reaches data, tag and
				// state bits across the fractions.
				maskSeed := uint64(1000*fi) + 17
				inject := func(m *sim.Machine) {
					target, err := TargetFor(m, CompL1D)
					if err != nil {
						panic(err)
					}
					rng := rand.New(rand.NewPCG(maskSeed, 99))
					GenerateMask(rng, target.Rows(), target.Cols(), 3, DefaultCluster).Apply(target)
				}
				scratch2, err := w.NewMachine()
				if err != nil {
					t.Fatal(err)
				}
				wantF := scratch2.Run(limit, injectAt, inject)
				ff2, _, err := w.MachineAt(injectAt)
				if err != nil {
					t.Fatal(err)
				}
				gotF := ff2.Run(limit, injectAt, inject)
				if !reflect.DeepEqual(gotF, wantF) {
					t.Fatalf("faulted outcome diverged at injectAt=%d:\n got %+v\nwant %+v", injectAt, gotF, wantF)
				}
			}
		})
	}
}

// TestRunCheckpointedMatchesScratch runs the full campaign cell machinery
// both ways on one cell and demands identical classified counts.
func TestRunCheckpointedMatchesScratch(t *testing.T) {
	base := Spec{
		Workload: "stringSearch", Component: CompL1D, Faults: 2,
		Samples: 24, Seed: 11,
	}
	ck, err := Run(context.Background(), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	scratchSpec := base
	scratchSpec.NoCheckpoints = true
	sc, err := Run(context.Background(), scratchSpec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Counts != sc.Counts {
		t.Fatalf("classified counts diverge: checkpointed=%v scratch=%v", ck.Counts, sc.Counts)
	}
	if ck.GoldenCycles != sc.GoldenCycles || ck.TargetBits != sc.TargetBits {
		t.Fatalf("cell metadata diverges: %+v vs %+v", ck, sc)
	}
}

// TestForceSpanningImpossibleErrors: a 1-bit fault cannot span a 3x3
// cluster; the campaign must fail loudly instead of silently running
// non-spanning masks.
func TestForceSpanningImpossibleErrors(t *testing.T) {
	_, err := Run(context.Background(), Spec{
		Workload: "stringSearch", Component: CompL1D, Faults: 1,
		Samples: 2, Seed: 1, ForceSpanning: true,
	}, nil)
	if err == nil {
		t.Fatal("expected an error for an unsatisfiable spanning constraint")
	}
}

// TestTargetBitsPopulation: the Leveugle margin must use the target
// structure's real bit count, not a hardcoded approximation.
func TestTargetBitsPopulation(t *testing.T) {
	res, err := Run(context.Background(), Spec{
		Workload: "stringSearch", Component: CompDTLB, Faults: 1,
		Samples: 4, Seed: 2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetBits != 32*32 { // 32 entries x 32 bits (Table VIII)
		t.Fatalf("DTLB TargetBits = %d, want 1024", res.TargetBits)
	}
	if got, want := res.population(), float64(res.GoldenCycles)*1024; got != want {
		t.Fatalf("population = %g, want %g", got, want)
	}
	// Legacy results without TargetBits keep the old approximation.
	legacy := &Result{GoldenCycles: 100}
	if got := legacy.population(); got != 100*1e6 {
		t.Fatalf("legacy population = %g, want %g", got, 100*1e6)
	}
}

// TestCampaignPathEquivalence pins the three machine-management paths of
// the sample loop against each other at full campaign granularity: the
// default path (checkpoint fast-forward + per-worker delta-restored
// machine + convergence exit), the NoDelta path (checkpoint fast-forward
// into a fresh machine per sample) and the NoCheckpoints path (replay from
// cycle 0, no convergence exit) must classify every sample identically.
// L1I cells exercise the predecode-invalidation rule across all paths:
// I-side corruption must force the slow decode path identically whether
// the machine was built fresh or rewound by delta restore. The delta and
// full-restore results must also be byte-identical once serialized.
func TestCampaignPathEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, comp := range []string{CompL1I, CompL1D} {
		base := Spec{Workload: "stringSearch", Component: comp, Faults: 2, Samples: 24, Seed: 11}

		def, err := Run(ctx, base, nil)
		if err != nil {
			t.Fatal(err)
		}
		noDelta := base
		noDelta.NoDelta = true
		nd, err := Run(ctx, noDelta, nil)
		if err != nil {
			t.Fatal(err)
		}
		noCkpt := base
		noCkpt.NoCheckpoints = true
		nc, err := Run(ctx, noCkpt, nil)
		if err != nil {
			t.Fatal(err)
		}

		if def.Counts != nd.Counts {
			t.Fatalf("%s: delta %v != full-restore %v", comp, def.Counts, nd.Counts)
		}
		if def.Counts != nc.Counts {
			t.Fatalf("%s: delta %v != no-checkpoints %v", comp, def.Counts, nc.Counts)
		}

		// Byte-identical serialization: the NoDelta knob is the only
		// intended difference between the two results.
		nd.Spec.NoDelta = false
		rsA, rsB := NewResultSet(), NewResultSet()
		rsA.Add(def)
		rsB.Add(nd)
		encA, err := rsA.Encode()
		if err != nil {
			t.Fatal(err)
		}
		encB, err := rsB.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encA, encB) {
			t.Fatalf("%s: delta and full-restore campaigns encode differently:\n%s\n---\n%s", comp, encA, encB)
		}

		// Forensics rides the same machine paths (plus probes and, in full
		// mode, a lockstep shadow); classified outcomes must not change.
		fast := base
		fast.Forensics = forensics.ModeFast
		ff, err := Run(ctx, fast, nil)
		if err != nil {
			t.Fatal(err)
		}
		fastND := noDelta
		fastND.Forensics = forensics.ModeFast
		fn, err := Run(ctx, fastND, nil)
		if err != nil {
			t.Fatal(err)
		}
		if ff.Counts != def.Counts || fn.Counts != def.Counts {
			t.Fatalf("%s: forensics changed classifications: off %v fast %v fast-nodelta %v",
				comp, def.Counts, ff.Counts, fn.Counts)
		}
	}
}
