package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"mbusim/internal/telemetry"
)

// TestSampleWorkerPanicBecomesCellError pins the panic-recovery contract:
// a panicking sample fails its cell with one clean error through the Run
// error path (and bumps gefin_worker_panics_total) instead of aborting the
// process.
func TestSampleWorkerPanicBecomesCellError(t *testing.T) {
	testSampleHook = func(spec Spec, sample int) {
		if sample == 2 {
			panic("injected test panic")
		}
	}
	defer func() { testSampleHook = nil }()

	tel := telemetry.NewCampaign(nil)
	spec := Spec{Workload: "stringSearch", Component: CompL1D, Faults: 1,
		Samples: 8, Seed: 5}
	_, err := run(context.Background(), spec, nil, 2, tel)
	if err == nil {
		t.Fatal("panicking sample did not fail the cell")
	}
	if !strings.Contains(err.Error(), "panicked") ||
		!strings.Contains(err.Error(), "injected test panic") ||
		!strings.Contains(err.Error(), "L1D/stringSearch/1-bit sample 2") {
		t.Fatalf("panic error lacks context: %v", err)
	}
	if got := tel.Registry.Counter(telemetry.MetricWorkerPanics).Value(); got != 1 {
		t.Fatalf("panic counter = %d, want 1", got)
	}
}

// TestSampleWorkerPanicSurfacesThroughRunGrid: the same panic inside a
// grid fails only that cell's dispatch — RunGrid returns the error once
// and other cells' completed results stay valid.
func TestSampleWorkerPanicSurfacesThroughRunGrid(t *testing.T) {
	testSampleHook = func(spec Spec, sample int) {
		if spec.Faults == 2 {
			panic("cell-2 poison")
		}
	}
	defer func() { testSampleHook = nil }()

	specs := []Spec{
		{Workload: "stringSearch", Component: CompL1D, Faults: 1, Samples: 3, Seed: 5},
		{Workload: "stringSearch", Component: CompL1D, Faults: 2, Samples: 3, Seed: 5},
	}
	delivered := map[int]*Result{}
	err := RunGrid(context.Background(), specs, 1, func(i int, r *Result) {
		delivered[i] = r
	})
	if err == nil || !strings.Contains(err.Error(), "cell-2 poison") {
		t.Fatalf("RunGrid error = %v, want the poisoned cell's panic", err)
	}
	if r, ok := delivered[0]; ok && r.Samples() != 3 {
		t.Fatalf("healthy cell delivered incomplete: %+v", r)
	}
	if _, ok := delivered[1]; ok {
		t.Fatal("poisoned cell must not be delivered")
	}
}

// TestWallTimeoutClassifiesTimeout: a wall-clock watchdog that cannot be
// met classifies every sample EffectTimeout — the sample completes and is
// recorded like any other, it does not hang or kill the cell.
func TestWallTimeoutClassifiesTimeout(t *testing.T) {
	// A 1ns budget is always already spent by the watchdog's first check,
	// regardless of machine speed: the deterministic stand-in for a sample
	// whose wall-clock time explodes.
	spec := Spec{Workload: "stringSearch", Component: CompL1D, Faults: 1,
		Samples: 4, Seed: 5, WallTimeout: time.Nanosecond}
	res, err := Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Counts[EffectTimeout]; got != spec.Samples {
		t.Fatalf("wall-expired samples classified %v, want all %d timeout", res.Counts, spec.Samples)
	}
}

// TestWallTimeoutGenerousIsInvisible: a watchdog the samples easily meet
// changes nothing — outcomes are identical to an unwatched run.
func TestWallTimeoutGenerousIsInvisible(t *testing.T) {
	base := Spec{Workload: "stringSearch", Component: CompL1D, Faults: 1,
		Samples: 6, Seed: 11}
	ref, err := Run(context.Background(), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	watched := base
	watched.WallTimeout = time.Hour
	got, err := Run(context.Background(), watched, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counts != ref.Counts {
		t.Fatalf("generous watchdog changed outcomes: %v vs %v", got.Counts, ref.Counts)
	}
}

// TestWallTimeoutValidated: a negative watchdog is a configuration error.
func TestWallTimeoutValidated(t *testing.T) {
	spec := Spec{Workload: "stringSearch", Component: CompL1D, Faults: 1,
		Samples: 1, Seed: 1, WallTimeout: -time.Second}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "wall timeout") {
		t.Fatalf("Validate = %v, want wall-timeout error", err)
	}
	if _, err := Run(context.Background(), spec, nil); err == nil {
		t.Fatal("Run accepted a negative wall timeout")
	}
}
