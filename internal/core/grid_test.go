package core

import (
	"bytes"
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mbusim/internal/telemetry"
)

// TestSplitWorkers pins the scheduler's core split, in particular that the
// cell-worker count is clamped to the grid size BEFORE the per-cell sample
// share is computed: a grid smaller than the machine redistributes the
// freed cores to sample workers instead of leaving them idle.
func TestSplitWorkers(t *testing.T) {
	for _, tc := range []struct {
		name                   string
		parallel, cells, procs int
		wantCells, wantSamples int
	}{
		// The regression case: 2 cells on 16 cores must run 2 cells x 8
		// sample workers, not 2 x 1.
		{"small grid big machine", 0, 2, 16, 2, 8},
		{"explicit parallel clamped by grid", 16, 2, 16, 2, 8},
		{"grid larger than machine", 0, 100, 8, 8, 1},
		{"explicit split", 4, 100, 16, 4, 4},
		{"parallel beyond cores", 32, 100, 8, 32, 1},
		{"one cell takes everything", 0, 1, 12, 1, 12},
		{"empty grid", 0, 0, 8, 0, 0},
		{"uneven division rounds down", 3, 100, 16, 3, 5},
	} {
		gotCells, gotSamples := splitWorkers(tc.parallel, tc.cells, tc.procs)
		if gotCells != tc.wantCells || gotSamples != tc.wantSamples {
			t.Errorf("%s: splitWorkers(%d, %d, %d) = (%d, %d), want (%d, %d)",
				tc.name, tc.parallel, tc.cells, tc.procs,
				gotCells, gotSamples, tc.wantCells, tc.wantSamples)
		}
	}
}

// TestProgressReportsEachDoneOnce pins the Progress contract: done values
// are each delivered exactly once (the callback runs concurrently from
// several workers, so ascending order is NOT guaranteed — only coverage).
func TestProgressReportsEachDoneOnce(t *testing.T) {
	const samples = 24
	var (
		mu    sync.Mutex
		dones []int
	)
	_, err := Run(context.Background(), Spec{
		Workload: "stringSearch", Component: CompL1D, Faults: 1,
		Samples: samples, Seed: 5,
	}, func(done, total int) {
		if total != samples {
			t.Errorf("progress total = %d, want %d", total, samples)
		}
		mu.Lock()
		dones = append(dones, done)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != samples {
		t.Fatalf("progress called %d times, want %d", len(dones), samples)
	}
	sort.Ints(dones)
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done values not a permutation of 1..%d: %v", samples, dones)
		}
	}
}

// TestCellFuncSerializedAndComplete pins the CellFunc contract: onCell
// invocations never overlap even with parallel cell workers (callers may
// flush shared state without locking), every cell index is delivered
// exactly once, and the completed count observed inside the callback is
// monotone.
func TestCellFuncSerializedAndComplete(t *testing.T) {
	specs := resumeGrid(4) // 8 cells over the two fastest workloads
	var (
		inCallback atomic.Int32
		completed  int
		seen       = make(map[int]bool)
	)
	err := RunGrid(context.Background(), specs, 4, func(i int, res *Result) {
		if inCallback.Add(1) != 1 {
			t.Error("onCell invoked concurrently")
		}
		// Hold the callback long enough that a second concurrent delivery
		// would be caught by the guard above.
		time.Sleep(2 * time.Millisecond)
		if seen[i] {
			t.Errorf("cell %d delivered twice", i)
		}
		seen[i] = true
		completed++
		if res == nil || res.Samples() != specs[i].Samples {
			t.Errorf("cell %d delivered incomplete: %+v", i, res)
		}
		inCallback.Add(-1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if completed != len(specs) {
		t.Fatalf("delivered %d cells, want %d", completed, len(specs))
	}
}

// TestGridTelemetry runs a small real grid with telemetry enabled and
// checks the registry and trace agree with the results: every sample is
// counted under its outcome, the trace holds cells x samples records
// ordered by sample index within each cell, and checkpoint usage is
// accounted.
func TestGridTelemetry(t *testing.T) {
	specs := []Spec{
		{Workload: "stringSearch", Component: CompL1D, Faults: 1, Samples: 6, Seed: 9},
		{Workload: "stringSearch", Component: CompDTLB, Faults: 2, Samples: 6, Seed: 9},
	}
	var buf bytes.Buffer
	tel := telemetry.NewCampaign(telemetry.NewTracer(&buf))
	results := map[int]*Result{}
	if err := RunGridWithTelemetry(context.Background(), specs, 2, func(i int, r *Result) {
		results[i] = r
	}, tel); err != nil {
		t.Fatal(err)
	}

	s := tel.Summarize()
	if s.Samples != 12 || s.Cells != 2 || s.CellsExpected != 2 || s.SamplesExpected != 12 {
		t.Fatalf("summary = %+v", s)
	}
	wantOutcomes := map[string]int64{}
	for _, r := range results {
		for _, e := range Effects() {
			if n := r.Counts[e]; n > 0 {
				wantOutcomes[e.Label()] += int64(n)
			}
		}
	}
	for outcome, want := range wantOutcomes {
		if got := s.ByOutcome[outcome]; got != want {
			t.Errorf("outcome %q counted %d times, want %d", outcome, got, want)
		}
	}
	if s.CheckpointHits+s.CheckpointMiss != 12 {
		t.Errorf("checkpoint accounting %d+%d != 12", s.CheckpointHits, s.CheckpointMiss)
	}

	recs, err := telemetry.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 12 {
		t.Fatalf("trace has %d records, want 12", len(recs))
	}
	for i := 0; i < len(recs); i += 6 {
		cell := recs[i : i+6]
		for j, rec := range cell {
			if rec.Component != cell[0].Component || rec.Sample != j {
				t.Fatalf("cell records interleaved or unordered at %d: %+v", i+j, rec)
			}
			if rec.Seed != 9 || rec.MaskBits < 1 || rec.DurationNS < 0 {
				t.Fatalf("implausible trace record: %+v", rec)
			}
			if rec.Checkpoint < 0 {
				t.Fatalf("checkpointed run recorded checkpoint %d", rec.Checkpoint)
			}
		}
	}

	// The -nockpt path records checkpoint -1 and counts as a miss.
	buf.Reset()
	tel2 := telemetry.NewCampaign(telemetry.NewTracer(&buf))
	nockpt := []Spec{{Workload: "stringSearch", Component: CompL1D, Faults: 1,
		Samples: 3, Seed: 9, NoCheckpoints: true}}
	if err := RunGridWithTelemetry(context.Background(), nockpt, 1, nil, tel2); err != nil {
		t.Fatal(err)
	}
	if s2 := tel2.Summarize(); s2.CheckpointHits != 0 || s2.CheckpointMiss != 3 {
		t.Fatalf("nockpt summary = %+v", s2)
	}
	recs2, err := telemetry.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs2 {
		if rec.Checkpoint != -1 || rec.CyclesSkipped != 0 {
			t.Fatalf("nockpt trace record claims a checkpoint: %+v", rec)
		}
	}
}

// TestGridTelemetryCancelledCellNotTraced: a cancelled cell must not leave
// partial records in the trace, mirroring the results-file guarantee.
func TestGridTelemetryCancelledCellNotTraced(t *testing.T) {
	specs := resumeGrid(4)
	var buf bytes.Buffer
	tel := telemetry.NewCampaign(telemetry.NewTracer(&buf))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	_ = RunGridWithTelemetry(ctx, specs, 1, func(int, *Result) {
		delivered++
		if delivered == 2 {
			cancel()
		}
	}, tel)
	recs, err := telemetry.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs)%4 != 0 {
		t.Fatalf("trace holds a partial cell: %d records with 4 samples per cell", len(recs))
	}
	if got := tel.Summarize().Cells; int(got)*4 != len(recs) {
		t.Fatalf("cells counter %d disagrees with %d trace records", got, len(recs))
	}
}
