package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// fakeResult builds a synthetic cell result without running a campaign.
func fakeResult(comp, wl string, faults, samples int, seed uint64) *Result {
	r := &Result{
		Spec: Spec{
			Workload: wl, Component: comp, Faults: faults,
			Samples: samples, Seed: seed,
			Cluster: DefaultCluster, TimeoutFactor: 4,
		},
		GoldenCycles: 22_500,
		TargetBits:   1024,
	}
	r.Counts[EffectMasked] = samples - 2
	r.Counts[EffectSDC] = 1
	r.Counts[EffectCrash] = 1
	return r
}

func TestResultSetRoundTripExtensions(t *testing.T) {
	rs := NewResultSet()
	// Cover the extension fields: a protected cell with a custom cluster,
	// alongside a plain one.
	prot := fakeResult(CompL1D, "sha", 2, 40, 7)
	prot.Spec.Protect = Protection{Kind: ProtectSECDED, Interleave: 4}
	prot.Spec.Cluster = ClusterSpec{Rows: 2, Cols: 4}
	prot.Spec.ForceSpanning = true
	rs.Add(prot)
	rs.Add(fakeResult(CompDTLB, "CRC32", 1, 60, 9))

	data, err := rs.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back := NewResultSet()
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != 2 {
		t.Fatalf("round-trip lost cells: %d", len(back.Cells))
	}
	got, err := back.Get(CompL1D, "sha", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec.Protect != prot.Spec.Protect {
		t.Fatalf("Protect lost: %+v", got.Spec.Protect)
	}
	if got.Spec.Cluster != prot.Spec.Cluster || !got.Spec.ForceSpanning {
		t.Fatalf("Cluster/ForceSpanning lost: %+v", got.Spec)
	}
	if got.TargetBits != 1024 || got.GoldenCycles != 22_500 {
		t.Fatalf("metadata lost: %+v", got)
	}
	// Round-tripping again is byte-stable (sorted canonical encode).
	data2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("canonical encode not byte-stable across a round trip")
	}
}

// TestLegacyTargetBitsFallback: files written before TargetBits existed
// decode with TargetBits zero, and population() must fall back to the old
// 1e6-bit approximation so old results keep their margins.
func TestLegacyTargetBitsFallback(t *testing.T) {
	legacy := []byte(`{"Results":[{
		"Spec":{"Workload":"CRC32","Component":"L1D","Faults":1,"Samples":120,"Seed":1},
		"Counts":[48,72,0,0,0],
		"GoldenCycles":1418830}]}`)
	rs := NewResultSet()
	if err := json.Unmarshal(legacy, rs); err != nil {
		t.Fatal(err)
	}
	r, err := rs.Get("L1D", "CRC32", 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.TargetBits != 0 {
		t.Fatalf("legacy TargetBits = %d, want 0", r.TargetBits)
	}
	if got, want := r.population(), float64(1418830)*1e6; got != want {
		t.Fatalf("legacy population = %g, want %g", got, want)
	}
	// And a margin is still computable (no division by zero / NaN).
	if m := r.AdjustedMargin(0.99); m <= 0 || m >= 1 {
		t.Fatalf("legacy margin = %f", m)
	}
}

func TestSaveLoadAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.json")
	rs := NewResultSet()
	rs.Add(fakeResult(CompL2, "FFT", 3, 16, 3))
	if err := rs.Save(path); err != nil {
		t.Fatal(err)
	}
	// No temp droppings left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "results.json" {
		t.Fatalf("directory not clean after Save: %v", entries)
	}
	loaded, err := LoadResultSet(path)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := rs.Encode()
	got, _ := loaded.Encode()
	if !bytes.Equal(got, want) {
		t.Fatal("Load(Save(rs)) not byte-identical to rs")
	}
	// Overwriting an existing file is the per-cell flush path.
	rs.Add(fakeResult(CompRF, "qsort", 1, 16, 3))
	if err := rs.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err = LoadResultSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Cells) != 2 {
		t.Fatalf("flush overwrite lost cells: %d", len(loaded.Cells))
	}
}

func TestLoadResultSetErrors(t *testing.T) {
	if _, err := LoadResultSet(filepath.Join(t.TempDir(), "absent.json")); !os.IsNotExist(err) {
		t.Fatalf("missing file: %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{truncated"), 0o644)
	if _, err := LoadResultSet(bad); err == nil {
		t.Fatal("corrupt file loaded silently")
	}
}

func TestCoversAndPending(t *testing.T) {
	rs := NewResultSet()
	rs.Add(fakeResult(CompL1D, "sha", 2, 40, 7))
	spec := Spec{Workload: "sha", Component: CompL1D, Faults: 2, Samples: 40, Seed: 7}
	if !rs.Covers(spec) {
		t.Fatal("matching cell not covered")
	}
	// Covers must compare the campaign identity, not just the cell key:
	// a different sample count or seed means the stored counts are not the
	// ones this grid would produce.
	for _, mut := range []func(*Spec){
		func(s *Spec) { s.Samples = 41 },
		func(s *Spec) { s.Seed = 8 },
		func(s *Spec) { s.Faults = 1 },
		func(s *Spec) { s.Workload = "CRC32" },
		func(s *Spec) { s.Component = CompL2 },
	} {
		m := spec
		mut(&m)
		if rs.Covers(m) {
			t.Fatalf("mismatched spec covered: %+v", m)
		}
	}
	grid := []Spec{spec, {Workload: "CRC32", Component: CompL1D, Faults: 1, Samples: 40, Seed: 7}}
	pending := rs.Pending(grid)
	if len(pending) != 1 || pending[0].Workload != "CRC32" {
		t.Fatalf("Pending = %+v", pending)
	}
}
