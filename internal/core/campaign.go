package core

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mbusim/internal/cpu"
	"mbusim/internal/forensics"
	"mbusim/internal/liveness"
	"mbusim/internal/sim"
	"mbusim/internal/stats"
	"mbusim/internal/telemetry"
	"mbusim/internal/workloads"
)

// Spec describes one fault-injection campaign cell: N injections of
// k-bit spatial faults into one component while one workload runs.
type Spec struct {
	Workload  string
	Component string
	Faults    int // cardinality: 1, 2 or 3 bits per upset
	Samples   int
	Seed      uint64
	Cluster   ClusterSpec // zero value means DefaultCluster

	// TimeoutFactor multiplies the golden cycle count to form the Timeout
	// limit; the paper uses 4x. Zero means 4.
	TimeoutFactor float64

	// WallTimeout bounds each sample's wall-clock simulation time (0 means
	// no bound). TimeoutFactor catches livelocks the simulator can count;
	// WallTimeout additionally catches samples whose host-side run time
	// explodes even within the cycle limit. An expired sample is classified
	// EffectTimeout and recorded in the trace like any other sample.
	WallTimeout time.Duration

	// ForceSpanning restricts masks to patterns that span the full cluster
	// in some dimension (ablation of the paper's sub-cluster inclusion).
	ForceSpanning bool

	// NoCheckpoints forces every run to rebuild its machine and replay the
	// golden prefix from cycle 0 instead of fast-forwarding from the
	// workload's golden checkpoint set. The two paths produce identical
	// outcomes; this knob exists for cross-checking and for bounding
	// memory on very large configurations.
	NoCheckpoints bool

	// NoDelta forces every checkpointed run to build a fresh machine and
	// fully restore it from the checkpoint snapshot, instead of reusing one
	// machine per worker and rewinding only the state the previous sample
	// dirtied (sim.Machine.RestoreDelta). The two paths produce identical
	// outcomes; this knob exists for A/B verification of the delta-restore
	// fast path. Implied by NoCheckpoints (there is no checkpoint to delta
	// against).
	NoDelta bool

	// Protect evaluates an error-protection scheme on the target structure
	// (extension; see Protection). The zero value is no protection, the
	// paper's configuration.
	Protect Protection

	// Forensics selects per-sample fault-lifecycle tracking (see
	// internal/forensics): ModeOff (zero value) records nothing, ModeFast
	// arms the component access probes, ModeFull additionally replays a
	// lockstep shadow machine from the same checkpoint and records the
	// first architectural-divergence cycle (~2x per-sample cost). The
	// probes only observe, so classified outcomes are identical in every
	// mode.
	Forensics forensics.Mode
}

func (s Spec) withDefaults() Spec {
	if s.Cluster == (ClusterSpec{}) {
		s.Cluster = DefaultCluster
	}
	if s.TimeoutFactor == 0 {
		s.TimeoutFactor = 4
	}
	return s
}

// Normalize returns the spec in canonical form: defaults filled in
// (Cluster, TimeoutFactor) and the protection reduced to its effective
// identity — ProtectNone discards the interleave degree (Filter never
// consults it) and an interleave below 1 becomes 1, which it already
// means. Two specs that normalize equal run byte-identical campaigns.
func (s Spec) Normalize() Spec {
	s = s.withDefaults()
	if s.Protect.Kind == ProtectNone {
		s.Protect = Protection{}
	} else if s.Protect.Interleave < 1 {
		s.Protect.Interleave = 1
	}
	return s
}

// Equivalent reports whether two specs describe the same campaign cell with
// the same outcome distribution: every field that can change a classified
// result must match after normalization. NoCheckpoints, NoDelta and
// Forensics are excluded — they select execution strategy and observation
// only, and the simulator guarantees identical outcomes across them — so a
// result produced under one may stand in for the others. This is the
// identity that resume (ResultSet.Covers) and distributed submit
// verification trust.
func (s Spec) Equivalent(o Spec) bool {
	a, b := s.Normalize(), o.Normalize()
	a.NoCheckpoints, b.NoCheckpoints = false, false
	a.NoDelta, b.NoDelta = false, false
	a.Forensics, b.Forensics = 0, 0
	return a == b
}

// Result aggregates one campaign cell.
type Result struct {
	Spec         Spec
	Counts       [NumEffects]int
	GoldenCycles uint64

	// TargetBits is the bit count (rows x cols) of the injected structure,
	// the spatial extent of the Leveugle fault population.
	TargetBits int
}

// Samples returns the number of classified runs.
func (r *Result) Samples() int {
	n := 0
	for _, c := range r.Counts {
		n += c
	}
	return n
}

// AVF is the architectural vulnerability factor of the cell: the fraction
// of injections that were not masked.
func (r *Result) AVF() float64 {
	n := r.Samples()
	if n == 0 {
		return 0
	}
	return 1 - float64(r.Counts[EffectMasked])/float64(n)
}

// Fraction returns the fraction of runs in one effect class.
func (r *Result) Fraction(e Effect) float64 {
	n := r.Samples()
	if n == 0 {
		return 0
	}
	return float64(r.Counts[e]) / float64(n)
}

// Margin returns the worst-case (p=0.5) error margin of the cell's AVF at
// the given confidence, per the Leveugle formulation.
func (r *Result) Margin(confidence float64) float64 {
	return stats.Margin(r.Samples(), r.population(), 0.5, confidence)
}

// AdjustedMargin re-adjusts the margin using the measured AVF, as the paper
// does after each campaign.
func (r *Result) AdjustedMargin(confidence float64) float64 {
	return stats.Readjust(r.Samples(), r.population(), r.AVF(), r.Margin(confidence), confidence)
}

func (r *Result) population() float64 {
	// Fault population = bits x cycles of exposure, using the target
	// structure's real bit count. Results deserialized from files written
	// before TargetBits existed fall back to the old 1e6 approximation.
	bits := float64(r.TargetBits)
	if bits == 0 {
		bits = 1e6
	}
	return float64(r.GoldenCycles) * bits
}

// Progress receives completed-run counts during a campaign (optional). It
// may be invoked concurrently from multiple workers; done values are each
// reported exactly once but not necessarily in ascending order.
type Progress func(done, total int)

// Run executes a campaign cell: Samples independent machine runs, each with
// a fresh mask at a fresh random injection cycle, classified against the
// workload's golden run. The spec is validated before any worker starts, so
// configuration errors surface as clean errors rather than worker panics.
//
// Cancelling ctx stops the workers promptly (between samples); Run then
// returns ctx.Err() and the partial counts are discarded — a cancelled cell
// is simply re-run on resume, keeping every persisted Result complete.
func Run(ctx context.Context, spec Spec, progress Progress) (*Result, error) {
	return run(ctx, spec, progress, 0, nil)
}

// run is Run with an explicit sample-worker bound and an optional
// telemetry sink; workers <= 0 means GOMAXPROCS. RunGrid uses the bound to
// share cores fairly across cells running in parallel. tel may be nil
// (the no-op campaign): the sample path then skips all timing and
// recording and allocates nothing extra.
func run(ctx context.Context, spec Spec, progress Progress, workers int, tel *telemetry.Campaign) (*Result, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	w, err := workloads.ByName(spec.Workload)
	if err != nil {
		return nil, err
	}
	golden, err := w.Reference()
	if err != nil {
		return nil, err
	}
	// Validate the component and geometry once, on a probe machine.
	probe, err := w.NewMachine()
	if err != nil {
		return nil, err
	}
	probeTarget, err := TargetFor(probe, spec.Component)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Spec:         spec,
		GoldenCycles: golden.Cycles,
		TargetBits:   probeTarget.Rows() * probeTarget.Cols(),
	}
	limit := uint64(spec.TimeoutFactor * float64(golden.Cycles))

	// Pre-draw per-run randomness deterministically so results do not
	// depend on worker scheduling. idx is the sample's identity in traces
	// and progress accounting, fixed before any reordering below.
	type job struct {
		injectAt uint64
		maskSeed uint64
		idx      int
	}
	seedRNG := rand.New(rand.NewPCG(spec.Seed, 0x9E3779B97F4A7C15))
	jobs := make([]job, spec.Samples)
	for i := range jobs {
		jobs[i] = job{
			injectAt: seedRNG.Uint64N(golden.Cycles),
			maskSeed: seedRNG.Uint64(),
			idx:      i,
		}
	}
	// Dispatch jobs in injection-cycle order: samples that restore from the
	// same golden checkpoint become adjacent, so a worker's delta-restored
	// machine stays on one baseline for long stretches instead of paying a
	// full restore at every checkpoint switch. Sample identity travels with
	// the job, and both the counts and the flushed traces are
	// order-independent (traces are re-sorted by sample index), so results
	// are bit-identical to index-order dispatch.
	sort.SliceStable(jobs, func(i, j int) bool { return jobs[i].injectAt < jobs[j].injectAt })

	// Build the workload's checkpoint set before the workers start so the
	// one-time construction cost is not paid under the first worker's run.
	if !spec.NoCheckpoints {
		if _, err := w.CheckpointCycles(); err != nil {
			return nil, err
		}
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Samples {
		workers = spec.Samples
	}
	// Lock-free job dispatch: workers claim jobs off an atomic counter and
	// accumulate effect counts locally, merged after the pool drains, so
	// neither dispatch, counting nor the progress callback serializes the
	// workers on a shared mutex. Cancellation is checked between samples:
	// individual runs are short (milliseconds at the scaled geometry), so a
	// cancelled campaign stops promptly without instrumenting the simulator.
	var (
		wg        sync.WaitGroup
		next      atomic.Int64
		completed atomic.Int64
		failed    atomic.Bool
	)
	workerCounts := make([][NumEffects]int, workers)
	workerErrs := make([]error, workers)
	// Per-worker trace buffers: records accumulate locally (no shared lock
	// on the sample path) and are merged, ordered by sample index, and
	// flushed as one batch when the cell completes — so like the results
	// file, the trace only ever holds complete cells.
	var workerRecs [][]telemetry.SampleRecord
	var workerFates [][]telemetry.FateRecord
	if tel.Tracing() {
		workerRecs = make([][]telemetry.SampleRecord, workers)
		if spec.Forensics != forensics.ModeOff {
			workerFates = make([][]telemetry.FateRecord, workers)
		}
	}
	// Per-worker occupancy accumulators: the at-inject structure state is
	// averaged across the cell's samples and published as one gauge pair.
	type occAcc struct {
		occSum, dirtySum float64
		occN, dirtyN     int
	}
	var occAccs []occAcc
	obsOcc := tel.Enabled()
	if obsOcc {
		occAccs = make([]occAcc, workers)
	}
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			local := &workerCounts[wk]
			// Each worker owns a pair of delta-restoring machine caches
			// (faulty + forensics shadow); the NoDelta / NoCheckpoints
			// escape hatches leave them nil and runOne builds fresh
			// machines as before.
			var rst, shadowRst *workloads.Restorer
			if !spec.NoCheckpoints && !spec.NoDelta {
				rst = w.NewRestorer()
				if spec.Forensics == forensics.ModeFull {
					shadowRst = w.NewRestorer()
				}
			}
			for !failed.Load() && ctx.Err() == nil {
				j := int(next.Add(1)) - 1
				if j >= len(jobs) {
					return
				}
				i := jobs[j].idx
				var start time.Time
				if tel.Enabled() {
					start = time.Now()
				}
				effect, meta, err := runOneRecovered(w, golden, spec, limit, jobs[j].injectAt, jobs[j].maskSeed, i, obsOcc, tel, rst, shadowRst)
				if err != nil {
					workerErrs[wk] = err
					failed.Store(true)
					return
				}
				local[effect]++
				if tel.Enabled() {
					rec := telemetry.SampleRecord{
						Component: spec.Component, Workload: spec.Workload,
						Faults: spec.Faults, Sample: i, Seed: spec.Seed,
						InjectCycle: jobs[j].injectAt, MaskBits: meta.maskBits,
						Checkpoint: meta.checkpoint, CyclesSkipped: meta.cyclesSkipped,
						Outcome:    effect.Label(),
						DurationNS: time.Since(start).Nanoseconds(),
					}
					tel.RecordSample(&rec)
					if workerRecs != nil {
						workerRecs[wk] = append(workerRecs[wk], rec)
					}
					if meta.hasReport {
						fr := telemetry.FateRecord{
							Component: spec.Component, Workload: spec.Workload,
							Faults: spec.Faults, Sample: i, Seed: spec.Seed,
							InjectCycle:   jobs[j].injectAt,
							Mask:          maskPairs(meta.mask),
							Fate:          meta.report.Fate.Label(),
							FirstTouchLat: meta.report.FirstTouchLat,
							DivergeCycle:  meta.report.DivergeCycle,
							Outcome:       effect.Label(),
						}
						tel.RecordFate(&fr)
						if workerFates != nil {
							workerFates[wk] = append(workerFates[wk], fr)
						}
					}
					if meta.hasOcc {
						acc := &occAccs[wk]
						acc.occSum += meta.occ
						acc.occN++
						if meta.hasDirty {
							acc.dirtySum += meta.dirty
							acc.dirtyN++
						}
					}
				}
				if progress != nil {
					progress(int(completed.Add(1)), len(jobs))
				}
			}
		}(wk)
	}
	wg.Wait()
	for _, err := range workerErrs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i := range workerCounts {
		for e, n := range workerCounts[i] {
			res.Counts[e] += n
		}
	}
	if tel.Enabled() {
		var recs []telemetry.SampleRecord
		for _, wr := range workerRecs {
			recs = append(recs, wr...)
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].Sample < recs[j].Sample })
		var fates []telemetry.FateRecord
		for _, wf := range workerFates {
			fates = append(fates, wf...)
		}
		sort.Slice(fates, func(i, j int) bool { return fates[i].Sample < fates[j].Sample })
		tel.FlushCell(recs, fates)
		var occSum, dirtySum float64
		var occN, dirtyN int
		for i := range occAccs {
			occSum += occAccs[i].occSum
			occN += occAccs[i].occN
			dirtySum += occAccs[i].dirtySum
			dirtyN += occAccs[i].dirtyN
		}
		if occN > 0 {
			meanDirty := 0.0
			if dirtyN > 0 {
				meanDirty = dirtySum / float64(dirtyN)
			}
			tel.SetCellOccupancy(spec.Component, spec.Workload, spec.Faults,
				occSum/float64(occN), meanDirty, dirtyN > 0)
		}
	}
	return res, nil
}

// maxSpanningTries bounds the rejection sampling of ForceSpanning masks.
const maxSpanningTries = 1000

// sampleScratch holds the per-sample scratch state of the hot sample path:
// the mask RNG (reseeded for every sample, so one PCG serves them all), the
// Fisher-Yates permutation buffer and the mask cell buffer. Pooling it
// removes every mask-drawing allocation from runOne; the machines
// themselves are already reused through each worker's Restorer.
type sampleScratch struct {
	pcg   *rand.PCG
	rng   *rand.Rand
	idx   []int
	cells []Cell
}

var scratchPool = sync.Pool{New: func() any {
	pcg := rand.NewPCG(0, 0)
	return &sampleScratch{pcg: pcg, rng: rand.New(pcg)}
}}

// maskPairs encodes a mask as the [row, col] pairs of the trace schema.
func maskPairs(m Mask) [][2]int {
	out := make([][2]int, len(m.Cells))
	for i, c := range m.Cells {
		out[i] = [2]int{c.Row, c.Col}
	}
	return out
}

// runMeta carries the per-sample facts the trace and metrics layers need
// beyond the classified effect: which golden checkpoint the run restored
// (and how much replay it saved), how many mask bits were live after
// protection filtering, the resolved fault lifecycle when forensics is on,
// and the target's occupancy state sampled at injection time.
type runMeta struct {
	checkpoint    int // restored checkpoint index; -1 when checkpointing is off
	cyclesSkipped uint64
	maskBits      int

	mask      Mask // the applied mask; only retained when hasReport
	report    forensics.Report
	hasReport bool

	occ, dirty       float64 // valid / dirty fraction at inject time
	hasOcc, hasDirty bool
}

// testSampleHook, when non-nil, runs at the top of every sample inside the
// recovery guard. It exists only for tests, which use it to inject panics
// and wall-clock stalls into the sample path.
var testSampleHook func(spec Spec, sample int)

// runOneRecovered is runOne behind a panic guard: a panicking sample (a
// simulator bug, a pathological machine state) becomes that cell's error —
// counted under gefin_worker_panics_total and surfaced once through the
// Run/RunGrid error path — instead of aborting the whole process. With
// cells dispatched across machines, a process abort would kill every cell
// the process holds; a clean per-cell error lets the campaign retry or
// fail just the one cell.
func runOneRecovered(w *workloads.Workload, golden *workloads.Golden, spec Spec, limit, injectAt, maskSeed uint64, sample int, obsOcc bool, tel *telemetry.Campaign, rst, shadowRst *workloads.Restorer) (effect Effect, meta runMeta, err error) {
	defer func() {
		if r := recover(); r != nil {
			tel.RecordWorkerPanic()
			err = fmt.Errorf("core: %s/%s/%d-bit sample %d panicked: %v\n%s",
				spec.Component, spec.Workload, spec.Faults, sample, r, debug.Stack())
		}
	}()
	if testSampleHook != nil {
		testSampleHook(spec, sample)
	}
	return runOne(w, golden, spec, limit, injectAt, maskSeed, obsOcc, rst, shadowRst)
}

// runOne performs a single fault-injection simulation. Unless the spec
// forbids it, the machine is fast-forwarded from the workload's nearest
// golden checkpoint at or before the injection cycle instead of replaying
// the whole golden prefix from cycle 0, and comes from the worker's
// Restorer (rst), which rewinds one long-lived machine by delta restore
// instead of building a fresh one per sample. All the paths are
// bit-identical because checkpoints capture the complete machine state and
// execution is deterministic.
func runOne(w *workloads.Workload, golden *workloads.Golden, spec Spec, limit, injectAt, maskSeed uint64, obsOcc bool, rst, shadowRst *workloads.Restorer) (Effect, runMeta, error) {
	meta := runMeta{checkpoint: -1}
	var m *sim.Machine
	var err error
	switch {
	case spec.NoCheckpoints:
		m, err = w.NewMachine()
	case rst != nil:
		var ck workloads.Checkpoint
		m, ck, err = rst.MachineAt(injectAt)
		meta.checkpoint = ck.Index
		meta.cyclesSkipped = ck.Cycle
	default:
		var ck workloads.Checkpoint
		m, ck, err = w.MachineAt(injectAt)
		meta.checkpoint = ck.Index
		meta.cyclesSkipped = ck.Cycle
	}
	if err != nil {
		return 0, meta, err
	}
	target, err := TargetFor(m, spec.Component)
	if err != nil {
		return 0, meta, err
	}
	sc := scratchPool.Get().(*sampleScratch)
	defer scratchPool.Put(sc)
	sc.pcg.Seed(maskSeed, 0xDEADBEEFCAFEF00D)
	rng := sc.rng
	// Forensics retains the mask beyond the sample (trace records), so it
	// must own its cells; the hot path borrows the scratch buffer instead.
	msc := sc
	if spec.Forensics != forensics.ModeOff {
		msc = nil
	}
	mask := generateMask(rng, target.Rows(), target.Cols(), spec.Faults, spec.Cluster, msc)
	if spec.ForceSpanning {
		for tries := 0; !mask.Spanning(spec.Cluster) && tries < maxSpanningTries; tries++ {
			mask = generateMask(rng, target.Rows(), target.Cols(), spec.Faults, spec.Cluster, msc)
		}
		if !mask.Spanning(spec.Cluster) {
			// Silently running a non-spanning mask would violate the
			// ablation's contract; fail loudly instead (e.g. a single-bit
			// fault can never span a multi-row, multi-column cluster).
			return 0, meta, fmt.Errorf("core: no spanning %d-bit mask in a %dx%d cluster after %d draws",
				spec.Faults, spec.Cluster.Rows, spec.Cluster.Cols, maxSpanningTries)
		}
	}
	if spec.Protect.Kind != ProtectNone {
		fr := spec.Protect.Filter(mask)
		meta.maskBits = len(fr.Surviving.Cells)
		switch {
		case fr.Detected:
			// Uncorrectable error signalled: machine-check abort
			// (pessimistic: modeled at injection time, see protect.go).
			// Forensically, the abort fires before any corrupted bit can
			// reach the datapath.
			if spec.Forensics != forensics.ModeOff {
				meta.mask = mask
				meta.report = forensics.Report{Fate: forensics.FateNeverTouched, FirstTouchLat: -1}
				meta.hasReport = true
			}
			return EffectCrash, meta, nil
		case len(fr.Surviving.Cells) == 0:
			// Everything corrected: by construction the run is the golden
			// run; skip the simulation. The scrub overwrote every flip.
			if spec.Forensics != forensics.ModeOff {
				meta.mask = mask
				meta.report = forensics.Report{Fate: forensics.FateOverwritten, FirstTouchLat: 0}
				meta.hasReport = true
			}
			return EffectMasked, meta, nil
		}
		mask = fr.Surviving
	}
	meta.maskBits = len(mask.Cells)

	// A full-forensics run replays a second, fault-free machine from the
	// same checkpoint in lockstep with the faulty one and records the first
	// cycle their architectural digests differ. A timing-only divergence
	// (same eventual output, different stall pattern) counts: the digest
	// compares per-cycle progress, so the recorded cycle is a conservative
	// earliest bound on architectural visibility.
	var shadow *sim.Machine
	if spec.Forensics == forensics.ModeFull {
		switch {
		case spec.NoCheckpoints:
			shadow, err = w.NewMachine()
		case shadowRst != nil:
			shadow, _, err = shadowRst.MachineAt(injectAt)
		default:
			shadow, _, err = w.MachineAt(injectAt)
		}
		if err != nil {
			return 0, meta, err
		}
	}

	var (
		tr        *forensics.Tracker
		attachErr error
	)
	inject := func(*sim.Machine) {
		if obsOcc {
			st := liveness.StructState(target)
			meta.occ, meta.hasOcc = st.Occ, st.HasOcc
			meta.dirty, meta.hasDirty = st.Dirty, st.HasDirty
		}
		mask.Apply(target)
		if spec.Forensics != forensics.ModeOff {
			t := forensics.NewTracker(m.Core.Cycles)
			cells := make([]forensics.BitCell, len(mask.Cells))
			for i, c := range mask.Cells {
				cells[i] = forensics.BitCell{Row: c.Row, Col: c.Col}
			}
			if attachErr = t.Attach(target, cells); attachErr == nil {
				tr = t
			}
		}
	}
	var onCycle func(*sim.Machine)
	if shadow != nil {
		onCycle = func(mm *sim.Machine) {
			shadow.Core.Cycle()
			if tr != nil && !tr.Diverged() && mm.ArchDigest() != shadow.ArchDigest() {
				tr.MarkDiverged()
			}
		}
	}
	// The wall-clock watchdog bounds the simulation loop itself; machine
	// construction and checkpoint restore are excluded (they are bounded by
	// the workload, not by the injected fault).
	var deadline time.Time
	if spec.WallTimeout > 0 {
		deadline = time.Now().Add(spec.WallTimeout)
	}
	// Convergence exit: once every trace of the injected fault has been
	// scrubbed from the machine — overwritten cells, evicted lines, no
	// timing perturbation left — the rest of the run is, by determinism,
	// bit-identical to the golden run, so simulating it only re-derives the
	// golden outcome. Forensics modes run to completion regardless: they
	// observe the fault's lifecycle, which the exit would truncate.
	var out sim.Outcome
	if !spec.NoCheckpoints && spec.Forensics == forensics.ModeOff {
		out = runToConvergence(w, m, golden, limit, injectAt, inject, deadline)
	} else {
		out = m.RunWatched(limit, injectAt, inject, onCycle, deadline)
	}
	// Probes are wiring, not snapshot state: detach this sample's tracker
	// so the worker's reused machine runs the next sample unprobed.
	if tr != nil {
		tr.Detach()
	}
	if attachErr != nil {
		return 0, meta, attachErr
	}
	eff := Classify(out, golden)
	if tr != nil {
		meta.mask = mask
		meta.report = tr.Resolve(eff == EffectMasked)
		meta.hasReport = true
	}
	return eff, meta, nil
}

// runToConvergence runs the faulty machine like RunWatched, but pauses at
// every golden checkpoint cycle the run crosses and compares the machine's
// complete state against that checkpoint's snapshot. On bit-equality the
// remainder of the run is deterministically the golden run, so the golden
// outcome is returned without simulating it (Classify maps it to
// EffectMasked, exactly as the full run would). The compare is exact —
// every counter and replacement stamp must match — so a fault that leaves
// any trace, architectural or timing, runs to completion as before, and the
// returned outcome is bit-identical to RunWatched's in every case.
func runToConvergence(w *workloads.Workload, m *sim.Machine, golden *workloads.Golden, limit, injectAt uint64, inject func(*sim.Machine), deadline time.Time) sim.Outcome {
	cycles, snaps, err := w.GoldenCheckpoints()
	if err != nil {
		return m.RunWatched(limit, injectAt, inject, nil, deadline)
	}
	// First checkpoint strictly after the injection cycle: earlier ones
	// cannot witness the fault, later ones are visited in order below.
	for idx := sort.Search(len(cycles), func(i int) bool { return cycles[i] > injectAt }); idx < len(cycles); idx++ {
		seg := cycles[idx]
		if limit > 0 && seg >= limit {
			break
		}
		out := m.RunWatched(seg, injectAt, inject, nil, deadline)
		inject = nil
		if !out.TimedOut || out.WallTimedOut {
			return out // stopped (or was wall-killed) before the crossing
		}
		if m.EqualsSnapshot(snaps[idx]) {
			return sim.Outcome{
				Stop:      cpu.StopExit,
				ExitCode:  golden.ExitCode,
				Stdout:    golden.Stdout,
				Cycles:    golden.Cycles,
				Committed: golden.Committed,
			}
		}
	}
	return m.RunWatched(limit, injectAt, inject, nil, deadline)
}

// CellKey identifies one campaign cell inside a ResultSet.
type CellKey struct {
	Component string
	Workload  string
	Faults    int
}

// Key returns the spec's cell identity — the coordinate the ResultSet,
// resume logic and campaign service all address cells by. Two specs with
// the same Key may still not be Equivalent (different seed, samples,
// protection, ...): Key locates a cell, Equivalent decides whether a
// stored result answers it.
func (s Spec) Key() CellKey {
	return CellKey{Component: s.Component, Workload: s.Workload, Faults: s.Faults}
}

// ResultSet collects the full campaign grid (components x workloads x
// cardinalities) for the analysis and reporting layers.
type ResultSet struct {
	Cells map[CellKey]*Result
}

// NewResultSet returns an empty result set.
func NewResultSet() *ResultSet {
	return &ResultSet{Cells: make(map[CellKey]*Result)}
}

// Add stores a result under its cell key.
func (rs *ResultSet) Add(r *Result) {
	rs.Cells[r.Spec.Key()] = r
}

// Get returns the result for a cell, or an error naming the missing cell.
func (rs *ResultSet) Get(component, workload string, faults int) (*Result, error) {
	r, ok := rs.Cells[CellKey{component, workload, faults}]
	if !ok {
		return nil, fmt.Errorf("core: no result for %s/%s/%d-bit", component, workload, faults)
	}
	return r, nil
}
