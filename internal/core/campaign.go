package core

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"mbusim/internal/sim"
	"mbusim/internal/stats"
	"mbusim/internal/workloads"
)

// Spec describes one fault-injection campaign cell: N injections of
// k-bit spatial faults into one component while one workload runs.
type Spec struct {
	Workload  string
	Component string
	Faults    int // cardinality: 1, 2 or 3 bits per upset
	Samples   int
	Seed      uint64
	Cluster   ClusterSpec // zero value means DefaultCluster

	// TimeoutFactor multiplies the golden cycle count to form the Timeout
	// limit; the paper uses 4x. Zero means 4.
	TimeoutFactor float64

	// ForceSpanning restricts masks to patterns that span the full cluster
	// in some dimension (ablation of the paper's sub-cluster inclusion).
	ForceSpanning bool

	// Protect evaluates an error-protection scheme on the target structure
	// (extension; see Protection). The zero value is no protection, the
	// paper's configuration.
	Protect Protection
}

func (s Spec) withDefaults() Spec {
	if s.Cluster == (ClusterSpec{}) {
		s.Cluster = DefaultCluster
	}
	if s.TimeoutFactor == 0 {
		s.TimeoutFactor = 4
	}
	return s
}

// Result aggregates one campaign cell.
type Result struct {
	Spec         Spec
	Counts       [NumEffects]int
	GoldenCycles uint64
}

// Samples returns the number of classified runs.
func (r *Result) Samples() int {
	n := 0
	for _, c := range r.Counts {
		n += c
	}
	return n
}

// AVF is the architectural vulnerability factor of the cell: the fraction
// of injections that were not masked.
func (r *Result) AVF() float64 {
	n := r.Samples()
	if n == 0 {
		return 0
	}
	return 1 - float64(r.Counts[EffectMasked])/float64(n)
}

// Fraction returns the fraction of runs in one effect class.
func (r *Result) Fraction(e Effect) float64 {
	n := r.Samples()
	if n == 0 {
		return 0
	}
	return float64(r.Counts[e]) / float64(n)
}

// Margin returns the worst-case (p=0.5) error margin of the cell's AVF at
// the given confidence, per the Leveugle formulation.
func (r *Result) Margin(confidence float64) float64 {
	return stats.Margin(r.Samples(), r.population(), 0.5, confidence)
}

// AdjustedMargin re-adjusts the margin using the measured AVF, as the paper
// does after each campaign.
func (r *Result) AdjustedMargin(confidence float64) float64 {
	return stats.Readjust(r.Samples(), r.population(), r.AVF(), r.Margin(confidence), confidence)
}

func (r *Result) population() float64 {
	// Fault population = bits x cycles of exposure.
	return float64(r.GoldenCycles) * 1e6
}

// Progress receives completed-run counts during a campaign (optional).
type Progress func(done, total int)

// Run executes a campaign cell: Samples independent machine runs, each with
// a fresh mask at a fresh random injection cycle, classified against the
// workload's golden run.
func Run(spec Spec, progress Progress) (*Result, error) {
	spec = spec.withDefaults()
	w, err := workloads.ByName(spec.Workload)
	if err != nil {
		return nil, err
	}
	golden, err := w.Reference()
	if err != nil {
		return nil, err
	}
	// Validate the component and geometry once, on a probe machine.
	probe, err := w.NewMachine()
	if err != nil {
		return nil, err
	}
	if _, err := TargetFor(probe, spec.Component); err != nil {
		return nil, err
	}

	res := &Result{Spec: spec, GoldenCycles: golden.Cycles}
	limit := uint64(spec.TimeoutFactor * float64(golden.Cycles))

	// Pre-draw per-run randomness deterministically so results do not
	// depend on worker scheduling.
	type job struct {
		injectAt uint64
		maskSeed uint64
	}
	seedRNG := rand.New(rand.NewPCG(spec.Seed, 0x9E3779B97F4A7C15))
	jobs := make([]job, spec.Samples)
	for i := range jobs {
		jobs[i] = job{
			injectAt: seedRNG.Uint64N(golden.Cycles),
			maskSeed: seedRNG.Uint64(),
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > spec.Samples {
		workers = spec.Samples
	}
	var (
		mu     sync.Mutex
		wg     sync.WaitGroup
		next   int
		done   int
		runErr error
	)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if runErr != nil || next >= len(jobs) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				effect, err := runOne(w, golden, spec, limit, jobs[i].injectAt, jobs[i].maskSeed)
				mu.Lock()
				if err != nil && runErr == nil {
					runErr = err
				}
				if err == nil {
					res.Counts[effect]++
					done++
					if progress != nil {
						progress(done, len(jobs))
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	return res, nil
}

// runOne performs a single fault-injection simulation.
func runOne(w *workloads.Workload, golden *workloads.Golden, spec Spec, limit, injectAt, maskSeed uint64) (Effect, error) {
	m, err := w.NewMachine()
	if err != nil {
		return 0, err
	}
	target, err := TargetFor(m, spec.Component)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewPCG(maskSeed, 0xDEADBEEFCAFEF00D))
	mask := GenerateMask(rng, target.Rows(), target.Cols(), spec.Faults, spec.Cluster)
	if spec.ForceSpanning {
		for tries := 0; !mask.Spanning(spec.Cluster) && tries < 1000; tries++ {
			mask = GenerateMask(rng, target.Rows(), target.Cols(), spec.Faults, spec.Cluster)
		}
	}
	if spec.Protect.Kind != ProtectNone {
		fr := spec.Protect.Filter(mask)
		switch {
		case fr.Detected:
			// Uncorrectable error signalled: machine-check abort
			// (pessimistic: modeled at injection time, see protect.go).
			return EffectCrash, nil
		case len(fr.Surviving.Cells) == 0:
			// Everything corrected: by construction the run is the golden
			// run; skip the simulation.
			return EffectMasked, nil
		}
		mask = fr.Surviving
	}
	out := m.Run(limit, injectAt, func(*sim.Machine) { mask.Apply(target) })
	return Classify(out, golden), nil
}

// CellKey identifies one campaign cell inside a ResultSet.
type CellKey struct {
	Component string
	Workload  string
	Faults    int
}

// ResultSet collects the full campaign grid (components x workloads x
// cardinalities) for the analysis and reporting layers.
type ResultSet struct {
	Cells map[CellKey]*Result
}

// NewResultSet returns an empty result set.
func NewResultSet() *ResultSet {
	return &ResultSet{Cells: make(map[CellKey]*Result)}
}

// Add stores a result under its cell key.
func (rs *ResultSet) Add(r *Result) {
	rs.Cells[CellKey{r.Spec.Component, r.Spec.Workload, r.Spec.Faults}] = r
}

// Get returns the result for a cell, or an error naming the missing cell.
func (rs *ResultSet) Get(component, workload string, faults int) (*Result, error) {
	r, ok := rs.Cells[CellKey{component, workload, faults}]
	if !ok {
		return nil, fmt.Errorf("core: no result for %s/%s/%d-bit", component, workload, faults)
	}
	return r, nil
}
