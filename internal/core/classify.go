package core

import (
	"bytes"

	"mbusim/internal/cpu"
	"mbusim/internal/sim"
	"mbusim/internal/workloads"
)

// Effect is the paper's five-way fault-effect classification.
type Effect int

const (
	EffectMasked Effect = iota
	EffectSDC
	EffectCrash
	EffectTimeout
	EffectAssert
	NumEffects
)

func (e Effect) String() string {
	switch e {
	case EffectMasked:
		return "Masked"
	case EffectSDC:
		return "SDC"
	case EffectCrash:
		return "Crash"
	case EffectTimeout:
		return "Timeout"
	case EffectAssert:
		return "Assert"
	}
	return "Unknown"
}

// Label is the lowercase wire name of the class, used for metric labels
// and trace records.
func (e Effect) Label() string {
	switch e {
	case EffectMasked:
		return "masked"
	case EffectSDC:
		return "sdc"
	case EffectCrash:
		return "crash"
	case EffectTimeout:
		return "timeout"
	case EffectAssert:
		return "assert"
	}
	return "unknown"
}

// Effects lists the classes in presentation order.
func Effects() []Effect {
	return []Effect{EffectMasked, EffectSDC, EffectCrash, EffectTimeout, EffectAssert}
}

// Classify maps a run outcome to its effect class, following the paper's
// definitions:
//
//   - Masked: the program ran to completion with output identical to the
//     fault-free run.
//   - SDC: completed, but the output differs and nothing abnormal was
//     recorded.
//   - Crash: the process was terminated abnormally (exception, kernel kill)
//     or the kernel panicked (system crash).
//   - Timeout: the run exceeded the cycle limit (livelock) or the commit
//     watchdog fired (deadlock).
//   - Assert: the simulator itself detected an impossible condition, e.g. a
//     physical address outside the system map.
func Classify(out sim.Outcome, golden *workloads.Golden) Effect {
	switch {
	case out.Assert:
		return EffectAssert
	case out.TimedOut:
		return EffectTimeout
	}
	switch out.Stop {
	case cpu.StopExit:
		if out.ExitCode == golden.ExitCode && !out.Truncated &&
			bytes.Equal(out.Stdout, golden.Stdout) {
			return EffectMasked
		}
		return EffectSDC
	case cpu.StopDeadlock:
		return EffectTimeout
	case cpu.StopUndef, cpu.StopSegv, cpu.StopAlign, cpu.StopKilled,
		cpu.StopKernelPanic:
		return EffectCrash
	}
	// A run that stopped for no reason is a simulator failure.
	return EffectAssert
}
