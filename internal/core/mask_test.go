package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

type fakeTarget struct {
	rows, cols int
	flips      map[Cell]int
}

func newFakeTarget(rows, cols int) *fakeTarget {
	return &fakeTarget{rows: rows, cols: cols, flips: make(map[Cell]int)}
}

func (f *fakeTarget) Name() string { return "fake" }
func (f *fakeTarget) Rows() int    { return f.rows }
func (f *fakeTarget) Cols() int    { return f.cols }
func (f *fakeTarget) FlipBit(r, c int) {
	if r < 0 || r >= f.rows || c < 0 || c >= f.cols {
		panic("flip out of range")
	}
	f.flips[Cell{r, c}]++
}

func TestGenerateMaskProperties(t *testing.T) {
	// Properties of the cluster generator: exactly k distinct cells, all
	// inside one 3x3 window, all inside the geometry.
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw)%3 + 1
		rng := rand.New(rand.NewPCG(seed, 1))
		rows, cols := 8+rng.IntN(64), 8+rng.IntN(64)
		m := GenerateMask(rng, rows, cols, k, DefaultCluster)
		if len(m.Cells) != k {
			return false
		}
		seen := map[Cell]bool{}
		minR, maxR := rows, -1
		minC, maxC := cols, -1
		for _, c := range m.Cells {
			if c.Row < 0 || c.Row >= rows || c.Col < 0 || c.Col >= cols {
				return false
			}
			if seen[c] {
				return false // duplicate cell
			}
			seen[c] = true
			if c.Row < minR {
				minR = c.Row
			}
			if c.Row > maxR {
				maxR = c.Row
			}
			if c.Col < minC {
				minC = c.Col
			}
			if c.Col > maxC {
				maxC = c.Col
			}
		}
		return maxR-minR < 3 && maxC-minC < 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateMaskCoversWholeGeometry(t *testing.T) {
	// Over many draws, every row and column must be reachable.
	rng := rand.New(rand.NewPCG(5, 6))
	rows, cols := 16, 16
	seenRow := make([]bool, rows)
	seenCol := make([]bool, cols)
	for i := 0; i < 5000; i++ {
		m := GenerateMask(rng, rows, cols, 1, DefaultCluster)
		seenRow[m.Cells[0].Row] = true
		seenCol[m.Cells[0].Col] = true
	}
	for r, ok := range seenRow {
		if !ok {
			t.Fatalf("row %d never hit", r)
		}
	}
	for c, ok := range seenCol {
		if !ok {
			t.Fatalf("col %d never hit", c)
		}
	}
}

func TestMaskApply(t *testing.T) {
	ft := newFakeTarget(32, 32)
	rng := rand.New(rand.NewPCG(1, 2))
	m := GenerateMask(rng, ft.Rows(), ft.Cols(), 3, DefaultCluster)
	m.Apply(ft)
	if len(ft.flips) != 3 {
		t.Fatalf("%d cells flipped", len(ft.flips))
	}
	for c, n := range ft.flips {
		if n != 1 {
			t.Fatalf("cell %v flipped %d times", c, n)
		}
	}
}

func TestSubClustersAllowed(t *testing.T) {
	// The paper's generator deliberately includes patterns that fit
	// smaller clusters; with k=2 both spanning and non-spanning masks must
	// occur.
	rng := rand.New(rand.NewPCG(9, 9))
	spanning, compact := 0, 0
	for i := 0; i < 2000; i++ {
		m := GenerateMask(rng, 64, 64, 2, DefaultCluster)
		if m.Spanning(DefaultCluster) {
			spanning++
		} else {
			compact++
		}
	}
	if spanning == 0 || compact == 0 {
		t.Fatalf("spanning=%d compact=%d: both kinds must occur", spanning, compact)
	}
}

func TestGenerateMaskPanicsOnBadInputs(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	cases := []func(){
		func() { GenerateMask(rng, 2, 32, 1, DefaultCluster) },  // too few rows
		func() { GenerateMask(rng, 32, 32, 0, DefaultCluster) }, // k = 0
		func() { GenerateMask(rng, 32, 32, 10, DefaultCluster) },
		func() { GenerateMask(rng, 32, 32, 1, ClusterSpec{}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestSpanningDetection(t *testing.T) {
	m := Mask{Cells: []Cell{{0, 0}, {2, 1}}}
	if !m.Spanning(DefaultCluster) {
		t.Fatal("row-spanning mask not detected")
	}
	m = Mask{Cells: []Cell{{0, 0}, {1, 1}}}
	if m.Spanning(DefaultCluster) {
		t.Fatal("2x2 mask wrongly spanning")
	}
	if (Mask{}).Spanning(DefaultCluster) {
		t.Fatal("empty mask cannot span")
	}
}
