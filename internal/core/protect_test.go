package core

import (
	"context"
	"math/rand/v2"
	"testing"
)

func TestSECDEDCorrectsSingleBit(t *testing.T) {
	p := Protection{Kind: ProtectSECDED}
	fr := p.Filter(Mask{Cells: []Cell{{3, 17}}})
	if fr.Corrected != 1 || fr.Detected || len(fr.Surviving.Cells) != 0 {
		t.Fatalf("single-bit under SECDED: %+v", fr)
	}
}

func TestSECDEDDetectsDoubleBitSameWord(t *testing.T) {
	p := Protection{Kind: ProtectSECDED}
	// Columns 0 and 5 are in the same 32-bit word without interleaving.
	fr := p.Filter(Mask{Cells: []Cell{{3, 0}, {3, 5}}})
	if !fr.Detected {
		t.Fatalf("double-bit same word must be detected: %+v", fr)
	}
}

func TestSECDEDCorrectsDoubleBitAcrossWords(t *testing.T) {
	p := Protection{Kind: ProtectSECDED}
	// Columns 0 and 40 are different words: two single-bit errors.
	fr := p.Filter(Mask{Cells: []Cell{{3, 0}, {3, 40}}})
	if fr.Corrected != 2 || fr.Detected || len(fr.Surviving.Cells) != 0 {
		t.Fatalf("double-bit across words: %+v", fr)
	}
	// Different rows are always different words.
	fr = p.Filter(Mask{Cells: []Cell{{3, 0}, {4, 0}}})
	if fr.Corrected != 2 || fr.Detected {
		t.Fatalf("double-bit across rows: %+v", fr)
	}
}

func TestInterleavingSpreadsAdjacentBits(t *testing.T) {
	// Without interleaving, adjacent columns share a word -> detected
	// (uncorrectable). With 4-way interleaving they are separate words ->
	// both corrected. This is the bit-slice interleaving defence of the
	// paper's refs [39]/[46].
	plain := Protection{Kind: ProtectSECDED}
	interleaved := Protection{Kind: ProtectSECDED, Interleave: 4}
	mask := Mask{Cells: []Cell{{1, 10}, {1, 11}}}
	if fr := plain.Filter(mask); !fr.Detected {
		t.Fatalf("adjacent bits without interleave: %+v", fr)
	}
	if fr := interleaved.Filter(mask); fr.Detected || fr.Corrected != 2 {
		t.Fatalf("adjacent bits with interleave: %+v", fr)
	}
}

func TestSECDEDTripleBitSameWordEscapes(t *testing.T) {
	p := Protection{Kind: ProtectSECDED}
	fr := p.Filter(Mask{Cells: []Cell{{1, 0}, {1, 1}, {1, 2}}})
	if len(fr.Surviving.Cells) != 3 {
		t.Fatalf("triple-bit same word must escape as silent corruption: %+v", fr)
	}
}

func TestParitySemantics(t *testing.T) {
	p := Protection{Kind: ProtectParity}
	// Odd count: detected but not corrected.
	fr := p.Filter(Mask{Cells: []Cell{{0, 0}}})
	if !fr.Detected || len(fr.Surviving.Cells) != 1 {
		t.Fatalf("parity single-bit: %+v", fr)
	}
	// Even count in one word: silently passes.
	fr = p.Filter(Mask{Cells: []Cell{{0, 0}, {0, 1}}})
	if fr.Detected || len(fr.Surviving.Cells) != 2 {
		t.Fatalf("parity double-bit: %+v", fr)
	}
}

func TestNoProtectionPassesThrough(t *testing.T) {
	var p Protection
	m := Mask{Cells: []Cell{{0, 0}, {9, 9}}}
	fr := p.Filter(m)
	if len(fr.Surviving.Cells) != 2 || fr.Detected || fr.Corrected != 0 {
		t.Fatalf("no protection must be identity: %+v", fr)
	}
}

func TestProtectedCampaignReducesSDC(t *testing.T) {
	base := Spec{Workload: "stringSearch", Component: CompL1D, Faults: 1, Samples: 40, Seed: 9}
	unprot, err := Run(context.Background(), base, nil)
	if err != nil {
		t.Fatal(err)
	}
	prot := base
	prot.Protect = Protection{Kind: ProtectSECDED, Interleave: 4}
	protected, err := Run(context.Background(), prot, nil)
	if err != nil {
		t.Fatal(err)
	}
	// All single-bit faults are correctable under SECDED.
	if protected.Counts[EffectSDC] != 0 || protected.AVF() != 0 {
		t.Fatalf("SECDED left single-bit vulnerability: %+v", protected.Counts)
	}
	_ = unprot // baseline retained for comparison semantics
}

func TestSECDEDClusterStatistics(t *testing.T) {
	// Property: under SECDED with 4-way interleave, a random 2-bit cluster
	// mask is never "detected" when its two cells land in different words,
	// and the filter never invents cells.
	rng := rand.New(rand.NewPCG(4, 4))
	p := Protection{Kind: ProtectSECDED, Interleave: 4}
	for i := 0; i < 2000; i++ {
		m := GenerateMask(rng, 128, 530, 2, DefaultCluster)
		fr := p.Filter(m)
		total := fr.Corrected + len(fr.Surviving.Cells)
		if total != 2 {
			t.Fatalf("cells not conserved: %+v", fr)
		}
		a, b := p.logicalWord(m.Cells[0]), p.logicalWord(m.Cells[1])
		if a != b && (fr.Detected || fr.Corrected != 2) {
			t.Fatalf("cells in distinct words %v/%v mishandled: %+v", a, b, fr)
		}
		if a == b && !fr.Detected {
			t.Fatalf("cells in the same word not detected: %+v", fr)
		}
	}
}
