package core

import (
	"context"
	"runtime"
	"sync"
	"time"

	"mbusim/internal/telemetry"
)

// Grid orchestration: a campaign grid (components x workloads x
// cardinalities) is a list of independent cells, so the scheduler dispatches
// whole cells across a bounded worker pool. Sample-level parallelism alone
// underutilizes cores on small cells (a 4-sample cell leaves most of a
// machine idle); cell-level dispatch keeps every core busy for the whole
// grid while per-run seeding keeps results independent of scheduling.

// CellFunc receives each completed cell: its index into the spec slice and
// its result. RunGrid serializes invocations, so the callback may flush
// shared state (progress lines, a partial results file) without locking.
type CellFunc func(index int, res *Result)

// splitWorkers divides procs cores between cell-level and sample-level
// parallelism: parallel cells run concurrently (parallel < 1 means procs),
// each with sampleWorkers sample goroutines. The cell count is clamped to
// the grid size BEFORE the per-cell share is computed, so a small grid on
// a big machine redistributes the freed cores to sample workers instead of
// pinning them to procs/parallel (e.g. 2 cells on 16 cores run 2x8, not
// 2x1).
func splitWorkers(parallel, cells, procs int) (cellWorkers, sampleWorkers int) {
	if parallel < 1 {
		parallel = procs
	}
	if parallel > cells {
		parallel = cells
	}
	if parallel < 1 {
		return 0, 0 // empty grid
	}
	sampleWorkers = procs / parallel
	if sampleWorkers < 1 {
		sampleWorkers = 1
	}
	return parallel, sampleWorkers
}

// RunGrid runs every spec as one campaign cell, dispatching cells across a
// pool of at most parallel workers (parallel < 1 means GOMAXPROCS). Each
// cell's sample workers are bounded so the whole grid uses ~GOMAXPROCS
// goroutines regardless of the split. onCell, if non-nil, is called after
// every completed cell — the crash-safety hook: callers persist the partial
// grid there, so an interrupt or a later cell's failure cannot lose
// finished cells.
//
// The first cell error cancels the remaining cells and is returned; if ctx
// is cancelled, RunGrid drains its in-flight cells and returns ctx.Err().
// Either way, every onCell invocation made before the return describes a
// complete, valid cell.
func RunGrid(ctx context.Context, specs []Spec, parallel int, onCell CellFunc) error {
	return RunGridWithTelemetry(ctx, specs, parallel, onCell, nil)
}

// RunGridWithTelemetry is RunGrid with an optional telemetry sink: per
// completed cell it records queue-wait, run and flush durations plus the
// busy-worker gauge, and each sample inside a cell records its outcome,
// duration and checkpoint usage (see internal/telemetry). tel may be nil,
// which is exactly RunGrid.
func RunGridWithTelemetry(ctx context.Context, specs []Spec, parallel int, onCell CellFunc, tel *telemetry.Campaign) error {
	// Validate the whole grid before spending anything: a typo in cell 200
	// must not surface hours in.
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	cellWorkers, sampleWorkers := splitWorkers(parallel, len(specs), runtime.GOMAXPROCS(0))
	if cellWorkers == 0 {
		return nil
	}
	if tel.Enabled() {
		totalSamples := 0
		for _, s := range specs {
			totalSamples += s.Samples
		}
		tel.SetGridShape(len(specs), totalSamples, cellWorkers, sampleWorkers)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	type cellJob struct {
		idx      int
		enqueued time.Time
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // serializes onCell and firstErr
		firstErr error
		// Buffered to the whole grid: every cell enqueues immediately, so a
		// cell's queue-wait metric measures real time spent waiting for a
		// worker, and the dispatch loop below never blocks.
		next = make(chan cellJob, len(specs))
	)
	for i := 0; i < cellWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range next {
				if runCtx.Err() != nil {
					continue // cancelled: drain the queue without running
				}
				tel.RecordCellQueue(time.Since(job.enqueued))
				tel.WorkerBusy(1)
				started := time.Now()
				res, err := run(runCtx, specs[job.idx], nil, sampleWorkers, tel)
				runDur := time.Since(started)
				tel.WorkerBusy(-1)
				mu.Lock()
				switch {
				case err != nil:
					if firstErr == nil && err != context.Canceled {
						firstErr = err
					}
					cancel()
				default:
					tel.RecordCellRun(runDur)
					if onCell != nil {
						flushStart := time.Now()
						onCell(job.idx, res)
						tel.RecordCellFlush(time.Since(flushStart))
					}
					s := specs[job.idx]
					ev := telemetry.Event{Type: telemetry.EventCellDone,
						Cell: job.idx, Comp: s.Component, Workload: s.Workload,
						Faults: s.Faults, Samples: res.Samples()}
					for _, e := range Effects() {
						if n := res.Counts[e]; n > 0 {
							if ev.Counts == nil {
								ev.Counts = make(map[string]int)
							}
							ev.Counts[e.Label()] = n
						}
					}
					tel.Emit(ev)
				}
				mu.Unlock()
			}
		}()
	}
	for idx := range specs {
		if runCtx.Err() != nil {
			break
		}
		next <- cellJob{idx: idx, enqueued: time.Now()}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
