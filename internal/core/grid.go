package core

import (
	"context"
	"runtime"
	"sync"
)

// Grid orchestration: a campaign grid (components x workloads x
// cardinalities) is a list of independent cells, so the scheduler dispatches
// whole cells across a bounded worker pool. Sample-level parallelism alone
// underutilizes cores on small cells (a 4-sample cell leaves most of a
// machine idle); cell-level dispatch keeps every core busy for the whole
// grid while per-run seeding keeps results independent of scheduling.

// CellFunc receives each completed cell: its index into the spec slice and
// its result. RunGrid serializes invocations, so the callback may flush
// shared state (progress lines, a partial results file) without locking.
type CellFunc func(index int, res *Result)

// RunGrid runs every spec as one campaign cell, dispatching cells across a
// pool of at most parallel workers (parallel < 1 means GOMAXPROCS). Each
// cell's sample workers are bounded so the whole grid uses ~GOMAXPROCS
// goroutines regardless of the split. onCell, if non-nil, is called after
// every completed cell — the crash-safety hook: callers persist the partial
// grid there, so an interrupt or a later cell's failure cannot lose
// finished cells.
//
// The first cell error cancels the remaining cells and is returned; if ctx
// is cancelled, RunGrid drains its in-flight cells and returns ctx.Err().
// Either way, every onCell invocation made before the return describes a
// complete, valid cell.
func RunGrid(ctx context.Context, specs []Spec, parallel int, onCell CellFunc) error {
	// Validate the whole grid before spending anything: a typo in cell 200
	// must not surface hours in.
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(specs) {
		parallel = len(specs)
	}
	if parallel == 0 {
		return nil
	}
	// Split cores between cell-level and sample-level parallelism.
	sampleWorkers := runtime.GOMAXPROCS(0) / parallel
	if sampleWorkers < 1 {
		sampleWorkers = 1
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // serializes onCell and firstErr
		firstErr error
		next     = make(chan int)
	)
	for i := 0; i < parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				res, err := run(runCtx, specs[idx], nil, sampleWorkers)
				mu.Lock()
				switch {
				case err != nil:
					if firstErr == nil && err != context.Canceled {
						firstErr = err
					}
					cancel()
				case onCell != nil:
					onCell(idx, res)
				}
				mu.Unlock()
			}
		}()
	}
	for idx := range specs {
		if runCtx.Err() != nil {
			break
		}
		next <- idx
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
