package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSaveSyncsFileAndDirectory pins the crash-atomicity contract of Save:
// the temp file is fsynced BEFORE the rename (a power loss must not be
// able to replay the rename without the data, leaving an empty-but-renamed
// results file) and the directory is fsynced after it (so the rename
// itself is durable). Durability cannot be observed after the fact, so the
// fsync indirection records the calls.
func TestSaveSyncsFileAndDirectory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")

	var synced []string
	orig := fsync
	fsync = func(f *os.File) error {
		synced = append(synced, f.Name())
		return f.Sync()
	}
	defer func() { fsync = orig }()

	rs := NewResultSet()
	rs.Add(&Result{Spec: Spec{Workload: "stringSearch", Component: CompL1D,
		Faults: 1, Samples: 1, Seed: 1}, GoldenCycles: 10, TargetBits: 64})
	if err := rs.Save(path); err != nil {
		t.Fatal(err)
	}

	if len(synced) != 2 {
		t.Fatalf("Save issued %d fsyncs (%v), want 2: temp file then directory", len(synced), synced)
	}
	if !strings.Contains(filepath.Base(synced[0]), ".tmp") {
		t.Errorf("first fsync hit %q, want the temp file", synced[0])
	}
	if synced[1] != dir {
		t.Errorf("second fsync hit %q, want the directory %q", synced[1], dir)
	}

	// And the save itself still round-trips.
	loaded, err := LoadResultSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Cells) != 1 {
		t.Fatalf("loaded %d cells, want 1", len(loaded.Cells))
	}

	// A failing file fsync must abort the save, leaving no file behind.
	path2 := filepath.Join(dir, "sub", "r2.json")
	if err := os.Mkdir(filepath.Dir(path2), 0o755); err != nil {
		t.Fatal(err)
	}
	fsync = func(f *os.File) error { return os.ErrInvalid }
	if err := rs.Save(path2); err == nil {
		t.Fatal("Save ignored a failing fsync")
	}
	if _, err := os.Stat(path2); !os.IsNotExist(err) {
		t.Fatalf("failed save left %s behind (stat err=%v)", path2, err)
	}
	ents, err := os.ReadDir(filepath.Dir(path2))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("failed save left temp files behind: %v", ents)
	}
}
