package core

// Error-protection modeling: the paper's purpose is to guide protection
// decisions ("informed multi-bit error protection can be implemented in a
// CPU design", Sec. II), and its related work (refs [39], [46]) studies
// bit-interleaving against spatial MBUs. This extension evaluates those
// options on top of the measured fault model.
//
// A Protection describes a per-word code plus physical bit interleaving.
// With interleave degree I, physically adjacent columns belong to I
// different logical words (bit-slice interleaving), so a spatial cluster
// that spans adjacent columns is spread over several words and a SECDED
// code can correct what would otherwise be an uncorrectable multi-bit
// error.
//
// Modeling note: detection is evaluated at injection time, which is
// pessimistic for truly dead bits (a real DUE only fires when the word is
// read). The comparison between protection options is unaffected, which is
// what the ablation reports.

import "fmt"

// ProtectionKind selects the per-word code.
type ProtectionKind int

const (
	// ProtectNone leaves the structure unprotected (the paper's setup:
	// vulnerability is assessed before protection is chosen).
	ProtectNone ProtectionKind = iota
	// ProtectParity detects an odd number of flipped bits per word.
	ProtectParity
	// ProtectSECDED corrects single-bit and detects double-bit errors per
	// word.
	ProtectSECDED
)

func (k ProtectionKind) String() string {
	switch k {
	case ProtectNone:
		return "none"
	case ProtectParity:
		return "parity"
	case ProtectSECDED:
		return "secded"
	}
	return "unknown"
}

// wordBits is the logical protection word size.
const wordBits = 32

// Protection is a protection configuration for one structure.
type Protection struct {
	Kind       ProtectionKind
	Interleave int // physical interleaving degree; 0 or 1 means none
}

// Validate reports an impossible protection configuration.
func (p Protection) Validate() error {
	switch p.Kind {
	case ProtectNone, ProtectParity, ProtectSECDED:
	default:
		return fmt.Errorf("core: unknown protection kind %d", int(p.Kind))
	}
	if p.Interleave < 0 {
		return fmt.Errorf("core: negative interleave degree %d", p.Interleave)
	}
	return nil
}

// logicalWord maps a physical cell to its logical word identity under the
// interleaving: with degree I, physical column c carries bit c/I of the
// word (row, c mod I, (c/I)/wordBits).
func (p Protection) logicalWord(cell Cell) [3]int {
	il := p.Interleave
	if il < 1 {
		il = 1
	}
	return [3]int{cell.Row, cell.Col % il, (cell.Col / il) / wordBits}
}

// FilterResult describes what the protection did to a fault mask.
type FilterResult struct {
	Surviving Mask // flips that escape correction and reach the array
	Corrected int  // bits removed by SECDED single-bit correction
	Detected  bool // at least one word signalled an uncorrectable error
}

// Filter applies the protection to a mask.
func (p Protection) Filter(m Mask) FilterResult {
	if p.Kind == ProtectNone {
		return FilterResult{Surviving: m}
	}
	words := make(map[[3]int][]Cell)
	for _, c := range m.Cells {
		w := p.logicalWord(c)
		words[w] = append(words[w], c)
	}
	var out FilterResult
	for _, cells := range words {
		switch p.Kind {
		case ProtectParity:
			if len(cells)%2 == 1 {
				out.Detected = true
			}
			// Parity cannot correct: the flips stay (even counts pass
			// silently, odd counts are flagged but the data is still bad).
			out.Surviving.Cells = append(out.Surviving.Cells, cells...)
		case ProtectSECDED:
			switch len(cells) {
			case 1:
				out.Corrected++
			case 2:
				out.Detected = true
				out.Surviving.Cells = append(out.Surviving.Cells, cells...)
			default:
				// Three or more flips in one word alias a correctable
				// syndrome: silent corruption (possibly miscorrection).
				out.Surviving.Cells = append(out.Surviving.Cells, cells...)
			}
		}
	}
	return out
}
