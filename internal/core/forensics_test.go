package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"mbusim/internal/forensics"
	"mbusim/internal/telemetry"
)

// forensicsGrid is a small real grid: fast stringSearch cells for breadth
// plus one CRC32/L1D cell, whose data faults reliably become SDC (~70-80%),
// so the SDC-fate invariant is actually exercised.
func forensicsGrid(samples int) []Spec {
	var specs []Spec
	for _, c := range []string{CompL1D, CompRF} {
		for k := 1; k <= 2; k++ {
			specs = append(specs, Spec{
				Workload: "stringSearch", Component: c, Faults: k,
				Samples: samples, Seed: 21, Forensics: forensics.ModeFast,
			})
		}
	}
	specs = append(specs, Spec{
		Workload: "CRC32", Component: CompL1D, Faults: 2,
		Samples: 6, Seed: 21, Forensics: forensics.ModeFast,
	})
	return specs
}

// traceFor runs the grid with a tracer and returns the parsed trace.
func traceFor(t *testing.T, specs []Spec, parallel int) (*telemetry.Trace, string) {
	t.Helper()
	var buf bytes.Buffer
	tel := telemetry.NewCampaign(telemetry.NewTracer(&buf))
	err := RunGridWithTelemetry(context.Background(), specs, parallel, nil, tel)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := telemetry.ReadTraceTyped(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return tr, buf.String()
}

// TestForensicsGridInvariants is the tentpole acceptance test: with
// forensics enabled, every sample gets exactly one forensics record, fate
// counts sum to the sample count, and — the load-bearing invariant — every
// sample classified SDC has a fate that explains it: the corrupted bit was
// read, escaped in a writeback, or diverged the shadow machine. A silently
// un-explained SDC would mean the probes miss a datapath.
func TestForensicsGridInvariants(t *testing.T) {
	specs := forensicsGrid(10)
	trace, _ := traceFor(t, specs, 2)

	total := 0
	for _, s := range specs {
		total += s.Samples
	}
	if len(trace.Samples) != total {
		t.Fatalf("trace has %d sample records, want %d", len(trace.Samples), total)
	}
	if len(trace.Fates) != total {
		t.Fatalf("trace has %d forensics records, want exactly one per sample (%d)",
			len(trace.Fates), total)
	}

	// Exactly one fate per (cell, sample), outcome matching its sample record.
	type sampleKey struct {
		comp, wl  string
		faults, i int
	}
	outcomes := make(map[sampleKey]string, total)
	for _, s := range trace.Samples {
		outcomes[sampleKey{s.Component, s.Workload, s.Faults, s.Sample}] = s.Outcome
	}
	seen := make(map[sampleKey]bool, total)
	fateLabels := make(map[string]bool)
	for _, f := range forensics.Fates() {
		fateLabels[f.Label()] = true
	}
	sdcSeen := 0
	for _, f := range trace.Fates {
		k := sampleKey{f.Component, f.Workload, f.Faults, f.Sample}
		if seen[k] {
			t.Fatalf("duplicate forensics record for %+v", k)
		}
		seen[k] = true
		out, ok := outcomes[k]
		if !ok {
			t.Fatalf("forensics record %+v has no matching sample record", k)
		}
		if f.Outcome != out {
			t.Errorf("%+v: forensics outcome %q != sample outcome %q", k, f.Outcome, out)
		}
		if !fateLabels[f.Fate] {
			t.Errorf("%+v: unknown fate %q", k, f.Fate)
		}
		if len(f.Mask) != f.Faults {
			t.Errorf("%+v: mask has %d bits, want %d", k, len(f.Mask), f.Faults)
		}
		if (f.FirstTouchLat == -1) != (f.Fate == "never-touched") {
			t.Errorf("%+v: fate %q with first_touch_lat %d (lat==-1 iff never-touched)",
				k, f.Fate, f.FirstTouchLat)
		}
		if out == "sdc" {
			sdcSeen++
			switch f.Fate {
			case "read-then-sdc", "written-back", "diverged":
			default:
				t.Errorf("%+v: SDC sample has unexplaining fate %q", k, f.Fate)
			}
		}
	}
	// The seeded grid is deterministic; it must actually exercise the SDC
	// invariant rather than pass vacuously.
	if sdcSeen == 0 {
		t.Fatal("grid produced no SDC samples; invariant untested (grow the grid)")
	}
}

// TestForensicsOutcomesUnchanged: the probes only observe, so a cell's
// classified counts are identical with forensics off, fast and full.
func TestForensicsOutcomesUnchanged(t *testing.T) {
	base := Spec{
		Workload: "stringSearch", Component: CompL1D, Faults: 2,
		Samples: 8, Seed: 7,
	}
	var counts [3][NumEffects]int
	for i, mode := range []forensics.Mode{forensics.ModeOff, forensics.ModeFast, forensics.ModeFull} {
		spec := base
		spec.Forensics = mode
		res, err := Run(context.Background(), spec, nil)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		counts[i] = res.Counts
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Fatalf("classified counts depend on forensics mode:\noff:  %v\nfast: %v\nfull: %v",
			counts[0], counts[1], counts[2])
	}
}

// TestForensicsFullModeDivergence: full mode records divergence cycles, and
// any diverged fate carries a non-zero cycle at or after injection.
func TestForensicsFullModeDivergence(t *testing.T) {
	spec := Spec{
		Workload: "stringSearch", Component: CompRF, Faults: 2,
		Samples: 10, Seed: 21, Forensics: forensics.ModeFull,
	}
	trace, _ := traceFor(t, []Spec{spec}, 1)
	if len(trace.Fates) != spec.Samples {
		t.Fatalf("got %d forensics records, want %d", len(trace.Fates), spec.Samples)
	}
	withDiverge := 0
	for _, f := range trace.Fates {
		if f.DivergeCycle != 0 {
			withDiverge++
			if f.DivergeCycle < f.InjectCycle {
				t.Errorf("sample %d: diverge cycle %d precedes injection at %d",
					f.Sample, f.DivergeCycle, f.InjectCycle)
			}
		}
		if f.Fate == "diverged" && f.DivergeCycle == 0 {
			t.Errorf("sample %d: diverged fate without a diverge cycle", f.Sample)
		}
	}
	// Register-file faults in a live workload overwhelmingly become
	// architecturally visible; the shadow comparison must see some of them.
	if withDiverge == 0 {
		t.Fatal("full mode observed no divergences across 10 register-file faults")
	}
}

// forensicsLines extracts the forensics records of a raw trace, preserving
// bytes and order.
func forensicsLines(raw string) string {
	var b strings.Builder
	for _, ln := range strings.Split(raw, "\n") {
		if strings.Contains(ln, `"type":"forensics"`) {
			b.WriteString(ln)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestForensicsResumeByteIdentity is the second acceptance criterion: the
// fate records of an interrupted-then-resumed campaign are byte-identical
// to an uninterrupted run with the same seed. Sample records carry
// wall-clock durations so the comparison is over the forensics records,
// which are fully deterministic. parallel=1 keeps cell order stable.
func TestForensicsResumeByteIdentity(t *testing.T) {
	specs := forensicsGrid(6)

	// Uninterrupted reference.
	_, fullRaw := traceFor(t, specs, 1)
	want := forensicsLines(fullRaw)
	if want == "" {
		t.Fatal("reference run produced no forensics records")
	}

	// Interrupted run: cancel once the second cell has flushed.
	var buf bytes.Buffer
	tel := telemetry.NewCampaign(telemetry.NewTracer(&buf))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := NewResultSet()
	cells := 0
	err := RunGridWithTelemetry(ctx, specs, 1, func(_ int, r *Result) {
		done.Add(r)
		cells++
		if cells == 2 {
			cancel()
		}
	}, tel)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted grid returned %v, want context.Canceled", err)
	}
	if len(done.Cells) >= len(specs) {
		t.Fatal("interrupt landed after the whole grid; nothing left to resume")
	}

	// Resume the pending cells into the same trace stream.
	pending := done.Pending(specs)
	if err := RunGridWithTelemetry(context.Background(), pending, 1, nil, tel); err != nil {
		t.Fatal(err)
	}
	got := forensicsLines(buf.String())
	if got != want {
		t.Fatalf("fate records differ between resumed and uninterrupted runs:\nresumed %d bytes, uninterrupted %d bytes",
			len(got), len(want))
	}
}
