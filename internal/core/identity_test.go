package core

import (
	"testing"
	"time"

	"mbusim/internal/forensics"
)

// The canonical spec identity (Normalize/Equivalent) is what -resume and
// the coordinator's submit verification trust. These tests pin its two
// contracts: every outcome-affecting field distinguishes specs, and every
// outcome-neutral knob (plus default-filling) does not.

func baseSpec() Spec {
	return Spec{
		Workload: "sha", Component: CompL1D, Faults: 2,
		Samples: 40, Seed: 7,
	}
}

func TestSpecNormalizeDefaults(t *testing.T) {
	n := baseSpec().Normalize()
	if n.Cluster != DefaultCluster {
		t.Fatalf("zero cluster not defaulted: %+v", n.Cluster)
	}
	if n.TimeoutFactor != 4 {
		t.Fatalf("zero timeout factor not defaulted: %v", n.TimeoutFactor)
	}

	// ProtectNone discards the meaningless interleave; a real scheme
	// canonicalizes interleave 0 to 1 (they mean the same thing).
	s := baseSpec()
	s.Protect = Protection{Kind: ProtectNone, Interleave: 4}
	if got := s.Normalize().Protect; got != (Protection{}) {
		t.Fatalf("ProtectNone kept interleave: %+v", got)
	}
	s.Protect = Protection{Kind: ProtectSECDED}
	if got := s.Normalize().Protect; got.Interleave != 1 {
		t.Fatalf("interleave 0 not canonicalized to 1: %+v", got)
	}
}

func TestSpecEquivalentRejectsOutcomeFields(t *testing.T) {
	// Each mutation changes a field that alters the outcome distribution;
	// all must break equivalence.
	muts := map[string]func(*Spec){
		"workload":      func(s *Spec) { s.Workload = "CRC32" },
		"component":     func(s *Spec) { s.Component = CompL2 },
		"faults":        func(s *Spec) { s.Faults = 3 },
		"samples":       func(s *Spec) { s.Samples = 41 },
		"seed":          func(s *Spec) { s.Seed = 8 },
		"cluster":       func(s *Spec) { s.Cluster = ClusterSpec{Rows: 2, Cols: 8} },
		"timeoutFactor": func(s *Spec) { s.TimeoutFactor = 8 },
		"wallTimeout":   func(s *Spec) { s.WallTimeout = time.Second },
		"forceSpanning": func(s *Spec) { s.ForceSpanning = true },
		"protect":       func(s *Spec) { s.Protect = Protection{Kind: ProtectParity} },
		"interleave": func(s *Spec) {
			s.Protect = Protection{Kind: ProtectSECDED, Interleave: 4}
		},
	}
	for name, mut := range muts {
		a, b := baseSpec(), baseSpec()
		if name == "interleave" {
			// Same kind, different interleave: the degree alone must matter.
			a.Protect = Protection{Kind: ProtectSECDED, Interleave: 2}
		}
		mut(&b)
		if a.Equivalent(b) {
			t.Errorf("%s: changed field treated as equivalent", name)
		}
	}
}

func TestSpecEquivalentAcceptsNeutralKnobs(t *testing.T) {
	muts := map[string]func(*Spec){
		"noCheckpoints": func(s *Spec) { s.NoCheckpoints = true },
		"noDelta":       func(s *Spec) { s.NoDelta = true },
		"forensics":     func(s *Spec) { s.Forensics = forensics.ModeFull },
		"defaultCluster": func(s *Spec) {
			s.Cluster = DefaultCluster // explicit default == zero value
		},
		"defaultTimeout": func(s *Spec) { s.TimeoutFactor = 4 },
	}
	for name, mut := range muts {
		a, b := baseSpec(), baseSpec()
		mut(&b)
		if !a.Equivalent(b) {
			t.Errorf("%s: outcome-neutral knob broke equivalence", name)
		}
	}
	// Interleave 0 and 1 mean the same physical layout.
	a, b := baseSpec(), baseSpec()
	a.Protect = Protection{Kind: ProtectSECDED, Interleave: 0}
	b.Protect = Protection{Kind: ProtectSECDED, Interleave: 1}
	if !a.Equivalent(b) {
		t.Error("interleave 0 vs 1 broke equivalence")
	}
}

// TestCoversOutcomeFields pins the resume bug this identity fixed: a stored
// result must NOT cover a spec whose cluster geometry, timeout, spanning
// mode or protection differ — those change the counts, and -resume would
// silently keep stale ones.
func TestCoversOutcomeFields(t *testing.T) {
	rs := NewResultSet()
	rs.Add(fakeResult(CompL1D, "sha", 2, 40, 7))
	spec := baseSpec()
	if !rs.Covers(spec) {
		t.Fatal("matching spec not covered")
	}
	for name, mut := range map[string]func(*Spec){
		"cluster":       func(s *Spec) { s.Cluster = ClusterSpec{Rows: 4, Cols: 4} },
		"timeoutFactor": func(s *Spec) { s.TimeoutFactor = 2 },
		"wallTimeout":   func(s *Spec) { s.WallTimeout = time.Minute },
		"forceSpanning": func(s *Spec) { s.ForceSpanning = true },
		"protect":       func(s *Spec) { s.Protect = Protection{Kind: ProtectSECDED} },
	} {
		m := spec
		mut(&m)
		if rs.Covers(m) {
			t.Errorf("%s: changed outcome field still covered", name)
		}
	}
	// Execution-strategy knobs leave the outcome distribution untouched, so
	// the stored result still stands.
	for name, mut := range map[string]func(*Spec){
		"noCheckpoints": func(s *Spec) { s.NoCheckpoints = true },
		"noDelta":       func(s *Spec) { s.NoDelta = true },
		"forensics":     func(s *Spec) { s.Forensics = forensics.ModeFast },
	} {
		m := spec
		mut(&m)
		if !rs.Covers(m) {
			t.Errorf("%s: neutral knob broke coverage", name)
		}
	}
}
