// Package core implements the paper's primary contribution: the
// GeFIN-style microarchitecture-level fault-injection framework extended
// with a spatial multi-bit upset generator.
//
// Faults are bit flips in the real state arrays of the simulated machine
// (caches, TLBs, physical register file). A fault mask is a set of cells
// inside a small cluster (3x3 by default, following Ibe et al.) placed at a
// random position in the component's two-dimensional bit geometry; the mask
// is applied at a random cycle of a workload's execution and the run's
// outcome is classified as Masked, SDC, Crash, Timeout or Assert against
// the fault-free golden run.
package core

import (
	"fmt"

	"mbusim/internal/sim"
)

// Target is an injectable hardware structure exposing its SRAM bit
// geometry. The cache, TLB and register-file types satisfy it.
type Target interface {
	Name() string
	Rows() int
	Cols() int
	FlipBit(row, col int)
}

// Component names, matching the paper's six structures.
const (
	CompL1D  = "L1D"
	CompL1I  = "L1I"
	CompL2   = "L2"
	CompRF   = "RegFile"
	CompDTLB = "DTLB"
	CompITLB = "ITLB"
)

// Components returns the six structures in the paper's presentation order.
func Components() []string {
	return []string{CompL1D, CompL1I, CompL2, CompRF, CompDTLB, CompITLB}
}

// TargetFor returns the named component of a machine.
func TargetFor(m *sim.Machine, component string) (Target, error) {
	switch component {
	case CompL1D:
		return m.L1D, nil
	case CompL1I:
		return m.L1I, nil
	case CompL2:
		return m.L2, nil
	case CompRF:
		return m.Core.RegFile(), nil
	case CompDTLB:
		return m.DTLB, nil
	case CompITLB:
		return m.ITLB, nil
	}
	return nil, fmt.Errorf("core: unknown component %q", component)
}
