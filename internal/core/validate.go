package core

import (
	"fmt"
	"strings"

	"mbusim/internal/forensics"
	"mbusim/internal/workloads"
)

// Validate reports the first configuration error in a spec: an unknown
// component or workload, a fault cardinality the cluster cannot hold, a
// non-positive sample count, or a nonsensical timeout factor. Run calls it
// before spawning any worker, so a bad spec fails with a clean error
// instead of a GenerateMask panic inside a worker goroutine. Zero-value
// Cluster and TimeoutFactor fields are validated as their defaults, exactly
// as Run would run them.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if s.Cluster.Rows < 1 || s.Cluster.Cols < 1 {
		return fmt.Errorf("core: invalid %dx%d cluster", s.Cluster.Rows, s.Cluster.Cols)
	}
	if capacity := s.Cluster.Rows * s.Cluster.Cols; s.Faults < 1 || s.Faults > capacity {
		return fmt.Errorf("core: fault cardinality %d outside 1..%d (%dx%d cluster)",
			s.Faults, capacity, s.Cluster.Rows, s.Cluster.Cols)
	}
	if s.Samples < 1 {
		return fmt.Errorf("core: sample count %d, need at least 1", s.Samples)
	}
	if s.TimeoutFactor < 1 {
		return fmt.Errorf("core: timeout factor %g, need at least 1 (golden runs must fit)", s.TimeoutFactor)
	}
	if s.WallTimeout < 0 {
		return fmt.Errorf("core: negative wall timeout %v", s.WallTimeout)
	}
	if s.Forensics < forensics.ModeOff || s.Forensics > forensics.ModeFull {
		return fmt.Errorf("core: invalid forensics mode %d (want %v, %v or %v)",
			int(s.Forensics), forensics.ModeOff, forensics.ModeFast, forensics.ModeFull)
	}
	if err := ValidComponent(s.Component); err != nil {
		return err
	}
	if err := ValidWorkload(s.Workload); err != nil {
		return err
	}
	return s.Protect.Validate()
}

// ValidComponent reports whether name is one of the six injectable
// structures, with an error that lists them (component names are
// case-sensitive: L1D, not L1d).
func ValidComponent(name string) error {
	for _, c := range Components() {
		if name == c {
			return nil
		}
	}
	return fmt.Errorf("core: unknown component %q (components: %s)",
		name, strings.Join(Components(), ", "))
}

// ValidWorkload reports whether name is a registered workload, with an
// error that lists the registry.
func ValidWorkload(name string) error {
	if workloads.Exists(name) {
		return nil
	}
	return fmt.Errorf("core: unknown workload %q (workloads: %s)",
		name, strings.Join(workloads.Names(), ", "))
}
