package core

import (
	"fmt"
	"math/rand/v2"
)

// ClusterSpec is the cluster geometry for spatial multi-bit faults. The
// paper uses 3x3 (quadruple-bit and larger upsets have near-zero rates in
// the technology data, so one cluster covers all modelled cardinalities).
type ClusterSpec struct {
	Rows, Cols int
}

// DefaultCluster is the paper's 3x3 cluster.
var DefaultCluster = ClusterSpec{Rows: 3, Cols: 3}

// Cell is one bit position in a component's geometry.
type Cell struct {
	Row, Col int
}

// Mask is a set of bits to flip, all inside one cluster placement. Like the
// paper's generator (and unlike the MBU encoding of Ibe et al.), patterns
// that would fit a smaller cluster are allowed: sub-clusters are part of
// the modelled population.
type Mask struct {
	Cells []Cell
}

// GenerateMask places cluster at a random position inside a rows x cols
// geometry and picks k distinct cells inside it. It panics if the geometry
// cannot fit the cluster or k exceeds the cluster capacity — configuration
// errors, not runtime conditions.
func GenerateMask(rng *rand.Rand, rows, cols, k int, cluster ClusterSpec) Mask {
	return generateMask(rng, rows, cols, k, cluster, nil)
}

// generateMask is GenerateMask with an optional scratch holder: when sc is
// non-nil, its buffers back the Fisher-Yates permutation and the returned
// mask's cells, so the campaign's hot sample path draws masks without
// allocating. The returned mask then aliases sc.cells and is only valid
// until the scratch's next use — callers that retain masks (the forensics
// trace) must pass nil.
func generateMask(rng *rand.Rand, rows, cols, k int, cluster ClusterSpec, sc *sampleScratch) Mask {
	if cluster.Rows <= 0 || cluster.Cols <= 0 {
		panic("core: invalid cluster")
	}
	if k <= 0 || k > cluster.Rows*cluster.Cols {
		panic(fmt.Sprintf("core: cannot place %d faults in a %dx%d cluster", k, cluster.Rows, cluster.Cols))
	}
	if rows < cluster.Rows || cols < cluster.Cols {
		panic(fmt.Sprintf("core: %dx%d geometry cannot fit a %dx%d cluster", rows, cols, cluster.Rows, cluster.Cols))
	}
	r0 := rng.IntN(rows - cluster.Rows + 1)
	c0 := rng.IntN(cols - cluster.Cols + 1)

	// Choose k distinct cells of the cluster (partial Fisher-Yates over the
	// cluster's cell indices).
	n := cluster.Rows * cluster.Cols
	var idx []int
	var cells []Cell
	if sc != nil {
		if cap(sc.idx) < n {
			sc.idx = make([]int, n)
		}
		idx = sc.idx[:n]
		cells = sc.cells[:0]
	} else {
		idx = make([]int, n)
		cells = make([]Cell, 0, k)
	}
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		cells = append(cells, Cell{
			Row: r0 + idx[i]/cluster.Cols,
			Col: c0 + idx[i]%cluster.Cols,
		})
	}
	if sc != nil {
		sc.cells = cells // keep any grown capacity for the next draw
	}
	return Mask{Cells: cells}
}

// Apply flips every cell of the mask in the target.
func (m Mask) Apply(t Target) {
	for _, c := range m.Cells {
		t.FlipBit(c.Row, c.Col)
	}
}

// Spanning reports whether the mask actually spans the full cluster extent
// in at least one dimension (used by the sub-cluster ablation).
func (m Mask) Spanning(cluster ClusterSpec) bool {
	if len(m.Cells) == 0 {
		return false
	}
	minR, maxR := m.Cells[0].Row, m.Cells[0].Row
	minC, maxC := m.Cells[0].Col, m.Cells[0].Col
	for _, c := range m.Cells[1:] {
		if c.Row < minR {
			minR = c.Row
		}
		if c.Row > maxR {
			maxR = c.Row
		}
		if c.Col < minC {
			minC = c.Col
		}
		if c.Col > maxC {
			maxC = c.Col
		}
	}
	return maxR-minR == cluster.Rows-1 || maxC-minC == cluster.Cols-1
}
