package core

import "encoding/json"

// resultSetJSON is the serialised form of a ResultSet: a flat list of cell
// results (map keys are structs, which JSON cannot encode directly).
type resultSetJSON struct {
	Results []*Result
}

// MarshalJSON encodes the result set as a flat result list.
func (rs *ResultSet) MarshalJSON() ([]byte, error) {
	enc := resultSetJSON{Results: make([]*Result, 0, len(rs.Cells))}
	for _, k := range rs.sortedKeys() {
		enc.Results = append(enc.Results, rs.Cells[k])
	}
	return json.Marshal(enc)
}

// UnmarshalJSON decodes a flat result list back into the cell map.
func (rs *ResultSet) UnmarshalJSON(data []byte) error {
	var enc resultSetJSON
	if err := json.Unmarshal(data, &enc); err != nil {
		return err
	}
	rs.Cells = make(map[CellKey]*Result, len(enc.Results))
	for _, r := range enc.Results {
		rs.Add(r)
	}
	return nil
}

func (rs *ResultSet) sortedKeys() []CellKey {
	keys := make([]CellKey, 0, len(rs.Cells))
	for k := range rs.Cells {
		keys = append(keys, k)
	}
	// Deterministic order: component, workload, faults.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && lessKey(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func lessKey(a, b CellKey) bool {
	if a.Component != b.Component {
		return a.Component < b.Component
	}
	if a.Workload != b.Workload {
		return a.Workload < b.Workload
	}
	return a.Faults < b.Faults
}
