package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// resultSetJSON is the serialised form of a ResultSet: a flat list of cell
// results (map keys are structs, which JSON cannot encode directly).
type resultSetJSON struct {
	Results []*Result
}

// MarshalJSON encodes the result set as a flat result list.
func (rs *ResultSet) MarshalJSON() ([]byte, error) {
	enc := resultSetJSON{Results: make([]*Result, 0, len(rs.Cells))}
	for _, k := range rs.sortedKeys() {
		enc.Results = append(enc.Results, rs.Cells[k])
	}
	return json.Marshal(enc)
}

// UnmarshalJSON decodes a flat result list back into the cell map.
func (rs *ResultSet) UnmarshalJSON(data []byte) error {
	var enc resultSetJSON
	if err := json.Unmarshal(data, &enc); err != nil {
		return err
	}
	rs.Cells = make(map[CellKey]*Result, len(enc.Results))
	for _, r := range enc.Results {
		rs.Add(r)
	}
	return nil
}

// Encode returns the canonical serialized form of the result set: indented
// JSON with cells in sorted key order. Two result sets holding the same
// cells encode byte-identically regardless of insertion order — the
// property the resume-equivalence guarantee is stated in.
func (rs *ResultSet) Encode() ([]byte, error) {
	return json.MarshalIndent(rs, "", " ")
}

// fsync is the file synchronization call Save issues, indirected so tests
// can assert the write path actually syncs (there is no portable way to
// observe durability after the fact).
var fsync = func(f *os.File) error { return f.Sync() }

// Save writes the canonical encoding to path atomically AND durably: the
// bytes go to a temporary file in the same directory, the temp file is
// fsynced before the rename (otherwise a power loss can replay the rename
// without the data, leaving an empty-but-renamed results file), and the
// directory is fsynced after it so the rename itself survives. A crash at
// any point leaves either the previous complete file or the new one, never
// a truncated hybrid. Campaign runners call it after every completed cell.
func (rs *ResultSet) Save(path string) error {
	data, err := rs.Encode()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := fsync(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return fsync(d)
}

// LoadResultSet reads a results file written by Save (or any marshalled
// ResultSet).
func LoadResultSet(path string) (*ResultSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rs := NewResultSet()
	if err := json.Unmarshal(data, rs); err != nil {
		return nil, fmt.Errorf("core: %s: %w", path, err)
	}
	return rs, nil
}

// Covers reports whether the set already holds a result for the spec's cell
// produced by an equivalent campaign (Spec.Equivalent: every
// outcome-affecting field matches after normalization, not just the cell
// key). Seeded determinism then guarantees re-running the cell would
// reproduce the stored counts exactly, so a resumed campaign may skip it.
// A stored result for the same cell under a different cluster geometry,
// timeout, spanning mode or protection scheme does NOT cover the spec —
// those knobs change the outcome distribution, and resuming over them
// would silently keep stale counts.
func (rs *ResultSet) Covers(spec Spec) bool {
	r, ok := rs.Cells[spec.Key()]
	return ok && r.Spec.Equivalent(spec)
}

// Pending filters a grid down to the cells the set does not cover — the
// work remaining for a resumed campaign. The relative order of specs is
// preserved.
func (rs *ResultSet) Pending(specs []Spec) []Spec {
	var out []Spec
	for _, s := range specs {
		if !rs.Covers(s) {
			out = append(out, s)
		}
	}
	return out
}

func (rs *ResultSet) sortedKeys() []CellKey {
	keys := make([]CellKey, 0, len(rs.Cells))
	for k := range rs.Cells {
		keys = append(keys, k)
	}
	// Deterministic order: component, workload, faults.
	sort.Slice(keys, func(i, j int) bool { return lessKey(keys[i], keys[j]) })
	return keys
}

func lessKey(a, b CellKey) bool {
	if a.Component != b.Component {
		return a.Component < b.Component
	}
	if a.Workload != b.Workload {
		return a.Workload < b.Workload
	}
	return a.Faults < b.Faults
}
