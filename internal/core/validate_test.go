package core

import (
	"context"
	"strings"
	"testing"
)

func validSpec() Spec {
	return Spec{Workload: "stringSearch", Component: CompL1D, Faults: 2, Samples: 10, Seed: 1}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	// The zero Cluster/TimeoutFactor must validate as their defaults.
	s := validSpec()
	s.Cluster = ClusterSpec{}
	s.TimeoutFactor = 0
	if err := s.Validate(); err != nil {
		t.Fatalf("zero-value defaults rejected: %v", err)
	}
}

func TestValidateFaultCardinality(t *testing.T) {
	for _, k := range []int{0, -1, 10} { // 3x3 default cluster holds 1..9
		s := validSpec()
		s.Faults = k
		if err := s.Validate(); err == nil {
			t.Errorf("faults=%d accepted", k)
		}
	}
	// The bound follows the cluster: 5 faults fit 3x3 (capacity 9) but not
	// 2x2 (capacity 4).
	s := validSpec()
	s.Faults = 5
	if err := s.Validate(); err != nil {
		t.Fatalf("faults=5 in 3x3 rejected: %v", err)
	}
	s.Cluster = ClusterSpec{Rows: 2, Cols: 2}
	if err := s.Validate(); err == nil {
		t.Fatal("faults=5 in 2x2 accepted")
	}
}

func TestValidateSamplesAndTimeout(t *testing.T) {
	s := validSpec()
	s.Samples = 0
	if err := s.Validate(); err == nil {
		t.Fatal("samples=0 accepted")
	}
	s = validSpec()
	s.TimeoutFactor = 0.5
	if err := s.Validate(); err == nil {
		t.Fatal("timeout factor below 1 accepted")
	}
}

func TestValidateNames(t *testing.T) {
	s := validSpec()
	s.Component = "L1d" // case matters; the error must list the real names
	err := s.Validate()
	if err == nil || !strings.Contains(err.Error(), "L1D") {
		t.Fatalf("component typo: %v", err)
	}
	s = validSpec()
	s.Workload = "stringsearch"
	err = s.Validate()
	if err == nil || !strings.Contains(err.Error(), "stringSearch") {
		t.Fatalf("workload typo: %v", err)
	}
}

func TestValidateProtection(t *testing.T) {
	s := validSpec()
	s.Protect = Protection{Kind: ProtectionKind(99)}
	if err := s.Validate(); err == nil {
		t.Fatal("unknown protection kind accepted")
	}
	s.Protect = Protection{Kind: ProtectSECDED, Interleave: -4}
	if err := s.Validate(); err == nil {
		t.Fatal("negative interleave accepted")
	}
}

// TestRunValidates: the regression this PR fixes — a bad cardinality used
// to panic in GenerateMask inside a worker goroutine; it must now come back
// as a clean error from Run before any worker starts.
func TestRunValidates(t *testing.T) {
	s := validSpec()
	s.Faults = 0
	if _, err := Run(context.Background(), s, nil); err == nil {
		t.Fatal("Run accepted faults=0")
	}
	s = validSpec()
	s.Samples = -1
	if _, err := Run(context.Background(), s, nil); err == nil {
		t.Fatal("Run accepted samples=-1")
	}
}
