package core

import (
	"context"
	"encoding/json"
	"testing"

	"mbusim/internal/cpu"
	"mbusim/internal/sim"
	"mbusim/internal/workloads"
)

func golden() *workloads.Golden {
	return &workloads.Golden{Cycles: 1000, Stdout: []byte("ok\n"), ExitCode: 0}
}

func TestClassify(t *testing.T) {
	g := golden()
	cases := []struct {
		name string
		out  sim.Outcome
		want Effect
	}{
		{"masked", sim.Outcome{Stop: cpu.StopExit, Stdout: []byte("ok\n")}, EffectMasked},
		{"sdc output", sim.Outcome{Stop: cpu.StopExit, Stdout: []byte("KO\n")}, EffectSDC},
		{"sdc exit code", sim.Outcome{Stop: cpu.StopExit, Stdout: []byte("ok\n"), ExitCode: 3}, EffectSDC},
		{"sdc truncated", sim.Outcome{Stop: cpu.StopExit, Stdout: []byte("ok\n"), Truncated: true}, EffectSDC},
		{"crash undef", sim.Outcome{Stop: cpu.StopUndef}, EffectCrash},
		{"crash segv", sim.Outcome{Stop: cpu.StopSegv}, EffectCrash},
		{"crash align", sim.Outcome{Stop: cpu.StopAlign}, EffectCrash},
		{"crash killed", sim.Outcome{Stop: cpu.StopKilled}, EffectCrash},
		{"crash kernel panic", sim.Outcome{Stop: cpu.StopKernelPanic}, EffectCrash},
		{"timeout limit", sim.Outcome{TimedOut: true}, EffectTimeout},
		{"timeout deadlock", sim.Outcome{Stop: cpu.StopDeadlock}, EffectTimeout},
		{"assert", sim.Outcome{Assert: true, Stop: cpu.StopNone}, EffectAssert},
		{"assert wins over exit", sim.Outcome{Assert: true, Stop: cpu.StopExit, Stdout: []byte("ok\n")}, EffectAssert},
	}
	for _, tc := range cases {
		if got := Classify(tc.out, g); got != tc.want {
			t.Errorf("%s: classified %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestEffectStrings(t *testing.T) {
	for _, e := range Effects() {
		if e.String() == "Unknown" {
			t.Fatalf("effect %d has no name", e)
		}
	}
	if len(Effects()) != int(NumEffects) {
		t.Fatal("Effects() incomplete")
	}
}

func TestResultAccounting(t *testing.T) {
	r := &Result{GoldenCycles: 1000}
	r.Counts[EffectMasked] = 60
	r.Counts[EffectSDC] = 25
	r.Counts[EffectCrash] = 10
	r.Counts[EffectTimeout] = 4
	r.Counts[EffectAssert] = 1
	if r.Samples() != 100 {
		t.Fatalf("samples = %d", r.Samples())
	}
	if r.AVF() != 0.40 {
		t.Fatalf("AVF = %f", r.AVF())
	}
	if r.Fraction(EffectSDC) != 0.25 {
		t.Fatalf("SDC fraction = %f", r.Fraction(EffectSDC))
	}
	if m := r.Margin(0.99); m <= 0 || m >= 0.2 {
		t.Fatalf("margin = %f", m)
	}
	if r.AdjustedMargin(0.99) > r.Margin(0.99) {
		t.Fatal("adjusted margin must not exceed the worst-case margin")
	}
	var empty Result
	if empty.AVF() != 0 || empty.Fraction(EffectSDC) != 0 {
		t.Fatal("empty result must report zero")
	}
}

func TestResultSetRoundTrip(t *testing.T) {
	rs := NewResultSet()
	r1 := &Result{Spec: Spec{Workload: "sha", Component: CompL1D, Faults: 2, Samples: 10}, GoldenCycles: 5}
	r1.Counts[EffectMasked] = 7
	r1.Counts[EffectSDC] = 3
	rs.Add(r1)
	r2 := &Result{Spec: Spec{Workload: "sha", Component: CompITLB, Faults: 1, Samples: 10}}
	rs.Add(r2)

	data, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	back := NewResultSet()
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	got, err := back.Get(CompL1D, "sha", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Counts != r1.Counts || got.GoldenCycles != 5 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := back.Get(CompL2, "sha", 1); err == nil {
		t.Fatal("expected missing-cell error")
	}
}

func TestTargetFor(t *testing.T) {
	m := sim.New(sim.DefaultConfig())
	for _, comp := range Components() {
		tgt, err := TargetFor(m, comp)
		if err != nil {
			t.Fatalf("%s: %v", comp, err)
		}
		if tgt.Rows() <= 0 || tgt.Cols() <= 0 {
			t.Fatalf("%s: degenerate geometry", comp)
		}
	}
	if _, err := TargetFor(m, "BTB"); err == nil {
		t.Fatal("expected error for unknown component")
	}
	// The TLB and register-file geometries match the modeled structures.
	dtlb, _ := TargetFor(m, CompDTLB)
	if dtlb.Rows()*dtlb.Cols() != 1024 {
		t.Fatalf("DTLB bits = %d, want 1024", dtlb.Rows()*dtlb.Cols())
	}
	rf, _ := TargetFor(m, CompRF)
	if rf.Rows() != 56 {
		t.Fatalf("RegFile rows = %d, want 56", rf.Rows())
	}
}

func TestCampaignSmallDeterministic(t *testing.T) {
	spec := Spec{Workload: "stringSearch", Component: CompDTLB, Faults: 3, Samples: 12, Seed: 7}
	r1, err := Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Counts != r2.Counts {
		t.Fatalf("campaign not deterministic: %v vs %v", r1.Counts, r2.Counts)
	}
	if r1.Samples() != 12 {
		t.Fatalf("samples = %d", r1.Samples())
	}
	if r1.GoldenCycles == 0 {
		t.Fatal("golden cycles missing")
	}
}

func TestCampaignSeedChangesDraws(t *testing.T) {
	a, err := Run(context.Background(), Spec{Workload: "stringSearch", Component: CompL1D, Faults: 1, Samples: 30, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), Spec{Workload: "stringSearch", Component: CompL1D, Faults: 1, Samples: 30, Seed: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = a
	_ = b
	// Different seeds usually give different counts; the real invariant is
	// that both campaigns completed all samples.
	if a.Samples() != 30 || b.Samples() != 30 {
		t.Fatal("campaign lost samples")
	}
}

func TestCampaignProgress(t *testing.T) {
	var last int
	_, err := Run(context.Background(), Spec{Workload: "stringSearch", Component: CompITLB, Faults: 1, Samples: 5, Seed: 3},
		func(done, total int) {
			if total != 5 {
				t.Errorf("total = %d", total)
			}
			last = done
		})
	if err != nil {
		t.Fatal(err)
	}
	if last != 5 {
		t.Fatalf("progress ended at %d", last)
	}
}

func TestCampaignUnknownInputs(t *testing.T) {
	if _, err := Run(context.Background(), Spec{Workload: "nope", Component: CompL1D, Faults: 1, Samples: 1}, nil); err == nil {
		t.Fatal("unknown workload must error")
	}
	if _, err := Run(context.Background(), Spec{Workload: "sha", Component: "nope", Faults: 1, Samples: 1}, nil); err == nil {
		t.Fatal("unknown component must error")
	}
}
