package core

import (
	"testing"

	"mbusim/internal/workloads"
)

// TestSamplePathAllocs pins the pooled-scratch contract of the hot sample
// path, in the style of telemetry's TestDisabledSamplePathZeroAllocs: with
// checkpoints, delta restore and the pooled mask scratch all active, a
// steady-state fault-injection sample performs only a handful of
// unavoidable allocations (the injection closure plus whatever the faulty
// run itself forces), independent of the workload's length. Machine
// construction, mask drawing and RNG setup must all hit reused memory.
func TestSamplePathAllocs(t *testing.T) {
	spec := Spec{Workload: "stringSearch", Component: CompL1D, Faults: 2, Samples: 1, Seed: 9}.withDefaults()
	w, err := workloads.ByName(spec.Workload)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := w.Reference()
	if err != nil {
		t.Fatal(err)
	}
	limit := uint64(spec.TimeoutFactor * float64(golden.Cycles))
	rst := w.NewRestorer()
	injectAt := golden.Cycles / 2
	const maskSeed = 12345

	sample := func() {
		if _, _, err := runOne(w, golden, spec, limit, injectAt, maskSeed, false, rst, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Warm up: build the restorer's machine, populate the scratch pool and
	// grow every amortized buffer to its steady-state capacity.
	for i := 0; i < 3; i++ {
		sample()
	}
	allocs := testing.AllocsPerRun(10, sample)

	// The budget is deliberately tight: it covers the injection closure and
	// its captures, nothing else. Growing past it means a per-sample
	// allocation crept back into the hot path.
	const budget = 8
	if allocs > budget {
		t.Fatalf("steady-state sample path allocates %.1f objects per run, want <= %d", allocs, budget)
	}
	t.Logf("steady-state sample path: %.1f allocs per sample", allocs)
}
