package core

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

// resumeGrid is a small but real grid over the two fastest workloads:
// 2 components x 2 workloads x 2 cardinalities = 8 cells.
func resumeGrid(samples int) []Spec {
	var specs []Spec
	for _, c := range []string{CompL1D, CompDTLB} {
		for _, w := range []string{"stringSearch", "susan_c"} {
			for k := 1; k <= 2; k++ {
				specs = append(specs, Spec{
					Workload: w, Component: c, Faults: k,
					Samples: samples, Seed: 21,
				})
			}
		}
	}
	return specs
}

// TestGridResumeEquivalence is the acceptance test for crash-safe resume:
// killing a grid after cell i leaves a valid, loadable results file, and
// resuming completes the remaining cells into a ResultSet byte-identical
// (canonical sorted encode) to an uninterrupted run with the same seed.
func TestGridResumeEquivalence(t *testing.T) {
	specs := resumeGrid(6)

	// Uninterrupted reference run.
	full := NewResultSet()
	if err := RunGrid(context.Background(), specs, 2, func(_ int, r *Result) { full.Add(r) }); err != nil {
		t.Fatal(err)
	}
	want, err := full.Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: flush after every cell (gefin's discipline) and
	// cancel the campaign as soon as the third cell lands.
	path := filepath.Join(t.TempDir(), "results.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial := NewResultSet()
	interrupted := 0
	err = RunGrid(ctx, specs, 2, func(_ int, r *Result) {
		partial.Add(r)
		if err := partial.Save(path); err != nil {
			t.Errorf("flush: %v", err)
		}
		interrupted++
		if interrupted == 3 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted grid returned %v, want context.Canceled", err)
	}

	// The file on disk is valid, loadable, and holds only complete cells.
	loaded, err := LoadResultSet(path)
	if err != nil {
		t.Fatalf("partial file unusable: %v", err)
	}
	if n := len(loaded.Cells); n < 3 || n >= len(specs) {
		t.Fatalf("partial file has %d cells, want 3..%d", n, len(specs)-1)
	}
	for k, r := range loaded.Cells {
		if r.Samples() != 6 {
			t.Fatalf("cell %v persisted incomplete: %d samples", k, r.Samples())
		}
	}

	// Resume: run only the pending cells, merging into the loaded set.
	pending := loaded.Pending(specs)
	if got, want := len(pending), len(specs)-len(loaded.Cells); got != want {
		t.Fatalf("Pending returned %d cells, want %d", got, want)
	}
	if err := RunGrid(context.Background(), pending, 2, func(_ int, r *Result) {
		loaded.Add(r)
		if err := loaded.Save(path); err != nil {
			t.Errorf("flush: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed grid not byte-identical to uninterrupted run:\nresumed:  %d bytes\noriginal: %d bytes", len(got), len(want))
	}
	// And the last flush left exactly that on disk.
	final, err := LoadResultSet(path)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, _ := final.Encode()
	if !bytes.Equal(onDisk, want) {
		t.Fatal("final results file diverges from uninterrupted run")
	}
}

// TestRunCancellation: a cancelled context stops a cell promptly and
// surfaces as ctx.Err(), not as a partial Result.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := Run(ctx, Spec{
		Workload: "stringSearch", Component: CompL1D, Faults: 1,
		Samples: 10_000, Seed: 1,
	}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled Run returned a partial Result")
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("cancelled Run took %v", d)
	}
}

// TestRunGridMidGridFailure: a cell that fails at runtime (unsatisfiable
// spanning constraint — invisible to Validate) must cancel the rest and
// propagate its error, while cells completed before it are still delivered.
func TestRunGridMidGridFailure(t *testing.T) {
	specs := []Spec{
		{Workload: "stringSearch", Component: CompL1D, Faults: 1, Samples: 2, Seed: 1},
		// 1-bit faults can never span a 3x3 cluster: runtime error.
		{Workload: "stringSearch", Component: CompL1D, Faults: 1, Samples: 2, Seed: 2, ForceSpanning: true},
		{Workload: "stringSearch", Component: CompL1D, Faults: 2, Samples: 2, Seed: 3},
	}
	var delivered []int
	err := RunGrid(context.Background(), specs, 1, func(i int, _ *Result) {
		delivered = append(delivered, i)
	})
	if err == nil || errors.Is(err, context.Canceled) {
		t.Fatalf("mid-grid failure returned %v", err)
	}
	if len(delivered) == 0 || delivered[0] != 0 {
		t.Fatalf("completed cells lost on mid-grid failure: %v", delivered)
	}
}

// TestRunGridValidatesUpFront: a typo anywhere in the grid fails before any
// cell runs.
func TestRunGridValidatesUpFront(t *testing.T) {
	specs := []Spec{
		{Workload: "stringSearch", Component: CompL1D, Faults: 1, Samples: 2, Seed: 1},
		{Workload: "stringSearch", Component: "L1d", Faults: 1, Samples: 2, Seed: 1},
	}
	ran := false
	err := RunGrid(context.Background(), specs, 1, func(int, *Result) { ran = true })
	if err == nil {
		t.Fatal("typo'd grid accepted")
	}
	if ran {
		t.Fatal("cells ran before grid validation failed")
	}
}
