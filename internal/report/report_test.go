package report

import (
	"strings"
	"testing"

	"mbusim/internal/avf"
	"mbusim/internal/core"
	"mbusim/internal/fit"
	"mbusim/internal/workloads"
)

func TestTable1MatchesPaperAttributes(t *testing.T) {
	got := Table1()
	for _, want := range []string{
		"32KB 4-way", "512KB 8-way", "32 entries", "56 registers",
		"Reorder buffer", "40", "2/4/4",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Table I missing %q:\n%s", want, got)
		}
	}
}

func TestTable3SortedByCycles(t *testing.T) {
	got, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 16 { // header + 15 workloads
		t.Fatalf("%d lines", len(lines))
	}
	// The longest workload (CRC32) leads, the shortest trails.
	if !strings.HasPrefix(lines[1], "CRC32") {
		t.Fatalf("first row: %q", lines[1])
	}
	for _, w := range workloads.Names() {
		if !strings.Contains(got, w) {
			t.Errorf("missing workload %s", w)
		}
	}
}

func syntheticResults() *core.ResultSet {
	rs := core.NewResultSet()
	for _, wn := range workloads.Names() {
		for k := 1; k <= 3; k++ {
			r := &core.Result{
				Spec:         core.Spec{Workload: wn, Component: core.CompL1D, Faults: k, Samples: 100},
				GoldenCycles: 1000,
			}
			r.Counts[core.EffectMasked] = 90 - 10*k
			r.Counts[core.EffectSDC] = 10 * k
			r.Counts[core.EffectCrash] = 5
			r.Counts[core.EffectTimeout] = 3
			r.Counts[core.EffectAssert] = 2
			rs.Add(r)
		}
	}
	return rs
}

func TestFigureRendersAllRows(t *testing.T) {
	rs := syntheticResults()
	got, err := Figure(rs, core.CompL1D)
	if err != nil {
		t.Fatal(err)
	}
	// 15 workloads x 3 cardinalities + header.
	if lines := strings.Split(strings.TrimSpace(got), "\n"); len(lines) != 46 {
		t.Fatalf("%d lines, want 46", len(lines))
	}
	if !strings.Contains(got, "Masked") || !strings.Contains(got, "Assert") {
		t.Fatal("missing class columns")
	}
}

func TestFigureMissingComponent(t *testing.T) {
	if _, err := Figure(core.NewResultSet(), core.CompITLB); err == nil {
		t.Fatal("expected error for empty result set")
	}
}

func testCAs() []avf.ComponentAVF {
	ca := avf.ComponentAVF{Component: core.CompL1D}
	ca.ByFaults[1], ca.ByFaults[2], ca.ByFaults[3] = 0.2032, 0.297, 0.3628
	cb := avf.ComponentAVF{Component: core.CompITLB}
	cb.ByFaults[1], cb.ByFaults[2], cb.ByFaults[3] = 0.5031, 0.6291, 0.6667
	return []avf.ComponentAVF{ca, cb}
}

func TestTable4(t *testing.T) {
	got := Table4(testCAs())
	if !strings.Contains(got, "1.5x") { // L1D 2-bit: 0.297/0.2032 = 1.46
		t.Fatalf("Table IV:\n%s", got)
	}
	if !strings.Contains(got, "1.8x") { // L1D 3-bit: 0.3628/0.2032 = 1.79
		t.Fatalf("Table IV:\n%s", got)
	}
}

func TestTable5(t *testing.T) {
	got := Table5(testCAs())
	if !strings.Contains(got, "20.32%") || !strings.Contains(got, "+46.16%") {
		t.Fatalf("Table V must show the paper-style AVF and increase:\n%s", got)
	}
	if !strings.Contains(got, "50.31%") {
		t.Fatalf("Table V missing ITLB row:\n%s", got)
	}
}

func TestTechnologyTables(t *testing.T) {
	if got := Table6(); !strings.Contains(got, "55.30%") || !strings.Contains(got, "250nm") {
		t.Fatalf("Table VI:\n%s", got)
	}
	if got := Table7(); !strings.Contains(got, "106 x 10^-8") {
		t.Fatalf("Table VII:\n%s", got)
	}
	if got := Table8(); !strings.Contains(got, "4194304") || !strings.Contains(got, "2112") {
		t.Fatalf("Table VIII:\n%s", got)
	}
}

func TestFig7(t *testing.T) {
	got := Fig7(testCAs())
	// 2 components x 8 nodes + header.
	if lines := strings.Split(strings.TrimSpace(got), "\n"); len(lines) != 17 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(got, "22nm") || !strings.Contains(got, "Gap") {
		t.Fatalf("Fig 7:\n%s", got)
	}
}

func TestFig8(t *testing.T) {
	// Fig 8 needs all six components.
	var cas []avf.ComponentAVF
	for _, comp := range core.Components() {
		ca := avf.ComponentAVF{Component: comp}
		ca.ByFaults[1], ca.ByFaults[2], ca.ByFaults[3] = 0.2, 0.3, 0.4
		cas = append(cas, ca)
	}
	entries, err := fit.CPU(cas)
	if err != nil {
		t.Fatal(err)
	}
	got := Fig8(entries)
	if lines := strings.Split(strings.TrimSpace(got), "\n"); len(lines) != 9 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(got, "MBU share") {
		t.Fatalf("Fig 8:\n%s", got)
	}
	// 250nm row shows 0.0% MBU share.
	for _, line := range strings.Split(got, "\n") {
		if strings.HasPrefix(line, "250nm") && !strings.Contains(line, "0.0%") {
			t.Fatalf("250nm must have zero MBU share: %q", line)
		}
	}
}

// paperShapedResults builds a synthetic full grid exhibiting the paper's
// shapes, to validate the verdict checker itself.
func paperShapedResults() *core.ResultSet {
	rs := core.NewResultSet()
	// Per-component class templates: masked base at k=1 and per-k drop,
	// with class mixes per the paper's Figures 1-6.
	type tmpl struct {
		masked1, drop       int
		sdc, crash, timeout int // vulnerable shares out of 10
		assert              int
	}
	shapes := map[string]tmpl{
		core.CompL1D:  {80, 10, 8, 1, 1, 0},
		core.CompL1I:  {88, 6, 2, 7, 1, 0},
		core.CompL2:   {82, 8, 7, 2, 1, 0},
		core.CompRF:   {89, 5, 5, 4, 1, 0},
		core.CompDTLB: {50, 6, 2, 4, 3, 1},
		core.CompITLB: {50, 6, 0, 5, 5, 0},
	}
	for comp, sh := range shapes {
		for _, wn := range workloads.Names() {
			for k := 1; k <= 3; k++ {
				r := &core.Result{
					Spec:         core.Spec{Workload: wn, Component: comp, Faults: k, Samples: 100},
					GoldenCycles: 1000,
				}
				masked := sh.masked1 - sh.drop*(k-1)*2/(k) // shrinking steps
				vul := 100 - masked
				den := sh.sdc + sh.crash + sh.timeout + sh.assert
				r.Counts[core.EffectMasked] = masked
				r.Counts[core.EffectSDC] = vul * sh.sdc / den
				r.Counts[core.EffectCrash] = vul * sh.crash / den
				r.Counts[core.EffectTimeout] = vul * sh.timeout / den
				r.Counts[core.EffectAssert] = vul - r.Counts[core.EffectSDC] -
					r.Counts[core.EffectCrash] - r.Counts[core.EffectTimeout]
				if sh.assert == 0 {
					// Fold the remainder into the dominant class instead.
					r.Counts[core.EffectCrash] += r.Counts[core.EffectAssert]
					r.Counts[core.EffectAssert] = 0
				}
				rs.Add(r)
			}
		}
	}
	return rs
}

func TestVerdictsOnPaperShapedData(t *testing.T) {
	rs := paperShapedResults()
	vs, err := Verdicts(rs)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if !v.Pass {
			t.Errorf("verdict failed on paper-shaped data: %s (%s)", v.Name, v.Detail)
		}
	}
	text := RenderVerdicts(vs)
	if !strings.Contains(text, "shape targets reproduced") {
		t.Fatal("render missing summary")
	}
}

func TestVerdictsRequireFullGrid(t *testing.T) {
	if _, err := Verdicts(core.NewResultSet()); err == nil {
		t.Fatal("expected error on an empty result set")
	}
}
