// Package report renders the paper's tables and figures as text from
// campaign results: Table I (configuration), Table III (execution times),
// Figures 1-6 (per-component AVF class breakdowns), Table IV (vulnerability
// increases), Table V (weighted AVFs), Tables VI-VIII (technology inputs),
// Figure 7 (per-node aggregate AVF) and Figure 8 (whole-CPU FIT).
package report

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"mbusim/internal/avf"
	"mbusim/internal/core"
	"mbusim/internal/fit"
	"mbusim/internal/tech"
	"mbusim/internal/workloads"
)

func table(render func(w *tabwriter.Writer)) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	render(w)
	w.Flush()
	return sb.String()
}

// Table1 renders the machine configuration (paper Table I).
func Table1() string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Microarchitectural attribute\tValue")
		fmt.Fprintln(w, "ISA / Core\tAR32 (ARM-like) / Out-of-Order")
		fmt.Fprintln(w, "Clock Frequency\t2 GHz (nominal)")
		fmt.Fprintln(w, "L1 Data cache\t32KB 4-way")
		fmt.Fprintln(w, "L1 Instruction cache\t32KB 4-way")
		fmt.Fprintln(w, "L2 cache\t512KB 8-way")
		fmt.Fprintln(w, "Data / Instruction TLB\t32 entries")
		fmt.Fprintln(w, "Physical Register File\t56 registers")
		fmt.Fprintln(w, "Instruction queue\t32")
		fmt.Fprintln(w, "Reorder buffer\t40")
		fmt.Fprintln(w, "Fetch / Execute / Writeback width\t2/4/4")
	})
}

// Table3 renders the fault-free execution time of every workload
// (paper Table III), sorted by descending cycles like the paper's listing.
func Table3() (string, error) {
	type row struct {
		name   string
		cycles uint64
	}
	var rows []row
	for _, w := range workloads.All() {
		g, err := w.Reference()
		if err != nil {
			return "", err
		}
		rows = append(rows, row{w.Name, g.Cycles})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].cycles > rows[j].cycles })
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Benchmark\tExecution Time (clock cycles)")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\n", r.name, r.cycles)
		}
	}), nil
}

// Figure renders one of Figs 1-6: for a component, the class breakdown of
// every workload at each fault cardinality.
func Figure(rs *core.ResultSet, component string) (string, error) {
	out := table(func(w *tabwriter.Writer) {
		fmt.Fprintf(w, "%s\tfaults\tMasked\tSDC\tCrash\tTimeout\tAssert\tAVF\t±margin(99%%)\n", component)
		for _, wl := range workloads.Names() {
			for k := 1; k <= 3; k++ {
				r, err := rs.Get(component, wl, k)
				if err != nil {
					continue
				}
				fmt.Fprintf(w, "%s\t%d\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.1f%%\t%.2f%%\n",
					wl, k,
					100*r.Fraction(core.EffectMasked),
					100*r.Fraction(core.EffectSDC),
					100*r.Fraction(core.EffectCrash),
					100*r.Fraction(core.EffectTimeout),
					100*r.Fraction(core.EffectAssert),
					100*r.AVF(),
					100*r.AdjustedMargin(0.99))
			}
		}
	})
	// Validate that at least one cell existed.
	if strings.Count(out, "\n") <= 1 {
		return "", fmt.Errorf("report: no results for component %s", component)
	}
	return out, nil
}

// Table4 renders the per-component vulnerability increase of 2-bit and
// 3-bit faults over single-bit (paper Table IV).
func Table4(cas []avf.ComponentAVF) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Component\t2-bit increase\t3-bit increase")
		for _, ca := range cas {
			fmt.Fprintf(w, "%s\t%.1fx\t%.1fx\n", ca.Component, ca.Increase(2), ca.Increase(3))
		}
	})
}

// Table5 renders the weighted AVF per component and cardinality with the
// step-to-step percentage increases (paper Table V).
func Table5(cas []avf.ComponentAVF) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Component\tInjected Faults\tAVF\tPercentage Increase")
		for _, ca := range cas {
			for k := 1; k <= 3; k++ {
				inc := "-"
				if k > 1 && ca.ByFaults[k-1] > 0 {
					inc = fmt.Sprintf("%+.2f%%", 100*(ca.ByFaults[k]/ca.ByFaults[k-1]-1))
				}
				fmt.Fprintf(w, "%s\t%d\t%.2f%%\t%s\n", ca.Component, k, 100*ca.ByFaults[k], inc)
			}
		}
	})
}

// Table6 renders the multi-bit upset rate per node (paper Table VI).
func Table6() string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Technology Node\tSingle-bit\tDouble-bit\tTriple-bit")
		for _, n := range tech.Nodes {
			fmt.Fprintf(w, "%s\t%.2f%%\t%.2f%%\t%.2f%%\n", n.Name, 100*n.Single, 100*n.Double, 100*n.Triple)
		}
	})
}

// Table7 renders the raw per-bit FIT rate per node (paper Table VII).
func Table7() string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Node\tRaw FIT per bit")
		for _, n := range tech.Nodes {
			fmt.Fprintf(w, "%s\t%.0f x 10^-8\n", n.Name, n.RawFIT*1e8)
		}
	})
}

// Table8 renders the component sizes in bits (paper Table VIII).
func Table8() string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Component\tSize (in bits)")
		for _, c := range core.Components() {
			bits, _ := tech.ComponentBits(c)
			fmt.Fprintf(w, "%s\t%d\n", c, bits)
		}
	})
}

// Fig7 renders the aggregate multi-bit AVF per component per node with the
// single-bit share and the assessment gap (paper Fig. 7).
func Fig7(cas []avf.ComponentAVF) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Component\tNode\tSingle-bit AVF\tAggregate AVF\tGap")
		for _, ca := range cas {
			for _, e := range avf.NodeTable(ca) {
				fmt.Fprintf(w, "%s\t%s\t%.2f%%\t%.2f%%\t%.1f%%\n",
					ca.Component, e.Node.Name, 100*e.SingleOnly, 100*e.Aggregate, 100*e.Gap())
			}
		}
	})
}

// Fig8 renders the whole-CPU FIT per node with the multi-bit contribution
// (paper Fig. 8).
func Fig8(entries []fit.CPUEntry) string {
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "Node\tCPU FIT\tSingle-bit-only FIT\tMBU share")
		for _, e := range entries {
			fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.1f%%\n", e.Node.Name, e.Total, e.SingleOnly, 100*e.MBUShare())
		}
	})
}
