package report

import (
	"fmt"
	"sort"
	"text/tabwriter"

	"mbusim/internal/forensics"
	"mbusim/internal/telemetry"
)

// fateHeaders maps each fate class to the short column header used by the
// breakdown table (the full wire names are too wide for 7 columns).
var fateHeaders = map[forensics.Fate]string{
	forensics.FateNeverTouched: "never",
	forensics.FateOverwritten:  "overwr",
	forensics.FateRefilled:     "refill",
	forensics.FateReadMasked:   "rd-mask",
	forensics.FateReadSDC:      "rd-sdc",
	forensics.FateWrittenBack:  "wback",
	forensics.FateDiverged:     "diverge",
}

// ForensicsTable renders the masking-mechanism breakdown of a campaign's
// forensics records: one row per component x fault cardinality, one column
// per fate class (percent of the cell group's samples), plus the median
// first-touch latency in cycles among samples whose corrupted bits were
// touched at all.
func ForensicsTable(fates []telemetry.FateRecord) string {
	type key struct {
		comp   string
		faults int
	}
	type agg struct {
		n       int
		byFate  map[string]int
		touched []int64
	}
	groups := make(map[key]*agg)
	var order []key
	for _, f := range fates {
		k := key{f.Component, f.Faults}
		g, ok := groups[k]
		if !ok {
			g = &agg{byFate: make(map[string]int)}
			groups[k] = g
			order = append(order, k)
		}
		g.n++
		g.byFate[f.Fate]++
		if f.FirstTouchLat >= 0 {
			g.touched = append(g.touched, f.FirstTouchLat)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].comp != order[j].comp {
			return order[i].comp < order[j].comp
		}
		return order[i].faults < order[j].faults
	})
	return table(func(w *tabwriter.Writer) {
		fmt.Fprint(w, "comp\tk\tsamples")
		for _, f := range forensics.Fates() {
			fmt.Fprintf(w, "\t%s", fateHeaders[f])
		}
		fmt.Fprintln(w, "\tp50-touch")
		for _, k := range order {
			g := groups[k]
			fmt.Fprintf(w, "%s\t%d\t%d", k.comp, k.faults, g.n)
			for _, f := range forensics.Fates() {
				fmt.Fprintf(w, "\t%.1f%%", 100*float64(g.byFate[f.Label()])/float64(g.n))
			}
			if len(g.touched) == 0 {
				fmt.Fprintln(w, "\t-")
				continue
			}
			sort.Slice(g.touched, func(i, j int) bool { return g.touched[i] < g.touched[j] })
			fmt.Fprintf(w, "\t%d cyc\n", g.touched[(len(g.touched)-1)/2])
		}
	})
}
