package report

import (
	"fmt"
	"sort"
	"text/tabwriter"

	"mbusim/internal/core"
	"mbusim/internal/liveness"
)

// AnalyticalTable renders per-(component, workload) analytical AVF from
// liveness profiles: the ACE fraction (live-bit-cycles over total
// bit-cycles of the golden run) next to the never-touched fraction, the
// analytic floor on masking. When rs holds injection results for the same
// cell, the measured 1-bit AVF and the residual (analytical − measured)
// are cross-checked in the last columns; ACE analysis never credits
// logical masking downstream of a read, so the residual should be
// non-negative within sampling noise — a strongly negative residual flags
// a profile that disagrees with the campaign it predicts.
func AnalyticalTable(profiles []*liveness.Profile, rs *core.ResultSet) string {
	sorted := append([]*liveness.Profile(nil), profiles...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Workload < sorted[j].Workload })
	return table(func(w *tabwriter.Writer) {
		fmt.Fprintln(w, "component\tworkload\tcycles\tACE AVF\tnever-touched\tmeasured 1-bit\tresidual")
		for _, comp := range core.Components() {
			for _, p := range sorted {
				c := p.Component(comp)
				if c == nil {
					continue
				}
				ace := p.AVF(comp)
				fmt.Fprintf(w, "%s\t%s\t%d\t%6.2f%%\t%6.2f%%", comp, p.Workload, p.Cycles,
					100*ace, 100*p.NeverTouched(comp))
				if r, err := cellResult(rs, comp, p.Workload); err == nil {
					m := r.AVF()
					fmt.Fprintf(w, "\t%6.2f%%\t%+6.2f%%", 100*m, 100*(ace-m))
				} else {
					fmt.Fprint(w, "\t--\t--")
				}
				fmt.Fprintln(w)
			}
		}
	})
}

// cellResult fetches the 1-bit injection result for a cell, or an error
// when rs is nil or the campaign never ran that cell.
func cellResult(rs *core.ResultSet, comp, workload string) (*core.Result, error) {
	if rs == nil {
		return nil, fmt.Errorf("report: no results loaded")
	}
	return rs.Get(comp, workload, 1)
}
