package report

import (
	"fmt"
	"strings"

	"mbusim/internal/avf"
	"mbusim/internal/core"
	"mbusim/internal/fit"
	"mbusim/internal/workloads"
)

// Verdict is one mechanically checked reproduction claim (the shape targets
// of DESIGN.md §4).
type Verdict struct {
	Name   string
	Pass   bool
	Detail string
}

// Verdicts evaluates every shape target against a full campaign grid.
func Verdicts(rs *core.ResultSet) ([]Verdict, error) {
	cas, err := avf.WeightedFromResults(rs, core.Components(), workloads.Names())
	if err != nil {
		return nil, err
	}
	byName := map[string]avf.ComponentAVF{}
	for _, ca := range cas {
		byName[ca.Component] = ca
	}
	var out []Verdict
	add := func(name string, pass bool, format string, args ...any) {
		out = append(out, Verdict{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
	}

	// 1. AVF rises monotonically with fault cardinality for every component.
	for _, ca := range cas {
		mono := ca.ByFaults[1] <= ca.ByFaults[2] && ca.ByFaults[2] <= ca.ByFaults[3]
		add("monotone 1<=2<=3-bit AVF: "+ca.Component, mono,
			"%.2f%% -> %.2f%% -> %.2f%%",
			100*ca.ByFaults[1], 100*ca.ByFaults[2], 100*ca.ByFaults[3])
	}

	// 2. The 1->2 bit increase exceeds the 2->3 bit increase (Table V).
	firstLarger := 0
	for _, ca := range cas {
		if ca.ByFaults[1] == 0 || ca.ByFaults[2] == 0 {
			continue
		}
		if ca.ByFaults[2]/ca.ByFaults[1] >= ca.ByFaults[3]/ca.ByFaults[2] {
			firstLarger++
		}
	}
	add("1->2 bit step exceeds 2->3 bit step (majority of components)",
		firstLarger*2 > len(cas), "%d of %d components", firstLarger, len(cas))

	// 3. Class mixes: L1D and L2 SDC-dominated, L1I crash-dominated among
	// vulnerable outcomes (weighted across workloads and cardinalities).
	classShare := func(comp string, e core.Effect) float64 {
		var num, den float64
		for _, wn := range workloads.Names() {
			for k := 1; k <= 3; k++ {
				r, err := rs.Get(comp, wn, k)
				if err != nil {
					continue
				}
				num += float64(r.Counts[e])
				den += float64(r.Samples() - r.Counts[core.EffectMasked])
			}
		}
		if den == 0 {
			return 0
		}
		return num / den
	}
	for _, comp := range []string{core.CompL1D, core.CompL2} {
		sdc, crash := classShare(comp, core.EffectSDC), classShare(comp, core.EffectCrash)
		add("SDC dominates vulnerable outcomes: "+comp, sdc > crash,
			"SDC %.0f%% vs crash %.0f%% of vulnerable runs", 100*sdc, 100*crash)
	}
	{
		sdc, crash := classShare(core.CompL1I, core.EffectSDC), classShare(core.CompL1I, core.EffectCrash)
		add("crash dominates vulnerable outcomes: L1I", crash > sdc,
			"crash %.0f%% vs SDC %.0f%% of vulnerable runs", 100*crash, 100*sdc)
	}

	// 4. ITLB produces (near) zero SDC; TLB failures are crashes/timeouts.
	{
		sdc := classShare(core.CompITLB, core.EffectSDC)
		add("ITLB SDC share near zero", sdc < 0.10,
			"SDC is %.1f%% of vulnerable ITLB runs", 100*sdc)
		ct := classShare(core.CompDTLB, core.EffectCrash) +
			classShare(core.CompDTLB, core.EffectTimeout) +
			classShare(core.CompDTLB, core.EffectAssert)
		add("DTLB failures are crash/timeout/assert dominated", ct > 0.5,
			"crash+timeout+assert = %.0f%% of vulnerable DTLB runs", 100*ct)
	}

	// 5. Assert outcomes concentrate in the DTLB (physical addresses
	// escaping the system map), as in the paper's Section IV.E.
	{
		asserts := func(comp string) int {
			n := 0
			for _, wn := range workloads.Names() {
				for k := 1; k <= 3; k++ {
					if r, err := rs.Get(comp, wn, k); err == nil {
						n += r.Counts[core.EffectAssert]
					}
				}
			}
			return n
		}
		dtlb := asserts(core.CompDTLB)
		max := 0
		for _, comp := range []string{core.CompL1D, core.CompL1I, core.CompL2, core.CompRF} {
			if a := asserts(comp); a > max {
				max = a
			}
		}
		add("asserts concentrate in the DTLB", dtlb >= max,
			"DTLB %d vs max(other non-ITLB) %d", dtlb, max)
	}

	// 6. Fig. 7: the single-bit assessment gap grows toward 22nm.
	for _, comp := range []string{core.CompL1D, core.CompRF} {
		entries := avf.NodeTable(byName[comp])
		grow := true
		for i := 1; i < len(entries); i++ {
			if entries[i].Gap() < entries[i-1].Gap()-1e-9 {
				grow = false
			}
		}
		add("assessment gap grows toward 22nm: "+comp, grow,
			"250nm %.1f%% -> 22nm %.1f%%", 100*entries[0].Gap(), 100*entries[len(entries)-1].Gap())
	}

	// 7. Fig. 8: CPU FIT peaks at 130nm, bottoms at 22nm; the MBU share
	// rises monotonically from 0%.
	entries, err := fit.CPU(cas)
	if err != nil {
		return nil, err
	}
	peak, low := 0, 0
	monotone := true
	for i := range entries {
		if entries[i].Total > entries[peak].Total {
			peak = i
		}
		if entries[i].Total < entries[low].Total {
			low = i
		}
		if i > 0 && entries[i].MBUShare() < entries[i-1].MBUShare()-1e-9 {
			monotone = false
		}
	}
	add("CPU FIT peaks at 130nm", entries[peak].Node.Name == "130nm",
		"peak at %s", entries[peak].Node.Name)
	add("CPU FIT minimum at 22nm", entries[low].Node.Name == "22nm",
		"minimum at %s", entries[low].Node.Name)
	add("MBU FIT share rises monotonically", monotone && entries[0].MBUShare() == 0,
		"0%% at 250nm rising to %.1f%% at 22nm", 100*entries[len(entries)-1].MBUShare())

	return out, nil
}

// RenderVerdicts formats verdicts as a check list.
func RenderVerdicts(vs []Verdict) string {
	var sb strings.Builder
	pass := 0
	for _, v := range vs {
		mark := "FAIL"
		if v.Pass {
			mark = "ok  "
			pass++
		}
		fmt.Fprintf(&sb, "[%s] %-55s %s\n", mark, v.Name, v.Detail)
	}
	fmt.Fprintf(&sb, "%d/%d shape targets reproduced\n", pass, len(vs))
	return sb.String()
}
