package report

import (
	"strings"
	"testing"

	"mbusim/internal/core"
	"mbusim/internal/liveness"
)

func analyticalProfile(workload string, ace uint64) *liveness.Profile {
	return &liveness.Profile{
		Workload: workload, Cycles: 1000, Windows: 1,
		Components: []liveness.ComponentProfile{{
			Name: "L1D", Rows: 10, Cols: 10,
			Classes:  []liveness.ClassProfile{{Name: "data", Bits: 100, AceBitCycles: ace, NeverBitCycles: 50000}},
			OccBP:    []uint32{5000},
			RowValid: make([]byte, 2),
		}},
	}
}

func TestAnalyticalTableWithoutResults(t *testing.T) {
	out := AnalyticalTable([]*liveness.Profile{analyticalProfile("CRC32", 10000)}, nil)
	if !strings.Contains(out, "CRC32") || !strings.Contains(out, "10.00%") {
		t.Fatalf("missing analytical AVF:\n%s", out)
	}
	if !strings.Contains(out, "--") {
		t.Fatalf("missing placeholder for absent measured AVF:\n%s", out)
	}
}

func TestAnalyticalTableCrossCheck(t *testing.T) {
	rs := core.NewResultSet()
	res := &core.Result{Spec: core.Spec{Component: "L1D", Workload: "CRC32", Faults: 1, Samples: 100, Seed: 1}}
	res.Counts[core.EffectMasked] = 92
	res.Counts[core.EffectSDC] = 8 // measured AVF 8%
	rs.Add(res)
	out := AnalyticalTable([]*liveness.Profile{analyticalProfile("CRC32", 10000)}, rs)
	if !strings.Contains(out, "8.00%") {
		t.Fatalf("missing measured AVF:\n%s", out)
	}
	if !strings.Contains(out, "+2.00%") {
		t.Fatalf("missing residual (10%% analytical - 8%% measured):\n%s", out)
	}
	// Workloads are sorted, components in canonical order.
	two := AnalyticalTable([]*liveness.Profile{
		analyticalProfile("sha", 0), analyticalProfile("CRC32", 10000),
	}, nil)
	if strings.Index(two, "CRC32") > strings.Index(two, "sha") {
		t.Fatalf("workloads not sorted:\n%s", two)
	}
}
