package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// expvarReg is the registry the process-wide expvar variable reads from.
// expvar.Publish is once-per-name per process, so Handler stores its
// registry here and publishes a single Func that follows the pointer —
// tests can build many handlers without tripping expvar's duplicate panic.
var (
	expvarReg   atomic.Pointer[Registry]
	publishOnce sync.Once
)

func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("campaign", expvar.Func(func() any {
			r := expvarReg.Load()
			if r == nil {
				return nil
			}
			out := make(map[string]any)
			for _, m := range r.Snapshot() {
				if m.Kind == KindHistogram {
					out[m.Name+"_count"] = m.Count
					out[m.Name+"_sum"] = m.Value
					continue
				}
				out[m.Name] = m.Value
			}
			return out
		}))
	})
}

// Health is the /healthz body: which role this process plays in the
// campaign (local, coordinator, worker), how long it has been up, and a
// point-in-time campaign state digest.
type Health struct {
	Role          string         `json:"role"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Campaign      map[string]any `json:"campaign,omitempty"`
}

// SetBuildInfo publishes the gefin_build_info gauge: constant 1 with the
// module version and Go toolchain in the labels, the conventional shape
// for joining build identity onto any other series in a scrape.
func SetBuildInfo(reg *Registry) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	reg.Gauge(MetricBuildInfo + `{version="` + version + `",go="` + runtime.Version() + `"}`).Set(1)
}

// Handler returns the campaign debug mux: the registry in Prometheus text
// format at /metrics, a JSON liveness/state probe at /healthz, expvar
// (including a "campaign" variable mirroring the registry) at /debug/vars,
// and the net/http/pprof profiles under /debug/pprof/ — one port for
// scraping, probing, ad-hoc inspection and profiling. health may be nil
// (the probe then reports only that the process is up) and is called per
// request, so it should be a cheap snapshot. The build-info gauge is
// published into reg as a side effect.
func Handler(reg *Registry, health func() Health) http.Handler {
	expvarReg.Store(reg)
	publishExpvar()
	SetBuildInfo(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{Role: "unknown"}
		if health != nil {
			h = health()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(h)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
