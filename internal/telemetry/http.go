package telemetry

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// expvarReg is the registry the process-wide expvar variable reads from.
// expvar.Publish is once-per-name per process, so Handler stores its
// registry here and publishes a single Func that follows the pointer —
// tests can build many handlers without tripping expvar's duplicate panic.
var (
	expvarReg   atomic.Pointer[Registry]
	publishOnce sync.Once
)

func publishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("campaign", expvar.Func(func() any {
			r := expvarReg.Load()
			if r == nil {
				return nil
			}
			out := make(map[string]any)
			for _, m := range r.Snapshot() {
				if m.Kind == KindHistogram {
					out[m.Name+"_count"] = m.Count
					out[m.Name+"_sum"] = m.Value
					continue
				}
				out[m.Name] = m.Value
			}
			return out
		}))
	})
}

// Handler returns the campaign debug mux: the registry in Prometheus text
// format at /metrics, expvar (including a "campaign" variable mirroring
// the registry) at /debug/vars, and the net/http/pprof profiles under
// /debug/pprof/ — one port for scraping, ad-hoc inspection and profiling.
func Handler(reg *Registry) http.Handler {
	expvarReg.Store(reg)
	publishExpvar()

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
