package telemetry

import (
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Fatal("Counter did not return the existing collector")
	}

	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := r.Histogram("h_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("histogram count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-102.65) > 1e-9 {
		t.Fatalf("histogram sum = %g, want 102.65", got)
	}
}

func TestSnapshotStableOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total").Inc()
	r.Gauge("aaa").Set(1)
	r.Histogram("mmm_seconds", []float64{1}).Observe(0.5)
	r.Counter(`bbb_total{outcome="x"}`).Add(3)

	var names []string
	for _, m := range r.Snapshot() {
		names = append(names, m.Name)
	}
	want := []string{`aaa`, `bbb_total{outcome="x"}`, `mmm_seconds`, `zzz_total`}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("snapshot order = %v, want %v", names, want)
	}

	// Histogram buckets are cumulative with a trailing +Inf.
	for _, m := range r.Snapshot() {
		if m.Kind != KindHistogram {
			continue
		}
		if len(m.Buckets) != 2 || !math.IsInf(m.Buckets[1].UpperBound, 1) {
			t.Fatalf("histogram buckets = %+v", m.Buckets)
		}
		if m.Buckets[0].Count != 1 || m.Buckets[1].Count != 1 {
			t.Fatalf("cumulative counts = %+v", m.Buckets)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`gefin_samples_total{outcome="masked"}`).Add(10)
	r.Counter(`gefin_samples_total{outcome="sdc"}`).Add(2)
	r.Gauge("gefin_cells_expected").Set(3)
	h := r.Histogram("gefin_sample_duration_seconds", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE gefin_samples_total counter\n",
		"gefin_samples_total{outcome=\"masked\"} 10\n",
		"gefin_samples_total{outcome=\"sdc\"} 2\n",
		"# TYPE gefin_cells_expected gauge\n",
		"gefin_cells_expected 3\n",
		"# TYPE gefin_sample_duration_seconds histogram\n",
		"gefin_sample_duration_seconds_bucket{le=\"0.01\"} 1\n",
		"gefin_sample_duration_seconds_bucket{le=\"0.1\"} 2\n",
		"gefin_sample_duration_seconds_bucket{le=\"+Inf\"} 3\n",
		"gefin_sample_duration_seconds_sum 5.055\n",
		"gefin_sample_duration_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\ngot:\n%s", want, out)
		}
	}
	// One TYPE line per family even with several labeled series.
	if n := strings.Count(out, "# TYPE gefin_samples_total"); n != 1 {
		t.Errorf("TYPE line for samples_total emitted %d times", n)
	}
}

func TestNilRegistryAndCollectorsAreNoops(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", DurationBuckets).Observe(1)
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}

	var (
		c *Counter
		g *Gauge
		h *Histogram
	)
	c.Add(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil collectors reported values")
	}
}

// TestDisabledSamplePathZeroAllocs pins the disabled-telemetry contract:
// the per-sample recording path on a nil *Campaign allocates nothing, so
// library users who never enable telemetry pay zero on the hot path.
func TestDisabledSamplePathZeroAllocs(t *testing.T) {
	var c *Campaign
	rec := SampleRecord{Outcome: "masked", DurationNS: 1000, CyclesSkipped: 42}
	allocs := testing.AllocsPerRun(1000, func() {
		c.RecordSample(&rec)
		c.RecordCellQueue(time.Millisecond)
		c.WorkerBusy(1)
		c.FlushCell(nil, nil)
	})
	if allocs != 0 {
		t.Fatalf("disabled sample path allocates %.1f objects per run, want 0", allocs)
	}
	if c.Enabled() || c.Tracing() {
		t.Fatal("nil campaign reports enabled")
	}
}

func TestCampaignSummarize(t *testing.T) {
	c := NewCampaign(nil)
	for i := 0; i < 3; i++ {
		c.RecordSample(&SampleRecord{Outcome: "masked", DurationNS: 1e6, CyclesSkipped: 100, Checkpoint: 2})
	}
	c.RecordSample(&SampleRecord{Outcome: "sdc", DurationNS: 2e6, Checkpoint: 0})
	c.FlushCell(nil, nil)
	c.SetGridShape(4, 400, 2, 8)

	s := c.Summarize()
	if s.Samples != 4 || s.ByOutcome["masked"] != 3 || s.ByOutcome["sdc"] != 1 {
		t.Fatalf("summary samples = %+v", s)
	}
	if s.Cells != 1 || s.CellsExpected != 4 || s.SamplesExpected != 400 {
		t.Fatalf("summary cells = %+v", s)
	}
	if s.CheckpointHits != 3 || s.CheckpointMiss != 1 {
		t.Fatalf("summary checkpoints = %+v", s)
	}

	var nilC *Campaign
	if got := nilC.Summarize(); got.Samples != 0 || got.ByOutcome != nil {
		t.Fatalf("nil campaign summary = %+v", got)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	c := NewCampaign(nil)
	c.RecordSample(&SampleRecord{Outcome: "masked", DurationNS: 1e6, CyclesSkipped: 10})
	srv := httptest.NewServer(Handler(c.Registry, func() Health {
		return Health{Role: "local", UptimeSeconds: 1.5,
			Campaign: map[string]any{"samples": 1}}
	}))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	metrics := get("/metrics")
	if !strings.Contains(metrics, `gefin_samples_total{outcome="masked"} 1`) ||
		!strings.Contains(metrics, "gefin_checkpoint_hits_total 1") {
		t.Fatalf("metrics output:\n%s", metrics)
	}
	// The build-info gauge is published into the registry as a side effect:
	// constant 1 with version and Go toolchain labels.
	if !strings.Contains(metrics, MetricBuildInfo+`{version="`) ||
		!strings.Contains(metrics, `go="go`) {
		t.Fatalf("metrics output missing %s:\n%s", MetricBuildInfo, metrics)
	}
	healthz := get("/healthz")
	if !strings.Contains(healthz, `"role":"local"`) ||
		!strings.Contains(healthz, `"uptime_seconds":1.5`) ||
		!strings.Contains(healthz, `"samples":1`) {
		t.Fatalf("healthz output:\n%s", healthz)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, `"campaign"`) || !strings.Contains(vars, "gefin_checkpoint_hits_total") {
		t.Fatalf("expvar output missing campaign variable:\n%.400s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Fatalf("pprof index:\n%.200s", idx)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total").Inc()
				r.Histogram("h_seconds", DurationBuckets).Observe(0.01)
				r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds", DurationBuckets).Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
