package telemetry

import (
	"testing"
)

func TestDeltaTrackerSendsOnlyChangedSeries(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Add(3)
	reg.Gauge("g").Set(7)
	reg.Histogram("h_seconds", []float64{0.1, 1}).Observe(0.05)

	d := NewDeltaTracker(reg)
	first := d.Delta()
	if len(first) != 3 {
		t.Fatalf("first delta = %d series, want 3: %+v", len(first), first)
	}
	for _, m := range first {
		if m.Name == "h_seconds" {
			if len(m.Bounds) != 2 || len(m.Buckets) != 3 {
				t.Fatalf("histogram wire shape: %+v", m)
			}
			// Non-cumulative: one observation in the first bucket only.
			if m.Buckets[0] != 1 || m.Buckets[1] != 0 || m.Buckets[2] != 0 {
				t.Fatalf("histogram buckets must be de-cumulated: %+v", m.Buckets)
			}
		}
	}

	if again := d.Delta(); len(again) != 0 {
		t.Fatalf("unchanged registry produced delta: %+v", again)
	}

	reg.Counter("a_total").Inc()
	changed := d.Delta()
	if len(changed) != 1 || changed[0].Name != "a_total" || changed[0].Value != 4 {
		t.Fatalf("delta after one change = %+v (values must be absolute)", changed)
	}

	var nilTracker *DeltaTracker
	if nilTracker.Delta() != nil {
		t.Fatal("nil tracker must report nothing")
	}
}

func TestFederatorMergesCountersPerWorkerAndFleet(t *testing.T) {
	target := NewRegistry()
	f := NewFederator(target)

	f.Merge("w1", []WireMetric{{Name: "gefin_samples_total", Kind: KindCounter, Value: 10}})
	f.Merge("w2", []WireMetric{{Name: "gefin_samples_total", Kind: KindCounter, Value: 5}})
	// Same absolute value again: increment 0, nothing double-counted.
	f.Merge("w1", []WireMetric{{Name: "gefin_samples_total", Kind: KindCounter, Value: 10}})
	f.Merge("w1", []WireMetric{{Name: "gefin_samples_total", Kind: KindCounter, Value: 12}})

	get := func(name string) int64 { return target.Counter(name).Value() }
	if got := get(`gefin_samples_total{worker="w1"}`); got != 12 {
		t.Fatalf(`w1 series = %d, want 12`, got)
	}
	if got := get(`gefin_samples_total{worker="w2"}`); got != 5 {
		t.Fatalf(`w2 series = %d, want 5`, got)
	}
	if got := get(`gefin_samples_total{worker="fleet"}`); got != 17 {
		t.Fatalf(`fleet series = %d, want 17`, got)
	}
	if f.Workers() != 2 {
		t.Fatalf("Workers = %d, want 2", f.Workers())
	}
}

func TestFederatorDetectsWorkerRestart(t *testing.T) {
	target := NewRegistry()
	f := NewFederator(target)

	f.Merge("w1", []WireMetric{{Name: "c_total", Kind: KindCounter, Value: 100}})
	// Worker restarted: its counter began again from zero and reached 7. The
	// published series must grow by 7, not jump backwards or re-add 100.
	f.Merge("w1", []WireMetric{{Name: "c_total", Kind: KindCounter, Value: 7}})

	if got := target.Counter(`c_total{worker="fleet"}`).Value(); got != 107 {
		t.Fatalf("fleet counter after restart = %d, want 107", got)
	}
}

func TestFederatorMergesGaugesAndHistograms(t *testing.T) {
	target := NewRegistry()
	f := NewFederator(target)

	f.Merge("w1", []WireMetric{{Name: "busy", Kind: KindGauge, Value: 2}})
	f.Merge("w2", []WireMetric{{Name: "busy", Kind: KindGauge, Value: 3}})
	if got := target.Gauge(`busy{worker="fleet"}`).Value(); got != 5 {
		t.Fatalf("fleet gauge = %d, want 5 (sum of workers)", got)
	}
	f.Merge("w1", []WireMetric{{Name: "busy", Kind: KindGauge, Value: 0}})
	if got := target.Gauge(`busy{worker="fleet"}`).Value(); got != 3 {
		t.Fatalf("fleet gauge after w1 idle = %d, want 3", got)
	}

	h := WireMetric{Name: "lat_seconds", Kind: KindHistogram,
		Value: 0.3, Count: 2, Bounds: []float64{0.1, 1}, Buckets: []int64{1, 1, 0}}
	f.Merge("w1", []WireMetric{h})
	h.Value, h.Count, h.Buckets = 0.5, 3, []int64{2, 1, 0}
	f.Merge("w1", []WireMetric{h})

	fleet := target.Histogram(`lat_seconds{worker="fleet"}`, h.Bounds)
	if fleet.Count() != 3 {
		t.Fatalf("fleet histogram count = %d, want 3", fleet.Count())
	}
	if got := fleet.Sum(); got < 0.49 || got > 0.51 {
		t.Fatalf("fleet histogram sum = %g, want 0.5", got)
	}

	// Restarted worker: counts regressed, the new absolute state is the
	// increment.
	h.Value, h.Count, h.Buckets = 0.1, 1, []int64{1, 0, 0}
	f.Merge("w1", []WireMetric{h})
	if fleet.Count() != 4 {
		t.Fatalf("fleet histogram count after restart = %d, want 4", fleet.Count())
	}

	var nilFed *Federator
	nilFed.Merge("w1", []WireMetric{h}) // must not panic
	if nilFed.Workers() != 0 {
		t.Fatal("nil federator has workers")
	}
}

func TestSplitWorkerLabel(t *testing.T) {
	cases := []struct {
		in, base, worker string
	}{
		{`x_total`, `x_total`, ``},
		{`x_total{worker="w1"}`, `x_total`, `w1`},
		{`x_total{outcome="sdc",worker="w1"}`, `x_total{outcome="sdc"}`, `w1`},
		{`x_total{worker="w1",outcome="sdc"}`, `x_total{outcome="sdc"}`, `w1`},
		{`x_total{outcome="sdc"}`, `x_total{outcome="sdc"}`, ``},
		{`worker="oops`, `worker="oops`, ``}, // degenerate: not a label set
	}
	for _, c := range cases {
		base, worker := splitWorkerLabel(c.in)
		if base != c.base || worker != c.worker {
			t.Errorf("splitWorkerLabel(%q) = (%q, %q), want (%q, %q)",
				c.in, base, worker, c.base, c.worker)
		}
	}
}

func TestSummarizeFoldsFleetSkipsPerWorker(t *testing.T) {
	c := NewCampaign(nil)
	// Coordinator-authoritative series.
	c.Registry.Counter(MetricCells).Add(4)
	c.Registry.Gauge(MetricCellsExpected).Set(6)
	c.Registry.Gauge(MetricDispatchWorkers).Set(2)
	c.Registry.Counter(MetricWorkersSeen).Add(3)
	// Federated: fleet aggregate counts, per-worker mirror must not.
	c.Registry.Counter(MetricSamples + `{outcome="masked",worker="fleet"}`).Add(70)
	c.Registry.Counter(MetricSamples + `{outcome="masked",worker="w1"}`).Add(40)
	c.Registry.Counter(MetricSamples + `{outcome="masked",worker="w2"}`).Add(30)
	c.Registry.Counter(MetricSamples + `{outcome="sdc",worker="fleet"}`).Add(10)
	// A worker's own completed-cells counter federates under fleet too, but
	// the coordinator's count is authoritative: the mirror must be ignored.
	c.Registry.Counter(MetricCells + `{worker="fleet"}`).Add(4)
	c.Registry.Counter(MetricCkptHits + `{worker="fleet"}`).Add(9)

	s := c.Summarize()
	if s.Samples != 80 || s.ByOutcome["masked"] != 70 || s.ByOutcome["sdc"] != 10 {
		t.Fatalf("fleet samples folded wrong: %+v", s)
	}
	if s.Cells != 4 {
		t.Fatalf("Cells = %d, want 4 (fleet mirror must not double-count)", s.Cells)
	}
	if s.CheckpointHits != 9 {
		t.Fatalf("CheckpointHits = %d, want 9", s.CheckpointHits)
	}
	if s.WorkersLive != 2 || s.WorkersSeen != 3 {
		t.Fatalf("fleet worker counts: %+v", s)
	}
	if !s.Fleet() {
		t.Fatal("summary with dispatch state must report Fleet()")
	}
	if (Summary{}).Fleet() {
		t.Fatal("empty summary must not report Fleet()")
	}
}
