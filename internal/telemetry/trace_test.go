package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

func sampleBatch(cell string, n int) []SampleRecord {
	recs := make([]SampleRecord, n)
	for i := range recs {
		recs[i] = SampleRecord{
			Component: "L1D", Workload: cell, Faults: 2, Sample: i, Seed: 21,
			InjectCycle: uint64(1000 + i), MaskBits: 2,
			Checkpoint: i % 3, CyclesSkipped: uint64(i * 100),
			Outcome: "masked", DurationNS: int64(1e6 + i),
		}
	}
	return recs
}

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.WriteCell(sampleBatch("sha", 4), nil)
	tr.WriteCell(sampleBatch("qsort", 2), nil)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	if got := strings.Count(buf.String(), "\n"); got != 6 {
		t.Fatalf("trace has %d lines, want 6", got)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("ReadTrace returned %d records, want 6", len(recs))
	}
	want := sampleBatch("sha", 4)[0]
	want.Type = RecordSample // stamped by WriteCell (schema v2)
	if recs[0] != want {
		t.Fatalf("first record did not round-trip: %+v", recs[0])
	}
	if recs[4].Workload != "qsort" || recs[4].Sample != 0 {
		t.Fatalf("batches interleaved or reordered: %+v", recs[4])
	}
}

func TestTracerNilAndEmpty(t *testing.T) {
	var tr *Tracer
	tr.WriteCell(sampleBatch("x", 1), nil) // must not panic
	if tr.Err() != nil {
		t.Fatal("nil tracer reported an error")
	}
	var buf bytes.Buffer
	NewTracer(&buf).WriteCell(nil, nil)
	if buf.Len() != 0 {
		t.Fatal("empty batch wrote bytes")
	}
}

type failWriter struct{ err error }

func (f *failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestTracerLatchesFirstError(t *testing.T) {
	wantErr := errors.New("disk full")
	tr := NewTracer(&failWriter{err: wantErr})
	tr.WriteCell(sampleBatch("sha", 1), nil)
	tr.WriteCell(sampleBatch("sha", 1), nil)
	if !errors.Is(tr.Err(), wantErr) {
		t.Fatalf("Err() = %v, want %v", tr.Err(), wantErr)
	}
}

func TestReadTraceRejectsMalformedMidStreamLine(t *testing.T) {
	// A malformed line FOLLOWED BY more records is corruption, not crash
	// truncation, and still fails with its line number.
	_, err := ReadTrace(strings.NewReader("{\"comp\":\"L1D\"}\nnot json\n{\"comp\":\"L1I\"}\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want a line-2 parse error", err)
	}
}

// TestReadTraceToleratesTruncatedTail pins the crash-recovery contract: a
// process killed mid-write leaves a partial final line, and the reader
// skips and counts it instead of discarding every complete record before
// it.
func TestReadTraceToleratesTruncatedTail(t *testing.T) {
	var buf bytes.Buffer
	NewTracer(&buf).WriteCell(sampleBatch("sha", 3), nil)
	whole := buf.String()

	for _, tc := range []struct {
		name string
		tail string
	}{
		{"mid-json cut", `{"type":"sample","comp":"L1D","work`},
		{"cut inside a string escape", `{"type":"sample","comp":"L1D\`},
		{"binary garbage", "\x00\x1f\x7f garbage"},
		{"typed but unparseable sample", `{"type":"sample","faults":"notanint"}`},
		{"typed but unparseable forensics", `{"type":"forensics","faults":"notanint"}`},
	} {
		tr, err := ReadTraceTyped(strings.NewReader(whole + tc.tail))
		if err != nil {
			t.Fatalf("%s: err = %v, want truncated tail tolerated", tc.name, err)
		}
		if len(tr.Samples) != 3 {
			t.Fatalf("%s: %d samples survived, want 3", tc.name, len(tr.Samples))
		}
		if tr.Truncated != 1 {
			t.Fatalf("%s: Truncated = %d, want 1", tc.name, tr.Truncated)
		}
	}

	// A clean file reports zero truncation.
	tr, err := ReadTraceTyped(strings.NewReader(whole))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Truncated != 0 {
		t.Fatalf("clean trace reported Truncated = %d", tr.Truncated)
	}

	// Trailing blank lines after a truncated line do not resurrect the
	// error: blanks are not records.
	tr, err = ReadTraceTyped(strings.NewReader(whole + "{\"half\n\n\n"))
	if err != nil {
		t.Fatalf("trailing blanks after truncation: %v", err)
	}
	if tr.Truncated != 1 {
		t.Fatalf("Truncated = %d, want 1", tr.Truncated)
	}
}

// TestTracerConcurrentCells: cells flushed from concurrent grid workers
// never interleave records within a batch (run under -race in CI).
func TestTracerConcurrentCells(t *testing.T) {
	var buf safeBuffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.WriteCell(sampleBatch(strings.Repeat("w", i+1), 5), nil)
		}(i)
	}
	wg.Wait()
	recs, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 40 {
		t.Fatalf("got %d records, want 40", len(recs))
	}
	// Within the file each cell's 5 records must be contiguous and ordered.
	for i := 0; i < 40; i += 5 {
		for j := 0; j < 5; j++ {
			if recs[i+j].Workload != recs[i].Workload || recs[i+j].Sample != j {
				t.Fatalf("batch at %d interleaved: %+v", i, recs[i+j])
			}
		}
	}
}

type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func fateBatch(cell string, n int) []FateRecord {
	fates := make([]FateRecord, n)
	for i := range fates {
		fates[i] = FateRecord{
			Component: "L1D", Workload: cell, Faults: 2, Sample: i, Seed: 21,
			InjectCycle: uint64(1000 + i), Mask: [][2]int{{3, 7}, {3, 8}},
			Fate: "refilled", FirstTouchLat: int64(10 * i), Outcome: "masked",
		}
	}
	return fates
}

// TestTracerInterleavesFates: schema v2 writes each sample's forensics
// record immediately after the sample record it belongs to.
func TestTracerInterleavesFates(t *testing.T) {
	var buf bytes.Buffer
	NewTracer(&buf).WriteCell(sampleBatch("sha", 3), fateBatch("sha", 3))
	raw := buf.String()
	tr, err := ReadTraceTyped(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 3 || len(tr.Fates) != 3 || tr.Unknown != 0 {
		t.Fatalf("got %d samples, %d fates, %d unknown; want 3, 3, 0",
			len(tr.Samples), len(tr.Fates), tr.Unknown)
	}
	want := fateBatch("sha", 3)[1]
	want.Type = RecordForensics
	got := tr.Fates[1]
	if got.Fate != want.Fate || got.Sample != want.Sample ||
		got.FirstTouchLat != want.FirstTouchLat || len(got.Mask) != 2 ||
		got.Mask[0] != want.Mask[0] || got.Type != RecordForensics {
		t.Fatalf("fate record did not round-trip: %+v", got)
	}
	// Line order: sample 0, fate 0, sample 1, fate 1, ...
	lines := strings.Split(strings.TrimSpace(raw), "\n")
	if len(lines) != 6 {
		t.Fatalf("trace has %d lines, want 6", len(lines))
	}
	for i, ln := range lines {
		wantType := `"type":"sample"`
		if i%2 == 1 {
			wantType = `"type":"forensics"`
		}
		if !strings.Contains(ln, wantType) {
			t.Errorf("line %d = %s; want %s", i+1, ln, wantType)
		}
	}
}

// TestReadTraceMixedV1V2: a reader must accept a trace whose lines mix
// untyped v1 samples, typed v2 samples, forensics records and record types
// it has never heard of.
func TestReadTraceMixedV1V2(t *testing.T) {
	mixed := `{"comp":"L1D","workload":"sha","faults":1,"sample":0,"seed":7,"outcome":"masked"}
{"type":"sample","comp":"L1D","workload":"sha","faults":1,"sample":1,"seed":7,"outcome":"sdc"}
{"type":"forensics","comp":"L1D","workload":"sha","faults":1,"sample":1,"seed":7,"fate":"read-then-sdc","first_touch_lat":42,"outcome":"sdc"}
{"type":"hologram","payload":"from the future"}

{"type":"sample","comp":"L1D","workload":"sha","faults":1,"sample":2,"seed":7,"outcome":"masked"}
`
	tr, err := ReadTraceTyped(strings.NewReader(mixed))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 3 {
		t.Fatalf("got %d samples, want 3 (v1 untyped line must count as sample)", len(tr.Samples))
	}
	if tr.Samples[0].Type != "" || tr.Samples[0].Workload != "sha" {
		t.Fatalf("v1 record mangled: %+v", tr.Samples[0])
	}
	if len(tr.Fates) != 1 || tr.Fates[0].Fate != "read-then-sdc" || tr.Fates[0].FirstTouchLat != 42 {
		t.Fatalf("forensics record mangled: %+v", tr.Fates)
	}
	if tr.Unknown != 1 {
		t.Fatalf("Unknown = %d, want 1 (unknown types are skipped, not errors)", tr.Unknown)
	}
	// The legacy sample-only reader sees the same file and just drops the
	// non-sample records.
	recs, err := ReadTrace(strings.NewReader(mixed))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("ReadTrace got %d records, want 3", len(recs))
	}
}

// TestTracerTrailingFates: fate records whose sample index exceeds every
// sample record still land in the trace (defensive; should not happen in a
// real campaign).
func TestTracerTrailingFates(t *testing.T) {
	var buf bytes.Buffer
	fates := fateBatch("sha", 5)
	NewTracer(&buf).WriteCell(sampleBatch("sha", 2), fates)
	tr, err := ReadTraceTyped(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Samples) != 2 || len(tr.Fates) != 5 {
		t.Fatalf("got %d samples, %d fates; want 2, 5", len(tr.Samples), len(tr.Fates))
	}
}
