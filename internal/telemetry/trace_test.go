package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

func sampleBatch(cell string, n int) []SampleRecord {
	recs := make([]SampleRecord, n)
	for i := range recs {
		recs[i] = SampleRecord{
			Component: "L1D", Workload: cell, Faults: 2, Sample: i, Seed: 21,
			InjectCycle: uint64(1000 + i), MaskBits: 2,
			Checkpoint: i % 3, CyclesSkipped: uint64(i * 100),
			Outcome: "masked", DurationNS: int64(1e6 + i),
		}
	}
	return recs
}

func TestTracerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.WriteCell(sampleBatch("sha", 4))
	tr.WriteCell(sampleBatch("qsort", 2))
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}

	if got := strings.Count(buf.String(), "\n"); got != 6 {
		t.Fatalf("trace has %d lines, want 6", got)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 6 {
		t.Fatalf("ReadTrace returned %d records, want 6", len(recs))
	}
	if recs[0] != sampleBatch("sha", 4)[0] {
		t.Fatalf("first record did not round-trip: %+v", recs[0])
	}
	if recs[4].Workload != "qsort" || recs[4].Sample != 0 {
		t.Fatalf("batches interleaved or reordered: %+v", recs[4])
	}
}

func TestTracerNilAndEmpty(t *testing.T) {
	var tr *Tracer
	tr.WriteCell(sampleBatch("x", 1)) // must not panic
	if tr.Err() != nil {
		t.Fatal("nil tracer reported an error")
	}
	var buf bytes.Buffer
	NewTracer(&buf).WriteCell(nil)
	if buf.Len() != 0 {
		t.Fatal("empty batch wrote bytes")
	}
}

type failWriter struct{ err error }

func (f *failWriter) Write([]byte) (int, error) { return 0, f.err }

func TestTracerLatchesFirstError(t *testing.T) {
	wantErr := errors.New("disk full")
	tr := NewTracer(&failWriter{err: wantErr})
	tr.WriteCell(sampleBatch("sha", 1))
	tr.WriteCell(sampleBatch("sha", 1))
	if !errors.Is(tr.Err(), wantErr) {
		t.Fatalf("Err() = %v, want %v", tr.Err(), wantErr)
	}
}

func TestReadTraceRejectsMalformedLine(t *testing.T) {
	_, err := ReadTrace(strings.NewReader("{\"comp\":\"L1D\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v, want a line-2 parse error", err)
	}
}

// TestTracerConcurrentCells: cells flushed from concurrent grid workers
// never interleave records within a batch (run under -race in CI).
func TestTracerConcurrentCells(t *testing.T) {
	var buf safeBuffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr.WriteCell(sampleBatch(strings.Repeat("w", i+1), 5))
		}(i)
	}
	wg.Wait()
	recs, err := ReadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 40 {
		t.Fatalf("got %d records, want 40", len(recs))
	}
	// Within the file each cell's 5 records must be contiguous and ordered.
	for i := 0; i < 40; i += 5 {
		for j := 0; j < 5; j++ {
			if recs[i+j].Workload != recs[i].Workload || recs[i+j].Sample != j {
				t.Fatalf("batch at %d interleaved: %+v", i, recs[i+j])
			}
		}
	}
}

type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
