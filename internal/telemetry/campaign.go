package telemetry

import (
	"strings"
	"time"
)

// Campaign metric names. All series share the gefin_ prefix so one scrape
// config covers the whole campaign; outcome-split series embed the class
// as a label.
const (
	MetricSamples       = "gefin_samples_total" // + {outcome="..."} label
	MetricSampleSeconds = "gefin_sample_duration_seconds"
	MetricCells         = "gefin_cells_completed_total"
	MetricCellQueue     = "gefin_cell_queue_seconds"
	MetricCellRun       = "gefin_cell_run_seconds"
	MetricCellFlush     = "gefin_cell_flush_seconds"
	MetricCkptHits      = "gefin_checkpoint_hits_total"
	MetricCkptMisses    = "gefin_checkpoint_misses_total"
	MetricCyclesSkipped = "gefin_checkpoint_cycles_skipped_total"
	MetricWorkersBusy   = "gefin_cell_workers_busy"
	MetricCellsExpected = "gefin_cells_expected"
	MetricSamplesExpect = "gefin_samples_expected"
	MetricSampleWorkers = "gefin_sample_workers_per_cell"
	MetricCellWorkers   = "gefin_cell_workers"

	// Forensics series (PR 4). Fates are split by component and fate class;
	// the occupancy gauges hold the mean at-inject structure state of a
	// cell in basis points (1/10000), since gauges are integral.
	MetricFates       = "gefin_fates_total" // + {comp="...",fate="..."}
	MetricOccupancyBP = "gefin_inject_occupancy_bp"
	MetricDirtyBP     = "gefin_inject_dirty_bp"

	// Robustness and dispatch series (PR 5): recovered sample panics, and
	// the coordinator's view of a distributed campaign — live workers,
	// outstanding leases, expiry/reassignment churn and deduplicated
	// resubmissions.
	MetricWorkerPanics    = "gefin_worker_panics_total"
	MetricDispatchWorkers = "gefin_dispatch_workers_live"
	MetricDispatchLeased  = "gefin_dispatch_cells_leased"
	MetricDispatchExpired = "gefin_dispatch_leases_expired_total"
	MetricDispatchRetried = "gefin_dispatch_cells_retried_total"
	MetricDispatchDeduped = "gefin_dispatch_submits_deduped_total"

	// Observability-plane series (PR 8): distinct workers that ever joined
	// the campaign (the live gauge forgets a dead worker; this counter does
	// not), campaign events appended to the event log, and the process
	// build-info gauge (constant 1, identity in the labels).
	MetricWorkersSeen = "gefin_dispatch_workers_seen_total"
	MetricEvents      = "gefin_campaign_events_total"
	MetricBuildInfo   = "gefin_build_info"

	// Checkpoint-artifact series (PR 7): how each process came by its
	// workloads' golden state. GoldenDerived counts full fault-free golden
	// runs actually executed here — the expensive event the artifact store
	// exists to avoid; summing it across a fleet proves how many were paid
	// for in total. The artifact counters split the cheap path: served by
	// the coordinator, satisfied from the worker's disk cache, fetched over
	// HTTP, rejected as corrupt, or fallen back to local derivation.
	MetricGoldenDerived     = "gefin_golden_derived_total"
	MetricArtifactServed    = "gefin_artifact_served_total"
	MetricArtifactCacheHits = "gefin_artifact_cache_hits_total"
	MetricArtifactFetches   = "gefin_artifact_fetches_total"
	MetricArtifactCorrupt   = "gefin_artifact_corrupt_total"
	MetricArtifactFallbacks = "gefin_artifact_fallbacks_total"

	// Campaign-service series (PR 10): campaign state transitions (the
	// counter increments each time any campaign ENTERS a state, so
	// {state="done"} is completed campaigns and {state="queued"} is total
	// admissions), the current queue depth and live-campaign gauges, the
	// per-tenant admission rejections with the reason they bounced, and
	// per-campaign completed-cell counters.
	MetricCampaigns        = "gefin_campaigns_total" // + {state="..."}
	MetricQueueDepth       = "gefin_campaign_queue_depth"
	MetricCampaignsLive    = "gefin_campaigns_live"
	MetricAdmissionRejects = "gefin_admission_rejects_total" // + {tenant,reason}
	MetricCampaignCells    = "gefin_campaign_cells_done_total"

	// Liveness-profiling series (PR 9): one counter per completed profile
	// artifact plus per-(component, workload) analytical gauges, so a
	// profiling run's ACE fraction and never-touched fraction are visible
	// on the same scrape endpoint as the injection-measured campaign
	// series they predict.
	MetricProfiles       = "gefin_profiles_total"
	MetricProfileACEBP   = "gefin_profile_ace_bp"
	MetricProfileNeverBP = "gefin_profile_never_touched_bp"
)

// Campaign bundles a metrics registry and an optional tracer behind typed
// recording hooks for the campaign hot path. A nil *Campaign is the
// disabled state: every method returns immediately and allocates nothing,
// so core.Run and friends call these hooks unconditionally.
type Campaign struct {
	Registry *Registry
	Tracer   *Tracer
	// Events, when non-nil, receives the campaign event log (see events.go):
	// local grids emit cell_done per completed cell, the dispatch
	// coordinator additionally narrates leases, workers and retries.
	Events *EventLog
}

// NewCampaign returns an enabled campaign with a fresh registry. tracer
// may be nil (metrics only).
func NewCampaign(tracer *Tracer) *Campaign {
	return &Campaign{Registry: NewRegistry(), Tracer: tracer}
}

// Enabled reports whether any telemetry is being collected.
func (c *Campaign) Enabled() bool { return c != nil }

// Tracing reports whether per-sample trace records should be built.
func (c *Campaign) Tracing() bool { return c != nil && c.Tracer != nil }

// RecordSample ingests one classified injection run: outcome counter,
// duration histogram, and checkpoint hit/miss accounting. A checkpoint
// "hit" is a restore that actually skipped golden-prefix cycles; restores
// of the cycle-0 checkpoint and -nockpt runs count as misses.
func (c *Campaign) RecordSample(rec *SampleRecord) {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricSamples + `{outcome="` + rec.Outcome + `"}`).Inc()
	c.Registry.Histogram(MetricSampleSeconds, DurationBuckets).
		Observe(float64(rec.DurationNS) / 1e9)
	if rec.CyclesSkipped > 0 {
		c.Registry.Counter(MetricCkptHits).Inc()
		c.Registry.Counter(MetricCyclesSkipped).Add(int64(rec.CyclesSkipped))
	} else {
		c.Registry.Counter(MetricCkptMisses).Inc()
	}
}

// RecordFate ingests one resolved fault lifecycle into the per-component
// fate counters.
func (c *Campaign) RecordFate(rec *FateRecord) {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricFates + `{comp="` + rec.Component + `",fate="` + rec.Fate + `"}`).Inc()
}

// SetCellOccupancy publishes a cell's mean at-inject structure state as
// basis-point gauges: the valid fraction always, the dirty fraction only
// for targets that track one (caches).
func (c *Campaign) SetCellOccupancy(comp, workload string, faults int, occ float64, dirty float64, hasDirty bool) {
	if c == nil {
		return
	}
	label := `{comp="` + comp + `",workload="` + workload + `",faults="` + itoa(faults) + `"}`
	c.Registry.Gauge(MetricOccupancyBP + label).Set(int64(occ*1e4 + 0.5))
	if hasDirty {
		c.Registry.Gauge(MetricDirtyBP + label).Set(int64(dirty*1e4 + 0.5))
	}
}

// RecordProfileComponent publishes one component's analytical summary
// from a liveness profile: the ACE (live-bit-cycle) fraction and the
// never-touched fraction, both in basis points.
func (c *Campaign) RecordProfileComponent(comp, workload string, ace, never float64) {
	if c == nil {
		return
	}
	label := `{comp="` + comp + `",workload="` + workload + `"}`
	c.Registry.Gauge(MetricProfileACEBP + label).Set(int64(ace*1e4 + 0.5))
	c.Registry.Gauge(MetricProfileNeverBP + label).Set(int64(never*1e4 + 0.5))
}

// RecordProfileDone counts one liveness profile artifact written (or
// verified up to date) by this process.
func (c *Campaign) RecordProfileDone() {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricProfiles).Inc()
}

// itoa is strconv.Itoa for the small positive ints in metric labels,
// avoiding the strconv import on the recording path.
func itoa(n int) string {
	if n < 10 {
		return string([]byte{byte('0' + n)})
	}
	return itoa(n/10) + string([]byte{byte('0' + n%10)})
}

// RecordWorkerPanic counts one recovered sample-worker panic (the sample's
// cell fails cleanly instead of aborting the process).
func (c *Campaign) RecordWorkerPanic() {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricWorkerPanics).Inc()
}

// SetDispatchWorkers publishes the coordinator's live-worker count: workers
// that have leased, heartbeated or submitted recently.
func (c *Campaign) SetDispatchWorkers(n int64) {
	if c == nil {
		return
	}
	c.Registry.Gauge(MetricDispatchWorkers).Set(n)
}

// SetDispatchLeased publishes the number of cells currently out on lease.
func (c *Campaign) SetDispatchLeased(n int64) {
	if c == nil {
		return
	}
	c.Registry.Gauge(MetricDispatchLeased).Set(n)
}

// DispatchLeaseExpired counts one lease whose worker stopped heartbeating
// before completing its cell.
func (c *Campaign) DispatchLeaseExpired() {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricDispatchExpired).Inc()
}

// DispatchCellRetried counts one cell returned to the pending queue for
// reassignment (lease expiry or a worker-reported failure).
func (c *Campaign) DispatchCellRetried() {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricDispatchRetried).Inc()
}

// DispatchWorkerSeen counts one worker id joining the campaign for the
// first time.
func (c *Campaign) DispatchWorkerSeen() {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricWorkersSeen).Inc()
}

// Emit appends one event to the campaign event log (no-op without one) and
// counts it. The log assigns Seq and TimeNS.
func (c *Campaign) Emit(ev Event) {
	if c == nil || c.Events == nil {
		return
	}
	c.Events.Emit(ev)
	c.Registry.Counter(MetricEvents).Inc()
}

// CampaignEntered counts one campaign entering a lifecycle state (queued,
// running, paused, done, failed, cancelled).
func (c *Campaign) CampaignEntered(state string) {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricCampaigns + `{state="` + state + `"}`).Inc()
}

// SetQueueDepth publishes the campaign service's queued-campaign count.
func (c *Campaign) SetQueueDepth(n int64) {
	if c == nil {
		return
	}
	c.Registry.Gauge(MetricQueueDepth).Set(n)
}

// SetCampaignsLive publishes how many campaigns are live (queued, running
// or paused) in the campaign service.
func (c *Campaign) SetCampaignsLive(n int64) {
	if c == nil {
		return
	}
	c.Registry.Gauge(MetricCampaignsLive).Set(n)
}

// AdmissionRejected counts one campaign submission bounced by admission
// control, split by tenant and reason (queue_full, tenant_campaigns,
// tenant_cells).
func (c *Campaign) AdmissionRejected(tenant, reason string) {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricAdmissionRejects + `{tenant="` + tenant + `",reason="` + reason + `"}`).Inc()
}

// CampaignCellDone counts one completed cell against its campaign and
// tenant, so one /metrics scrape shows per-campaign progress.
func (c *Campaign) CampaignCellDone(campaign, tenant string) {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricCampaignCells + `{campaign="` + campaign + `",tenant="` + tenant + `"}`).Inc()
}

// DispatchSubmitDeduped counts one result delivered for an already-complete
// cell and dropped as a no-op (a slow worker re-delivering after its lease
// was reassigned).
func (c *Campaign) DispatchSubmitDeduped() {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricDispatchDeduped).Inc()
}

// GoldenDerived counts one full golden reference run executed in this
// process (as opposed to installed from a cached artifact).
func (c *Campaign) GoldenDerived() {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricGoldenDerived).Inc()
}

// ArtifactServed counts one checkpoint artifact served to a worker.
func (c *Campaign) ArtifactServed() {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricArtifactServed).Inc()
}

// ArtifactCacheHit counts one workload brought up from the local artifact
// disk cache, no golden run and no network.
func (c *Campaign) ArtifactCacheHit() {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricArtifactCacheHits).Inc()
}

// ArtifactFetched counts one artifact downloaded from the coordinator and
// installed.
func (c *Campaign) ArtifactFetched() {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricArtifactFetches).Inc()
}

// ArtifactCorrupt counts one cached or fetched artifact rejected by
// verification (bad hash, bad structure, wrong image).
func (c *Campaign) ArtifactCorrupt() {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricArtifactCorrupt).Inc()
}

// ArtifactFallback counts one workload that fell back to local golden
// derivation after the artifact path failed (no coordinator artifact,
// fetch error, or verification failure).
func (c *Campaign) ArtifactFallback() {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricArtifactFallbacks).Inc()
}

// FlushCell persists one completed cell's trace records and forensics
// records (no-op without a tracer) and bumps the completed-cell counter.
func (c *Campaign) FlushCell(recs []SampleRecord, fates []FateRecord) {
	if c == nil {
		return
	}
	c.Registry.Counter(MetricCells).Inc()
	c.Tracer.WriteCell(recs, fates)
}

// RecordCellQueue records how long a cell waited between grid submission
// and a worker picking it up.
func (c *Campaign) RecordCellQueue(d time.Duration) {
	if c == nil {
		return
	}
	c.Registry.Histogram(MetricCellQueue, DurationBuckets).ObserveDuration(d)
}

// RecordCellRun records one cell's end-to-end run time.
func (c *Campaign) RecordCellRun(d time.Duration) {
	if c == nil {
		return
	}
	c.Registry.Histogram(MetricCellRun, DurationBuckets).ObserveDuration(d)
}

// RecordCellFlush records the time spent in the onCell callback (results
// flush, progress output).
func (c *Campaign) RecordCellFlush(d time.Duration) {
	if c == nil {
		return
	}
	c.Registry.Histogram(MetricCellFlush, DurationBuckets).ObserveDuration(d)
}

// WorkerBusy moves the busy cell-worker gauge by delta (+1 on pickup,
// -1 on completion).
func (c *Campaign) WorkerBusy(delta int64) {
	if c == nil {
		return
	}
	c.Registry.Gauge(MetricWorkersBusy).Add(delta)
}

// SetGridShape publishes the grid geometry: expected cells and samples,
// and the cell/sample worker split the scheduler chose.
func (c *Campaign) SetGridShape(cells, samples int, cellWorkers, sampleWorkers int) {
	if c == nil {
		return
	}
	c.Registry.Gauge(MetricCellsExpected).Set(int64(cells))
	c.Registry.Gauge(MetricSamplesExpect).Set(int64(samples))
	c.Registry.Gauge(MetricCellWorkers).Set(int64(cellWorkers))
	c.Registry.Gauge(MetricSampleWorkers).Set(int64(sampleWorkers))
}

// Summary is a point-in-time digest of campaign progress for the periodic
// status line.
type Summary struct {
	Samples         int64            // classified so far
	SamplesExpected int64            // 0 when the grid shape was not published
	ByOutcome       map[string]int64 // outcome class -> count
	Cells           int64
	CellsExpected   int64
	CheckpointHits  int64
	CheckpointMiss  int64
	// ByFate aggregates the forensics fate counters across components;
	// empty when forensics was off.
	ByFate map[string]int64
	// Fleet view (coordinator mode): live/ever-seen worker counts, cells
	// currently out on lease, and the expiry/retry churn — all zero on a
	// purely local campaign.
	WorkersLive   int64
	WorkersSeen   int64
	CellsLeased   int64
	LeasesExpired int64
	CellsRetried  int64
}

// Fleet reports whether the summary carries any distributed-campaign state
// worth rendering.
func (s Summary) Fleet() bool {
	return s.WorkersLive > 0 || s.WorkersSeen > 0 || s.CellsLeased > 0 ||
		s.LeasesExpired > 0 || s.CellsRetried > 0
}

// Summarize digests the registry, including federated fleet aggregates: a
// series labeled worker="fleet" is folded in as if it were local (the
// coordinator runs no samples itself, so the two never overlap), while
// per-worker mirror series are skipped — they are the same observations
// again and would double-count.
func (c *Campaign) Summarize() Summary {
	var s Summary
	if c == nil {
		return s
	}
	s.ByOutcome = make(map[string]int64)
	s.ByFate = make(map[string]int64)
	prefix := MetricSamples + `{outcome="`
	fatePrefix := MetricFates + `{comp="`
	for _, m := range c.Registry.Snapshot() {
		name, worker := splitWorkerLabel(m.Name)
		if worker != "" && worker != FleetWorker {
			continue
		}
		fleet := worker == FleetWorker
		switch {
		case strings.HasPrefix(name, prefix):
			outcome := strings.TrimSuffix(strings.TrimPrefix(name, prefix), `"}`)
			s.ByOutcome[outcome] += int64(m.Value)
			s.Samples += int64(m.Value)
		case strings.HasPrefix(name, fatePrefix):
			rest := strings.TrimPrefix(name, fatePrefix)
			if i := strings.Index(rest, `",fate="`); i >= 0 {
				fate := strings.TrimSuffix(rest[i+len(`",fate="`):], `"}`)
				s.ByFate[fate] += int64(m.Value)
			}
		case name == MetricCkptHits:
			s.CheckpointHits += int64(m.Value)
		case name == MetricCkptMisses:
			s.CheckpointMiss += int64(m.Value)
		case fleet:
			// The remaining families are authoritative locally: the
			// coordinator's own cells_completed / grid-shape / dispatch
			// series. Their fleet mirrors (a worker's 1-cell grid shape, its
			// duplicate completed-cells count) are views of the same events.
		case name == MetricCells:
			s.Cells = int64(m.Value)
		case name == MetricCellsExpected:
			s.CellsExpected = int64(m.Value)
		case name == MetricSamplesExpect:
			s.SamplesExpected = int64(m.Value)
		case name == MetricDispatchWorkers:
			s.WorkersLive = int64(m.Value)
		case name == MetricWorkersSeen:
			s.WorkersSeen = int64(m.Value)
		case name == MetricDispatchLeased:
			s.CellsLeased = int64(m.Value)
		case name == MetricDispatchExpired:
			s.LeasesExpired = int64(m.Value)
		case name == MetricDispatchRetried:
			s.CellsRetried = int64(m.Value)
		}
	}
	return s
}
