package telemetry

import (
	"math"
	"strings"
	"sync"
)

// Worker metrics federation: worker-side registries vanish when the worker
// process exits, so workers piggyback compact snapshots of their registry
// on the dispatch protocol (heartbeats and submits) and the coordinator
// merges them into its own registry. One scrape of the coordinator's
// /metrics then shows the whole fleet: every worker series re-published
// under a `worker="<id>"` label, plus fleet aggregates under the reserved
// `worker="fleet"` label (a distinct label value rather than the bare
// series name, so federated data can never collide with — or double-count
// against — counters the coordinator tracks authoritatively itself, like
// gefin_cells_completed_total).
//
// The wire carries absolute values, not increments: the worker-side
// DeltaTracker only decides WHICH series to send (the ones that changed
// since the last send — the "delta" on the wire), while the coordinator's
// Federator derives increments by differencing against the last absolute
// value it saw from that worker. A restarted worker's counters restart
// from zero; the Federator detects the regression and counts the new value
// as the increment, so published series stay monotonic and nothing the old
// incarnation reported is counted twice or lost.

// FleetWorker is the reserved worker-label value for fleet-aggregated
// series. Worker ids must not use it.
const FleetWorker = "fleet"

// WireMetric is one series in a federated snapshot: absolute values, with
// histograms flattened to finite bucket bounds plus per-bucket
// (non-cumulative) counts, the +Inf bucket last — cumulative counts and
// infinite bounds do not survive JSON.
type WireMetric struct {
	Name  string  `json:"name"`
	Kind  Kind    `json:"kind"`
	Value float64 `json:"value"`           // counter/gauge value; histogram sum
	Count int64   `json:"count,omitempty"` // histogram observation count
	// Bounds are the histogram's finite upper bounds; Buckets holds one
	// count per bound plus the +Inf bucket, len(Bounds)+1 long.
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// DeltaTracker watches a registry and renders the series that changed
// since the last call, as absolute-valued WireMetrics. The zero value is
// ready; a nil tracker (or nil registry) always reports nothing.
type DeltaTracker struct {
	mu   sync.Mutex
	reg  *Registry
	last map[string]wireKey
}

// wireKey is the change-detection fingerprint of one series.
type wireKey struct {
	value float64
	count int64
}

// NewDeltaTracker returns a tracker over reg.
func NewDeltaTracker(reg *Registry) *DeltaTracker {
	return &DeltaTracker{reg: reg, last: make(map[string]wireKey)}
}

// Delta returns every series whose value changed since the previous Delta
// call (all of them, on the first). The returned values are absolute.
func (d *DeltaTracker) Delta() []WireMetric {
	if d == nil || d.reg == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []WireMetric
	for _, m := range d.reg.Snapshot() {
		k := wireKey{value: m.Value, count: m.Count}
		if prev, ok := d.last[m.Name]; ok && prev == k {
			continue
		}
		d.last[m.Name] = k
		wm := WireMetric{Name: m.Name, Kind: m.Kind, Value: m.Value, Count: m.Count}
		if m.Kind == KindHistogram {
			// De-cumulate the snapshot's buckets; drop the +Inf bound but
			// keep its count as the final bucket.
			prev := int64(0)
			for _, b := range m.Buckets {
				wm.Buckets = append(wm.Buckets, b.Count-prev)
				prev = b.Count
				if !math.IsInf(b.UpperBound, 1) {
					wm.Bounds = append(wm.Bounds, b.UpperBound)
				}
			}
		}
		out = append(out, wm)
	}
	return out
}

// Federator merges worker snapshots into a target registry. Safe for
// concurrent use; a nil federator discards merges.
type Federator struct {
	mu     sync.Mutex
	target *Registry
	// last holds, per worker, the last absolute value seen for each series
	// — the subtrahend for increment derivation and restart detection.
	last map[string]map[string]WireMetric
	// OnNewWorker, when non-nil, fires once per distinct worker id, under
	// no lock ordering guarantees beyond happens-before the merge.
	OnNewWorker func(worker string)
}

// NewFederator returns a federator publishing into target.
func NewFederator(target *Registry) *Federator {
	return &Federator{target: target, last: make(map[string]map[string]WireMetric)}
}

// Merge ingests one worker's snapshot: per-worker labeled series are
// brought up to the reported absolute values, and the derived increments
// are added to the worker="fleet" aggregates. Monotonic merge: a counter
// or histogram that went backwards means the worker restarted, and the new
// absolute value is taken as the increment since then.
func (f *Federator) Merge(worker string, ms []WireMetric) {
	if f == nil || worker == "" || len(ms) == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	prev, ok := f.last[worker]
	if !ok {
		prev = make(map[string]WireMetric)
		f.last[worker] = prev
		if f.OnNewWorker != nil {
			f.OnNewWorker(worker)
		}
	}
	for _, m := range ms {
		wlabel := `worker="` + worker + `"`
		switch m.Kind {
		case KindCounter:
			inc := m.Value - prev[m.Name].Value
			if inc < 0 { // worker restart: its counter began again at zero
				inc = m.Value
			}
			f.target.Counter(withLabel(m.Name, wlabel)).Add(int64(inc))
			f.target.Counter(withLabel(m.Name, `worker="`+FleetWorker+`"`)).Add(int64(inc))
		case KindGauge:
			f.target.Gauge(withLabel(m.Name, wlabel)).Set(int64(m.Value))
			// Fleet gauge: sum of the latest value from every worker.
			var sum int64
			for w, series := range f.last {
				if w == worker {
					continue
				}
				if g, ok := series[m.Name]; ok {
					sum += int64(g.Value)
				}
			}
			f.target.Gauge(withLabel(m.Name, `worker="`+FleetWorker+`"`)).Set(sum + int64(m.Value))
		case KindHistogram:
			p := prev[m.Name]
			deltas := make([]int64, len(m.Buckets))
			restart := m.Count < p.Count || len(p.Buckets) != len(m.Buckets)
			var sumDelta float64
			if restart || p.Buckets == nil {
				copy(deltas, m.Buckets)
				sumDelta = m.Value
			} else {
				for i := range m.Buckets {
					d := m.Buckets[i] - p.Buckets[i]
					if d < 0 {
						restart = true
						break
					}
					deltas[i] = d
				}
				if restart {
					copy(deltas, m.Buckets)
					sumDelta = m.Value
				} else {
					sumDelta = m.Value - p.Value
				}
			}
			f.target.Histogram(withLabel(m.Name, wlabel), m.Bounds).merge(deltas, sumDelta)
			f.target.Histogram(withLabel(m.Name, `worker="`+FleetWorker+`"`), m.Bounds).merge(deltas, sumDelta)
		}
		prev[m.Name] = m
	}
}

// Workers returns how many distinct worker ids have ever merged.
func (f *Federator) Workers() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.last)
}

// splitWorkerLabel separates a worker label from a series name:
// `x{outcome="sdc",worker="w1"}` -> (`x{outcome="sdc"}`, "w1"), and a name
// without one comes back unchanged with worker "". Summarize uses it to
// fold fleet aggregates into the campaign summary while skipping the
// per-worker mirrors that would double-count them.
func splitWorkerLabel(name string) (base, worker string) {
	i := strings.Index(name, `worker="`)
	if i < 1 { // absent, or not preceded by a brace/comma: not a label
		return name, ""
	}
	rest := name[i+len(`worker="`):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return name, ""
	}
	worker = rest[:j]
	// Remove the label pair plus its separator: either `{worker="w"}` whole
	// (only label) or a leading `,`/trailing `,` inside a larger set.
	switch {
	case name[i-1] == '{' && strings.HasPrefix(rest[j+1:], "}"):
		base = name[:i-1] + rest[j+1+1:]
	case name[i-1] == ',':
		base = name[:i-1] + rest[j+1:]
	default: // worker="..." first with more labels after: drop trailing comma
		base = name[:i] + strings.TrimPrefix(rest[j+1:], ",")
	}
	return base, worker
}
