package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// SampleRecord is one line of the campaign trace: the complete event record
// of a single fault-injection sample, following the per-fault event-record
// style of Jaulmes et al. Records are written as JSONL — one JSON object
// per line — so traces stream, append, and survive interrupts.
type SampleRecord struct {
	Component string `json:"comp"`
	Workload  string `json:"workload"`
	Faults    int    `json:"faults"`
	Sample    int    `json:"sample"` // index within the cell, 0..Samples-1
	Seed      uint64 `json:"seed"`   // campaign seed of the cell

	InjectCycle uint64 `json:"inject_cycle"`
	MaskBits    int    `json:"mask_bits"` // live bits after protection filtering

	// Checkpoint is the index of the golden checkpoint the run was
	// fast-forwarded from (-1 when checkpointing was disabled);
	// CyclesSkipped is the golden prefix that was not replayed.
	Checkpoint    int    `json:"checkpoint"`
	CyclesSkipped uint64 `json:"cycles_skipped"`

	Outcome    string `json:"outcome"`
	DurationNS int64  `json:"duration_ns"` // wall-clock time of the sample
}

// Tracer writes sample records to an underlying stream in per-cell batches.
// WriteCell serializes and writes a whole cell's records in one call, so —
// like the results file — the trace only ever contains complete cells: a
// cancelled cell's records are simply never flushed. After the first write
// error the tracer latches it (Err) and drops further batches.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewTracer returns a tracer writing JSONL to w. A nil tracer is a valid
// no-op sink.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// WriteCell appends one cell's records to the trace as a single write.
// Safe for concurrent use; a nil tracer discards the batch.
func (t *Tracer) WriteCell(recs []SampleRecord) {
	if t == nil || len(recs) == 0 {
		return
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf) // Encode appends the newline JSONL needs
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			t.fail(err)
			return
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(buf.Bytes()); err != nil {
		t.err = err
	}
}

func (t *Tracer) fail(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = err
	}
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// ReadTrace parses a JSONL trace stream back into records, e.g. for
// cmd/logparse or round-trip tests. Blank lines are skipped; a malformed
// line fails with its line number.
func ReadTrace(r io.Reader) ([]SampleRecord, error) {
	var out []SampleRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var rec SampleRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
