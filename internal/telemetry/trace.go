package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Trace schema versions. v1 traces hold untyped sample records; v2 records
// carry a "type" field ("sample", "forensics", ...) so one stream can mix
// record kinds. Readers treat a missing type as "sample" and skip unknown
// types, so v2 readers accept v1 files and future record kinds degrade
// gracefully.
const (
	RecordSample    = "sample"
	RecordForensics = "forensics"
)

// SampleRecord is one line of the campaign trace: the complete event record
// of a single fault-injection sample, following the per-fault event-record
// style of Jaulmes et al. Records are written as JSONL — one JSON object
// per line — so traces stream, append, and survive interrupts.
type SampleRecord struct {
	Type      string `json:"type,omitempty"` // RecordSample; empty in v1 files
	Component string `json:"comp"`
	Workload  string `json:"workload"`
	Faults    int    `json:"faults"`
	Sample    int    `json:"sample"` // index within the cell, 0..Samples-1
	Seed      uint64 `json:"seed"`   // campaign seed of the cell

	InjectCycle uint64 `json:"inject_cycle"`
	MaskBits    int    `json:"mask_bits"` // live bits after protection filtering

	// Checkpoint is the index of the golden checkpoint the run was
	// fast-forwarded from (-1 when checkpointing was disabled);
	// CyclesSkipped is the golden prefix that was not replayed.
	Checkpoint    int    `json:"checkpoint"`
	CyclesSkipped uint64 `json:"cycles_skipped"`

	Outcome    string `json:"outcome"`
	DurationNS int64  `json:"duration_ns"` // wall-clock time of the sample
}

// FateRecord is the schema-v2 forensics record paired with one sample: the
// resolved lifecycle of the injected fault mask (see internal/forensics).
// The tracer writes each cell's fate record immediately after its sample
// record, so a trace with forensics enabled alternates the two types.
type FateRecord struct {
	Type      string `json:"type"` // RecordForensics
	Component string `json:"comp"`
	Workload  string `json:"workload"`
	Faults    int    `json:"faults"`
	Sample    int    `json:"sample"`
	Seed      uint64 `json:"seed"`

	InjectCycle uint64   `json:"inject_cycle"`
	Mask        [][2]int `json:"mask"` // [row, col] of every flipped bit

	// Fate is the lifecycle class: never-touched, overwritten, refilled,
	// read-then-masked, read-then-sdc, written-back or diverged.
	Fate string `json:"fate"`
	// FirstTouchLat is cycles from injection to the first event involving
	// a corrupted bit; -1 if nothing ever touched one.
	FirstTouchLat int64 `json:"first_touch_lat"`
	// DivergeCycle is the first architectural-divergence cycle seen by the
	// lockstep shadow machine (full mode only); 0 = none observed.
	DivergeCycle uint64 `json:"diverge_cycle,omitempty"`

	Outcome string `json:"outcome"`
}

// Tracer writes sample records to an underlying stream in per-cell batches.
// WriteCell serializes and writes a whole cell's records in one call, so —
// like the results file — the trace only ever contains complete cells: a
// cancelled cell's records are simply never flushed. After the first write
// error the tracer latches it (Err) and drops further batches.
type Tracer struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewTracer returns a tracer writing JSONL to w. A nil tracer is a valid
// no-op sink.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// WriteCell appends one cell's records to the trace as a single write.
// fates, when non-empty, are interleaved after their sample record (matched
// by sample index; both slices must be sorted by it). Safe for concurrent
// use; a nil tracer discards the batch.
func (t *Tracer) WriteCell(recs []SampleRecord, fates []FateRecord) {
	if t == nil || len(recs) == 0 {
		return
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf) // Encode appends the newline JSONL needs
	fi := 0
	for i := range recs {
		recs[i].Type = RecordSample
		if err := enc.Encode(&recs[i]); err != nil {
			t.fail(err)
			return
		}
		for fi < len(fates) && fates[fi].Sample <= recs[i].Sample {
			fates[fi].Type = RecordForensics
			if err := enc.Encode(&fates[fi]); err != nil {
				t.fail(err)
				return
			}
			fi++
		}
	}
	for ; fi < len(fates); fi++ {
		fates[fi].Type = RecordForensics
		if err := enc.Encode(&fates[fi]); err != nil {
			t.fail(err)
			return
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(buf.Bytes()); err != nil {
		t.err = err
	}
}

func (t *Tracer) fail(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		t.err = err
	}
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// newJSONLScanner returns a line scanner sized for JSONL records (1 MiB
// line cap), shared by the trace and event-log readers.
func newJSONLScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	return sc
}

// Trace is the typed content of a schema-v2 (or v1) trace stream.
type Trace struct {
	Samples []SampleRecord
	Fates   []FateRecord
	// Unknown counts records whose "type" the reader does not understand;
	// they are skipped, not errors, so newer traces stay parseable.
	Unknown int
	// Truncated counts a malformed final line, skipped rather than failing
	// the read: a process killed mid-write (the crash case this package's
	// per-cell flushing otherwise guards against at cell granularity) can
	// leave a partial last line, and every complete record before it is
	// still good data. A malformed line with records after it is still an
	// error — that is corruption, not truncation.
	Truncated int
}

// ReadTrace parses a JSONL trace stream back into sample records, e.g. for
// cmd/logparse or round-trip tests. It accepts mixed v1/v2 files: untyped
// lines are treated as samples, forensics and unknown record types are
// skipped. Blank lines are skipped; a malformed line fails with its line
// number.
func ReadTrace(r io.Reader) ([]SampleRecord, error) {
	tr, err := ReadTraceTyped(r)
	if err != nil {
		return nil, err
	}
	return tr.Samples, nil
}

// ReadTraceTyped parses a JSONL trace stream, dispatching each line on its
// "type" field. Untyped lines (schema v1) are samples; unknown types are
// counted and skipped rather than erroring, so readers built today survive
// record kinds added tomorrow. A malformed FINAL line — what a crashed or
// killed writer leaves behind — is skipped and counted in Trace.Truncated
// instead of failing the whole read; a malformed line followed by more
// data still fails with its line number.
func ReadTraceTyped(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := newJSONLScanner(r)
	line := 0
	// A parse error is held back one line: if another non-empty line
	// follows, the file is corrupt mid-stream and the held error is
	// returned; if the stream ends first, the bad line was a crash-truncated
	// tail and is skipped.
	var pendingErr error
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, pendingErr
		}
		var hdr struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(b, &hdr); err != nil {
			pendingErr = fmt.Errorf("telemetry: trace line %d: %w", line, err)
			continue
		}
		switch hdr.Type {
		case "", RecordSample:
			var rec SampleRecord
			if err := json.Unmarshal(b, &rec); err != nil {
				pendingErr = fmt.Errorf("telemetry: trace line %d: %w", line, err)
				continue
			}
			tr.Samples = append(tr.Samples, rec)
		case RecordForensics:
			var rec FateRecord
			if err := json.Unmarshal(b, &rec); err != nil {
				pendingErr = fmt.Errorf("telemetry: trace line %d: %w", line, err)
				continue
			}
			tr.Fates = append(tr.Fates, rec)
		default:
			tr.Unknown++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pendingErr != nil {
		tr.Truncated++
	}
	return tr, nil
}
