package telemetry

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestEventLogEmitAssignsMonotonicSeq(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf, 0)
	l.now = func() time.Time { return time.Unix(0, 42) }

	e1 := l.Emit(Event{Type: EventCampaignStart, Cell: -1, Cells: 3})
	e2 := l.Emit(Event{Type: EventCellDone, Cell: 0, Samples: 10})
	if e1.Seq != 1 || e2.Seq != 2 {
		t.Fatalf("seq = %d, %d, want 1, 2", e1.Seq, e2.Seq)
	}
	if e1.TimeNS != 42 {
		t.Fatalf("TimeNS = %d, want 42", e1.TimeNS)
	}
	if l.LastSeq() != 2 {
		t.Fatalf("LastSeq = %d, want 2", l.LastSeq())
	}

	el, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(el.Events) != 2 || el.Events[0].Type != EventCampaignStart || el.Events[1].Samples != 10 {
		t.Fatalf("round-trip = %+v", el.Events)
	}
}

func TestEventLogSinceAndWaitSince(t *testing.T) {
	l := NewEventLog(nil, 0)
	l.Emit(Event{Type: EventCellLeased, Cell: 0})
	l.Emit(Event{Type: EventCellDone, Cell: 0})

	if got := l.Since(0); len(got) != 2 {
		t.Fatalf("Since(0) = %d events, want 2", len(got))
	}
	if got := l.Since(1); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("Since(1) = %+v", got)
	}
	if got := l.Since(2); len(got) != 0 {
		t.Fatalf("Since(2) = %+v, want none", got)
	}

	// WaitSince returns immediately when events past the cursor exist.
	if got := l.WaitSince(context.Background(), 0, time.Minute); len(got) != 2 {
		t.Fatalf("WaitSince(0) = %d events", len(got))
	}
	// A waiter blocked on the tail wakes on the next Emit.
	ch := make(chan []Event, 1)
	go func() { ch <- l.WaitSince(context.Background(), 2, time.Minute) }()
	time.Sleep(10 * time.Millisecond)
	l.Emit(Event{Type: EventCampaignDone, Cell: -1})
	select {
	case got := <-ch:
		if len(got) != 1 || got[0].Type != EventCampaignDone {
			t.Fatalf("woken waiter got %+v", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitSince never woke")
	}
	// An empty wait window returns nothing rather than blocking.
	if got := l.WaitSince(context.Background(), 99, 10*time.Millisecond); got != nil {
		t.Fatalf("timed-out wait = %+v", got)
	}
}

func TestOpenEventLogContinuesSequenceAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")

	l1, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	l1.Emit(Event{Type: EventCampaignStart, Cell: -1})
	l1.Emit(Event{Type: EventCellDone, Cell: 0})
	if err := l1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the reopened log continues after the highest persisted seq.
	l2, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	ev := l2.Emit(Event{Type: EventCellDone, Cell: 1})
	if ev.Seq != 3 {
		t.Fatalf("post-restart seq = %d, want 3", ev.Seq)
	}
	l2.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	el, err := ReadEvents(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(el.Events) != 3 {
		t.Fatalf("persisted %d events, want 3", len(el.Events))
	}
	for i, e := range el.Events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d: %+v", i, e.Seq, el.Events)
		}
	}
}

func TestOpenEventLogTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	torn := `{"seq":1,"t_ns":1,"type":"campaign_start","cell":-1}` + "\n" +
		`{"seq":2,"t_ns":2,"type":"cell_done","ce` // killed mid-write
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	l, err := OpenEventLog(path)
	if err != nil {
		t.Fatalf("torn tail must not be fatal: %v", err)
	}
	ev := l.Emit(Event{Type: EventCellDone, Cell: 0})
	if ev.Seq != 2 {
		t.Fatalf("seq after torn line = %d, want 2 (torn line discarded)", ev.Seq)
	}
	l.Close()

	data, _ := os.ReadFile(path)
	el, err := ReadEvents(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("reopened log must parse cleanly end to end: %v\n%s", err, data)
	}
	if len(el.Events) != 2 || el.Truncated != 0 {
		t.Fatalf("after truncate-and-append: %d events, %d truncated\n%s",
			len(el.Events), el.Truncated, data)
	}
}

func TestReadEventsTruncatedFinalLineTolerated(t *testing.T) {
	in := `{"seq":1,"t_ns":1,"type":"cell_leased","cell":0}` + "\n" + `{"seq":2,"bro`
	el, err := ReadEvents(strings.NewReader(in))
	if err != nil {
		t.Fatalf("truncated final line must not fail: %v", err)
	}
	if len(el.Events) != 1 || el.Truncated != 1 {
		t.Fatalf("events=%d truncated=%d", len(el.Events), el.Truncated)
	}
}

func TestReadEventsMidStreamCorruptionFatal(t *testing.T) {
	in := `{"seq":1,"t_ns":1,"type":"cell_leased","cell":0}` + "\n" +
		`garbage` + "\n" +
		`{"seq":3,"t_ns":3,"type":"cell_done","cell":0}` + "\n"
	if _, err := ReadEvents(strings.NewReader(in)); err == nil {
		t.Fatal("mid-stream corruption must fail the read")
	}
}

func TestEventLogNilSafe(t *testing.T) {
	var l *EventLog
	ev := l.Emit(Event{Type: EventCellDone})
	if ev.Seq != 0 {
		t.Fatalf("nil log assigned seq %d", ev.Seq)
	}
	if l.Since(0) != nil || l.LastSeq() != 0 || l.Err() != nil || l.Close() != nil {
		t.Fatal("nil log methods must no-op")
	}
	if got := l.WaitSince(context.Background(), 0, time.Millisecond); got != nil {
		t.Fatalf("nil WaitSince = %+v", got)
	}

	// Campaign.Emit without an event log is a no-op, with one it counts.
	var c *Campaign
	c.Emit(Event{Type: EventCellDone})
	c = NewCampaign(nil)
	c.Emit(Event{Type: EventCellDone}) // Events nil: dropped
	c.Events = NewEventLog(nil, 0)
	c.Emit(Event{Type: EventCellDone})
	if got := c.Registry.Counter(MetricEvents).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricEvents, got)
	}
	if c.Events.LastSeq() != 1 {
		t.Fatalf("LastSeq = %d, want 1", c.Events.LastSeq())
	}
}
