package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Campaign event log: a durable, ordered record of everything that happens
// to a campaign — cells leased and completed, workers joining and dying,
// leases expiring, retries burning — persisted as JSONL next to the
// ResultSet. Where the metrics registry answers "how much, right now", the
// event log answers "what happened, in what order": it is the input to the
// live -watch dashboard (streamed over /dispatch/events), to logparse
// -events post-mortems, and to any analysis that needs per-cell timelines
// (e.g. ranking cells by latency or reconstructing a chaos run's
// expiry/retry story after the processes are gone).

// Event types, in rough lifecycle order.
const (
	EventCampaignStart = "campaign_start"
	EventWorkerJoin    = "worker_join"
	EventCellLeased    = "cell_leased"
	EventHeartbeat     = "heartbeat"
	EventArtifactFetch = "artifact_fetch"
	EventCellDone      = "cell_done"
	EventLeaseExpired  = "lease_expired"
	EventCellRetried   = "cell_retried"
	EventWorkerLeave   = "worker_leave"
	EventCampaignDone  = "campaign_done"

	// Campaign-service lifecycle (multi-campaign coordinator): a campaign
	// admitted into the queue, and every subsequent state transition
	// (running, paused, cancelled, failed — Detail carries the new state).
	EventCampaignQueued = "campaign_queued"
	EventCampaignState  = "campaign_state"
)

// Event is one line of the campaign event log. Seq is assigned by the
// EventLog and is strictly monotonic across the life of one log file,
// including coordinator restarts (OpenEventLog continues after the highest
// persisted sequence number); consumers use it as the resume cursor for
// /dispatch/events?since=<seq>.
type Event struct {
	Seq    uint64 `json:"seq"`
	TimeNS int64  `json:"t_ns"` // unix nanoseconds at emission
	Type   string `json:"type"`

	// Campaign is the campaign-service campaign id the event belongs to;
	// empty on single-campaign (one-shot -serve or local) runs, where the
	// whole log is one campaign.
	Campaign string `json:"campaign,omitempty"`
	// Tenant is the submitting tenant, on campaign-service lifecycle events.
	Tenant string `json:"tenant,omitempty"`
	// Worker names the worker the event concerns, when any.
	Worker string `json:"worker,omitempty"`
	// Cell is the coordinator's cell index; -1 for events not about a cell.
	Cell int `json:"cell"`
	// Comp/Workload/Faults identify the cell's spec, on cell-scoped events.
	Comp     string `json:"comp,omitempty"`
	Workload string `json:"workload,omitempty"`
	Faults   int    `json:"faults,omitempty"`
	// Lease is the lease id, on lease-scoped events.
	Lease uint64 `json:"lease,omitempty"`
	// Retries is the cell's retry count after a cell_retried event.
	Retries int `json:"retries,omitempty"`

	// Cells is the grid size on campaign_start / cells completed on
	// campaign_done.
	Cells int `json:"cells,omitempty"`
	// Samples is the classified sample count on cell_done.
	Samples int `json:"samples,omitempty"`
	// Counts is the cell's outcome mix on cell_done (label -> count).
	Counts map[string]int `json:"counts,omitempty"`
	// Detail is freeform context: the expiry reason, an artifact key, the
	// campaign's terminal error.
	Detail string `json:"detail,omitempty"`
}

// EventLog assigns sequence numbers, keeps every event of this process in
// memory for streaming (Since/WaitSince), and appends each one as a single
// JSONL write to an optional backing writer — one Write call per line, so
// an O_APPEND file never interleaves lines even with a concurrent writer,
// and a crash can only ever tear the final line (which ReadEvents and
// OpenEventLog tolerate). A nil *EventLog discards everything, matching
// the package's disabled-telemetry idiom.
type EventLog struct {
	mu      sync.Mutex
	w       io.Writer
	closer  io.Closer
	events  []Event
	nextSeq uint64
	err     error
	changed chan struct{} // closed on every append, then replaced

	// now is the event clock, swappable so tests pin timestamps.
	now func() time.Time
}

// NewEventLog returns a log whose first event gets sequence number after+1,
// persisting to w (nil: in-memory only — the coordinator still streams it).
func NewEventLog(w io.Writer, after uint64) *EventLog {
	return &EventLog{w: w, nextSeq: after, changed: make(chan struct{}), now: time.Now}
}

// OpenEventLog opens path for durable appending, creating it if absent. An
// existing file is scanned so new events continue the sequence after the
// highest persisted one, and a crash-torn partial final line is cut off so
// the next append starts at a line boundary (mid-file corruption is still
// an error — that is a damaged log, not an interrupted one). The returned
// log owns the file; Close it when the campaign ends.
func OpenEventLog(path string) (*EventLog, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	var last uint64
	if len(data) > 0 {
		evs, err := ReadEvents(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("telemetry: event log %s: %w", path, err)
		}
		if n := len(evs.Events); n > 0 {
			last = evs.Events[n-1].Seq
		}
		// Keep only whole lines: everything after the last newline is the
		// torn tail of an interrupted write.
		if cut := bytes.LastIndexByte(data, '\n') + 1; cut < len(data) {
			if err := os.Truncate(path, int64(cut)); err != nil {
				return nil, err
			}
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	l := NewEventLog(f, last)
	l.closer = f
	return l, nil
}

// Emit assigns the next sequence number and timestamp to ev, records it,
// persists it and wakes every waiting streamer. It returns the completed
// event. A nil log returns ev unchanged.
func (l *EventLog) Emit(ev Event) Event {
	if l == nil {
		return ev
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextSeq++
	ev.Seq = l.nextSeq
	ev.TimeNS = l.now().UnixNano()
	l.events = append(l.events, ev)
	if l.w != nil && l.err == nil {
		line, err := json.Marshal(&ev)
		if err == nil {
			line = append(line, '\n')
			_, err = l.w.Write(line)
		}
		if err != nil {
			l.err = err
		}
	}
	close(l.changed)
	l.changed = make(chan struct{})
	return ev
}

// Since returns a copy of every in-memory event with Seq > after. Events
// persisted by an earlier process (before a restart + resume) are on disk,
// not in memory; stream consumers that need them read the file.
func (l *EventLog) Since(after uint64) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// Binary-search-free: events are append-only and Seq-ordered, so scan
	// back for the cut point (waiters almost always want the tail).
	i := len(l.events)
	for i > 0 && l.events[i-1].Seq > after {
		i--
	}
	out := make([]Event, len(l.events)-i)
	copy(out, l.events[i:])
	return out
}

// WaitSince is Since with a long-poll: when no event past the cursor exists
// yet, it blocks until one arrives, wait elapses, or ctx is cancelled, then
// returns whatever is available (possibly nothing — the caller re-polls).
func (l *EventLog) WaitSince(ctx context.Context, after uint64, wait time.Duration) []Event {
	if l == nil {
		return nil
	}
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		l.mu.Lock()
		changed := l.changed
		n := len(l.events)
		more := n > 0 && l.events[n-1].Seq > after
		l.mu.Unlock()
		if more {
			return l.Since(after)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-deadline.C:
			return nil
		case <-changed:
		}
	}
}

// LastSeq returns the sequence number of the most recent event (0 before
// the first).
func (l *EventLog) LastSeq() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Err returns the first persistence error, if any. Streaming and in-memory
// recording continue past a write error; only the file stops growing.
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close closes the backing file, when the log owns one (OpenEventLog).
func (l *EventLog) Close() error {
	if l == nil || l.closer == nil {
		return nil
	}
	return l.closer.Close()
}

// EventList is the parsed content of an event-log stream.
type EventList struct {
	Events []Event
	// Truncated counts a malformed final line — what a killed writer leaves
	// behind — skipped rather than failing the read, exactly like the
	// injection-trace reader's semantics.
	Truncated int
}

// ReadEvents parses a JSONL event log. Blank lines are skipped. A malformed
// FINAL line is tolerated and counted in Truncated; a malformed line with
// more data after it is corruption and fails with its line number.
func ReadEvents(r io.Reader) (*EventList, error) {
	el := &EventList{}
	sc := newJSONLScanner(r)
	line := 0
	var pendingErr error
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, pendingErr
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			pendingErr = fmt.Errorf("event log line %d: %w", line, err)
			continue
		}
		el.Events = append(el.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if pendingErr != nil {
		el.Truncated++
	}
	return el, nil
}
